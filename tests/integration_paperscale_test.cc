// Paper-scale functional validation (DESIGN.md sizing note): the timing
// model extrapolates from small sizes, but CORRECTNESS is validated here at
// the paper's actual sizes — the full 1M-element sum and the largest
// interpreted GEMM — against the CPU references, on the real VideoCore IV
// platform model ("we ... validate the results with the CPU", §V).
#include <cstdint>
#include <vector>

#include "common/bits.h"
#include "common/rng.h"
#include "compute/ops.h"
#include "cpuref/cpuref.h"
#include "gtest/gtest.h"

namespace mgpu::compute {
namespace {

TEST(PaperScaleTest, SumInt1MElementsExact) {
  Device d;  // VideoCore IV model
  const std::size_t n = 1u << 20;  // the paper's 1024x1024 elements
  Rng rng(42);
  const auto a = rng.IntVector(n, -4'000'000, 4'000'000);
  const auto b = rng.IntVector(n, -4'000'000, 4'000'000);
  std::vector<std::int32_t> gpu(n), cpu(n);
  ops::AddI32(d, a, b, gpu);
  cpuref::AddI32(a, b, cpu);
  // The integer path must be EXACT at full scale on the lossy platform.
  ASSERT_EQ(gpu.size(), cpu.size());
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < n; ++i) mismatches += gpu[i] != cpu[i];
  EXPECT_EQ(mismatches, 0u);
  const vc4::GpuWork w = d.ConsumeWork();
  EXPECT_EQ(w.fragments, n);  // one fragment per element at full scale
}

TEST(PaperScaleTest, SumFloat1MElementsWithin15Bits) {
  Device d;
  const std::size_t n = 1u << 20;
  Rng rng(43);
  std::vector<float> a(n), b(n), gpu(n), cpu(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = rng.NextWorkloadFloat();
    b[i] = rng.NextWorkloadFloat();
  }
  ops::AddF32(d, a, b, gpu);
  cpuref::AddF32(a, b, cpu);
  // §V: accuracy within ~15 most significant mantissa bits, relative to the
  // operand magnitudes (cancellation can't beat the input error).
  std::size_t bad = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const float scale = std::abs(a[i]) + std::abs(b[i]);
    if (std::abs(gpu[i] - cpu[i]) > scale * 1.5e-4f) ++bad;
  }
  EXPECT_EQ(bad, 0u);
}

TEST(PaperScaleTest, Sgemm128FloatEndToEnd) {
  Device d;
  const int n = 128;  // largest fully interpreted GEMM (DESIGN.md)
  const std::size_t e = static_cast<std::size_t>(n) * n;
  Rng rng(44);
  const auto a = rng.FloatVector(e, -1.0f, 1.0f);
  const auto b = rng.FloatVector(e, -1.0f, 1.0f);
  std::vector<float> gpu(e), cpu(e);
  ops::SgemmF32(d, n, a, b, gpu);
  cpuref::SgemmF32(n, a, b, cpu);
  int worst_bits = 23;
  std::size_t bad = 0;
  for (std::size_t i = 0; i < e; ++i) {
    // Inputs carry ~2^-16 unpack error; over K=128 accumulations the
    // result keeps well over 10 significant bits vs the fp32 reference.
    const float tol = std::max(2e-3f, std::abs(cpu[i]) * 1e-3f);
    if (std::abs(gpu[i] - cpu[i]) > tol) ++bad;
    worst_bits = std::min(worst_bits, MatchingMantissaBits(cpu[i], gpu[i]));
  }
  EXPECT_EQ(bad, 0u);
  const vc4::GpuWork w = d.ConsumeWork();
  EXPECT_EQ(w.fragments, e);
  EXPECT_EQ(w.shader_ops.tmu, 2ull * n * e + 0ull);  // 2 fetches per MAC
}

TEST(PaperScaleTest, Gemm96IntExact) {
  Device d;
  const int n = 96;
  const std::size_t e = static_cast<std::size_t>(n) * n;
  Rng rng(45);
  // Bound values so dot products stay inside the 24-bit envelope:
  // 96 * 128 * 128 = 1.57M < 2^24.
  const auto a = rng.IntVector(e, -128, 128);
  const auto b = rng.IntVector(e, -128, 128);
  std::vector<std::int32_t> gpu(e), cpu(e);
  ops::GemmI32(d, n, a, b, gpu);
  cpuref::GemmI32(n, a, b, cpu);
  EXPECT_EQ(gpu, cpu);
}

TEST(PaperScaleTest, SumU8Full1MBytes) {
  Device d;
  const std::size_t n = 1u << 20;
  Rng rng(46);
  const auto a = rng.ByteVector(n);
  const auto b = rng.ByteVector(n);
  std::vector<std::uint8_t> gpu(n), cpu(n);
  ops::AddU8(d, a, b, gpu);
  cpuref::AddU8(a, b, cpu);
  EXPECT_EQ(gpu, cpu);
  // Byte kernels are 4-wide: a quarter of the fragments.
  EXPECT_EQ(d.ConsumeWork().fragments, n / 4);
}

}  // namespace
}  // namespace mgpu::compute
