#include "glsl/preprocessor.h"

#include "common/strings.h"
#include "glsl/diag.h"
#include "gtest/gtest.h"

namespace mgpu::glsl {
namespace {

PreprocessResult PpOk(const std::string& src) {
  DiagSink diags;
  auto r = Preprocess(src, diags);
  EXPECT_FALSE(diags.has_errors()) << diags.InfoLog();
  return r;
}

TEST(PreprocessorTest, LineCommentsStripped) {
  const auto r = PpOk("a // comment\nb");
  EXPECT_TRUE(Contains(r.text, "a"));
  EXPECT_TRUE(Contains(r.text, "b"));
  EXPECT_FALSE(Contains(r.text, "comment"));
}

TEST(PreprocessorTest, BlockCommentsPreserveLineNumbers) {
  const auto r = PpOk("a /* x\ny\nz */ b");
  int newlines = 0;
  for (const char c : r.text) newlines += c == '\n' ? 1 : 0;
  EXPECT_EQ(newlines, 3);  // same line structure as input
}

TEST(PreprocessorTest, UnterminatedBlockCommentIsError) {
  DiagSink diags;
  (void)Preprocess("a /* no end", diags);
  EXPECT_TRUE(diags.has_errors());
}

TEST(PreprocessorTest, Version100Accepted) {
  const auto r = PpOk("#version 100\nvoid main(){}");
  EXPECT_EQ(r.version, 100);
}

TEST(PreprocessorTest, Version300Rejected) {
  DiagSink diags;
  (void)Preprocess("#version 300\nvoid main(){}", diags);
  EXPECT_TRUE(diags.has_errors());
}

TEST(PreprocessorTest, VersionAfterCodeRejected) {
  DiagSink diags;
  (void)Preprocess("void main(){}\n#version 100\n", diags);
  EXPECT_TRUE(diags.has_errors());
}

TEST(PreprocessorTest, ObjectMacroExpansion) {
  const auto r = PpOk("#define N 16\nfloat a[N];");
  EXPECT_TRUE(Contains(r.text, "float a[16];"));
}

TEST(PreprocessorTest, MacroRescan) {
  const auto r = PpOk("#define A B\n#define B 3\nint x = A;");
  EXPECT_TRUE(Contains(r.text, "int x = 3;"));
}

TEST(PreprocessorTest, MacroDoesNotExpandSubstrings) {
  const auto r = PpOk("#define N 16\nint NN = 1; int xN = N;");
  EXPECT_TRUE(Contains(r.text, "NN = 1"));
  EXPECT_TRUE(Contains(r.text, "xN = 16"));
}

TEST(PreprocessorTest, UndefStopsExpansion) {
  const auto r = PpOk("#define N 16\n#undef N\nint x = N;");
  EXPECT_TRUE(Contains(r.text, "int x = N;"));
}

TEST(PreprocessorTest, FunctionLikeMacroRejected) {
  DiagSink diags;
  (void)Preprocess("#define F(x) (x)\n", diags);
  EXPECT_TRUE(diags.has_errors());
}

TEST(PreprocessorTest, IfdefTakenBranch) {
  const auto r = PpOk("#define FEATURE 1\n#ifdef FEATURE\nint a;\n#else\nint "
                      "b;\n#endif\n");
  EXPECT_TRUE(Contains(r.text, "int a;"));
  EXPECT_FALSE(Contains(r.text, "int b;"));
}

TEST(PreprocessorTest, IfndefElseBranch) {
  const auto r = PpOk("#ifndef MISSING\nint a;\n#else\nint b;\n#endif\n");
  EXPECT_TRUE(Contains(r.text, "int a;"));
  EXPECT_FALSE(Contains(r.text, "int b;"));
}

TEST(PreprocessorTest, NestedConditionals) {
  const auto r = PpOk(
      "#define OUTER 1\n#ifdef OUTER\n#ifdef INNER\nint a;\n#else\nint "
      "b;\n#endif\n#endif\n");
  EXPECT_FALSE(Contains(r.text, "int a;"));
  EXPECT_TRUE(Contains(r.text, "int b;"));
}

TEST(PreprocessorTest, InactiveBranchSuppressesDefines) {
  const auto r =
      PpOk("#ifdef MISSING\n#define N 5\n#endif\nint x = N;\n");
  EXPECT_TRUE(Contains(r.text, "int x = N;"));
}

TEST(PreprocessorTest, UnterminatedIfdefIsError) {
  DiagSink diags;
  (void)Preprocess("#ifdef X\nint a;\n", diags);
  EXPECT_TRUE(diags.has_errors());
}

TEST(PreprocessorTest, ElseWithoutIfIsError) {
  DiagSink diags;
  (void)Preprocess("#else\n", diags);
  EXPECT_TRUE(diags.has_errors());
}

TEST(PreprocessorTest, ErrorDirective) {
  DiagSink diags;
  (void)Preprocess("#error custom message\n", diags);
  ASSERT_TRUE(diags.has_errors());
  EXPECT_TRUE(Contains(diags.InfoLog(), "custom message"));
}

TEST(PreprocessorTest, ErrorInInactiveBranchIgnored) {
  DiagSink diags;
  (void)Preprocess("#ifdef MISSING\n#error nope\n#endif\n", diags);
  EXPECT_FALSE(diags.has_errors());
}

TEST(PreprocessorTest, GlEsPredefined) {
  const auto r = PpOk("#ifdef GL_ES\nint yes;\n#endif\n");
  EXPECT_TRUE(Contains(r.text, "int yes;"));
}

TEST(PreprocessorTest, PragmaAndExtensionIgnored) {
  const auto r = PpOk("#pragma optimize(on)\n#extension GL_OES_foo : "
                      "enable\nint a;\n");
  EXPECT_TRUE(Contains(r.text, "int a;"));
}

TEST(PreprocessorTest, UnknownDirectiveIsError) {
  DiagSink diags;
  (void)Preprocess("#include \"foo.h\"\n", diags);
  EXPECT_TRUE(diags.has_errors());
}

}  // namespace
}  // namespace mgpu::glsl
