// The kernel framework end to end: buffer round trips through the GL
// pipeline (the shader-side transformations of §IV running on the simulated
// GPU), identity kernels for every element type, coordinate addressing, and
// framework error handling.
#include "compute/kernel.h"

#include <cmath>
#include <vector>

#include "common/bits.h"
#include "common/rng.h"
#include "common/strings.h"
#include "compute/shaderlib.h"
#include "gtest/gtest.h"

namespace mgpu::compute {
namespace {

DeviceOptions ExactOptions() {
  DeviceOptions o;
  o.profile = vc4::IeeeExact();
  return o;
}

// Runs an identity kernel: out[i] = in[i] through texture fetch, unpack in
// the shader, repack into the framebuffer, ReadPixels and host unpack.
template <typename T>
std::vector<T> RoundTrip(Device& d, ElemType t, const std::vector<T>& v) {
  PackedBuffer in(d, t, v.size());
  PackedBuffer out(d, t, v.size());
  in.Upload(std::span<const T>(v));
  const bool is_byte = ElemsPerTexel(t) == 4;
  Kernel k(d, {.name = "identity",
               .inputs = {{"u_src", t}},
               .output = t,
               .extra_decls = "",
               .body = is_byte ? "vec4 gp_kernel(vec2 p) { return "
                                 "gp_fetch_u_src(gp_linear_index()); }\n"
                               : "float gp_kernel(vec2 p) { return "
                                 "gp_fetch_u_src(gp_linear_index()); }\n"});
  k.Run(out, {&in});
  std::vector<T> back(v.size());
  out.Download(std::span<T>(back));
  return back;
}

TEST(KernelTest, IdentityU8) {
  Device d(ExactOptions());
  Rng rng(1);
  const auto v = rng.ByteVector(777);
  EXPECT_EQ(RoundTrip(d, ElemType::kU8, v), v);
}

TEST(KernelTest, IdentityI8) {
  Device d(ExactOptions());
  std::vector<std::int8_t> v(256);
  for (int i = 0; i < 256; ++i) v[static_cast<std::size_t>(i)] = static_cast<std::int8_t>(i - 128);
  EXPECT_EQ(RoundTrip(d, ElemType::kI8, v), v);
}

TEST(KernelTest, IdentityU32Within24Bits) {
  // Paper §IV-C: fp32 reconstruction is exact up to 2^24.
  Device d(ExactOptions());
  Rng rng(2);
  std::vector<std::uint32_t> v(512);
  for (auto& x : v) {
    x = static_cast<std::uint32_t>(rng.NextInt(0, kExactIntRange - 1));
  }
  v.push_back(0);
  v.push_back(kExactIntRange - 1);
  EXPECT_EQ(RoundTrip(d, ElemType::kU32, v), v);
}

TEST(KernelTest, IdentityI32SignedRange) {
  Device d(ExactOptions());
  Rng rng(3);
  std::vector<std::int32_t> v(512);
  for (auto& x : v) {
    x = static_cast<std::int32_t>(
        rng.NextInt(-(kExactIntRange - 1), kExactIntRange - 1));
  }
  v.push_back(-1);
  v.push_back(0);
  v.push_back(-(kExactIntRange - 1));
  EXPECT_EQ(RoundTrip(d, ElemType::kI32, v), v);
}

TEST(KernelTest, IdentityF32BitExactOnExactAlu) {
  // With an IEEE-exact ALU the shader-side float algebra must be lossless
  // for normal values — this isolates the *transformations* from the
  // *platform*, exactly the paper's CPU-verification argument.
  Device d(ExactOptions());
  Rng rng(4);
  std::vector<float> v(2048);
  for (auto& x : v) x = rng.NextWorkloadFloat();
  v.push_back(1.0f);
  v.push_back(-1.0f);
  v.push_back(0.0f);
  v.push_back(3.14159265f);
  v.push_back(1e-20f);
  v.push_back(1e20f);
  const auto back = RoundTrip(d, ElemType::kF32, v);
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_EQ(FloatToBits(back[i]), FloatToBits(v[i])) << v[i];
  }
}

TEST(KernelTest, IdentityF32WorksUnderPaperQuantization) {
  // The pack offset must survive the floor conversion of Eq. (2) as well as
  // round-to-nearest drivers.
  DeviceOptions o = ExactOptions();
  o.quantization = gles2::FbQuantization::kFloorPaper;
  Device d(o);
  Rng rng(5);
  std::vector<float> v(1024);
  for (auto& x : v) x = rng.NextWorkloadFloat();
  const auto back = RoundTrip(d, ElemType::kF32, v);
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_EQ(FloatToBits(back[i]), FloatToBits(v[i])) << v[i];
  }
}

TEST(KernelTest, LargeBufferSpansMultipleRows) {
  Device d(ExactOptions());
  Rng rng(6);
  // > max_texture_size texels so the buffer wraps onto several rows.
  std::vector<float> v(10000);
  for (auto& x : v) x = rng.NextWorkloadFloat();
  const auto back = RoundTrip(d, ElemType::kF32, v);
  int mismatches = 0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    mismatches += FloatToBits(back[i]) != FloatToBits(v[i]) ? 1 : 0;
  }
  EXPECT_EQ(mismatches, 0);
}

TEST(KernelTest, CoordinateMappingAddressesEveryElement) {
  // out[i] = in[n - 1 - i]: a permutation exercises gp_coord addressing.
  Device d(ExactOptions());
  const int n = 300;
  std::vector<std::int32_t> v(n);
  for (int i = 0; i < n; ++i) v[static_cast<std::size_t>(i)] = i * 7 - 1000;
  PackedBuffer in(d, ElemType::kI32, v.size());
  PackedBuffer out(d, ElemType::kI32, v.size());
  in.Upload(std::span<const std::int32_t>(v));
  Kernel k(d, {.name = "reverse",
               .inputs = {{"u_src", ElemType::kI32}},
               .output = ElemType::kI32,
               .extra_decls = StrFormat("#define GP_N %d.0", n),
               .body = R"(
float gp_kernel(vec2 p) {
  return gp_fetch_u_src(GP_N - 1.0 - gp_linear_index());
}
)"});
  k.Run(out, {&in});
  std::vector<std::int32_t> back(v.size());
  out.Download(std::span<std::int32_t>(back));
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(back[static_cast<std::size_t>(i)],
              v[static_cast<std::size_t>(n - 1 - i)]) << i;
  }
}

TEST(KernelTest, UniformsReachTheKernel) {
  Device d(ExactOptions());
  PackedBuffer out(d, ElemType::kF32, 16);
  Kernel k(d, {.name = "fill",
               .inputs = {},
               .output = ElemType::kF32,
               .extra_decls = "uniform float u_value;",
               .body = "float gp_kernel(vec2 p) { return u_value; }\n"});
  k.SetUniform1f("u_value", 42.5f);
  k.Run(out, {});
  std::vector<float> back(16);
  out.Download(std::span<float>(back));
  for (const float x : back) EXPECT_EQ(x, 42.5f);
}

TEST(KernelTest, MatrixBufferFetch2) {
  Device d(ExactOptions());
  const int n = 8;
  std::vector<float> m(static_cast<std::size_t>(n) * n);
  for (std::size_t i = 0; i < m.size(); ++i) m[i] = static_cast<float>(i);
  PackedBuffer in(d, ElemType::kF32, n, n);
  PackedBuffer out(d, ElemType::kF32, n, n);
  in.Upload(std::span<const float>(m));
  // Transpose through 2D addressing.
  Kernel k(d, {.name = "transpose",
               .inputs = {{"u_m", ElemType::kF32}},
               .output = ElemType::kF32,
               .extra_decls = "",
               .body = R"(
float gp_kernel(vec2 p) { return gp_fetch2_u_m(p.y, p.x); }
)"});
  k.Run(out, {&in});
  std::vector<float> back(m.size());
  out.Download(std::span<float>(back));
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) {
      EXPECT_EQ(back[static_cast<std::size_t>(r * n + c)],
                m[static_cast<std::size_t>(c * n + r)]);
    }
  }
}

TEST(KernelTest, CompileErrorThrowsWithLog) {
  Device d(ExactOptions());
  EXPECT_THROW(Kernel(d, {.name = "broken",
                          .inputs = {},
                          .output = ElemType::kF32,
                          .extra_decls = "",
                          .body = "float gp_kernel(vec2 p) { return 1; }\n"}),
               std::runtime_error);
}

TEST(KernelTest, InputCountMismatchThrows) {
  Device d(ExactOptions());
  PackedBuffer out(d, ElemType::kF32, 4);
  Kernel k(d, {.name = "nullary",
               .inputs = {},
               .output = ElemType::kF32,
               .extra_decls = "",
               .body = "float gp_kernel(vec2 p) { return 0.0; }\n"});
  PackedBuffer extra(d, ElemType::kF32, 4);
  EXPECT_THROW(k.Run(out, {&extra}), std::invalid_argument);
}

TEST(KernelTest, OutputTypeMismatchThrows) {
  Device d(ExactOptions());
  PackedBuffer wrong(d, ElemType::kI32, 4);
  Kernel k(d, {.name = "f32_out",
               .inputs = {},
               .output = ElemType::kF32,
               .extra_decls = "",
               .body = "float gp_kernel(vec2 p) { return 0.0; }\n"});
  EXPECT_THROW(k.Run(wrong, {}), std::invalid_argument);
}

TEST(KernelTest, WorkAccountingTracksDispatch) {
  Device d(ExactOptions());
  (void)d.ConsumeWork();
  std::vector<float> v(64, 1.0f);
  (void)RoundTrip(d, ElemType::kF32, v);
  const vc4::GpuWork w = d.ConsumeWork();
  EXPECT_EQ(w.fragments, 64u);
  EXPECT_EQ(w.draw_calls, 1);
  EXPECT_EQ(w.program_compiles, 1);
  EXPECT_GT(w.shader_ops.alu, 0u);
  EXPECT_EQ(w.shader_ops.tmu, 64u);  // one fetch per fragment
  EXPECT_EQ(w.bytes_uploaded, 64u * 4u);
  EXPECT_EQ(w.bytes_readback, 64u * 4u);
  // Consuming resets.
  EXPECT_EQ(d.ConsumeWork().fragments, 0u);
}

TEST(KernelTest, MultiKernelSplitsOutputs) {
  Device d(ExactOptions());
  std::vector<float> v = {3.0f, -1.0f, 7.0f, 2.0f};
  PackedBuffer in(d, ElemType::kF32, v.size());
  in.Upload(std::span<const float>(v));
  PackedBuffer sum(d, ElemType::kF32, 1);
  PackedBuffer prod(d, ElemType::kF32, 1);
  MultiKernel mk(d, {.name = "sumprod",
                     .inputs = {{"u_src", ElemType::kF32}},
                     .outputs = {ElemType::kF32, ElemType::kF32},
                     .extra_decls = "",
                     .body = R"(
void gp_kernel_multi(vec2 p, out float o0, out float o1) {
  float a = gp_fetch_u_src(0.0);
  float b = gp_fetch_u_src(1.0);
  float c = gp_fetch_u_src(2.0);
  float e = gp_fetch_u_src(3.0);
  o0 = a + b + c + e;
  o1 = a * b * c * e;
}
)"});
  EXPECT_EQ(mk.output_count(), 2);
  mk.Run({&sum, &prod}, {&in});
  float s = 0.0f, p = 0.0f;
  sum.Download(std::span<float>(&s, 1));
  prod.Download(std::span<float>(&p, 1));
  EXPECT_EQ(s, 11.0f);
  EXPECT_EQ(p, -42.0f);
}

TEST(KernelTest, MultiKernelRejectsByteOutputs) {
  Device d(ExactOptions());
  EXPECT_THROW(
      MultiKernel(d, {.name = "bad",
                      .inputs = {},
                      .outputs = {ElemType::kU8},
                      .extra_decls = "",
                      .body = "void gp_kernel_multi(vec2 p, out float o0) { "
                              "o0 = 0.0; }\n"}),
      std::invalid_argument);
}

TEST(KernelTest, MatrixWidthMustMatchTexelGranularity) {
  Device d(ExactOptions());
  EXPECT_THROW(PackedBuffer(d, ElemType::kU8, 7, 3), std::invalid_argument);
}

TEST(KernelTest, GeneratedSourceContainsLibrary) {
  Device d(ExactOptions());
  Kernel k(d, {.name = "probe",
               .inputs = {{"u_x", ElemType::kF32}},
               .output = ElemType::kI32,
               .extra_decls = "",
               .body = "float gp_kernel(vec2 p) { return "
                       "gp_fetch_u_x(gp_linear_index()); }\n"});
  const std::string& src = k.fragment_source();
  EXPECT_TRUE(Contains(src, "precision highp float;"));
  EXPECT_TRUE(Contains(src, "gp_unpack_f32"));
  EXPECT_TRUE(Contains(src, "gp_pack_i32"));
  EXPECT_TRUE(Contains(src, "gp_fetch_u_x"));
  EXPECT_TRUE(Contains(src, "void main()"));
}

}  // namespace
}  // namespace mgpu::compute
