// Helpers to drive the software GL ES 2.0 context in tests: the canonical
// pass-through pipeline of the paper (fullscreen two-triangle quad).
#ifndef MGPU_TESTS_GLES2_TEST_UTIL_H_
#define MGPU_TESTS_GLES2_TEST_UTIL_H_

#include <array>
#include <string>
#include <vector>

#include "gles2/context.h"
#include "gtest/gtest.h"

namespace mgpu::gles2::testutil {

inline constexpr char kPassthroughVs[] = R"(
attribute vec2 a_pos;
varying vec2 v_uv;
void main() {
  v_uv = a_pos * 0.5 + 0.5;
  gl_Position = vec4(a_pos, 0.0, 1.0);
}
)";

// The two-triangle fullscreen quad (paper challenge 2).
inline constexpr std::array<float, 12> kQuad = {
    -1.0f, -1.0f, 1.0f, -1.0f, 1.0f, 1.0f,
    -1.0f, -1.0f, 1.0f, 1.0f, -1.0f, 1.0f,
};

inline GLuint CompileShaderOrDie(Context& ctx, GLenum type,
                                 const std::string& src) {
  const GLuint s = ctx.CreateShader(type);
  ctx.ShaderSource(s, src);
  ctx.CompileShader(s);
  GLint ok = GL_FALSE;
  ctx.GetShaderiv(s, GL_COMPILE_STATUS, &ok);
  EXPECT_EQ(ok, GL_TRUE) << ctx.GetShaderInfoLog(s) << "\nsource:\n" << src;
  return s;
}

inline GLuint BuildProgramOrDie(Context& ctx, const std::string& vs_src,
                                const std::string& fs_src) {
  const GLuint vs = CompileShaderOrDie(ctx, GL_VERTEX_SHADER, vs_src);
  const GLuint fs = CompileShaderOrDie(ctx, GL_FRAGMENT_SHADER, fs_src);
  const GLuint p = ctx.CreateProgram();
  ctx.AttachShader(p, vs);
  ctx.AttachShader(p, fs);
  ctx.LinkProgram(p);
  GLint ok = GL_FALSE;
  ctx.GetProgramiv(p, GL_LINK_STATUS, &ok);
  EXPECT_EQ(ok, GL_TRUE) << ctx.GetProgramInfoLog(p);
  return p;
}

// Draws the fullscreen quad with `program` (expects attribute a_pos).
inline void DrawFullscreenQuad(Context& ctx, GLuint program) {
  ctx.UseProgram(program);
  const GLint loc = ctx.GetAttribLocation(program, "a_pos");
  ASSERT_GE(loc, 0);
  ctx.EnableVertexAttribArray(static_cast<GLuint>(loc));
  ctx.VertexAttribPointer(static_cast<GLuint>(loc), 2, GL_FLOAT, GL_FALSE, 0,
                          kQuad.data());
  ctx.DrawArrays(GL_TRIANGLES, 0, 6);
}

// Reads the full default framebuffer (or bound FBO) as RGBA bytes.
inline std::vector<std::uint8_t> ReadRgba(Context& ctx, int w, int h) {
  std::vector<std::uint8_t> out(static_cast<std::size_t>(w) * h * 4);
  ctx.ReadPixels(0, 0, w, h, GL_RGBA, GL_UNSIGNED_BYTE, out.data());
  return out;
}

}  // namespace mgpu::gles2::testutil

#endif  // MGPU_TESTS_GLES2_TEST_UTIL_H_
