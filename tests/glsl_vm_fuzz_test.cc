// Seeded differential fuzz harness for the shader execution engines.
//
// A deterministic generator (SplitMix64-seeded, reproducible bit-for-bit)
// produces random-but-valid GLSL ES 1.00 fragment shaders over vector
// arithmetic, builtins, control flow, helper functions, arrays and dynamic
// indexing. Every program runs through all THREE engines — the tree-walking
// ShaderExec oracle, the scalar bytecode VmExec, and the lane-batched
// VmExec::RunBatch at every tail size 1..kVmLanes — and must produce
// byte-identical gl_FragColor bits, identical per-lane discard decisions,
// and identical ALU/SFU/TMU op counts (ExactAlu and Vc4Alu).
//
// The same generator also emits VERTEX-stage programs (attribute input,
// gl_Position output, no discard) for the identical engine sweep, and a
// whole-draw corpus: seeded (vertex shader, fragment shader, attribute
// buffer) triples drawn through a real gles2::Context under all four
// engines × vertex-batch on/off × both ALU profiles, asserting
// bit-identical framebuffer bytes, op counts, and draw-abort diagnostics
// (trap message, GL error, reset status). That covers attribute decode for
// every GL type, varying interpolation and the TMU cache model end-to-end.
//
// A fourth engine rides the same oracle: for the first --jit_iters seeds
// (default 40; compiling every program would dominate the harness), the
// per-link C++ transpiler (glsl/jit.h) builds a native module for each
// eligible program — uniform control flow, host compiler present — and the
// whole batch-tail comparison runs again with the module attached. No new
// oracle code: the compiled engine must agree with the same scalar
// references, including op counts and (in the trap sweep) the exact trap
// lane and message.
//
// This is the lockdown for the SoA evaluation core: the batched VM
// dispatches whole-instruction SoA kernels (evalcore/builtins) while the
// scalar engines run per-invocation code, so any drift between the two
// implementations shows up here as a bit mismatch with the seed printed.
//
// Usage: glsl_vm_fuzz_test [--fuzz_iters=N] [gtest flags]
//   N defaults to 200; CI passes 200 on the build matrix and 50 under
//   TSan/ASan (see CMakeLists.txt / MGPU_FUZZ_ITERS).
#include <algorithm>
#include <array>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/bits.h"
#include "common/rng.h"
#include "common/strings.h"
#include "gles2/context.h"
#include "gles2_test_util.h"
#include "glsl/compile.h"
#include "glsl/interp.h"
#include "glsl/ir.h"
#include "glsl/simd.h"
#include "glsl/vm.h"
#include "vc4/alu.h"
#include "vc4/profiles.h"

#include "gtest/gtest.h"

namespace {
int g_fuzz_iters = 200;
// How many leading seeds also run through the compiled (transpiled) engine.
// Each distinct program costs one host-toolchain invocation on its first
// ever run (the .so is content-hash cached after that), so the default
// keeps harness latency bounded; the deep-fuzz CI job raises it.
int g_jit_iters = 40;
// Whole-draw differential iterations (each seed links and draws through
// ~5 full contexts, so the budget is a fraction of --fuzz_iters). -1 =
// derive from g_fuzz_iters in main(); --draw_iters overrides.
int g_draw_iters = -1;
}  // namespace

namespace mgpu::glsl {
namespace {

// ---------------------------------------------------------------------------
// Program generator
// ---------------------------------------------------------------------------

enum class GType { kF, kV2, kV3, kV4, kI, kB, kM2 };

const char* TypeName(GType t) {
  switch (t) {
    case GType::kF: return "float";
    case GType::kV2: return "vec2";
    case GType::kV3: return "vec3";
    case GType::kV4: return "vec4";
    case GType::kI: return "int";
    case GType::kB: return "bool";
    case GType::kM2: return "mat2";
  }
  return "float";
}

int VecWidth(GType t) {
  switch (t) {
    case GType::kV2: return 2;
    case GType::kV3: return 3;
    case GType::kV4: return 4;
    default: return 1;
  }
}

class GlslFuzzer {
 public:
  // `stage` selects the program kind: fragment (default, the original
  // corpus) or vertex — same expression/statement machinery, but the lane
  // input `v_in` becomes an attribute, `discard` is never emitted (sema
  // rejects it outside fragment shaders) and main ends with an
  // unconditional gl_Position write instead of gl_FragColor.
  // `whole_draw` further shapes vertex programs for linking into a real
  // program: the input attribute is renamed a_in, a second vec2 attribute
  // a_mix joins the scope (so generated code reads two differently-typed
  // arrays), a varying `v_in` is written for the fragment stage, and
  // texture2D is suppressed (the gles2 vertex stage has no sampler).
  explicit GlslFuzzer(std::uint64_t seed, Stage stage = Stage::kFragment,
                      bool whole_draw = false)
      : rng_(seed),
        stage_(stage),
        whole_draw_(whole_draw),
        in_name_(stage == Stage::kVertex && whole_draw ? "a_in" : "v_in") {}

  std::string Generate() {
    std::string src = "precision highp float;\n";
    if (stage_ == Stage::kVertex) {
      src += StrFormat("attribute vec4 %s;\n", in_name_);
      if (whole_draw_) src += "attribute vec2 a_mix;\nvarying vec4 v_in;\n";
    } else {
      src += "varying vec4 v_in;\n";
    }
    src +=
        "uniform float u_s0;\n"
        "uniform float u_s1;\n"
        "uniform vec4 u_v0;\n";
    if (allow_texture()) src += "uniform sampler2D u_tex;\n";
    // 0-2 helper functions, generated before main so calls never recurse.
    const int n_helpers = static_cast<int>(rng_.NextInt(0, 2));
    for (int h = 0; h < n_helpers; ++h) src += GenHelper();
    src += GenMain();
    return src;
  }

 private:
  struct Var {
    std::string name;
    GType type;
    bool is_array = false;    // float[4]
    bool assignable = true;   // false for loop counters: assigning to one
                              // inside its own loop can defeat the bound
  };

  [[nodiscard]] bool allow_texture() const {
    return !(stage_ == Stage::kVertex && whole_draw_);
  }

  std::string NewName(const char* prefix) {
    return StrFormat("%s%d", prefix, next_id_++);
  }

  [[nodiscard]] bool Chance(int percent) {
    return rng_.NextInt(0, 99) < percent;
  }

  std::string FloatLit() {
    const float v = rng_.NextFloat(-4.0f, 4.0f);
    return StrFormat("(%.5f)", static_cast<double>(v));
  }

  std::vector<const Var*> VarsOf(GType t, bool arrays,
                                 bool assignable_only) const {
    std::vector<const Var*> out;
    for (const Var& v : scope_) {
      if (v.is_array == arrays && v.type == t &&
          (!assignable_only || v.assignable)) {
        out.push_back(&v);
      }
    }
    return out;
  }

  const Var* PickVar(GType t, bool arrays = false,
                     bool assignable_only = false) {
    const auto vars = VarsOf(t, arrays, assignable_only);
    if (vars.empty()) return nullptr;
    return vars[static_cast<std::size_t>(
        rng_.NextInt(0, static_cast<std::int64_t>(vars.size()) - 1))];
  }

  // --- expressions --------------------------------------------------------

  // Index expression for a value with `limit` elements. Sema range-checks
  // bare integer literals at compile time; any other int expression is
  // runtime-clamped (identically by every engine), so out-of-range values
  // are legal — and worth generating — as long as they are not literals.
  std::string GenIndex(int limit, int d) {
    std::string e;
    if (!Chance(40)) e = GenInt(d);
    if (e.empty() ||
        e.find_first_not_of("0123456789") == std::string::npos) {
      return StrFormat("%d", static_cast<int>(rng_.NextInt(0, limit - 1)));
    }
    return e;
  }

  std::string GenFloat(int d) {
    const int c = static_cast<int>(rng_.NextInt(0, d <= 0 ? 4 : 15));
    switch (c) {
      case 0: return FloatLit();
      case 1: {
        static const char* kComp[] = {"x", "y", "z", "w"};
        return StrFormat("%s.%s", in_name_, kComp[rng_.NextInt(0, 3)]);
      }
      case 2: return Chance(50) ? "u_s0" : "u_s1";
      case 3: {
        if (const Var* v = PickVar(GType::kF)) return v->name;
        return FloatLit();
      }
      case 4: {
        // A component of a vector (or an array element / mat2 cell).
        if (const Var* a = PickVar(GType::kF, /*arrays=*/true); a && d > 0) {
          return StrFormat("%s[%s]", a->name.c_str(), GenIndex(4, 1).c_str());
        }
        if (const Var* m = PickVar(GType::kM2)) {
          // RNG-consuming subexpressions are hoisted into named locals
          // everywhere in this generator: function-argument evaluation
          // order is unspecified in C++, and the reproduce-by-seed
          // contract requires the RNG stream to be consumed in one
          // compiler-independent order.
          const int col = static_cast<int>(rng_.NextInt(0, 1));
          const int row = static_cast<int>(rng_.NextInt(0, 1));
          return StrFormat("%s[%d][%d]", m->name.c_str(), col, row);
        }
        static const char* kComp[] = {"x", "y", "z", "w"};
        const GType vt = Chance(50) ? GType::kV3 : GType::kV2;
        if (const Var* v = PickVar(vt)) {
          return StrFormat("%s.%s", v->name.c_str(),
                           kComp[rng_.NextInt(0, VecWidth(vt) - 1)]);
        }
        return StrFormat("%s.%s", in_name_, kComp[rng_.NextInt(0, 3)]);
      }
      case 5:
      case 6:
      case 7: {
        static const char* kOp[] = {"+", "-", "*", "/"};
        const std::string lhs = GenFloat(d - 1);
        const char* op = kOp[rng_.NextInt(0, 3)];
        const std::string rhs = GenFloat(d - 1);
        return StrFormat("(%s %s %s)", lhs.c_str(), op, rhs.c_str());
      }
      case 8:
        return StrFormat("(-%s)", GenFloat(d - 1).c_str());
      case 9: {
        static const char* kFn[] = {"sin",  "cos",   "sqrt",  "abs",
                                    "floor", "fract", "sign",  "ceil",
                                    "exp2",  "log2",  "inversesqrt", "exp",
                                    "log",   "tan",   "radians", "degrees"};
        const char* fn = kFn[rng_.NextInt(0, 15)];
        const std::string arg = GenFloat(d - 1);
        return StrFormat("%s(%s)", fn, arg.c_str());
      }
      case 10: {
        static const char* kFn[] = {"pow", "mod", "min", "max", "atan",
                                    "step", "distance"};
        const char* fn = kFn[rng_.NextInt(0, 6)];
        if (std::strcmp(fn, "distance") == 0) {
          const int w = static_cast<int>(rng_.NextInt(2, 4));
          const std::string a = GenVec(w, d - 1);
          const std::string b = GenVec(w, d - 1);
          return StrFormat("distance(%s, %s)", a.c_str(), b.c_str());
        }
        const std::string a = GenFloat(d - 1);
        const std::string b = GenFloat(d - 1);
        return StrFormat("%s(%s, %s)", fn, a.c_str(), b.c_str());
      }
      case 11: {
        static const char* kFn[] = {"clamp", "mix", "smoothstep"};
        const char* fn = kFn[rng_.NextInt(0, 2)];
        const std::string a = GenFloat(d - 1);
        const std::string b = GenFloat(d - 1);
        const std::string c3 = GenFloat(d - 1);
        return StrFormat("%s(%s, %s, %s)", fn, a.c_str(), b.c_str(),
                         c3.c_str());
      }
      case 12: {
        const int w = static_cast<int>(rng_.NextInt(2, 4));
        if (Chance(50)) {
          return StrFormat("length(%s)", GenVec(w, d - 1).c_str());
        }
        const std::string a = GenVec(w, d - 1);
        const std::string b = GenVec(w, d - 1);
        return StrFormat("dot(%s, %s)", a.c_str(), b.c_str());
      }
      case 13: {
        const std::string cond = GenBool(d - 1);
        const std::string a = GenFloat(d - 1);
        const std::string b = GenFloat(d - 1);
        return StrFormat("(%s ? %s : %s)", cond.c_str(), a.c_str(),
                         b.c_str());
      }
      case 14: {
        if (!helpers_sigs_.empty() && Chance(60)) {
          const std::size_t h = static_cast<std::size_t>(rng_.NextInt(
              0, static_cast<std::int64_t>(helpers_sigs_.size()) - 1));
          const std::string a = GenFloat(d - 1);
          const std::string b = GenVec(3, d - 1);
          return StrFormat("h%zu(%s, %s)", h, a.c_str(), b.c_str());
        }
        return StrFormat("float(%s)", GenInt(d - 1).c_str());
      }
      default: {
        static const char* kComp[] = {"x", "y", "z", "w"};
        const std::string uv = GenVec(2, d - 1);
        const char* comp = kComp[rng_.NextInt(0, 3)];
        if (!allow_texture()) return StrFormat("dot(%s, u_v0.xy)", uv.c_str());
        return StrFormat("texture2D(u_tex, %s).%s", uv.c_str(), comp);
      }
    }
  }

  std::string GenVec(int w, int d) {
    const int c = static_cast<int>(rng_.NextInt(0, d <= 0 ? 2 : 9));
    const GType vt = w == 2 ? GType::kV2 : (w == 3 ? GType::kV3 : GType::kV4);
    switch (c) {
      case 0: {
        // Swizzle of v_in (or a whole vec4 read for w == 4).
        static const char* kSw2[] = {"xy", "zw", "wz", "yx", "xw"};
        static const char* kSw3[] = {"xyz", "wzy", "yzw", "xxw"};
        static const char* kSw4[] = {"wzyx", "xyzw", "yxwz"};
        const char* sw = w == 2   ? kSw2[rng_.NextInt(0, 4)]
                         : w == 3 ? kSw3[rng_.NextInt(0, 3)]
                                  : kSw4[rng_.NextInt(0, 2)];
        const Var* v = PickVar(GType::kV4);
        const char* base = v != nullptr && Chance(60) ? v->name.c_str()
                                                      : in_name_;
        if (w == 4 && Chance(30)) return base;
        return StrFormat("%s.%s", base, sw);
      }
      case 1: {
        if (const Var* v = PickVar(vt)) return v->name;
        return StrFormat("%s(%s)", TypeName(vt), FloatLit().c_str());
      }
      case 2: {
        // Constructor from scalars (the all-float gather path) or a splat.
        if (Chance(30)) {
          return StrFormat("%s(%s)", TypeName(vt), GenFloat(d - 1).c_str());
        }
        std::string s = StrFormat("%s(", TypeName(vt));
        for (int i = 0; i < w; ++i) {
          if (i != 0) s += ", ";
          s += GenFloat(d - 1);
        }
        return s + ")";
      }
      case 3:
      case 4: {
        static const char* kOp[] = {"+", "-", "*", "/"};
        const char* op = kOp[rng_.NextInt(0, 3)];
        const bool broadcast = Chance(35);  // vector op scalar
        const std::string lhs = GenVec(w, d - 1);
        const std::string rhs = broadcast ? GenFloat(d - 1)
                                          : GenVec(w, d - 1);
        return StrFormat("(%s %s %s)", lhs.c_str(), op, rhs.c_str());
      }
      case 5:
        return StrFormat("(-%s)", GenVec(w, d - 1).c_str());
      case 6: {
        static const char* kFn[] = {"normalize", "abs", "floor", "fract",
                                    "sin", "cos", "sqrt", "exp2"};
        const char* fn = kFn[rng_.NextInt(0, 7)];
        const std::string arg = GenVec(w, d - 1);
        return StrFormat("%s(%s)", fn, arg.c_str());
      }
      case 7: {
        if (w == 3 && Chance(30)) {
          const std::string a = GenVec(3, d - 1);
          const std::string b = GenVec(3, d - 1);
          return StrFormat("cross(%s, %s)", a.c_str(), b.c_str());
        }
        static const char* kFn[] = {"min", "max", "pow", "reflect", "mod"};
        const char* fn = kFn[rng_.NextInt(0, 4)];
        const std::string a = GenVec(w, d - 1);
        const std::string b = GenVec(w, d - 1);
        return StrFormat("%s(%s, %s)", fn, a.c_str(), b.c_str());
      }
      case 8: {
        if (Chance(50)) {
          const std::string a = GenVec(w, d - 1);
          const std::string b = GenVec(w, d - 1);
          const std::string t = GenFloat(d - 1);
          return StrFormat("mix(%s, %s, %s)", a.c_str(), b.c_str(),
                           t.c_str());
        }
        const std::string x = GenVec(w, d - 1);
        const std::string lo = GenFloat(d - 1);
        const std::string hi = GenFloat(d - 1);
        return StrFormat("clamp(%s, %s, %s)", x.c_str(), lo.c_str(),
                         hi.c_str());
      }
      default: {
        if (w == 2) {
          if (const Var* m = PickVar(GType::kM2)) {
            return StrFormat("(%s * %s)", m->name.c_str(),
                             GenVec(2, d - 1).c_str());
          }
        }
        if (allow_texture() && w == 4 && Chance(50)) {
          return StrFormat("texture2D(u_tex, %s)", GenVec(2, d - 1).c_str());
        }
        return StrFormat("%s(%s)", TypeName(vt), GenFloat(d - 1).c_str());
      }
    }
  }

  std::string GenInt(int d) {
    const int c = static_cast<int>(rng_.NextInt(0, d <= 0 ? 1 : 5));
    switch (c) {
      case 0: return StrFormat("%d", static_cast<int>(rng_.NextInt(0, 7)));
      case 1: {
        if (const Var* v = PickVar(GType::kI)) return v->name;
        return StrFormat("%d", static_cast<int>(rng_.NextInt(0, 7)));
      }
      case 2:
      case 3: {
        static const char* kOp[] = {"+", "-", "*"};
        const std::string lhs = GenInt(d - 1);
        const char* op = kOp[rng_.NextInt(0, 2)];
        const std::string rhs = GenInt(d - 1);
        return StrFormat("(%s %s %s)", lhs.c_str(), op, rhs.c_str());
      }
      case 4:
        // clamp() maps NaN/inf to the finite range before the int cast.
        return StrFormat("int(clamp(%s, -8.0, 8.0))", GenFloat(d - 1).c_str());
      default: {
        const std::string cond = GenBool(d - 1);
        const std::string a = GenInt(d - 1);
        const std::string b = GenInt(d - 1);
        return StrFormat("(%s ? %s : %s)", cond.c_str(), a.c_str(),
                         b.c_str());
      }
    }
  }

  std::string GenBool(int d) {
    const int c = static_cast<int>(rng_.NextInt(0, d <= 0 ? 1 : 6));
    switch (c) {
      case 0: return Chance(50) ? "true" : "false";
      case 1: {
        if (const Var* v = PickVar(GType::kB)) return v->name;
        static const char* kCmp[] = {"<", ">", "<=", ">="};
        const char* cmp = kCmp[rng_.NextInt(0, 3)];
        const float edge = rng_.NextFloat01();
        return StrFormat("(%s.x %s %.5f)", in_name_, cmp,
                         static_cast<double>(edge));
      }
      case 2: {
        static const char* kCmp[] = {"<", ">", "<=", ">=", "==", "!="};
        const std::string lhs = GenFloat(d - 1);
        const char* cmp = kCmp[rng_.NextInt(0, 5)];
        const std::string rhs = GenFloat(d - 1);
        return StrFormat("(%s %s %s)", lhs.c_str(), cmp, rhs.c_str());
      }
      case 3: {
        static const char* kCmp[] = {"<", ">", "<=", ">=", "==", "!="};
        const std::string lhs = GenInt(d - 1);
        const char* cmp = kCmp[rng_.NextInt(0, 5)];
        const std::string rhs = GenInt(d - 1);
        return StrFormat("(%s %s %s)", lhs.c_str(), cmp, rhs.c_str());
      }
      case 4: {
        const int w = static_cast<int>(rng_.NextInt(2, 4));
        if (Chance(40)) {
          static const char* kRel[] = {"lessThan", "greaterThanEqual",
                                       "notEqual"};
          const char* reduce = Chance(50) ? "any" : "all";
          const char* rel = kRel[rng_.NextInt(0, 2)];
          const std::string a = GenVec(w, d - 1);
          const std::string b = GenVec(w, d - 1);
          return StrFormat("%s(%s(%s, %s))", reduce, rel, a.c_str(),
                           b.c_str());
        }
        const std::string a = GenVec(w, d - 1);
        const char* cmp = Chance(50) ? "==" : "!=";
        const std::string b = GenVec(w, d - 1);
        return StrFormat("(%s %s %s)", a.c_str(), cmp, b.c_str());
      }
      default: {
        static const char* kOp[] = {"&&", "||", "^^"};
        if (Chance(25)) return StrFormat("(!%s)", GenBool(d - 1).c_str());
        const std::string lhs = GenBool(d - 1);
        const char* op = kOp[rng_.NextInt(0, 2)];
        const std::string rhs = GenBool(d - 1);
        return StrFormat("(%s %s %s)", lhs.c_str(), op, rhs.c_str());
      }
    }
  }

  // --- statements ---------------------------------------------------------

  std::string GenExprOf(GType t, int d) {
    switch (t) {
      case GType::kF: return GenFloat(d);
      case GType::kV2: return GenVec(2, d);
      case GType::kV3: return GenVec(3, d);
      case GType::kV4: return GenVec(4, d);
      case GType::kI: return GenInt(d);
      case GType::kB: return GenBool(d);
      case GType::kM2: {
        const std::string a = GenFloat(d - 1);
        const std::string b = GenFloat(d - 1);
        const std::string c = GenFloat(d - 1);
        const std::string e = GenFloat(d - 1);
        return StrFormat("mat2(%s, %s, %s, %s)", a.c_str(), b.c_str(),
                         c.c_str(), e.c_str());
      }
    }
    return GenFloat(d);
  }

  // One statement appended to `out`. `depth` bounds statement nesting,
  // `in_helper` enables early `return`.
  void GenStmt(std::string& out, int depth, bool in_helper) {
    const int c = static_cast<int>(rng_.NextInt(0, depth <= 0 ? 5 : 9));
    switch (c) {
      case 0: case 1: {  // declaration
        static const GType kDeclTypes[] = {GType::kF,  GType::kV2,
                                           GType::kV3, GType::kV4,
                                           GType::kI,  GType::kB,
                                           GType::kM2};
        const GType t = kDeclTypes[rng_.NextInt(0, 6)];
        Var v{NewName("t"), t, false};
        out += StrFormat("  %s %s = %s;\n", TypeName(t), v.name.c_str(),
                         GenExprOf(t, 3).c_str());
        scope_.push_back(v);
        break;
      }
      case 2: case 3: {  // assignment / compound assignment
        static const GType kMut[] = {GType::kF, GType::kV2, GType::kV3,
                                     GType::kV4, GType::kI, GType::kM2};
        const GType t = kMut[rng_.NextInt(0, 5)];
        const Var* v = PickVar(t, /*arrays=*/false, /*assignable_only=*/true);
        if (v == nullptr) {
          Var nv{NewName("t"), GType::kF, false};
          out += StrFormat("  float %s = %s;\n", nv.name.c_str(),
                           GenFloat(3).c_str());
          scope_.push_back(nv);
          break;
        }
        if (t == GType::kI) {
          const char* op = Chance(50) ? "+" : "";
          const std::string rhs = GenInt(2);
          out += StrFormat("  %s %s= %s;\n", v->name.c_str(), op,
                           rhs.c_str());
        } else if (t == GType::kF || t == GType::kM2) {
          const char* op = Chance(40) ? "+" : "";
          const std::string rhs = GenExprOf(t, 3);
          out += StrFormat("  %s %s= %s;\n", v->name.c_str(), op,
                           rhs.c_str());
        } else {
          const int w = VecWidth(t);
          const int kind = static_cast<int>(rng_.NextInt(0, 2));
          if (kind == 0 && w >= 3) {
            // Swizzled store.
            static const char* kSw[] = {"xy", "yz", "xz"};
            const char* sw = kSw[rng_.NextInt(0, 2)];
            const std::string rhs = GenVec(2, 2);
            out += StrFormat("  %s.%s = %s;\n", v->name.c_str(), sw,
                             rhs.c_str());
          } else if (kind == 1) {
            // Dynamic-index store through a ref.
            const std::string idx = GenIndex(w, 2);
            const std::string rhs = GenFloat(2);
            out += StrFormat("  %s[%s] = %s;\n", v->name.c_str(),
                             idx.c_str(), rhs.c_str());
          } else {
            const char* op = Chance(40) ? (Chance(50) ? "+" : "*") : "";
            const std::string rhs = GenVec(w, 3);
            out += StrFormat("  %s %s= %s;\n", v->name.c_str(), op,
                             rhs.c_str());
          }
        }
        break;
      }
      case 4: {  // array block: declare + loop-fill (+ later indexed reads)
        const std::string a = NewName("a");
        const std::string i = NewName("i");
        out += StrFormat("  float %s[4];\n", a.c_str());
        out += StrFormat("  for (int %s = 0; %s < 4; ++%s) { %s[%s] = %s + "
                         "float(%s); }\n",
                         i.c_str(), i.c_str(), i.c_str(), a.c_str(),
                         i.c_str(), GenFloat(2).c_str(), i.c_str());
        scope_.push_back(Var{a, GType::kF, /*is_array=*/true});
        break;
      }
      case 5: {  // if / if-else
        const std::size_t mark = scope_.size();
        std::string body;
        const int n = static_cast<int>(rng_.NextInt(1, 2));
        for (int s = 0; s < n; ++s) GenStmt(body, depth - 1, in_helper);
        scope_.resize(mark);
        out += StrFormat("  if (%s) {\n%s  }", GenBool(2).c_str(),
                         body.c_str());
        if (Chance(50)) {
          std::string ebody;
          for (int s = 0; s < n; ++s) GenStmt(ebody, depth - 1, in_helper);
          scope_.resize(mark);
          out += StrFormat(" else {\n%s  }", ebody.c_str());
        }
        out += "\n";
        break;
      }
      case 6: {  // bounded for loop, fixed or lane-varying trip count
        const std::string i = NewName("i");
        const std::size_t mark = scope_.size();
        scope_.push_back(Var{i, GType::kI, false, /*assignable=*/false});
        std::string body;
        if (Chance(40)) {
          // Lane-varying trip count through a data-dependent break.
          body += StrFormat("    if (%s >= %s) break;\n", i.c_str(),
                            GenInt(2).c_str());
        } else if (Chance(25)) {
          body += StrFormat("    if (%s) continue;\n", GenBool(1).c_str());
        }
        const int n = static_cast<int>(rng_.NextInt(1, 2));
        for (int s = 0; s < n; ++s) GenStmt(body, depth - 1, in_helper);
        scope_.resize(mark);
        out += StrFormat("  for (int %s = 0; %s < %d; ++%s) {\n%s  }\n",
                         i.c_str(), i.c_str(),
                         static_cast<int>(rng_.NextInt(1, 8)), i.c_str(),
                         body.c_str());
        break;
      }
      case 7: {  // lane-divergent discard (rare; fragment-only per sema)
        if (stage_ == Stage::kFragment && Chance(25)) {
          out += StrFormat("  if (%s) discard;\n", GenBool(2).c_str());
        } else {
          out += StrFormat("  %s %s = %s;\n", "float", NewName("t").c_str(),
                           GenFloat(3).c_str());
          scope_.push_back(Var{"t" + std::to_string(next_id_ - 1), GType::kF,
                               false});
        }
        break;
      }
      default: {  // early return inside a helper (rare), else declaration
        if (in_helper && Chance(30)) {
          const std::string cond = GenBool(2);
          const std::string ret = GenFloat(2);
          out += StrFormat("  if (%s) { return %s; }\n", cond.c_str(),
                           ret.c_str());
        } else {
          Var v{NewName("t"), GType::kV3, false};
          out += StrFormat("  vec3 %s = %s;\n", v.name.c_str(),
                           GenVec(3, 3).c_str());
          scope_.push_back(v);
        }
        break;
      }
    }
  }

  std::string GenHelper() {
    const std::size_t idx = helpers_sigs_.size();
    scope_.clear();
    scope_.push_back(Var{"x", GType::kF, false});
    scope_.push_back(Var{"w", GType::kV3, false});
    std::string body;
    const int n = static_cast<int>(rng_.NextInt(1, 3));
    for (int s = 0; s < n; ++s) GenStmt(body, 1, /*in_helper=*/true);
    body += StrFormat("  return %s;\n", GenFloat(3).c_str());
    scope_.clear();
    helpers_sigs_.push_back(idx);
    return StrFormat("float h%zu(float x, vec3 w) {\n%s}\n", idx,
                     body.c_str());
  }

  // A straight-line run of float vector arithmetic: a burst of
  // component-wise +,-,*,/ and float-dense builtins over same-width vector
  // locals, with no control flow in between. These are exactly the
  // statements the lowering tags SIMD-eligible, so weighting them into
  // most generated programs keeps the vector kernels (not just the scalar
  // SoA and per-lane paths) under continuous differential pressure.
  void GenVecRun(std::string& out) {
    const int w = static_cast<int>(rng_.NextInt(2, 4));
    const GType t = w == 2 ? GType::kV2 : (w == 3 ? GType::kV3 : GType::kV4);
    // Seed the run with two fresh vectors so every later statement has
    // same-type operands in scope.
    for (int k = 0; k < 2; ++k) {
      Var v{NewName("t"), t, false};
      const std::string init = GenVec(w, 2);
      out += StrFormat("  %s %s = %s;\n", TypeName(t), v.name.c_str(),
                       init.c_str());
      scope_.push_back(v);
    }
    const int n = static_cast<int>(rng_.NextInt(6, 12));
    for (int s = 0; s < n; ++s) {
      const Var* a = PickVar(t);
      // `b` may be assigned below, so it must skip read-only scope entries
      // (the whole-draw vertex mode seeds the attribute a_mix into scope).
      const Var* b = PickVar(t, /*arrays=*/false, /*assignable_only=*/true);
      std::string rhs;
      switch (static_cast<int>(rng_.NextInt(0, 9))) {
        case 0: case 1: case 2: case 3: {
          static const char* kOp[] = {"+", "-", "*", "/"};
          const char* op = kOp[rng_.NextInt(0, 3)];
          rhs = StrFormat("(%s %s %s)", a->name.c_str(), op,
                          b->name.c_str());
          break;
        }
        case 4:
          rhs = StrFormat("min(%s, %s)", a->name.c_str(), b->name.c_str());
          break;
        case 5:
          rhs = StrFormat("max(%s, %s)", a->name.c_str(), b->name.c_str());
          break;
        case 6: {
          const std::string lo = FloatLit();
          const std::string hi = FloatLit();
          rhs = StrFormat("clamp(%s, min(%s, %s), max(%s, %s))",
                          a->name.c_str(), lo.c_str(), hi.c_str(),
                          lo.c_str(), hi.c_str());
          break;
        }
        case 7: {
          const std::string tl = FloatLit();
          rhs = StrFormat("mix(%s, %s, %s)", a->name.c_str(),
                          b->name.c_str(), tl.c_str());
          break;
        }
        case 8: {
          static const char* kFn[] = {"abs", "floor", "fract", "ceil"};
          const char* fn = kFn[rng_.NextInt(0, 3)];
          rhs = StrFormat("%s(%s)", fn, a->name.c_str());
          break;
        }
        default:
          rhs = StrFormat("(normalize(%s) * %s)", a->name.c_str(),
                          FloatLit().c_str());
          break;
      }
      if (Chance(60)) {
        out += StrFormat("  %s = %s;\n", b->name.c_str(), rhs.c_str());
      } else {
        Var v{NewName("t"), t, false};
        out += StrFormat("  %s %s = %s;\n", TypeName(t), v.name.c_str(),
                         rhs.c_str());
        scope_.push_back(v);
      }
    }
  }

  std::string GenMain() {
    scope_.clear();
    if (stage_ == Stage::kVertex && whole_draw_) {
      // The second attribute reads like any vec2 local, but assigning to
      // an attribute is a sema error, so it enters scope read-only.
      scope_.push_back(Var{"a_mix", GType::kV2, /*is_array=*/false,
                           /*assignable=*/false});
    }
    std::string body;
    // Most programs open with a long straight-line vector-arithmetic run
    // (see GenVecRun), and many get a second one after the general
    // statement mix so runs also appear downstream of control flow.
    if (Chance(60)) GenVecRun(body);
    const int n = static_cast<int>(rng_.NextInt(3, 7));
    for (int s = 0; s < n; ++s) GenStmt(body, 2, /*in_helper=*/false);
    if (Chance(35)) GenVecRun(body);
    if (stage_ == Stage::kVertex) {
      if (whole_draw_) {
        // Feed the fragment stage and place the vertex: the position is
        // anchored to a_in so every draw has lane-varying geometry, with a
        // bounded random perturbation (clamp maps NaN/inf identically in
        // every engine).
        body += StrFormat("  v_in = %s;\n", GenVec(4, 3).c_str());
        const std::string px = GenFloat(3);
        const std::string py = GenFloat(3);
        const std::string pz = GenFloat(3);
        body += StrFormat(
            "  gl_Position = vec4(a_in.x + clamp(%s, -0.25, 0.25), "
            "a_in.y + clamp(%s, -0.25, 0.25), clamp(%s, -1.0, 1.0), 1.0);\n",
            px.c_str(), py.c_str(), pz.c_str());
        if (Chance(30)) {
          body += StrFormat("  gl_PointSize = clamp(%s, 1.0, 8.0);\n",
                            GenFloat(2).c_str());
        }
      } else if (Chance(50)) {
        const std::string x = GenFloat(3);
        const std::string y = GenFloat(3);
        const std::string z = GenFloat(3);
        const std::string w = GenFloat(3);
        body += StrFormat("  gl_Position = vec4(%s, %s, %s, %s);\n",
                          x.c_str(), y.c_str(), z.c_str(), w.c_str());
      } else {
        body += StrFormat("  gl_Position = %s;\n", GenVec(4, 3).c_str());
      }
    } else if (Chance(50)) {
      const std::string r = GenFloat(3);
      const std::string g = GenFloat(3);
      const std::string b = GenFloat(3);
      const std::string a = GenFloat(3);
      body += StrFormat("  gl_FragColor = vec4(%s, %s, %s, %s);\n",
                        r.c_str(), g.c_str(), b.c_str(), a.c_str());
    } else {
      body += StrFormat("  gl_FragColor = %s;\n", GenVec(4, 3).c_str());
    }
    return "void main() {\n" + body + "}\n";
  }

  Rng rng_;
  Stage stage_ = Stage::kFragment;
  bool whole_draw_ = false;
  const char* in_name_ = "v_in";
  std::vector<Var> scope_;
  std::vector<std::size_t> helpers_sigs_;
  int next_id_ = 0;
};

// ---------------------------------------------------------------------------
// Three-engine differential runner
// ---------------------------------------------------------------------------

struct LaneRef {
  bool kept = false;
  std::array<std::uint32_t, 4> color{};
  OpCounts delta;  // ops this lane alone spent
};

void ExpectCountsEq(const OpCounts& got, const OpCounts& want,
                    const char* what) {
  EXPECT_EQ(got.alu, want.alu) << what << " alu";
  EXPECT_EQ(got.sfu, want.sfu) << what << " sfu";
  EXPECT_EQ(got.sfu_trans, want.sfu_trans) << what << " sfu_trans";
  EXPECT_EQ(got.tmu, want.tmu) << what << " tmu";
  EXPECT_EQ(got.tmu_miss, want.tmu_miss) << what << " tmu_miss";
}

OpCounts Minus(const OpCounts& a, const OpCounts& b) {
  OpCounts d;
  d.alu = a.alu - b.alu;
  d.sfu = a.sfu - b.sfu;
  d.sfu_trans = a.sfu_trans - b.sfu_trans;
  d.tmu = a.tmu - b.tmu;
  d.tmu_miss = a.tmu_miss - b.tmu_miss;
  return d;
}

template <typename Engine>
void SetUniforms(Engine& e) {
  if (const int s = e.GlobalSlot("u_s0"); s >= 0) {
    e.GlobalAt(s).SetF(0, 0.8125f);
  }
  if (const int s = e.GlobalSlot("u_s1"); s >= 0) {
    e.GlobalAt(s).SetF(0, -1.5f);
  }
  if (const int s = e.GlobalSlot("u_v0"); s >= 0) {
    Value& v = e.GlobalAt(s);
    v.SetF(0, 0.25f);
    v.SetF(1, -0.5f);
    v.SetF(2, 1.5f);
    v.SetF(3, 0.125f);
  }
  if (const int s = e.GlobalSlot("u_tex"); s >= 0) {
    e.GlobalAt(s).SetI(0, 2);
  }
  e.SetTextureFn([](int unit, float s, float t, float lod) {
    return std::array<float, 4>{s * 0.5f + static_cast<float>(unit) * 0.125f,
                                t * 0.25f, s + t, lod + 0.75f};
  });
}

// Runs one generated program through all the engines (the compiled engine
// too when `with_jit` and the program is eligible); any mismatch is a test
// failure tagged with the seed. Vertex-stage programs run the identical
// sweep with gl_Position as the compared output (no lane ever discards).
void RunFuzzCase(std::uint64_t seed, bool vc4_alu, bool with_jit,
                 Stage stage) {
  GlslFuzzer gen(seed, stage);
  const std::string src = gen.Generate();
  SCOPED_TRACE(StrFormat("seed=%llu alu=%s stage=%s",
                         static_cast<unsigned long long>(seed),
                         vc4_alu ? "vc4" : "exact",
                         stage == Stage::kVertex ? "vertex" : "fragment"));

  CompileResult cr = CompileGlsl(src, stage);
  ASSERT_TRUE(cr.ok) << "generated shader failed to compile (seed " << seed
                     << "):\n" << cr.info_log << "\nsource:\n" << src;
  std::shared_ptr<const VmProgram> prog = LowerToBytecode(*cr.shader);

  const vc4::GpuProfile profile = vc4::VideoCoreIV();
  ExactAlu exact_t, exact_s, exact_b;
  vc4::Vc4Alu vc4_t(profile), vc4_s(profile), vc4_b(profile);
  AluModel& alu_t = vc4_alu ? static_cast<AluModel&>(vc4_t) : exact_t;
  AluModel& alu_s = vc4_alu ? static_cast<AluModel&>(vc4_s) : exact_s;
  AluModel& alu_b = vc4_alu ? static_cast<AluModel&>(vc4_b) : exact_b;

  ShaderExec tree(*cr.shader, alu_t);
  VmExec scalar(prog, alu_s);
  VmExec batch(prog, alu_b);
  SetUniforms(tree);
  SetUniforms(scalar);
  SetUniforms(batch);

  const char* out_name =
      stage == Stage::kVertex ? "gl_Position" : "gl_FragColor";
  const int in_slot = scalar.GlobalSlot("v_in");
  ASSERT_GE(in_slot, 0);
  const int color_slot = scalar.GlobalSlot(out_name);
  ASSERT_GE(color_slot, 0);
  const int tree_in = tree.GlobalSlot("v_in");
  const int tree_color = tree.GlobalSlot(out_name);

  // Deterministic per-lane inputs; a fresh sub-seed per program so the lane
  // data co-varies with the program shape.
  Rng lane_rng(seed ^ 0x9e3779b97f4a7c15ull);
  std::array<std::array<float, 4>, kVmLanes> lane_in;
  for (auto& lane : lane_in) {
    for (float& f : lane) f = lane_rng.NextFloat01();
  }

  // Scalar references: tree-walk and scalar VM, fragment-sequential, with
  // per-lane count deltas (prefix sums give the expected totals for every
  // batch tail size).
  std::array<LaneRef, kVmLanes> ref;
  alu_t.ResetCounts();
  alu_s.ResetCounts();
  try {
    for (int l = 0; l < kVmLanes; ++l) {
      const OpCounts before_t = alu_t.counts();
      const OpCounts before_s = alu_s.counts();
      Value& tv = tree.GlobalAt(tree_in);
      Value& sv = scalar.GlobalAt(in_slot);
      for (int k = 0; k < 4; ++k) {
        tv.SetF(k, lane_in[static_cast<std::size_t>(l)]
                          [static_cast<std::size_t>(k)]);
        sv.SetF(k, lane_in[static_cast<std::size_t>(l)]
                          [static_cast<std::size_t>(k)]);
      }
      const bool tree_kept = tree.Run();
      LaneRef& r = ref[static_cast<std::size_t>(l)];
      r.kept = scalar.Run();
      r.delta = Minus(alu_s.counts(), before_s);

      // Tree oracle vs scalar VM, per lane.
      EXPECT_EQ(tree_kept, r.kept) << "lane " << l << " discard (tree vs vm)";
      const Value& sc = scalar.GlobalAt(color_slot);
      const Value& tc = tree.GlobalAt(tree_color);
      for (int k = 0; k < 4; ++k) {
        r.color[static_cast<std::size_t>(k)] = FloatToBits(sc.F(k));
        if (r.kept) {
          EXPECT_EQ(FloatToBits(tc.F(k)), FloatToBits(sc.F(k)))
              << "lane " << l << " comp " << k << " (tree vs vm)";
        }
      }
      ExpectCountsEq(Minus(alu_t.counts(), before_t), r.delta,
                     "tree vs vm lane");
    }
  } catch (const ShaderRuntimeError& e) {
    FAIL() << "scalar engines threw (seed " << seed << "): " << e.what()
           << "\nsource:\n" << src;
  }

  // Batch-capable engines at every tail size, against the scalar per-lane
  // references. Runs once for the batched interpreter and (within the jit
  // budget, for eligible programs) once more with the per-link compiled
  // module attached — same oracle, zero new comparison code.
  auto check_tails = [&](VmExec& eng, AluModel& alu_e, const char* what) {
    for (int n = 1; n <= kVmLanes; ++n) {
      SCOPED_TRACE(StrFormat("%s tail=%d", what, n));
      alu_e.ResetCounts();
      for (int l = 0; l < n; ++l) {
        Value& v = eng.LaneGlobalAt(in_slot, l);
        for (int k = 0; k < 4; ++k) {
          v.SetF(k, lane_in[static_cast<std::size_t>(l)]
                           [static_cast<std::size_t>(k)]);
        }
      }
      std::uint32_t kept = 0;
      try {
        kept = eng.RunBatch(n);
      } catch (const ShaderRuntimeError& e) {
        FAIL() << what << " engine threw (seed " << seed << "): " << e.what()
               << "\nsource:\n" << src;
      }
      OpCounts want;
      for (int l = 0; l < n; ++l) {
        want += ref[static_cast<std::size_t>(l)].delta;
      }
      for (int l = 0; l < n; ++l) {
        const LaneRef& r = ref[static_cast<std::size_t>(l)];
        EXPECT_EQ(((kept >> static_cast<unsigned>(l)) & 1u) != 0, r.kept)
            << "lane " << l << " discard (" << what << ")";
        if (!r.kept) continue;
        const Value& cv = eng.LaneGlobalAt(color_slot, l);
        for (int k = 0; k < 4; ++k) {
          EXPECT_EQ(FloatToBits(cv.F(k)),
                    r.color[static_cast<std::size_t>(k)])
              << "lane " << l << " comp " << k << " (" << what << ")";
        }
      }
      ExpectCountsEq(alu_e.counts(), want, what);
    }
  };
  check_tails(batch, alu_b, "batch vs vm");
  if (with_jit) {
    if (std::shared_ptr<const jit::Module> mod = jit::CompileProgram(*prog)) {
      ExactAlu exact_j;
      vc4::Vc4Alu vc4_j(profile);
      AluModel& alu_j = vc4_alu ? static_cast<AluModel&>(vc4_j) : exact_j;
      VmExec jitted(prog, alu_j);
      SetUniforms(jitted);
      jitted.SetJit(std::move(mod));
      check_tails(jitted, alu_j, "compiled vs vm");
    }
  }
}

void RunFuzzSweep(bool vc4_alu, Stage stage, std::uint64_t seed_base) {
  for (int i = 0; i < g_fuzz_iters; ++i) {
    const std::uint64_t seed = seed_base + static_cast<std::uint64_t>(i);
    RunFuzzCase(seed, vc4_alu, /*with_jit=*/i < g_jit_iters, stage);
    if (::testing::Test::HasFailure()) {
      // Stop at the first failing seed and log everything needed to
      // reproduce it: the seed drives both the program generator and the
      // per-lane inputs, so one integer replays the whole case.
      GlslFuzzer gen(seed, stage);
      // The batched VM resolves its SIMD tier the same way (auto unless
      // MGPU_SIMD overrides), so naming it here makes the repro line
      // sufficient to replay the exact kernel selection.
      std::fprintf(stderr,
                   "[fuzz] FAILURE seed=%llu (%s alu, %s stage, simd=%s) — "
                   "source:\n%s\n",
                   static_cast<unsigned long long>(seed),
                   vc4_alu ? "vc4" : "exact",
                   stage == Stage::kVertex ? "vertex" : "fragment",
                   simd::LevelName(simd::Resolve(-1)),
                   gen.Generate().c_str());
      FAIL() << "fuzz differential failed at seed " << seed
             << " (iteration " << i << " of " << g_fuzz_iters << ")";
    }
  }
}

constexpr std::uint64_t kFragSeedBase = 20260727;
constexpr std::uint64_t kVertSeedBase = 20260815;

TEST(VmFuzzDifferentialTest, SeededProgramsExactAlu) {
  RunFuzzSweep(/*vc4_alu=*/false, Stage::kFragment, kFragSeedBase);
}

TEST(VmFuzzDifferentialTest, SeededProgramsVc4Alu) {
  RunFuzzSweep(/*vc4_alu=*/true, Stage::kFragment, kFragSeedBase);
}

// The vertex corpus through the same four-engine, every-tail sweep: this is
// the VM-level half of the vertex-batching lockdown (the whole-draw corpus
// below covers the gles2 gather/scatter plumbing around it).
TEST(VmFuzzDifferentialTest, SeededVertexProgramsExactAlu) {
  RunFuzzSweep(/*vc4_alu=*/false, Stage::kVertex, kVertSeedBase);
}

TEST(VmFuzzDifferentialTest, SeededVertexProgramsVc4Alu) {
  RunFuzzSweep(/*vc4_alu=*/true, Stage::kVertex, kVertSeedBase);
}

// ---------------------------------------------------------------------------
// Trap parity: budget-exceeding and trapping programs
// ---------------------------------------------------------------------------
//
// The robustness counterpart of the differential sweep above: a seeded
// generator emits programs whose LANES diverge on whether they trap —
// loop-budget exhaustion under a deliberately tiny SetLoopBudget, and calls
// to a declared-but-undefined function behind a lane-varying condition. All
// three engines must agree per lane on trap-vs-complete AND on the exact
// trap message, and the batched VM must attribute its trap to the smallest
// trapping lane index at every tail size 1..kVmLanes (the first fragment a
// scalar engine would have trapped on). Tails whose lanes all complete fall
// through to the usual color/discard/op-count byte comparison, so the trap
// machinery is also shown not to perturb clean lanes.

struct TrapProgram {
  std::string src;
  std::uint64_t budget;  // loop budget installed on all three engines
};

// Deterministic trappy-program generator. Four shapes:
//   0: lane-varying loop trip count, tiny budget (some lanes exhaust it)
//   1: same loop plus an undefined call behind a lane-varying condition
//   2: no loop; undefined call behind a lane-varying condition (divergent
//      executor, trap only — generous budget)
//   3: uniform control flow that traps every lane identically (an
//      unconditional undefined call, or a uniform loop longer than the
//      budget) — exercises the lockstep executor's lane-0 attribution
TrapProgram GenTrapProgram(std::uint64_t seed) {
  Rng rng(seed);
  static const char* kComp[] = {"x", "y", "z", "w"};
  const int kind = static_cast<int>(rng.NextInt(0, 99));
  const char* c0 = kComp[rng.NextInt(0, 3)];
  const char* c1 = kComp[rng.NextInt(0, 3)];
  const int trip_scale = static_cast<int>(rng.NextInt(8, 64));
  const float thresh = rng.NextFloat(0.15f, 0.85f);

  TrapProgram out;
  std::string body = "  float acc = u_s0;\n";
  bool declare_poison = false;
  if (kind < 70) {  // shapes 0 (40%) and 1 (30%): lane-varying loop
    body += StrFormat(
        "  int n = int(clamp(v_in.%s * %d.0, 0.0, 63.0));\n"
        "  for (int i = 0; i < 64; ++i) {\n"
        "    if (i >= n) break;\n"
        "    acc += fract(acc * 1.3) + 0.0625;\n"
        "  }\n",
        c0, trip_scale);
    out.budget = static_cast<std::uint64_t>(rng.NextInt(4, 96));
    if (kind >= 40) {  // shape 1: also a divergent undefined call
      declare_poison = true;
      body += StrFormat("  if (v_in.%s > %.5f) { acc += poison(acc); }\n",
                        c1, static_cast<double>(thresh));
    }
  } else if (kind < 85) {  // shape 2: divergent undefined call only
    declare_poison = true;
    out.budget = 1u << 20;
    body += StrFormat("  if (v_in.%s > %.5f) { acc += poison(acc); }\n",
                      c1, static_cast<double>(thresh));
  } else {  // shape 3: uniform trap — every lane trips identically
    if (rng.NextInt(0, 1) == 0) {
      declare_poison = true;
      out.budget = 1u << 20;
      body += "  acc += poison(acc);\n";
    } else {
      // Uniform loop with more iterations than the budget allows.
      out.budget = static_cast<std::uint64_t>(rng.NextInt(1, 30));
      body +=
          "  for (int i = 0; i < 64; ++i) {\n"
          "    acc += fract(acc * 1.3) + 0.0625;\n"
          "  }\n";
    }
  }
  body += "  gl_FragColor = vec4(acc * 0.015625, v_in.y, v_in.z, 1.0);\n";

  out.src =
      "precision highp float;\n"
      "varying vec4 v_in;\n"
      "uniform float u_s0;\n";
  if (declare_poison) out.src += "float poison(float x);\n";
  out.src += "void main() {\n" + body + "}\n";
  return out;
}

struct TrapLaneRef {
  bool trapped = false;
  std::string message;                   // valid when trapped
  bool kept = false;                     // valid when !trapped
  std::array<std::uint32_t, 4> color{};  // valid when !trapped
  OpCounts delta;                        // valid when !trapped
};

// Runs one trappy program through all three engines and asserts per-lane
// trap parity plus min-trapping-lane attribution at every batch tail.
// Increments *trap_lanes / *clean_lanes so the sweep can assert the seeded
// corpus actually produced both outcomes.
void RunTrapParityCase(std::uint64_t seed, bool vc4_alu, bool with_jit,
                       int* trap_lanes, int* clean_lanes) {
  const TrapProgram tp = GenTrapProgram(seed);
  SCOPED_TRACE(StrFormat("trap seed=%llu alu=%s budget=%llu",
                         static_cast<unsigned long long>(seed),
                         vc4_alu ? "vc4" : "exact",
                         static_cast<unsigned long long>(tp.budget)));

  CompileResult cr = CompileGlsl(tp.src, Stage::kFragment);
  ASSERT_TRUE(cr.ok) << "trap shader failed to compile (seed " << seed
                     << "):\n" << cr.info_log << "\nsource:\n" << tp.src;
  std::shared_ptr<const VmProgram> prog = LowerToBytecode(*cr.shader);

  const vc4::GpuProfile profile = vc4::VideoCoreIV();
  ExactAlu exact_t, exact_s, exact_b;
  vc4::Vc4Alu vc4_t(profile), vc4_s(profile), vc4_b(profile);
  AluModel& alu_t = vc4_alu ? static_cast<AluModel&>(vc4_t) : exact_t;
  AluModel& alu_s = vc4_alu ? static_cast<AluModel&>(vc4_s) : exact_s;
  AluModel& alu_b = vc4_alu ? static_cast<AluModel&>(vc4_b) : exact_b;

  ShaderExec tree(*cr.shader, alu_t);
  VmExec scalar(prog, alu_s);
  VmExec batch(prog, alu_b);
  tree.SetLoopBudget(tp.budget);
  scalar.SetLoopBudget(tp.budget);
  batch.SetLoopBudget(tp.budget);
  SetUniforms(tree);
  SetUniforms(scalar);
  SetUniforms(batch);

  const int in_slot = scalar.GlobalSlot("v_in");
  ASSERT_GE(in_slot, 0);
  const int color_slot = scalar.GlobalSlot("gl_FragColor");
  ASSERT_GE(color_slot, 0);
  const int tree_in = tree.GlobalSlot("v_in");
  const int tree_color = tree.GlobalSlot("gl_FragColor");

  Rng lane_rng(seed ^ 0x9e3779b97f4a7c15ull);
  std::array<std::array<float, 4>, kVmLanes> lane_in;
  for (auto& lane : lane_in) {
    for (float& f : lane) f = lane_rng.NextFloat01();
  }

  // Scalar references: both per-invocation engines, per lane, recording
  // trap-vs-complete and the message. A trapped Run must leave the engine
  // reusable for the next lane (loop/call-depth state resets per Run).
  std::array<TrapLaneRef, kVmLanes> ref;
  for (int l = 0; l < kVmLanes; ++l) {
    Value& tv = tree.GlobalAt(tree_in);
    Value& sv = scalar.GlobalAt(in_slot);
    for (int k = 0; k < 4; ++k) {
      tv.SetF(k, lane_in[static_cast<std::size_t>(l)]
                        [static_cast<std::size_t>(k)]);
      sv.SetF(k, lane_in[static_cast<std::size_t>(l)]
                        [static_cast<std::size_t>(k)]);
    }
    bool tree_trapped = false;
    bool tree_kept = false;
    std::string tree_msg;
    try {
      tree_kept = tree.Run();
    } catch (const ShaderRuntimeError& e) {
      tree_trapped = true;
      tree_msg = e.what();
      EXPECT_EQ(e.lane, -1) << "scalar tree trap carries no lane";
    }
    TrapLaneRef& r = ref[static_cast<std::size_t>(l)];
    const OpCounts before_s = alu_s.counts();
    try {
      r.kept = scalar.Run();
    } catch (const ShaderRuntimeError& e) {
      r.trapped = true;
      r.message = e.what();
      EXPECT_EQ(e.lane, -1) << "scalar vm trap carries no lane";
    }
    EXPECT_EQ(tree_trapped, r.trapped)
        << "lane " << l << " trap-vs-complete (tree vs vm)";
    if (r.trapped) {
      ++*trap_lanes;
      if (tree_trapped) {
        EXPECT_EQ(tree_msg, r.message)
            << "lane " << l << " trap message (tree vs vm)";
      }
      continue;
    }
    ++*clean_lanes;
    r.delta = Minus(alu_s.counts(), before_s);
    EXPECT_EQ(tree_kept, r.kept) << "lane " << l << " discard (tree vs vm)";
    const Value& sc = scalar.GlobalAt(color_slot);
    const Value& tc = tree.GlobalAt(tree_color);
    for (int k = 0; k < 4; ++k) {
      r.color[static_cast<std::size_t>(k)] = FloatToBits(sc.F(k));
      if (r.kept) {
        EXPECT_EQ(FloatToBits(tc.F(k)), FloatToBits(sc.F(k)))
            << "lane " << l << " comp " << k << " (tree vs vm)";
      }
    }
  }

  // Batch-capable engines at every tail: must throw iff some lane < n
  // trapped scalar-side, attributing the min trapping lane and its exact
  // message; trap-free tails must stay byte-identical to the scalar
  // references. As in the clean sweep, the compiled engine re-runs the
  // whole check when available — its trap callbacks (loop guard, call
  // depth, kTrap) must reproduce the interpreter's messages exactly.
  auto check_tails = [&](VmExec& eng, AluModel& alu_e, const char* what) {
    for (int n = 1; n <= kVmLanes; ++n) {
      SCOPED_TRACE(StrFormat("%s tail=%d", what, n));
      int min_trap = -1;
      for (int l = 0; l < n; ++l) {
        if (ref[static_cast<std::size_t>(l)].trapped) {
          min_trap = l;
          break;
        }
      }
      for (int l = 0; l < n; ++l) {
        Value& v = eng.LaneGlobalAt(in_slot, l);
        for (int k = 0; k < 4; ++k) {
          v.SetF(k, lane_in[static_cast<std::size_t>(l)]
                           [static_cast<std::size_t>(k)]);
        }
      }
      alu_e.ResetCounts();
      try {
        const std::uint32_t kept = eng.RunBatch(n);
        EXPECT_EQ(min_trap, -1)
            << what << " completed but scalar engines trapped at lane "
            << min_trap;
        if (min_trap != -1) continue;
        OpCounts want;
        for (int l = 0; l < n; ++l) {
          want += ref[static_cast<std::size_t>(l)].delta;
        }
        for (int l = 0; l < n; ++l) {
          const TrapLaneRef& r = ref[static_cast<std::size_t>(l)];
          EXPECT_EQ(((kept >> static_cast<unsigned>(l)) & 1u) != 0, r.kept)
              << "lane " << l << " discard (" << what << ")";
          if (!r.kept) continue;
          const Value& cv = eng.LaneGlobalAt(color_slot, l);
          for (int k = 0; k < 4; ++k) {
            EXPECT_EQ(FloatToBits(cv.F(k)),
                      r.color[static_cast<std::size_t>(k)])
                << "lane " << l << " comp " << k << " (" << what << ")";
          }
        }
        ExpectCountsEq(alu_e.counts(), want, what);
      } catch (const ShaderRuntimeError& e) {
        if (min_trap == -1) {
          ADD_FAILURE() << what << " trapped but no scalar lane did: "
                        << e.what();
          continue;
        }
        EXPECT_EQ(e.lane, min_trap) << what << " trap lane attribution";
        EXPECT_EQ(std::string(e.what()),
                  ref[static_cast<std::size_t>(min_trap)].message)
            << what << " trap message (expected min trapping lane's)";
      }
    }
  };
  check_tails(batch, alu_b, "batch vs vm");
  if (with_jit) {
    if (std::shared_ptr<const jit::Module> mod = jit::CompileProgram(*prog)) {
      ExactAlu exact_j;
      vc4::Vc4Alu vc4_j(profile);
      AluModel& alu_j = vc4_alu ? static_cast<AluModel&>(vc4_j) : exact_j;
      VmExec jitted(prog, alu_j);
      jitted.SetLoopBudget(tp.budget);
      SetUniforms(jitted);
      jitted.SetJit(std::move(mod));
      check_tails(jitted, alu_j, "compiled vs vm");
    }
  }
}

void RunTrapParitySweep(bool vc4_alu) {
  constexpr std::uint64_t kTrapSeedBase = 20260808;
  int trap_lanes = 0;
  int clean_lanes = 0;
  for (int i = 0; i < g_fuzz_iters; ++i) {
    const std::uint64_t seed = kTrapSeedBase + static_cast<std::uint64_t>(i);
    RunTrapParityCase(seed, vc4_alu, /*with_jit=*/i < g_jit_iters,
                      &trap_lanes, &clean_lanes);
    if (::testing::Test::HasFailure()) {
      std::fprintf(stderr,
                   "[trap-parity] FAILURE seed=%llu (%s alu, budget=%llu, "
                   "simd=%s) — source:\n%s\n",
                   static_cast<unsigned long long>(seed),
                   vc4_alu ? "vc4" : "exact",
                   static_cast<unsigned long long>(GenTrapProgram(seed).budget),
                   simd::LevelName(simd::Resolve(-1)),
                   GenTrapProgram(seed).src.c_str());
      FAIL() << "trap parity failed at seed " << seed << " (iteration " << i
             << " of " << g_fuzz_iters << ")";
    }
  }
  // The corpus is only meaningful if it actually mixes outcomes: some lanes
  // must trap and some must complete across the sweep (guarded so a tiny
  // --fuzz_iters smoke run cannot fail spuriously).
  if (g_fuzz_iters >= 10) {
    EXPECT_GT(trap_lanes, 0) << "trap corpus produced no trapping lane";
    EXPECT_GT(clean_lanes, 0) << "trap corpus produced no completing lane";
  }
}

TEST(VmTrapParityTest, SeededTrapProgramsExactAlu) {
  RunTrapParitySweep(/*vc4_alu=*/false);
}

TEST(VmTrapParityTest, SeededTrapProgramsVc4Alu) {
  RunTrapParitySweep(/*vc4_alu=*/true);
}

}  // namespace
}  // namespace mgpu::glsl

// ---------------------------------------------------------------------------
// Whole-draw four-engine differentials
// ---------------------------------------------------------------------------
//
// The VM-level sweeps above prove engine agreement for one stage in
// isolation. The whole-draw corpus closes the loop: a seeded (vertex
// shader, fragment shader, attribute buffer) triple is drawn through a
// real gles2::Context — attribute decode for every GL type (normalized and
// not, strided and tight, buffer-object and client-pointer), varying
// interpolation, point sprites, the depth test and the TMU cache model —
// and the framebuffer bytes, ALU/SFU/TMU totals and error state must be
// byte-identical across kTreeWalk / kBytecodeVm / kBatchedVm / kCompiled,
// with vertex batching on and off and at more than one fragment worker
// count. The reference leg is the bytecode VM with the scalar vertex loop,
// so every other configuration is measured against the per-vertex
// per-fragment reference semantics.

namespace mgpu::gles2 {
namespace {

using glsl::ExactAlu;
using glsl::ExpectCountsEq;
using glsl::GlslFuzzer;
using glsl::OpCounts;
using glsl::Stage;

constexpr int kDrawW = 48;
constexpr int kDrawH = 48;

struct DrawScene {
  std::string vs;
  std::string fs;
  int tri_verts = 0;    // GL_TRIANGLES draw over vertices [0, tri_verts)
  int point_verts = 0;  // GL_POINTS draw over [tri_verts, total)
  int threads = 1;
  bool use_buffers = false;  // buffer objects vs client pointers
  bool mix_enabled = true;   // a_mix as array vs constant attribute
  GLenum mix_type = GL_FLOAT;
  bool mix_normalized = false;
  int mix_stride = 0;  // bytes as passed to VertexAttribPointer; 0 = tight
  std::vector<float> a_in;          // 4 floats per vertex
  std::vector<std::uint8_t> a_mix;  // strided raw bytes, 2 components
};

int MixElemSize(GLenum type) {
  switch (type) {
    case GL_FLOAT: return 4;
    case GL_SHORT: case GL_UNSIGNED_SHORT: return 2;
    default: return 1;
  }
}

int MixRowBytes(const DrawScene& sc) {
  return sc.mix_stride != 0 ? sc.mix_stride : 2 * MixElemSize(sc.mix_type);
}

// The scene — both shader sources, the draw shape and every attribute byte
// — is a pure function of the seed, so each engine leg replays bit-equal
// inputs from its own fresh context.
DrawScene GenDrawScene(std::uint64_t seed) {
  DrawScene sc;
  sc.vs = GlslFuzzer(seed * 2 + 1, Stage::kVertex, /*whole_draw=*/true)
              .Generate();
  sc.fs = GlslFuzzer(seed * 2 + 2).Generate();
  Rng rng(seed ^ 0xd1cefacedull);
  // 3..90 triangle vertices and 1..40 points: chunk counts above and below
  // kVmLanes, every residue of batch tail across the sweep, and a nonzero
  // `first` for the point draw.
  sc.tri_verts = 3 * static_cast<int>(rng.NextInt(1, 30));
  sc.point_verts = static_cast<int>(rng.NextInt(1, 40));
  sc.threads = rng.NextInt(0, 1) == 0 ? 1 : 3;
  sc.use_buffers = rng.NextInt(0, 1) == 0;
  sc.mix_enabled = rng.NextInt(0, 99) < 80;
  static const GLenum kTypes[] = {GL_FLOAT, GL_BYTE, GL_UNSIGNED_BYTE,
                                  GL_SHORT, GL_UNSIGNED_SHORT};
  sc.mix_type = kTypes[rng.NextInt(0, 4)];
  sc.mix_normalized = rng.NextInt(0, 1) == 1;
  const int tight = 2 * MixElemSize(sc.mix_type);
  sc.mix_stride = rng.NextInt(0, 1) == 0
                      ? 0
                      : tight + static_cast<int>(rng.NextInt(1, 6));
  const int total = sc.tri_verts + sc.point_verts;
  sc.a_in.resize(static_cast<std::size_t>(total) * 4);
  for (float& f : sc.a_in) f = rng.NextFloat(-1.4f, 1.4f);
  const int row = MixRowBytes(sc);
  sc.a_mix.resize(static_cast<std::size_t>(total) *
                  static_cast<std::size_t>(row));
  if (sc.mix_type == GL_FLOAT) {
    for (int v = 0; v < total; ++v) {
      for (int c = 0; c < 2; ++c) {
        const float f = rng.NextFloat(-2.0f, 2.0f);
        std::memcpy(sc.a_mix.data() + v * row + c * 4, &f, 4);
      }
    }
  } else {
    // Any bit pattern is a valid integer attribute; random bytes cover the
    // whole normalized/unnormalized decode range.
    for (std::uint8_t& b : sc.a_mix) {
      b = static_cast<std::uint8_t>(rng.NextInt(0, 255));
    }
  }
  return sc;
}

struct DrawOutcome {
  std::vector<std::uint8_t> fb;
  OpCounts counts;
  GLenum err = GL_NO_ERROR;
  GLenum reset = GL_NO_ERROR;
  std::string draw_error;
};

DrawOutcome RunWholeDraw(const DrawScene& sc, ExecEngine engine,
                         bool vc4_alu, int vertex_batch,
                         std::uint64_t draw_budget) {
  ContextConfig cfg;
  cfg.width = kDrawW;
  cfg.height = kDrawH;
  cfg.exec_engine = engine;
  cfg.shader_threads = sc.threads;
  cfg.vertex_batch = vertex_batch;
  cfg.draw_budget = draw_budget;
  const vc4::GpuProfile profile = vc4::VideoCoreIV();
  ExactAlu exact;
  vc4::Vc4Alu vc4a(profile);
  glsl::AluModel& alu = vc4_alu ? static_cast<glsl::AluModel&>(vc4a) : exact;
  Context ctx(cfg, &alu);

  // Deterministic NPOT texture for the fragment stage's u_tex.
  GLuint tex = 0;
  ctx.GenTextures(1, &tex);
  ctx.BindTexture(GL_TEXTURE_2D, tex);
  std::vector<std::uint8_t> img(19 * 13 * 4);
  for (std::size_t i = 0; i < img.size(); ++i) {
    img[i] = static_cast<std::uint8_t>((i * 31 + 7) & 0xff);
  }
  ctx.TexImage2D(GL_TEXTURE_2D, 0, GL_RGBA, 19, 13, 0, GL_RGBA,
                 GL_UNSIGNED_BYTE, img.data());
  ctx.TexParameteri(GL_TEXTURE_2D, GL_TEXTURE_MIN_FILTER, GL_NEAREST);
  ctx.TexParameteri(GL_TEXTURE_2D, GL_TEXTURE_MAG_FILTER, GL_NEAREST);
  ctx.TexParameteri(GL_TEXTURE_2D, GL_TEXTURE_WRAP_S, GL_CLAMP_TO_EDGE);
  ctx.TexParameteri(GL_TEXTURE_2D, GL_TEXTURE_WRAP_T, GL_CLAMP_TO_EDGE);

  const GLuint prog = testutil::BuildProgramOrDie(ctx, sc.vs, sc.fs);
  ctx.UseProgram(prog);
  if (const GLint u = ctx.GetUniformLocation(prog, "u_s0"); u >= 0) {
    ctx.Uniform1f(u, 0.8125f);
  }
  if (const GLint u = ctx.GetUniformLocation(prog, "u_s1"); u >= 0) {
    ctx.Uniform1f(u, -1.5f);
  }
  if (const GLint u = ctx.GetUniformLocation(prog, "u_v0"); u >= 0) {
    ctx.Uniform4f(u, 0.25f, -0.5f, 1.5f, 0.125f);
  }
  if (const GLint u = ctx.GetUniformLocation(prog, "u_tex"); u >= 0) {
    ctx.Uniform1i(u, 0);
  }

  const GLint in_loc = ctx.GetAttribLocation(prog, "a_in");
  const GLint mix_loc = ctx.GetAttribLocation(prog, "a_mix");
  GLuint bufs[2] = {0, 0};
  if (sc.use_buffers) ctx.GenBuffers(2, bufs);
  if (in_loc >= 0) {
    const GLuint loc = static_cast<GLuint>(in_loc);
    ctx.EnableVertexAttribArray(loc);
    if (sc.use_buffers) {
      ctx.BindBuffer(GL_ARRAY_BUFFER, bufs[0]);
      ctx.BufferData(GL_ARRAY_BUFFER,
                     static_cast<GLsizeiptr>(sc.a_in.size() * sizeof(float)),
                     sc.a_in.data(), GL_STATIC_DRAW);
      ctx.VertexAttribPointer(loc, 4, GL_FLOAT, GL_FALSE, 0, nullptr);
      ctx.BindBuffer(GL_ARRAY_BUFFER, 0);
    } else {
      ctx.VertexAttribPointer(loc, 4, GL_FLOAT, GL_FALSE, 0, sc.a_in.data());
    }
  }
  if (mix_loc >= 0) {
    const GLuint loc = static_cast<GLuint>(mix_loc);
    if (!sc.mix_enabled) {
      // Disabled array: the constant-attribute fill path.
      ctx.VertexAttrib4f(loc, 0.3f, -0.7f, 0.0f, 1.0f);
    } else {
      ctx.EnableVertexAttribArray(loc);
      const GLboolean norm = sc.mix_normalized ? GL_TRUE : GL_FALSE;
      if (sc.use_buffers) {
        ctx.BindBuffer(GL_ARRAY_BUFFER, bufs[1]);
        ctx.BufferData(GL_ARRAY_BUFFER,
                       static_cast<GLsizeiptr>(sc.a_mix.size()),
                       sc.a_mix.data(), GL_STATIC_DRAW);
        ctx.VertexAttribPointer(loc, 2, sc.mix_type, norm, sc.mix_stride,
                                nullptr);
        ctx.BindBuffer(GL_ARRAY_BUFFER, 0);
      } else {
        ctx.VertexAttribPointer(loc, 2, sc.mix_type, norm, sc.mix_stride,
                                sc.a_mix.data());
      }
    }
  }

  ctx.ClearColor(0.06f, 0.12f, 0.25f, 1.0f);
  ctx.Clear(GL_COLOR_BUFFER_BIT | GL_DEPTH_BUFFER_BIT);
  ctx.DrawArrays(GL_TRIANGLES, 0, sc.tri_verts);
  if (sc.point_verts > 0) {
    ctx.DrawArrays(GL_POINTS, sc.tri_verts, sc.point_verts);
  }

  DrawOutcome out;
  out.err = ctx.GetError();
  out.reset = ctx.GetGraphicsResetStatus();
  out.draw_error = ctx.last_draw_error();
  out.counts = alu.counts();
  out.fb = testutil::ReadRgba(ctx, kDrawW, kDrawH);
  return out;
}

struct EngineLeg {
  ExecEngine engine;
  int vertex_batch;
  const char* what;
};

// Every non-reference configuration; the kCompiled leg is skipped outside
// the jit budget (it invokes the host toolchain for both stages).
constexpr EngineLeg kDrawLegs[] = {
    {ExecEngine::kTreeWalk, 0, "tree"},
    {ExecEngine::kBatchedVm, 0, "batched+scalar-vertex"},
    {ExecEngine::kBatchedVm, 1, "batched"},
    {ExecEngine::kCompiled, 1, "compiled"},
};

void CompareOutcome(const DrawOutcome& got, const DrawOutcome& ref,
                    const char* what) {
  EXPECT_EQ(got.err, ref.err) << what << " GL error";
  EXPECT_EQ(got.reset, ref.reset) << what << " reset status";
  EXPECT_EQ(got.draw_error, ref.draw_error) << what << " draw error";
  ExpectCountsEq(got.counts, ref.counts, what);
  ASSERT_EQ(got.fb.size(), ref.fb.size());
  if (got.fb != ref.fb) {
    std::size_t first = 0;
    while (first < got.fb.size() && got.fb[first] == ref.fb[first]) ++first;
    const std::size_t px = first / 4;
    ADD_FAILURE() << what << " framebuffer differs first at byte " << first
                  << " (pixel " << px % kDrawW << "," << px / kDrawW << "): "
                  << static_cast<int>(got.fb[first]) << " vs "
                  << static_cast<int>(ref.fb[first]);
  }
}

// True when the framebuffer holds more than one distinct pixel value — the
// sweep-level guard that the corpus actually rasterizes something.
bool HasCoverage(const std::vector<std::uint8_t>& fb) {
  for (std::size_t i = 4; i + 3 < fb.size(); i += 4) {
    if (std::memcmp(fb.data(), fb.data() + i, 4) != 0) return true;
  }
  return false;
}

void RunWholeDrawCase(std::uint64_t seed, bool vc4_alu, bool with_jit,
                      int* rasterized) {
  const DrawScene sc = GenDrawScene(seed);
  SCOPED_TRACE(StrFormat(
      "draw seed=%llu alu=%s tris=%d points=%d threads=%d mix=0x%x%s%s%s",
      static_cast<unsigned long long>(seed), vc4_alu ? "vc4" : "exact",
      sc.tri_verts, sc.point_verts, sc.threads,
      static_cast<unsigned>(sc.mix_type), sc.mix_normalized ? " norm" : "",
      sc.use_buffers ? " vbo" : "", sc.mix_enabled ? "" : " mix-const"));
  const DrawOutcome ref =
      RunWholeDraw(sc, ExecEngine::kBytecodeVm, vc4_alu, 0, 0);
  EXPECT_EQ(ref.err, GL_NO_ERROR) << "clean corpus drew with an error";
  EXPECT_TRUE(ref.draw_error.empty()) << ref.draw_error;
  *rasterized += HasCoverage(ref.fb);
  for (const EngineLeg& leg : kDrawLegs) {
    if (leg.engine == ExecEngine::kCompiled && !with_jit) continue;
    const DrawOutcome got =
        RunWholeDraw(sc, leg.engine, vc4_alu, leg.vertex_batch, 0);
    CompareOutcome(got, ref, leg.what);
  }
}

void RunWholeDrawSweep(bool vc4_alu) {
  constexpr std::uint64_t kDrawSeedBase = 20260901;
  int rasterized = 0;
  for (int i = 0; i < g_draw_iters; ++i) {
    const std::uint64_t seed = kDrawSeedBase + static_cast<std::uint64_t>(i);
    RunWholeDrawCase(seed, vc4_alu, /*with_jit=*/i < g_jit_iters,
                     &rasterized);
    if (::testing::Test::HasFailure()) {
      const DrawScene sc = GenDrawScene(seed);
      std::fprintf(stderr,
                   "[whole-draw] FAILURE seed=%llu (%s alu) — vertex:\n%s\n"
                   "fragment:\n%s\n",
                   static_cast<unsigned long long>(seed),
                   vc4_alu ? "vc4" : "exact", sc.vs.c_str(), sc.fs.c_str());
      FAIL() << "whole-draw differential failed at seed " << seed
             << " (iteration " << i << " of " << g_draw_iters << ")";
    }
  }
  if (g_draw_iters >= 10) {
    EXPECT_GT(rasterized, 0) << "whole-draw corpus never covered a pixel";
  }
}

TEST(WholeDrawFuzzTest, FourEngineDifferentialExactAlu) {
  RunWholeDrawSweep(/*vc4_alu=*/false);
}

TEST(WholeDrawFuzzTest, FourEngineDifferentialVc4Alu) {
  RunWholeDrawSweep(/*vc4_alu=*/true);
}

// Vertex-stage abort parity end-to-end: a draw whose VERTEX stage traps
// (declared-but-undefined call behind a lane-varying condition) or trips
// the draw_budget watchdog must abort transactionally with the identical
// GL error, reset status and message — the batched path reports the FIRST
// trapping vertex's message, same as the scalar loop — and a clean seed
// must render identically, across every engine leg.
void RunWholeDrawTrapCase(std::uint64_t seed, bool vc4_alu, bool with_jit,
                          int* aborted, int* completed) {
  Rng rng(seed ^ 0x7e57ab1eull);
  DrawScene sc;
  sc.tri_verts = 3 * static_cast<int>(rng.NextInt(1, 25));
  sc.point_verts = 0;
  sc.threads = 1;
  std::uint64_t budget = 0;
  const bool budget_shape = rng.NextInt(0, 99) < 45;
  const float thresh = rng.NextFloat(0.2f, 1.6f);
  if (budget_shape) {
    // Watchdog shape: uniform control flow (so the kCompiled leg really
    // compiles the vertex stage and trips inside RunBatchJit's checkpoint)
    // with an ALU total that scales with the vertex count; the budget
    // lands near it so some seeds trip and some complete.
    sc.vs =
        "attribute vec4 a_in;\n"
        "varying vec4 v_in;\n"
        "void main() {\n"
        "  float acc = 0.0;\n"
        "  for (int i = 0; i < 24; ++i) { acc += fract(acc + a_in.x) + "
        "0.03125; }\n"
        "  v_in = vec4(acc * 0.01, a_in.y, 0.5, 1.0);\n"
        "  gl_Position = vec4(a_in.x, a_in.y, 0.0, 1.0);\n"
        "}\n";
    budget = static_cast<std::uint64_t>(rng.NextInt(200, 40000));
  } else {
    // Divergent trap shape: vs_jit declines (non-uniform control flow), so
    // the kCompiled leg exercises the batched-interpreter fallback.
    sc.vs = StrFormat(
        "attribute vec4 a_in;\n"
        "varying vec4 v_in;\n"
        "float poison(float x);\n"
        "void main() {\n"
        "  float acc = a_in.w;\n"
        "  if (a_in.z > %.5f) { acc += poison(acc); }\n"
        "  v_in = vec4(acc, a_in.y, 0.5, 1.0);\n"
        "  gl_Position = vec4(a_in.x, a_in.y, 0.0, 1.0);\n"
        "}\n",
        static_cast<double>(thresh));
  }
  sc.fs =
      "precision highp float;\n"
      "varying vec4 v_in;\n"
      "void main() { gl_FragColor = fract(v_in); }\n";
  sc.a_in.resize(static_cast<std::size_t>(sc.tri_verts) * 4);
  for (float& f : sc.a_in) f = rng.NextFloat(-1.2f, 1.8f);

  SCOPED_TRACE(StrFormat(
      "trap-draw seed=%llu alu=%s shape=%s tris=%d budget=%llu",
      static_cast<unsigned long long>(seed), vc4_alu ? "vc4" : "exact",
      budget_shape ? "budget" : "poison", sc.tri_verts,
      static_cast<unsigned long long>(budget)));
  const DrawOutcome ref =
      RunWholeDraw(sc, ExecEngine::kBytecodeVm, vc4_alu, 0, budget);
  ++*(ref.draw_error.empty() ? completed : aborted);
  for (const EngineLeg& leg : kDrawLegs) {
    if (leg.engine == ExecEngine::kCompiled && !with_jit) continue;
    const DrawOutcome got =
        RunWholeDraw(sc, leg.engine, vc4_alu, leg.vertex_batch, budget);
    CompareOutcome(got, ref, leg.what);
  }
}

void RunWholeDrawTrapSweep(bool vc4_alu) {
  constexpr std::uint64_t kTrapDrawSeedBase = 20260921;
  int aborted = 0;
  int completed = 0;
  for (int i = 0; i < g_draw_iters; ++i) {
    const std::uint64_t seed =
        kTrapDrawSeedBase + static_cast<std::uint64_t>(i);
    RunWholeDrawTrapCase(seed, vc4_alu, /*with_jit=*/i < g_jit_iters,
                         &aborted, &completed);
    if (::testing::Test::HasFailure()) {
      FAIL() << "whole-draw trap parity failed at seed " << seed
             << " (iteration " << i << " of " << g_draw_iters << ")";
    }
  }
  // The corpus must mix outcomes: some draws abort, some complete (guarded
  // so a tiny --draw_iters smoke run cannot fail spuriously).
  if (g_draw_iters >= 10) {
    EXPECT_GT(aborted, 0) << "trap-draw corpus produced no aborted draw";
    EXPECT_GT(completed, 0) << "trap-draw corpus produced no clean draw";
  }
}

TEST(WholeDrawFuzzTest, VertexTrapAndWatchdogParityExactAlu) {
  RunWholeDrawTrapSweep(/*vc4_alu=*/false);
}

TEST(WholeDrawFuzzTest, VertexTrapAndWatchdogParityVc4Alu) {
  RunWholeDrawTrapSweep(/*vc4_alu=*/true);
}

}  // namespace
}  // namespace mgpu::gles2

// Custom main: gtest_main cannot parse --fuzz_iters. InitGoogleTest strips
// gtest's own flags first, leaving ours.
int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--fuzz_iters=", 13) == 0) {
      g_fuzz_iters = std::atoi(argv[i] + 13);
    } else if (std::strncmp(argv[i], "--jit_iters=", 12) == 0) {
      g_jit_iters = std::atoi(argv[i] + 12);
    } else if (std::strncmp(argv[i], "--draw_iters=", 13) == 0) {
      g_draw_iters = std::atoi(argv[i] + 13);
    }
  }
  if (g_draw_iters < 0) {
    // Each whole-draw seed spins up ~5 full contexts (link + two draws
    // each), so the default budget tracks --fuzz_iters at a fraction —
    // which also scales it down automatically under sanitizers.
    g_draw_iters = std::max(8, g_fuzz_iters / 8);
  }
  std::printf(
      "fuzz harness: %d seeded programs per stage and ALU model, first %d "
      "also through the compiled engine, %d whole-draw scenes\n",
      g_fuzz_iters, g_jit_iters, g_draw_iters);
  return RUN_ALL_TESTS();
}
