// Bit-identity and op-count lockdown for the runtime-dispatched SIMD tier
// of the batched VM (src/glsl/simd.h, evalcore.cc, builtins.cc).
//
// Three layers of assertion:
//   1. AluModel::CountAlu(n) is exactly n individual Count(1) calls — the
//      contract that lets SIMD kernels charge a whole instruction at once.
//   2. Every Eval*BatchSimd kernel is bit-identical (cells AND counts) to
//      its scalar SoA counterpart on adversarial inputs: NaN (quiet and
//      signaling payloads), +/-0, +/-inf, denormals, sparse lane masks,
//      stride-0 broadcast operands — at every SIMD level the host supports.
//   3. A fixed vector-heavy fragment shader run through the real VM: the
//      batched executor with SIMD forced on must reproduce the per-lane
//      scalar VM's gl_FragColor bits and the summed per-lane op counts,
//      under ExactAlu and both Vc4Alu profiles (satellite: counts equal the
//      per-lane scalar sum under both profiles).
#include <gtest/gtest.h>

#include <array>
#include <bit>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "glsl/alu.h"
#include "glsl/builtins.h"
#include "glsl/compile.h"
#include "glsl/evalcore.h"
#include "glsl/ir.h"
#include "glsl/simd.h"
#include "glsl/value.h"
#include "glsl/vm.h"
#include "vc4/alu.h"
#include "vc4/profiles.h"

namespace mgpu::glsl {
namespace {

std::uint32_t Bits(float f) { return std::bit_cast<std::uint32_t>(f); }
float FromBits(std::uint32_t u) { return std::bit_cast<float>(u); }

// Two adversarial float pools, both with specials first so every lane sees
// several, then a spread of ordinary magnitudes. Indexed modularly by
// (lane, component).
//
// kPoolArith has NO NaN inputs: when BOTH operands of a commutative op are
// NaNs with different bit patterns, which payload propagates depends on the
// operand order the compiler picked for the scalar instruction (GCC freely
// swaps addss/mulss operands), so bit-identity between the scalar and SIMD
// compilations of the same kernel is not achievable — and not part of the
// contract. NaNs *generated* inside a chain are safe: every SSE invalid
// operation produces the same indefinite pattern (0xffc00000), so any two
// NaNs that meet carry identical bits and either choice yields the same
// result. Infinities and zeros in this pool exercise exactly that.
const float kPoolArith[] = {
    FromBits(0x7f800000u),        // +inf
    FromBits(0xff800000u),        // -inf
    0.0f,
    FromBits(0x80000000u),        // -0.0
    FromBits(0x00000001u),        // smallest denormal
    FromBits(0x807fffffu),        // largest negative denormal
    1.0f,    -1.0f,   0.5f,   -0.5f,  1.5f,    -2.75f,  3.25f,
    1e-20f,  -1e20f,  123.456f, -0.0625f, 7.0f, -7.5f,  0.999f, 1.001f,
};
// kPoolNaN adds distinct NaN payloads (quiet, negative, signaling) for the
// ops whose NaN handling is order-insensitive: bitwise sign ops, compare/
// blend min/max/step, the rounding family, and plain component gathers.
const float kPoolNaN[] = {
    FromBits(0x7fc00000u),        // quiet NaN
    FromBits(0xffc00001u),        // negative quiet NaN, nonzero payload
    FromBits(0x7f800001u),        // signaling NaN payload
    FromBits(0x7f800000u),        // +inf
    FromBits(0xff800000u),        // -inf
    0.0f,
    FromBits(0x80000000u),        // -0.0
    FromBits(0x00000001u),        // smallest denormal
    FromBits(0x807fffffu),        // largest negative denormal
    1.0f,    -1.0f,   0.5f,   -0.5f,  1.5f,    -2.75f,  3.25f,
    1e-20f,  -1e20f,  123.456f, -0.0625f, 7.0f, -7.5f,  0.999f, 1.001f,
};

float PoolAt(std::span<const float> pool, int lane, int comp, int salt) {
  return pool[static_cast<std::size_t>(lane * 5 + comp * 3 + salt) %
              pool.size()];
}

// Builds a per-lane plane (stride 1) of `t`-typed values filled from the
// pool. `salt` decorrelates planes so binary ops see mixed special pairs.
std::vector<Value> MakePlane(BaseType t, int salt,
                             std::span<const float> pool) {
  std::vector<Value> plane;
  plane.reserve(kVmLanes);
  for (int l = 0; l < kVmLanes; ++l) {
    Value v{MakeType(t)};
    for (int k = 0; k < v.count(); ++k) v.SetF(k, PoolAt(pool, l, k, salt));
    plane.push_back(v);
  }
  return plane;
}

std::vector<Value> MakeDstPlane(Type t) {
  return std::vector<Value>(static_cast<std::size_t>(kVmLanes), Value{t});
}

void ExpectCountsEq(const OpCounts& a, const OpCounts& b, const char* what) {
  EXPECT_EQ(a.alu, b.alu) << what << " (alu)";
  EXPECT_EQ(a.sfu, b.sfu) << what << " (sfu)";
  EXPECT_EQ(a.sfu_trans, b.sfu_trans) << what << " (sfu_trans)";
  EXPECT_EQ(a.tmu, b.tmu) << what << " (tmu)";
  EXPECT_EQ(a.tmu_miss, b.tmu_miss) << what << " (tmu_miss)";
}

void ExpectPlanesBitEq(const std::vector<Value>& a,
                       const std::vector<Value>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t l = 0; l < a.size(); ++l) {
    ASSERT_EQ(a[l].count(), b[l].count()) << "lane " << l;
    for (int k = 0; k < a[l].count(); ++k) {
      EXPECT_EQ(Bits(a[l].F(k)), Bits(b[l].F(k)))
          << "lane " << l << " comp " << k;
    }
  }
}

// SIMD levels worth exercising on this host (kScalar always; each hardware
// tier when available — Resolve clamps to the detected level).
std::vector<simd::Level> HostLevels() {
  std::vector<simd::Level> ls{simd::Level::kScalar};
  const simd::Level det = simd::DetectedLevel();
  if (det >= simd::Level::kSse2) ls.push_back(simd::Level::kSse2);
  if (det >= simd::Level::kAvx2) ls.push_back(simd::Level::kAvx2);
  return ls;
}

const std::uint32_t kMasks[] = {0xffffffffu, 0x00000001u, 0x80000001u,
                                0x55555555u, 0x0000fff0u};

// ---------------------------------------------------------------------------

TEST(SimdCounts, CountAluEqualsRepeatedCount1) {
  ExactAlu a, b;
  for (int i = 0; i < 137; ++i) a.Count(1);
  b.CountAlu(137);
  ExpectCountsEq(a.counts(), b.counts(), "CountAlu(137) vs 137x Count(1)");
  // And it composes with the other counters untouched.
  EXPECT_EQ(b.counts().sfu, 0u);
  EXPECT_EQ(b.counts().tmu, 0u);
}

TEST(SimdLevel, ResolveClampsAndNames) {
  const simd::Level det = simd::DetectedLevel();
  EXPECT_EQ(simd::Resolve(0), simd::Level::kScalar);
  EXPECT_LE(simd::Resolve(2), det);
  EXPECT_LE(simd::Resolve(-1), det);
  EXPECT_STREQ(simd::LevelName(simd::Level::kScalar), "scalar");
  EXPECT_STREQ(simd::LevelName(simd::Level::kSse2), "sse2");
  EXPECT_STREQ(simd::LevelName(simd::Level::kAvx2), "avx2");
}

TEST(SimdKernels, ArithBitIdentical) {
  const BinOp ops[] = {BinOp::kAdd, BinOp::kSub, BinOp::kMul, BinOp::kDiv,
                       BinOp::kLt, BinOp::kGe};
  const BaseType shapes[] = {BaseType::kVec2, BaseType::kVec3, BaseType::kVec4,
                             BaseType::kMat3};
  for (simd::Level level : HostLevels()) {
    SCOPED_TRACE(simd::LevelName(level));
    for (BaseType shape : shapes) {
      for (BinOp op : ops) {
        SCOPED_TRACE(static_cast<int>(op));
        const bool cmp = op == BinOp::kLt || op == BinOp::kGe;
        if (cmp && MakeType(shape).CellCount() > 1) continue;  // scalar-only op
        const std::vector<Value> l = MakePlane(shape, 0, kPoolArith);
        const std::vector<Value> r = MakePlane(shape, 7, kPoolArith);
        // Scalar rhs broadcast variant too (vec OP float).
        const std::vector<Value> rs =
            MakePlane(BaseType::kFloat, 11, kPoolArith);
        const Type out_t = cmp ? MakeType(BaseType::kBool) : MakeType(shape);
        for (std::uint32_t mask : kMasks) {
          for (int broadcast = 0; broadcast < (cmp ? 1 : 3); ++broadcast) {
            // broadcast: 0 = vec OP vec, 1 = vec OP scalar(plane),
            //            2 = vec OP scalar(stride-0 shared constant).
            const BatchSrc lb{l.data(), 1};
            const BatchSrc rb = broadcast == 0 ? BatchSrc{r.data(), 1}
                                : broadcast == 1
                                    ? BatchSrc{rs.data(), 1}
                                    : BatchSrc{rs.data(), 0};
            std::vector<Value> want = MakeDstPlane(out_t);
            std::vector<Value> got = MakeDstPlane(out_t);
            ExactAlu alu_want, alu_got;
            EvalArithBatch(alu_want, op, lb, rb, BatchDst{want.data(), 1},
                           mask);
            EvalArithBatchSimd(alu_got, op, lb, rb, BatchDst{got.data(), 1},
                               mask, level);
            ExpectPlanesBitEq(want, got);
            ExpectCountsEq(alu_want.counts(), alu_got.counts(), "arith");
          }
        }
      }
    }
  }
}

TEST(SimdKernels, NegBitIdentical) {
  for (simd::Level level : HostLevels()) {
    SCOPED_TRACE(simd::LevelName(level));
    for (BaseType shape : {BaseType::kFloat, BaseType::kVec4, BaseType::kMat4,
                           BaseType::kIVec3}) {
      const std::vector<Value> v = MakePlane(shape, 3, kPoolNaN);
      for (std::uint32_t mask : kMasks) {
        std::vector<Value> want = MakeDstPlane(MakeType(shape));
        std::vector<Value> got = MakeDstPlane(MakeType(shape));
        ExactAlu alu_want, alu_got;
        EvalNegBatch(alu_want, BatchSrc{v.data(), 1}, BatchDst{want.data(), 1},
                     mask);
        EvalNegBatchSimd(alu_got, BatchSrc{v.data(), 1},
                         BatchDst{got.data(), 1}, mask, level);
        ExpectPlanesBitEq(want, got);
        ExpectCountsEq(alu_want.counts(), alu_got.counts(), "neg");
      }
    }
  }
}

TEST(SimdKernels, CtorBitIdentical) {
  for (simd::Level level : HostLevels()) {
    SCOPED_TRACE(simd::LevelName(level));
    const std::vector<Value> f0 = MakePlane(BaseType::kFloat, 1, kPoolNaN);
    const std::vector<Value> f1 = MakePlane(BaseType::kFloat, 9, kPoolNaN);
    const std::vector<Value> v2 = MakePlane(BaseType::kVec2, 4, kPoolNaN);
    const std::vector<Value> v3 = MakePlane(BaseType::kVec3, 6, kPoolNaN);
    const std::vector<Value> i1 = MakePlane(BaseType::kInt, 2, kPoolNaN);

    struct Case {
      BaseType out;
      std::vector<BatchSrc> args;
    };
    const Case cases[] = {
        {BaseType::kVec4, {{f0.data(), 1}}},                    // splat
        {BaseType::kVec4, {{v2.data(), 1}, {f0.data(), 1}, {f1.data(), 1}}},
        {BaseType::kVec3, {{f0.data(), 1}, {v2.data(), 1}}},
        {BaseType::kVec2, {{f0.data(), 0}, {f1.data(), 1}}},    // shared arg
        {BaseType::kVec4, {{v3.data(), 1}, {f0.data(), 1}}},
        {BaseType::kVec3, {{i1.data(), 1}, {f0.data(), 1}, {f1.data(), 1}}},
        {BaseType::kFloat, {{v3.data(), 1}}},                   // truncate
    };
    for (const Case& c : cases) {
      for (std::uint32_t mask : kMasks) {
        std::vector<Value> want = MakeDstPlane(MakeType(c.out));
        std::vector<Value> got = MakeDstPlane(MakeType(c.out));
        ExactAlu alu_want, alu_got;
        EvalCtorBatch(alu_want, c.args, BatchDst{want.data(), 1}, mask);
        EvalCtorBatchSimd(alu_got, c.args, BatchDst{got.data(), 1}, mask,
                          level);
        ExpectPlanesBitEq(want, got);
        ExpectCountsEq(alu_want.counts(), alu_got.counts(), "ctor");
      }
    }
  }
}

TEST(SimdKernels, BuiltinsBitIdentical) {
  const TextureFn no_tex;
  struct Case {
    Builtin b;
    BaseType result;
    std::vector<BaseType> args;
    // Ops that only compare/blend/round/copy NaNs (never feed two distinct
    // input NaNs through a commutative arith instruction) get the
    // NaN-payload pool; arithmetic chains get the NaN-free pool (see the
    // pool comments above).
    bool nan_inputs = true;
  };
  const Case cases[] = {
      {Builtin::kAbs, BaseType::kVec4, {BaseType::kVec4}},
      {Builtin::kFloor, BaseType::kVec4, {BaseType::kVec4}},
      {Builtin::kCeil, BaseType::kVec3, {BaseType::kVec3}},
      {Builtin::kFract, BaseType::kVec4, {BaseType::kVec4}},
      {Builtin::kMin, BaseType::kVec4, {BaseType::kVec4, BaseType::kVec4}},
      {Builtin::kMin, BaseType::kVec4, {BaseType::kVec4, BaseType::kFloat}},
      {Builtin::kMax, BaseType::kVec4, {BaseType::kVec4, BaseType::kVec4}},
      {Builtin::kMax, BaseType::kVec3, {BaseType::kVec3, BaseType::kFloat}},
      {Builtin::kClamp, BaseType::kVec4,
       {BaseType::kVec4, BaseType::kVec4, BaseType::kVec4}},
      {Builtin::kClamp, BaseType::kVec4,
       {BaseType::kVec4, BaseType::kFloat, BaseType::kFloat}},
      {Builtin::kMix, BaseType::kVec4,
       {BaseType::kVec4, BaseType::kVec4, BaseType::kVec4}, false},
      {Builtin::kMix, BaseType::kVec3,
       {BaseType::kVec3, BaseType::kVec3, BaseType::kFloat}, false},
      {Builtin::kStep, BaseType::kVec4, {BaseType::kVec4, BaseType::kVec4}},
      {Builtin::kStep, BaseType::kVec4, {BaseType::kFloat, BaseType::kVec4}},
      {Builtin::kDot, BaseType::kFloat,
       {BaseType::kVec4, BaseType::kVec4}, false},
      {Builtin::kDot, BaseType::kFloat,
       {BaseType::kVec3, BaseType::kVec3}, false},
      {Builtin::kNormalize, BaseType::kVec3, {BaseType::kVec3}, false},
      {Builtin::kNormalize, BaseType::kVec4, {BaseType::kVec4}, false},
      {Builtin::kMatrixCompMult, BaseType::kMat3,
       {BaseType::kMat3, BaseType::kMat3}, false},
  };
  for (simd::Level level : HostLevels()) {
    SCOPED_TRACE(simd::LevelName(level));
    for (const Case& c : cases) {
      SCOPED_TRACE(static_cast<int>(c.b));
      EXPECT_TRUE(IsSimdBuiltin(c.b));
      std::vector<std::vector<Value>> arg_planes;
      std::vector<BatchSrc> args;
      int salt = 0;
      for (BaseType at : c.args) {
        arg_planes.push_back(MakePlane(
            at, salt,
            c.nan_inputs ? std::span<const float>(kPoolNaN)
                         : std::span<const float>(kPoolArith)));
        salt += 13;
      }
      for (const auto& p : arg_planes) args.push_back(BatchSrc{p.data(), 1});
      for (std::uint32_t mask : kMasks) {
        std::vector<Value> want = MakeDstPlane(MakeType(c.result));
        std::vector<Value> got = MakeDstPlane(MakeType(c.result));
        ExactAlu alu_want, alu_got;
        EvalBuiltinBatch(c.b, MakeType(c.result), args, alu_want, no_tex,
                         BatchDst{want.data(), 1}, mask);
        EvalBuiltinBatchSimd(c.b, MakeType(c.result), args, alu_got, no_tex,
                             BatchDst{got.data(), 1}, mask, level);
        ExpectPlanesBitEq(want, got);
        ExpectCountsEq(alu_want.counts(), alu_got.counts(), "builtin");
      }
    }
  }
}

// SFU-routed builtins must never be claimed by the SIMD tier.
TEST(SimdKernels, SfuAndTextureStayScalar) {
  for (Builtin b : {Builtin::kInverseSqrt, Builtin::kSqrt, Builtin::kExp2,
                    Builtin::kLog2, Builtin::kPow, Builtin::kSin,
                    Builtin::kMod, Builtin::kSign, Builtin::kSmoothstep,
                    Builtin::kTexture2D, Builtin::kLength,
                    Builtin::kDistance}) {
    EXPECT_FALSE(IsSimdBuiltin(b)) << static_cast<int>(b);
  }
}

// ---------------------------------------------------------------------------
// Whole-VM lockdown: a fixed vector-heavy shader, batched-with-SIMD vs the
// per-lane scalar sum, under all three ALU models.
// ---------------------------------------------------------------------------

const char* kVectorHeavySrc = R"(
precision highp float;
varying vec4 v_in;
uniform vec4 u_v0;
uniform float u_s0;
void main() {
  vec4 a = v_in * u_v0 + vec4(0.25);
  vec3 n = normalize(a.xyz + vec3(0.5, u_s0, 1.5));
  float d = dot(n, vec3(a.y, a.z, a.w));
  vec4 m = mix(a, vec4(d), clamp(a, 0.0, 1.0));
  vec4 f = floor(m * 7.5) - fract(m) + ceil(m * 0.5);
  vec4 mn = min(max(f, -a), abs(m));
  gl_FragColor = mn + vec4(step(0.5, d)) * 0.125 - a * 0.5;
}
)";

struct LaneRef {
  std::array<std::uint32_t, 4> color{};
  OpCounts delta;
  bool kept = false;
};

OpCounts Minus(const OpCounts& a, const OpCounts& b) {
  OpCounts d;
  d.alu = a.alu - b.alu;
  d.sfu = a.sfu - b.sfu;
  d.sfu_trans = a.sfu_trans - b.sfu_trans;
  d.tmu = a.tmu - b.tmu;
  d.tmu_miss = a.tmu_miss - b.tmu_miss;
  return d;
}

void RunShaderAB(AluModel& alu_s, AluModel& alu_b, simd::Level batch_level) {
  CompileResult cr = CompileGlsl(kVectorHeavySrc, Stage::kFragment);
  ASSERT_TRUE(cr.ok) << cr.info_log;
  std::shared_ptr<const VmProgram> prog = LowerToBytecode(*cr.shader);

  VmExec scalar(prog, alu_s);
  VmExec batch(prog, alu_b);
  batch.SetSimdLevel(batch_level);

  for (VmExec* e : {&scalar, &batch}) {
    Value& uv = e->GlobalAt(e->GlobalSlot("u_v0"));
    uv.SetF(0, 1.25f);
    uv.SetF(1, -0.5f);
    uv.SetF(2, 3.0f);
    uv.SetF(3, 0.125f);
    e->GlobalAt(e->GlobalSlot("u_s0")).SetF(0, 0.75f);
  }
  const int in_slot = scalar.GlobalSlot("v_in");
  const int color_slot = scalar.GlobalSlot("gl_FragColor");
  ASSERT_GE(in_slot, 0);
  ASSERT_GE(color_slot, 0);

  std::array<std::array<float, 4>, kVmLanes> lane_in{};
  for (int l = 0; l < kVmLanes; ++l) {
    for (int k = 0; k < 4; ++k) {
      lane_in[static_cast<std::size_t>(l)][static_cast<std::size_t>(k)] =
          PoolAt(kPoolArith, l, k, 17);
    }
  }

  std::array<LaneRef, kVmLanes> ref;
  alu_s.ResetCounts();
  for (int l = 0; l < kVmLanes; ++l) {
    const OpCounts before = alu_s.counts();
    Value& v = scalar.GlobalAt(in_slot);
    for (int k = 0; k < 4; ++k) {
      v.SetF(k, lane_in[static_cast<std::size_t>(l)]
                       [static_cast<std::size_t>(k)]);
    }
    LaneRef& r = ref[static_cast<std::size_t>(l)];
    r.kept = scalar.Run();
    r.delta = Minus(alu_s.counts(), before);
    const Value& c = scalar.GlobalAt(color_slot);
    for (int k = 0; k < 4; ++k) {
      r.color[static_cast<std::size_t>(k)] = Bits(c.F(k));
    }
  }

  for (int n = 1; n <= kVmLanes; ++n) {
    SCOPED_TRACE(n);
    alu_b.ResetCounts();
    for (int l = 0; l < n; ++l) {
      Value& v = batch.LaneGlobalAt(in_slot, l);
      for (int k = 0; k < 4; ++k) {
        v.SetF(k, lane_in[static_cast<std::size_t>(l)]
                         [static_cast<std::size_t>(k)]);
      }
    }
    const std::uint32_t kept = batch.RunBatch(n);
    OpCounts want;
    for (int l = 0; l < n; ++l) {
      const LaneRef& r = ref[static_cast<std::size_t>(l)];
      want += r.delta;
      EXPECT_EQ((kept >> l) & 1u, r.kept ? 1u : 0u) << "lane " << l;
      const Value& c = batch.LaneGlobalAt(color_slot, l);
      for (int k = 0; k < 4; ++k) {
        EXPECT_EQ(Bits(c.F(k)), r.color[static_cast<std::size_t>(k)])
            << "lane " << l << " comp " << k;
      }
    }
    ExpectCountsEq(want, alu_b.counts(), "batch vs scalar sum");
  }
}

TEST(SimdVm, ExactAluBatchMatchesScalarSum) {
  for (simd::Level level : HostLevels()) {
    SCOPED_TRACE(simd::LevelName(level));
    ExactAlu alu_s, alu_b;
    RunShaderAB(alu_s, alu_b, level);
  }
}

TEST(SimdVm, Vc4IeeeExactProfileBatchMatchesScalarSum) {
  for (simd::Level level : HostLevels()) {
    SCOPED_TRACE(simd::LevelName(level));
    vc4::Vc4Alu alu_s(vc4::IeeeExact()), alu_b(vc4::IeeeExact());
    RunShaderAB(alu_s, alu_b, level);
  }
}

// The reduced-precision profile is not round-identity: the executor must
// drop to the scalar path on its own no matter what level the knob asks
// for, and results must still match the scalar engine exactly.
TEST(SimdVm, Vc4VideoCoreProfileBatchMatchesScalarSum) {
  for (simd::Level level : HostLevels()) {
    SCOPED_TRACE(simd::LevelName(level));
    vc4::Vc4Alu alu_s(vc4::VideoCoreIV()), alu_b(vc4::VideoCoreIV());
    RunShaderAB(alu_s, alu_b, level);
  }
}

}  // namespace
}  // namespace mgpu::glsl
