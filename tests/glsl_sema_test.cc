// Semantic rules of GLSL ES 1.00 that matter for the paper's GPGPU usage:
// the no-implicit-conversion rule, mandatory fragment float precision,
// storage qualifier enforcement, the single-output rule and resource limits.
#include <string>

#include "common/strings.h"
#include "glsl_test_util.h"
#include "gtest/gtest.h"

namespace mgpu::glsl {
namespace {

using testutil::MustCompile;
using testutil::MustFail;

constexpr char kPrec[] = "precision highp float;\n";

// --- the fragment default-precision rule (paper challenge context) ---

TEST(SemaTest, FragmentFloatWithoutDefaultPrecisionRejected) {
  const std::string log =
      MustFail("void main() { float x = 1.0; gl_FragColor = vec4(x); }");
  EXPECT_TRUE(Contains(log, "precision"));
}

TEST(SemaTest, FragmentIntHasDefaultPrecision) {
  MustCompile("void main() { int i = 3; if (i > 2) { gl_FragColor = "
              "vec4(1.0); } }");
}

TEST(SemaTest, VertexFloatHasDefaultPrecision) {
  MustCompile("void main() { float x = 1.0; gl_Position = vec4(x); }",
              Stage::kVertex);
}

TEST(SemaTest, ExplicitPrecisionOnDeclSuffices) {
  MustCompile("void main() { highp float x = 1.0; gl_FragColor = vec4(x); }");
}

// --- no implicit conversions ---

TEST(SemaTest, IntToFloatAssignmentRejected) {
  const std::string log =
      MustFail(std::string(kPrec) + "void main() { float x = 1; }");
  EXPECT_TRUE(Contains(log, "implicit"));
}

TEST(SemaTest, IntPlusFloatRejected) {
  MustFail(std::string(kPrec) + "void main() { float x = 1 + 2.0; }");
}

TEST(SemaTest, ConstructorConversionAccepted) {
  MustCompile(std::string(kPrec) +
              "void main() { float x = float(1) + 2.0; gl_FragColor = "
              "vec4(x); }");
}

TEST(SemaTest, FloatIndexRejected) {
  MustFail(std::string(kPrec) +
           "void main() { vec4 v = vec4(0.0); float f = v[1.0]; }");
}

// --- undeclared / redeclared identifiers ---

TEST(SemaTest, UndeclaredIdentifierRejected) {
  MustFail(std::string(kPrec) + "void main() { gl_FragColor = vec4(nope); }");
}

TEST(SemaTest, RedeclarationInSameScopeRejected) {
  MustFail(std::string(kPrec) + "void main() { float a = 1.0; float a; }");
}

TEST(SemaTest, ShadowingInInnerScopeAllowed) {
  MustCompile(std::string(kPrec) + R"(
void main() {
  float a = 1.0;
  { float a = 2.0; gl_FragColor = vec4(a); }
})");
}

TEST(SemaTest, DeclarationVisibleOnlyAfterScopeEnds) {
  MustFail(std::string(kPrec) + R"(
void main() {
  { float inner = 1.0; }
  gl_FragColor = vec4(inner);
})");
}

// --- storage qualifiers ---

TEST(SemaTest, AssignToUniformRejected) {
  MustFail(std::string(kPrec) +
           "uniform float u;\nvoid main() { u = 1.0; }");
}

TEST(SemaTest, AssignToAttributeRejected) {
  MustFail("attribute vec4 a;\nvoid main() { a = vec4(0.0); gl_Position = a; }",
           Stage::kVertex);
}

TEST(SemaTest, AttributeInFragmentRejected) {
  MustFail(std::string(kPrec) + "attribute vec4 a;\nvoid main() {}");
}

TEST(SemaTest, VaryingWritableInVertex) {
  MustCompile("varying vec2 v_uv;\nattribute vec4 a_p;\n"
              "void main() { v_uv = a_p.xy; gl_Position = a_p; }",
              Stage::kVertex);
}

TEST(SemaTest, VaryingReadOnlyInFragment) {
  MustFail(std::string(kPrec) +
           "varying vec2 v_uv;\nvoid main() { v_uv = vec2(0.0); }");
}

TEST(SemaTest, IntVaryingRejected) {
  MustFail("varying int v_i;\nvoid main() { gl_Position = vec4(0.0); }",
           Stage::kVertex);
}

TEST(SemaTest, ConstWithoutInitializerRejected) {
  MustFail(std::string(kPrec) + "void main() { const float k; }");
}

TEST(SemaTest, AssignToConstRejected) {
  MustFail(std::string(kPrec) +
           "void main() { const float k = 1.0; k = 2.0; }");
}

TEST(SemaTest, UniformWithInitializerRejected) {
  MustFail(std::string(kPrec) + "uniform float u = 1.0;\nvoid main() {}");
}

TEST(SemaTest, SamplerMustBeUniform) {
  MustFail(std::string(kPrec) + "void main() { sampler2D s; }");
}

// --- gl_* builtins ---

TEST(SemaTest, GlFragColorWritable) {
  MustCompile(std::string(kPrec) + "void main() { gl_FragColor = vec4(1.0); }");
}

TEST(SemaTest, GlFragDataZeroWritable) {
  MustCompile(std::string(kPrec) +
              "void main() { gl_FragData[0] = vec4(1.0); }");
}

TEST(SemaTest, GlFragDataOutOfRangeRejected) {
  // ES 2.0 guarantees only gl_MaxDrawBuffers == 1 entry: this is the paper's
  // challenge 8 (single output per shader).
  MustFail(std::string(kPrec) + "void main() { gl_FragData[1] = vec4(1.0); }");
}

TEST(SemaTest, GlFragCoordReadOnly) {
  MustFail(std::string(kPrec) + "void main() { gl_FragCoord = vec4(0.0); }");
}

TEST(SemaTest, GlPositionNotVisibleInFragment) {
  MustFail(std::string(kPrec) + "void main() { gl_Position = vec4(0.0); }");
}

TEST(SemaTest, GlFragColorNotVisibleInVertex) {
  MustFail("void main() { gl_FragColor = vec4(0.0); }", Stage::kVertex);
}

TEST(SemaTest, GlPrefixReservedForUserVariables) {
  MustFail(std::string(kPrec) + "float gl_mine;\nvoid main() {}");
}

TEST(SemaTest, BuiltinConstantsReadable) {
  MustCompile(std::string(kPrec) + R"(
void main() {
  if (gl_MaxDrawBuffers == 1) { gl_FragColor = vec4(1.0); }
})");
}

// --- functions ---

TEST(SemaTest, VoidMainRequired) {
  MustFail(std::string(kPrec) + "float main() { return 1.0; }");
}

TEST(SemaTest, MissingMainRejected) {
  MustFail(std::string(kPrec) + "float helper() { return 1.0; }");
}

TEST(SemaTest, RecursionRejected) {
  const std::string log = MustFail(std::string(kPrec) + R"(
float f(float x) { return x <= 0.0 ? 0.0 : f(x - 1.0); }
void main() { gl_FragColor = vec4(f(3.0)); })");
  EXPECT_TRUE(Contains(log, "recursion"));
}

TEST(SemaTest, MutualRecursionRejected) {
  MustFail(std::string(kPrec) + R"(
float g(float x);
float f(float x) { return g(x); }
float g(float x) { return f(x); }
void main() { gl_FragColor = vec4(f(1.0)); })");
}

TEST(SemaTest, OverloadingBySignatureAllowed) {
  MustCompile(std::string(kPrec) + R"(
float pick(float x) { return x; }
float pick(vec2 x) { return x.x; }
void main() { gl_FragColor = vec4(pick(1.0) + pick(vec2(2.0, 3.0))); })");
}

TEST(SemaTest, BuiltinRedefinitionRejected) {
  MustFail(std::string(kPrec) +
           "float sin(float x) { return x; }\nvoid main() {}");
}

TEST(SemaTest, OutArgumentMustBeLValue) {
  MustFail(std::string(kPrec) + R"(
void get(out float x) { x = 1.0; }
void main() { get(1.0 + 2.0); })");
}

TEST(SemaTest, ReturnTypeMismatchRejected) {
  MustFail(std::string(kPrec) +
           "float f() { return 1; }\nvoid main() { gl_FragColor = vec4(f()); }");
}

// --- operators and swizzles ---

TEST(SemaTest, VectorSizeMismatchRejected) {
  MustFail(std::string(kPrec) +
           "void main() { vec3 a = vec3(0.0); vec2 b = vec2(0.0); vec3 c = a "
           "+ b; }");
}

TEST(SemaTest, MatVecMulShapes) {
  MustCompile(std::string(kPrec) + R"(
void main() {
  mat3 m = mat3(1.0);
  vec3 v = vec3(1.0, 2.0, 3.0);
  vec3 a = m * v;
  vec3 b = v * m;
  mat3 mm = m * m;
  gl_FragColor = vec4(a.x + b.y + mm[0][0]);
})");
}

TEST(SemaTest, MixedSwizzleSetsRejected) {
  MustFail(std::string(kPrec) +
           "void main() { vec4 v = vec4(0.0); vec2 s = v.xg; }");
}

TEST(SemaTest, SwizzleBeyondSizeRejected) {
  MustFail(std::string(kPrec) +
           "void main() { vec2 v = vec2(0.0); float z = v.z; }");
}

TEST(SemaTest, RepeatedSwizzleReadAllowed) {
  MustCompile(std::string(kPrec) +
              "void main() { vec2 v = vec2(0.3, 0.0); gl_FragColor = v.xxyy; "
              "}");
}

TEST(SemaTest, RepeatedSwizzleWriteRejected) {
  MustFail(std::string(kPrec) +
           "void main() { vec4 v; v.xx = vec2(1.0); }");
}

TEST(SemaTest, ConstantIndexOutOfRangeRejected) {
  MustFail(std::string(kPrec) + "void main() { vec3 v = vec3(0.0); float f = "
                                "v[3]; }");
}

TEST(SemaTest, LogicalOpsRequireBool) {
  MustFail(std::string(kPrec) + "void main() { float a = 1.0; if (a && a) {} "
                                "}");
}

TEST(SemaTest, TernaryArmTypeMismatchRejected) {
  MustFail(std::string(kPrec) +
           "void main() { float f = true ? 1.0 : 1; }");
}

TEST(SemaTest, ArrayAssignmentRejected) {
  MustFail(std::string(kPrec) +
           "void main() { float a[2]; float b[2]; a = b; }");
}

TEST(SemaTest, ArrayInitializerRejected) {
  MustFail(std::string(kPrec) + "void main() { float a[2] = 1.0; }");
}

// --- constructors ---

TEST(SemaTest, VectorCtorComponentCount) {
  MustFail(std::string(kPrec) + "void main() { vec4 v = vec4(1.0, 2.0); }");
}

TEST(SemaTest, VectorCtorUnusedArgumentRejected) {
  MustFail(std::string(kPrec) +
           "void main() { vec2 v = vec2(vec2(1.0), 3.0); }");
}

TEST(SemaTest, VectorCtorTruncatesLastArgument) {
  MustCompile(std::string(kPrec) +
              "void main() { vec3 v = vec3(vec4(1.0)); gl_FragColor = "
              "vec4(v, 1.0); }");
}

TEST(SemaTest, MatrixCtorExactFill) {
  MustFail(std::string(kPrec) +
           "void main() { mat2 m = mat2(1.0, 2.0, 3.0); }");
}

TEST(SemaTest, MatrixFromMatrixAllowed) {
  MustCompile(std::string(kPrec) +
              "void main() { mat4 m4 = mat4(1.0); mat2 m2 = mat2(m4); "
              "gl_FragColor = vec4(m2[0][0]); }");
}

// --- resource limits ---

TEST(SemaTest, TooManyVaryingsRejected) {
  Limits lim;
  lim.max_varying_vectors = 2;
  MustFail("varying vec4 v0; varying vec4 v1; varying vec4 v2;\n"
           "void main() { gl_Position = vec4(0.0); v0 = v1 = v2 = "
           "vec4(0.0); }",
           Stage::kVertex, lim);
}

TEST(SemaTest, TooManyAttributesRejected) {
  Limits lim;
  lim.max_vertex_attribs = 1;
  MustFail("attribute vec4 a0; attribute vec4 a1;\n"
           "void main() { gl_Position = a0 + a1; }",
           Stage::kVertex, lim);
}

TEST(SemaTest, MatrixVaryingCountsColumns) {
  Limits lim;
  lim.max_varying_vectors = 3;
  MustFail("varying mat4 vm;\nvoid main() { vm = mat4(1.0); gl_Position = "
           "vec4(0.0); }",
           Stage::kVertex, lim);
}

TEST(SemaTest, FragmentHighpDowngradeWarnsWhenUnsupported) {
  Limits lim;
  lim.fragment_highp_float = false;  // Mali-400 class profile
  CompileResult r = CompileGlsl(
      "precision highp float;\nvoid main() { gl_FragColor = vec4(1.0); }",
      Stage::kFragment, lim);
  EXPECT_TRUE(r.ok) << r.info_log;
  EXPECT_TRUE(Contains(r.info_log, "WARNING"));
}

// --- stage-specific statements ---

TEST(SemaTest, DiscardOnlyInFragment) {
  MustFail("void main() { discard; gl_Position = vec4(0.0); }",
           Stage::kVertex);
  MustCompile(std::string(kPrec) +
              "void main() { if (gl_FragCoord.x < 0.0) discard; gl_FragColor "
              "= vec4(1.0); }");
}

TEST(SemaTest, BreakOutsideLoopRejected) {
  MustFail(std::string(kPrec) + "void main() { break; }");
}

TEST(SemaTest, TextureLodOnlyInVertex) {
  MustFail(std::string(kPrec) + "uniform sampler2D s;\n"
           "void main() { gl_FragColor = texture2DLod(s, vec2(0.5), 0.0); }");
}

TEST(SemaTest, TextureBiasOnlyInFragment) {
  MustFail("uniform sampler2D s;\nvoid main() { gl_Position = texture2D(s, "
           "vec2(0.5), 1.0); }",
           Stage::kVertex);
}

TEST(SemaTest, CubeMapsUnsupportedDiagnosed) {
  const std::string log = MustFail(
      std::string(kPrec) + "uniform samplerCube c;\nvoid main() { "
      "gl_FragColor = textureCube(c, vec3(0.0)); }");
  EXPECT_TRUE(Contains(log, "cube"));
}

}  // namespace
}  // namespace mgpu::glsl
