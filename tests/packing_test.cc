// Host-side packing (paper §IV + Fig. 2): bit-rotation correctness and
// pack/unpack round-trips for all five C formats, exhaustive where feasible.
#include "compute/packing.h"

#include <cmath>
#include <limits>

#include "common/bits.h"
#include "common/rng.h"
#include "gtest/gtest.h"

namespace mgpu::compute {
namespace {

TEST(PackingTest, ElemTraits) {
  EXPECT_EQ(ElemBytes(ElemType::kU8), 1);
  EXPECT_EQ(ElemBytes(ElemType::kF32), 4);
  EXPECT_EQ(ElemsPerTexel(ElemType::kI8), 4);
  EXPECT_EQ(ElemsPerTexel(ElemType::kI32), 1);
}

TEST(PackingTest, FloatRotationFieldPlacement) {
  // 1.0f = sign 0, biased exponent 127, mantissa 0.
  const std::uint32_t g = RotateFloatBitsForGpu(FloatToBits(1.0f));
  EXPECT_EQ(g >> 24, 127u);            // byte3 = biased exponent
  EXPECT_EQ((g >> 23) & 1u, 0u);       // sign bit at byte2's MSB
  EXPECT_EQ(g & 0x7fffffu, 0u);        // mantissa
  // -1.0f flips only the sign bit.
  const std::uint32_t gn = RotateFloatBitsForGpu(FloatToBits(-1.0f));
  EXPECT_EQ(gn >> 24, 127u);
  EXPECT_EQ((gn >> 23) & 1u, 1u);
}

TEST(PackingTest, FloatRotationRoundTripExhaustiveExponents) {
  // Every (sign, exponent) pair with assorted mantissas.
  for (std::uint32_t s = 0; s <= 1; ++s) {
    for (std::uint32_t e = 0; e <= 255; ++e) {
      for (const std::uint32_t m : {0u, 1u, 0x2aaaaau, 0x7fffffu}) {
        const std::uint32_t bits = MakeFloatBits(s, e, m);
        EXPECT_EQ(RotateFloatBitsFromGpu(RotateFloatBitsForGpu(bits)), bits);
      }
    }
  }
}

TEST(PackingTest, FloatRotationIsBijectiveOnRandomBits) {
  Rng rng(123);
  for (int i = 0; i < 100000; ++i) {
    const std::uint32_t bits = rng.NextU32();
    EXPECT_EQ(RotateFloatBitsFromGpu(RotateFloatBitsForGpu(bits)), bits);
    EXPECT_EQ(RotateFloatBitsForGpu(RotateFloatBitsFromGpu(bits)), bits);
  }
}

TEST(PackingTest, PackF32ByteLayoutMatchesFig2) {
  // 1.5f: sign 0, exponent 127, mantissa 0x400000 (m22 set).
  const auto texels = PackF32(std::array<float, 1>{1.5f});
  ASSERT_EQ(texels.size(), 4u);
  EXPECT_EQ(texels[3], 127);        // byte3: biased exponent
  EXPECT_EQ(texels[2], 0x40);       // byte2: sign(0) | m22..16 = 100'0000
  EXPECT_EQ(texels[1], 0);
  EXPECT_EQ(texels[0], 0);
  const auto neg = PackF32(std::array<float, 1>{-1.5f});
  EXPECT_EQ(neg[2], 0xC0);          // sign bit joins the high mantissa bits
  EXPECT_EQ(neg[3], 127);
}

TEST(PackingTest, U32LittleEndianLayout) {
  const auto texels = PackU32(std::array<std::uint32_t, 1>{0x04030201u});
  ASSERT_EQ(texels.size(), 4u);
  EXPECT_EQ(texels[0], 1);  // least significant byte in channel R (Eq. 6)
  EXPECT_EQ(texels[1], 2);
  EXPECT_EQ(texels[2], 3);
  EXPECT_EQ(texels[3], 4);
}

TEST(PackingTest, I32TwosComplementUnmodified) {
  // The paper's §VI point vs. Strzodka: the memory format is plain 2's
  // complement, so -1 packs as FF FF FF FF.
  const auto texels = PackI32(std::array<std::int32_t, 1>{-1});
  EXPECT_EQ(texels[0], 0xFF);
  EXPECT_EQ(texels[1], 0xFF);
  EXPECT_EQ(texels[2], 0xFF);
  EXPECT_EQ(texels[3], 0xFF);
}

TEST(PackingTest, RoundTripU8) {
  Rng rng(1);
  const auto v = rng.ByteVector(1001);  // odd size: tail texel padded
  const auto texels = PackU8(v);
  EXPECT_EQ(texels.size() % 4, 0u);
  std::vector<std::uint8_t> back(v.size());
  UnpackU8(texels, back);
  EXPECT_EQ(back, v);
}

TEST(PackingTest, RoundTripI8AllValues) {
  std::vector<std::int8_t> v(256);
  for (int i = 0; i < 256; ++i) v[static_cast<std::size_t>(i)] = static_cast<std::int8_t>(i - 128);
  const auto texels = PackI8(v);
  std::vector<std::int8_t> back(v.size());
  UnpackI8(texels, back);
  EXPECT_EQ(back, v);
}

TEST(PackingTest, RoundTripU32AndI32) {
  Rng rng(2);
  std::vector<std::uint32_t> u(4096);
  std::vector<std::int32_t> s(4096);
  for (std::size_t i = 0; i < u.size(); ++i) {
    u[i] = rng.NextU32();
    s[i] = static_cast<std::int32_t>(rng.NextU32());
  }
  std::vector<std::uint32_t> ub(u.size());
  std::vector<std::int32_t> sb(s.size());
  UnpackU32(PackU32(u), ub);
  UnpackI32(PackI32(s), sb);
  EXPECT_EQ(ub, u);
  EXPECT_EQ(sb, s);
}

TEST(PackingTest, RoundTripF32IncludesSpecials) {
  std::vector<float> v = {
      0.0f, -0.0f, 1.0f, -1.0f, 0.5f, 255.0f, 1.0f / 3.0f,
      std::numeric_limits<float>::max(),
      std::numeric_limits<float>::min(),
      std::numeric_limits<float>::denorm_min(),
      std::numeric_limits<float>::infinity(),
      -std::numeric_limits<float>::infinity(),
  };
  Rng rng(3);
  for (int i = 0; i < 4096; ++i) v.push_back(rng.NextWorkloadFloat());
  std::vector<float> back(v.size());
  UnpackF32(PackF32(v), back);
  for (std::size_t i = 0; i < v.size(); ++i) {
    // Host-side round trip is bit-exact ("the same transformations on the
    // CPU are precise", §V).
    EXPECT_EQ(FloatToBits(back[i]), FloatToBits(v[i])) << v[i];
  }
}

TEST(PackingTest, NanSurvivesRotation) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  std::vector<float> back(1);
  UnpackF32(PackF32(std::array<float, 1>{nan}), back);
  EXPECT_TRUE(std::isnan(back[0]));
}

TEST(PackingTest, HostWorkModelsFusedRotation) {
  // §V: floats need the CPU-side bit re-arrangement, but its ALU ops hide
  // in the copy loop's load-use stalls on the ARM1176, so the model charges
  // zero marginal host work for every format (the transfer-bandwidth term
  // carries the copy itself) — see the calibration notes in EXPERIMENTS.md.
  const auto wf = HostPackWork(ElemType::kF32, 1000);
  const auto wi = HostPackWork(ElemType::kI32, 1000);
  EXPECT_EQ(vc4::CpuSeconds(vc4::Arm1176(), wf), 0.0);
  EXPECT_EQ(vc4::CpuSeconds(vc4::Arm1176(), wi), 0.0);
}

class PackingExhaustiveByte : public ::testing::TestWithParam<int> {};

TEST_P(PackingExhaustiveByte, U8SingleValue) {
  const auto b = static_cast<std::uint8_t>(GetParam());
  std::vector<std::uint8_t> back(1);
  UnpackU8(PackU8(std::array<std::uint8_t, 1>{b}), back);
  EXPECT_EQ(back[0], b);
}

INSTANTIATE_TEST_SUITE_P(AllBoundaries, PackingExhaustiveByte,
                         ::testing::Values(0, 1, 127, 128, 129, 254, 255));

}  // namespace
}  // namespace mgpu::compute
