// GLSL ES 1.00 built-in function library behaviour, including the exact
// definitions the paper's numeric transformations depend on (floor, mod,
// exp2, log2, sign) and parameterized sweeps over representative inputs.
#include <array>
#include <cmath>
#include <string>
#include <tuple>

#include "common/strings.h"
#include "glsl_test_util.h"
#include "gtest/gtest.h"

namespace mgpu::glsl {
namespace {

using testutil::RunFragment;

float Run1(const std::string& expr) {
  const auto c = RunFragment("gl_FragColor = vec4(" + expr +
                             ", 0.0, 0.0, 0.0);");
  return c[0];
}

TEST(BuiltinsTest, AngleConversions) {
  EXPECT_NEAR(Run1("radians(180.0)"), 3.14159265f, 1e-5f);
  EXPECT_NEAR(Run1("degrees(3.14159265)"), 180.0f, 1e-3f);
}

TEST(BuiltinsTest, Trig) {
  EXPECT_NEAR(Run1("sin(1.0)"), std::sin(1.0f), 1e-6f);
  EXPECT_NEAR(Run1("cos(1.0)"), std::cos(1.0f), 1e-6f);
  EXPECT_NEAR(Run1("tan(1.0)"), std::tan(1.0f), 1e-6f);
  EXPECT_NEAR(Run1("asin(0.5)"), std::asin(0.5f), 1e-6f);
  EXPECT_NEAR(Run1("acos(0.5)"), std::acos(0.5f), 1e-6f);
  EXPECT_NEAR(Run1("atan(1.0)"), std::atan(1.0f), 1e-6f);
  EXPECT_NEAR(Run1("atan(1.0, -1.0)"), std::atan2(1.0f, -1.0f), 1e-6f);
}

TEST(BuiltinsTest, Exponential) {
  EXPECT_NEAR(Run1("pow(2.0, 10.0)"), 1024.0f, 1e-2f);
  EXPECT_NEAR(Run1("exp(1.0)"), 2.718281828f, 1e-5f);
  EXPECT_NEAR(Run1("log(exp(2.0))"), 2.0f, 1e-5f);
  EXPECT_FLOAT_EQ(Run1("exp2(8.0)"), 256.0f);
  EXPECT_FLOAT_EQ(Run1("log2(256.0)"), 8.0f);
  EXPECT_FLOAT_EQ(Run1("sqrt(9.0)"), 3.0f);
  EXPECT_FLOAT_EQ(Run1("inversesqrt(4.0)"), 0.5f);
}

TEST(BuiltinsTest, CommonFunctions) {
  EXPECT_FLOAT_EQ(Run1("abs(-3.5)"), 3.5f);
  EXPECT_FLOAT_EQ(Run1("sign(-2.0)"), -1.0f);
  EXPECT_FLOAT_EQ(Run1("sign(0.0)"), 0.0f);
  EXPECT_FLOAT_EQ(Run1("floor(2.7)"), 2.0f);
  EXPECT_FLOAT_EQ(Run1("floor(-2.1)"), -3.0f);
  EXPECT_FLOAT_EQ(Run1("ceil(2.1)"), 3.0f);
  EXPECT_FLOAT_EQ(Run1("fract(2.75)"), 0.75f);
  EXPECT_FLOAT_EQ(Run1("min(2.0, 3.0)"), 2.0f);
  EXPECT_FLOAT_EQ(Run1("max(2.0, 3.0)"), 3.0f);
  EXPECT_FLOAT_EQ(Run1("clamp(5.0, 0.0, 1.0)"), 1.0f);
  EXPECT_FLOAT_EQ(Run1("clamp(-5.0, 0.0, 1.0)"), 0.0f);
  EXPECT_FLOAT_EQ(Run1("mix(0.0, 10.0, 0.25)"), 2.5f);
  EXPECT_FLOAT_EQ(Run1("step(0.5, 0.4)"), 0.0f);
  EXPECT_FLOAT_EQ(Run1("step(0.5, 0.6)"), 1.0f);
  EXPECT_NEAR(Run1("smoothstep(0.0, 1.0, 0.5)"), 0.5f, 1e-6f);
}

// mod() underpins the paper's byte-significance decomposition (Eq. 7); its
// GLSL definition x - y*floor(x/y) must hold including negatives.
TEST(BuiltinsTest, ModMatchesSpecDefinition) {
  const std::array<std::array<float, 2>, 6> cases = {{
      {7.0f, 4.0f}, {256.0f, 255.0f}, {-7.0f, 4.0f},
      {7.0f, -4.0f}, {65535.0f, 256.0f}, {12345.0f, 65536.0f},
  }};
  for (const auto& c : cases) {
    const float expected = c[0] - c[1] * std::floor(c[0] / c[1]);
    EXPECT_NEAR(Run1(StrFormat("mod(%f, %f)", c[0], c[1])), expected, 1e-3f)
        << c[0] << " mod " << c[1];
  }
}

TEST(BuiltinsTest, VectorizedGenTypeApplication) {
  const auto c = RunFragment(
      "gl_FragColor = floor(vec4(1.5, 2.5, -0.5, 3.9));");
  EXPECT_FLOAT_EQ(c[0], 1.0f);
  EXPECT_FLOAT_EQ(c[1], 2.0f);
  EXPECT_FLOAT_EQ(c[2], -1.0f);
  EXPECT_FLOAT_EQ(c[3], 3.0f);
}

TEST(BuiltinsTest, ScalarBroadcastSecondArg) {
  const auto c = RunFragment(
      "gl_FragColor = max(vec4(0.1, 0.5, 0.9, 0.2), 0.4);");
  EXPECT_FLOAT_EQ(c[0], 0.4f);
  EXPECT_FLOAT_EQ(c[1], 0.5f);
  EXPECT_FLOAT_EQ(c[2], 0.9f);
  EXPECT_FLOAT_EQ(c[3], 0.4f);
}

TEST(BuiltinsTest, GeometricFunctions) {
  EXPECT_FLOAT_EQ(Run1("length(vec3(3.0, 4.0, 0.0))"), 5.0f);
  EXPECT_FLOAT_EQ(Run1("distance(vec2(1.0, 1.0), vec2(4.0, 5.0))"), 5.0f);
  EXPECT_FLOAT_EQ(Run1("dot(vec3(1.0, 2.0, 3.0), vec3(4.0, 5.0, 6.0))"),
                  32.0f);
  const auto cr = RunFragment(
      "gl_FragColor = vec4(cross(vec3(1.0, 0.0, 0.0), vec3(0.0, 1.0, 0.0)), "
      "0.0);");
  EXPECT_FLOAT_EQ(cr[0], 0.0f);
  EXPECT_FLOAT_EQ(cr[1], 0.0f);
  EXPECT_FLOAT_EQ(cr[2], 1.0f);
  const auto nm = RunFragment(
      "gl_FragColor = vec4(normalize(vec3(10.0, 0.0, 0.0)), 0.0);");
  EXPECT_NEAR(nm[0], 1.0f, 1e-6f);
}

TEST(BuiltinsTest, ReflectRefract) {
  const auto r = RunFragment(
      "gl_FragColor = vec4(reflect(vec2(1.0, -1.0), vec2(0.0, 1.0)), 0.0, "
      "0.0);");
  EXPECT_FLOAT_EQ(r[0], 1.0f);
  EXPECT_FLOAT_EQ(r[1], 1.0f);
  // Total internal reflection yields the zero vector.
  const auto z = RunFragment(
      "gl_FragColor = vec4(refract(normalize(vec2(1.0, -0.1)), vec2(0.0, "
      "1.0), 2.0), 0.0, 0.0);");
  EXPECT_FLOAT_EQ(z[0], 0.0f);
  EXPECT_FLOAT_EQ(z[1], 0.0f);
}

TEST(BuiltinsTest, MatrixCompMult) {
  const auto c = RunFragment(R"(
mat2 a = mat2(1.0, 2.0, 3.0, 4.0);
mat2 b = mat2(5.0, 6.0, 7.0, 8.0);
mat2 m = matrixCompMult(a, b);
gl_FragColor = vec4(m[0][0], m[0][1], m[1][0], m[1][1]);)");
  EXPECT_FLOAT_EQ(c[0], 5.0f);
  EXPECT_FLOAT_EQ(c[1], 12.0f);
  EXPECT_FLOAT_EQ(c[2], 21.0f);
  EXPECT_FLOAT_EQ(c[3], 32.0f);
}

TEST(BuiltinsTest, VectorRelational) {
  const auto c = RunFragment(R"(
vec3 a = vec3(1.0, 2.0, 3.0);
vec3 b = vec3(3.0, 2.0, 1.0);
bvec3 lt = lessThan(a, b);
bvec3 eq = equal(a, b);
gl_FragColor = vec4(lt.x ? 1.0 : 0.0, lt.z ? 1.0 : 0.0,
                    eq.y ? 1.0 : 0.0, any(lt) ? 1.0 : 0.0);)");
  EXPECT_FLOAT_EQ(c[0], 1.0f);
  EXPECT_FLOAT_EQ(c[1], 0.0f);
  EXPECT_FLOAT_EQ(c[2], 1.0f);
  EXPECT_FLOAT_EQ(c[3], 1.0f);
}

TEST(BuiltinsTest, AnyAllNot) {
  const auto c = RunFragment(R"(
bvec3 v = bvec3(true, false, true);
gl_FragColor = vec4(any(v) ? 1.0 : 0.0, all(v) ? 1.0 : 0.0,
                    all(not(v)) ? 1.0 : 0.0, any(not(v)) ? 1.0 : 0.0);)");
  EXPECT_FLOAT_EQ(c[0], 1.0f);
  EXPECT_FLOAT_EQ(c[1], 0.0f);
  EXPECT_FLOAT_EQ(c[2], 0.0f);
  EXPECT_FLOAT_EQ(c[3], 1.0f);
}

TEST(BuiltinsTest, IntVectorRelational) {
  const auto c = RunFragment(R"(
ivec2 a = ivec2(1, 5);
ivec2 b = ivec2(2, 2);
bvec2 lt = lessThan(a, b);
gl_FragColor = vec4(lt.x ? 1.0 : 0.0, lt.y ? 1.0 : 0.0, 0.0, 0.0);)");
  EXPECT_FLOAT_EQ(c[0], 1.0f);
  EXPECT_FLOAT_EQ(c[1], 0.0f);
}

// Parameterized sweep: floor/fract/mod identities over a range of values,
// the invariants the paper's §IV packing algebra relies on.
class FloorModProperty : public ::testing::TestWithParam<float> {};

TEST_P(FloorModProperty, FloorPlusFractReconstructs) {
  const float x = GetParam();
  const auto c = RunFragment(StrFormat(
      "float x = %f;\ngl_FragColor = vec4(floor(x) + fract(x), floor(x), "
      "fract(x), 0.0);",
      x));
  EXPECT_NEAR(c[0], x, std::fabs(x) * 1e-6f + 1e-6f);
  EXPECT_LE(c[2], 1.0f);
  EXPECT_GE(c[2], 0.0f);
}

TEST_P(FloorModProperty, ModRange) {
  const float x = GetParam();
  const auto c = RunFragment(
      StrFormat("gl_FragColor = vec4(mod(%f, 256.0), 0.0, 0.0, 0.0);", x));
  EXPECT_GE(c[0], 0.0f);
  EXPECT_LT(c[0], 256.0f);
}

INSTANTIATE_TEST_SUITE_P(Sweep, FloorModProperty,
                         ::testing::Values(0.0f, 0.5f, 1.0f, 254.99f, 255.0f,
                                           256.0f, 257.5f, 1023.25f,
                                           65535.0f, -1.5f, -255.75f,
                                           123456.0f));

}  // namespace
}  // namespace mgpu::glsl
