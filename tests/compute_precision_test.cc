// The paper's §V precision experiment as a test (experiment E2 in
// DESIGN.md): float values round-tripped through the GPU pipeline are
// accurate within ~15 most-significant mantissa bits on the VideoCore IV
// model, exactly reproducible on the IEEE-exact model, and collapse on a
// mediump-only fragment pipe (Mali-400 class, §IV-E footnote 1).
#include <cmath>
#include <vector>

#include "common/bits.h"
#include "common/rng.h"
#include "compute/kernel.h"
#include "gtest/gtest.h"

namespace mgpu::compute {
namespace {

std::vector<float> RoundTripF32(Device& d, const std::vector<float>& v) {
  PackedBuffer in(d, ElemType::kF32, v.size());
  PackedBuffer out(d, ElemType::kF32, v.size());
  in.Upload(std::span<const float>(v));
  Kernel k(d, {.name = "identity_f32",
               .inputs = {{"u_src", ElemType::kF32}},
               .output = ElemType::kF32,
               .extra_decls = "",
               .body = "float gp_kernel(vec2 p) { return "
                       "gp_fetch_u_src(gp_linear_index()); }\n"});
  k.Run(out, {&in});
  std::vector<float> back(v.size());
  out.Download(std::span<float>(back));
  return back;
}

std::vector<float> Workload(std::size_t n) {
  Rng rng(2026);
  std::vector<float> v(n);
  for (auto& x : v) x = rng.NextWorkloadFloat();
  return v;
}

int MinMatchingBits(const std::vector<float>& expected,
                    const std::vector<float>& actual) {
  int worst = 23;
  for (std::size_t i = 0; i < expected.size(); ++i) {
    worst = std::min(worst, MatchingMantissaBits(expected[i], actual[i]));
  }
  return worst;
}

double MeanMatchingBits(const std::vector<float>& expected,
                        const std::vector<float>& actual) {
  double sum = 0.0;
  for (std::size_t i = 0; i < expected.size(); ++i) {
    sum += MatchingMantissaBits(expected[i], actual[i]);
  }
  return sum / static_cast<double>(expected.size());
}

TEST(PrecisionTest, VideoCoreRoundTripKeepsAbout15MantissaBits) {
  DeviceOptions o;  // VideoCore IV
  Device d(o);
  const auto v = Workload(4096);
  const auto back = RoundTripF32(d, v);
  const double mean = MeanMatchingBits(v, back);
  // Paper §V: "accurate with respect to the fp32 format ... within the 15
  // most significant bits of the mantissa".
  EXPECT_GE(mean, 14.0) << "VideoCore model too lossy";
  EXPECT_LE(mean, 19.0) << "VideoCore model suspiciously exact";
  EXPECT_GE(MinMatchingBits(v, back), 12);
}

TEST(PrecisionTest, ExactAluRoundTripIsBitExact) {
  DeviceOptions o;
  o.profile = vc4::IeeeExact();
  Device d(o);
  const auto v = Workload(4096);
  const auto back = RoundTripF32(d, v);
  EXPECT_EQ(MinMatchingBits(v, back), 23);
}

TEST(PrecisionTest, BetterThanHalfFloatWorseThanFp32) {
  // The paper positions the achieved precision between fp16 (10 mantissa
  // bits) and fp32 (23).
  Device d;
  const auto v = Workload(2048);
  const auto back = RoundTripF32(d, v);
  const double mean = MeanMatchingBits(v, back);
  EXPECT_GT(mean, 10.0);  // better than half float
  EXPECT_LT(mean, 23.0);  // not full fp32
}

TEST(PrecisionTest, ArithmeticThroughKernelKeepsPrecisionBand) {
  // Not just a round trip: an actual computation (x*2 + 1) through the
  // pipeline stays within the same accuracy band.
  Device d;
  const auto v = Workload(2048);
  PackedBuffer in(d, ElemType::kF32, v.size());
  PackedBuffer out(d, ElemType::kF32, v.size());
  in.Upload(std::span<const float>(v));
  Kernel k(d, {.name = "fma",
               .inputs = {{"u_src", ElemType::kF32}},
               .output = ElemType::kF32,
               .extra_decls = "",
               .body = "float gp_kernel(vec2 p) { return "
                       "gp_fetch_u_src(gp_linear_index()) * 2.0 + 1.0; }\n"});
  k.Run(out, {&in});
  std::vector<float> back(v.size());
  out.Download(std::span<float>(back));
  std::vector<float> expected(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) expected[i] = v[i] * 2.0f + 1.0f;
  EXPECT_GE(MeanMatchingBits(expected, back), 13.0);
}

TEST(PrecisionTest, MediumpFragmentPipeCollapsesFloatPath) {
  // A4 ablation: on Mali-400-class hardware the fragment stage lacks highp;
  // the float transformations degrade far below the VideoCore result.
  DeviceOptions o;
  o.profile = vc4::Mali400();
  Device d(o);
  const auto v = Workload(512);
  const auto back = RoundTripF32(d, v);
  const double mali_mean = MeanMatchingBits(v, back);
  EXPECT_LT(mali_mean, 13.0);  // ~mediump: clearly below the 15-bit result
}

TEST(PrecisionTest, IntegerPathUnaffectedByPlatformModel) {
  // The asymmetry at the heart of §V: integers validate exactly on the same
  // platform model that degrades floats.
  Device d;
  Rng rng(7);
  std::vector<std::int32_t> v(2048);
  for (auto& x : v) {
    x = static_cast<std::int32_t>(rng.NextInt(-(1 << 23), (1 << 23)));
  }
  PackedBuffer in(d, ElemType::kI32, v.size());
  PackedBuffer out(d, ElemType::kI32, v.size());
  in.Upload(std::span<const std::int32_t>(v));
  Kernel k(d, {.name = "identity_i32",
               .inputs = {{"u_src", ElemType::kI32}},
               .output = ElemType::kI32,
               .extra_decls = "",
               .body = "float gp_kernel(vec2 p) { return "
                       "gp_fetch_u_src(gp_linear_index()); }\n"});
  k.Run(out, {&in});
  std::vector<std::int32_t> back(v.size());
  out.Download(std::span<std::int32_t>(back));
  EXPECT_EQ(back, v);
}

}  // namespace
}  // namespace mgpu::compute
