// Command-stream tests: recorded, asynchronously submitted execution must be
// byte-identical to immediate mode — framebuffer bytes, ALU/SFU/TMU counts,
// GL errors and trap/abort semantics — on every engine and worker count.
// Also covers the recording machinery itself: dirty-state diffing, record-
// time client-array snapshots, the Flush/Finish contract, fair multi-context
// submission, and the knob that turns the whole thing off.
#include <array>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "gles2/cmdstream.h"
#include "gles2/context.h"
#include "gles2_test_util.h"
#include "gtest/gtest.h"

namespace mgpu::gles2 {
namespace {

using testutil::BuildProgramOrDie;
using testutil::DrawFullscreenQuad;
using testutil::kPassthroughVs;
using testutil::kQuad;
using testutil::ReadRgba;

constexpr int kW = 128;  // 2x2 tile grid: parallel configs engage the pool
constexpr int kH = 128;

constexpr char kGradientFs[] = R"(
precision highp float;
varying vec2 v_uv;
uniform vec4 u_tint;
void main() {
  gl_FragColor = vec4(v_uv.x * u_tint.x, v_uv.y * u_tint.y, u_tint.z, 1.0);
}
)";

// Traps on the right half of the screen ("call to undefined function").
constexpr char kTrapFs[] = R"(
precision mediump float;
varying vec2 v_uv;
float poison(float x);
void main() {
  float v = v_uv.x;
  if (v_uv.x > 0.5) { v = poison(v); }
  gl_FragColor = vec4(v, v_uv.y, 0.25, 1.0);
}
)";

ContextConfig MakeConfig(int async, ExecEngine engine = ExecEngine::kBatchedVm,
                         int threads = 1, int w = kW, int h = kH) {
  ContextConfig cfg;
  cfg.width = w;
  cfg.height = h;
  cfg.exec_engine = engine;
  cfg.shader_threads = threads;
  cfg.async_submit = async;
  return cfg;
}

const char* EngineName(ExecEngine e) {
  switch (e) {
    case ExecEngine::kBatchedVm: return "batched";
    case ExecEngine::kBytecodeVm: return "scalar-vm";
    case ExecEngine::kTreeWalk: return "tree";
    case ExecEngine::kCompiled: return "compiled";
  }
  return "?";
}

struct Observed {
  std::vector<std::uint8_t> fb;
  std::uint64_t alu = 0, sfu = 0, tmu = 0;
  GLenum error = GL_NO_ERROR;
};

// A state-churning scene: clear, gradient quad, uniform change, scissored
// second quad, plus redundant setter calls the recorder may elide.
Observed RunScene(Context& ctx) {
  const GLuint p = BuildProgramOrDie(ctx, kPassthroughVs, kGradientFs);
  ctx.UseProgram(p);
  const GLint tint = ctx.GetUniformLocation(p, "u_tint");
  ctx.ClearColor(0.1f, 0.2f, 0.3f, 1.0f);
  ctx.ClearColor(0.1f, 0.2f, 0.3f, 1.0f);  // redundant: elidable
  ctx.Clear(GL_COLOR_BUFFER_BIT);
  ctx.Uniform4f(tint, 1.0f, 0.5f, 0.25f, 1.0f);
  DrawFullscreenQuad(ctx, p);
  ctx.Enable(GL_SCISSOR_TEST);
  ctx.Enable(GL_SCISSOR_TEST);  // redundant: elidable
  ctx.Scissor(8, 8, 48, 48);
  ctx.Uniform4f(tint, 0.25f, 1.0f, 0.5f, 1.0f);
  DrawFullscreenQuad(ctx, p);
  ctx.Disable(GL_SCISSOR_TEST);

  Observed o;
  o.fb = ReadRgba(ctx, kW, kH);
  const glsl::OpCounts c = ctx.alu().counts();
  o.alu = c.alu;
  o.sfu = c.sfu;
  o.tmu = c.tmu;
  o.error = ctx.GetError();
  return o;
}

// The tentpole invariant: recorded + asynchronously executed scenes are
// byte-identical to immediate mode on every engine and worker count.
TEST(CmdStream, AsyncMatchesImmediateAcrossEnginesAndThreads) {
  const std::array<ExecEngine, 4> engines = {
      ExecEngine::kBatchedVm, ExecEngine::kBytecodeVm, ExecEngine::kTreeWalk,
      ExecEngine::kCompiled};
  for (const ExecEngine engine : engines) {
    for (const int threads : {1, 4}) {
      SCOPED_TRACE(std::string(EngineName(engine)) + " threads=" +
                   std::to_string(threads));
      Context async_ctx(MakeConfig(/*async=*/1, engine, threads));
      Context inline_ctx(MakeConfig(/*async=*/0, engine, threads));
      ASSERT_TRUE(async_ctx.async_submit_enabled());
      ASSERT_FALSE(inline_ctx.async_submit_enabled());
      const Observed a = RunScene(async_ctx);
      const Observed b = RunScene(inline_ctx);
      EXPECT_EQ(a.fb, b.fb) << "framebuffer differs from immediate mode";
      EXPECT_EQ(a.alu, b.alu);
      EXPECT_EQ(a.sfu, b.sfu);
      EXPECT_EQ(a.tmu, b.tmu);
      EXPECT_EQ(a.error, b.error);
    }
  }
}

TEST(CmdStream, KnobResolution) {
  {
    Context ctx(MakeConfig(/*async=*/0));
    EXPECT_FALSE(ctx.async_submit_enabled());
  }
  {
    Context ctx(MakeConfig(/*async=*/1));
    EXPECT_TRUE(ctx.async_submit_enabled());
  }
  // auto (-1): the MGPU_ASYNC env var decides; unset means on.
  ::setenv("MGPU_ASYNC", "0", 1);
  {
    Context ctx(MakeConfig(/*async=*/-1));
    EXPECT_FALSE(ctx.async_submit_enabled());
  }
  ::setenv("MGPU_ASYNC", "1", 1);
  {
    Context ctx(MakeConfig(/*async=*/-1));
    EXPECT_TRUE(ctx.async_submit_enabled());
  }
  ::unsetenv("MGPU_ASYNC");
  {
    Context ctx(MakeConfig(/*async=*/-1));
    EXPECT_TRUE(ctx.async_submit_enabled());
  }
  // Config wins over env when not auto.
  ::setenv("MGPU_ASYNC", "1", 1);
  {
    Context ctx(MakeConfig(/*async=*/0));
    EXPECT_FALSE(ctx.async_submit_enabled());
  }
  ::unsetenv("MGPU_ASYNC");
}

// Dirty-state diffing: provably redundant setters are elided; redundant but
// *invalid* calls are recorded anyway so their GL errors surface at
// execution, in call order.
TEST(CmdStream, DirtyDiffingElidesOnlyProvableNoOps) {
  Context ctx(MakeConfig(/*async=*/1));
  ctx.Finish();
  const cmd::Stats before = ctx.command_stream_stats();

  ctx.Viewport(0, 0, kW, kH);  // matches ctor state, but shadow is unknown:
                               // recorded
  ctx.Viewport(0, 0, kW, kH);  // now shadowed: elided
  ctx.Viewport(0, 0, kW, kH);  // elided
  ctx.Enable(GL_DEPTH_TEST);
  ctx.Enable(GL_DEPTH_TEST);  // elided
  ctx.Disable(GL_DEPTH_TEST);
  const cmd::Stats after = ctx.command_stream_stats();
  EXPECT_EQ(after.elided - before.elided, 3u);
  EXPECT_EQ(ctx.GetError(), static_cast<GLenum>(GL_NO_ERROR));

  // Invalid enum twice: both recorded (never elided), and the first error
  // is latched by the time the sync point returns.
  const cmd::Stats s0 = ctx.command_stream_stats();
  ctx.Enable(0xDEAD);
  ctx.Enable(0xDEAD);
  EXPECT_EQ(ctx.GetError(), static_cast<GLenum>(GL_INVALID_ENUM));
  const cmd::Stats s1 = ctx.command_stream_stats();
  EXPECT_EQ(s1.elided, s0.elided);
  EXPECT_GE(s1.recorded - s0.recorded, 2u);
}

TEST(CmdStream, StatsCountSubmissionLifecycle) {
  Context ctx(MakeConfig(/*async=*/1));
  const GLuint p = BuildProgramOrDie(ctx, kPassthroughVs, kGradientFs);
  ctx.UseProgram(p);
  const GLint tint = ctx.GetUniformLocation(p, "u_tint");
  ctx.Uniform4f(tint, 1.0f, 1.0f, 1.0f, 1.0f);
  DrawFullscreenQuad(ctx, p);
  ctx.Flush();   // submit without waiting
  ctx.Finish();  // join
  const cmd::Stats s = ctx.command_stream_stats();
  EXPECT_GT(s.recorded, 0u);
  EXPECT_GE(s.draws, 1u);
  EXPECT_GE(s.lists_submitted, 1u);
  EXPECT_EQ(s.lists_executed, s.lists_submitted);
  EXPECT_EQ(s.lists_dropped, 0u);
  EXPECT_GT(s.sync_points, 0u);
  EXPECT_EQ(ctx.GetError(), static_cast<GLenum>(GL_NO_ERROR));
}

// Client vertex arrays are snapshotted when the draw is *recorded*: mutating
// the array after the call but before Finish must not change the result —
// exactly the bytes immediate mode would have read at call time.
TEST(CmdStream, ClientArraySnapshotTakenAtRecordTime) {
  Context async_ctx(MakeConfig(/*async=*/1));
  Context inline_ctx(MakeConfig(/*async=*/0));
  std::vector<std::uint8_t> want;
  {
    Context& ctx = inline_ctx;
    const GLuint p = BuildProgramOrDie(ctx, kPassthroughVs, kGradientFs);
    ctx.UseProgram(p);
    ctx.Uniform4f(ctx.GetUniformLocation(p, "u_tint"), 1.0f, 1.0f, 1.0f, 1.0f);
    DrawFullscreenQuad(ctx, p);
    want = ReadRgba(ctx, kW, kH);
  }
  {
    Context& ctx = async_ctx;
    const GLuint p = BuildProgramOrDie(ctx, kPassthroughVs, kGradientFs);
    ctx.UseProgram(p);
    ctx.Uniform4f(ctx.GetUniformLocation(p, "u_tint"), 1.0f, 1.0f, 1.0f, 1.0f);
    const GLint loc = ctx.GetAttribLocation(p, "a_pos");
    ASSERT_GE(loc, 0);
    std::array<float, 12> quad = kQuad;
    ctx.EnableVertexAttribArray(static_cast<GLuint>(loc));
    ctx.VertexAttribPointer(static_cast<GLuint>(loc), 2, GL_FLOAT, GL_FALSE, 0,
                            quad.data());
    ctx.DrawArrays(GL_TRIANGLES, 0, 6);
    // Clobber the client memory before the deferred draw executes.
    quad.fill(0.0f);
    EXPECT_EQ(ReadRgba(ctx, kW, kH), want)
        << "deferred draw read post-record client bytes";
  }
  EXPECT_EQ(async_ctx.GetError(), static_cast<GLenum>(GL_NO_ERROR));
}

// Same contract for client-memory index arrays on DrawElements.
TEST(CmdStream, ClientIndexSnapshotTakenAtRecordTime) {
  Context ctx(MakeConfig(/*async=*/1));
  const GLuint p = BuildProgramOrDie(ctx, kPassthroughVs, kGradientFs);
  ctx.UseProgram(p);
  ctx.Uniform4f(ctx.GetUniformLocation(p, "u_tint"), 1.0f, 0.5f, 0.25f, 1.0f);
  const GLint loc = ctx.GetAttribLocation(p, "a_pos");
  ASSERT_GE(loc, 0);
  // 4-vertex strip order; two triangles via indices.
  const std::array<float, 8> verts = {-1.0f, -1.0f, 1.0f, -1.0f,
                                      -1.0f, 1.0f,  1.0f, 1.0f};
  ctx.EnableVertexAttribArray(static_cast<GLuint>(loc));
  ctx.VertexAttribPointer(static_cast<GLuint>(loc), 2, GL_FLOAT, GL_FALSE, 0,
                          verts.data());
  std::array<std::uint16_t, 6> idx = {0, 1, 2, 2, 1, 3};
  ctx.DrawElements(GL_TRIANGLES, 6, GL_UNSIGNED_SHORT, idx.data());
  idx.fill(0);  // clobber before deferred execution
  const auto got = ReadRgba(ctx, kW, kH);
  ASSERT_EQ(ctx.GetError(), static_cast<GLenum>(GL_NO_ERROR));

  Context twin(MakeConfig(/*async=*/0));
  const GLuint tp = BuildProgramOrDie(twin, kPassthroughVs, kGradientFs);
  twin.UseProgram(tp);
  twin.Uniform4f(twin.GetUniformLocation(tp, "u_tint"), 1.0f, 0.5f, 0.25f,
                 1.0f);
  const GLint tloc = twin.GetAttribLocation(tp, "a_pos");
  twin.EnableVertexAttribArray(static_cast<GLuint>(tloc));
  twin.VertexAttribPointer(static_cast<GLuint>(tloc), 2, GL_FLOAT, GL_FALSE, 0,
                           verts.data());
  const std::array<std::uint16_t, 6> tidx = {0, 1, 2, 2, 1, 3};
  twin.DrawElements(GL_TRIANGLES, 6, GL_UNSIGNED_SHORT, tidx.data());
  EXPECT_EQ(got, ReadRgba(twin, kW, kH));
}

// Deleting a VBO after recording a draw that uses it must not disturb the
// draw: commands execute in record order, so the deferred delete lands
// after the deferred draw — exactly as immediate mode ordered them.
TEST(CmdStream, DeleteBufferBetweenRecordAndExecute) {
  Observed got[2];
  for (const int async : {1, 0}) {
    Context ctx(MakeConfig(async));
    const GLuint p = BuildProgramOrDie(ctx, kPassthroughVs, kGradientFs);
    ctx.UseProgram(p);
    ctx.Uniform4f(ctx.GetUniformLocation(p, "u_tint"), 0.5f, 1.0f, 0.75f,
                  1.0f);
    const GLint loc = ctx.GetAttribLocation(p, "a_pos");
    GLuint vbo = 0;
    ctx.GenBuffers(1, &vbo);
    ctx.BindBuffer(GL_ARRAY_BUFFER, vbo);
    ctx.BufferData(GL_ARRAY_BUFFER,
                   static_cast<GLsizeiptr>(sizeof(float) * kQuad.size()),
                   kQuad.data(), GL_STATIC_DRAW);
    ctx.EnableVertexAttribArray(static_cast<GLuint>(loc));
    ctx.VertexAttribPointer(static_cast<GLuint>(loc), 2, GL_FLOAT, GL_FALSE, 0,
                            nullptr);
    ctx.DrawArrays(GL_TRIANGLES, 0, 6);
    ctx.DeleteBuffers(1, &vbo);  // recorded after the draw: draw unaffected
    Observed& o = got[async];
    o.fb = ReadRgba(ctx, kW, kH);
    o.alu = ctx.alu().counts().alu;
    o.error = ctx.GetError();
  }
  EXPECT_EQ(got[1].fb, got[0].fb);
  EXPECT_EQ(got[1].alu, got[0].alu);
  EXPECT_EQ(got[1].error, got[0].error);
  EXPECT_EQ(got[0].error, static_cast<GLenum>(GL_NO_ERROR));
}

// A deferred trapping draw latches its error/reset/diagnostic state for the
// client's next sync point, identically to immediate mode.
TEST(CmdStream, TrapLatchesAtSyncPoint) {
  Observed got[2];
  std::string msg[2];
  GLenum reset[2] = {GL_NO_ERROR, GL_NO_ERROR};
  for (const int async : {1, 0}) {
    Context ctx(MakeConfig(async));
    const GLuint clean = BuildProgramOrDie(ctx, kPassthroughVs, kGradientFs);
    const GLuint trap = BuildProgramOrDie(ctx, kPassthroughVs, kTrapFs);
    ctx.UseProgram(clean);
    ctx.Uniform4f(ctx.GetUniformLocation(clean, "u_tint"), 1.0f, 1.0f, 1.0f,
                  1.0f);
    DrawFullscreenQuad(ctx, clean);
    DrawFullscreenQuad(ctx, trap);  // aborts transactionally
    Observed& o = got[async];
    o.error = ctx.GetError();
    reset[async] = ctx.GetGraphicsResetStatus();
    msg[async] = ctx.last_draw_error();
    o.fb = ReadRgba(ctx, kW, kH);
    o.alu = ctx.alu().counts().alu;
  }
  EXPECT_EQ(got[1].error, static_cast<GLenum>(GL_INVALID_OPERATION));
  EXPECT_EQ(got[1].error, got[0].error);
  EXPECT_EQ(reset[1], static_cast<GLenum>(GL_GUILTY_CONTEXT_RESET));
  EXPECT_EQ(reset[1], reset[0]);
  EXPECT_EQ(msg[1], msg[0]);
  EXPECT_NE(msg[1].find("undefined function"), std::string::npos) << msg[1];
  EXPECT_EQ(got[1].fb, got[0].fb);
  EXPECT_EQ(got[1].alu, got[0].alu);
}

// Many live contexts share the one device: interleaved recorded work from
// all of them executes correctly (each context's own list order preserved,
// results independent).
TEST(CmdStream, MultiContextSubmissionIsIsolated) {
  constexpr int kContexts = 8;
  constexpr int kSide = 16;
  std::vector<std::unique_ptr<Context>> ctxs;
  std::vector<GLuint> progs;
  std::vector<GLint> tints;
  for (int i = 0; i < kContexts; ++i) {
    ctxs.push_back(std::make_unique<Context>(
        MakeConfig(/*async=*/1, ExecEngine::kBatchedVm, 1, kSide, kSide)));
    progs.push_back(BuildProgramOrDie(*ctxs.back(), kPassthroughVs,
                                      "precision mediump float;\n"
                                      "uniform vec4 u_tint;\n"
                                      "void main() { gl_FragColor = u_tint; "
                                      "}"));
    ctxs.back()->UseProgram(progs.back());
    tints.push_back(ctxs.back()->GetUniformLocation(progs.back(), "u_tint"));
  }
  // Interleave: every context records one draw per round, nobody joins
  // until the end.
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < kContexts; ++i) {
      const float v = (i + 1) / static_cast<float>(kContexts);
      ctxs[static_cast<std::size_t>(i)]->Uniform4f(
          tints[static_cast<std::size_t>(i)], v, 1.0f - v, 0.0f, 1.0f);
      DrawFullscreenQuad(*ctxs[static_cast<std::size_t>(i)],
                         progs[static_cast<std::size_t>(i)]);
      ctxs[static_cast<std::size_t>(i)]->Flush();
    }
  }
  for (int i = 0; i < kContexts; ++i) {
    Context& ctx = *ctxs[static_cast<std::size_t>(i)];
    const float v = (i + 1) / static_cast<float>(kContexts);
    const auto px = ReadRgba(ctx, kSide, kSide);
    const int want_r = static_cast<int>(v * 255.0f + 0.5f);
    const int want_g = static_cast<int>((1.0f - v) * 255.0f + 0.5f);
    EXPECT_EQ(px[0], want_r) << "context " << i;
    EXPECT_EQ(px[1], want_g) << "context " << i;
    EXPECT_EQ(ctx.GetError(), static_cast<GLenum>(GL_NO_ERROR));
    const cmd::Stats s = ctx.command_stream_stats();
    EXPECT_EQ(s.lists_executed, s.lists_submitted);
    EXPECT_EQ(s.lists_dropped, 0u);
  }
}

// A draw the recorder cannot capture faithfully (first > 0 over client
// arrays: the snapshot would read bytes immediate mode never touches) falls
// back to sync + inline execution, bit-identically.
TEST(CmdStream, UnrecordableDrawFallsBackInline) {
  Observed got[2];
  cmd::Stats stats{};
  for (const int async : {1, 0}) {
    Context ctx(MakeConfig(async));
    const GLuint p = BuildProgramOrDie(ctx, kPassthroughVs, kGradientFs);
    ctx.UseProgram(p);
    ctx.Uniform4f(ctx.GetUniformLocation(p, "u_tint"), 1.0f, 1.0f, 1.0f, 1.0f);
    const GLint loc = ctx.GetAttribLocation(p, "a_pos");
    // One junk leading vertex; the draw starts at 1.
    const std::array<float, 8> verts = {9.0f, 9.0f, -1.0f, -1.0f,
                                        1.0f, -1.0f, 0.0f,  1.0f};
    ctx.EnableVertexAttribArray(static_cast<GLuint>(loc));
    ctx.VertexAttribPointer(static_cast<GLuint>(loc), 2, GL_FLOAT, GL_FALSE, 0,
                            verts.data());
    ctx.DrawArrays(GL_TRIANGLES, 1, 3);
    Observed& o = got[async];
    o.fb = ReadRgba(ctx, kW, kH);
    o.alu = ctx.alu().counts().alu;
    o.error = ctx.GetError();
    if (async == 1) stats = ctx.command_stream_stats();
  }
  EXPECT_EQ(got[1].fb, got[0].fb);
  EXPECT_EQ(got[1].alu, got[0].alu);
  EXPECT_EQ(got[1].error, got[0].error);
  EXPECT_EQ(got[0].error, static_cast<GLenum>(GL_NO_ERROR));
  EXPECT_GE(stats.inline_syncs, 1u);
}

}  // namespace
}  // namespace mgpu::gles2
