// ThreadPool semantics: RunOn(n) must execute each task in [0, n) exactly
// once regardless of how n relates to the worker count, across back-to-back
// jobs of varying sizes (the draw-storm shape: a few tiles per draw on a
// pool sized for many). The stress tests double as TSan fodder for the
// partial-dispatch wake path, where stale notifies and late-waking workers
// are routine rather than exceptional.
#include <atomic>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/fault.h"
#include "common/threadpool.h"
#include "glsl/evalcore.h"
#include "gtest/gtest.h"

namespace mgpu::common {
namespace {

TEST(ThreadPoolTest, RunOnExecutesEachTaskExactlyOnce) {
  ThreadPool pool(4);
  for (int n : {1, 2, 3, 4, 7, 16}) {
    std::vector<std::atomic<int>> hits(static_cast<std::size_t>(n));
    for (auto& h : hits) h.store(0);
    pool.RunOn(n, [&](int task) {
      ASSERT_GE(task, 0);
      ASSERT_LT(task, n);
      hits[static_cast<std::size_t>(task)].fetch_add(1);
    });
    for (int t = 0; t < n; ++t) {
      EXPECT_EQ(hits[static_cast<std::size_t>(t)].load(), 1)
          << "task " << t << " of " << n;
    }
  }
}

TEST(ThreadPoolTest, RunOnAllCoversEveryWorkerIndex) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(3);
  for (auto& h : hits) h.store(0);
  pool.RunOnAll([&](int task) {
    hits[static_cast<std::size_t>(task)].fetch_add(1);
  });
  for (int t = 0; t < 3; ++t) {
    EXPECT_EQ(hits[static_cast<std::size_t>(t)].load(), 1);
  }
}

TEST(ThreadPoolTest, ZeroOrNegativeTasksIsANoop) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  pool.RunOn(0, [&](int) { ran.fetch_add(1); });
  pool.RunOn(-3, [&](int) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 0);
}

// Back-to-back jobs whose task counts hop around the worker count: the
// partial-dispatch path must neither lose a task (deadlock) nor let a
// late-waking worker from job k steal a task of job k+1.
TEST(ThreadPoolTest, AlternatingJobSizesStress) {
  ThreadPool pool(4);
  std::atomic<long long> total{0};
  long long expected = 0;
  for (int round = 0; round < 2000; ++round) {
    const int n = 1 + round % 7;  // 1..7 tasks on 4 workers
    expected += n;
    pool.RunOn(n, [&](int) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), expected);
}

// A task body that takes long enough for every permutation of worker
// wake-up order: distinct tasks must still be claimed exactly once.
TEST(ThreadPoolTest, ManyMoreTasksThanWorkers) {
  ThreadPool pool(2);
  constexpr int kTasks = 64;
  std::vector<std::atomic<int>> hits(kTasks);
  for (auto& h : hits) h.store(0);
  pool.RunOn(kTasks, [&](int task) {
    hits[static_cast<std::size_t>(task)].fetch_add(1);
  });
  for (int t = 0; t < kTasks; ++t) {
    EXPECT_EQ(hits[static_cast<std::size_t>(t)].load(), 1) << "task " << t;
  }
}

// ---------------------------------------------------------------------------
// Failure semantics: a throwing task must not deadlock the join or poison
// the pool (the robustness model's worker-death contract; see README
// "Robustness model"). These are the unit-level counterparts of the
// draw-abort tests in gles2_fault_test.cc.
// ---------------------------------------------------------------------------

// One task throws a shader trap: RunOn rethrows it AFTER the join, every
// other task still ran exactly once, and the next job works normally.
TEST(ThreadPoolFailureTest, ThrowingTaskRethrownWithoutDeadlock) {
  ThreadPool pool(4);
  constexpr int kTasks = 9;
  std::vector<std::atomic<int>> hits(kTasks);
  for (auto& h : hits) h.store(0);
  bool caught = false;
  try {
    pool.RunOn(kTasks, [&](int task) {
      hits[static_cast<std::size_t>(task)].fetch_add(1);
      if (task == 3) throw glsl::ShaderRuntimeError("unit-test trap");
    });
  } catch (const glsl::ShaderRuntimeError& e) {
    caught = true;
    EXPECT_STREQ(e.what(), "unit-test trap");
  }
  EXPECT_TRUE(caught) << "RunOn swallowed the task exception";
  for (int t = 0; t < kTasks; ++t) {
    EXPECT_EQ(hits[static_cast<std::size_t>(t)].load(), 1)
        << "task " << t << " did not run exactly once";
  }
  // The pool must be fully reusable after a failed job.
  std::atomic<int> ran{0};
  pool.RunOn(kTasks, [&](int) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), kTasks);
}

// Several tasks throw in the same job: RunOn reports exactly one failure
// (the first captured), and still drains every task.
TEST(ThreadPoolFailureTest, MultipleThrowingTasksReportOneError) {
  ThreadPool pool(3);
  constexpr int kTasks = 12;
  std::atomic<int> ran{0};
  bool caught = false;
  try {
    pool.RunOn(kTasks, [&](int task) {
      ran.fetch_add(1);
      if (task % 2 == 0) {
        throw std::runtime_error("boom " + std::to_string(task));
      }
    });
  } catch (const std::runtime_error&) {
    caught = true;
  }
  EXPECT_TRUE(caught);
  EXPECT_EQ(ran.load(), kTasks);
}

// The draw-storm shape under failure: rounds of small jobs where a varying
// task throws, interleaved with clean rounds, on a pool bigger than most
// jobs. No round may deadlock, lose a task, or leak the previous round's
// error into a clean round.
TEST(ThreadPoolFailureTest, RepeatedFailingRoundsDoNotPoisonThePool) {
  ThreadPool pool(4);
  for (int round = 0; round < 500; ++round) {
    const int n = 1 + round % 7;  // 1..7 tasks on 4 workers
    const int bad = (round % 3 == 0) ? round % n : -1;
    std::atomic<int> ran{0};
    bool caught = false;
    try {
      pool.RunOn(n, [&](int task) {
        ran.fetch_add(1);
        if (task == bad) throw std::runtime_error("round failure");
      });
    } catch (const std::runtime_error&) {
      caught = true;
    }
    EXPECT_EQ(caught, bad >= 0) << "round " << round;
    EXPECT_EQ(ran.load(), n) << "round " << round;
  }
}

// The kPoolTask injection site: the Nth *claimed* task dies before its body
// runs (modeling a worker killed mid-draw), the error surfaces from RunOn,
// and a disarmed pool is clean again. Probes the site's reach first, the
// same Arm(~0)/Hits() idiom the fault harness uses.
TEST(ThreadPoolFailureTest, InjectedPoolTaskFaultFiresAndRecovers) {
  ThreadPool pool(4);
  constexpr int kTasks = 8;
  fault::Arm(fault::Site::kPoolTask, ~0ull);  // count without failing
  std::atomic<int> ran{0};
  pool.RunOn(kTasks, [&](int) { ran.fetch_add(1); });
  const std::uint64_t reach = fault::Hits(fault::Site::kPoolTask);
  EXPECT_EQ(reach, static_cast<std::uint64_t>(kTasks));
  EXPECT_EQ(ran.load(), kTasks);

  for (const std::uint64_t nth : {std::uint64_t{0}, reach - 1}) {
    fault::Arm(fault::Site::kPoolTask, nth);
    bool caught = false;
    std::atomic<int> bodies{0};
    try {
      pool.RunOn(kTasks, [&](int) { bodies.fetch_add(1); });
    } catch (const std::runtime_error& e) {
      caught = true;
      EXPECT_STREQ(e.what(), "injected fault: pool task failed");
    }
    EXPECT_TRUE(caught) << "nth=" << nth;
    // Tasks at and after the armed hit die before their body runs; the
    // earlier ones ran normally.
    EXPECT_EQ(bodies.load(), static_cast<int>(nth)) << "nth=" << nth;
  }

  fault::DisarmAll();
  std::atomic<int> clean{0};
  pool.RunOn(kTasks, [&](int) { clean.fetch_add(1); });
  EXPECT_EQ(clean.load(), kTasks);
}

}  // namespace
}  // namespace mgpu::common
