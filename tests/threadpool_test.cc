// ThreadPool semantics: RunOn(n) must execute each task in [0, n) exactly
// once regardless of how n relates to the worker count, across back-to-back
// jobs of varying sizes (the draw-storm shape: a few tiles per draw on a
// pool sized for many). The stress tests double as TSan fodder for the
// partial-dispatch wake path, where stale notifies and late-waking workers
// are routine rather than exceptional.
#include <atomic>
#include <vector>

#include "common/threadpool.h"
#include "gtest/gtest.h"

namespace mgpu::common {
namespace {

TEST(ThreadPoolTest, RunOnExecutesEachTaskExactlyOnce) {
  ThreadPool pool(4);
  for (int n : {1, 2, 3, 4, 7, 16}) {
    std::vector<std::atomic<int>> hits(static_cast<std::size_t>(n));
    for (auto& h : hits) h.store(0);
    pool.RunOn(n, [&](int task) {
      ASSERT_GE(task, 0);
      ASSERT_LT(task, n);
      hits[static_cast<std::size_t>(task)].fetch_add(1);
    });
    for (int t = 0; t < n; ++t) {
      EXPECT_EQ(hits[static_cast<std::size_t>(t)].load(), 1)
          << "task " << t << " of " << n;
    }
  }
}

TEST(ThreadPoolTest, RunOnAllCoversEveryWorkerIndex) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(3);
  for (auto& h : hits) h.store(0);
  pool.RunOnAll([&](int task) {
    hits[static_cast<std::size_t>(task)].fetch_add(1);
  });
  for (int t = 0; t < 3; ++t) {
    EXPECT_EQ(hits[static_cast<std::size_t>(t)].load(), 1);
  }
}

TEST(ThreadPoolTest, ZeroOrNegativeTasksIsANoop) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  pool.RunOn(0, [&](int) { ran.fetch_add(1); });
  pool.RunOn(-3, [&](int) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 0);
}

// Back-to-back jobs whose task counts hop around the worker count: the
// partial-dispatch path must neither lose a task (deadlock) nor let a
// late-waking worker from job k steal a task of job k+1.
TEST(ThreadPoolTest, AlternatingJobSizesStress) {
  ThreadPool pool(4);
  std::atomic<long long> total{0};
  long long expected = 0;
  for (int round = 0; round < 2000; ++round) {
    const int n = 1 + round % 7;  // 1..7 tasks on 4 workers
    expected += n;
    pool.RunOn(n, [&](int) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), expected);
}

// A task body that takes long enough for every permutation of worker
// wake-up order: distinct tasks must still be claimed exactly once.
TEST(ThreadPoolTest, ManyMoreTasksThanWorkers) {
  ThreadPool pool(2);
  constexpr int kTasks = 64;
  std::vector<std::atomic<int>> hits(kTasks);
  for (auto& h : hits) h.store(0);
  pool.RunOn(kTasks, [&](int task) {
    hits[static_cast<std::size_t>(task)].fetch_add(1);
  });
  for (int t = 0; t < kTasks; ++t) {
    EXPECT_EQ(hits[static_cast<std::size_t>(t)].load(), 1) << "task " << t;
  }
}

}  // namespace
}  // namespace mgpu::common
