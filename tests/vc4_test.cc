// Platform model tests: SFU precision characteristics, denormal flush,
// mediump rounding, profile parameters and the timing formulas.
#include <cmath>

#include "common/bits.h"
#include "common/rng.h"
#include "vc4/alu.h"
#include "vc4/profiles.h"
#include "vc4/timing.h"

#include "gtest/gtest.h"

namespace mgpu::vc4 {
namespace {

TEST(ProfileTest, VideoCoreIvPeaksAt24GFlops) {
  // The paper's headline hardware number.
  EXPECT_DOUBLE_EQ(PeakFlops(VideoCoreIV()), 24e9);
}

TEST(ProfileTest, Mali400LacksFragmentHighp) {
  EXPECT_FALSE(Mali400().limits.fragment_highp_float);
  EXPECT_TRUE(VideoCoreIV().limits.fragment_highp_float);
}

TEST(Vc4AluTest, Exp2ErrorBoundedBySfuBits) {
  Vc4Alu alu(VideoCoreIV());
  Rng rng(42);
  for (int i = 0; i < 2000; ++i) {
    const float x = rng.NextFloat(-20.0f, 20.0f);
    const float got = alu.Exp2(x);
    const float exact = std::exp2(x);
    const float rel = std::fabs(got - exact) / exact;
    EXPECT_LE(rel, std::ldexp(1.0f, -15)) << x;  // |eta| <= 2^-16, margin 2x
  }
}

TEST(Vc4AluTest, Exp2ErrorIsDeterministic) {
  Vc4Alu alu(VideoCoreIV());
  EXPECT_EQ(alu.Exp2(3.7f), alu.Exp2(3.7f));
}

TEST(Vc4AluTest, Exp2IsNotExactOnVc4) {
  // The mechanism behind the paper's 15-bit result: exp2 of even integer
  // arguments carries SFU error.
  Vc4Alu alu(VideoCoreIV());
  int inexact = 0;
  for (int e = -100; e <= 100; ++e) {
    if (alu.Exp2(static_cast<float>(e)) !=
        std::exp2(static_cast<float>(e))) {
      ++inexact;
    }
  }
  EXPECT_GT(inexact, 150);  // nearly all integer exp2 results are perturbed
}

TEST(Vc4AluTest, RecipNearExact) {
  // Newton-Raphson refined: the integer path (which divides by powers of
  // 256) must stay exact — that is why the paper's int results validate.
  Vc4Alu alu(VideoCoreIV());
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    const float x = rng.NextWorkloadFloat();
    EXPECT_EQ(alu.Recip(x), 1.0f / x);
  }
}

TEST(Vc4AluTest, Log2ErrorBounded) {
  Vc4Alu alu(VideoCoreIV());
  Rng rng(9);
  for (int i = 0; i < 2000; ++i) {
    const float x = rng.NextFloat(1e-3f, 1e6f);
    const float got = alu.Log2(x);
    EXPECT_LE(std::fabs(got - std::log2(x)), std::ldexp(1.0f, -15)) << x;
  }
}

TEST(Vc4AluTest, DenormalsFlushToZero) {
  Vc4Alu alu(VideoCoreIV());
  const float denormal = 1e-40f;
  EXPECT_EQ(alu.Add(denormal, 0.0f), 0.0f);
  EXPECT_EQ(alu.Add(1.0f, 1.0f), 2.0f);
}

TEST(Vc4AluTest, MediumpAluRoundsTo10Bits) {
  Vc4Alu alu(Mali400());
  const float x = alu.Add(1.0f, 1.0f / 4096.0f);  // needs 12 mantissa bits
  EXPECT_EQ(x, 1.0f);  // rounded away at 10 bits
  const float y = alu.Add(1.0f, 1.0f / 256.0f);  // needs 8 bits: survives
  EXPECT_GT(y, 1.0f);
}

TEST(Vc4AluTest, ExactAluIsExact) {
  glsl::ExactAlu alu;
  EXPECT_EQ(alu.Exp2(7.0f), 128.0f);
  EXPECT_EQ(alu.Div(1.0f, 3.0f), 1.0f / 3.0f);
}

TEST(Vc4AluTest, OpCountsAccumulateAcrossKinds) {
  Vc4Alu alu(VideoCoreIV());
  (void)alu.Add(1.0f, 2.0f);
  (void)alu.Mul(1.0f, 2.0f);
  (void)alu.Exp2(1.0f);       // transcendental SFU class
  (void)alu.Div(1.0f, 2.0f);  // 1 alu + 1 reciprocal SFU
  alu.CountTmu(3);
  EXPECT_EQ(alu.counts().alu, 3u);
  EXPECT_EQ(alu.counts().sfu, 1u);
  EXPECT_EQ(alu.counts().sfu_trans, 1u);
  EXPECT_EQ(alu.counts().tmu, 3u);
  alu.ResetCounts();
  EXPECT_EQ(alu.counts().alu, 0u);
}

TEST(TimingTest, CpuSecondsMatchesCostTable) {
  CpuModel cpu = Arm1176();
  CpuWork w;
  w.fp_adds = 700;
  EXPECT_NEAR(CpuSeconds(cpu, w), 700.0 * cpu.fp_add_cycles / cpu.clock_hz,
              1e-12);
  CpuWork mem;
  mem.loads = 100;
  mem.stores = 50;
  EXPECT_NEAR(CpuSeconds(cpu, mem),
              (100.0 * cpu.load_cycles + 50.0 * cpu.store_cycles) /
                  cpu.clock_hz,
              1e-12);
}

TEST(TimingTest, IntOpsCheaperThanFpOnArm1176) {
  // The asymmetry the paper cites to explain why float speedups are lower:
  // "in the CPU the integer operations are faster than the fp ones".
  CpuModel cpu = Arm1176();
  CpuWork int_work, fp_work;
  int_work.int_ops = 1000;
  fp_work.fp_adds = 1000;
  EXPECT_LT(CpuSeconds(cpu, int_work), CpuSeconds(cpu, fp_work));
}

TEST(TimingTest, GpuBreakdownComponents) {
  const GpuProfile gpu = VideoCoreIV();
  const CpuModel cpu = Arm1176();
  GpuWork w;
  w.shader_ops.alu = 48'000'000;  // 48M ALU ops, dual-issued over 48 lanes
  w.bytes_uploaded = 8'000'000;
  w.bytes_readback = 4'000'000;
  w.program_compiles = 2;
  w.draw_calls = 1;
  const GpuTimeBreakdown t = GpuSeconds(gpu, cpu, w);
  EXPECT_NEAR(t.shader,
              48e6 / 2.0 / gpu.interp_ops_per_native / (48.0 * 250e6), 1e-9);
  EXPECT_NEAR(t.upload, 8e6 / gpu.upload_bytes_per_sec, 1e-9);
  EXPECT_NEAR(t.readback, 4e6 / gpu.readback_bytes_per_sec, 1e-9);
  EXPECT_NEAR(t.compile, 2.0 * gpu.compile_seconds, 1e-12);
  EXPECT_GT(t.total(), t.shader);
}

TEST(TimingTest, TextureCacheMissesCostMore) {
  const GpuProfile gpu = VideoCoreIV();
  const CpuModel cpu = Arm1176();
  GpuWork streaming, strided;
  streaming.shader_ops.tmu = 1000;
  streaming.shader_ops.tmu_miss = 125;  // 1-in-8 sequential miss rate
  strided.shader_ops.tmu = 1000;
  strided.shader_ops.tmu_miss = 1000;   // column walk: every fetch misses
  EXPECT_LT(GpuSeconds(gpu, cpu, streaming).shader,
            GpuSeconds(gpu, cpu, strided).shader / 4.0);
}

TEST(TimingTest, SfuAndTmuCostMoreThanAlu) {
  const GpuProfile gpu = VideoCoreIV();
  const CpuModel cpu = Arm1176();
  GpuWork alu_work, sfu_work, tmu_work;
  alu_work.shader_ops.alu = 1000;
  sfu_work.shader_ops.sfu = 1000;
  tmu_work.shader_ops.tmu = 1000;
  const double ta = GpuSeconds(gpu, cpu, alu_work).total();
  const double ts = GpuSeconds(gpu, cpu, sfu_work).total();
  const double tt = GpuSeconds(gpu, cpu, tmu_work).total();
  EXPECT_LT(ta, ts);
  EXPECT_LT(ts, tt);
}

TEST(TimingTest, WorkAccumulation) {
  GpuWork a, b;
  a.fragments = 10;
  a.shader_ops.alu = 100;
  a.program_compiles = 1;
  b.fragments = 20;
  b.shader_ops.alu = 50;
  b.host_work.loads = 7;
  a += b;
  EXPECT_EQ(a.fragments, 30u);
  EXPECT_EQ(a.shader_ops.alu, 150u);
  EXPECT_EQ(a.host_work.loads, 7u);
  EXPECT_EQ(a.program_compiles, 1);
}

TEST(TimingTest, MatchingMantissaBitsMetric) {
  // The metric used for the paper's §V precision claim.
  EXPECT_EQ(MatchingMantissaBits(1.0f, 1.0f), 23);
  const float perturbed = BitsToFloat(FloatToBits(1.5f) + 0x100);  // 8 low bits
  EXPECT_LE(MatchingMantissaBits(1.5f, perturbed), 15);
  EXPECT_GE(MatchingMantissaBits(1.5f, perturbed), 14);
}

}  // namespace
}  // namespace mgpu::vc4
