// Broader GLSL ES 1.00 conformance sweeps: awkward-but-legal programs,
// numeric edge cases, and constructs near the spec's corners — beyond the
// targeted unit tests in the other glsl_* files.
#include <cmath>
#include <string>

#include "common/strings.h"
#include "glsl_test_util.h"
#include "gtest/gtest.h"

namespace mgpu::glsl {
namespace {

using testutil::MustCompile;
using testutil::MustFail;
using testutil::RunFragment;

TEST(ConformanceTest, DeeplyNestedExpressions) {
  const auto c = RunFragment(
      "gl_FragColor = vec4(((((1.0 + 2.0) * (3.0 - 1.0)) / ((2.0))) - "
      "((1.0 + (1.0 * (1.0))))), 0.0, 0.0, 0.0);");
  EXPECT_FLOAT_EQ(c[0], 1.0f);
}

TEST(ConformanceTest, ChainedSwizzleOfSwizzle) {
  const auto c = RunFragment(R"(
vec4 v = vec4(1.0, 2.0, 3.0, 4.0);
gl_FragColor = vec4(v.wzyx.xy.y, v.rgba.ba, 0.0);)");
  EXPECT_FLOAT_EQ(c[0], 3.0f);
  EXPECT_FLOAT_EQ(c[1], 3.0f);
  EXPECT_FLOAT_EQ(c[2], 4.0f);
}

TEST(ConformanceTest, MatrixFullAlgebraChain) {
  const auto c = RunFragment(R"(
mat3 rot = mat3(0.0, 1.0, 0.0, -1.0, 0.0, 0.0, 0.0, 0.0, 1.0);  // 90 deg
vec3 v = vec3(1.0, 0.0, 0.0);
vec3 once = rot * v;
vec3 four = rot * rot * rot * rot * v;  // identity
gl_FragColor = vec4(once.xy, four.xy);)");
  EXPECT_NEAR(c[0], 0.0f, 1e-6f);
  EXPECT_NEAR(c[1], 1.0f, 1e-6f);
  EXPECT_NEAR(c[2], 1.0f, 1e-6f);
  EXPECT_NEAR(c[3], 0.0f, 1e-6f);
}

TEST(ConformanceTest, MatrixScalarAndDivision) {
  const auto c = RunFragment(R"(
mat2 m = mat2(2.0, 4.0, 6.0, 8.0);
mat2 half_m = m / 2.0;
mat2 plus = m + mat2(1.0);
gl_FragColor = vec4(half_m[1][1], plus[0][0], plus[0][1], 2.0 * half_m[0][0]);)");
  EXPECT_FLOAT_EQ(c[0], 4.0f);
  EXPECT_FLOAT_EQ(c[1], 3.0f);
  EXPECT_FLOAT_EQ(c[2], 4.0f);
  EXPECT_FLOAT_EQ(c[3], 2.0f);
}

TEST(ConformanceTest, ArraysOfVectors) {
  const auto c = RunFragment(R"(
vec2 pts[3];
pts[0] = vec2(1.0, 2.0);
pts[1] = vec2(3.0, 4.0);
pts[2] = pts[0] + pts[1];
gl_FragColor = vec4(pts[2], pts[1].y, pts[0].x);)");
  EXPECT_FLOAT_EQ(c[0], 4.0f);
  EXPECT_FLOAT_EQ(c[1], 6.0f);
  EXPECT_FLOAT_EQ(c[2], 4.0f);
  EXPECT_FLOAT_EQ(c[3], 1.0f);
}

TEST(ConformanceTest, DynamicIndexIntoMatrixColumn) {
  const auto c = RunFragment(R"(
mat3 m = mat3(1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0);
float acc = 0.0;
for (int i = 0; i < 3; ++i) { acc += m[i][i]; }  // trace
gl_FragColor = vec4(acc);)");
  EXPECT_FLOAT_EQ(c[0], 15.0f);
}

TEST(ConformanceTest, FunctionOverloadSelectsBySize) {
  ExactAlu alu;
  const auto c = testutil::RunFragmentSource(R"(
precision highp float;
float total(vec2 v) { return v.x + v.y; }
float total(vec3 v) { return v.x + v.y + v.z; }
float total(float v) { return v; }
void main() {
  gl_FragColor = vec4(total(vec2(1.0, 2.0)), total(vec3(1.0, 2.0, 3.0)),
                      total(7.0), 0.0);
}
)",
                                             alu);
  EXPECT_FLOAT_EQ(c[0], 3.0f);
  EXPECT_FLOAT_EQ(c[1], 6.0f);
  EXPECT_FLOAT_EQ(c[2], 7.0f);
}

TEST(ConformanceTest, HelperFunctionsCallingHelpers) {
  ExactAlu alu;
  const auto c = testutil::RunFragmentSource(R"(
precision highp float;
float sq(float x) { return x * x; }
float quart(float x) { return sq(sq(x)); }
float poly(float x) { return quart(x) + sq(x) + x; }
void main() { gl_FragColor = vec4(poly(2.0)); }
)",
                                             alu);
  EXPECT_FLOAT_EQ(c[0], 16.0f + 4.0f + 2.0f);
}

TEST(ConformanceTest, ConstGlobalsFoldIntoArraySizesViaMacro) {
  ExactAlu alu;
  const auto c = testutil::RunFragmentSource(R"(
#define N 4
precision highp float;
const float kWeights = 0.25;
void main() {
  float acc = 0.0;
  float tbl[N];
  for (int i = 0; i < N; ++i) { tbl[i] = kWeights; }
  for (int i = 0; i < N; ++i) { acc += tbl[i]; }
  gl_FragColor = vec4(acc);
}
)",
                                             alu);
  EXPECT_FLOAT_EQ(c[0], 1.0f);
}

TEST(ConformanceTest, IntegerDivisionAndNegativeMod) {
  const auto c = RunFragment(R"(
int a = 17; int b = 5;
int q = a / b;
int r = a - q * b;
gl_FragColor = vec4(float(q), float(r), float(-17 / 5), 0.0);)");
  EXPECT_FLOAT_EQ(c[0], 3.0f);
  EXPECT_FLOAT_EQ(c[1], 2.0f);
  EXPECT_FLOAT_EQ(c[2], -3.0f);
}

TEST(ConformanceTest, BoolVectorConstructionAndSelection) {
  const auto c = RunFragment(R"(
bvec3 b = bvec3(1.0, 0.0, 5.0);  // nonzero -> true
gl_FragColor = vec4(b.x ? 1.0 : 0.0, b.y ? 1.0 : 0.0, b.z ? 1.0 : 0.0, 0.0);)");
  EXPECT_FLOAT_EQ(c[0], 1.0f);
  EXPECT_FLOAT_EQ(c[1], 0.0f);
  EXPECT_FLOAT_EQ(c[2], 1.0f);
}

TEST(ConformanceTest, CompoundAssignOnSwizzledLValue) {
  const auto c = RunFragment(R"(
vec4 v = vec4(1.0, 2.0, 3.0, 4.0);
v.yz *= 10.0;
v.x += v.w;
gl_FragColor = v;)");
  EXPECT_FLOAT_EQ(c[0], 5.0f);
  EXPECT_FLOAT_EQ(c[1], 20.0f);
  EXPECT_FLOAT_EQ(c[2], 30.0f);
  EXPECT_FLOAT_EQ(c[3], 4.0f);
}

TEST(ConformanceTest, ForLoopWithCommaStep) {
  const auto c = RunFragment(R"(
float a = 0.0; float b = 0.0;
for (int i = 0; i < 4; a += 1.0, ++i) { b += 2.0; }
gl_FragColor = vec4(a, b, 0.0, 0.0);)");
  EXPECT_FLOAT_EQ(c[0], 4.0f);
  EXPECT_FLOAT_EQ(c[1], 8.0f);
}

TEST(ConformanceTest, LargeUniformArrayIndexedByLoop) {
  auto shader = MustCompile(R"(
precision highp float;
uniform float u_lut[16];
void main() {
  float acc = 0.0;
  for (int i = 0; i < 16; ++i) { acc += u_lut[i]; }
  gl_FragColor = vec4(acc / 16.0);
}
)");
  ExactAlu alu;
  ShaderExec exec(*shader, alu);
  Value& lut = exec.GlobalAt(exec.GlobalSlot("u_lut"));
  for (int i = 0; i < 16; ++i) lut.SetF(i, static_cast<float>(i));
  ASSERT_TRUE(exec.Run());
  EXPECT_FLOAT_EQ(exec.GlobalAt(exec.GlobalSlot("gl_FragColor")).F(0),
                  120.0f / 16.0f);
}

// --- error-path sweeps -----------------------------------------------------

TEST(ConformanceTest, ErrorSweepRejectsIllFormedPrograms) {
  const char* kBad[] = {
      // vec = mat
      "precision highp float;\nvoid main() { vec3 v = mat3(1.0); }",
      // calling an undefined prototype is a link/run error, but calling an
      // unknown name is a compile error
      "precision highp float;\nvoid main() { gl_FragColor = vec4(nosuch()); }",
      // assignment to a call result
      "precision highp float;\nvoid main() { sin(1.0) = 2.0; }",
      // void in expression
      "precision highp float;\nvoid f() {}\nvoid main() { float x = f(); }",
      // sampler arithmetic
      "precision highp float;\nuniform sampler2D s;\nvoid main() { "
      "gl_FragColor = vec4(0.0); float x = float(s); }",
      // too many ctor args for scalar
      "precision highp float;\nvoid main() { float x = float(1.0, 2.0); }",
      // continue at global scope is a parse error
      "continue;",
      // matrix from matrix + scalar mix
      "precision highp float;\nvoid main() { mat2 m = mat2(mat2(1.0), 1.0); }",
  };
  for (const char* src : kBad) {
    MustFail(src);
  }
}

TEST(ConformanceTest, NumericEdgeCasesThroughPipeline) {
  // Division by zero produces infinity (IEEE), usable downstream.
  const auto c = RunFragment(R"(
float inf = 1.0 / 0.0;
float ninf = -1.0 / 0.0;
gl_FragColor = vec4(inf > 1e30 ? 1.0 : 0.0, ninf < -1e30 ? 1.0 : 0.0,
                    clamp(inf, 0.0, 2.0), 0.0);)");
  EXPECT_FLOAT_EQ(c[0], 1.0f);
  EXPECT_FLOAT_EQ(c[1], 1.0f);
  EXPECT_FLOAT_EQ(c[2], 2.0f);
}

TEST(ConformanceTest, FragCoordVisibleAndPositive) {
  auto shader = MustCompile(
      "precision highp float;\nvoid main() { gl_FragColor = "
      "vec4(gl_FragCoord.xy, gl_FragCoord.zw); }");
  ExactAlu alu;
  ShaderExec exec(*shader, alu);
  Value& fc = exec.GlobalAt(exec.GlobalSlot("gl_FragCoord"));
  fc.SetF(0, 10.5f);
  fc.SetF(1, 3.5f);
  fc.SetF(2, 0.5f);
  fc.SetF(3, 1.0f);
  ASSERT_TRUE(exec.Run());
  EXPECT_FLOAT_EQ(exec.GlobalAt(exec.GlobalSlot("gl_FragColor")).F(0), 10.5f);
}

}  // namespace
}  // namespace mgpu::glsl
