// Interpreter semantics: expression evaluation, control flow, functions,
// uniforms, varyings, textures and the op-counting hooks.
#include "glsl/interp.h"

#include <array>
#include <cmath>
#include <string>

#include "glsl/compile.h"
#include "glsl_test_util.h"
#include "gtest/gtest.h"

namespace mgpu::glsl {
namespace {

using testutil::MustCompile;
using testutil::RunFragment;
using testutil::RunFragmentSource;

TEST(InterpTest, AssignLiteralVec4) {
  const auto c = RunFragment("gl_FragColor = vec4(0.1, 0.2, 0.3, 0.4);");
  EXPECT_FLOAT_EQ(c[0], 0.1f);
  EXPECT_FLOAT_EQ(c[1], 0.2f);
  EXPECT_FLOAT_EQ(c[2], 0.3f);
  EXPECT_FLOAT_EQ(c[3], 0.4f);
}

TEST(InterpTest, ScalarBroadcastCtor) {
  const auto c = RunFragment("gl_FragColor = vec4(0.5);");
  for (const float v : c) EXPECT_FLOAT_EQ(v, 0.5f);
}

TEST(InterpTest, ArithmeticPrecedence) {
  const auto c = RunFragment("gl_FragColor = vec4(1.0 + 2.0 * 3.0, (1.0 + "
                             "2.0) * 3.0, 7.0 / 2.0, 1.0 - 2.0 - 3.0);");
  EXPECT_FLOAT_EQ(c[0], 7.0f);
  EXPECT_FLOAT_EQ(c[1], 9.0f);
  EXPECT_FLOAT_EQ(c[2], 3.5f);
  EXPECT_FLOAT_EQ(c[3], -4.0f);
}

TEST(InterpTest, IntegerArithmeticTruncates) {
  const auto c = RunFragment(
      "int a = 7 / 2; int b = -7 / 2; gl_FragColor = vec4(float(a), "
      "float(b), 0.0, 0.0);");
  EXPECT_FLOAT_EQ(c[0], 3.0f);
  EXPECT_FLOAT_EQ(c[1], -3.0f);
}

TEST(InterpTest, IntFromFloatTruncatesTowardZero) {
  const auto c = RunFragment(
      "gl_FragColor = vec4(float(int(2.9)), float(int(-2.9)), 0.0, 0.0);");
  EXPECT_FLOAT_EQ(c[0], 2.0f);
  EXPECT_FLOAT_EQ(c[1], -2.0f);
}

TEST(InterpTest, SwizzleReadAndWrite) {
  const auto c = RunFragment(R"(
vec4 v = vec4(1.0, 2.0, 3.0, 4.0);
v.xy = v.zw;
gl_FragColor = v.wzyx;)");
  EXPECT_FLOAT_EQ(c[0], 4.0f);
  EXPECT_FLOAT_EQ(c[1], 3.0f);
  EXPECT_FLOAT_EQ(c[2], 4.0f);
  EXPECT_FLOAT_EQ(c[3], 3.0f);
}

TEST(InterpTest, MatrixColumnMajorIndexing) {
  const auto c = RunFragment(R"(
mat2 m = mat2(1.0, 2.0, 3.0, 4.0);  // columns: (1,2), (3,4)
gl_FragColor = vec4(m[0][0], m[0][1], m[1][0], m[1][1]);)");
  EXPECT_FLOAT_EQ(c[0], 1.0f);
  EXPECT_FLOAT_EQ(c[1], 2.0f);
  EXPECT_FLOAT_EQ(c[2], 3.0f);
  EXPECT_FLOAT_EQ(c[3], 4.0f);
}

TEST(InterpTest, MatrixVectorMultiply) {
  // m * v with column-major m: result r = c0*v.x + c1*v.y.
  const auto c = RunFragment(R"(
mat2 m = mat2(1.0, 2.0, 3.0, 4.0);
vec2 v = vec2(5.0, 6.0);
vec2 mv = m * v;   // (1*5+3*6, 2*5+4*6) = (23, 34)
vec2 vm = v * m;   // (dot(v,c0), dot(v,c1)) = (17, 39)
gl_FragColor = vec4(mv, vm);)");
  EXPECT_FLOAT_EQ(c[0], 23.0f);
  EXPECT_FLOAT_EQ(c[1], 34.0f);
  EXPECT_FLOAT_EQ(c[2], 17.0f);
  EXPECT_FLOAT_EQ(c[3], 39.0f);
}

TEST(InterpTest, MatrixMatrixMultiply) {
  const auto c = RunFragment(R"(
mat2 a = mat2(1.0, 2.0, 3.0, 4.0);
mat2 b = mat2(5.0, 6.0, 7.0, 8.0);
mat2 m = a * b;
gl_FragColor = vec4(m[0][0], m[0][1], m[1][0], m[1][1]);)");
  // col0 = a*(5,6) = (23, 34); col1 = a*(7,8) = (31, 46)
  EXPECT_FLOAT_EQ(c[0], 23.0f);
  EXPECT_FLOAT_EQ(c[1], 34.0f);
  EXPECT_FLOAT_EQ(c[2], 31.0f);
  EXPECT_FLOAT_EQ(c[3], 46.0f);
}

TEST(InterpTest, MatrixDiagonalCtor) {
  const auto c = RunFragment(R"(
mat3 m = mat3(2.0);
gl_FragColor = vec4(m[0][0], m[1][1], m[0][1], m[2][2]);)");
  EXPECT_FLOAT_EQ(c[0], 2.0f);
  EXPECT_FLOAT_EQ(c[1], 2.0f);
  EXPECT_FLOAT_EQ(c[2], 0.0f);
  EXPECT_FLOAT_EQ(c[3], 2.0f);
}

TEST(InterpTest, ForLoopAccumulates) {
  const auto c = RunFragment(R"(
float acc = 0.0;
for (int i = 0; i < 10; ++i) { acc += float(i); }
gl_FragColor = vec4(acc);)");
  EXPECT_FLOAT_EQ(c[0], 45.0f);
}

TEST(InterpTest, WhileBreakContinue) {
  const auto c = RunFragment(R"(
float acc = 0.0;
int i = 0;
while (true) {
  i++;
  if (i > 10) break;
  if (i == 3) continue;
  acc += float(i);
}
gl_FragColor = vec4(acc);)");
  EXPECT_FLOAT_EQ(c[0], 55.0f - 3.0f);
}

TEST(InterpTest, DoWhileRunsAtLeastOnce) {
  const auto c = RunFragment(R"(
float acc = 0.0;
do { acc += 1.0; } while (false);
gl_FragColor = vec4(acc);)");
  EXPECT_FLOAT_EQ(c[0], 1.0f);
}

TEST(InterpTest, NestedLoopBreakOnlyInner) {
  const auto c = RunFragment(R"(
float acc = 0.0;
for (int i = 0; i < 3; ++i) {
  for (int j = 0; j < 10; ++j) {
    if (j == 2) break;
    acc += 1.0;
  }
}
gl_FragColor = vec4(acc);)");
  EXPECT_FLOAT_EQ(c[0], 6.0f);
}

TEST(InterpTest, FunctionCallWithReturn) {
  ExactAlu alu;
  const auto c = RunFragmentSource(R"(
precision highp float;
float sq(float x) { return x * x; }
void main() { gl_FragColor = vec4(sq(3.0), sq(sq(2.0)), 0.0, 1.0); }
)",
                                   alu);
  EXPECT_FLOAT_EQ(c[0], 9.0f);
  EXPECT_FLOAT_EQ(c[1], 16.0f);
}

TEST(InterpTest, OutParamsWriteBack) {
  ExactAlu alu;
  const auto c = RunFragmentSource(R"(
precision highp float;
void decompose(float v, out float ipart, out float fpart) {
  ipart = floor(v);
  fpart = v - ipart;
}
void main() {
  float i; float f;
  decompose(3.25, i, f);
  gl_FragColor = vec4(i, f, 0.0, 1.0);
}
)",
                                   alu);
  EXPECT_FLOAT_EQ(c[0], 3.0f);
  EXPECT_FLOAT_EQ(c[1], 0.25f);
}

TEST(InterpTest, InoutParamModifies) {
  ExactAlu alu;
  const auto c = RunFragmentSource(R"(
precision highp float;
void bump(inout float x) { x += 1.0; }
void main() {
  float a = 1.0;
  bump(a); bump(a);
  gl_FragColor = vec4(a);
}
)",
                                   alu);
  EXPECT_FLOAT_EQ(c[0], 3.0f);
}

TEST(InterpTest, OutParamSwizzleTarget) {
  ExactAlu alu;
  const auto c = RunFragmentSource(R"(
precision highp float;
void pair(out vec2 p) { p = vec2(7.0, 8.0); }
void main() {
  vec4 v = vec4(0.0);
  pair(v.yz);
  gl_FragColor = v;
}
)",
                                   alu);
  EXPECT_FLOAT_EQ(c[0], 0.0f);
  EXPECT_FLOAT_EQ(c[1], 7.0f);
  EXPECT_FLOAT_EQ(c[2], 8.0f);
}

TEST(InterpTest, IncrementDecrementSemantics) {
  const auto c = RunFragment(R"(
float a = 1.0;
float pre = ++a;   // a=2, pre=2
float post = a++;  // post=2, a=3
int i = 5;
i--;
gl_FragColor = vec4(pre, post, a, float(i));)");
  EXPECT_FLOAT_EQ(c[0], 2.0f);
  EXPECT_FLOAT_EQ(c[1], 2.0f);
  EXPECT_FLOAT_EQ(c[2], 3.0f);
  EXPECT_FLOAT_EQ(c[3], 4.0f);
}

TEST(InterpTest, TernaryLazyEvaluation) {
  const auto c = RunFragment(R"(
float x = 4.0;
float r = x > 0.0 ? sqrt(x) : sqrt(-x);
gl_FragColor = vec4(r);)");
  EXPECT_FLOAT_EQ(c[0], 2.0f);
}

TEST(InterpTest, ShortCircuitAndOr) {
  const auto c = RunFragment(R"(
float a = 0.0;
bool t = (a > -1.0) || (1.0 / a > 0.0);  // rhs not evaluated
bool u = (a > 1.0) && (1.0 / a > 0.0);
gl_FragColor = vec4(t ? 1.0 : 0.0, u ? 1.0 : 0.0, 0.0, 0.0);)");
  EXPECT_FLOAT_EQ(c[0], 1.0f);
  EXPECT_FLOAT_EQ(c[1], 0.0f);
}

TEST(InterpTest, ArrayReadWriteLoop) {
  const auto c = RunFragment(R"(
float tbl[8];
for (int i = 0; i < 8; ++i) { tbl[i] = float(i) * 2.0; }
float sum = 0.0;
for (int i = 0; i < 8; ++i) { sum += tbl[i]; }
gl_FragColor = vec4(sum);)");
  EXPECT_FLOAT_EQ(c[0], 56.0f);
}

TEST(InterpTest, GlobalConstAndInitializer) {
  ExactAlu alu;
  const auto c = RunFragmentSource(R"(
precision highp float;
const float kScale = 3.0;
float g_offset = kScale * 2.0;
void main() { gl_FragColor = vec4(kScale, g_offset, 0.0, 1.0); }
)",
                                   alu);
  EXPECT_FLOAT_EQ(c[0], 3.0f);
  EXPECT_FLOAT_EQ(c[1], 6.0f);
}

TEST(InterpTest, VectorEqualityIsAggregate) {
  const auto c = RunFragment(R"(
vec3 a = vec3(1.0, 2.0, 3.0);
vec3 b = vec3(1.0, 2.0, 3.0);
vec3 d = vec3(1.0, 2.0, 4.0);
gl_FragColor = vec4(a == b ? 1.0 : 0.0, a == d ? 1.0 : 0.0,
                    a != d ? 1.0 : 0.0, 0.0);)");
  EXPECT_FLOAT_EQ(c[0], 1.0f);
  EXPECT_FLOAT_EQ(c[1], 0.0f);
  EXPECT_FLOAT_EQ(c[2], 1.0f);
}

TEST(InterpTest, UniformsSettableFromHost) {
  auto shader = MustCompile(
      "precision highp float;\nuniform float u_scale;\nuniform vec2 "
      "u_offset;\nvoid main() { gl_FragColor = vec4(u_scale * 2.0, "
      "u_offset, 1.0); }");
  ExactAlu alu;
  ShaderExec exec(*shader, alu);
  exec.GlobalAt(exec.GlobalSlot("u_scale")).SetF(0, 5.0f);
  Value& off = exec.GlobalAt(exec.GlobalSlot("u_offset"));
  off.SetF(0, 0.25f);
  off.SetF(1, 0.75f);
  ASSERT_TRUE(exec.Run());
  const Value& c = exec.GlobalAt(exec.GlobalSlot("gl_FragColor"));
  EXPECT_FLOAT_EQ(c.F(0), 10.0f);
  EXPECT_FLOAT_EQ(c.F(1), 0.25f);
  EXPECT_FLOAT_EQ(c.F(2), 0.75f);
}

TEST(InterpTest, DiscardReturnsFalse) {
  auto shader = MustCompile(
      "precision highp float;\nuniform float u_kill;\nvoid main() { if "
      "(u_kill > 0.5) discard; gl_FragColor = vec4(1.0); }");
  ExactAlu alu;
  ShaderExec exec(*shader, alu);
  exec.GlobalAt(exec.GlobalSlot("u_kill")).SetF(0, 1.0f);
  EXPECT_FALSE(exec.Run());
  exec.GlobalAt(exec.GlobalSlot("u_kill")).SetF(0, 0.0f);
  EXPECT_TRUE(exec.Run());
}

TEST(InterpTest, TextureFetchGoesThroughCallback) {
  auto shader = MustCompile(
      "precision highp float;\nuniform sampler2D u_tex;\nvoid main() { "
      "gl_FragColor = texture2D(u_tex, vec2(0.25, 0.75)); }");
  ExactAlu alu;
  ShaderExec exec(*shader, alu);
  exec.GlobalAt(exec.GlobalSlot("u_tex")).SetI(0, 3);
  int seen_unit = -1;
  float seen_s = -1.0f, seen_t = -1.0f;
  exec.SetTextureFn([&](int unit, float s, float t, float) {
    seen_unit = unit;
    seen_s = s;
    seen_t = t;
    return std::array<float, 4>{0.1f, 0.2f, 0.3f, 0.4f};
  });
  ASSERT_TRUE(exec.Run());
  EXPECT_EQ(seen_unit, 3);
  EXPECT_FLOAT_EQ(seen_s, 0.25f);
  EXPECT_FLOAT_EQ(seen_t, 0.75f);
  const Value& c = exec.GlobalAt(exec.GlobalSlot("gl_FragColor"));
  EXPECT_FLOAT_EQ(c.F(2), 0.3f);
  EXPECT_EQ(alu.counts().tmu, 1u);
}

TEST(InterpTest, RunawayLoopRaisesRuntimeError) {
  auto shader = MustCompile(
      "precision highp float;\nvoid main() { float a = 0.0; while (true) { a "
      "+= 1.0; } gl_FragColor = vec4(a); }");
  ExactAlu alu;
  ShaderExec exec(*shader, alu);
  EXPECT_THROW(exec.Run(), ShaderExec::RuntimeError);
}

TEST(InterpTest, OpCountsAccumulate) {
  ExactAlu alu;
  (void)RunFragment("gl_FragColor = vec4(1.0 + 2.0, 3.0 * 4.0, 5.0 - 1.0, "
                    "8.0 / 2.0);",
                    alu);
  // 1 add + 1 mul + 1 sub + 1 div(mul) >= 4 ALU ops, and the div costs an SFU
  // reciprocal.
  EXPECT_GE(alu.counts().alu, 4u);
  EXPECT_EQ(alu.counts().sfu, 1u);
}

TEST(InterpTest, RunIsRepeatableAfterStateChange) {
  auto shader = MustCompile(
      "precision highp float;\nuniform float u_x;\nvoid main() { "
      "gl_FragColor = vec4(u_x * u_x); }");
  ExactAlu alu;
  ShaderExec exec(*shader, alu);
  for (float x : {1.0f, 2.0f, 3.0f, 4.0f}) {
    exec.GlobalAt(exec.GlobalSlot("u_x")).SetF(0, x);
    ASSERT_TRUE(exec.Run());
    EXPECT_FLOAT_EQ(exec.GlobalAt(exec.GlobalSlot("gl_FragColor")).F(0),
                    x * x);
  }
}

TEST(InterpTest, VertexStageWritesPosition) {
  auto shader = MustCompile(
      "attribute vec4 a_pos;\nvoid main() { gl_Position = a_pos * 2.0; }",
      Stage::kVertex);
  ExactAlu alu;
  ShaderExec exec(*shader, alu);
  Value& attr = exec.GlobalAt(exec.GlobalSlot("a_pos"));
  attr.SetF(0, 0.5f);
  attr.SetF(1, -0.5f);
  attr.SetF(2, 0.0f);
  attr.SetF(3, 1.0f);
  ASSERT_TRUE(exec.Run());
  const Value& pos = exec.GlobalAt(exec.GlobalSlot("gl_Position"));
  EXPECT_FLOAT_EQ(pos.F(0), 1.0f);
  EXPECT_FLOAT_EQ(pos.F(1), -1.0f);
  EXPECT_FLOAT_EQ(pos.F(3), 2.0f);
}

}  // namespace
}  // namespace mgpu::glsl
