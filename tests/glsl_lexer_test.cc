#include "glsl/lexer.h"

#include <vector>

#include "glsl/diag.h"
#include "gtest/gtest.h"

namespace mgpu::glsl {
namespace {

std::vector<Token> LexOk(const std::string& src) {
  DiagSink diags;
  auto toks = Lex(src, diags);
  EXPECT_FALSE(diags.has_errors()) << diags.InfoLog();
  return toks;
}

TEST(LexerTest, EmptySourceYieldsEof) {
  const auto toks = LexOk("");
  ASSERT_EQ(toks.size(), 1u);
  EXPECT_EQ(toks[0].kind, Tok::kEof);
}

TEST(LexerTest, Identifiers) {
  const auto toks = LexOk("foo _bar baz123");
  ASSERT_EQ(toks.size(), 4u);
  EXPECT_EQ(toks[0].text, "foo");
  EXPECT_EQ(toks[1].text, "_bar");
  EXPECT_EQ(toks[2].text, "baz123");
}

TEST(LexerTest, Keywords) {
  const auto toks = LexOk("uniform varying attribute const highp vec4 mat3");
  EXPECT_EQ(toks[0].kind, Tok::kKwUniform);
  EXPECT_EQ(toks[1].kind, Tok::kKwVarying);
  EXPECT_EQ(toks[2].kind, Tok::kKwAttribute);
  EXPECT_EQ(toks[3].kind, Tok::kKwConst);
  EXPECT_EQ(toks[4].kind, Tok::kKwHighp);
  EXPECT_EQ(toks[5].kind, Tok::kKwVec4);
  EXPECT_EQ(toks[6].kind, Tok::kKwMat3);
}

TEST(LexerTest, IntLiteralsDecimalHexOctal) {
  const auto toks = LexOk("42 0x1F 017 0");
  EXPECT_EQ(toks[0].int_value, 42);
  EXPECT_EQ(toks[1].int_value, 31);
  EXPECT_EQ(toks[2].int_value, 15);
  EXPECT_EQ(toks[3].int_value, 0);
}

TEST(LexerTest, FloatLiterals) {
  const auto toks = LexOk("1.0 .5 3. 2e3 1.5e-2 255.0");
  EXPECT_EQ(toks[0].kind, Tok::kFloatLiteral);
  EXPECT_FLOAT_EQ(toks[0].float_value, 1.0f);
  EXPECT_FLOAT_EQ(toks[1].float_value, 0.5f);
  EXPECT_FLOAT_EQ(toks[2].float_value, 3.0f);
  EXPECT_FLOAT_EQ(toks[3].float_value, 2000.0f);
  EXPECT_FLOAT_EQ(toks[4].float_value, 0.015f);
  EXPECT_FLOAT_EQ(toks[5].float_value, 255.0f);
}

TEST(LexerTest, FloatSuffixIsAnError) {
  DiagSink diags;
  (void)Lex("1.0f", diags);
  EXPECT_TRUE(diags.has_errors());
}

TEST(LexerTest, OperatorsMultiChar) {
  const auto toks = LexOk("== != <= >= && || ^^ += -= *= /= ++ --");
  EXPECT_EQ(toks[0].kind, Tok::kEqEq);
  EXPECT_EQ(toks[1].kind, Tok::kBangEq);
  EXPECT_EQ(toks[2].kind, Tok::kLessEq);
  EXPECT_EQ(toks[3].kind, Tok::kGreaterEq);
  EXPECT_EQ(toks[4].kind, Tok::kAmpAmp);
  EXPECT_EQ(toks[5].kind, Tok::kPipePipe);
  EXPECT_EQ(toks[6].kind, Tok::kCaretCaret);
  EXPECT_EQ(toks[7].kind, Tok::kPlusEq);
  EXPECT_EQ(toks[8].kind, Tok::kMinusEq);
  EXPECT_EQ(toks[9].kind, Tok::kStarEq);
  EXPECT_EQ(toks[10].kind, Tok::kSlashEq);
  EXPECT_EQ(toks[11].kind, Tok::kPlusPlus);
  EXPECT_EQ(toks[12].kind, Tok::kMinusMinus);
}

TEST(LexerTest, ReservedOperatorsDiagnosed) {
  for (const char* src : {"a % b", "a & b", "a | b", "a ^ b", "~a",
                          "a << 2", "a >> 2"}) {
    DiagSink diags;
    (void)Lex(src, diags);
    EXPECT_TRUE(diags.has_errors()) << src;
  }
}

TEST(LexerTest, ReservedKeywordsDiagnosed) {
  for (const char* src : {"double x", "long y", "switch", "goto", "half h",
                          "sampler3D s"}) {
    DiagSink diags;
    (void)Lex(src, diags);
    EXPECT_TRUE(diags.has_errors()) << src;
  }
}

TEST(LexerTest, DoubleUnderscoreReserved) {
  DiagSink diags;
  (void)Lex("__foo", diags);
  EXPECT_TRUE(diags.has_errors());
}

TEST(LexerTest, SourceLocationsTracked) {
  const auto toks = LexOk("a\n  b");
  EXPECT_EQ(toks[0].loc.line, 1);
  EXPECT_EQ(toks[1].loc.line, 2);
  EXPECT_EQ(toks[1].loc.column, 3);
}

TEST(LexerTest, SamplerKeywordCaseSensitive) {
  const auto toks = LexOk("sampler2D");
  EXPECT_EQ(toks[0].kind, Tok::kKwSampler2D);
}

TEST(LexerTest, DotFollowedByIdentifierIsFieldAccess) {
  const auto toks = LexOk("v.xyz");
  ASSERT_GE(toks.size(), 3u);
  EXPECT_EQ(toks[0].kind, Tok::kIdentifier);
  EXPECT_EQ(toks[1].kind, Tok::kDot);
  EXPECT_EQ(toks[2].text, "xyz");
}

}  // namespace
}  // namespace mgpu::glsl
