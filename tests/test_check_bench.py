"""Unit tests for scripts/check_bench.py, the CI benchmark regression gate.

A broken gate fails open (a checker that never trips looks exactly like a
healthy run), so the threshold and unit semantics are pinned here: exact
gating for deterministic units, the soft/hard timing bands, the noise
floor, --skip-timing, and the --update meta block. Run via pytest
(python3-pytest from apt; the gcc CI leg executes this file).
"""

import importlib.util
import json
from pathlib import Path

_SCRIPT = Path(__file__).resolve().parent.parent / "scripts" / "check_bench.py"
_spec = importlib.util.spec_from_file_location("check_bench", _SCRIPT)
cb = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(cb)


def write_bench(path, bench, metrics):
    """metrics: iterable of (name, unit, value) tuples."""
    path.write_text(json.dumps({
        "benchmark": bench,
        "metrics": [
            {"name": n, "unit": u, "value": v} for n, u, v in metrics
        ],
    }))
    return str(path)


def write_baseline(path, benchmarks, meta=None):
    """benchmarks: {bench: [(name, unit, value), ...]}."""
    path.write_text(json.dumps({
        "benchmarks": {
            bench: {n: {"unit": u, "value": v} for n, u, v in ms}
            for bench, ms in benchmarks.items()
        },
        "meta": meta if meta is not None else {},
    }))
    return str(path)


def run_check(tmp_path, base_metrics, cur_metrics, skip_timing=False):
    base = write_baseline(tmp_path / "baseline.json", {"b": base_metrics})
    cur = write_bench(tmp_path / "BENCH_b.json", "b", cur_metrics)
    return cb.check(base, [cur], skip_timing)


def test_identical_run_passes(tmp_path):
    m = [("fb_hash", "hash", 123456), ("wall", "s", 0.100)]
    assert run_check(tmp_path, m, m) == 0


def test_deterministic_drift_fails_regardless_of_magnitude(tmp_path):
    for unit, old, new in [("hash", 123456, 123457),
                           ("ops", 1000, 999),
                           ("bool", True, False),
                           ("count", 7, 8)]:
        base = [("m", unit, old)]
        assert run_check(tmp_path, base, [("m", unit, new)]) == 1
        assert run_check(tmp_path, base, [("m", unit, old)]) == 0


def test_timing_hard_regression_fails(tmp_path):
    # +30% on a lower-is-better metric exceeds the 25% hard threshold.
    assert run_check(tmp_path, [("wall", "s", 0.100)],
                     [("wall", "s", 0.130)]) == 1


def test_timing_soft_regression_only_warns(tmp_path, capsys):
    # +15% sits in the soft band: exit 0, but the warning must be printed.
    assert run_check(tmp_path, [("wall", "s", 0.100)],
                     [("wall", "s", 0.115)]) == 0
    assert "WARN" in capsys.readouterr().out


def test_timing_improvement_never_fails(tmp_path):
    assert run_check(tmp_path, [("wall", "s", 0.100)],
                     [("wall", "s", 0.040)]) == 0


def test_higher_is_better_units_gate_on_drops(tmp_path):
    # speedup 2.0x -> 1.5x is a 33% regression for an "x" metric.
    assert run_check(tmp_path, [("speedup", "x", 2.0)],
                     [("speedup", "x", 1.5)]) == 1
    assert run_check(tmp_path, [("speedup", "x", 2.0)],
                     [("speedup", "x", 2.5)]) == 0
    assert run_check(tmp_path, [("rate", "/s", 1000.0)],
                     [("rate", "/s", 700.0)]) == 1


def test_sub_noise_floor_timings_never_gate(tmp_path):
    # 1ms -> 4ms is +300%, but both sit under the 5ms noise floor.
    assert run_check(tmp_path, [("wall", "s", 0.001)],
                     [("wall", "s", 0.004)]) == 0


def test_skip_timing_ignores_timing_but_still_gates_deterministic(tmp_path):
    base = [("wall", "s", 0.100), ("fb_hash", "hash", 42)]
    bad_timing = [("wall", "s", 9.000), ("fb_hash", "hash", 42)]
    assert run_check(tmp_path, base, bad_timing, skip_timing=True) == 0
    assert run_check(tmp_path, base, bad_timing, skip_timing=False) == 1
    bad_hash = [("wall", "s", 0.100), ("fb_hash", "hash", 43)]
    assert run_check(tmp_path, base, bad_hash, skip_timing=True) == 1


def test_threads_unit_is_environment_dependent_and_skipped(tmp_path):
    assert run_check(tmp_path, [("pool", "threads", 4)],
                     [("pool", "threads", 16)]) == 0


def test_missing_metric_fails(tmp_path):
    assert run_check(tmp_path,
                     [("wall", "s", 0.1), ("fb_hash", "hash", 42)],
                     [("wall", "s", 0.1)]) == 1


def test_unit_change_fails(tmp_path):
    assert run_check(tmp_path, [("wall", "s", 0.1)],
                     [("wall", "x", 0.1)]) == 1


def test_new_metric_not_in_baseline_does_not_gate(tmp_path):
    assert run_check(tmp_path, [("wall", "s", 0.1)],
                     [("wall", "s", 0.1), ("extra", "s", 99.0)]) == 0


def test_baseline_bench_without_bench_file_fails(tmp_path):
    base = write_baseline(tmp_path / "baseline.json",
                          {"present": [("wall", "s", 0.1)],
                           "absent": [("wall", "s", 0.1)]})
    cur = write_bench(tmp_path / "BENCH_p.json", "present",
                      [("wall", "s", 0.1)])
    assert cb.check(base, [cur], False) == 1


def test_bench_file_not_in_baseline_only_warns(tmp_path, capsys):
    base = write_baseline(tmp_path / "baseline.json",
                          {"known": [("wall", "s", 0.1)]})
    known = write_bench(tmp_path / "BENCH_k.json", "known",
                        [("wall", "s", 0.1)])
    novel = write_bench(tmp_path / "BENCH_n.json", "novel",
                        [("wall", "s", 0.1)])
    assert cb.check(base, [known, novel], False) == 0
    assert "not in baseline" in capsys.readouterr().out


def test_update_writes_meta_and_roundtrips(tmp_path):
    cur = write_bench(tmp_path / "BENCH_b.json", "b",
                      [("wall", "s", 0.1), ("fb_hash", "hash", 42)])
    base = str(tmp_path / "baseline.json")
    assert cb.update_baseline(base, [cur], None, "ci:test") == 0
    data = json.loads(Path(base).read_text())
    assert data["meta"]["source"] == "ci:test"
    assert data["meta"]["cpu_count"] > 0
    assert "machine_class" in data["meta"]
    # A freshly written baseline must gate green against its own inputs.
    assert cb.check(base, [cur], False) == 0


def test_cpu_count_mismatch_soft_warns_but_passes(tmp_path, capsys):
    base = write_baseline(
        tmp_path / "baseline.json", {"b": [("wall", "s", 0.1)]},
        meta={"machine_class": "2-core test", "cpu_count": 100000,
              "source": "elsewhere"})
    cur = write_bench(tmp_path / "BENCH_b.json", "b", [("wall", "s", 0.1)])
    assert cb.check(base, [cur], False) == 0
    assert "timing gates may be unreliable" in capsys.readouterr().out
