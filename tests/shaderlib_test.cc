// The generated GLSL library in isolation: structure of the emitted source,
// and the equivalence of the paper-literal delta byte transform (Eq. 3-5,
// with the errata-corrected delta = 1/65280) to the robust rounding form —
// executed through the interpreter for every byte value.
#include "compute/shaderlib.h"

#include <string>

#include "common/strings.h"
#include "glsl_test_util.h"
#include "gtest/gtest.h"

namespace mgpu::compute {
namespace {

using glsl::testutil::RunFragment;

TEST(ShaderLibTest, PassthroughVertexShaderCompiles) {
  glsl::CompileResult r = glsl::CompileGlsl(PassthroughVertexShader(),
                                            glsl::Stage::kVertex);
  EXPECT_TRUE(r.ok) << r.info_log;
}

TEST(ShaderLibTest, AllUnpackPackFunctionsCompileTogether) {
  std::string src = KernelPreamble();
  for (const ElemType t : {ElemType::kU8, ElemType::kI8, ElemType::kU32,
                           ElemType::kI32, ElemType::kF32}) {
    src += UnpackFunction(t);
    src += PackFunction(t);
  }
  src += DeltaByteFunctions();
  src += "void main() { gl_FragColor = gp_pack_f32(gp_unpack_f32(vec4(0.5)));"
         " }\n";
  glsl::CompileResult r = glsl::CompileGlsl(src, glsl::Stage::kFragment);
  EXPECT_TRUE(r.ok) << r.info_log;
}

TEST(ShaderLibTest, NamesMatchTypes) {
  EXPECT_EQ(UnpackName(ElemType::kF32), "gp_unpack_f32");
  EXPECT_EQ(PackName(ElemType::kI8), "gp_pack_i8");
  EXPECT_TRUE(Contains(FetchFunctions("u_src", ElemType::kU32),
                       "gp_fetch_u_src"));
  EXPECT_TRUE(Contains(FetchFunctions("u_src", ElemType::kU32),
                       "gp_fetch2_u_src"));
}

// The paper-literal delta form must agree with the robust form for every
// byte value c: both must recover c from the quantized texture value c/255.
class DeltaEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(DeltaEquivalence, UnpackRecoversExactByte) {
  const int c = GetParam();
  const std::string src = StrFormat(
      "float f = %d.0 / 255.0;\n"
      "%s"
      "gl_FragColor = vec4(gp_unpack_u8_delta(f) / 255.0,\n"
      "                    floor(f * 255.0 + 0.5) / 255.0, 0.0, 0.0);",
      c, "");
  // Inject the library ahead of the body via a full-source run.
  const std::string full = "precision highp float;\n" + DeltaByteFunctions() +
                           "void main() {\n" + src + "\n}\n";
  glsl::ExactAlu alu;
  const auto out = glsl::testutil::RunFragmentSource(full, alu);
  const float delta_byte = out[0] * 255.0f;
  const float robust_byte = out[1] * 255.0f;
  EXPECT_NEAR(delta_byte, static_cast<float>(c), 0.01f) << "delta form";
  EXPECT_NEAR(robust_byte, static_cast<float>(c), 0.01f) << "robust form";
  EXPECT_NEAR(delta_byte, robust_byte, 0.01f) << "equivalence";
}

INSTANTIATE_TEST_SUITE_P(AllBoundaryBytes, DeltaEquivalence,
                         ::testing::Values(0, 1, 2, 63, 64, 127, 128, 129,
                                           191, 253, 254, 255));

TEST(ShaderLibTest, DeltaPackLandsOnByteUnderFloorConversion) {
  // M^-1 of Eq. (5): b/255 - delta (delta negative, so + 1/65280) must
  // floor-quantize back to b for every byte.
  for (int b = 0; b <= 255; ++b) {
    const std::string full = StrFormat(
        "precision highp float;\n%svoid main() {\n"
        "  float f = gp_pack_u8_delta(%d.0);\n"
        "  gl_FragColor = vec4(floor(clamp(f, 0.0, 1.0) * 255.0) / 255.0,\n"
        "                      0.0, 0.0, 0.0);\n}\n",
        DeltaByteFunctions().c_str(), b);
    glsl::ExactAlu alu;
    const auto out = glsl::testutil::RunFragmentSource(full, alu);
    EXPECT_NEAR(out[0] * 255.0f, static_cast<float>(b), 0.01f) << b;
  }
}

TEST(ShaderLibTest, PreambleHelpersBehave) {
  // gp_coord must address texel centers; gp_byte/gp_unbyte must invert.
  const std::string full =
      "precision highp float;\nuniform vec2 gp_out_size_unused;\n" +
      std::string("vec2 gp_coord(float index, vec2 size) {\n"
                  "  float y = floor((index + 0.5) / size.x);\n"
                  "  float x = index - y * size.x;\n"
                  "  return (vec2(x, y) + 0.5) / size;\n}\n") +
      "void main() {\n"
      "  vec2 c = gp_coord(5.0, vec2(4.0, 2.0));\n"  // index 5 -> (1, 1)
      "  gl_FragColor = vec4(c, 0.0, 0.0);\n}\n";
  glsl::ExactAlu alu;
  const auto out = glsl::testutil::RunFragmentSource(full, alu);
  EXPECT_FLOAT_EQ(out[0], 1.5f / 4.0f);
  EXPECT_FLOAT_EQ(out[1], 1.5f / 2.0f);
}

TEST(ShaderLibTest, GeneratedSourceIsValidGlslEs100) {
  // Every generated function must survive the strict front end (no implicit
  // conversions, default precision discipline).
  for (const ElemType t : {ElemType::kU8, ElemType::kI8, ElemType::kU32,
                           ElemType::kI32, ElemType::kF32}) {
    const std::string src =
        KernelPreamble() + UnpackFunction(t) + PackFunction(t) +
        FetchFunctions("u_in", t) +
        "void main() { gl_FragColor = vec4(0.0); }\n";
    glsl::CompileResult r = glsl::CompileGlsl(src, glsl::Stage::kFragment);
    EXPECT_TRUE(r.ok) << ElemTypeName(t) << ":\n" << r.info_log;
  }
}

}  // namespace
}  // namespace mgpu::compute
