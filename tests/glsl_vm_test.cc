// Differential harness for the bytecode VM: every shader in the corpus runs
// through BOTH engines — the tree-walking ShaderExec oracle and the bytecode
// VmExec — and must produce bit-identical outputs and identical AluModel op
// counts. The corpus covers the same ground as the conformance suite
// (expressions, control flow, functions, arrays, swizzled stores) plus
// VM-specific hazards (register clobbering across calls, side effects in
// argument lists, discard inside helpers).
#include <array>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "common/bits.h"
#include "common/strings.h"
#include "gles2/context.h"
#include "glsl/compile.h"
#include "glsl/interp.h"
#include "glsl/ir.h"
#include "glsl/vm.h"
#include "vc4/alu.h"
#include "vc4/profiles.h"

#include "glsl_test_util.h"
#include "gtest/gtest.h"

namespace mgpu::glsl {
namespace {

struct EngineRun {
  bool ok = false;            // compiled and ran
  bool kept = false;          // not discarded
  std::array<std::uint32_t, 4> color{};  // gl_FragColor bit patterns
  OpCounts counts;
};

// Uniform assignments applied before Run(): name -> up to 16 float cells
// (or int for samplers/ints via the int flag).
struct UniformF {
  const char* name;
  std::vector<float> cells;
};
struct UniformI {
  const char* name;
  std::vector<std::int32_t> cells;
};

struct Case {
  const char* label;
  std::string source;
  std::vector<UniformF> funiforms;
  std::vector<UniformI> iuniforms;
  bool with_texture = false;
};

template <typename Engine>
EngineRun RunEngine(Engine& exec, AluModel& alu, const Case& c) {
  EngineRun r;
  for (const UniformF& u : c.funiforms) {
    const int slot = exec.GlobalSlot(u.name);
    if (slot < 0) continue;
    Value& v = exec.GlobalAt(slot);
    for (std::size_t i = 0; i < u.cells.size(); ++i) {
      v.SetF(static_cast<int>(i), u.cells[i]);
    }
  }
  for (const UniformI& u : c.iuniforms) {
    const int slot = exec.GlobalSlot(u.name);
    if (slot < 0) continue;
    Value& v = exec.GlobalAt(slot);
    for (std::size_t i = 0; i < u.cells.size(); ++i) {
      v.SetI(static_cast<int>(i), u.cells[i]);
    }
  }
  if (c.with_texture) {
    exec.SetTextureFn([](int unit, float s, float t, float lod) {
      return std::array<float, 4>{s * 0.5f + static_cast<float>(unit) * 0.125f,
                                  t * 0.25f, s + t, lod + 0.75f};
    });
  }
  alu.ResetCounts();
  r.kept = exec.Run();
  r.counts = alu.counts();
  r.ok = true;
  const int slot = exec.GlobalSlot("gl_FragColor");
  if (slot >= 0) {
    const Value& v = exec.GlobalAt(slot);
    for (int i = 0; i < 4; ++i) r.color[static_cast<std::size_t>(i)] =
        FloatToBits(v.F(i));
  }
  return r;
}

// Runs `c` through both engines on fresh ALUs of identical model and
// asserts bit-identical color and identical op counts.
void ExpectEnginesAgree(const Case& c, bool vc4_alu = false) {
  SCOPED_TRACE(c.label);
  CompileResult cr = CompileGlsl(c.source, Stage::kFragment);
  ASSERT_TRUE(cr.ok) << "compile failed [" << c.label << "]:\n"
                     << cr.info_log << "\nsource:\n" << c.source;

  const vc4::GpuProfile profile = vc4::VideoCoreIV();
  ExactAlu exact_a, exact_b;
  vc4::Vc4Alu vc4_a(profile), vc4_b(profile);
  AluModel& alu_interp = vc4_alu ? static_cast<AluModel&>(vc4_a) : exact_a;
  AluModel& alu_vm = vc4_alu ? static_cast<AluModel&>(vc4_b) : exact_b;

  ShaderExec interp(*cr.shader, alu_interp);
  VmExec vm(LowerToBytecode(*cr.shader), alu_vm);

  const EngineRun a = RunEngine(interp, alu_interp, c);
  const EngineRun b = RunEngine(vm, alu_vm, c);

  EXPECT_EQ(a.kept, b.kept) << "discard disagreement";
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(a.color[static_cast<std::size_t>(i)],
              b.color[static_cast<std::size_t>(i)])
        << "component " << i << " differs: interp="
        << BitsToFloat(a.color[static_cast<std::size_t>(i)])
        << " vm=" << BitsToFloat(b.color[static_cast<std::size_t>(i)]);
  }
  EXPECT_EQ(a.counts.alu, b.counts.alu) << "alu op count";
  EXPECT_EQ(a.counts.sfu, b.counts.sfu) << "sfu op count";
  EXPECT_EQ(a.counts.sfu_trans, b.counts.sfu_trans) << "sfu_trans op count";
  EXPECT_EQ(a.counts.tmu, b.counts.tmu) << "tmu op count";
}

std::string Frag(const std::string& body) {
  return "precision highp float;\nvoid main() {\n" + body + "\n}\n";
}

// --- the conformance corpus (mirrors glsl_conformance_test + more) --------

std::vector<Case> ConformanceCorpus() {
  std::vector<Case> cases;
  auto add = [&](const char* label, std::string src) {
    Case c;
    c.label = label;
    c.source = std::move(src);
    cases.push_back(std::move(c));
  };

  add("deeply_nested_expressions", Frag(
      "gl_FragColor = vec4(((((1.0 + 2.0) * (3.0 - 1.0)) / ((2.0))) - "
      "((1.0 + (1.0 * (1.0))))), 0.0, 0.0, 0.0);"));
  add("chained_swizzle", Frag(R"(
vec4 v = vec4(1.0, 2.0, 3.0, 4.0);
gl_FragColor = vec4(v.wzyx.xy.y, v.rgba.ba, 0.0);)"));
  add("matrix_algebra_chain", Frag(R"(
mat3 rot = mat3(0.0, 1.0, 0.0, -1.0, 0.0, 0.0, 0.0, 0.0, 1.0);
vec3 v = vec3(1.0, 0.0, 0.0);
vec3 once = rot * v;
vec3 four = rot * rot * rot * rot * v;
gl_FragColor = vec4(once.xy, four.xy);)"));
  add("matrix_scalar_division", Frag(R"(
mat2 m = mat2(2.0, 4.0, 6.0, 8.0);
mat2 half_m = m / 2.0;
mat2 plus = m + mat2(1.0);
gl_FragColor = vec4(half_m[1][1], plus[0][0], plus[0][1], 2.0 * half_m[0][0]);)"));
  add("arrays_of_vectors", Frag(R"(
vec2 pts[3];
pts[0] = vec2(1.0, 2.0);
pts[1] = vec2(3.0, 4.0);
pts[2] = pts[0] + pts[1];
gl_FragColor = vec4(pts[2], pts[1].y, pts[0].x);)"));
  add("dynamic_matrix_trace", Frag(R"(
mat3 m = mat3(1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0);
float acc = 0.0;
for (int i = 0; i < 3; ++i) { acc += m[i][i]; }
gl_FragColor = vec4(acc);)"));
  add("function_overloads", R"(
precision highp float;
float total(vec2 v) { return v.x + v.y; }
float total(vec3 v) { return v.x + v.y + v.z; }
float total(float v) { return v; }
void main() {
  gl_FragColor = vec4(total(vec2(1.0, 2.0)), total(vec3(1.0, 2.0, 3.0)),
                      total(7.0), 0.0);
}
)");
  add("helpers_calling_helpers", R"(
precision highp float;
float sq(float x) { return x * x; }
float quart(float x) { return sq(sq(x)); }
float poly(float x) { return quart(x) + sq(x) + x; }
void main() { gl_FragColor = vec4(poly(2.0)); }
)");
  add("const_global_and_macro_array", R"(
#define N 4
precision highp float;
const float kWeights = 0.25;
void main() {
  float acc = 0.0;
  float tbl[N];
  for (int i = 0; i < N; ++i) { tbl[i] = kWeights; }
  for (int i = 0; i < N; ++i) { acc += tbl[i]; }
  gl_FragColor = vec4(acc);
}
)");
  add("integer_division", Frag(R"(
int a = 17; int b = 5;
int q = a / b;
int r = a - q * b;
gl_FragColor = vec4(float(q), float(r), float(-17 / 5), 0.0);)"));
  add("bool_vector_ctor", Frag(R"(
bvec3 b = bvec3(1.0, 0.0, 5.0);
gl_FragColor = vec4(b.x ? 1.0 : 0.0, b.y ? 1.0 : 0.0, b.z ? 1.0 : 0.0, 0.0);)"));
  add("compound_assign_swizzle", Frag(R"(
vec4 v = vec4(1.0, 2.0, 3.0, 4.0);
v.yz *= 10.0;
v.x += v.w;
gl_FragColor = v;)"));
  add("for_comma_step", Frag(R"(
float a = 0.0; float b = 0.0;
for (int i = 0; i < 4; a += 1.0, ++i) { b += 2.0; }
gl_FragColor = vec4(a, b, 0.0, 0.0);)"));
  add("numeric_edge_infinity", Frag(R"(
float inf = 1.0 / 0.0;
float ninf = -1.0 / 0.0;
gl_FragColor = vec4(inf > 1e30 ? 1.0 : 0.0, ninf < -1e30 ? 1.0 : 0.0,
                    clamp(inf, 0.0, 2.0), 0.0);)"));

  // --- control-flow corners ----------------------------------------------
  add("while_break_continue", Frag(R"(
float acc = 0.0;
int i = 0;
while (i < 10) {
  ++i;
  if (i == 3) { continue; }
  if (i == 8) { break; }
  acc += float(i);
}
gl_FragColor = vec4(acc);)"));
  add("do_while_continue", Frag(R"(
float acc = 0.0;
int i = 0;
do {
  i += 2;
  if (i == 4) { continue; }
  acc += float(i);
} while (i < 9);
gl_FragColor = vec4(acc, float(i), 0.0, 0.0);)"));
  add("nested_loops_break", Frag(R"(
float acc = 0.0;
for (int i = 0; i < 4; ++i) {
  for (int j = 0; j < 4; ++j) {
    if (j > i) { break; }
    acc += 1.0;
  }
}
gl_FragColor = vec4(acc);)"));
  add("return_from_loop_in_main", Frag(R"(
gl_FragColor = vec4(0.0);
for (int i = 0; i < 10; ++i) {
  if (i == 3) { gl_FragColor = vec4(float(i)); return; }
}
gl_FragColor = vec4(99.0);)"));
  add("ternary_short_circuit", Frag(R"(
float x = 2.0;
float y = x > 1.0 ? (x += 10.0, x) : (x += 100.0, x);
gl_FragColor = vec4(x, y, 0.0, 0.0);)"));
  add("logical_short_circuit_effects", Frag(R"(
float a = 0.0;
bool t1 = (a += 1.0) > 0.0 || (a += 10.0) > 0.0;   // rhs skipped
bool t2 = (a += 1.0) < 0.0 && (a += 100.0) > 0.0;  // rhs skipped
bool t3 = (a += 1.0) > 0.0 ^^ (a += 1000.0) > 0.0; // both evaluated
gl_FragColor = vec4(a, t1 ? 1.0 : 0.0, t2 ? 1.0 : 0.0, t3 ? 1.0 : 0.0);)"));

  // --- functions: parameters, clobbering hazards -------------------------
  add("out_inout_params", R"(
precision highp float;
void split(in float v, out float lo, inout float acc) {
  lo = v - 1.0;
  acc += v;
}
void main() {
  float lo = 99.0;
  float acc = 0.5;
  split(4.0, lo, acc);
  gl_FragColor = vec4(lo, acc, 0.0, 0.0);
}
)");
  add("out_param_into_swizzle", R"(
precision highp float;
void pick(out vec2 dst) { dst = vec2(7.0, 8.0); }
void main() {
  vec4 v = vec4(0.0);
  pick(v.yw);
  gl_FragColor = v;
}
)");
  add("nested_call_same_function", R"(
precision highp float;
float sq(float x) { return x * x; }
void main() {
  gl_FragColor = vec4(sq(sq(2.0)), sq(1.0) + sq(3.0), 0.0, 0.0);
}
)");
  add("call_in_arg_clobbers", R"(
precision highp float;
float g_state = 1.0;
float bump(float v) { g_state += v; return g_state; }
void main() {
  // Both arguments call bump(); evaluation is left to right.
  gl_FragColor = vec4(bump(1.0) + bump(10.0), g_state, 0.0, 0.0);
}
)");
  add("function_falls_off_end", R"(
precision highp float;
float maybe(float x) { if (x > 0.0) { return x * 2.0; } }
void main() { gl_FragColor = vec4(maybe(3.0), maybe(-3.0), 0.0, 0.0); }
)");
  add("discard_inside_helper_is_early_return", R"(
precision highp float;
float risky(float x) { if (x > 0.0) { discard; } return 5.0; }
void main() {
  float r = risky(1.0);   // discard inside a helper returns zero
  gl_FragColor = vec4(r, risky(-1.0), 0.0, 1.0);
}
)");
  add("prototype_then_definition", R"(
precision highp float;
float twice(float x);
void main() { gl_FragColor = vec4(twice(21.0)); }
float twice(float x) { return x * 2.0; }
)");
  add("lvalue_index_mutates_rhs_var", R"(
precision highp float;
float x = 0.0;
float arr[2];
float bump() { x = 5.0; return 0.0; }
void main() {
  x = 1.0;
  arr[1] = 9.0;
  // The RHS (x == 1.0) must be snapshotted before the index call sets x=5.
  arr[int(bump())] = x;
  gl_FragColor = vec4(arr[0], arr[1], x, 0.0);
}
)");
  add("lvalue_index_mutates_rhs_compound", R"(
precision highp float;
float x = 0.0;
float arr[2];
float bump() { x = 100.0; return 1.0; }
void main() {
  x = 3.0;
  arr[0] = 10.0; arr[1] = 20.0;
  arr[int(bump()) - 1] += x;  // snapshot of x (3.0) added to arr[0]
  gl_FragColor = vec4(arr[0], arr[1], x, 0.0);
}
)");

  // --- state: globals with initializers, inc/dec, comma ------------------
  add("plain_global_reinit", R"(
precision highp float;
float counter = 3.0;
void main() {
  counter += 1.0;
  gl_FragColor = vec4(counter);
}
)");
  add("incdec_on_array_element", Frag(R"(
float a[3];
a[0] = 5.0; a[1] = 6.0; a[2] = 7.0;
int i = 1;
float pre = ++a[i];
float post = a[i]--;
gl_FragColor = vec4(a[1], pre, post, float(i++));)"));
  add("comma_expression_value", Frag(R"(
float a = 1.0;
float b = (a += 1.0, a * 2.0);
gl_FragColor = vec4(a, b, 0.0, 0.0);)"));
  add("index_clamp_out_of_range", Frag(R"(
vec4 v = vec4(1.0, 2.0, 3.0, 4.0);
int big = 7;
int neg = -2;
gl_FragColor = vec4(v[big], v[neg], 0.0, 0.0);)"));
  add("matrix_from_matrix_ctor", Frag(R"(
mat2 small_m = mat2(1.0, 2.0, 3.0, 4.0);
mat4 big = mat4(small_m);
mat2 back = mat2(big);
gl_FragColor = vec4(big[2][2], big[3][1], back[0][1], back[1][1]);)"));
  add("vec_eq_compare", Frag(R"(
vec3 a = vec3(1.0, 2.0, 4.0);
vec3 b = vec3(1.0, 2.0, 4.0);
vec3 d = vec3(1.0, 2.0, 5.0);
gl_FragColor = vec4(a == b ? 1.0 : 0.0, a == d ? 1.0 : 0.0,
                    a != d ? 1.0 : 0.0, 0.0);)"));

  // --- builtins ----------------------------------------------------------
  add("builtin_sweep_math", Frag(R"(
float x = 0.7;
gl_FragColor = vec4(sin(x) + cos(x), pow(x, 2.3) + exp2(x),
                    inversesqrt(x + 1.0) + fract(x * 10.0),
                    mod(7.3, 2.0) + sign(-x));)"));
  add("builtin_sweep_geometry", Frag(R"(
vec3 a = vec3(1.0, 2.0, 2.0);
vec3 b = vec3(0.0, 1.0, 0.0);
gl_FragColor = vec4(length(a), dot(a, b), distance(a, b),
                    normalize(a).y + cross(a, b).z);)"));
  add("builtin_sweep_relational", Frag(R"(
vec3 a = vec3(1.0, 5.0, 3.0);
vec3 b = vec3(2.0, 4.0, 3.0);
bvec3 lt = lessThan(a, b);
bvec3 ge = greaterThanEqual(a, b);
gl_FragColor = vec4(any(lt) ? 1.0 : 0.0, all(ge) ? 1.0 : 0.0,
                    not(lt).y ? 1.0 : 0.0, equal(a, b).z ? 1.0 : 0.0);)"));
  add("builtin_mix_step_smoothstep", Frag(R"(
gl_FragColor = vec4(mix(1.0, 5.0, 0.25), step(2.0, vec2(1.0, 3.0)).y,
                    smoothstep(0.0, 4.0, 1.0), clamp(vec3(-1.0, 0.5, 2.0),
                    0.0, 1.0).z);)"));

  return cases;
}

TEST(VmDifferentialTest, ConformanceCorpusExactAlu) {
  for (const Case& c : ConformanceCorpus()) {
    ExpectEnginesAgree(c, /*vc4_alu=*/false);
  }
}

TEST(VmDifferentialTest, ConformanceCorpusVc4Alu) {
  // The reduced-precision VideoCore ALU model exercises Round()/SFU error
  // paths; engines must still agree bit for bit.
  for (const Case& c : ConformanceCorpus()) {
    ExpectEnginesAgree(c, /*vc4_alu=*/true);
  }
}

TEST(VmDifferentialTest, UniformsAndSamplers) {
  Case c;
  c.label = "uniforms_and_samplers";
  c.source = R"(
precision highp float;
uniform float u_scale;
uniform vec2 u_offset;
uniform float u_lut[8];
uniform sampler2D u_tex;
void main() {
  float acc = 0.0;
  for (int i = 0; i < 8; ++i) { acc += u_lut[i]; }
  vec4 t = texture2D(u_tex, u_offset);
  gl_FragColor = vec4(u_scale * acc, t.xy + u_offset, t.w);
}
)";
  c.funiforms = {{"u_scale", {0.5f}},
                 {"u_offset", {0.25f, 0.75f}},
                 {"u_lut", {1, 2, 3, 4, 5, 6, 7, 8}}};
  c.iuniforms = {{"u_tex", {3}}};
  c.with_texture = true;
  ExpectEnginesAgree(c);
  ExpectEnginesAgree(c, /*vc4_alu=*/true);
}

TEST(VmDifferentialTest, DiscardAgreement) {
  for (const float kill : {0.0f, 1.0f}) {
    Case c;
    c.label = kill > 0.5f ? "discard_taken" : "discard_not_taken";
    c.source = R"(
precision highp float;
uniform float u_kill;
void main() {
  if (u_kill > 0.5) discard;
  gl_FragColor = vec4(1.0);
}
)";
    c.funiforms = {{"u_kill", {kill}}};
    ExpectEnginesAgree(c);
  }
}

// --- targeted VM behaviour ------------------------------------------------

// Builds a helper-call chain main -> f1 -> ... -> fN returning N.
std::string DeepCallChain(int depth) {
  std::string src = "precision highp float;\n";
  src += StrFormat("float f%d() { return %d.0; }\n", depth, depth);
  for (int i = depth - 1; i >= 1; --i) {
    src += StrFormat("float f%d() { return f%d(); }\n", i, i + 1);
  }
  src += "void main() { gl_FragColor = vec4(f1()); }\n";
  return src;
}

TEST(VmDifferentialTest, CallDepthLimitMatchesInterpreter) {
  // 64 concurrently active user calls are allowed; 65 throw. Both engines
  // must sit on the same boundary.
  {
    auto shader = testutil::MustCompile(DeepCallChain(64));
    ExactAlu alu_a, alu_b;
    ShaderExec interp(*shader, alu_a);
    VmExec vm(LowerToBytecode(*shader), alu_b);
    ASSERT_TRUE(interp.Run());
    ASSERT_TRUE(vm.Run());
    EXPECT_EQ(interp.GlobalAt(interp.GlobalSlot("gl_FragColor")).F(0),
              vm.GlobalAt(vm.GlobalSlot("gl_FragColor")).F(0));
  }
  {
    auto shader = testutil::MustCompile(DeepCallChain(65));
    ExactAlu alu_a, alu_b;
    ShaderExec interp(*shader, alu_a);
    VmExec vm(LowerToBytecode(*shader), alu_b);
    EXPECT_THROW(interp.Run(), ShaderRuntimeError);
    EXPECT_THROW(vm.Run(), ShaderRuntimeError);
  }
}

TEST(VmExecTest, RunawayLoopRaisesRuntimeError) {
  auto shader = testutil::MustCompile(
      "precision highp float;\nvoid main() { float a = 0.0; while (true) { a "
      "+= 1.0; } gl_FragColor = vec4(a); }");
  ExactAlu alu;
  VmExec vm(LowerToBytecode(*shader), alu);
  EXPECT_THROW(vm.Run(), ShaderRuntimeError);
}

TEST(VmExecTest, UndefinedPrototypeTrapsOnlyWhenCalled) {
  auto shader = testutil::MustCompile(R"(
precision highp float;
float ghost(float x);
uniform float u_sel;
void main() {
  if (u_sel > 0.5) { gl_FragColor = vec4(ghost(1.0)); }
  else { gl_FragColor = vec4(2.0); }
}
)");
  ExactAlu alu;
  VmExec vm(LowerToBytecode(*shader), alu);
  vm.GlobalAt(vm.GlobalSlot("u_sel")).SetF(0, 0.0f);
  EXPECT_TRUE(vm.Run());
  EXPECT_FLOAT_EQ(vm.GlobalAt(vm.GlobalSlot("gl_FragColor")).F(0), 2.0f);
  vm.GlobalAt(vm.GlobalSlot("u_sel")).SetF(0, 1.0f);
  EXPECT_THROW(vm.Run(), ShaderRuntimeError);
}

TEST(VmExecTest, RunIsRepeatableAfterStateChange) {
  auto shader = testutil::MustCompile(
      "precision highp float;\nuniform float u_x;\nvoid main() { "
      "gl_FragColor = vec4(u_x * u_x); }");
  ExactAlu alu;
  VmExec vm(LowerToBytecode(*shader), alu);
  for (float x : {1.0f, 2.0f, 3.0f, 4.0f}) {
    vm.GlobalAt(vm.GlobalSlot("u_x")).SetF(0, x);
    ASSERT_TRUE(vm.Run());
    EXPECT_FLOAT_EQ(vm.GlobalAt(vm.GlobalSlot("gl_FragColor")).F(0), x * x);
  }
}

TEST(VmExecTest, VertexStageWritesPosition) {
  auto shader = testutil::MustCompile(
      "attribute vec4 a_pos;\nvoid main() { gl_Position = a_pos * 2.0; }",
      Stage::kVertex);
  ExactAlu alu;
  VmExec vm(LowerToBytecode(*shader), alu);
  Value& attr = vm.GlobalAt(vm.GlobalSlot("a_pos"));
  attr.SetF(0, 0.5f);
  attr.SetF(1, -0.5f);
  attr.SetF(2, 0.0f);
  attr.SetF(3, 1.0f);
  ASSERT_TRUE(vm.Run());
  const Value& pos = vm.GlobalAt(vm.GlobalSlot("gl_Position"));
  EXPECT_FLOAT_EQ(pos.F(0), 1.0f);
  EXPECT_FLOAT_EQ(pos.F(1), -1.0f);
}

TEST(VmExecTest, ConstructionDoesNotChargeAluCounters) {
  auto shader = testutil::MustCompile(R"(
precision highp float;
const float kA = 1.0 + 2.0;
float plain = kA * 3.0;
void main() { gl_FragColor = vec4(plain); }
)");
  ExactAlu alu;
  const OpCounts before = alu.counts();
  VmExec vm(LowerToBytecode(*shader), alu);
  EXPECT_EQ(alu.counts().alu, before.alu);
  // And the per-run re-initialization of `plain` IS charged, matching the
  // oracle's Run().
  ExactAlu oracle_alu;
  ShaderExec oracle(*shader, oracle_alu);
  oracle_alu.ResetCounts();
  ASSERT_TRUE(oracle.Run());
  alu.ResetCounts();
  ASSERT_TRUE(vm.Run());
  EXPECT_EQ(alu.counts().alu, oracle_alu.counts().alu);
}

// --- full gles2 draw path: the ExecEngine switch ---------------------------

TEST(VmGles2Test, DrawsAreByteIdenticalAcrossEngines) {
  using namespace mgpu::gles2;
  const vc4::GpuProfile profile = vc4::VideoCoreIV();
  vc4::Vc4Alu alu(profile);
  ContextConfig cfg;
  cfg.width = 32;
  cfg.height = 32;
  Context gl(cfg, &alu);

  const char* vs_src =
      "attribute vec2 a_pos;\n"
      "varying vec2 v_uv;\n"
      "void main() { v_uv = a_pos * 0.5 + 0.5; gl_Position = vec4(a_pos, "
      "0.0, 1.0); }\n";
  const char* fs_src =
      "precision highp float;\n"
      "varying vec2 v_uv;\n"
      "uniform float u_gain;\n"
      "void main() {\n"
      "  float w = fract(v_uv.x * 7.0 + sin(v_uv.y * 13.0));\n"
      "  gl_FragColor = vec4(w * u_gain, v_uv, 1.0);\n"
      "}\n";
  const GLuint vs = gl.CreateShader(GL_VERTEX_SHADER);
  gl.ShaderSource(vs, vs_src);
  gl.CompileShader(vs);
  const GLuint fs = gl.CreateShader(GL_FRAGMENT_SHADER);
  gl.ShaderSource(fs, fs_src);
  gl.CompileShader(fs);
  const GLuint prog = gl.CreateProgram();
  gl.AttachShader(prog, vs);
  gl.AttachShader(prog, fs);
  gl.LinkProgram(prog);
  GLint ok = GL_FALSE;
  gl.GetProgramiv(prog, GL_LINK_STATUS, &ok);
  ASSERT_EQ(ok, GL_TRUE) << gl.GetProgramInfoLog(prog);
  gl.UseProgram(prog);
  gl.Uniform1f(gl.GetUniformLocation(prog, "u_gain"), 0.8f);

  const float quad[12] = {-1, -1, 1, -1, 1, 1, -1, -1, 1, 1, -1, 1};
  const GLuint loc = static_cast<GLuint>(gl.GetAttribLocation(prog, "a_pos"));
  gl.EnableVertexAttribArray(loc);
  gl.VertexAttribPointer(loc, 2, GL_FLOAT, GL_FALSE, 0, quad);

  auto draw_and_read = [&](ExecEngine engine, glsl::OpCounts* counts) {
    gl.SetExecEngine(engine);
    gl.ClearColor(0, 0, 0, 0);
    gl.Clear(GL_COLOR_BUFFER_BIT);
    // The test samples the external ALU model directly, bypassing the
    // context's syncing accessors, so it must drain the async command
    // stream itself on either side of the draw.
    gl.Finish();
    alu.ResetCounts();
    gl.DrawArrays(GL_TRIANGLES, 0, 6);
    gl.Finish();
    *counts = alu.counts();
    std::vector<std::uint8_t> px(32 * 32 * 4);
    gl.ReadPixels(0, 0, 32, 32, GL_RGBA, GL_UNSIGNED_BYTE, px.data());
    EXPECT_EQ(gl.GetError(), static_cast<GLenum>(GL_NO_ERROR));
    return px;
  };

  glsl::OpCounts vm_counts, tree_counts;
  const auto vm_px = draw_and_read(ExecEngine::kBytecodeVm, &vm_counts);
  const auto tree_px = draw_and_read(ExecEngine::kTreeWalk, &tree_counts);
  EXPECT_EQ(vm_px, tree_px);
  EXPECT_EQ(vm_counts.alu, tree_counts.alu);
  EXPECT_EQ(vm_counts.sfu, tree_counts.sfu);
  EXPECT_EQ(vm_counts.sfu_trans, tree_counts.sfu_trans);
  EXPECT_EQ(vm_counts.tmu, tree_counts.tmu);
  EXPECT_EQ(vm_counts.tmu_miss, tree_counts.tmu_miss);
  EXPECT_GT(vm_counts.alu, 0u);
}

// ---------------------------------------------------------------------------
// Lane-batched execution: RunBatch vs per-lane scalar Run
// ---------------------------------------------------------------------------
//
// Every shader below reads the varying `v_in`, so lanes carry distinct data;
// the divergent cases branch/loop/discard/call on it. For each batch size n
// in [1, kVmLanes] the batched engine must reproduce the scalar engine's
// per-lane gl_FragColor bits, per-lane discard decisions, and the summed
// ALU/SFU/TMU counts exactly.

struct BatchCase {
  const char* label;
  std::string source;
  bool expect_uniform_flow = false;  // analysis sanity check
  bool with_texture = false;
};

std::vector<BatchCase> BatchCorpus() {
  std::vector<BatchCase> cases;
  cases.push_back(
      {"straight_line_math",
       R"(precision highp float;
varying vec4 v_in;
uniform vec4 u_bias;
void main() {
  vec4 a = v_in * 2.0 + u_bias;
  float s = sin(a.x) + cos(a.y) * sqrt(abs(a.z) + 1.0);
  gl_FragColor = vec4(fract(s), a.y * 0.25, pow(abs(a.w) + 0.5, 1.3), 1.0);
})",
       /*expect_uniform_flow=*/true});
  cases.push_back(
      {"uniform_branch_and_loop",
       R"(precision highp float;
varying vec4 v_in;
uniform float u_mode;
void main() {
  float acc = v_in.x;
  // Branch + trip count depend only on the uniform: still lockstep.
  if (u_mode > 0.5) { acc += 3.0; } else { acc -= 1.0; }
  for (int i = 0; i < 5; ++i) acc += v_in.y * float(i);
  gl_FragColor = vec4(acc, v_in.z, 0.0, 1.0);
})",
       /*expect_uniform_flow=*/true});
  cases.push_back(
      {"divergent_if_else",
       R"(precision highp float;
varying vec4 v_in;
void main() {
  vec4 c;
  if (v_in.x > 0.5) {
    c = vec4(v_in.x * 2.0, sin(v_in.y), 0.25, 1.0);
  } else {
    c = vec4(cos(v_in.x), v_in.y * -3.0, 0.75, 1.0);
  }
  gl_FragColor = c;
})"});
  cases.push_back(
      {"divergent_loop_trip_counts",
       R"(precision highp float;
varying vec4 v_in;
void main() {
  float acc = 0.0;
  // Per-lane trip count: lanes leave the loop at different iterations.
  int n = int(mod(v_in.x * 16.0, 7.0));
  for (int i = 0; i < 16; ++i) {
    if (i >= n) break;
    acc += sqrt(float(i) + v_in.y);
  }
  gl_FragColor = vec4(acc * 0.125, float(n) * 0.1, v_in.z, 1.0);
})"});
  cases.push_back(
      {"divergent_nested_with_calls",
       R"(precision highp float;
varying vec4 v_in;
float helper(float x, out float extra) {
  extra = x * 0.5;
  if (x > 0.25) return sin(x);
  return cos(x) + 1.0;
}
void main() {
  float e = 0.0;
  float r;
  if (v_in.x > 0.3) {
    if (v_in.y > 0.6) { r = helper(v_in.x, e); }
    else { r = helper(v_in.y, e) * 2.0; }
  } else {
    r = helper(v_in.x + v_in.y, e) - 0.5;
  }
  gl_FragColor = vec4(r, e, v_in.w, 1.0);
})"});
  cases.push_back(
      {"divergent_discard",
       R"(precision highp float;
varying vec4 v_in;
void main() {
  if (fract(v_in.x * 5.0) < 0.4) discard;
  gl_FragColor = vec4(v_in.xy, fract(v_in.z * 3.0), 1.0);
})"});
  cases.push_back(
      {"lockstep_dynamic_index_stores",
       // Lane-varying *indices* are data, not control: the loop bounds are
       // uniform and there is no varying branch, so this runs fully
       // lockstep while every lane writes a different array element
       // through a per-lane ref.
       R"(precision highp float;
varying vec4 v_in;
void main() {
  float tbl[4];
  for (int i = 0; i < 4; ++i) tbl[i] = 0.125 * float(i);
  int j = int(mod(v_in.x * 11.0, 4.0));
  tbl[j] += v_in.y;           // lane-varying write index through a ref
  vec4 v = vec4(0.1, 0.2, 0.3, 0.4);
  v[int(mod(v_in.z * 7.0, 4.0))] = v_in.w;
  gl_FragColor = vec4(tbl[j], tbl[3 - j], v.x + v.w, 1.0);
})",
       /*expect_uniform_flow=*/true});
  cases.push_back(
      {"texture_in_divergent_branch",
       R"(precision highp float;
varying vec4 v_in;
uniform sampler2D u_tex;
void main() {
  vec4 t = vec4(0.5);
  if (v_in.x > 0.45) t = texture2D(u_tex, v_in.xy);
  gl_FragColor = t + texture2D(u_tex, v_in.zw) * 0.25;
})",
       /*expect_uniform_flow=*/false, /*with_texture=*/true});
  cases.push_back(
      {"divergent_early_return_and_ternary",
       R"(precision highp float;
varying vec4 v_in;
void main() {
  float pick = v_in.x > 0.5 ? sin(v_in.y) : cos(v_in.y);
  bool both = v_in.x > 0.2 && v_in.y > 0.2;
  if (v_in.z > 0.7) {
    gl_FragColor = vec4(pick, both ? 1.0 : 0.0, 0.0, 1.0);
    return;
  }
  gl_FragColor = vec4(pick * 0.5, 0.25, both ? 0.5 : 0.125, 1.0);
})"});
  // --- vector ops inside divergent flow: the masked executor must invoke
  // the SoA kernels with partial lane masks, not just full batches ---------
  cases.push_back(
      {"normalize_in_varying_trip_loop",
       R"(precision highp float;
varying vec4 v_in;
void main() {
  vec3 acc = vec3(0.0);
  int n = int(mod(v_in.x * 16.0, 6.0)) + 1;
  for (int i = 0; i < 8; ++i) {
    if (i >= n) break;
    // Whole-vector work under a lane-varying trip count: normalize/dot/
    // cross run with a different active mask each iteration.
    vec3 v = normalize(vec3(v_in.y + float(i), v_in.z, 0.25));
    acc += cross(v, vec3(0.0, 1.0, v_in.w)) * (1.0 / float(n));
  }
  gl_FragColor = vec4(acc, 1.0);
})"});
  cases.push_back(
      {"dot_after_divergent_discard",
       R"(precision highp float;
varying vec4 v_in;
void main() {
  // Some lanes discard; survivors keep doing vector work under a reduced
  // mask, so SoA kernels see a hole-punched lane set.
  if (fract(v_in.x * 7.0) < 0.35) discard;
  vec3 a = vec3(v_in.xy, 1.5);
  vec3 b = normalize(vec3(0.5, v_in.z, v_in.w + 0.1));
  float d = dot(a, b);
  vec4 c = mix(vec4(a, 1.0), vec4(b, 1.0), clamp(d, 0.0, 1.0));
  gl_FragColor = c * c;
})"});
  cases.push_back(
      {"vector_compare_in_divergent_branch",
       R"(precision highp float;
varying vec4 v_in;
void main() {
  vec3 probe = v_in.xyz * 3.0;
  vec4 c;
  if (v_in.w > 0.5) {
    bvec3 lt = lessThan(probe, vec3(1.5));
    c = vec4(any(lt) ? 1.0 : 0.25, all(lt) ? 1.0 : 0.5,
             probe == v_in.xyz ? 1.0 : 0.0, 1.0);
  } else {
    c = vec4(not(greaterThanEqual(probe, vec3(0.75))).y ? 0.75 : 0.125,
             length(probe), pow(abs(probe.x) + 0.5, 2.0), 1.0);
  }
  gl_FragColor = c;
})"});
  cases.push_back(
      {"matrix_algebra_in_divergent_branch",
       R"(precision highp float;
varying vec4 v_in;
void main() {
  // mat*vec / mat*mat take the per-lane replay path inside the masked
  // executor; mat+mat and mat*scalar take the component-wise SoA kernel.
  mat2 m = mat2(v_in.x, 1.0, -0.5, v_in.y + 0.25);
  vec2 r;
  if (v_in.z > 0.4) {
    mat2 mm = m * m + m * 0.5;
    r = mm * v_in.xy;
  } else {
    r = (m + m) * v_in.zw;
  }
  gl_FragColor = vec4(r, v_in.w, 1.0);
})"});
  return cases;
}

float fract_helper(float x) { return x - std::floor(x); }

// Deterministic per-lane varying values in a range that exercises every
// branch side across a 16-lane batch.
std::array<float, 4> LaneInput(int lane) {
  const float f = static_cast<float>(lane);
  return {fract_helper(f * 0.37f + 0.11f), fract_helper(f * 0.53f + 0.29f),
          fract_helper(f * 0.71f + 0.05f), fract_helper(f * 0.13f + 0.61f)};
}

void ExpectBatchMatchesScalar(const BatchCase& c, int lanes, bool vc4_alu) {
  SCOPED_TRACE(std::string(c.label) + " lanes=" + std::to_string(lanes) +
               (vc4_alu ? " vc4" : " exact"));
  CompileResult cr = CompileGlsl(c.source, Stage::kFragment);
  ASSERT_TRUE(cr.ok) << cr.info_log;
  std::shared_ptr<const VmProgram> prog = LowerToBytecode(*cr.shader);
  EXPECT_EQ(prog->uniform_control_flow, c.expect_uniform_flow)
      << "uniform-control-flow analysis disagrees with the corpus label";

  const vc4::GpuProfile profile = vc4::VideoCoreIV();
  ExactAlu exact_s, exact_b;
  vc4::Vc4Alu vc4_s(profile), vc4_b(profile);
  AluModel& alu_s = vc4_alu ? static_cast<AluModel&>(vc4_s) : exact_s;
  AluModel& alu_b = vc4_alu ? static_cast<AluModel&>(vc4_b) : exact_b;
  VmExec scalar(prog, alu_s);
  VmExec batch(prog, alu_b);

  const auto texture = [](int unit, float s, float t, float lod) {
    return std::array<float, 4>{s * 0.5f + static_cast<float>(unit) * 0.125f,
                                t * 0.25f, s + t, lod + 0.75f};
  };
  if (c.with_texture) {
    scalar.SetTextureFn(texture);
    batch.SetTextureFn(texture);
  }
  const int in_slot = scalar.GlobalSlot("v_in");
  ASSERT_GE(in_slot, 0);
  const int bias_slot = scalar.GlobalSlot("u_bias");
  const int mode_slot = scalar.GlobalSlot("u_mode");
  const int color_slot = scalar.GlobalSlot("gl_FragColor");
  ASSERT_GE(color_slot, 0);

  // Uniforms land in the shared store of both engines (before the batch
  // engine builds its per-lane planes, as the gles2 sync path does too).
  for (VmExec* e : {&scalar, &batch}) {
    if (bias_slot >= 0) {
      Value& v = e->GlobalAt(bias_slot);
      v.SetF(0, 0.25f); v.SetF(1, -0.5f); v.SetF(2, 1.5f); v.SetF(3, 0.125f);
    }
    if (mode_slot >= 0) e->GlobalAt(mode_slot).SetF(0, 0.75f);
  }

  // Scalar reference: one Run per lane, fragment-sequential.
  alu_s.ResetCounts();
  std::vector<bool> ref_kept;
  std::vector<std::array<std::uint32_t, 4>> ref_color;
  for (int l = 0; l < lanes; ++l) {
    const std::array<float, 4> in = LaneInput(l);
    Value& v = scalar.GlobalAt(in_slot);
    for (int k = 0; k < 4; ++k) v.SetF(k, in[static_cast<std::size_t>(k)]);
    ref_kept.push_back(scalar.Run());
    const Value& cv = scalar.GlobalAt(color_slot);
    ref_color.push_back({FloatToBits(cv.F(0)), FloatToBits(cv.F(1)),
                         FloatToBits(cv.F(2)), FloatToBits(cv.F(3))});
  }
  const OpCounts want = alu_s.counts();

  // Batched: same lanes in one RunBatch.
  alu_b.ResetCounts();
  for (int l = 0; l < lanes; ++l) {
    const std::array<float, 4> in = LaneInput(l);
    Value& v = batch.LaneGlobalAt(in_slot, l);
    for (int k = 0; k < 4; ++k) v.SetF(k, in[static_cast<std::size_t>(k)]);
  }
  const std::uint32_t kept = batch.RunBatch(lanes);
  const OpCounts got = alu_b.counts();

  for (int l = 0; l < lanes; ++l) {
    const bool lane_kept = ((kept >> static_cast<unsigned>(l)) & 1u) != 0;
    EXPECT_EQ(lane_kept, ref_kept[static_cast<std::size_t>(l)])
        << "lane " << l << " discard disagreement";
    if (!lane_kept) continue;
    const Value& cv = batch.LaneGlobalAt(color_slot, l);
    for (int k = 0; k < 4; ++k) {
      EXPECT_EQ(FloatToBits(cv.F(k)),
                ref_color[static_cast<std::size_t>(l)]
                         [static_cast<std::size_t>(k)])
          << "lane " << l << " component " << k;
    }
  }
  EXPECT_EQ(got.alu, want.alu) << "alu count";
  EXPECT_EQ(got.sfu, want.sfu) << "sfu count";
  EXPECT_EQ(got.sfu_trans, want.sfu_trans) << "sfu_trans count";
  EXPECT_EQ(got.tmu, want.tmu) << "tmu count";
}

TEST(VmBatchDifferentialTest, AllTailSizesMatchScalarExactAlu) {
  for (const BatchCase& c : BatchCorpus()) {
    for (int lanes = 1; lanes <= kVmLanes; ++lanes) {
      ExpectBatchMatchesScalar(c, lanes, /*vc4_alu=*/false);
    }
  }
}

TEST(VmBatchDifferentialTest, AllTailSizesMatchScalarVc4Alu) {
  for (const BatchCase& c : BatchCorpus()) {
    for (int lanes = 1; lanes <= kVmLanes; ++lanes) {
      ExpectBatchMatchesScalar(c, lanes, /*vc4_alu=*/true);
    }
  }
}

TEST(VmBatchDifferentialTest, RepeatedBatchesReuseStateCorrectly) {
  // Back-to-back batches on one engine (the steady-state draw-loop shape):
  // later batches must not see residue from earlier ones.
  const BatchCase c = BatchCorpus()[3];  // divergent loop trip counts
  for (int round = 0; round < 3; ++round) {
    ExpectBatchMatchesScalar(c, kVmLanes, /*vc4_alu=*/false);
  }
  CompileResult cr = CompileGlsl(c.source, Stage::kFragment);
  ASSERT_TRUE(cr.ok);
  std::shared_ptr<const VmProgram> prog = LowerToBytecode(*cr.shader);
  ExactAlu alu_s, alu_b;
  VmExec scalar(prog, alu_s);
  VmExec batch(prog, alu_b);
  const int in_slot = scalar.GlobalSlot("v_in");
  const int color_slot = scalar.GlobalSlot("gl_FragColor");
  for (int round = 0; round < 4; ++round) {
    const int lanes = 1 + (round * 5) % kVmLanes;  // varying tails per round
    for (int l = 0; l < lanes; ++l) {
      const float base = static_cast<float>(round) * 0.21f;
      Value& sv = scalar.GlobalAt(in_slot);
      Value& bv = batch.LaneGlobalAt(in_slot, l);
      for (int k = 0; k < 4; ++k) {
        const float f =
            fract_helper(base + static_cast<float>(l * 4 + k) * 0.17f);
        bv.SetF(k, f);
      }
      (void)sv;
    }
    const std::uint32_t kept = batch.RunBatch(lanes);
    for (int l = 0; l < lanes; ++l) {
      Value& sv = scalar.GlobalAt(in_slot);
      const Value& bv = batch.LaneGlobalAt(in_slot, l);
      for (int k = 0; k < 4; ++k) sv.SetF(k, bv.F(k));
      const bool ref_kept = scalar.Run();
      EXPECT_EQ(((kept >> static_cast<unsigned>(l)) & 1u) != 0, ref_kept);
      if (!ref_kept) continue;
      const Value& sc = scalar.GlobalAt(color_slot);
      const Value& bc = batch.LaneGlobalAt(color_slot, l);
      for (int k = 0; k < 4; ++k) {
        EXPECT_EQ(FloatToBits(bc.F(k)), FloatToBits(sc.F(k)))
            << "round " << round << " lane " << l << " comp " << k;
      }
    }
  }
}

}  // namespace
}  // namespace mgpu::glsl
