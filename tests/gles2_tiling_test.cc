// Tiled-pipeline invariants. The two-phase rasterizer (tile binning +
// worker-pool shading) must be invisible: primitives spanning tile
// boundaries shade exactly once per pixel, and an N-thread draw is
// byte-identical to the 1-thread reference — framebuffer bytes AND
// ALU/SFU/TMU operation counts — because tiles partition the framebuffer
// and per-worker counter shards merge by summation.
#include <cstdint>
#include <string>
#include <vector>

#include "gles2/context.h"
#include "gles2/tiler.h"
#include "gles2_test_util.h"
#include "glsl/alu.h"
#include "gtest/gtest.h"
#include "vc4/alu.h"
#include "vc4/profiles.h"

namespace mgpu::gles2 {
namespace {

// ---------------------------------------------------------------------------
// TileBinner unit tests
// ---------------------------------------------------------------------------

TEST(TileBinnerTest, PartialEdgeTilesAreClampedToTarget) {
  TileBinner b(161, 131);  // 3x3 grid, right/top tiles partial
  ASSERT_EQ(b.tiles_x(), 3);
  ASSERT_EQ(b.tiles_y(), 3);
  b.BinTile(0, 2, 2);
  const TileBinner::Tile& last = b.tile(8);
  EXPECT_EQ(last.rect.x0, 128);
  EXPECT_EQ(last.rect.y0, 128);
  EXPECT_EQ(last.rect.x1, 161);
  EXPECT_EQ(last.rect.y1, 131);
}

TEST(TileBinnerTest, SpanningPrimitiveLandsInEveryTouchedBin) {
  TileBinner b(200, 200);  // 4x4 grid
  b.Bin(7, PixelRect{30, 30, 150, 90});  // spans tiles x 0..2, y 0..1
  const auto work = b.NonEmptyTiles();
  ASSERT_EQ(work.size(), 6u);
  for (const std::uint32_t t : work) {
    ASSERT_EQ(b.tile(t).prims.size(), 1u);
    EXPECT_EQ(b.tile(t).prims[0], 7u);
  }
  // Row-major: tiles (0,0) (1,0) (2,0) (0,1) (1,1) (2,1).
  EXPECT_EQ(work, (std::vector<std::uint32_t>{0, 1, 2, 4, 5, 6}));
}

TEST(TileBinnerTest, SubmissionOrderIsPreservedPerBin) {
  TileBinner b(64, 64);
  b.Bin(3, PixelRect{0, 0, 10, 10});
  b.Bin(1, PixelRect{0, 0, 64, 64});
  b.Bin(2, PixelRect{5, 5, 6, 6});
  EXPECT_EQ(b.tile(0).prims, (std::vector<std::uint32_t>{3, 1, 2}));
}

TEST(TileBinnerTest, SparseStorageScalesWithTouchedTilesNotGridSize) {
  // A huge target: the dense grid would be ~2.4M tiles. A tiny draw must
  // only materialize the bins it touches.
  TileBinner b(100'000, 100'000);
  ASSERT_EQ(b.tiles_x(), 1563);
  b.Bin(0, PixelRect{70'000, 70'000, 70'010, 70'010});
  b.BinTile(1, 0, 0);
  EXPECT_EQ(b.NonEmptyTiles().size(), 2u);
  EXPECT_LE(b.slot_capacity(), 4u);
  EXPECT_LE(b.table_capacity(), 64u);
}

TEST(TileBinnerTest, BeginDrawDropsOldBinsAndResizesGrid) {
  TileBinner b(200, 200);
  b.Bin(1, PixelRect{0, 0, 200, 200});
  ASSERT_EQ(b.NonEmptyTiles().size(), 16u);
  b.BeginDraw(65, 65);  // 2x2 grid now
  EXPECT_EQ(b.tiles_x(), 2);
  EXPECT_TRUE(b.NonEmptyTiles().empty());
  b.Bin(2, PixelRect{0, 0, 65, 65});
  const auto work = b.NonEmptyTiles();
  EXPECT_EQ(work, (std::vector<std::uint32_t>{0, 1, 2, 3}));
  for (const std::uint32_t t : work) {
    EXPECT_EQ(b.tile(t).prims, (std::vector<std::uint32_t>{2}));
  }
}

TEST(TileBinnerTest, SteadyStateDrawLoopDoesNotGrowTheHeap) {
  TileBinner b;
  // Warm-up lap establishes the high-water mark...
  b.BeginDraw(1000, 1000);
  b.Bin(0, PixelRect{100, 100, 400, 400});
  const std::size_t slots = b.slot_capacity();
  const std::size_t table = b.table_capacity();
  ASSERT_GT(slots, 0u);
  // ...after which identical draws must not allocate: same slot count, same
  // table, and per-bin prims capacity recycled (asserted via capacity()).
  for (int draw = 0; draw < 100; ++draw) {
    b.BeginDraw(1000, 1000);
    b.Bin(0, PixelRect{100, 100, 400, 400});
    b.Bin(1, PixelRect{150, 150, 300, 300});
  }
  EXPECT_EQ(b.slot_capacity(), slots);
  EXPECT_EQ(b.table_capacity(), table);
}

// ---------------------------------------------------------------------------
// Exactly-once coverage across tile boundaries (end-to-end)
// ---------------------------------------------------------------------------

constexpr int kW = 161;  // 3x3 tiles with partial right/top tiles
constexpr int kH = 131;

constexpr char kOneFs[] = R"(
precision highp float;
void main() { gl_FragColor = vec4(1.0 / 255.0); }
)";

void ExpectCoverageCounts(Context& ctx, int max_expected,
                          const char* what) {
  const std::vector<std::uint8_t> px = testutil::ReadRgba(ctx, kW, kH);
  int covered = 0;
  int bad = 0;
  for (std::size_t i = 0; i < px.size(); i += 4) {
    covered += px[i] != 0;
    bad += px[i] > max_expected;
  }
  EXPECT_GT(covered, 0) << what;
  EXPECT_EQ(bad, 0) << what << ": some pixel shaded more than "
                    << max_expected << " time(s) (tile seam double-shade)";
}

TEST(TilingCoverageTest, QuadSpanningAllTilesShadesOncePerPixel) {
  ContextConfig cfg;
  cfg.width = kW;
  cfg.height = kH;
  Context ctx(cfg);
  const GLuint prog =
      testutil::BuildProgramOrDie(ctx, testutil::kPassthroughVs, kOneFs);
  ctx.Enable(GL_BLEND);
  ctx.BlendFunc(GL_ONE, GL_ONE);  // framebuffer counts shade events
  ctx.ClearColor(0, 0, 0, 0);
  ctx.Clear(GL_COLOR_BUFFER_BIT);
  testutil::DrawFullscreenQuad(ctx, prog);
  ASSERT_EQ(ctx.GetError(), static_cast<GLenum>(GL_NO_ERROR));
  const std::vector<std::uint8_t> px = testutil::ReadRgba(ctx, kW, kH);
  for (std::size_t i = 0; i < px.size(); i += 4) {
    ASSERT_EQ(px[i], 1) << "pixel " << (i / 4) % kW << "," << (i / 4) / kW
                        << " shaded " << int{px[i]} << " times";
  }
}

TEST(TilingCoverageTest, SkewedTriangleAcrossTileSeams) {
  ContextConfig cfg;
  cfg.width = kW;
  cfg.height = kH;
  Context ctx(cfg);
  const GLuint prog =
      testutil::BuildProgramOrDie(ctx, testutil::kPassthroughVs, kOneFs);
  ctx.UseProgram(prog);
  ctx.Enable(GL_BLEND);
  ctx.BlendFunc(GL_ONE, GL_ONE);
  ctx.Clear(GL_COLOR_BUFFER_BIT);
  // A thin, skewed triangle crossing both tile rows and all tile columns.
  const float tri[6] = {-0.95f, -0.9f, 0.98f, -0.2f, -0.4f, 0.95f};
  const GLint loc = ctx.GetAttribLocation(prog, "a_pos");
  ASSERT_GE(loc, 0);
  ctx.EnableVertexAttribArray(static_cast<GLuint>(loc));
  ctx.VertexAttribPointer(static_cast<GLuint>(loc), 2, GL_FLOAT, GL_FALSE, 0,
                          tri);
  ctx.DrawArrays(GL_TRIANGLES, 0, 3);
  ASSERT_EQ(ctx.GetError(), static_cast<GLenum>(GL_NO_ERROR));
  ExpectCoverageCounts(ctx, 1, "skewed triangle");
}

TEST(TilingCoverageTest, LineCrossingTilesEmitsEachPixelOnce) {
  ContextConfig cfg;
  cfg.width = kW;
  cfg.height = kH;
  Context ctx(cfg);
  const GLuint prog =
      testutil::BuildProgramOrDie(ctx, testutil::kPassthroughVs, kOneFs);
  ctx.UseProgram(prog);
  ctx.Enable(GL_BLEND);
  ctx.BlendFunc(GL_ONE, GL_ONE);
  ctx.Clear(GL_COLOR_BUFFER_BIT);
  const float seg[4] = {-0.97f, -0.93f, 0.91f, 0.88f};
  const GLint loc = ctx.GetAttribLocation(prog, "a_pos");
  ASSERT_GE(loc, 0);
  ctx.EnableVertexAttribArray(static_cast<GLuint>(loc));
  ctx.VertexAttribPointer(static_cast<GLuint>(loc), 2, GL_FLOAT, GL_FALSE, 0,
                          seg);
  ctx.DrawArrays(GL_LINES, 0, 2);
  ASSERT_EQ(ctx.GetError(), static_cast<GLenum>(GL_NO_ERROR));
  ExpectCoverageCounts(ctx, 1, "diagonal line");
}

// ---------------------------------------------------------------------------
// N-thread vs 1-thread differential over a draw-scenario corpus
// ---------------------------------------------------------------------------

struct Scenario {
  const char* name;
  void (*run)(Context& ctx);
};

void ScenarioQuadMath(Context& ctx) {
  const GLuint prog = testutil::BuildProgramOrDie(
      ctx, testutil::kPassthroughVs,
      R"(
precision highp float;
varying vec2 v_uv;
uniform float u_gain;
void main() {
  float w = fract(v_uv.x * 7.0 + sin(v_uv.y * 13.0));
  float p = pow(v_uv.x + 0.5, 1.7) + exp(-v_uv.y);
  gl_FragColor = vec4(w * u_gain, fract(p), v_uv.y, 1.0);
}
)");
  ctx.UseProgram(prog);
  ctx.Uniform1f(ctx.GetUniformLocation(prog, "u_gain"), 0.8f);
  ctx.Clear(GL_COLOR_BUFFER_BIT);
  testutil::DrawFullscreenQuad(ctx, prog);
}

void ScenarioTextured(Context& ctx) {
  // NPOT texture, repeat-wrapped scaled UVs: exercises both the sampler
  // and the per-tile TMU-cache model (misses must sum identically).
  GLuint tex = 0;
  ctx.GenTextures(1, &tex);
  ctx.BindTexture(GL_TEXTURE_2D, tex);
  std::vector<std::uint8_t> img(37 * 29 * 4);
  for (std::size_t i = 0; i < img.size(); ++i) {
    img[i] = static_cast<std::uint8_t>((i * 37 + 11) & 0xff);
  }
  ctx.TexImage2D(GL_TEXTURE_2D, 0, GL_RGBA, 37, 29, 0, GL_RGBA,
                 GL_UNSIGNED_BYTE, img.data());
  ctx.TexParameteri(GL_TEXTURE_2D, GL_TEXTURE_MIN_FILTER, GL_NEAREST);
  ctx.TexParameteri(GL_TEXTURE_2D, GL_TEXTURE_MAG_FILTER, GL_NEAREST);
  ctx.TexParameteri(GL_TEXTURE_2D, GL_TEXTURE_WRAP_S, GL_CLAMP_TO_EDGE);
  ctx.TexParameteri(GL_TEXTURE_2D, GL_TEXTURE_WRAP_T, GL_CLAMP_TO_EDGE);
  const GLuint prog = testutil::BuildProgramOrDie(
      ctx, testutil::kPassthroughVs,
      R"(
precision highp float;
varying vec2 v_uv;
uniform sampler2D u_tex;
void main() { gl_FragColor = texture2D(u_tex, v_uv * 0.9 + 0.05); }
)");
  ctx.UseProgram(prog);
  ctx.Uniform1i(ctx.GetUniformLocation(prog, "u_tex"), 0);
  ctx.Clear(GL_COLOR_BUFFER_BIT);
  testutil::DrawFullscreenQuad(ctx, prog);
}

void ScenarioDepthBlend(Context& ctx) {
  const GLuint prog = testutil::BuildProgramOrDie(
      ctx,
      R"(
attribute vec3 a_xyz;
attribute vec4 a_rgba;
varying vec4 v_rgba;
void main() { v_rgba = a_rgba; gl_Position = vec4(a_xyz, 1.0); }
)",
      R"(
precision highp float;
varying vec4 v_rgba;
void main() { gl_FragColor = v_rgba; }
)");
  ctx.UseProgram(prog);
  ctx.Enable(GL_DEPTH_TEST);
  ctx.Enable(GL_BLEND);
  ctx.BlendFunc(GL_SRC_ALPHA, GL_ONE_MINUS_SRC_ALPHA);
  ctx.Clear(GL_COLOR_BUFFER_BIT | GL_DEPTH_BUFFER_BIT);
  // Two overlapping triangles at different depths; submission order matters
  // in the overlap, so this catches any intra-tile reordering.
  const float xyz[] = {
      -0.9f, -0.9f, 0.2f, 0.9f, -0.9f, 0.2f, 0.0f, 0.9f, 0.2f,
      -0.7f, -0.7f, 0.6f, 0.9f, 0.6f,  0.6f, -0.2f, 0.8f, 0.6f,
  };
  const float rgba[] = {
      1, 0, 0, 0.8f, 1, 0, 0, 0.8f, 1, 0, 0, 0.8f,
      0, 0, 1, 0.5f, 0, 0, 1, 0.5f, 0, 0, 1, 0.5f,
  };
  const GLint lx = ctx.GetAttribLocation(prog, "a_xyz");
  const GLint lc = ctx.GetAttribLocation(prog, "a_rgba");
  ctx.EnableVertexAttribArray(static_cast<GLuint>(lx));
  ctx.VertexAttribPointer(static_cast<GLuint>(lx), 3, GL_FLOAT, GL_FALSE, 0,
                          xyz);
  ctx.EnableVertexAttribArray(static_cast<GLuint>(lc));
  ctx.VertexAttribPointer(static_cast<GLuint>(lc), 4, GL_FLOAT, GL_FALSE, 0,
                          rgba);
  ctx.DrawArrays(GL_TRIANGLES, 0, 6);
}

void ScenarioDiscard(Context& ctx) {
  const GLuint prog = testutil::BuildProgramOrDie(
      ctx, testutil::kPassthroughVs,
      R"(
precision highp float;
varying vec2 v_uv;
void main() {
  if (mod(floor(v_uv.x * 23.0) + floor(v_uv.y * 17.0), 2.0) < 0.5) discard;
  gl_FragColor = vec4(v_uv, 0.5, 1.0);
}
)");
  ctx.UseProgram(prog);
  ctx.Clear(GL_COLOR_BUFFER_BIT);
  testutil::DrawFullscreenQuad(ctx, prog);
}

void ScenarioPointsAndLines(Context& ctx) {
  const GLuint prog = testutil::BuildProgramOrDie(
      ctx,
      R"(
attribute vec2 a_pos;
varying vec2 v_uv;
void main() {
  v_uv = a_pos * 0.5 + 0.5;
  gl_Position = vec4(a_pos, 0.0, 1.0);
  gl_PointSize = 9.0;
}
)",
      R"(
precision highp float;
varying vec2 v_uv;
void main() { gl_FragColor = vec4(v_uv, gl_PointCoord.x, 1.0); }
)");
  ctx.UseProgram(prog);
  ctx.Clear(GL_COLOR_BUFFER_BIT);
  // Points near tile corners (9-px sprites straddle seams) + a line loop.
  const float pts[] = {-0.8f, -0.8f, -0.21f, -0.02f, 0.02f, 0.02f,
                       0.6f,  0.7f,  0.99f,  0.99f,  -0.99f, 0.99f};
  const GLint loc = ctx.GetAttribLocation(prog, "a_pos");
  ctx.EnableVertexAttribArray(static_cast<GLuint>(loc));
  ctx.VertexAttribPointer(static_cast<GLuint>(loc), 2, GL_FLOAT, GL_FALSE, 0,
                          pts);
  ctx.DrawArrays(GL_POINTS, 0, 6);
  ctx.DrawArrays(GL_LINE_LOOP, 0, 6);
}

constexpr Scenario kScenarios[] = {
    {"quad_math", ScenarioQuadMath},
    {"textured", ScenarioTextured},
    {"depth_blend", ScenarioDepthBlend},
    {"discard", ScenarioDiscard},
    {"points_and_lines", ScenarioPointsAndLines},
};

struct RunResult {
  std::vector<std::uint8_t> px;
  glsl::OpCounts counts;
};

RunResult RunScenario(const Scenario& sc, int threads) {
  // The VC4 ALU model exercises Fork() of the precision-perturbing model,
  // not just the exact one.
  vc4::Vc4Alu alu(vc4::VideoCoreIV());
  ContextConfig cfg;
  cfg.width = kW;
  cfg.height = kH;
  cfg.shader_threads = threads;
  Context ctx(cfg, &alu);
  alu.ResetCounts();
  sc.run(ctx);
  EXPECT_EQ(ctx.GetError(), static_cast<GLenum>(GL_NO_ERROR))
      << sc.name << " threads=" << threads
      << " draw error: " << ctx.last_draw_error();
  RunResult r;
  r.counts = alu.counts();
  r.px = testutil::ReadRgba(ctx, kW, kH);
  return r;
}

TEST(ThreadDifferentialTest, NThreadMatchesSerialReferenceExactly) {
  for (const Scenario& sc : kScenarios) {
    const RunResult ref = RunScenario(sc, 1);
    for (const int threads : {2, 4, 0 /* hardware_concurrency */}) {
      const RunResult got = RunScenario(sc, threads);
      EXPECT_EQ(got.px, ref.px)
          << sc.name << ": framebuffer differs at threads=" << threads;
      EXPECT_EQ(got.counts.alu, ref.counts.alu) << sc.name << " t=" << threads;
      EXPECT_EQ(got.counts.sfu, ref.counts.sfu) << sc.name << " t=" << threads;
      EXPECT_EQ(got.counts.sfu_trans, ref.counts.sfu_trans)
          << sc.name << " t=" << threads;
      EXPECT_EQ(got.counts.tmu, ref.counts.tmu) << sc.name << " t=" << threads;
      EXPECT_EQ(got.counts.tmu_miss, ref.counts.tmu_miss)
          << sc.name << " t=" << threads;
    }
    // Work was actually performed.
    EXPECT_GT(ref.counts.alu, 0u) << sc.name;
  }
}

// ---------------------------------------------------------------------------
// Engine differential: batched VM vs scalar VM vs tree-walking oracle
// ---------------------------------------------------------------------------

RunResult RunScenarioOnEngine(const Scenario& sc, ExecEngine engine,
                              int threads, bool vc4_alu) {
  vc4::Vc4Alu vc4(vc4::VideoCoreIV());
  glsl::ExactAlu exact;
  glsl::AluModel& alu = vc4_alu ? static_cast<glsl::AluModel&>(vc4) : exact;
  ContextConfig cfg;
  cfg.width = kW;
  cfg.height = kH;
  cfg.shader_threads = threads;
  cfg.exec_engine = engine;
  Context ctx(cfg, &alu);
  alu.ResetCounts();
  sc.run(ctx);
  EXPECT_EQ(ctx.GetError(), static_cast<GLenum>(GL_NO_ERROR))
      << sc.name << " engine=" << static_cast<int>(engine)
      << " draw error: " << ctx.last_draw_error();
  RunResult r;
  r.counts = alu.counts();
  r.px = testutil::ReadRgba(ctx, kW, kH);
  return r;
}

void ExpectEngineAgreement(const Scenario& sc, bool vc4_alu) {
  SCOPED_TRACE(std::string(sc.name) + (vc4_alu ? " vc4" : " exact"));
  // Scalar VM, serial: the reference.
  const RunResult ref =
      RunScenarioOnEngine(sc, ExecEngine::kBytecodeVm, 1, vc4_alu);
  struct Config {
    ExecEngine engine;
    int threads;
    const char* what;
  };
  const Config configs[] = {
      {ExecEngine::kBatchedVm, 1, "batched serial"},
      {ExecEngine::kBatchedVm, 3, "batched threaded"},
      {ExecEngine::kBytecodeVm, 3, "scalar threaded"},
      {ExecEngine::kTreeWalk, 1, "tree-walk oracle"},
      // The compiled engine transparently falls back to the batched VM for
      // divergent programs or when no host compiler exists, so these two
      // configs are meaningful on every machine.
      {ExecEngine::kCompiled, 1, "compiled serial"},
      {ExecEngine::kCompiled, 3, "compiled threaded"},
  };
  for (const Config& c : configs) {
    const RunResult got =
        RunScenarioOnEngine(sc, c.engine, c.threads, vc4_alu);
    EXPECT_EQ(got.px, ref.px) << c.what << ": framebuffer differs";
    EXPECT_EQ(got.counts.alu, ref.counts.alu) << c.what;
    EXPECT_EQ(got.counts.sfu, ref.counts.sfu) << c.what;
    EXPECT_EQ(got.counts.sfu_trans, ref.counts.sfu_trans) << c.what;
    EXPECT_EQ(got.counts.tmu, ref.counts.tmu) << c.what;
    EXPECT_EQ(got.counts.tmu_miss, ref.counts.tmu_miss) << c.what;
  }
  EXPECT_GT(ref.counts.alu, 0u);
}

TEST(EngineDifferentialTest, AllEnginesAgreeOnScenarioCorpusExactAlu) {
  for (const Scenario& sc : kScenarios) ExpectEngineAgreement(sc, false);
}

TEST(EngineDifferentialTest, AllEnginesAgreeOnScenarioCorpusVc4Alu) {
  for (const Scenario& sc : kScenarios) ExpectEngineAgreement(sc, true);
}

// Divergence-heavy scenario: per-pixel branches, varying loop trip counts,
// calls inside divergent branches, divergent discard, and texture fetches
// in one branch side — the masked executor's whole menu in one draw.
void ScenarioDivergent(Context& ctx) {
  GLuint tex = 0;
  ctx.GenTextures(1, &tex);
  ctx.BindTexture(GL_TEXTURE_2D, tex);
  std::vector<std::uint8_t> img(16 * 16 * 4);
  for (std::size_t i = 0; i < img.size(); ++i) {
    img[i] = static_cast<std::uint8_t>((i * 13 + 5) & 0xff);
  }
  ctx.TexImage2D(GL_TEXTURE_2D, 0, GL_RGBA, 16, 16, 0, GL_RGBA,
                 GL_UNSIGNED_BYTE, img.data());
  ctx.TexParameteri(GL_TEXTURE_2D, GL_TEXTURE_MIN_FILTER, GL_NEAREST);
  ctx.TexParameteri(GL_TEXTURE_2D, GL_TEXTURE_MAG_FILTER, GL_NEAREST);
  const GLuint prog = testutil::BuildProgramOrDie(
      ctx, testutil::kPassthroughVs,
      R"(
precision highp float;
varying vec2 v_uv;
uniform sampler2D u_tex;
float weight(float x) {
  if (x > 0.6) return sin(x * 9.0);
  return cos(x * 5.0) * 0.5;
}
void main() {
  if (fract(v_uv.x * 13.0 + v_uv.y * 7.0) < 0.15) discard;
  float acc = 0.0;
  int n = int(mod(v_uv.x * 37.0, 6.0)) + 1;
  for (int i = 0; i < 8; ++i) {
    if (i >= n) break;
    acc += weight(v_uv.y + float(i) * 0.09);
  }
  vec4 t = vec4(0.25);
  if (v_uv.y > 0.5) t = texture2D(u_tex, v_uv * 3.0);
  gl_FragColor = vec4(fract(acc), t.xy, 1.0);
}
)");
  ctx.UseProgram(prog);
  ctx.Uniform1i(ctx.GetUniformLocation(prog, "u_tex"), 0);
  ctx.Clear(GL_COLOR_BUFFER_BIT);
  testutil::DrawFullscreenQuad(ctx, prog);
}

TEST(EngineDifferentialTest, DivergentControlFlowAgreesAcrossEngines) {
  const Scenario sc{"divergent", ScenarioDivergent};
  ExpectEngineAgreement(sc, /*vc4_alu=*/false);
  ExpectEngineAgreement(sc, /*vc4_alu=*/true);
}

// Batch-tail coverage: draws of exactly n pixels for every n in
// [1, kFragBatchWidth + 1] — each ends in a RunBatch tail of size
// n % width — must match the scalar engine bit for bit, bytes and counts.
TEST(EngineDifferentialTest, EveryBatchTailSizeMatchesScalar) {
  for (int n = 1; n <= kFragBatchWidth + 1; ++n) {
    SCOPED_TRACE("pixels=" + std::to_string(n));
    auto run = [&](ExecEngine engine) {
      glsl::ExactAlu alu;
      ContextConfig cfg;
      cfg.width = kW;
      cfg.height = kH;
      cfg.shader_threads = 1;
      cfg.exec_engine = engine;
      Context ctx(cfg, &alu);
      const GLuint prog = testutil::BuildProgramOrDie(
          ctx, testutil::kPassthroughVs,
          R"(
precision highp float;
varying vec2 v_uv;
void main() {
  float pick = v_uv.x > 0.001 ? sin(v_uv.x * 40.0) : 0.5;
  gl_FragColor = vec4(fract(pick), v_uv.x, v_uv.y, 1.0);
}
)");
      ctx.UseProgram(prog);
      ctx.Clear(GL_COLOR_BUFFER_BIT);
      // Shrink the viewport so the fullscreen quad rasterizes to exactly an
      // n x 1 pixel strip — the draw's whole fragment stream is one batch
      // tail of n lanes.
      ctx.Viewport(3, 5, n, 1);
      testutil::DrawFullscreenQuad(ctx, prog);
      EXPECT_EQ(ctx.GetError(), static_cast<GLenum>(GL_NO_ERROR));
      RunResult r;
      r.counts = alu.counts();
      r.px = testutil::ReadRgba(ctx, kW, kH);
      return r;
    };
    const RunResult batched = run(ExecEngine::kBatchedVm);
    const RunResult scalar = run(ExecEngine::kBytecodeVm);
    const RunResult compiled = run(ExecEngine::kCompiled);
    EXPECT_EQ(batched.px, scalar.px);
    EXPECT_EQ(batched.counts.alu, scalar.counts.alu);
    EXPECT_EQ(batched.counts.sfu_trans, scalar.counts.sfu_trans);
    EXPECT_EQ(compiled.px, scalar.px);
    EXPECT_EQ(compiled.counts.alu, scalar.counts.alu);
    EXPECT_EQ(compiled.counts.sfu_trans, scalar.counts.sfu_trans);
  }
}

// The tree-walking oracle cannot be cloned per worker; a multithreaded
// request must fall back to the serial path and still match the VM.
TEST(ThreadDifferentialTest, TreeWalkOracleMatchesParallelVm) {
  const Scenario& sc = kScenarios[0];
  const RunResult vm = RunScenario(sc, 4);
  vc4::Vc4Alu alu(vc4::VideoCoreIV());
  ContextConfig cfg;
  cfg.width = kW;
  cfg.height = kH;
  cfg.shader_threads = 4;
  cfg.exec_engine = ExecEngine::kTreeWalk;
  Context ctx(cfg, &alu);
  alu.ResetCounts();
  sc.run(ctx);
  const std::vector<std::uint8_t> px = testutil::ReadRgba(ctx, kW, kH);
  EXPECT_EQ(px, vm.px);
  EXPECT_EQ(alu.counts().alu, vm.counts.alu);
  EXPECT_EQ(alu.counts().tmu_miss, vm.counts.tmu_miss);
}

// A shader trap mid-parallel-draw must abort the draw transactionally and
// leave the context as good as new: counters restored to their pre-draw
// values, and the NEXT draw byte-identical — framebuffer and op counts —
// to a context that never trapped. This composes the pool-level guarantee
// (a throwing worker task neither deadlocks RunOn nor poisons later jobs;
// see threadpool_test.cc) with the context's transactional abort, across
// thread counts on the multi-tile target.
TEST(ThreadDifferentialTest, TrapMidDrawDoesNotPoisonSubsequentDraws) {
  // Right-half lanes call a declared-but-undefined function: a
  // lane-divergent runtime trap that fires only once shading is well under
  // way across several tiles.
  static const char* kTrapFs = R"(
precision highp float;
varying vec2 v_uv;
float poison(float x);
void main() {
  float v = v_uv.x;
  if (v_uv.x > 0.5) { v = poison(v); }
  gl_FragColor = vec4(v, 0.0, 0.0, 1.0);
}
)";
  const Scenario& sc = kScenarios[0];  // quad_math
  const RunResult ref = RunScenario(sc, 1);  // never-trapped reference
  for (const int threads : {1, 2, 4}) {
    SCOPED_TRACE(threads);
    vc4::Vc4Alu alu(vc4::VideoCoreIV());
    ContextConfig cfg;
    cfg.width = kW;
    cfg.height = kH;
    cfg.shader_threads = threads;
    Context ctx(cfg, &alu);
    const GLuint bad =
        testutil::BuildProgramOrDie(ctx, testutil::kPassthroughVs, kTrapFs);
    ctx.UseProgram(bad);
    ctx.Clear(GL_COLOR_BUFFER_BIT);
    const glsl::OpCounts before = alu.counts();
    testutil::DrawFullscreenQuad(ctx, bad);
    EXPECT_EQ(ctx.GetError(), static_cast<GLenum>(GL_INVALID_OPERATION))
        << "trapping draw must flag GL_INVALID_OPERATION";
    EXPECT_NE(ctx.last_draw_error().find("undefined function"),
              std::string::npos)
        << "unexpected draw error: " << ctx.last_draw_error();
    EXPECT_EQ(alu.counts().alu, before.alu)
        << "aborted draw leaked ALU counter state";
    // Recovery: the clean scenario on the survivor context must match the
    // never-trapped reference bit for bit.
    alu.ResetCounts();
    sc.run(ctx);
    EXPECT_EQ(ctx.GetError(), static_cast<GLenum>(GL_NO_ERROR))
        << "recovery draw error: " << ctx.last_draw_error();
    EXPECT_EQ(testutil::ReadRgba(ctx, kW, kH), ref.px);
    EXPECT_EQ(alu.counts().alu, ref.counts.alu);
    EXPECT_EQ(alu.counts().sfu, ref.counts.sfu);
    EXPECT_EQ(alu.counts().tmu, ref.counts.tmu);
  }
}

}  // namespace
}  // namespace mgpu::gles2
