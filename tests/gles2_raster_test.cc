// Rasterizer invariants. The critical property for the paper's framework:
// the two-triangle fullscreen quad (challenge 2) shades every pixel exactly
// once, and varyings arrive at fragment (i, j) exactly as ((i+0.5)/W,
// (j+0.5)/H).
#include "gles2/raster.h"

#include <cmath>
#include <map>
#include <vector>

#include "gtest/gtest.h"

namespace mgpu::gles2 {
namespace {

RasterVertex V(float x, float y, std::vector<float> varyings = {},
               float w = 1.0f) {
  RasterVertex v;
  v.clip = {x * w, y * w, 0.0f, w};
  v.varyings = std::move(varyings);
  return v;
}

RasterState State(int w, int h) {
  RasterState s;
  s.viewport_w = w;
  s.viewport_h = h;
  s.target_w = w;
  s.target_h = h;
  return s;
}

class CoverageCounter {
 public:
  explicit CoverageCounter(int w) : w_(w) {}
  FragmentSink Sink() {
    return [this](int x, int y, float, const float*, bool, float, float) {
      counts_[y * w_ + x]++;
    };
  }
  [[nodiscard]] const std::map<int, int>& counts() const { return counts_; }
  int w_;
  std::map<int, int> counts_;
};

class QuadCoverage : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(QuadCoverage, TwoTrianglesCoverEveryPixelExactlyOnce) {
  const auto [w, h] = GetParam();
  const RasterState s = State(w, h);
  CoverageCounter cc(w);
  const auto sink = cc.Sink();
  // The same two-triangle split the compute framework uses.
  RasterizeTriangle(V(-1, -1), V(1, -1), V(1, 1), 0, s, sink);
  RasterizeTriangle(V(-1, -1), V(1, 1), V(-1, 1), 0, s, sink);
  ASSERT_EQ(cc.counts().size(), static_cast<std::size_t>(w) * h)
      << "not every pixel was covered";
  for (const auto& [pix, count] : cc.counts()) {
    EXPECT_EQ(count, 1) << "pixel " << pix % w << "," << pix / w
                        << " shaded " << count << " times (fill rule bug)";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, QuadCoverage,
    ::testing::Values(std::pair{1, 1}, std::pair{2, 2}, std::pair{4, 4},
                      std::pair{16, 16}, std::pair{64, 64}, std::pair{5, 7},
                      std::pair{33, 17}, std::pair{128, 1},
                      std::pair{1, 128}));

TEST(RasterTest, AdjacentTrianglesShareEdgeWithoutDoubleShading) {
  // Vertical shared edge through pixel centers.
  const RasterState s = State(8, 8);
  CoverageCounter cc(8);
  const auto sink = cc.Sink();
  RasterizeTriangle(V(-1, -1), V(0, -1), V(0, 1), 0, s, sink);
  RasterizeTriangle(V(-1, -1), V(0, 1), V(-1, 1), 0, s, sink);
  RasterizeTriangle(V(0, -1), V(1, -1), V(1, 1), 0, s, sink);
  RasterizeTriangle(V(0, -1), V(1, 1), V(0, 1), 0, s, sink);
  ASSERT_EQ(cc.counts().size(), 64u);
  for (const auto& [pix, count] : cc.counts()) {
    EXPECT_EQ(count, 1) << "pixel " << pix;
  }
}

TEST(RasterTest, VaryingInterpolationHitsTexelCenters) {
  // Varying v = (uv.x, uv.y) over the quad; fragment (i, j) must receive
  // ((i+0.5)/W, (j+0.5)/H) to float accuracy (challenge 4 addressing).
  const int w = 16, h = 16;
  const RasterState s = State(w, h);
  int checked = 0;
  const FragmentSink sink = [&](int x, int y, float, const float* vars, bool,
                                float, float) {
    const float expect_u = (static_cast<float>(x) + 0.5f) / w;
    const float expect_v = (static_cast<float>(y) + 0.5f) / h;
    EXPECT_NEAR(vars[0], expect_u, 1e-6f);
    EXPECT_NEAR(vars[1], expect_v, 1e-6f);
    ++checked;
  };
  RasterizeTriangle(V(-1, -1, {0, 0}), V(1, -1, {1, 0}), V(1, 1, {1, 1}), 2,
                    s, sink);
  RasterizeTriangle(V(-1, -1, {0, 0}), V(1, 1, {1, 1}), V(-1, 1, {0, 1}), 2,
                    s, sink);
  EXPECT_EQ(checked, w * h);
}

TEST(RasterTest, DegenerateTriangleEmitsNothing) {
  const RasterState s = State(8, 8);
  CoverageCounter cc(8);
  const auto sink = cc.Sink();
  RasterizeTriangle(V(-1, -1), V(-1, -1), V(1, 1), 0, s, sink);
  EXPECT_TRUE(cc.counts().empty());
}

TEST(RasterTest, BackfaceCulling) {
  RasterState s = State(8, 8);
  s.cull_enabled = true;
  s.cull_face = GL_BACK;
  s.front_face = GL_CCW;
  CoverageCounter cc(8);
  const auto sink = cc.Sink();
  // Clockwise triangle = back-facing under CCW front: culled.
  RasterizeTriangle(V(-1, -1), V(1, 1), V(1, -1), 0, s, sink);
  EXPECT_TRUE(cc.counts().empty());
  // Counter-clockwise: kept.
  RasterizeTriangle(V(-1, -1), V(1, -1), V(1, 1), 0, s, sink);
  EXPECT_FALSE(cc.counts().empty());
}

TEST(RasterTest, FrontFacingFlagReported) {
  const RasterState s = State(4, 4);
  bool saw_front = false, saw_back = false;
  const FragmentSink sink = [&](int, int, float, const float*, bool front,
                                float, float) {
    (front ? saw_front : saw_back) = true;
  };
  RasterizeTriangle(V(-1, -1), V(1, -1), V(1, 1), 0, s, sink);  // CCW
  RasterizeTriangle(V(-1, -1), V(1, 1), V(1, -1), 0, s, sink);  // CW
  EXPECT_TRUE(saw_front);
  EXPECT_TRUE(saw_back);
}

TEST(RasterTest, OffscreenGeometryClampedToTarget) {
  const RasterState s = State(4, 4);
  CoverageCounter cc(4);
  const auto sink = cc.Sink();
  // Triangle extending far beyond the viewport.
  RasterizeTriangle(V(-10, -10), V(10, -10), V(10, 10), 0, s, sink);
  for (const auto& [pix, count] : cc.counts()) {
    EXPECT_LT(pix, 16);
    EXPECT_EQ(count, 1);
  }
}

TEST(RasterTest, BehindCameraVertexClipped) {
  const RasterState s = State(8, 8);
  CoverageCounter cc(8);
  const auto sink = cc.Sink();
  RasterVertex behind = V(0, 1);
  behind.clip = {0.0f, 1.0f, 0.0f, -1.0f};  // w < 0: behind the camera
  RasterizeTriangle(V(-1, -1), V(1, -1), behind, 0, s, sink);
  // Must not crash or emit garbage; some pixels may legitimately appear.
  for (const auto& [pix, count] : cc.counts()) {
    EXPECT_LT(pix, 64);
    EXPECT_GE(count, 1);
  }
}

TEST(RasterTest, PerspectiveCorrectInterpolation) {
  // Two vertices at different w; the varying must interpolate rationally,
  // not linearly, in screen space.
  const RasterState s = State(9, 9);
  RasterVertex a = V(-1, -1, {0.0f});
  RasterVertex b = V(1, -1, {1.0f}, 2.0f);  // w = 2
  RasterVertex c = V(1, 1, {1.0f}, 2.0f);
  float mid_value = -1.0f;
  const FragmentSink sink = [&](int x, int y, float, const float* vars, bool,
                                float, float) {
    if (x == 4 && y == 2) mid_value = vars[0];
  };
  RasterizeTriangle(a, b, c, 1, s, sink);
  ASSERT_GE(mid_value, 0.0f);
  // Screen-linear interpolation would give ~0.5 at the midpoint; perspective
  // correction pulls it toward the w=1 vertex's value.
  EXPECT_LT(mid_value, 0.5f);
  EXPECT_GT(mid_value, 0.2f);
}

TEST(RasterTest, PointSpriteCoverageAndPointCoord) {
  const RasterState s = State(8, 8);
  RasterVertex p = V(0, 0);
  p.point_size = 4.0f;
  int frags = 0;
  float min_ps = 2.0f, max_ps = -1.0f;
  const FragmentSink sink = [&](int, int, float, const float*, bool,
                                float ps, float pt) {
    ++frags;
    min_ps = std::min(min_ps, ps);
    max_ps = std::max(max_ps, std::max(ps, pt));
  };
  RasterizePoint(p, 0, s, sink);
  EXPECT_EQ(frags, 16);  // 4x4 sprite
  EXPECT_GE(min_ps, 0.0f);
  EXPECT_LE(max_ps, 1.0f);
}

TEST(RasterTest, LineConnectsEndpoints) {
  const RasterState s = State(8, 8);
  std::vector<std::pair<int, int>> pixels;
  const FragmentSink sink = [&](int x, int y, float, const float*, bool,
                                float, float) {
    pixels.emplace_back(x, y);
  };
  RasterizeLine(V(-1, -1), V(1, 1), 0, s, sink);
  ASSERT_FALSE(pixels.empty());
  EXPECT_EQ(pixels.front(), (std::pair{0, 0}));
  EXPECT_EQ(pixels.back(), (std::pair{7, 7}));
}

TEST(RasterTest, ViewportOffsetShiftsOutput) {
  RasterState s = State(8, 8);
  s.viewport_x = 4;
  s.viewport_y = 4;
  s.viewport_w = 4;
  s.viewport_h = 4;
  CoverageCounter cc(8);
  const auto sink = cc.Sink();
  RasterizeTriangle(V(-1, -1), V(1, -1), V(1, 1), 0, s, sink);
  RasterizeTriangle(V(-1, -1), V(1, 1), V(-1, 1), 0, s, sink);
  ASSERT_EQ(cc.counts().size(), 16u);
  for (const auto& [pix, count] : cc.counts()) {
    EXPECT_GE(pix % 8, 4);
    EXPECT_GE(pix / 8, 4);
    EXPECT_EQ(count, 1);
  }
}

}  // namespace
}  // namespace mgpu::gles2
