// Framebuffer objects and render-to-texture: the substrate for the paper's
// challenge 7 (the only way to read results back is via the framebuffer) and
// for multi-pass kernels (reduction, ping-pong).
#include <vector>

#include "gles2/context.h"
#include "gles2_test_util.h"
#include "gtest/gtest.h"

namespace mgpu::gles2 {
namespace {

using testutil::BuildProgramOrDie;
using testutil::DrawFullscreenQuad;

ContextConfig Cfg(int w = 4, int h = 4) {
  ContextConfig c;
  c.width = w;
  c.height = h;
  return c;
}

GLuint MakeTargetTexture(Context& ctx, int w, int h) {
  GLuint tex;
  ctx.GenTextures(1, &tex);
  ctx.BindTexture(GL_TEXTURE_2D, tex);
  ctx.TexImage2D(GL_TEXTURE_2D, 0, GL_RGBA, w, h, 0, GL_RGBA,
                 GL_UNSIGNED_BYTE, nullptr);
  ctx.TexParameteri(GL_TEXTURE_2D, GL_TEXTURE_MIN_FILTER, GL_NEAREST);
  ctx.TexParameteri(GL_TEXTURE_2D, GL_TEXTURE_MAG_FILTER, GL_NEAREST);
  ctx.TexParameteri(GL_TEXTURE_2D, GL_TEXTURE_WRAP_S, GL_CLAMP_TO_EDGE);
  ctx.TexParameteri(GL_TEXTURE_2D, GL_TEXTURE_WRAP_T, GL_CLAMP_TO_EDGE);
  return tex;
}

TEST(FboTest, RenderToTextureAndReadBack) {
  Context ctx(Cfg());
  const GLuint tex = MakeTargetTexture(ctx, 4, 4);
  GLuint fbo;
  ctx.GenFramebuffers(1, &fbo);
  ctx.BindFramebuffer(GL_FRAMEBUFFER, fbo);
  ctx.FramebufferTexture2D(GL_FRAMEBUFFER, GL_COLOR_ATTACHMENT0,
                           GL_TEXTURE_2D, tex, 0);
  ASSERT_EQ(ctx.CheckFramebufferStatus(GL_FRAMEBUFFER),
            GL_FRAMEBUFFER_COMPLETE);
  const GLuint p = BuildProgramOrDie(
      ctx, testutil::kPassthroughVs,
      "precision mediump float;\nvoid main() { gl_FragColor = vec4(1.0, "
      "0.0, 1.0, 1.0); }");
  ctx.Viewport(0, 0, 4, 4);
  DrawFullscreenQuad(ctx, p);
  // Challenge 7: ReadPixels from the FBO is how texture data reaches the CPU.
  std::vector<std::uint8_t> px(4 * 4 * 4);
  ctx.ReadPixels(0, 0, 4, 4, GL_RGBA, GL_UNSIGNED_BYTE, px.data());
  EXPECT_EQ(ctx.GetError(), GL_NO_ERROR);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(px[i * 4 + 0], 255);
    EXPECT_EQ(px[i * 4 + 1], 0);
    EXPECT_EQ(px[i * 4 + 2], 255);
  }
  // The texture object itself holds the rendered data.
  EXPECT_EQ(ctx.GetTextureObject(tex)->TexelAt(2, 2),
            (std::array<std::uint8_t, 4>{255, 0, 255, 255}));
}

TEST(FboTest, MissingAttachmentIncomplete) {
  Context ctx(Cfg());
  GLuint fbo;
  ctx.GenFramebuffers(1, &fbo);
  ctx.BindFramebuffer(GL_FRAMEBUFFER, fbo);
  EXPECT_EQ(ctx.CheckFramebufferStatus(GL_FRAMEBUFFER),
            GL_FRAMEBUFFER_INCOMPLETE_MISSING_ATTACHMENT);
  const GLuint p = BuildProgramOrDie(
      ctx, testutil::kPassthroughVs,
      "precision mediump float;\nvoid main() { gl_FragColor = vec4(1.0); }");
  DrawFullscreenQuad(ctx, p);
  EXPECT_EQ(ctx.GetError(), GL_INVALID_FRAMEBUFFER_OPERATION);
}

TEST(FboTest, TextureWithoutStorageIncomplete) {
  Context ctx(Cfg());
  GLuint tex;
  ctx.GenTextures(1, &tex);
  ctx.BindTexture(GL_TEXTURE_2D, tex);  // no TexImage2D
  GLuint fbo;
  ctx.GenFramebuffers(1, &fbo);
  ctx.BindFramebuffer(GL_FRAMEBUFFER, fbo);
  ctx.FramebufferTexture2D(GL_FRAMEBUFFER, GL_COLOR_ATTACHMENT0,
                           GL_TEXTURE_2D, tex, 0);
  EXPECT_EQ(ctx.CheckFramebufferStatus(GL_FRAMEBUFFER),
            GL_FRAMEBUFFER_INCOMPLETE_ATTACHMENT);
}

TEST(FboTest, RenderbufferColorTarget) {
  Context ctx(Cfg());
  GLuint rb;
  ctx.GenRenderbuffers(1, &rb);
  ctx.BindRenderbuffer(GL_RENDERBUFFER, rb);
  ctx.RenderbufferStorage(GL_RENDERBUFFER, GL_RGB565, 4, 4);
  GLuint fbo;
  ctx.GenFramebuffers(1, &fbo);
  ctx.BindFramebuffer(GL_FRAMEBUFFER, fbo);
  ctx.FramebufferRenderbuffer(GL_FRAMEBUFFER, GL_COLOR_ATTACHMENT0,
                              GL_RENDERBUFFER, rb);
  ASSERT_EQ(ctx.CheckFramebufferStatus(GL_FRAMEBUFFER),
            GL_FRAMEBUFFER_COMPLETE);
  ctx.ClearColor(0.0f, 1.0f, 0.0f, 1.0f);
  ctx.Clear(GL_COLOR_BUFFER_BIT);
  std::vector<std::uint8_t> px(4 * 4 * 4);
  ctx.ReadPixels(0, 0, 4, 4, GL_RGBA, GL_UNSIGNED_BYTE, px.data());
  EXPECT_EQ(px[1], 255);
}

TEST(FboTest, FloatRenderbufferRejected) {
  // Paper limitation #6: no float framebuffer storage exists in ES 2.0.
  Context ctx(Cfg());
  GLuint rb;
  ctx.GenRenderbuffers(1, &rb);
  ctx.BindRenderbuffer(GL_RENDERBUFFER, rb);
  constexpr GLenum kDesktopRgba32f = 0x8814;
  ctx.RenderbufferStorage(GL_RENDERBUFFER, kDesktopRgba32f, 4, 4);
  EXPECT_EQ(ctx.GetError(), GL_INVALID_ENUM);
}

TEST(FboTest, PingPongBetweenTextures) {
  // Multi-pass pattern used by the reduction kernel: render into B reading
  // A, then render into A reading B.
  Context ctx(Cfg(2, 2));
  const GLuint tex_a = MakeTargetTexture(ctx, 2, 2);
  const GLuint tex_b = MakeTargetTexture(ctx, 2, 2);
  GLuint fbo;
  ctx.GenFramebuffers(1, &fbo);
  ctx.BindFramebuffer(GL_FRAMEBUFFER, fbo);
  // Seed A with 10 via clear.
  ctx.FramebufferTexture2D(GL_FRAMEBUFFER, GL_COLOR_ATTACHMENT0,
                           GL_TEXTURE_2D, tex_a, 0);
  ctx.ClearColor(10.0f / 255.0f, 0.0f, 0.0f, 1.0f);
  ctx.Clear(GL_COLOR_BUFFER_BIT);
  const GLuint p = BuildProgramOrDie(
      ctx, testutil::kPassthroughVs,
      "precision mediump float;\nvarying vec2 v_uv;\nuniform sampler2D "
      "u_src;\nvoid main() { vec4 t = texture2D(u_src, v_uv); gl_FragColor "
      "= vec4(t.r + 10.0 / 255.0, t.gba); }");
  ctx.UseProgram(p);
  ctx.Viewport(0, 0, 2, 2);
  const GLint u_src = ctx.GetUniformLocation(p, "u_src");
  // Pass 1: read A, write B.
  ctx.ActiveTexture(GL_TEXTURE0);
  ctx.BindTexture(GL_TEXTURE_2D, tex_a);
  ctx.Uniform1i(u_src, 0);
  ctx.FramebufferTexture2D(GL_FRAMEBUFFER, GL_COLOR_ATTACHMENT0,
                           GL_TEXTURE_2D, tex_b, 0);
  DrawFullscreenQuad(ctx, p);
  // Pass 2: read B, write A.
  ctx.BindTexture(GL_TEXTURE_2D, tex_b);
  ctx.FramebufferTexture2D(GL_FRAMEBUFFER, GL_COLOR_ATTACHMENT0,
                           GL_TEXTURE_2D, tex_a, 0);
  DrawFullscreenQuad(ctx, p);
  std::vector<std::uint8_t> px(2 * 2 * 4);
  ctx.ReadPixels(0, 0, 2, 2, GL_RGBA, GL_UNSIGNED_BYTE, px.data());
  EXPECT_EQ(px[0], 30);  // 10 + 10 + 10
  EXPECT_EQ(ctx.GetError(), GL_NO_ERROR);
}

TEST(FboTest, SwitchingBackToDefaultFramebuffer) {
  Context ctx(Cfg(2, 2));
  const GLuint tex = MakeTargetTexture(ctx, 2, 2);
  GLuint fbo;
  ctx.GenFramebuffers(1, &fbo);
  ctx.BindFramebuffer(GL_FRAMEBUFFER, fbo);
  ctx.FramebufferTexture2D(GL_FRAMEBUFFER, GL_COLOR_ATTACHMENT0,
                           GL_TEXTURE_2D, tex, 0);
  ctx.ClearColor(1.0f, 0.0f, 0.0f, 1.0f);
  ctx.Clear(GL_COLOR_BUFFER_BIT);
  ctx.BindFramebuffer(GL_FRAMEBUFFER, 0);
  ctx.ClearColor(0.0f, 1.0f, 0.0f, 1.0f);
  ctx.Clear(GL_COLOR_BUFFER_BIT);
  std::vector<std::uint8_t> px(2 * 2 * 4);
  ctx.ReadPixels(0, 0, 2, 2, GL_RGBA, GL_UNSIGNED_BYTE, px.data());
  EXPECT_EQ(px[0], 0);
  EXPECT_EQ(px[1], 255);
  EXPECT_EQ(ctx.GetTextureObject(tex)->TexelAt(0, 0)[0], 255);
}

TEST(FboTest, DepthRenderbufferWithFbo) {
  Context ctx(Cfg(2, 2));
  const GLuint tex = MakeTargetTexture(ctx, 2, 2);
  GLuint rb, fbo;
  ctx.GenRenderbuffers(1, &rb);
  ctx.BindRenderbuffer(GL_RENDERBUFFER, rb);
  ctx.RenderbufferStorage(GL_RENDERBUFFER, GL_DEPTH_COMPONENT16, 2, 2);
  ctx.GenFramebuffers(1, &fbo);
  ctx.BindFramebuffer(GL_FRAMEBUFFER, fbo);
  ctx.FramebufferTexture2D(GL_FRAMEBUFFER, GL_COLOR_ATTACHMENT0,
                           GL_TEXTURE_2D, tex, 0);
  ctx.FramebufferRenderbuffer(GL_FRAMEBUFFER, GL_DEPTH_ATTACHMENT,
                              GL_RENDERBUFFER, rb);
  EXPECT_EQ(ctx.CheckFramebufferStatus(GL_FRAMEBUFFER),
            GL_FRAMEBUFFER_COMPLETE);
}

TEST(FboTest, MismatchedDepthSizeIncomplete) {
  Context ctx(Cfg(2, 2));
  const GLuint tex = MakeTargetTexture(ctx, 2, 2);
  GLuint rb, fbo;
  ctx.GenRenderbuffers(1, &rb);
  ctx.BindRenderbuffer(GL_RENDERBUFFER, rb);
  ctx.RenderbufferStorage(GL_RENDERBUFFER, GL_DEPTH_COMPONENT16, 4, 4);
  ctx.GenFramebuffers(1, &fbo);
  ctx.BindFramebuffer(GL_FRAMEBUFFER, fbo);
  ctx.FramebufferTexture2D(GL_FRAMEBUFFER, GL_COLOR_ATTACHMENT0,
                           GL_TEXTURE_2D, tex, 0);
  ctx.FramebufferRenderbuffer(GL_FRAMEBUFFER, GL_DEPTH_ATTACHMENT,
                              GL_RENDERBUFFER, rb);
  EXPECT_NE(ctx.CheckFramebufferStatus(GL_FRAMEBUFFER),
            GL_FRAMEBUFFER_COMPLETE);
}

}  // namespace
}  // namespace mgpu::gles2
