// Parser-level tests exercised through the full compile pipeline: valid
// programs must compile, syntax errors must be diagnosed.
#include <string>

#include "glsl_test_util.h"
#include "gtest/gtest.h"

namespace mgpu::glsl {
namespace {

using testutil::MustCompile;
using testutil::MustFail;

constexpr char kPrec[] = "precision highp float;\n";

TEST(ParserTest, MinimalFragmentShader) {
  MustCompile(std::string(kPrec) + "void main() { gl_FragColor = vec4(0.0); }");
}

TEST(ParserTest, MinimalVertexShader) {
  MustCompile("attribute vec4 a_pos;\nvoid main() { gl_Position = a_pos; }",
              Stage::kVertex);
}

TEST(ParserTest, AllStatementForms) {
  MustCompile(std::string(kPrec) + R"(
void main() {
  float acc = 0.0;
  for (int i = 0; i < 4; ++i) { acc += 1.0; }
  int j = 0;
  while (j < 3) { j++; if (j == 2) continue; acc += 0.5; }
  do { acc -= 0.25; } while (acc > 10.0);
  if (acc > 0.0) { gl_FragColor = vec4(acc); } else { gl_FragColor = vec4(0.0); }
})");
}

TEST(ParserTest, FunctionDefinitionAndCall) {
  MustCompile(std::string(kPrec) + R"(
float twice(float x) { return x * 2.0; }
void main() { gl_FragColor = vec4(twice(0.25)); })");
}

TEST(ParserTest, FunctionPrototypeThenDefinition) {
  MustCompile(std::string(kPrec) + R"(
float twice(float x);
void main() { gl_FragColor = vec4(twice(0.25)); }
float twice(float x) { return x * 2.0; })");
}

TEST(ParserTest, OutAndInoutParams) {
  MustCompile(std::string(kPrec) + R"(
void split(in float v, out float a, inout float b) { a = v; b += v; }
void main() {
  float x; float y = 1.0;
  split(0.5, x, y);
  gl_FragColor = vec4(x, y, 0.0, 1.0);
})");
}

TEST(ParserTest, ArrayDeclarationAndIndexing) {
  MustCompile(std::string(kPrec) + R"(
void main() {
  float tbl[4];
  for (int i = 0; i < 4; ++i) { tbl[i] = float(i); }
  gl_FragColor = vec4(tbl[3]);
})");
}

TEST(ParserTest, MultipleDeclaratorsWithInit) {
  MustCompile(std::string(kPrec) +
              "void main() { float a = 1.0, b = 2.0, c; c = a + b; "
              "gl_FragColor = vec4(c); }");
}

TEST(ParserTest, TernaryAndComma) {
  MustCompile(std::string(kPrec) + R"(
void main() {
  float a = 1.0;
  float b = a > 0.5 ? 2.0 : 3.0;
  a = (b += 1.0, b);
  gl_FragColor = vec4(a);
})");
}

TEST(ParserTest, VoidParameterList) {
  MustCompile(std::string(kPrec) +
              "float one(void) { return 1.0; }\n"
              "void main() { gl_FragColor = vec4(one()); }");
}

TEST(ParserTest, StructRejected) {
  MustFail("struct S { float x; };\nvoid main() {}");
}

TEST(ParserTest, MissingSemicolonRejected) {
  MustFail(std::string(kPrec) + "void main() { float a = 1.0 }");
}

TEST(ParserTest, UnbalancedBraceRejected) {
  MustFail(std::string(kPrec) + "void main() { ");
}

TEST(ParserTest, NonLiteralArraySizeRejected) {
  MustFail(std::string(kPrec) + "void main() { int n = 4; float a[n]; }");
}

TEST(ParserTest, ZeroArraySizeRejected) {
  MustFail(std::string(kPrec) + "void main() { float a[0]; }");
}

TEST(ParserTest, QualifierOnFunctionRejected) {
  MustFail("uniform float f() { return 1.0; }\nvoid main() {}");
}

TEST(ParserTest, PrecisionStatementForms) {
  MustCompile("precision mediump float;\nprecision highp int;\n"
              "void main() { gl_FragColor = vec4(1.0); }");
}

TEST(ParserTest, PrecisionOnBoolRejected) {
  MustFail("precision highp bool;\nvoid main() {}");
}

TEST(ParserTest, InvariantVarying) {
  MustCompile("invariant varying vec2 v_uv;\nattribute vec4 a_p;\n"
              "void main() { v_uv = a_p.xy; gl_Position = a_p; }",
              Stage::kVertex);
}

TEST(ParserTest, ConstructorExpressionNotMistakenForDeclaration) {
  MustCompile(std::string(kPrec) +
              "void main() { gl_FragColor = vec4(vec2(1.0), vec2(0.0)); }");
}

TEST(ParserTest, NestedFunctionCallsAndSwizzles) {
  MustCompile(std::string(kPrec) + R"(
void main() {
  vec4 c = vec4(0.1, 0.2, 0.3, 0.4);
  gl_FragColor = vec4(c.zyx, c.w).wzyx;
})");
}

TEST(ParserTest, EmptyStatementAllowed) {
  MustCompile(std::string(kPrec) + "void main() { ;;; gl_FragColor = vec4(0.0); }");
}

TEST(ParserTest, ForWithEmptyClauses) {
  MustCompile(std::string(kPrec) + R"(
void main() {
  float a = 0.0;
  for (;;) { a += 1.0; if (a > 3.0) break; }
  gl_FragColor = vec4(a);
})");
}

}  // namespace
}  // namespace mgpu::glsl
