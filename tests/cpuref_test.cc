// CPU baseline correctness and the analytic op-count formulas.
#include "cpuref/cpuref.h"

#include <cmath>
#include <numeric>
#include <vector>

#include "common/rng.h"
#include "gtest/gtest.h"

namespace mgpu::cpuref {
namespace {

TEST(CpuRefTest, AddF32) {
  const std::vector<float> a = {1.0f, 2.0f, 3.0f};
  const std::vector<float> b = {0.5f, -2.0f, 10.0f};
  std::vector<float> out(3);
  AddF32(a, b, out);
  EXPECT_EQ(out, (std::vector<float>{1.5f, 0.0f, 13.0f}));
}

TEST(CpuRefTest, AddU8Wraps) {
  const std::vector<std::uint8_t> a = {250, 1};
  const std::vector<std::uint8_t> b = {10, 1};
  std::vector<std::uint8_t> out(2);
  AddU8(a, b, out);
  EXPECT_EQ(out[0], 4);  // 260 mod 256
  EXPECT_EQ(out[1], 2);
}

TEST(CpuRefTest, SgemmIdentity) {
  const int n = 8;
  std::vector<float> a(static_cast<std::size_t>(n) * n, 0.0f);
  for (int i = 0; i < n; ++i) a[static_cast<std::size_t>(i * n + i)] = 1.0f;
  Rng rng(5);
  const auto b = rng.FloatVector(static_cast<std::size_t>(n) * n, -3.0f, 3.0f);
  std::vector<float> out(b.size());
  SgemmF32(n, a, b, out);
  EXPECT_EQ(out, b);
}

TEST(CpuRefTest, BlockedSgemmMatchesNaive) {
  Rng rng(6);
  for (const int n : {8, 16, 33}) {
    const auto a = rng.FloatVector(static_cast<std::size_t>(n) * n, -1, 1);
    const auto b = rng.FloatVector(static_cast<std::size_t>(n) * n, -1, 1);
    std::vector<float> naive(a.size()), blocked(a.size());
    SgemmF32(n, a, b, naive);
    SgemmBlockedF32(n, a, b, blocked, 8);
    for (std::size_t i = 0; i < naive.size(); ++i) {
      EXPECT_NEAR(naive[i], blocked[i],
                  1e-4f * std::max(1.0f, std::fabs(naive[i])))
          << "n=" << n << " i=" << i;
    }
  }
}

TEST(CpuRefTest, GemmI32SmallKnown) {
  // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
  const std::vector<std::int32_t> a = {1, 2, 3, 4};
  const std::vector<std::int32_t> b = {5, 6, 7, 8};
  std::vector<std::int32_t> out(4);
  GemmI32(2, a, b, out);
  EXPECT_EQ(out, (std::vector<std::int32_t>{19, 22, 43, 50}));
}

TEST(CpuRefTest, ConvIdentityKernel) {
  const int w = 8, h = 4;
  Rng rng(7);
  const auto img = rng.ByteVector(static_cast<std::size_t>(w) * h);
  const std::vector<float> identity = {0, 0, 0, 0, 1, 0, 0, 0, 0};
  std::vector<std::uint8_t> out(img.size());
  Conv3x3U8(w, h, img, identity, out);
  EXPECT_EQ(out, img);
}

TEST(CpuRefTest, ReduceAndTreeAgreeOnIntegers) {
  std::vector<float> v(777);
  std::iota(v.begin(), v.end(), 1.0f);
  EXPECT_EQ(ReduceSumF32(v), ReduceSumTree4F32(v));
  EXPECT_EQ(ReduceSumF32(v), 777.0f * 778.0f / 2.0f);
}

TEST(CpuRefTest, MinMax) {
  const std::vector<float> v = {3.0f, -5.0f, 100.0f, 0.0f};
  const auto [mn, mx] = MinMaxF32(v);
  EXPECT_EQ(mn, -5.0f);
  EXPECT_EQ(mx, 100.0f);
}

TEST(CpuRefTest, WorkFormulasScale) {
  // Sum work is linear, sgemm cubic; fp ops live in the fp fields.
  const auto add1 = AddWorkF32(1000);
  const auto add2 = AddWorkF32(2000);
  EXPECT_EQ(add2.fp_adds, 2 * add1.fp_adds);
  EXPECT_EQ(add1.loads, 2000u);
  const auto g1 = SgemmWorkF32(16);
  const auto g2 = SgemmWorkF32(32);
  EXPECT_EQ(g2.fp_muls, 8 * g1.fp_muls);
  const auto gi = GemmWorkI32(16);
  EXPECT_EQ(gi.fp_muls, 0u);
  EXPECT_EQ(gi.int_muls, g1.fp_muls);
}

TEST(CpuRefTest, IntSumCheaperThanFloatSumOnArm1176) {
  // The CPU-side asymmetry behind the paper's speedup ordering.
  const vc4::CpuModel cpu = vc4::Arm1176();
  EXPECT_LT(vc4::CpuSeconds(cpu, AddWorkI32(1'000'000)),
            vc4::CpuSeconds(cpu, AddWorkF32(1'000'000)));
}

}  // namespace
}  // namespace mgpu::cpuref
