// Fault-injection harness for the robustness model: draws are transactional.
// Any failure mid-draw — a shader trap, the per-draw watchdog, an injected
// allocation / pool-task fault — must abort the *entire draw* so that the
// framebuffer, depth plane and ALU/TMU counters hold exactly the pre-draw
// state, byte for byte, on every engine, worker count and batch width; and
// the next draw must behave exactly as if the aborted one was never issued.
//
// Usage: gles2_fault_test [--fault_iters=N] [gtest flags]
// The sweep test runs N seeded scenarios (default 60; CI's ASan job raises
// it). Seeds are deterministic (seed base + index), so any failure line
// reproduces standalone.

#include <array>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "common/fault.h"
#include "gles2/cmdstream.h"
#include "gles2/context.h"
#include "gles2_test_util.h"
#include "gtest/gtest.h"

namespace mgpu::gles2 {
namespace {

using fault::Site;
using testutil::BuildProgramOrDie;
using testutil::DrawFullscreenQuad;
using testutil::kPassthroughVs;
using testutil::ReadRgba;

int g_fault_iters = 60;

// 128x128 = a 2x2 grid of 64x64 tiles, so parallel configurations really
// engage the worker pool (a single-tile target would fall back to serial
// and never reach the pool-task fault site).
constexpr int kW = 128;
constexpr int kH = 128;
constexpr std::uint64_t kSeedBase = 20260808;

// Trap-free gradient shader with a loop, so the kVmInstruction site (which
// fires at loop-guard checks) has deterministic places to inject.
constexpr char kCleanFs[] = R"(
precision mediump float;
varying vec2 v_uv;
void main() {
  float acc = 0.0;
  for (int i = 0; i < 6; ++i) {
    acc += fract(v_uv.x * float(i + 1) + v_uv.y);
  }
  gl_FragColor = vec4(fract(acc), v_uv.x, v_uv.y, 1.0);
}
)";

// Traps on the right half of the screen: `poison` is declared but never
// defined, and calling it raises a deterministic shader trap ("call to
// undefined function") — the same divergent-capable trap on all engines.
constexpr char kTrapFs[] = R"(
precision mediump float;
varying vec2 v_uv;
float poison(float x);
void main() {
  float v = v_uv.x;
  if (v_uv.x > 0.5) { v = poison(v); }
  gl_FragColor = vec4(v, v_uv.y, 0.25, 1.0);
}
)";

// Vertex shader that traps (every vertex): exercises the vertex-stage
// abort path, which must restore counters even though no pixel was shaded.
constexpr char kTrapVs[] = R"(
attribute vec2 a_pos;
varying vec2 v_uv;
float poison(float x);
void main() {
  v_uv = a_pos * 0.5 + 0.5;
  gl_Position = vec4(a_pos * poison(a_pos.x), 0.0, 1.0);
}
)";

struct Snapshot {
  std::vector<std::uint8_t> fb;
  glsl::OpCounts counts;
};

Snapshot Snap(Context& ctx) {
  return {ReadRgba(ctx, kW, kH), ctx.alu().counts()};
}

void ExpectSnapshotEq(const Snapshot& a, const Snapshot& b,
                      const std::string& what) {
  EXPECT_EQ(a.fb, b.fb) << what << ": framebuffer differs";
  EXPECT_EQ(a.counts.alu, b.counts.alu) << what << ": alu count differs";
  EXPECT_EQ(a.counts.sfu, b.counts.sfu) << what << ": sfu count differs";
  EXPECT_EQ(a.counts.sfu_trans, b.counts.sfu_trans) << what;
  EXPECT_EQ(a.counts.tmu, b.counts.tmu) << what << ": tmu count differs";
  EXPECT_EQ(a.counts.tmu_miss, b.counts.tmu_miss) << what;
}

ContextConfig MakeConfig(ExecEngine engine, int threads, int batch_width) {
  ContextConfig cfg;
  cfg.width = kW;
  cfg.height = kH;
  cfg.exec_engine = engine;
  cfg.shader_threads = threads;
  cfg.fragment_batch_width = batch_width;
  return cfg;
}

const char* EngineName(ExecEngine e) {
  switch (e) {
    case ExecEngine::kBatchedVm: return "batched";
    case ExecEngine::kBytecodeVm: return "scalar-vm";
    case ExecEngine::kTreeWalk: return "tree";
    case ExecEngine::kCompiled: return "compiled";
  }
  return "?";
}

// A shader trap must abort transactionally on every engine / worker count /
// batch width, and all configurations must converge on byte-identical
// post-abort state (trivially: the pre-draw state, which clean draws make
// engine-identical already).
TEST(FaultInjection, TrapAbortRestoresPreDrawStateEverywhere) {
  std::vector<std::uint8_t> reference_fb;
  const std::array<ExecEngine, 4> engines = {
      ExecEngine::kBatchedVm, ExecEngine::kBytecodeVm, ExecEngine::kTreeWalk,
      ExecEngine::kCompiled};
  for (const ExecEngine engine : engines) {
    for (const int threads : {1, 4}) {
      for (const int width : {1, 17, 32}) {
        SCOPED_TRACE(std::string(EngineName(engine)) + " threads=" +
                     std::to_string(threads) + " width=" +
                     std::to_string(width));
        Context ctx(MakeConfig(engine, threads, width));
        const GLuint clean = BuildProgramOrDie(ctx, kPassthroughVs, kCleanFs);
        const GLuint trap = BuildProgramOrDie(ctx, kPassthroughVs, kTrapFs);
        DrawFullscreenQuad(ctx, clean);
        ASSERT_EQ(ctx.GetError(), GL_NO_ERROR);
        EXPECT_EQ(ctx.GetGraphicsResetStatus(), GL_NO_ERROR);
        const Snapshot before = Snap(ctx);

        DrawFullscreenQuad(ctx, trap);
        EXPECT_EQ(ctx.GetError(), GL_INVALID_OPERATION);
        EXPECT_EQ(ctx.GetGraphicsResetStatus(), GL_GUILTY_CONTEXT_RESET);
        // Observe-and-clear: a second query reads clean.
        EXPECT_EQ(ctx.GetGraphicsResetStatus(), GL_NO_ERROR);
        EXPECT_NE(ctx.last_draw_error().find("undefined function"),
                  std::string::npos)
            << ctx.last_draw_error();
        ExpectSnapshotEq(Snap(ctx), before, "post-abort");

        // Recovery: the next draw is byte-identical to a context that
        // never issued the trapped draw.
        DrawFullscreenQuad(ctx, clean);
        ASSERT_EQ(ctx.GetError(), GL_NO_ERROR);
        if (reference_fb.empty()) {
          reference_fb = ReadRgba(ctx, kW, kH);
        } else {
          EXPECT_EQ(ReadRgba(ctx, kW, kH), reference_fb)
              << "recovery framebuffer differs across configurations";
        }
      }
    }
  }
}

TEST(FaultInjection, VertexStageTrapAbortsBeforeAnyPixel) {
  Context ctx(MakeConfig(ExecEngine::kBatchedVm, 1, 32));
  const GLuint clean = BuildProgramOrDie(ctx, kPassthroughVs, kCleanFs);
  const GLuint trap_vs = BuildProgramOrDie(ctx, kTrapVs, kCleanFs);
  DrawFullscreenQuad(ctx, clean);
  ASSERT_EQ(ctx.GetError(), GL_NO_ERROR);
  const Snapshot before = Snap(ctx);
  DrawFullscreenQuad(ctx, trap_vs);
  EXPECT_EQ(ctx.GetError(), GL_INVALID_OPERATION);
  EXPECT_EQ(ctx.GetGraphicsResetStatus(), GL_GUILTY_CONTEXT_RESET);
  ExpectSnapshotEq(Snap(ctx), before, "post-vertex-trap");
}

// The watchdog trips iff the draw's total modeled ALU ops exceed the
// budget; the total is engine- and thread-invariant, so the trip decision
// must be too. Budget == exact total must NOT trip (the check is strict).
TEST(FaultInjection, WatchdogBudgetTripsDeterministically) {
  // Measure the draw's exact ALU total on a reference context.
  std::uint64_t total = 0;
  {
    Context ctx(MakeConfig(ExecEngine::kBatchedVm, 1, 32));
    const GLuint clean = BuildProgramOrDie(ctx, kPassthroughVs, kCleanFs);
    const std::uint64_t before = ctx.alu().counts().alu;
    DrawFullscreenQuad(ctx, clean);
    ASSERT_EQ(ctx.GetError(), GL_NO_ERROR);
    total = ctx.alu().counts().alu - before;
    ASSERT_GT(total, 0u);
  }
  const std::array<ExecEngine, 4> engines = {
      ExecEngine::kBatchedVm, ExecEngine::kBytecodeVm, ExecEngine::kTreeWalk,
      ExecEngine::kCompiled};
  for (const ExecEngine engine : engines) {
    for (const int threads : {1, 4}) {
      SCOPED_TRACE(std::string(EngineName(engine)) + " threads=" +
                   std::to_string(threads));
      Context ctx(MakeConfig(engine, threads, 32));
      const GLuint clean = BuildProgramOrDie(ctx, kPassthroughVs, kCleanFs);
      DrawFullscreenQuad(ctx, clean);
      ASSERT_EQ(ctx.GetError(), GL_NO_ERROR);
      const Snapshot before = Snap(ctx);

      // Exactly at the total: must complete.
      ctx.SetDrawBudget(total);
      DrawFullscreenQuad(ctx, clean);
      EXPECT_EQ(ctx.GetError(), GL_NO_ERROR) << ctx.last_draw_error();
      EXPECT_EQ(ctx.GetGraphicsResetStatus(), GL_NO_ERROR);

      // One op short: must abort with the watchdog mapping.
      ctx.SetDrawBudget(total - 1);
      const Snapshot pre_trip = Snap(ctx);
      DrawFullscreenQuad(ctx, clean);
      EXPECT_EQ(ctx.GetError(), GL_OUT_OF_MEMORY);
      EXPECT_EQ(ctx.GetGraphicsResetStatus(), GL_GUILTY_CONTEXT_RESET);
      EXPECT_NE(ctx.last_draw_error().find("watchdog"), std::string::npos)
          << ctx.last_draw_error();
      ExpectSnapshotEq(Snap(ctx), pre_trip, "post-watchdog-abort");

      // The repeated draw writes the same image: only counters advanced.
      EXPECT_EQ(pre_trip.fb, before.fb);

      // Disabled again: draws succeed.
      ctx.SetDrawBudget(0);
      DrawFullscreenQuad(ctx, clean);
      EXPECT_EQ(ctx.GetError(), GL_NO_ERROR);
    }
  }
}

// Seeded sweep over fault sites x engines x thread counts x batch widths:
// every injected fault must produce either a byte-exact transactional abort
// (with the resource-failure error mapping) or an unaffected successful
// draw (site never reached), and the context must then recover to byte-
// identity with a never-faulted twin.
TEST(FaultInjection, InjectedFaultSweepAbortsCleanlyAndRecovers) {
  const std::array<Site, 4> sites = {Site::kBinnerGrow, Site::kShadeCacheAlloc,
                                     Site::kVmInstruction, Site::kPoolTask};
  const std::array<ExecEngine, 4> engines = {
      ExecEngine::kBatchedVm, ExecEngine::kBytecodeVm, ExecEngine::kTreeWalk,
      ExecEngine::kCompiled};
  for (int iter = 0; iter < g_fault_iters; ++iter) {
    std::mt19937_64 rng(kSeedBase + static_cast<std::uint64_t>(iter));
    const Site site = sites[rng() % sites.size()];
    const ExecEngine engine = engines[rng() % engines.size()];
    const int threads = std::array<int, 3>{1, 2, 4}[rng() % 3];
    const int width = 1 + static_cast<int>(rng() % 32);  // batch tails
    SCOPED_TRACE("iter=" + std::to_string(iter) + " site=" +
                 std::to_string(static_cast<int>(site)) + " engine=" +
                 EngineName(engine) + " threads=" + std::to_string(threads) +
                 " width=" + std::to_string(width));

    const ContextConfig cfg = MakeConfig(engine, threads, width);
    // Build-path sites only fire while a context's shading state / binner
    // tables are being built — steady-state draws allocate nothing — so
    // those scenarios arm the context's *first* draw.
    const bool build_site =
        site == Site::kBinnerGrow || site == Site::kShadeCacheAlloc;

    // Probe on a throwaway context: a huge nth counts how often the site
    // is reached by this exact draw without ever failing.
    std::uint64_t reach = 0;
    {
      Context probe(cfg);
      const GLuint p = BuildProgramOrDie(probe, kPassthroughVs, kCleanFs);
      if (!build_site) DrawFullscreenQuad(probe, p);  // warm caches
      fault::Arm(site, ~0ull);
      DrawFullscreenQuad(probe, p);
      reach = fault::Hits(site);
      fault::Disarm(site);
      ASSERT_EQ(probe.GetError(), GL_NO_ERROR);
    }

    Context ctx(cfg);
    Context twin(cfg);  // never faulted
    const GLuint prog = BuildProgramOrDie(ctx, kPassthroughVs, kCleanFs);
    const GLuint twin_prog = BuildProgramOrDie(twin, kPassthroughVs, kCleanFs);
    if (!build_site) {
      DrawFullscreenQuad(ctx, prog);
      DrawFullscreenQuad(twin, twin_prog);
      ASSERT_EQ(ctx.GetError(), GL_NO_ERROR);
    }

    if (reach > 0) {
      const std::uint64_t nth = rng() % reach;
      const Snapshot pre = Snap(ctx);
      fault::Arm(site, nth);
      DrawFullscreenQuad(ctx, prog);
      fault::Disarm(site);
      // The armed draw must have failed (nth < reach) and aborted cleanly.
      if (site == Site::kVmInstruction) {
        // Injected as a shader trap: guilty, GL_INVALID_OPERATION.
        EXPECT_EQ(ctx.GetError(), GL_INVALID_OPERATION);
        EXPECT_EQ(ctx.GetGraphicsResetStatus(), GL_GUILTY_CONTEXT_RESET);
      } else {
        // Implementation resource failure: innocent, GL_OUT_OF_MEMORY.
        EXPECT_EQ(ctx.GetError(), GL_OUT_OF_MEMORY);
        EXPECT_EQ(ctx.GetGraphicsResetStatus(), GL_INNOCENT_CONTEXT_RESET);
      }
      EXPECT_FALSE(ctx.last_draw_error().empty());
      ExpectSnapshotEq(Snap(ctx), pre, "post-fault abort");
    }

    // Recovery: the next draw on the faulted context must match the
    // never-faulted twin byte for byte, at identical per-draw counter
    // cost — no residue from the aborted draw.
    const std::uint64_t ctx_before = ctx.alu().counts().alu;
    const std::uint64_t twin_before = twin.alu().counts().alu;
    DrawFullscreenQuad(ctx, prog);
    DrawFullscreenQuad(twin, twin_prog);
    ASSERT_EQ(ctx.GetError(), GL_NO_ERROR) << ctx.last_draw_error();
    ASSERT_EQ(twin.GetError(), GL_NO_ERROR);
    EXPECT_EQ(ReadRgba(ctx, kW, kH), ReadRgba(twin, kW, kH))
        << "recovery draw differs from never-faulted twin";
    EXPECT_EQ(ctx.alu().counts().alu - ctx_before,
              twin.alu().counts().alu - twin_before)
        << "recovery draw cost differs from never-faulted twin";
  }
  fault::DisarmAll();
}

// Command-stream submit faults (Site::kCmdSubmit): a list the device drops
// must surface at the client's next sync point as an innocent reset with
// GL_OUT_OF_MEMORY, leave the framebuffer and counters exactly as if the
// dropped work was never issued, and the next draw on a fresh list must be
// byte-identical to a never-faulted twin. Swept across engines and worker
// counts; async is forced on so the sweep also runs under CI's MGPU_ASYNC=0
// leg.
TEST(FaultInjection, CmdSubmitDropLatchesInnocentResetAndRecovers) {
  const std::array<ExecEngine, 4> engines = {
      ExecEngine::kBatchedVm, ExecEngine::kBytecodeVm, ExecEngine::kTreeWalk,
      ExecEngine::kCompiled};
  for (const ExecEngine engine : engines) {
    for (const int threads : {1, 4}) {
      SCOPED_TRACE(std::string(EngineName(engine)) + " threads=" +
                   std::to_string(threads));
      ContextConfig cfg = MakeConfig(engine, threads, 32);
      cfg.async_submit = 1;
      Context ctx(cfg);
      Context twin(cfg);  // never faulted
      const GLuint prog = BuildProgramOrDie(ctx, kPassthroughVs, kCleanFs);
      const GLuint tprog = BuildProgramOrDie(twin, kPassthroughVs, kCleanFs);
      // Fully plumbed setup + baseline draw on both, then sync: the armed
      // window below contains exactly one recorded draw and its submit.
      DrawFullscreenQuad(ctx, prog);
      DrawFullscreenQuad(twin, tprog);
      ASSERT_EQ(ctx.GetError(), GL_NO_ERROR);
      ASSERT_EQ(twin.GetError(), GL_NO_ERROR);
      const Snapshot pre = Snap(ctx);

      fault::Arm(Site::kCmdSubmit, 0);
      ctx.DrawArrays(GL_TRIANGLES, 0, 6);  // recorded, then dropped at submit
      fault::Disarm(Site::kCmdSubmit);     // quiesces: the drop happens here

      EXPECT_EQ(ctx.GetError(), GL_OUT_OF_MEMORY);
      EXPECT_EQ(ctx.GetGraphicsResetStatus(), GL_INNOCENT_CONTEXT_RESET);
      EXPECT_EQ(ctx.GetGraphicsResetStatus(), GL_NO_ERROR);  // observe+clear
      EXPECT_FALSE(ctx.last_draw_error().empty());
      // The dropped draw never executed: state is byte-exactly pre-drop.
      ExpectSnapshotEq(Snap(ctx), pre, "post-drop");
      const cmd::Stats s = ctx.command_stream_stats();
      EXPECT_GE(s.lists_dropped, 1u);

      // Recovery on a fresh list: byte-identical to the never-faulted twin
      // at identical per-draw counter cost.
      const std::uint64_t ctx_before = ctx.alu().counts().alu;
      const std::uint64_t twin_before = twin.alu().counts().alu;
      DrawFullscreenQuad(ctx, prog);
      DrawFullscreenQuad(twin, tprog);
      ASSERT_EQ(ctx.GetError(), GL_NO_ERROR) << ctx.last_draw_error();
      ASSERT_EQ(twin.GetError(), GL_NO_ERROR);
      EXPECT_EQ(ReadRgba(ctx, kW, kH), ReadRgba(twin, kW, kH))
          << "recovery draw differs from never-faulted twin";
      EXPECT_EQ(ctx.alu().counts().alu - ctx_before,
                twin.alu().counts().alu - twin_before);
    }
  }
}

// MGPU_DRAW_BUDGET wiring: the config knob resolves into draw_budget().
TEST(FaultInjection, DrawBudgetConfigKnob) {
  ContextConfig cfg = MakeConfig(ExecEngine::kBatchedVm, 1, 32);
  cfg.draw_budget = 12345;
  Context ctx(cfg);
  // The env var (unset in tests) must not clobber the config value.
  EXPECT_EQ(ctx.draw_budget(), 12345u);
  ctx.SetDrawBudget(0);
  EXPECT_EQ(ctx.draw_budget(), 0u);
}

}  // namespace
}  // namespace mgpu::gles2

// Custom main: gtest_main cannot parse --fault_iters. InitGoogleTest strips
// the flags it owns; ours is consumed here.
int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--fault_iters=", 14) == 0) {
      mgpu::gles2::g_fault_iters = std::atoi(argv[i] + 14);
    }
  }
  std::printf("fault-injection sweep: %d seeded scenarios\n",
              mgpu::gles2::g_fault_iters);
  return RUN_ALL_TESTS();
}
