// The ops library vs. the CPU references: the paper's validation step ("we
// ... validate the results with the CPU", §V) for sum and sgemm in both
// numeric families, plus convolution, reduction and min/max.
#include "compute/ops.h"

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "cpuref/cpuref.h"
#include "gtest/gtest.h"

namespace mgpu::compute {
namespace {

DeviceOptions ExactOptions() {
  DeviceOptions o;
  o.profile = vc4::IeeeExact();
  return o;
}

TEST(OpsTest, AddF32MatchesCpu) {
  Device d(ExactOptions());
  Rng rng(10);
  const std::size_t n = 1000;
  const auto a = rng.FloatVector(n, -100.0f, 100.0f);
  const auto b = rng.FloatVector(n, -100.0f, 100.0f);
  std::vector<float> gpu(n), cpu(n);
  ops::AddF32(d, a, b, gpu);
  cpuref::AddF32(a, b, cpu);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(gpu[i], cpu[i]) << i;
}

TEST(OpsTest, AddI32ExactOnVideoCoreModel) {
  // The paper's integer "sum" with the REAL platform model: must be exact
  // despite the SFU error, because the integer path never uses exp2/log2.
  Device d;  // default VideoCore IV profile
  Rng rng(11);
  const std::size_t n = 1000;
  const auto a = rng.IntVector(n, -4'000'000, 4'000'000);
  const auto b = rng.IntVector(n, -4'000'000, 4'000'000);
  std::vector<std::int32_t> gpu(n), cpu(n);
  ops::AddI32(d, a, b, gpu);
  cpuref::AddI32(a, b, cpu);
  EXPECT_EQ(gpu, cpu);
}

TEST(OpsTest, AddU32Exact) {
  Device d;
  Rng rng(12);
  const std::size_t n = 513;
  std::vector<std::uint32_t> a(n), b(n), gpu(n), cpu(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = static_cast<std::uint32_t>(rng.NextInt(0, 8'000'000));
    b[i] = static_cast<std::uint32_t>(rng.NextInt(0, 8'000'000));
  }
  ops::AddU32(d, a, b, gpu);
  cpuref::AddU32(a, b, cpu);
  EXPECT_EQ(gpu, cpu);
}

TEST(OpsTest, AddU8WrapsLikeC) {
  Device d;
  Rng rng(13);
  const std::size_t n = 997;
  const auto a = rng.ByteVector(n);
  const auto b = rng.ByteVector(n);
  std::vector<std::uint8_t> gpu(n), cpu(n);
  ops::AddU8(d, a, b, gpu);
  cpuref::AddU8(a, b, cpu);
  EXPECT_EQ(gpu, cpu);
}

TEST(OpsTest, AddI8WrapsLikeC) {
  Device d;
  std::vector<std::int8_t> a, b;
  for (int x = -128; x <= 127; x += 3) {
    for (int y = -128; y <= 127; y += 17) {
      a.push_back(static_cast<std::int8_t>(x));
      b.push_back(static_cast<std::int8_t>(y));
    }
  }
  std::vector<std::int8_t> gpu(a.size()), cpu(a.size());
  ops::AddI8(d, a, b, gpu);
  cpuref::AddI8(a, b, cpu);
  EXPECT_EQ(gpu, cpu);
}

TEST(OpsTest, SaxpyMatchesCpu) {
  Device d(ExactOptions());
  Rng rng(14);
  const std::size_t n = 777;
  const auto x = rng.FloatVector(n, -10.0f, 10.0f);
  const auto y = rng.FloatVector(n, -10.0f, 10.0f);
  std::vector<float> gpu(n), cpu(n);
  ops::SaxpyF32(d, 2.5f, x, y, gpu);
  cpuref::SaxpyF32(2.5f, x, y, cpu);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(gpu[i], cpu[i]) << i;
}

TEST(OpsTest, SgemmF32MatchesCpuBitExactOnExactAlu) {
  Device d(ExactOptions());
  Rng rng(15);
  const int n = 24;
  const auto a = rng.FloatVector(static_cast<std::size_t>(n) * n, -2.0f, 2.0f);
  const auto b = rng.FloatVector(static_cast<std::size_t>(n) * n, -2.0f, 2.0f);
  std::vector<float> gpu(a.size()), cpu(a.size());
  ops::SgemmF32(d, n, a, b, gpu);
  cpuref::SgemmF32(n, a, b, cpu);
  for (std::size_t i = 0; i < gpu.size(); ++i) {
    EXPECT_EQ(gpu[i], cpu[i]) << i;  // same accumulation order, exact ALU
  }
}

TEST(OpsTest, GemmI32ExactOnVideoCoreModel) {
  // Values bounded so accumulators stay inside the 24-bit envelope (§IV-C).
  Device d;
  Rng rng(16);
  const int n = 16;
  const auto a = rng.IntVector(static_cast<std::size_t>(n) * n, -64, 64);
  const auto b = rng.IntVector(static_cast<std::size_t>(n) * n, -64, 64);
  std::vector<std::int32_t> gpu(a.size()), cpu(a.size());
  ops::GemmI32(d, n, a, b, gpu);
  cpuref::GemmI32(n, a, b, cpu);
  EXPECT_EQ(gpu, cpu);
}

TEST(OpsTest, SgemmF32CloseOnVideoCoreModel) {
  // With the real platform model the result carries the ~15-bit accuracy of
  // the float path: validate within that tolerance (the paper's validation).
  Device d;
  Rng rng(17);
  const int n = 16;
  const auto a = rng.FloatVector(static_cast<std::size_t>(n) * n, -2.0f, 2.0f);
  const auto b = rng.FloatVector(static_cast<std::size_t>(n) * n, -2.0f, 2.0f);
  std::vector<float> gpu(a.size()), cpu(a.size());
  ops::SgemmF32(d, n, a, b, gpu);
  cpuref::SgemmF32(n, a, b, cpu);
  for (std::size_t i = 0; i < gpu.size(); ++i) {
    const float tol = std::max(1e-3f, std::fabs(cpu[i]) * 3e-4f);
    EXPECT_NEAR(gpu[i], cpu[i], tol) << i;
  }
}

TEST(OpsTest, Conv3x3MatchesCpu) {
  Device d(ExactOptions());
  Rng rng(18);
  const int w = 32, h = 17;
  const auto img = rng.ByteVector(static_cast<std::size_t>(w) * h);
  const std::vector<float> blur = {1 / 16.0f, 2 / 16.0f, 1 / 16.0f,
                                   2 / 16.0f, 4 / 16.0f, 2 / 16.0f,
                                   1 / 16.0f, 2 / 16.0f, 1 / 16.0f};
  std::vector<std::uint8_t> gpu(img.size()), cpu(img.size());
  ops::Conv3x3U8(d, w, h, img, blur, gpu);
  cpuref::Conv3x3U8(w, h, img, blur, cpu);
  int off_by_more = 0;
  for (std::size_t i = 0; i < img.size(); ++i) {
    if (std::abs(static_cast<int>(gpu[i]) - static_cast<int>(cpu[i])) > 1) {
      ++off_by_more;
    }
  }
  EXPECT_EQ(off_by_more, 0);  // at most rounding-boundary differences
}

TEST(OpsTest, Conv3x3EdgeDetectZeroOnFlatImage) {
  Device d(ExactOptions());
  const int w = 16, h = 8;
  std::vector<std::uint8_t> img(static_cast<std::size_t>(w) * h, 77);
  const std::vector<float> laplacian = {0, -1, 0, -1, 4, -1, 0, -1, 0};
  std::vector<std::uint8_t> gpu(img.size());
  ops::Conv3x3U8(d, w, h, img, laplacian, gpu);
  for (const auto v : gpu) EXPECT_EQ(v, 0);  // clamped at zero
}

TEST(OpsTest, ReduceSumExactOnIntegerValues) {
  // Exact ALU: integer-valued float sums are exact. (On the VideoCore model
  // each intermediate level passes through pack_f32's log2/exp2, so float
  // reductions there carry the expected ~15-bit accuracy instead — see
  // ReduceSumCloseOnVideoCoreModel.)
  Device d(ExactOptions());
  std::vector<float> v(1000);
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = static_cast<float>(i % 64);
  }
  const float gpu = ops::ReduceSumF32(d, v);
  const float cpu = cpuref::ReduceSumF32(v);
  EXPECT_EQ(gpu, cpu);
}

TEST(OpsTest, ReduceSumCloseOnVideoCoreModel) {
  Device d;  // VideoCore IV: SFU error accumulates across the pass tree
  std::vector<float> v(1000);
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = static_cast<float>(i % 64);
  }
  const float gpu = ops::ReduceSumF32(d, v);
  const float cpu = cpuref::ReduceSumF32(v);
  EXPECT_NEAR(gpu, cpu, std::fabs(cpu) * 1e-3f);
}

TEST(OpsTest, ReduceSumMatchesTreeOrderBitExact) {
  Device d(ExactOptions());
  Rng rng(19);
  const auto v = rng.FloatVector(4096, -1.0f, 1.0f);
  EXPECT_EQ(ops::ReduceSumF32(d, v), cpuref::ReduceSumTree4F32(v));
}

TEST(OpsTest, ReduceSumSmallSizes) {
  Device d(ExactOptions());
  for (const std::size_t n : {1u, 2u, 3u, 4u, 5u, 16u, 17u, 63u, 64u, 65u}) {
    std::vector<float> v(n, 1.0f);
    EXPECT_EQ(ops::ReduceSumF32(d, v), static_cast<float>(n)) << n;
  }
}

TEST(OpsTest, MinMaxMatchesCpu) {
  Device d(ExactOptions());
  Rng rng(20);
  const auto v = rng.FloatVector(1003, -500.0f, 500.0f);
  const auto [gmin, gmax] = ops::MinMaxF32(d, v);
  const auto [cmin, cmax] = cpuref::MinMaxF32(v);
  EXPECT_EQ(gmin, cmin);
  EXPECT_EQ(gmax, cmax);
}

TEST(OpsTest, MinMaxSingleElement) {
  Device d(ExactOptions());
  const std::vector<float> v = {-3.5f};
  const auto [mn, mx] = ops::MinMaxF32(d, v);
  EXPECT_EQ(mn, -3.5f);
  EXPECT_EQ(mx, -3.5f);
}

}  // namespace
}  // namespace mgpu::compute
