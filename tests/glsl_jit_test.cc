// Compiled-engine (glsl/jit.h) unit tests: knob resolution, eligibility,
// the content-hash module cache, and end-to-end fallback through the gles2
// context. The heavy bit-identity lockdown lives in glsl_vm_fuzz_test.cc
// and gles2_tiling_test.cc; this file pins the plumbing around it.
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "gles2/context.h"
#include "gles2_test_util.h"
#include "glsl/compile.h"
#include "glsl/jit.h"
#include "glsl/vm.h"
#include "gtest/gtest.h"

namespace mgpu::glsl {
namespace {

constexpr char kUniformFs[] = R"(
precision highp float;
varying vec4 v_in;
uniform float u_s0;
void main() {
  vec3 a = v_in.xyz * 2.0 + u_s0;
  vec3 b = a * a - v_in.wzy;
  gl_FragColor = vec4(a.x + b.y, b.z, a.y * 0.5, 1.0);
}
)";

// Lane-varying branch: the transpiler must decline (uniform lockstep only)
// and CompileProgram must return null, which IS the batched-VM fallback.
constexpr char kDivergentFs[] = R"(
precision highp float;
varying vec4 v_in;
void main() {
  float v = 0.25;
  if (v_in.x > 0.5) { v = v_in.y; }
  gl_FragColor = vec4(v, 0.0, 0.0, 1.0);
}
)";

std::shared_ptr<const VmProgram> Lower(const char* src) {
  CompileResult cr = CompileGlsl(src, Stage::kFragment);
  EXPECT_TRUE(cr.ok) << cr.info_log;
  if (!cr.ok) return nullptr;
  return LowerToBytecode(*cr.shader);
}

TEST(JitKnobTest, ZeroAlwaysDisables) {
  EXPECT_FALSE(jit::Resolve(0));
}

TEST(JitKnobTest, PositiveFollowsToolchainProbe) {
  EXPECT_EQ(jit::Resolve(1), jit::Available());
}

TEST(JitKnobTest, AutoHonorsMgpuJitEnv) {
  // CI reruns this binary with MGPU_JIT=0 exported (the fallback leg), so
  // save and restore whatever the harness set rather than assuming unset.
  const char* prev = std::getenv("MGPU_JIT");
  const std::string saved = prev != nullptr ? prev : "";
  ::unsetenv("MGPU_JIT");
  EXPECT_EQ(jit::Resolve(-1), jit::Available());
  ::setenv("MGPU_JIT", "0", 1);
  EXPECT_FALSE(jit::Resolve(-1));
  // Only the exact string "0" opts out (mirrors the MGPU_SIMD idiom of
  // explicit numeric knobs).
  ::setenv("MGPU_JIT", "1", 1);
  EXPECT_EQ(jit::Resolve(-1), jit::Available());
  if (prev != nullptr) {
    ::setenv("MGPU_JIT", saved.c_str(), 1);
  } else {
    ::unsetenv("MGPU_JIT");
  }
}

TEST(JitCompileTest, DivergentProgramIsDeclined) {
  const std::shared_ptr<const VmProgram> prog = Lower(kDivergentFs);
  ASSERT_NE(prog, nullptr);
  ASSERT_FALSE(prog->uniform_control_flow);
  EXPECT_EQ(jit::CompileProgram(*prog), nullptr);
}

TEST(JitCompileTest, UniformProgramCompilesAndCacheHitsOnRecompile) {
  if (!jit::Available()) GTEST_SKIP() << "no host compiler";
  const std::shared_ptr<const VmProgram> prog = Lower(kUniformFs);
  ASSERT_NE(prog, nullptr);
  ASSERT_TRUE(prog->uniform_control_flow);
  const std::shared_ptr<const jit::Module> a = jit::CompileProgram(*prog);
  ASSERT_NE(a, nullptr);
  EXPECT_NE(a->entry(), nullptr);
  // Same program, second compile: served from the content-hash .so cache
  // (observable here only as "still works"; the fuzz harness relies on the
  // cache to keep its per-seed compile cost a one-time charge).
  const std::shared_ptr<const jit::Module> b = jit::CompileProgram(*prog);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(b->entry(), nullptr);
}

TEST(JitCompileTest, AttachedModuleMatchesInterpreterBitForBit) {
  if (!jit::Available()) GTEST_SKIP() << "no host compiler";
  const std::shared_ptr<const VmProgram> prog = Lower(kUniformFs);
  ASSERT_NE(prog, nullptr);
  const std::shared_ptr<const jit::Module> mod = jit::CompileProgram(*prog);
  ASSERT_NE(mod, nullptr);

  ExactAlu alu_ref, alu_jit;
  VmExec ref(prog, alu_ref);
  VmExec jitted(prog, alu_jit);
  jitted.SetJit(mod);
  EXPECT_TRUE(jitted.has_jit());

  const int in_slot = ref.GlobalSlot("v_in");
  const int u_slot = ref.GlobalSlot("u_s0");
  const int color_slot = ref.GlobalSlot("gl_FragColor");
  ASSERT_GE(in_slot, 0);
  ASSERT_GE(color_slot, 0);
  for (VmExec* e : {&ref, &jitted}) {
    if (u_slot >= 0) e->GlobalAt(u_slot).SetF(0, 0.375f);
  }
  for (int n = 1; n <= kVmLanes; ++n) {
    for (int l = 0; l < n; ++l) {
      for (int k = 0; k < 4; ++k) {
        const float f = 0.0625f * static_cast<float>(l + 1) +
                        0.25f * static_cast<float>(k);
        ref.LaneGlobalAt(in_slot, l).SetF(k, f);
        jitted.LaneGlobalAt(in_slot, l).SetF(k, f);
      }
    }
    alu_ref.ResetCounts();
    alu_jit.ResetCounts();
    EXPECT_EQ(jitted.RunBatch(n), ref.RunBatch(n)) << "tail " << n;
    EXPECT_EQ(alu_jit.counts().alu, alu_ref.counts().alu) << "tail " << n;
    for (int l = 0; l < n; ++l) {
      for (int k = 0; k < 4; ++k) {
        EXPECT_EQ(jitted.LaneGlobalAt(color_slot, l).F(k),
                  ref.LaneGlobalAt(color_slot, l).F(k))
            << "tail " << n << " lane " << l << " comp " << k;
      }
    }
  }
}

}  // namespace
}  // namespace mgpu::glsl

namespace mgpu::gles2 {
namespace {

// End-to-end fallback: kCompiled with the jit knob forced off must draw —
// through the batched interpreter — byte-identically to kBatchedVm. This is
// the in-process twin of CI's MGPU_JIT=0 leg.
TEST(JitFallbackTest, CompiledEngineWithJitDisabledMatchesBatchedVm) {
  auto run = [](ExecEngine engine, int jit_knob) {
    ContextConfig cfg;
    cfg.width = 64;
    cfg.height = 64;
    cfg.exec_engine = engine;
    cfg.jit = jit_knob;
    Context ctx(cfg);
    const GLuint prog = testutil::BuildProgramOrDie(
        ctx, testutil::kPassthroughVs,
        R"(
precision highp float;
varying vec2 v_uv;
void main() { gl_FragColor = vec4(fract(v_uv * 9.0), v_uv.x, 1.0); }
)");
    ctx.Clear(GL_COLOR_BUFFER_BIT);
    testutil::DrawFullscreenQuad(ctx, prog);
    EXPECT_EQ(ctx.GetError(), static_cast<GLenum>(GL_NO_ERROR));
    return testutil::ReadRgba(ctx, 64, 64);
  };
  const std::vector<std::uint8_t> batched = run(ExecEngine::kBatchedVm, -1);
  EXPECT_EQ(run(ExecEngine::kCompiled, 0), batched);
  EXPECT_EQ(run(ExecEngine::kCompiled, -1), batched);
}

}  // namespace
}  // namespace mgpu::gles2
