// Shared helpers for GLSL front-end and interpreter tests.
#ifndef MGPU_TESTS_GLSL_TEST_UTIL_H_
#define MGPU_TESTS_GLSL_TEST_UTIL_H_

#include <array>
#include <memory>
#include <string>

#include "glsl/alu.h"
#include "glsl/compile.h"
#include "glsl/interp.h"

#include "gtest/gtest.h"

namespace mgpu::glsl::testutil {

// Compiles and expects success; fails the test with the info log otherwise.
inline std::unique_ptr<CompiledShader> MustCompile(
    const std::string& src, Stage stage = Stage::kFragment,
    const Limits& limits = Limits{}) {
  CompileResult r = CompileGlsl(src, stage, limits);
  EXPECT_TRUE(r.ok) << "compile failed:\n" << r.info_log << "\nsource:\n"
                    << src;
  return std::move(r.shader);
}

// Compiles and expects failure; returns the info log.
inline std::string MustFail(const std::string& src,
                            Stage stage = Stage::kFragment,
                            const Limits& limits = Limits{}) {
  CompileResult r = CompileGlsl(src, stage, limits);
  EXPECT_FALSE(r.ok) << "expected compile error for:\n" << src;
  return r.info_log;
}

// Runs a fragment shader body that assigns gl_FragColor and returns the
// resulting vec4. The body is wrapped with highp default precision.
inline std::array<float, 4> RunFragment(const std::string& body,
                                        AluModel& alu) {
  const std::string src = "precision highp float;\nvoid main() {\n" + body +
                          "\n}\n";
  auto shader = MustCompile(src, Stage::kFragment);
  if (shader == nullptr) return {};
  ShaderExec exec(*shader, alu);
  EXPECT_TRUE(exec.Run());
  const int slot = exec.GlobalSlot("gl_FragColor");
  EXPECT_GE(slot, 0);
  const Value& v = exec.GlobalAt(slot);
  return {v.F(0), v.F(1), v.F(2), v.F(3)};
}

inline std::array<float, 4> RunFragment(const std::string& body) {
  ExactAlu alu;
  return RunFragment(body, alu);
}

// Runs a full fragment shader (caller provides precision + main) and returns
// gl_FragColor.
inline std::array<float, 4> RunFragmentSource(const std::string& src,
                                              AluModel& alu) {
  auto shader = MustCompile(src, Stage::kFragment);
  if (shader == nullptr) return {};
  ShaderExec exec(*shader, alu);
  EXPECT_TRUE(exec.Run());
  const Value& v = exec.GlobalAt(exec.GlobalSlot("gl_FragColor"));
  return {v.F(0), v.F(1), v.F(2), v.F(3)};
}

}  // namespace mgpu::glsl::testutil

#endif  // MGPU_TESTS_GLSL_TEST_UTIL_H_
