// Shade-state-cache invariants. The cache (gles2::ShadeStateCache) keeps
// per-worker VmExec clones, forked ALU counter shards and TMU-cache models
// alive across draws, refreshing only uniforms/globals per draw — and it
// must be *invisible*: a warm-cache draw stream produces the same
// framebuffer bytes and the same ALU/SFU/TMU operation counts as cold-state
// draws and as the serial reference path. Relinking a program, switching
// the execution engine, and changing the worker count mid-stream must all
// drop stale entries without perturbing results.
#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "gles2/context.h"
#include "gles2_test_util.h"
#include "glsl/alu.h"
#include "gtest/gtest.h"
#include "vc4/alu.h"
#include "vc4/profiles.h"

namespace mgpu::gles2 {
namespace {

constexpr int kW = 256;  // 4x4 tile grid
constexpr int kH = 256;

constexpr char kVs[] = R"(
attribute vec2 a_pos;
uniform vec2 u_offset;
uniform float u_scale;
varying vec2 v_uv;
void main() {
  v_uv = a_pos * 4.0 + 0.5;
  gl_Position = vec4(a_pos * u_scale + u_offset, 0.0, 1.0);
}
)";

constexpr char kTexturedFs[] = R"(
precision highp float;
varying vec2 v_uv;
uniform sampler2D u_tex;
uniform vec4 u_tint;
void main() {
  gl_FragColor = texture2D(u_tex, v_uv) * u_tint;
}
)";

constexpr char kPlainFs[] = R"(
precision highp float;
varying vec2 v_uv;
uniform vec4 u_tint;
void main() {
  gl_FragColor = vec4(v_uv.x * u_tint.x, v_uv.y * u_tint.y, u_tint.z, 1.0);
}
)";

constexpr std::array<float, 6> kTri = {0.0f, 0.0f, 1.0f, 0.0f, 0.0f, 1.0f};

struct DrawSpec {
  float scale;  // triangle size: 0.05 ~ one tile, 1.8 ~ every tile
  float ox, oy;
  std::array<float, 4> tint;
};

// A mix of tiny draws (single tile: the serial path, cached under thread
// count 1) and spanning draws (parallel shading; every slot used, including
// slots left stale by smaller draws before them). Four draws are tiny and
// four span several tiles, so a warm 2+-thread context builds exactly two
// entries — one serial, one parallel — and hits on every draw after each
// entry's first.
constexpr std::size_t kSpanningDraws = 4;
constexpr std::size_t kTinyDraws = 4;
const std::vector<DrawSpec>& Corpus() {
  static const std::vector<DrawSpec> specs = {
      {0.05f, -0.9f, -0.9f, {1.0f, 0.2f, 0.1f, 1.0f}},
      {0.05f, 0.4f, 0.3f, {0.3f, 0.9f, 0.5f, 1.0f}},
      {1.8f, -0.9f, -0.9f, {0.2f, 0.4f, 0.8f, 0.5f}},
      {0.08f, -0.2f, 0.7f, {0.9f, 0.9f, 0.1f, 1.0f}},
      {1.2f, -0.5f, -0.6f, {0.1f, 0.7f, 0.6f, 0.8f}},
      {0.9f, -0.2f, -0.9f, {0.8f, 0.3f, 0.2f, 0.7f}},
      {0.05f, 0.8f, -0.8f, {0.6f, 0.1f, 0.9f, 1.0f}},
      {1.5f, -0.7f, -0.4f, {0.4f, 0.6f, 0.3f, 0.9f}},
  };
  return specs;
}

struct RunResult {
  std::vector<std::uint8_t> fb;
  glsl::OpCounts counts;
};

void ExpectSameCounts(const glsl::OpCounts& a, const glsl::OpCounts& b,
                      const char* what) {
  EXPECT_EQ(a.alu, b.alu) << what;
  EXPECT_EQ(a.sfu, b.sfu) << what;
  EXPECT_EQ(a.sfu_trans, b.sfu_trans) << what;
  EXPECT_EQ(a.tmu, b.tmu) << what;
  EXPECT_EQ(a.tmu_miss, b.tmu_miss) << what;
}

class StormRig {
 public:
  // `threads`: initial shader thread count. `textured`: sample a texture in
  // the fragment shader so TMU / TMU-miss counts are exercised too.
  StormRig(int threads, bool textured, glsl::AluModel* alu = nullptr)
      : ctx_(MakeConfig(threads), alu) {
    program_ = testutil::BuildProgramOrDie(
        ctx_, kVs, textured ? kTexturedFs : kPlainFs);
    ctx_.UseProgram(program_);
    if (textured) {
      GLuint tex = 0;
      ctx_.GenTextures(1, &tex);
      ctx_.ActiveTexture(GL_TEXTURE0);
      ctx_.BindTexture(GL_TEXTURE_2D, tex);
      std::vector<std::uint8_t> texels;
      for (int i = 0; i < 16 * 16; ++i) {
        texels.push_back(static_cast<std::uint8_t>(i * 7));
        texels.push_back(static_cast<std::uint8_t>(255 - i));
        texels.push_back(static_cast<std::uint8_t>(i * 3));
        texels.push_back(255);
      }
      ctx_.TexImage2D(GL_TEXTURE_2D, 0, GL_RGBA, 16, 16, 0, GL_RGBA,
                      GL_UNSIGNED_BYTE, texels.data());
      ctx_.TexParameteri(GL_TEXTURE_2D, GL_TEXTURE_MIN_FILTER, GL_NEAREST);
      ctx_.TexParameteri(GL_TEXTURE_2D, GL_TEXTURE_MAG_FILTER, GL_NEAREST);
      ctx_.Uniform1i(ctx_.GetUniformLocation(program_, "u_tex"), 0);
    }
    const GLint a_pos = ctx_.GetAttribLocation(program_, "a_pos");
    ctx_.EnableVertexAttribArray(static_cast<GLuint>(a_pos));
    ctx_.VertexAttribPointer(static_cast<GLuint>(a_pos), 2, GL_FLOAT,
                             GL_FALSE, 0, kTri.data());
    ctx_.ClearColor(0.0f, 0.0f, 0.0f, 1.0f);
    ctx_.Clear(GL_COLOR_BUFFER_BIT);
  }

  void Draw(const DrawSpec& d) {
    ctx_.Uniform2f(ctx_.GetUniformLocation(program_, "u_offset"), d.ox, d.oy);
    ctx_.Uniform1f(ctx_.GetUniformLocation(program_, "u_scale"), d.scale);
    ctx_.Uniform4f(ctx_.GetUniformLocation(program_, "u_tint"), d.tint[0],
                   d.tint[1], d.tint[2], d.tint[3]);
    ctx_.DrawArrays(GL_TRIANGLES, 0, 3);
    ASSERT_EQ(ctx_.GetError(), static_cast<GLenum>(GL_NO_ERROR));
  }

  [[nodiscard]] RunResult Finish() {
    RunResult r;
    r.fb = testutil::ReadRgba(ctx_, kW, kH);
    r.counts = ctx_.alu().counts();
    return r;
  }

  [[nodiscard]] Context& ctx() { return ctx_; }
  [[nodiscard]] GLuint program() const { return program_; }

 private:
  static ContextConfig MakeConfig(int threads) {
    ContextConfig cfg;
    cfg.width = kW;
    cfg.height = kH;
    cfg.shader_threads = threads;
    return cfg;
  }

  Context ctx_;
  GLuint program_ = 0;
};

// ---------------------------------------------------------------------------
// Differential corpus: warm cache == cold state == serial reference
// ---------------------------------------------------------------------------

TEST(ShadeStateCacheTest, WarmDrawsAreByteAndCountIdenticalToColdDraws) {
  StormRig warm(/*threads=*/2, /*textured=*/true);
  StormRig cold(/*threads=*/2, /*textured=*/true);
  StormRig serial(/*threads=*/1, /*textured=*/true);
  for (const DrawSpec& d : Corpus()) {
    warm.Draw(d);
    // Forcing the knob before every draw clears the cache: every cold draw
    // rebuilds its worker state from scratch, the pre-cache behaviour.
    cold.ctx().SetShaderThreads(2);
    cold.Draw(d);
    serial.Draw(d);
  }
  // The warm context really did reuse state: one parallel entry plus one
  // serial entry (single-tile draws cache their plumbing under thread
  // count 1), a hit on every draw after each entry's first. The cold
  // context never hit (its cache is cleared before every draw).
  EXPECT_EQ(warm.ctx().shade_state_cache().entry_count(), 2u);
  EXPECT_EQ(warm.ctx().shade_state_cache().hits(),
            (kSpanningDraws - 1) + (kTinyDraws - 1));
  EXPECT_EQ(warm.ctx().shade_state_cache().misses(), 2u);
  EXPECT_EQ(cold.ctx().shade_state_cache().hits(), 0u);
  EXPECT_EQ(cold.ctx().shade_state_cache().misses(),
            kSpanningDraws + kTinyDraws);

  const RunResult w = warm.Finish();
  const RunResult c = cold.Finish();
  const RunResult s = serial.Finish();
  EXPECT_EQ(w.fb, c.fb) << "warm vs cold framebuffer";
  EXPECT_EQ(w.fb, s.fb) << "warm vs serial framebuffer";
  ExpectSameCounts(w.counts, c.counts, "warm vs cold counts");
  ExpectSameCounts(w.counts, s.counts, "warm vs serial counts");
}

TEST(ShadeStateCacheTest, WarmDrawsMatchSerialUnderVc4Alu) {
  vc4::Vc4Alu warm_alu(vc4::VideoCoreIV());
  vc4::Vc4Alu serial_alu(vc4::VideoCoreIV());
  StormRig warm(/*threads=*/3, /*textured=*/true, &warm_alu);
  StormRig serial(/*threads=*/1, /*textured=*/true, &serial_alu);
  for (const DrawSpec& d : Corpus()) {
    warm.Draw(d);
    serial.Draw(d);
  }
  const RunResult w = warm.Finish();
  const RunResult s = serial.Finish();
  EXPECT_EQ(w.fb, s.fb);
  ExpectSameCounts(w.counts, s.counts, "vc4 warm vs serial");
}

// ---------------------------------------------------------------------------
// Invalidation: relink, engine switch, thread-count switch
// ---------------------------------------------------------------------------

TEST(ShadeStateCacheTest, RelinkDropsStaleEntriesAndUsesNewBytecode) {
  StormRig warm(/*threads=*/2, /*textured=*/false);
  StormRig serial(/*threads=*/1, /*textured=*/false);
  for (const DrawSpec& d : Corpus()) {
    warm.Draw(d);
    serial.Draw(d);
  }
  // One parallel entry + one serial entry (the corpus has both shapes).
  ASSERT_EQ(warm.ctx().shade_state_cache().entry_count(), 2u);

  // Relink both programs with a different fragment shader. The cached
  // clones pin the old bytecode; the entries must be gone...
  auto relink = [](StormRig& rig) {
    Context& ctx = rig.ctx();
    const GLuint fs = testutil::CompileShaderOrDie(
        ctx, GL_FRAGMENT_SHADER,
        "precision highp float;\n"
        "varying vec2 v_uv;\n"
        "uniform vec4 u_tint;\n"
        "void main() { gl_FragColor = vec4(u_tint.y, v_uv.x * 0.5, "
        "u_tint.x, 1.0); }\n");
    ctx.AttachShader(rig.program(), fs);
    ctx.LinkProgram(rig.program());
    GLint ok = GL_FALSE;
    ctx.GetProgramiv(rig.program(), GL_LINK_STATUS, &ok);
    ASSERT_EQ(ok, GL_TRUE);
    ctx.UseProgram(rig.program());
    const GLint a_pos = ctx.GetAttribLocation(rig.program(), "a_pos");
    ctx.EnableVertexAttribArray(static_cast<GLuint>(a_pos));
    ctx.VertexAttribPointer(static_cast<GLuint>(a_pos), 2, GL_FLOAT,
                            GL_FALSE, 0, kTri.data());
  };
  relink(warm);
  relink(serial);
  EXPECT_EQ(warm.ctx().shade_state_cache().entry_count(), 0u);

  // ...and post-relink draws must match the serial reference bit-for-bit
  // (stale clones would still run the old shader).
  for (const DrawSpec& d : Corpus()) {
    warm.Draw(d);
    serial.Draw(d);
  }
  const RunResult w = warm.Finish();
  const RunResult s = serial.Finish();
  EXPECT_EQ(w.fb, s.fb);
  ExpectSameCounts(w.counts, s.counts, "post-relink warm vs serial");
}

TEST(ShadeStateCacheTest, DeleteProgramDropsItsEntries) {
  StormRig warm(/*threads=*/2, /*textured=*/false);
  warm.Draw(Corpus()[2]);  // a spanning draw, so an entry is built
  ASSERT_EQ(warm.ctx().shade_state_cache().entry_count(), 1u);
  warm.ctx().DeleteProgram(warm.program());
  EXPECT_EQ(warm.ctx().shade_state_cache().entry_count(), 0u);
}

TEST(ShadeStateCacheTest, SwitchingExecEngineDropsCacheAndStaysIdentical) {
  StormRig warm(/*threads=*/2, /*textured=*/true);
  StormRig serial(/*threads=*/1, /*textured=*/true);
  int i = 0;
  for (const DrawSpec& d : Corpus()) {
    // Hop engines mid-stream: VM -> tree-walk -> VM. Cached VM clones must
    // not survive the hop (they are engine-specific state).
    if (i == 2) {
      warm.ctx().SetExecEngine(ExecEngine::kTreeWalk);
      EXPECT_EQ(warm.ctx().shade_state_cache().entry_count(), 0u);
    }
    if (i == 4) warm.ctx().SetExecEngine(ExecEngine::kBytecodeVm);
    warm.Draw(d);
    serial.Draw(d);
    ++i;
  }
  const RunResult w = warm.Finish();
  const RunResult s = serial.Finish();
  EXPECT_EQ(w.fb, s.fb);
  ExpectSameCounts(w.counts, s.counts, "engine-hop warm vs serial");
}

// ---------------------------------------------------------------------------
// LRU capacity
// ---------------------------------------------------------------------------

TEST(ShadeStateCacheTest, DefaultCapacityIsSixtyFour) {
  ContextConfig cfg;
  Context ctx(cfg);
  EXPECT_EQ(ctx.shade_state_cache().capacity(), 64u);
}

TEST(ShadeStateCacheTest, LruCapEvictsLeastRecentlyDrawnAndStaysCorrect) {
  // A 2-entry cache under a 4-program round-robin: every program's entry is
  // evicted before its next draw, so the stream runs at maximum churn — and
  // must still produce exactly the bytes of an uncapped context.
  ContextConfig capped_cfg;
  capped_cfg.width = kW;
  capped_cfg.height = kH;
  capped_cfg.shader_threads = 1;
  capped_cfg.shade_cache_capacity = 2;
  Context capped(capped_cfg);
  ContextConfig roomy_cfg = capped_cfg;
  roomy_cfg.shade_cache_capacity = 64;
  Context roomy(roomy_cfg);

  constexpr int kPrograms = 4;
  const auto build = [&](Context& ctx) {
    std::vector<GLuint> progs;
    for (int p = 0; p < kPrograms; ++p) {
      const std::string fs =
          "precision highp float;\n"
          "varying vec2 v_uv;\n"
          "uniform vec4 u_tint;\n"
          "void main() { gl_FragColor = vec4(v_uv.x * u_tint.x, " +
          std::to_string(0.1 + 0.2 * p) + ", v_uv.y, 1.0); }\n";
      progs.push_back(testutil::BuildProgramOrDie(ctx, kVs, fs.c_str()));
    }
    return progs;
  };
  const std::vector<GLuint> capped_progs = build(capped);
  const std::vector<GLuint> roomy_progs = build(roomy);

  const auto draw_round_robin = [&](Context& ctx,
                                    const std::vector<GLuint>& progs) {
    ctx.ClearColor(0.0f, 0.0f, 0.0f, 1.0f);
    ctx.Clear(GL_COLOR_BUFFER_BIT);
    for (int round = 0; round < 3; ++round) {
      for (int p = 0; p < kPrograms; ++p) {
        const GLuint prog = progs[static_cast<std::size_t>(p)];
        ctx.UseProgram(prog);
        const GLint a_pos = ctx.GetAttribLocation(prog, "a_pos");
        ctx.EnableVertexAttribArray(static_cast<GLuint>(a_pos));
        ctx.VertexAttribPointer(static_cast<GLuint>(a_pos), 2, GL_FLOAT,
                                GL_FALSE, 0, kTri.data());
        ctx.Uniform2f(ctx.GetUniformLocation(prog, "u_offset"),
                      -0.9f + 0.4f * p, -0.9f + 0.3f * round);
        ctx.Uniform1f(ctx.GetUniformLocation(prog, "u_scale"), 0.3f);
        ctx.Uniform4f(ctx.GetUniformLocation(prog, "u_tint"), 1.0f, 0.5f,
                      0.25f, 1.0f);
        ctx.DrawArrays(GL_TRIANGLES, 0, 3);
        ASSERT_EQ(ctx.GetError(), static_cast<GLenum>(GL_NO_ERROR));
      }
    }
  };
  draw_round_robin(capped, capped_progs);
  draw_round_robin(roomy, roomy_progs);

  EXPECT_LE(capped.shade_state_cache().entry_count(), 2u);
  EXPECT_GT(capped.shade_state_cache().evictions(), 0u);
  EXPECT_EQ(roomy.shade_state_cache().evictions(), 0u);
  EXPECT_EQ(roomy.shade_state_cache().entry_count(),
            static_cast<std::size_t>(kPrograms));
  EXPECT_EQ(testutil::ReadRgba(capped, kW, kH),
            testutil::ReadRgba(roomy, kW, kH))
      << "eviction-churned draws must be byte-identical to the roomy cache";
}

TEST(ShadeStateCacheTest, ChangingShaderThreadsMidStreamStaysIdentical) {
  StormRig warm(/*threads=*/2, /*textured=*/true);
  StormRig serial(/*threads=*/1, /*textured=*/true);
  // One knob setting per corpus draw.
  const std::array<int, 8> threads_at = {2, 2, 4, 4, 1, 3, 3, 2};
  ASSERT_EQ(threads_at.size(), Corpus().size());
  int i = 0;
  for (const DrawSpec& d : Corpus()) {
    if (i > 0 && threads_at[static_cast<std::size_t>(i)] !=
                     threads_at[static_cast<std::size_t>(i - 1)]) {
      warm.ctx().SetShaderThreads(threads_at[static_cast<std::size_t>(i)]);
      EXPECT_EQ(warm.ctx().shade_state_cache().entry_count(), 0u)
          << "thread-count change must drop all entries";
    }
    warm.Draw(d);
    serial.Draw(d);
    ++i;
  }
  const RunResult w = warm.Finish();
  const RunResult s = serial.Finish();
  EXPECT_EQ(w.fb, s.fb);
  ExpectSameCounts(w.counts, s.counts, "thread-hop warm vs serial");
}

}  // namespace
}  // namespace mgpu::gles2
