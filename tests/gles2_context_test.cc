// End-to-end GL pipeline through the Context API: state, errors, draws,
// uniforms, textures-in-shaders, and the ES 2.0 restrictions the paper
// enumerates (no GL_QUADS, no float data, single output).
#include "gles2/context.h"

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "common/strings.h"
#include "gles2_test_util.h"
#include "gtest/gtest.h"

namespace mgpu::gles2 {
namespace {

using testutil::BuildProgramOrDie;
using testutil::CompileShaderOrDie;
using testutil::DrawFullscreenQuad;
using testutil::ReadRgba;

ContextConfig SmallConfig(int w = 4, int h = 4) {
  ContextConfig c;
  c.width = w;
  c.height = h;
  return c;
}

TEST(ContextTest, ClearAndReadPixels) {
  Context ctx(SmallConfig());
  ctx.ClearColor(1.0f, 0.5f, 0.0f, 1.0f);
  ctx.Clear(GL_COLOR_BUFFER_BIT);
  const auto px = ReadRgba(ctx, 4, 4);
  EXPECT_EQ(px[0], 255);
  EXPECT_EQ(px[1], 128);  // round(0.5 * 255)
  EXPECT_EQ(px[2], 0);
  EXPECT_EQ(px[3], 255);
  EXPECT_EQ(ctx.GetError(), GL_NO_ERROR);
}

TEST(ContextTest, SolidColorQuadFillsFramebuffer) {
  Context ctx(SmallConfig());
  const GLuint p = BuildProgramOrDie(
      ctx, testutil::kPassthroughVs,
      "precision mediump float;\nvoid main() { gl_FragColor = vec4(0.0, "
      "1.0, 0.0, 1.0); }");
  DrawFullscreenQuad(ctx, p);
  const auto px = ReadRgba(ctx, 4, 4);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(px[i * 4 + 0], 0);
    EXPECT_EQ(px[i * 4 + 1], 255);
    EXPECT_EQ(px[i * 4 + 3], 255);
  }
  EXPECT_EQ(ctx.GetError(), GL_NO_ERROR);
}

TEST(ContextTest, VaryingGradientMatchesPixelCenters) {
  Context ctx(SmallConfig(8, 8));
  const GLuint p = BuildProgramOrDie(
      ctx, testutil::kPassthroughVs,
      "precision highp float;\nvarying vec2 v_uv;\nvoid main() { "
      "gl_FragColor = vec4(v_uv, 0.0, 1.0); }");
  DrawFullscreenQuad(ctx, p);
  const auto px = ReadRgba(ctx, 8, 8);
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      const float u = (x + 0.5f) / 8.0f;
      const float v = (y + 0.5f) / 8.0f;
      const int r = px[(y * 8 + x) * 4];
      const int g = px[(y * 8 + x) * 4 + 1];
      EXPECT_EQ(r, static_cast<int>(std::floor(u * 255.0f + 0.5f)));
      EXPECT_EQ(g, static_cast<int>(std::floor(v * 255.0f + 0.5f)));
    }
  }
}

TEST(ContextTest, UniformsAffectDraw) {
  Context ctx(SmallConfig());
  const GLuint p = BuildProgramOrDie(
      ctx, testutil::kPassthroughVs,
      "precision mediump float;\nuniform vec4 u_color;\nvoid main() { "
      "gl_FragColor = u_color; }");
  ctx.UseProgram(p);
  const GLint loc = ctx.GetUniformLocation(p, "u_color");
  ASSERT_GE(loc, 0);
  ctx.Uniform4f(loc, 0.2f, 0.4f, 0.6f, 0.8f);
  DrawFullscreenQuad(ctx, p);
  const auto px = ReadRgba(ctx, 4, 4);
  EXPECT_EQ(px[0], 51);
  EXPECT_EQ(px[1], 102);
  EXPECT_EQ(px[2], 153);
  EXPECT_EQ(px[3], 204);
}

TEST(ContextTest, UniformArrayElements) {
  Context ctx(SmallConfig());
  const GLuint p = BuildProgramOrDie(
      ctx, testutil::kPassthroughVs,
      "precision mediump float;\nuniform float u_k[3];\nvoid main() { "
      "gl_FragColor = vec4(u_k[0], u_k[1], u_k[2], 1.0); }");
  ctx.UseProgram(p);
  const GLint base = ctx.GetUniformLocation(p, "u_k");
  const GLint e2 = ctx.GetUniformLocation(p, "u_k[2]");
  ASSERT_GE(base, 0);
  ASSERT_EQ(e2, base + 2);
  const float all[3] = {0.1f, 0.2f, 0.3f};
  ctx.Uniform1fv(base, 3, all);
  DrawFullscreenQuad(ctx, p);
  const auto px = ReadRgba(ctx, 4, 4);
  EXPECT_EQ(px[0], 26);
  EXPECT_EQ(px[1], 51);
  EXPECT_EQ(px[2], 77);
}

TEST(ContextTest, TextureSamplingInFragmentShader) {
  Context ctx(SmallConfig(2, 2));
  GLuint tex;
  ctx.GenTextures(1, &tex);
  ctx.ActiveTexture(GL_TEXTURE0 + 1);
  ctx.BindTexture(GL_TEXTURE_2D, tex);
  const std::vector<std::uint8_t> data = {
      10, 0, 0, 255, 20, 0, 0, 255,
      30, 0, 0, 255, 40, 0, 0, 255,
  };
  ctx.TexImage2D(GL_TEXTURE_2D, 0, GL_RGBA, 2, 2, 0, GL_RGBA,
                 GL_UNSIGNED_BYTE, data.data());
  ctx.TexParameteri(GL_TEXTURE_2D, GL_TEXTURE_MIN_FILTER, GL_NEAREST);
  ctx.TexParameteri(GL_TEXTURE_2D, GL_TEXTURE_MAG_FILTER, GL_NEAREST);
  const GLuint p = BuildProgramOrDie(
      ctx, testutil::kPassthroughVs,
      "precision mediump float;\nvarying vec2 v_uv;\nuniform sampler2D "
      "u_tex;\nvoid main() { gl_FragColor = texture2D(u_tex, v_uv); }");
  ctx.UseProgram(p);
  ctx.Uniform1i(ctx.GetUniformLocation(p, "u_tex"), 1);
  DrawFullscreenQuad(ctx, p);
  const auto px = ReadRgba(ctx, 2, 2);
  EXPECT_EQ(px[0 * 4], 10);
  EXPECT_EQ(px[1 * 4], 20);
  EXPECT_EQ(px[2 * 4], 30);
  EXPECT_EQ(px[3 * 4], 40);
  EXPECT_EQ(ctx.GetError(), GL_NO_ERROR);
}

TEST(ContextTest, QuadPrimitiveRejected) {
  // Paper limitation #2: only triangles (and points/lines) exist in ES 2.0.
  Context ctx(SmallConfig());
  const GLuint p = BuildProgramOrDie(
      ctx, testutil::kPassthroughVs,
      "precision mediump float;\nvoid main() { gl_FragColor = vec4(1.0); }");
  ctx.UseProgram(p);
  constexpr GLenum kDesktopGlQuads = 0x0007;
  ctx.DrawArrays(kDesktopGlQuads, 0, 4);
  EXPECT_EQ(ctx.GetError(), GL_INVALID_ENUM);
}

TEST(ContextTest, FloatTextureUploadSetsError) {
  Context ctx(SmallConfig());
  GLuint tex;
  ctx.GenTextures(1, &tex);
  ctx.BindTexture(GL_TEXTURE_2D, tex);
  const float data[4] = {1.0f, 2.0f, 3.0f, 4.0f};
  ctx.TexImage2D(GL_TEXTURE_2D, 0, GL_RGBA, 1, 1, 0, GL_RGBA, GL_FLOAT, data);
  EXPECT_EQ(ctx.GetError(), GL_INVALID_ENUM);
}

TEST(ContextTest, ReadPixelsOnlyRgbaUnsignedByte) {
  // Paper limitation #7 context: the readback path is byte-RGBA only.
  Context ctx(SmallConfig());
  std::vector<float> fdata(16 * 4);
  ctx.ReadPixels(0, 0, 4, 4, GL_RGBA, GL_FLOAT, fdata.data());
  EXPECT_EQ(ctx.GetError(), GL_INVALID_ENUM);
}

TEST(ContextTest, MissingVertexShaderFailsLink) {
  // Paper challenge 1: ES 2.0 requires BOTH programmable stages.
  Context ctx(SmallConfig());
  const GLuint fs = CompileShaderOrDie(
      ctx, GL_FRAGMENT_SHADER,
      "precision mediump float;\nvoid main() { gl_FragColor = vec4(1.0); }");
  const GLuint p = ctx.CreateProgram();
  ctx.AttachShader(p, fs);
  ctx.LinkProgram(p);
  GLint ok = GL_TRUE;
  ctx.GetProgramiv(p, GL_LINK_STATUS, &ok);
  EXPECT_EQ(ok, GL_FALSE);
  EXPECT_TRUE(Contains(ctx.GetProgramInfoLog(p), "vertex"));
}

TEST(ContextTest, VaryingTypeMismatchFailsLink) {
  Context ctx(SmallConfig());
  const GLuint vs = CompileShaderOrDie(
      ctx, GL_VERTEX_SHADER,
      "attribute vec2 a_pos;\nvarying vec2 v_x;\nvoid main() { v_x = a_pos; "
      "gl_Position = vec4(a_pos, 0.0, 1.0); }");
  const GLuint fs = CompileShaderOrDie(
      ctx, GL_FRAGMENT_SHADER,
      "precision mediump float;\nvarying vec3 v_x;\nvoid main() { "
      "gl_FragColor = vec4(v_x, 1.0); }");
  const GLuint p = ctx.CreateProgram();
  ctx.AttachShader(p, vs);
  ctx.AttachShader(p, fs);
  ctx.LinkProgram(p);
  GLint ok = GL_TRUE;
  ctx.GetProgramiv(p, GL_LINK_STATUS, &ok);
  EXPECT_EQ(ok, GL_FALSE);
}

TEST(ContextTest, CompileErrorReportedInInfoLog) {
  Context ctx(SmallConfig());
  const GLuint s = ctx.CreateShader(GL_FRAGMENT_SHADER);
  ctx.ShaderSource(s, "void main() { gl_FragColor = 1.0; }");
  ctx.CompileShader(s);
  GLint ok = GL_TRUE;
  ctx.GetShaderiv(s, GL_COMPILE_STATUS, &ok);
  EXPECT_EQ(ok, GL_FALSE);
  EXPECT_FALSE(ctx.GetShaderInfoLog(s).empty());
}

TEST(ContextTest, GlFragDataZeroWorksAsOutput) {
  Context ctx(SmallConfig());
  const GLuint p = BuildProgramOrDie(
      ctx, testutil::kPassthroughVs,
      "precision mediump float;\nvoid main() { gl_FragData[0] = vec4(0.0, "
      "0.0, 1.0, 1.0); }");
  DrawFullscreenQuad(ctx, p);
  const auto px = ReadRgba(ctx, 4, 4);
  EXPECT_EQ(px[2], 255);
}

TEST(ContextTest, ScissorRestrictsDraw) {
  Context ctx(SmallConfig(4, 4));
  const GLuint p = BuildProgramOrDie(
      ctx, testutil::kPassthroughVs,
      "precision mediump float;\nvoid main() { gl_FragColor = vec4(1.0); }");
  ctx.Enable(GL_SCISSOR_TEST);
  ctx.Scissor(0, 0, 2, 2);
  DrawFullscreenQuad(ctx, p);
  const auto px = ReadRgba(ctx, 4, 4);
  EXPECT_EQ(px[(0 * 4 + 0) * 4], 255);
  EXPECT_EQ(px[(0 * 4 + 1) * 4], 255);
  EXPECT_EQ(px[(0 * 4 + 2) * 4], 0);
  EXPECT_EQ(px[(3 * 4 + 3) * 4], 0);
}

TEST(ContextTest, DepthTestKeepsNearestFragment) {
  Context ctx(SmallConfig(2, 2));
  const GLuint p = BuildProgramOrDie(
      ctx,
      "attribute vec3 a_pos;\nvoid main() { gl_Position = vec4(a_pos, 1.0); "
      "}",
      "precision mediump float;\nuniform vec4 u_c;\nvoid main() { "
      "gl_FragColor = u_c; }");
  ctx.UseProgram(p);
  ctx.Enable(GL_DEPTH_TEST);
  ctx.Clear(GL_COLOR_BUFFER_BIT | GL_DEPTH_BUFFER_BIT);
  const GLint loc = ctx.GetAttribLocation(p, "a_pos");
  const GLint c = ctx.GetUniformLocation(p, "u_c");
  ctx.EnableVertexAttribArray(static_cast<GLuint>(loc));
  // Near quad (z = 0) drawn first, red.
  const float near_quad[] = {-1, -1, 0, 1, -1, 0, 1, 1, 0,
                             -1, -1, 0, 1, 1, 0, -1, 1, 0};
  ctx.VertexAttribPointer(static_cast<GLuint>(loc), 3, GL_FLOAT, GL_FALSE, 0,
                          near_quad);
  ctx.Uniform4f(c, 1.0f, 0.0f, 0.0f, 1.0f);
  ctx.DrawArrays(GL_TRIANGLES, 0, 6);
  // Far quad (z = 0.5) drawn second, blue: must lose the depth test.
  const float far_quad[] = {-1, -1, 0.5f, 1, -1, 0.5f, 1, 1, 0.5f,
                            -1, -1, 0.5f, 1, 1, 0.5f, -1, 1, 0.5f};
  ctx.VertexAttribPointer(static_cast<GLuint>(loc), 3, GL_FLOAT, GL_FALSE, 0,
                          far_quad);
  ctx.Uniform4f(c, 0.0f, 0.0f, 1.0f, 1.0f);
  ctx.DrawArrays(GL_TRIANGLES, 0, 6);
  const auto px = ReadRgba(ctx, 2, 2);
  EXPECT_EQ(px[0], 255);
  EXPECT_EQ(px[2], 0);
}

TEST(ContextTest, BlendingAdds) {
  Context ctx(SmallConfig(1, 1));
  const GLuint p = BuildProgramOrDie(
      ctx, testutil::kPassthroughVs,
      "precision mediump float;\nuniform vec4 u_c;\nvoid main() { "
      "gl_FragColor = u_c; }");
  ctx.UseProgram(p);
  const GLint c = ctx.GetUniformLocation(p, "u_c");
  ctx.Enable(GL_BLEND);
  ctx.BlendFunc(GL_ONE, GL_ONE);
  ctx.Uniform4f(c, 0.25f, 0.0f, 0.0f, 1.0f);
  DrawFullscreenQuad(ctx, p);
  ctx.Uniform4f(c, 0.25f, 0.0f, 0.0f, 1.0f);
  DrawFullscreenQuad(ctx, p);
  const auto px = ReadRgba(ctx, 1, 1);
  EXPECT_NEAR(px[0], 128, 1);
}

TEST(ContextTest, ColorMaskSuppressesChannels) {
  Context ctx(SmallConfig(1, 1));
  const GLuint p = BuildProgramOrDie(
      ctx, testutil::kPassthroughVs,
      "precision mediump float;\nvoid main() { gl_FragColor = vec4(1.0); }");
  ctx.ColorMask(GL_TRUE, GL_FALSE, GL_TRUE, GL_FALSE);
  DrawFullscreenQuad(ctx, p);
  const auto px = ReadRgba(ctx, 1, 1);
  EXPECT_EQ(px[0], 255);
  EXPECT_EQ(px[1], 0);
  EXPECT_EQ(px[2], 255);
  EXPECT_EQ(px[3], 0);
}

TEST(ContextTest, DrawElementsWithIndices) {
  Context ctx(SmallConfig());
  const GLuint p = BuildProgramOrDie(
      ctx, testutil::kPassthroughVs,
      "precision mediump float;\nvoid main() { gl_FragColor = vec4(1.0); }");
  ctx.UseProgram(p);
  const GLint loc = ctx.GetAttribLocation(p, "a_pos");
  const float verts[] = {-1, -1, 1, -1, 1, 1, -1, 1};
  const std::uint8_t idx[] = {0, 1, 2, 0, 2, 3};
  ctx.EnableVertexAttribArray(static_cast<GLuint>(loc));
  ctx.VertexAttribPointer(static_cast<GLuint>(loc), 2, GL_FLOAT, GL_FALSE, 0,
                          verts);
  ctx.DrawElements(GL_TRIANGLES, 6, GL_UNSIGNED_BYTE, idx);
  const auto px = ReadRgba(ctx, 4, 4);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(px[i * 4], 255) << i;
}

TEST(ContextTest, VboVertexFetch) {
  Context ctx(SmallConfig());
  const GLuint p = BuildProgramOrDie(
      ctx, testutil::kPassthroughVs,
      "precision mediump float;\nvoid main() { gl_FragColor = vec4(1.0); }");
  ctx.UseProgram(p);
  GLuint vbo;
  ctx.GenBuffers(1, &vbo);
  ctx.BindBuffer(GL_ARRAY_BUFFER, vbo);
  ctx.BufferData(GL_ARRAY_BUFFER, sizeof(float) * 12,
                 testutil::kQuad.data(), GL_STATIC_DRAW);
  const GLint loc = ctx.GetAttribLocation(p, "a_pos");
  ctx.EnableVertexAttribArray(static_cast<GLuint>(loc));
  ctx.VertexAttribPointer(static_cast<GLuint>(loc), 2, GL_FLOAT, GL_FALSE, 0,
                          nullptr);  // offset 0 into VBO
  ctx.DrawArrays(GL_TRIANGLES, 0, 6);
  EXPECT_EQ(ctx.GetError(), GL_NO_ERROR);
  const auto px = ReadRgba(ctx, 4, 4);
  EXPECT_EQ(px[0], 255);
}

// Attribute fetches from a VBO must be validated against the buffer store
// at draw time: a range that runs past the end fails the draw with
// GL_INVALID_OPERATION instead of reading out-of-bounds heap memory. Both
// vertex paths (batched gather and the scalar reference loop) must agree.
TEST(ContextTest, VboDrawBeyondBufferSetsErrorNotOob) {
  for (const int vertex_batch : {-1, 0}) {
    SCOPED_TRACE("vertex_batch=" + std::to_string(vertex_batch));
    ContextConfig cfg = SmallConfig();
    cfg.vertex_batch = vertex_batch;
    Context ctx(cfg);
    const GLuint p = BuildProgramOrDie(
        ctx, testutil::kPassthroughVs,
        "precision mediump float;\nvoid main() { gl_FragColor = vec4(1.0); }");
    ctx.UseProgram(p);
    GLuint vbo;
    ctx.GenBuffers(1, &vbo);
    ctx.BindBuffer(GL_ARRAY_BUFFER, vbo);
    // Room for exactly 4 vec2 vertices (32 bytes).
    ctx.BufferData(GL_ARRAY_BUFFER, sizeof(float) * 8, testutil::kQuad.data(),
                   GL_STATIC_DRAW);
    const GLint loc = ctx.GetAttribLocation(p, "a_pos");
    ctx.EnableVertexAttribArray(static_cast<GLuint>(loc));
    ctx.VertexAttribPointer(static_cast<GLuint>(loc), 2, GL_FLOAT, GL_FALSE,
                            0, nullptr);
    ctx.ClearColor(0.0f, 0.0f, 1.0f, 1.0f);
    ctx.Clear(GL_COLOR_BUFFER_BIT);
    const auto before = ReadRgba(ctx, 4, 4);

    // 6 vertices from a 4-vertex store: vertex 4 would read past the end.
    ctx.DrawArrays(GL_TRIANGLES, 0, 6);
    EXPECT_EQ(ctx.GetError(), GL_INVALID_OPERATION);
    EXPECT_EQ(ReadRgba(ctx, 4, 4), before) << "aborted draw touched pixels";

    // The last in-bounds window still draws.
    ctx.DrawArrays(GL_TRIANGLES, 0, 3);
    EXPECT_EQ(ctx.GetError(), GL_NO_ERROR);
  }
}

// An attribute offset past the end of the store must fail the same way —
// the offset alone can place every fetch out of bounds.
TEST(ContextTest, VboAttribOffsetBeyondBufferSetsError) {
  for (const int vertex_batch : {-1, 0}) {
    SCOPED_TRACE("vertex_batch=" + std::to_string(vertex_batch));
    ContextConfig cfg = SmallConfig();
    cfg.vertex_batch = vertex_batch;
    Context ctx(cfg);
    const GLuint p = BuildProgramOrDie(
        ctx, testutil::kPassthroughVs,
        "precision mediump float;\nvoid main() { gl_FragColor = vec4(1.0); }");
    ctx.UseProgram(p);
    GLuint vbo;
    ctx.GenBuffers(1, &vbo);
    ctx.BindBuffer(GL_ARRAY_BUFFER, vbo);
    ctx.BufferData(GL_ARRAY_BUFFER, sizeof(float) * 12,
                   testutil::kQuad.data(), GL_STATIC_DRAW);
    const GLint loc = ctx.GetAttribLocation(p, "a_pos");
    ctx.EnableVertexAttribArray(static_cast<GLuint>(loc));
    ctx.VertexAttribPointer(
        static_cast<GLuint>(loc), 2, GL_FLOAT, GL_FALSE, 0,
        reinterpret_cast<const void*>(static_cast<std::uintptr_t>(1 << 20)));
    ctx.DrawArrays(GL_TRIANGLES, 0, 6);
    EXPECT_EQ(ctx.GetError(), GL_INVALID_OPERATION);
  }
}

// Index fetches from an element-array VBO get the same draw-time check.
TEST(ContextTest, DrawElementsIndexRangeBeyondBufferSetsError) {
  Context ctx(SmallConfig());
  const GLuint p = BuildProgramOrDie(
      ctx, testutil::kPassthroughVs,
      "precision mediump float;\nvoid main() { gl_FragColor = vec4(1.0); }");
  ctx.UseProgram(p);
  const GLint loc = ctx.GetAttribLocation(p, "a_pos");
  const float verts[] = {-1, -1, 1, -1, 1, 1, -1, 1};
  ctx.EnableVertexAttribArray(static_cast<GLuint>(loc));
  ctx.VertexAttribPointer(static_cast<GLuint>(loc), 2, GL_FLOAT, GL_FALSE, 0,
                          verts);
  GLuint ibo;
  ctx.GenBuffers(1, &ibo);
  ctx.BindBuffer(GL_ELEMENT_ARRAY_BUFFER, ibo);
  const std::uint8_t idx[] = {0, 1, 2};
  ctx.BufferData(GL_ELEMENT_ARRAY_BUFFER, 3, idx, GL_STATIC_DRAW);
  // 6 indices from a 3-byte store.
  ctx.DrawElements(GL_TRIANGLES, 6, GL_UNSIGNED_BYTE, nullptr);
  EXPECT_EQ(ctx.GetError(), GL_INVALID_OPERATION);
  // In-bounds count is fine.
  ctx.DrawElements(GL_TRIANGLES, 3, GL_UNSIGNED_BYTE, nullptr);
  EXPECT_EQ(ctx.GetError(), GL_NO_ERROR);
}

// Deleting a buffer detaches it from every attribute binding: a later draw
// fails cleanly (GL_INVALID_OPERATION, no fetch through the stale id).
TEST(ContextTest, DeletedBufferDetachesFromAttribBinding) {
  for (const int vertex_batch : {-1, 0}) {
    SCOPED_TRACE("vertex_batch=" + std::to_string(vertex_batch));
    ContextConfig cfg = SmallConfig();
    cfg.vertex_batch = vertex_batch;
    Context ctx(cfg);
    const GLuint p = BuildProgramOrDie(
        ctx, testutil::kPassthroughVs,
        "precision mediump float;\nvoid main() { gl_FragColor = vec4(1.0); }");
    ctx.UseProgram(p);
    GLuint vbo;
    ctx.GenBuffers(1, &vbo);
    ctx.BindBuffer(GL_ARRAY_BUFFER, vbo);
    ctx.BufferData(GL_ARRAY_BUFFER, sizeof(float) * 12,
                   testutil::kQuad.data(), GL_STATIC_DRAW);
    const GLint loc = ctx.GetAttribLocation(p, "a_pos");
    ctx.EnableVertexAttribArray(static_cast<GLuint>(loc));
    ctx.VertexAttribPointer(static_cast<GLuint>(loc), 2, GL_FLOAT, GL_FALSE,
                            0, nullptr);
    ctx.DeleteBuffers(1, &vbo);
    ctx.DrawArrays(GL_TRIANGLES, 0, 6);
    EXPECT_EQ(ctx.GetError(), GL_INVALID_OPERATION);
  }
}

// Deleting a texture detaches it from framebuffer attachments: the FBO
// reports missing-attachment instead of resolving the stale id (which a
// later GenTextures could otherwise recycle into the wrong image).
TEST(ContextTest, DeletedTextureDetachesFromFramebuffer) {
  Context ctx(SmallConfig());
  GLuint tex;
  ctx.GenTextures(1, &tex);
  ctx.BindTexture(GL_TEXTURE_2D, tex);
  std::vector<std::uint8_t> texels(4 * 4 * 4, 200);
  ctx.TexImage2D(GL_TEXTURE_2D, 0, GL_RGBA, 4, 4, 0, GL_RGBA,
                 GL_UNSIGNED_BYTE, texels.data());
  GLuint fbo;
  ctx.GenFramebuffers(1, &fbo);
  ctx.BindFramebuffer(GL_FRAMEBUFFER, fbo);
  ctx.FramebufferTexture2D(GL_FRAMEBUFFER, GL_COLOR_ATTACHMENT0,
                           GL_TEXTURE_2D, tex, 0);
  ASSERT_EQ(ctx.CheckFramebufferStatus(GL_FRAMEBUFFER),
            static_cast<GLenum>(GL_FRAMEBUFFER_COMPLETE));
  ctx.DeleteTextures(1, &tex);
  EXPECT_EQ(ctx.CheckFramebufferStatus(GL_FRAMEBUFFER),
            static_cast<GLenum>(GL_FRAMEBUFFER_INCOMPLETE_MISSING_ATTACHMENT));
  EXPECT_EQ(ctx.GetError(), GL_NO_ERROR);
}

// Same detach contract for renderbuffer attachments.
TEST(ContextTest, DeletedRenderbufferDetachesFromFramebuffer) {
  Context ctx(SmallConfig());
  GLuint rb;
  ctx.GenRenderbuffers(1, &rb);
  ctx.BindRenderbuffer(GL_RENDERBUFFER, rb);
  ctx.RenderbufferStorage(GL_RENDERBUFFER, GL_RGB565, 4, 4);
  GLuint fbo;
  ctx.GenFramebuffers(1, &fbo);
  ctx.BindFramebuffer(GL_FRAMEBUFFER, fbo);
  ctx.FramebufferRenderbuffer(GL_FRAMEBUFFER, GL_COLOR_ATTACHMENT0,
                              GL_RENDERBUFFER, rb);
  ASSERT_EQ(ctx.CheckFramebufferStatus(GL_FRAMEBUFFER),
            static_cast<GLenum>(GL_FRAMEBUFFER_COMPLETE));
  ctx.DeleteRenderbuffers(1, &rb);
  EXPECT_EQ(ctx.CheckFramebufferStatus(GL_FRAMEBUFFER),
            static_cast<GLenum>(GL_FRAMEBUFFER_INCOMPLETE_MISSING_ATTACHMENT));
  EXPECT_EQ(ctx.GetError(), GL_NO_ERROR);
}

TEST(ContextTest, RunawayShaderSetsDrawError) {
  Context ctx(SmallConfig(1, 1));
  const GLuint p = BuildProgramOrDie(
      ctx, testutil::kPassthroughVs,
      "precision mediump float;\nvoid main() { float a = 0.0; while (a < "
      "1.0) { a *= 1.0; } gl_FragColor = vec4(a); }");
  DrawFullscreenQuad(ctx, p);
  EXPECT_EQ(ctx.GetError(), GL_INVALID_OPERATION);
  EXPECT_FALSE(ctx.last_draw_error().empty());
}

TEST(ContextTest, PrecisionFormatQueriesMatchProfile) {
  Context ctx(SmallConfig());
  GLint range[2] = {0, 0};
  GLint precision = 0;
  // The query the paper (§IV-E) prescribes for discovering GPU float format.
  ctx.GetShaderPrecisionFormat(GL_FRAGMENT_SHADER, GL_HIGH_FLOAT, range,
                               &precision);
  EXPECT_EQ(precision, 23);
  EXPECT_EQ(range[0], 127);

  ContextConfig mali = SmallConfig();
  mali.limits.fragment_highp_float = false;  // Mali-400 class
  Context ctx2(mali);
  ctx2.GetShaderPrecisionFormat(GL_FRAGMENT_SHADER, GL_HIGH_FLOAT, range,
                                &precision);
  EXPECT_EQ(precision, 0);  // highp unsupported in the fragment stage
  ctx2.GetShaderPrecisionFormat(GL_VERTEX_SHADER, GL_HIGH_FLOAT, range,
                                &precision);
  EXPECT_EQ(precision, 23);  // ...but supported in the vertex stage
}

TEST(ContextTest, GetStringAndIntegerQueries) {
  Context ctx(SmallConfig());
  EXPECT_EQ(std::string(ctx.GetString(GL_SHADING_LANGUAGE_VERSION)),
            "OpenGL ES GLSL ES 1.00");
  EXPECT_EQ(std::string(ctx.GetString(GL_EXTENSIONS)), "");
  GLint v = 0;
  ctx.GetIntegerv(GL_MAX_VERTEX_ATTRIBS, &v);
  EXPECT_EQ(v, 8);
  ctx.GetIntegerv(GL_MAX_TEXTURE_SIZE, &v);
  EXPECT_EQ(v, 4096);
}

TEST(ContextTest, ErrorStateIsStickyUntilRead) {
  Context ctx(SmallConfig());
  ctx.Enable(0xDEAD);
  ctx.Viewport(0, 0, -1, -1);  // would be INVALID_VALUE, but first error wins
  EXPECT_EQ(ctx.GetError(), GL_INVALID_ENUM);
  EXPECT_EQ(ctx.GetError(), GL_NO_ERROR);
}

TEST(ContextTest, PaperQuantizationModeFloors) {
  ContextConfig cfg = SmallConfig(1, 1);
  cfg.quantization = FbQuantization::kFloorPaper;
  Context ctx(cfg);
  const GLuint p = BuildProgramOrDie(
      ctx, testutil::kPassthroughVs,
      "precision mediump float;\nvoid main() { gl_FragColor = "
      "vec4(0.9999); }");
  DrawFullscreenQuad(ctx, p);
  const auto px = ReadRgba(ctx, 1, 1);
  EXPECT_EQ(px[0], 254);  // floor(0.9999 * 255) per the paper's Eq. (2)
}

}  // namespace
}  // namespace mgpu::gles2
