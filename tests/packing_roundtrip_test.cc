// Round-trip property tests for the float bit rotation and the
// gp_pack_* / gp_unpack_* shader library across the IEEE edge cases the
// paper never mentions: NaN (payloads included), +/-Inf, -0.0 and
// denormals. Three layers are checked:
//   1. host rotation (RotateFloatBitsForGpu/FromGpu): a pure bijection on
//      bit patterns — must be exact for EVERY pattern;
//   2. the RGBA8 texel path (PackF32 -> texture upload -> FBO ReadPixels ->
//      UnpackF32): bytes are never interpreted, so it must also be
//      bit-exact for every pattern;
//   3. the in-shader numeric reconstruction (gp_unpack_f32 -> gp_pack_f32
//      identity kernel): exact for normal floats on an IEEE-exact profile,
//      with documented canonicalization for the specials (denormals flush
//      to +0 as on the QPU; -0 loses its sign; NaN payloads collapse to the
//      canonical quiet NaN; +/-Inf survive via the exponent-255 encoding).
#include <array>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/bits.h"
#include "common/rng.h"
#include "compute/buffer.h"
#include "compute/kernel.h"
#include "compute/packing.h"
#include "vc4/profiles.h"

#include "gtest/gtest.h"

namespace mgpu::compute {
namespace {

// Curated IEEE edge patterns: signed zeros, smallest/largest denormals,
// boundary normals, infinities, and NaNs with distinct payloads.
std::vector<std::uint32_t> EdgeBitPatterns() {
  return {
      0x00000000u,  // +0.0
      0x80000000u,  // -0.0
      0x00000001u,  // smallest +denormal
      0x80000001u,  // smallest -denormal
      0x007fffffu,  // largest +denormal
      0x807fffffu,  // largest -denormal
      0x00800000u,  // smallest +normal
      0x80800000u,  // smallest -normal
      0x7f7fffffu,  // +FLT_MAX
      0xff7fffffu,  // -FLT_MAX
      0x7f800000u,  // +Inf
      0xff800000u,  // -Inf
      0x7fc00000u,  // canonical quiet NaN
      0xffc00000u,  // negative quiet NaN
      0x7f800001u,  // signaling NaN, minimal payload
      0x7fbfffffu,  // signaling NaN, maximal payload
      0x7fdeadbeu & 0x7fffffffu,  // quiet NaN, arbitrary payload
      0x3f800000u,  // 1.0
      0xbf800000u,  // -1.0
      0x3f000001u,  // just above 0.5
      0x4effffffu,  // near 2^31
  };
}

TEST(PackingRoundTripTest, RotationIsBijectiveOnEdgePatternsAndRandomBits) {
  for (const std::uint32_t bits : EdgeBitPatterns()) {
    EXPECT_EQ(RotateFloatBitsFromGpu(RotateFloatBitsForGpu(bits)), bits);
    EXPECT_EQ(RotateFloatBitsForGpu(RotateFloatBitsFromGpu(bits)), bits);
  }
  Rng rng(2024);
  for (int i = 0; i < 200000; ++i) {
    const std::uint32_t bits = rng.NextU32();
    ASSERT_EQ(RotateFloatBitsFromGpu(RotateFloatBitsForGpu(bits)), bits);
    ASSERT_EQ(RotateFloatBitsForGpu(RotateFloatBitsFromGpu(bits)), bits);
  }
}

TEST(PackingRoundTripTest, HostPackUnpackF32IsBitExactForAllPatterns) {
  std::vector<float> values;
  for (const std::uint32_t bits : EdgeBitPatterns()) {
    values.push_back(BitsToFloat(bits));
  }
  Rng rng(7);
  for (int i = 0; i < 4096; ++i) values.push_back(BitsToFloat(rng.NextU32()));

  const std::vector<std::uint8_t> texels =
      PackF32(std::span<const float>(values));
  std::vector<float> back(values.size());
  UnpackF32(texels, std::span<float>(back));
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(FloatToBits(back[i]), FloatToBits(values[i])) << "index " << i;
  }
}

TEST(PackingRoundTripTest, TexelPathUploadDownloadIsBitExact) {
  // Upload -> texture bytes -> FBO ReadPixels -> unpack. No shader ever
  // interprets the value, so even NaN payloads must survive bit-for-bit.
  compute::DeviceOptions o;
  o.profile = vc4::IeeeExact();
  Device d(o);
  std::vector<float> values;
  for (const std::uint32_t bits : EdgeBitPatterns()) {
    values.push_back(BitsToFloat(bits));
  }
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) values.push_back(BitsToFloat(rng.NextU32()));

  PackedBuffer buf(d, ElemType::kF32, values.size());
  buf.Upload(std::span<const float>(values));
  std::vector<float> back(values.size());
  buf.Download(std::span<float>(back));
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(FloatToBits(back[i]), FloatToBits(values[i])) << "index " << i;
  }
}

// Runs the f32 identity kernel (fetch -> gp_unpack_f32 -> gp_pack_f32) over
// `values` and returns the downloaded results.
std::vector<float> RunIdentityKernel(Device& d,
                                     const std::vector<float>& values) {
  PackedBuffer in(d, ElemType::kF32, values.size());
  PackedBuffer out(d, ElemType::kF32, values.size());
  in.Upload(std::span<const float>(values));
  Kernel k(d, {.name = "identity_f32",
               .inputs = {{"u_src", ElemType::kF32}},
               .output = ElemType::kF32,
               .extra_decls = "",
               .body = "float gp_kernel(vec2 p) { return "
                       "gp_fetch_u_src(gp_linear_index()); }\n"});
  k.Run(out, {&in});
  std::vector<float> back(values.size());
  out.Download(std::span<float>(back));
  return back;
}

TEST(PackingRoundTripTest, ShaderIdentityIsBitExactForNormalFloats) {
  compute::DeviceOptions o;
  o.profile = vc4::IeeeExact();
  Device d(o);
  std::vector<float> values;
  Rng rng(13);
  for (int i = 0; i < 2000; ++i) values.push_back(rng.NextWorkloadFloat());
  // Boundary normals (the mantissa-wrap corner of gp_pack_f32).
  values.push_back(BitsToFloat(0x00800000u));  // smallest normal
  values.push_back(BitsToFloat(0x80800000u));
  values.push_back(BitsToFloat(0x7f7fffffu));  // FLT_MAX
  values.push_back(BitsToFloat(0xff7fffffu));
  values.push_back(BitsToFloat(0x3f7fffffu));  // just under 1.0
  values.push_back(BitsToFloat(0x3f800001u));  // just over 1.0
  values.push_back(1.0f);
  values.push_back(-1.0f);

  const std::vector<float> back = RunIdentityKernel(d, values);
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(FloatToBits(back[i]), FloatToBits(values[i]))
        << "value " << values[i] << " came back as " << back[i];
  }
}

TEST(PackingRoundTripTest, ShaderIdentityCanonicalizesSpecials) {
  compute::DeviceOptions o;
  o.profile = vc4::IeeeExact();
  Device d(o);
  const std::vector<float> values = {
      BitsToFloat(0x80000000u),  // -0.0
      BitsToFloat(0x00000001u),  // +denormal
      BitsToFloat(0x807fffffu),  // -denormal
      BitsToFloat(0x7f800000u),  // +Inf
      BitsToFloat(0xff800000u),  // -Inf
      BitsToFloat(0x7f800001u),  // signaling NaN with payload
      BitsToFloat(0xffc00001u),  // negative NaN with payload
  };
  const std::vector<float> back = RunIdentityKernel(d, values);

  // -0 and denormals flush to +0 (QPU semantics, documented subset).
  EXPECT_EQ(FloatToBits(back[0]), 0u);
  EXPECT_EQ(FloatToBits(back[1]), 0u);
  EXPECT_EQ(FloatToBits(back[2]), 0u);
  // Infinities survive via the exponent-255 encoding.
  EXPECT_EQ(FloatToBits(back[3]), 0x7f800000u);
  EXPECT_EQ(FloatToBits(back[4]), 0xff800000u);
  // NaNs collapse to the canonical quiet NaN (payload is not preserved).
  EXPECT_EQ(FloatToBits(back[5]), 0x7fc00000u);
  EXPECT_EQ(FloatToBits(back[6]), 0x7fc00000u);
}

TEST(PackingRoundTripTest, NanColorWritesZeroBytesNotUndefined) {
  // A fragment shader can still emit NaN directly (0/0); the framebuffer
  // conversion must stay deterministic instead of hitting the undefined
  // float->byte cast.
  compute::DeviceOptions o;
  o.profile = vc4::IeeeExact();
  Device d(o);
  std::vector<float> dummy(4, 1.0f);
  PackedBuffer in(d, ElemType::kF32, dummy.size());
  PackedBuffer out(d, ElemType::kU8, dummy.size());
  in.Upload(std::span<const float>(dummy));
  Kernel k(d, {.name = "nan_color",
               .inputs = {{"u_src", ElemType::kF32}},
               .output = ElemType::kU8,
               .extra_decls = "",
               .body = "vec4 gp_kernel(vec2 p) { float z = "
                       "gp_fetch_u_src(gp_linear_index()) - 1.0; return "
                       "vec4(z / z); }\n"});  // 0/0 = NaN for every element
  k.Run(out, {&in});
  std::vector<std::uint8_t> back(dummy.size());
  out.Download(std::span<std::uint8_t>(back));
  for (const std::uint8_t b : back) {
    EXPECT_EQ(b, 0u);
  }
}

}  // namespace
}  // namespace mgpu::compute
