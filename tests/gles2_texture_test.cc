// Texture storage, format conversion, completeness rules and sampling — the
// substrate behaviour the paper's buffer mapping (challenges 3/4/5) depends
// on.
#include "gles2/texture.h"

#include <cmath>
#include <vector>

#include "gtest/gtest.h"

namespace mgpu::gles2 {
namespace {

Texture MakeRgba(int w, int h, const std::vector<std::uint8_t>& data) {
  Texture t;
  EXPECT_EQ(t.TexImage2D(0, GL_RGBA, w, h, GL_RGBA, GL_UNSIGNED_BYTE,
                         data.empty() ? nullptr : data.data(), 1),
            GL_NO_ERROR);
  EXPECT_EQ(t.SetParameter(GL_TEXTURE_MIN_FILTER, GL_NEAREST), GL_NO_ERROR);
  EXPECT_EQ(t.SetParameter(GL_TEXTURE_MAG_FILTER, GL_NEAREST), GL_NO_ERROR);
  EXPECT_EQ(t.SetParameter(GL_TEXTURE_WRAP_S, GL_CLAMP_TO_EDGE), GL_NO_ERROR);
  EXPECT_EQ(t.SetParameter(GL_TEXTURE_WRAP_T, GL_CLAMP_TO_EDGE), GL_NO_ERROR);
  return t;
}

TEST(TextureTest, FloatUploadRejected) {
  // Limitation #5 of the paper: ES 2.0 has no float textures.
  Texture t;
  std::vector<float> data(4, 1.0f);
  EXPECT_EQ(t.TexImage2D(0, GL_RGBA, 1, 1, GL_RGBA, GL_FLOAT, data.data(), 1),
            GL_INVALID_ENUM);
}

TEST(TextureTest, RgbaUploadRoundTrips) {
  const std::vector<std::uint8_t> px = {1, 2, 3, 4, 250, 251, 252, 253};
  Texture t = MakeRgba(2, 1, px);
  EXPECT_EQ(t.TexelAt(0, 0), (std::array<std::uint8_t, 4>{1, 2, 3, 4}));
  EXPECT_EQ(t.TexelAt(1, 0),
            (std::array<std::uint8_t, 4>{250, 251, 252, 253}));
}

TEST(TextureTest, RgbExpandsAlphaToOpaque) {
  Texture t;
  const std::vector<std::uint8_t> px = {10, 20, 30};
  ASSERT_EQ(t.TexImage2D(0, GL_RGB, 1, 1, GL_RGB, GL_UNSIGNED_BYTE, px.data(),
                         1),
            GL_NO_ERROR);
  EXPECT_EQ(t.TexelAt(0, 0), (std::array<std::uint8_t, 4>{10, 20, 30, 255}));
}

TEST(TextureTest, LuminanceReplicates) {
  Texture t;
  const std::vector<std::uint8_t> px = {77};
  ASSERT_EQ(t.TexImage2D(0, GL_LUMINANCE, 1, 1, GL_LUMINANCE,
                         GL_UNSIGNED_BYTE, px.data(), 1),
            GL_NO_ERROR);
  EXPECT_EQ(t.TexelAt(0, 0), (std::array<std::uint8_t, 4>{77, 77, 77, 255}));
}

TEST(TextureTest, AlphaOnly) {
  Texture t;
  const std::vector<std::uint8_t> px = {99};
  ASSERT_EQ(t.TexImage2D(0, GL_ALPHA, 1, 1, GL_ALPHA, GL_UNSIGNED_BYTE,
                         px.data(), 1),
            GL_NO_ERROR);
  EXPECT_EQ(t.TexelAt(0, 0), (std::array<std::uint8_t, 4>{0, 0, 0, 99}));
}

TEST(TextureTest, Packed565Expansion) {
  Texture t;
  // R=31, G=63, B=31 -> white.
  const std::uint16_t white = 0xFFFF;
  ASSERT_EQ(t.TexImage2D(0, GL_RGB, 1, 1, GL_RGB, GL_UNSIGNED_SHORT_5_6_5,
                         &white, 1),
            GL_NO_ERROR);
  EXPECT_EQ(t.TexelAt(0, 0),
            (std::array<std::uint8_t, 4>{255, 255, 255, 255}));
}

TEST(TextureTest, Packed4444Expansion) {
  Texture t;
  const std::uint16_t px = 0xF081;  // r=15, g=0, b=8, a=1
  ASSERT_EQ(t.TexImage2D(0, GL_RGBA, 1, 1, GL_RGBA,
                         GL_UNSIGNED_SHORT_4_4_4_4, &px, 1),
            GL_NO_ERROR);
  const auto texel = t.TexelAt(0, 0);
  EXPECT_EQ(texel[0], 255);
  EXPECT_EQ(texel[1], 0);
  EXPECT_EQ(texel[2], 136);  // 8/15 expanded
  EXPECT_EQ(texel[3], 17);   // 1/15 expanded
}

TEST(TextureTest, Packed5551Alpha) {
  Texture t;
  const std::uint16_t px = 0x0001;  // only alpha bit set
  ASSERT_EQ(t.TexImage2D(0, GL_RGBA, 1, 1, GL_RGBA,
                         GL_UNSIGNED_SHORT_5_5_5_1, &px, 1),
            GL_NO_ERROR);
  EXPECT_EQ(t.TexelAt(0, 0)[3], 255);
}

TEST(TextureTest, TexSubImageUpdatesRegion) {
  Texture t = MakeRgba(4, 4, std::vector<std::uint8_t>(64, 0));
  const std::vector<std::uint8_t> patch = {9, 8, 7, 6};
  ASSERT_EQ(t.TexSubImage2D(0, 2, 3, 1, 1, GL_RGBA, GL_UNSIGNED_BYTE,
                            patch.data(), 1),
            GL_NO_ERROR);
  EXPECT_EQ(t.TexelAt(2, 3), (std::array<std::uint8_t, 4>{9, 8, 7, 6}));
  EXPECT_EQ(t.TexelAt(0, 0), (std::array<std::uint8_t, 4>{0, 0, 0, 0}));
}

TEST(TextureTest, TexSubImageOutOfBoundsRejected) {
  Texture t = MakeRgba(4, 4, {});
  const std::vector<std::uint8_t> patch(16, 0);
  EXPECT_EQ(t.TexSubImage2D(0, 3, 3, 2, 2, GL_RGBA, GL_UNSIGNED_BYTE,
                            patch.data(), 1),
            GL_INVALID_VALUE);
}

TEST(TextureTest, DefaultMinFilterMakesIncomplete) {
  // The ES 2.0 default min filter mipmaps; without mipmaps the texture is
  // incomplete and samples black — the classic GPGPU setup bug.
  Texture t;
  const std::vector<std::uint8_t> px = {200, 100, 50, 25};
  ASSERT_EQ(t.TexImage2D(0, GL_RGBA, 1, 1, GL_RGBA, GL_UNSIGNED_BYTE,
                         px.data(), 1),
            GL_NO_ERROR);
  EXPECT_FALSE(t.IsComplete());
  const auto s = t.Sample(0.5f, 0.5f, 0.0f);
  EXPECT_FLOAT_EQ(s[0], 0.0f);
  EXPECT_FLOAT_EQ(s[3], 1.0f);
  ASSERT_EQ(t.SetParameter(GL_TEXTURE_MIN_FILTER, GL_NEAREST), GL_NO_ERROR);
  EXPECT_TRUE(t.IsComplete());
}

TEST(TextureTest, NpotRequiresClampToEdge) {
  Texture t;
  ASSERT_EQ(t.TexImage2D(0, GL_RGBA, 3, 5, GL_RGBA, GL_UNSIGNED_BYTE, nullptr,
                         1),
            GL_NO_ERROR);
  ASSERT_EQ(t.SetParameter(GL_TEXTURE_MIN_FILTER, GL_NEAREST), GL_NO_ERROR);
  // Default wrap is REPEAT: incomplete for NPOT.
  EXPECT_FALSE(t.IsComplete());
  ASSERT_EQ(t.SetParameter(GL_TEXTURE_WRAP_S, GL_CLAMP_TO_EDGE), GL_NO_ERROR);
  ASSERT_EQ(t.SetParameter(GL_TEXTURE_WRAP_T, GL_CLAMP_TO_EDGE), GL_NO_ERROR);
  EXPECT_TRUE(t.IsComplete());
}

TEST(TextureTest, NearestSamplingAddressesTexelCenters) {
  // 4 texels; normalized coordinate (i + 0.5) / 4 must hit texel i exactly —
  // the addressing rule the paper's 1D->2D coordinate mapping (challenge 4)
  // relies on.
  std::vector<std::uint8_t> px;
  for (int i = 0; i < 4; ++i) {
    px.insert(px.end(), {static_cast<std::uint8_t>(i * 10), 0, 0, 255});
  }
  Texture t = MakeRgba(4, 1, px);
  for (int i = 0; i < 4; ++i) {
    const float s = (static_cast<float>(i) + 0.5f) / 4.0f;
    const auto texel = t.Sample(s, 0.5f, 0.0f);
    EXPECT_FLOAT_EQ(texel[0], static_cast<float>(i * 10) / 255.0f) << i;
  }
}

TEST(TextureTest, SampleValuesAreExactlyCOver255) {
  // Eq. (1) of the paper: the shader sees f = c / 255 exactly.
  std::vector<std::uint8_t> px = {0, 1, 128, 255};
  Texture t = MakeRgba(1, 1, px);
  const auto s = t.Sample(0.5f, 0.5f, 0.0f);
  EXPECT_EQ(s[0], 0.0f / 255.0f);
  EXPECT_EQ(s[1], 1.0f / 255.0f);
  EXPECT_EQ(s[2], 128.0f / 255.0f);
  EXPECT_EQ(s[3], 255.0f / 255.0f);
}

TEST(TextureTest, WrapModes) {
  std::vector<std::uint8_t> px;
  for (int i = 0; i < 2; ++i) {
    px.insert(px.end(), {static_cast<std::uint8_t>(i * 200), 0, 0, 255});
  }
  Texture t = MakeRgba(2, 1, px);
  // CLAMP_TO_EDGE: out-of-range sticks to the border texel.
  EXPECT_FLOAT_EQ(t.Sample(-0.3f, 0.5f, 0.0f)[0], 0.0f);
  EXPECT_FLOAT_EQ(t.Sample(1.3f, 0.5f, 0.0f)[0], 200.0f / 255.0f);
  // REPEAT (power-of-two texture, so still complete).
  ASSERT_EQ(t.SetParameter(GL_TEXTURE_WRAP_S, GL_REPEAT), GL_NO_ERROR);
  EXPECT_FLOAT_EQ(t.Sample(1.25f, 0.5f, 0.0f)[0],
                  t.Sample(0.25f, 0.5f, 0.0f)[0]);
  // MIRRORED_REPEAT.
  ASSERT_EQ(t.SetParameter(GL_TEXTURE_WRAP_S, GL_MIRRORED_REPEAT),
            GL_NO_ERROR);
  EXPECT_FLOAT_EQ(t.Sample(1.25f, 0.5f, 0.0f)[0],
                  t.Sample(0.75f, 0.5f, 0.0f)[0]);
}

TEST(TextureTest, BilinearInterpolatesMidpoint) {
  std::vector<std::uint8_t> px = {0, 0, 0, 255, 200, 0, 0, 255};
  Texture t = MakeRgba(2, 1, px);
  ASSERT_EQ(t.SetParameter(GL_TEXTURE_MAG_FILTER, GL_LINEAR), GL_NO_ERROR);
  const auto s = t.Sample(0.5f, 0.5f, 0.0f);
  EXPECT_NEAR(s[0], 100.0f / 255.0f, 1e-5f);
}

TEST(TextureTest, InvalidFilterEnumRejected) {
  Texture t;
  EXPECT_EQ(t.SetParameter(GL_TEXTURE_MIN_FILTER, GL_REPEAT),
            GL_INVALID_ENUM);
  EXPECT_EQ(t.SetParameter(GL_TEXTURE_WRAP_S, GL_NEAREST), GL_INVALID_ENUM);
}

TEST(TextureTest, UnpackAlignmentHonored) {
  // 3-byte RGB rows with alignment 4: row stride is padded to 4.
  Texture t;
  const std::uint8_t data[] = {10, 20, 30, 0 /*pad*/, 40, 50, 60, 0 /*pad*/};
  ASSERT_EQ(t.TexImage2D(0, GL_RGB, 1, 2, GL_RGB, GL_UNSIGNED_BYTE, data, 4),
            GL_NO_ERROR);
  EXPECT_EQ(t.TexelAt(0, 0), (std::array<std::uint8_t, 4>{10, 20, 30, 255}));
  EXPECT_EQ(t.TexelAt(0, 1), (std::array<std::uint8_t, 4>{40, 50, 60, 255}));
}

}  // namespace
}  // namespace mgpu::gles2
