#!/usr/bin/env python3
"""CI benchmark regression gate.

Compares BENCH_*.json files emitted by the benchmark binaries against the
committed baseline (ci/bench_baseline.json) and fails the job when:

  * a *deterministic* metric changed at all — units "bool", "hash", "ops",
    "count" (coverage flags, framebuffer checksums, op counts: these must be
    bit-stable on every machine, so any drift is a real behaviour change);
  * a *timing* metric regressed more than the hard threshold (default 25%)
    — units "s" (lower is better), "x" and "/s" (higher is better).
    Regressions between the soft (10%) and hard thresholds only warn, to
    tolerate shared-runner noise; improvements never fail.

Units "threads" (environment-dependent) and metrics absent from the
baseline are reported but never gate.

The baseline carries a `meta` block recording which machine class it was
measured on (cpu count, arch, source). Timing gates against a baseline from
a different machine class are unreliable — the checker prints the recorded
class and soft-warns on a mismatch so a runner-vs-devbox discrepancy is
visible in the log instead of silently gating nonsense. Deterministic
metrics gate exactly regardless of machine.

Usage:
  check_bench.py --baseline ci/bench_baseline.json BENCH_a.json BENCH_b.json
  check_bench.py --skip-timing ...   # deterministic metrics only (e.g. the
                                     # clang matrix leg, whose codegen makes
                                     # timings incomparable to the baseline)
  check_bench.py --update ...        # rewrite the baseline from the given
                                     # BENCH files (run on a quiet machine,
                                     # commit the result); records this
                                     # machine's class in `meta` unless
                                     # --machine-class/--source override it.
                                     # CI uploads a ready-to-commit refresh
                                     # as the `bench-baseline-refresh`
                                     # artifact on every gcc main run.
"""

import argparse
import json
import os
import platform
import sys

DETERMINISTIC_UNITS = {"bool", "hash", "ops", "count"}
LOWER_IS_BETTER_UNITS = {"s"}
HIGHER_IS_BETTER_UNITS = {"x", "/s"}
SKIP_UNITS = {"threads"}

HARD_THRESHOLD = 0.25
SOFT_THRESHOLD = 0.10
# Wall-clock metrics shorter than this are below the timer/scheduler noise
# floor even as a min-of-N; report them but never gate on them.
MIN_GATED_SECONDS = 0.005


def load_bench_file(path):
    """Returns (benchmark_name, {metric: {"unit": u, "value": v}})."""
    with open(path) as f:
        data = json.load(f)
    metrics = {
        m["name"]: {"unit": m["unit"], "value": m["value"]}
        for m in data["metrics"]
    }
    return data["benchmark"], metrics


def local_machine_class():
    return f"{os.cpu_count() or '?'}-core {platform.machine()}"


def update_baseline(baseline_path, bench_files, machine_class, source):
    benchmarks = {}
    for path in bench_files:
        name, metrics = load_bench_file(path)
        benchmarks[name] = metrics
    meta = {
        "machine_class": machine_class or local_machine_class(),
        "cpu_count": os.cpu_count() or 0,
        "source": source,
    }
    with open(baseline_path, "w") as f:
        json.dump({"benchmarks": benchmarks, "meta": meta}, f, indent=2,
                  sort_keys=True)
        f.write("\n")
    print(f"baseline written: {baseline_path} "
          f"({', '.join(sorted(benchmarks))}) "
          f"[machine: {meta['machine_class']}, source: {meta['source']}]")
    return 0


def check(baseline_path, bench_files, skip_timing):
    with open(baseline_path) as f:
        data = json.load(f)
    baseline = data["benchmarks"]
    meta = data.get("meta", {})

    failures = []
    warnings = []
    seen_benchmarks = set()

    machine = meta.get("machine_class", "unknown (baseline predates meta)")
    print(f"baseline machine class: {machine} "
          f"[source: {meta.get('source', 'unknown')}]")
    base_cpus = meta.get("cpu_count", 0)
    if not skip_timing and base_cpus and base_cpus != (os.cpu_count() or 0):
        warnings.append(
            f"baseline was recorded on a {machine} machine but this one has "
            f"{os.cpu_count()} cpus — timing gates may be unreliable; "
            "refresh the baseline from this machine class (CI uploads a "
            "ready-made one as the bench-baseline-refresh artifact)")

    for path in bench_files:
        bench, metrics = load_bench_file(path)
        seen_benchmarks.add(bench)
        base_metrics = baseline.get(bench)
        if base_metrics is None:
            warnings.append(f"[{bench}] not in baseline — add it with "
                            "--update when it should gate")
            continue
        for name, base in sorted(base_metrics.items()):
            label = f"{bench}.{name}"
            cur = metrics.get(name)
            if cur is None:
                failures.append(f"{label}: missing from current run "
                                "(baseline has it — refresh the baseline if "
                                "this metric was deliberately removed)")
                continue
            unit, bval, cval = base["unit"], base["value"], cur["value"]
            if cur["unit"] != unit:
                failures.append(f"{label}: unit changed "
                                f"{unit!r} -> {cur['unit']!r}")
                continue
            if unit in SKIP_UNITS:
                print(f"  skip  {label} = {cval:g} {unit} "
                      "(environment-dependent)")
                continue
            if unit in DETERMINISTIC_UNITS:
                if cval != bval:
                    failures.append(f"{label}: deterministic metric changed "
                                    f"{bval:g} -> {cval:g} [{unit}]")
                else:
                    print(f"  ok    {label} = {cval:g} {unit} (exact)")
                continue
            if skip_timing:
                print(f"  skip  {label} (timing, --skip-timing)")
                continue
            if unit in LOWER_IS_BETTER_UNITS:
                if max(bval, cval) < MIN_GATED_SECONDS:
                    print(f"  skip  {label} = {cval:g} {unit} "
                          f"(< {MIN_GATED_SECONDS}s noise floor)")
                    continue
                regression = cval / bval - 1.0 if bval > 0 else 0.0
            elif unit in HIGHER_IS_BETTER_UNITS:
                regression = bval / cval - 1.0 if cval > 0 else float("inf")
            else:
                warnings.append(f"{label}: unknown unit {unit!r}, not gated")
                continue
            desc = (f"{label}: {bval:g} -> {cval:g} {unit} "
                    f"({regression:+.1%} vs baseline)")
            if regression > HARD_THRESHOLD:
                failures.append(f"{desc} — exceeds the "
                                f"{HARD_THRESHOLD:.0%} hard threshold")
            elif regression > SOFT_THRESHOLD:
                warnings.append(f"{desc} — soft-warn zone "
                                f"({SOFT_THRESHOLD:.0%}..{HARD_THRESHOLD:.0%})")
            else:
                print(f"  ok    {desc}")

    for bench in sorted(set(baseline) - seen_benchmarks):
        failures.append(f"[{bench}] in baseline but no BENCH file given")

    for w in warnings:
        print(f"  WARN  {w}")
    for f_ in failures:
        print(f"  FAIL  {f_}")
    if failures:
        print(f"\nbench gate: {len(failures)} failure(s). If a legitimate "
              "change moved the numbers, refresh the baseline from --quick "
              "runs (the size CI executes):\n"
              "  ./build/bench_fig1_pipeline --quick && "
              "./build/bench_draw_storm --quick\n"
              "  python3 scripts/check_bench.py --update --baseline "
              "ci/bench_baseline.json \\\n"
              "      BENCH_fig1_pipeline.json BENCH_draw_storm.json\n"
              "and commit it with an explanation of the speedup/behaviour "
              "change.")
        return 1
    print(f"\nbench gate: ok ({len(warnings)} warning(s))")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", default="ci/bench_baseline.json")
    ap.add_argument("--skip-timing", action="store_true",
                    help="gate only deterministic metrics")
    ap.add_argument("--update", action="store_true",
                    help="rewrite the baseline from the given BENCH files")
    ap.add_argument("--machine-class", default=None,
                    help="machine class recorded in the baseline meta "
                         "(default: derived from this machine)")
    ap.add_argument("--source", default="local",
                    help="where the BENCH files came from (e.g. 'local', "
                         "'ci:ubuntu-latest')")
    ap.add_argument("bench_files", nargs="+")
    args = ap.parse_args()
    if args.update:
        return update_baseline(args.baseline, args.bench_files,
                               args.machine_class, args.source)
    return check(args.baseline, args.bench_files, args.skip_timing)


if __name__ == "__main__":
    sys.exit(main())
