// Quickstart: add two float arrays on the (simulated) low-end mobile GPU.
//
// This is the paper's core scenario: the GPU only speaks OpenGL ES 2.0 —
// byte textures, byte framebuffer, normalized coordinates — yet we push
// fp32 data through it losslessly-in-layout using the §IV numeric
// transformations. Everything below is public API; the framework hides the
// quad, the pass-through vertex shader, the pack/unpack GLSL and the FBO
// readback.
#include <cstdio>
#include <exception>
#include <vector>

#include "common/rng.h"
#include "compute/ops.h"
#include "cpuref/cpuref.h"

int RunExample() {
  using namespace mgpu;

  // A compute device over the VideoCore IV platform model (the Raspberry
  // Pi GPU the paper evaluates on).
  compute::Device device;
  std::printf("device: %s\n",
              device.gl().GetString(gles2::GL_RENDERER));
  std::printf("fragment highp float mantissa bits: %d\n\n",
              device.FragmentHighpMantissaBits());

  const std::size_t n = 4096;
  Rng rng(1);
  const std::vector<float> a = rng.FloatVector(n, -100.0f, 100.0f);
  const std::vector<float> b = rng.FloatVector(n, -100.0f, 100.0f);

  std::vector<float> gpu(n);
  compute::ops::AddF32(device, a, b, gpu);

  std::vector<float> cpu(n);
  cpuref::AddF32(a, b, cpu);

  std::size_t mismatches = 0;
  float worst = 0.0f;
  for (std::size_t i = 0; i < n; ++i) {
    const float err = std::abs(gpu[i] - cpu[i]);
    worst = std::max(worst, err);
    // The float path is accurate to ~15 mantissa bits relative to the
    // operand magnitudes (§V); a cancelling a+b can't beat that absolutely.
    const float scale = std::abs(a[i]) + std::abs(b[i]);
    if (err > scale * 1e-4f + 1e-4f) ++mismatches;
  }
  std::printf("added %zu floats on the GPU\n", n);
  std::printf("first elements: %.3f + %.3f = %.3f (cpu %.3f)\n", a[0], b[0],
              gpu[0], cpu[0]);
  std::printf("validation vs CPU: %zu out-of-tolerance, worst abs err %.3g\n",
              mismatches, worst);

  const vc4::GpuWork work = device.ConsumeWork();
  std::printf("\nwhat the dispatch cost (timing-model inputs):\n");
  std::printf("  fragments: %llu, tmu fetches: %llu, alu ops: %llu\n",
              static_cast<unsigned long long>(work.fragments),
              static_cast<unsigned long long>(work.shader_ops.tmu),
              static_cast<unsigned long long>(work.shader_ops.alu));
  std::printf("  uploaded %llu bytes, read back %llu bytes, %d compile(s)\n",
              static_cast<unsigned long long>(work.bytes_uploaded),
              static_cast<unsigned long long>(work.bytes_readback),
              work.program_compiles);
  return mismatches == 0 ? 0 : 1;
}

// Kernel dispatch failures (a shader trap, the MGPU_DRAW_BUDGET watchdog,
// or a pipeline resource fault) surface as exceptions carrying the GL error
// and the robustness blame; report them and exit nonzero instead of
// crashing (see README "Robustness model").
int main() {
  try {
    return RunExample();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
