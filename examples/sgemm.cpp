// sgemm: the paper's second benchmark — C = A * B through the graphics
// pipeline, in both float and 24-bit-exact integer versions, validated
// against the CPU exactly as §V describes, with the modeled Raspberry Pi
// wall times printed alongside.
#include <cmath>
#include <cstdio>
#include <exception>
#include <vector>

#include "common/bits.h"
#include "common/rng.h"
#include "compute/ops.h"
#include "cpuref/cpuref.h"
#include "vc4/timing.h"

int RunExample() {
  using namespace mgpu;
  compute::Device device;
  const int n = 48;  // interpreted simulation; the bench extrapolates to 1024

  Rng rng(7);
  const std::size_t elems = static_cast<std::size_t>(n) * n;

  // --- float version ---
  const std::vector<float> af = rng.FloatVector(elems, -2.0f, 2.0f);
  const std::vector<float> bf = rng.FloatVector(elems, -2.0f, 2.0f);
  std::vector<float> cf_gpu(elems), cf_cpu(elems);
  compute::ops::SgemmF32(device, n, af, bf, cf_gpu);
  cpuref::SgemmF32(n, af, bf, cf_cpu);
  int worst_bits = 23;
  for (std::size_t i = 0; i < elems; ++i) {
    worst_bits = std::min(worst_bits,
                          MatchingMantissaBits(cf_cpu[i], cf_gpu[i]));
  }
  std::printf("sgemm %dx%d (float): worst agreement with CPU = %d mantissa "
              "bits\n",
              n, n, worst_bits);
  std::printf("  (paper: accurate within the 15 most significant bits)\n");

  const vc4::GpuWork fwork = device.ConsumeWork();

  // --- integer version ---
  const std::vector<std::int32_t> ai = rng.IntVector(elems, -64, 64);
  const std::vector<std::int32_t> bi = rng.IntVector(elems, -64, 64);
  std::vector<std::int32_t> ci_gpu(elems), ci_cpu(elems);
  compute::ops::GemmI32(device, n, ai, bi, ci_gpu);
  cpuref::GemmI32(n, ai, bi, ci_cpu);
  std::printf("sgemm %dx%d (int):   %s\n", n, n,
              ci_gpu == ci_cpu ? "bit-exact vs CPU (24-bit envelope)"
                               : "MISMATCH");
  const vc4::GpuWork iwork = device.ConsumeWork();

  // --- modeled wall times at this size ---
  const vc4::GpuProfile gpu = device.profile();
  const vc4::CpuModel cpu = vc4::Arm1176();
  const auto tf = vc4::GpuSeconds(gpu, cpu, fwork);
  const auto ti = vc4::GpuSeconds(gpu, cpu, iwork);
  const double cf = vc4::CpuSeconds(cpu, cpuref::SgemmWorkF32(n));
  const double ci = vc4::CpuSeconds(cpu, cpuref::GemmWorkI32(n));
  std::printf("\nmodeled wall times at n=%d (Raspberry Pi):\n", n);
  std::printf("  float: GPU %.3f ms (shader %.3f, xfer %.3f, compile %.3f) "
              "vs CPU %.3f ms -> %.2fx\n",
              tf.total() * 1e3, tf.shader * 1e3,
              (tf.upload + tf.readback) * 1e3, tf.compile * 1e3, cf * 1e3,
              cf / tf.total());
  std::printf("  int:   GPU %.3f ms vs CPU %.3f ms -> %.2fx\n",
              ti.total() * 1e3, ci * 1e3, ci / ti.total());
  std::printf("  (small n is dominated by compile+transfer overhead; "
              "bench_section5_speedups reproduces the paper's 1024-point)\n");
  return ci_gpu == ci_cpu ? 0 : 1;
}

// Kernel dispatch failures (a shader trap, the MGPU_DRAW_BUDGET watchdog,
// or a pipeline resource fault) surface as exceptions carrying the GL error
// and the robustness blame; report them and exit nonzero instead of
// crashing (see README "Robustness model").
int main() {
  try {
    return RunExample();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
