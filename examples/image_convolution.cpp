// Image convolution on the unsigned-byte path (§IV-A): a synthetic image is
// blurred and edge-detected on the simulated GPU, 4 pixels per RGBA texel,
// and rendered as ASCII art. This is the classic "image processing fits the
// byte pipeline natively" workload the paper contrasts with the float path.
#include <cmath>
#include <cstdio>
#include <exception>
#include <vector>

#include "compute/ops.h"
#include "cpuref/cpuref.h"

namespace {

void PrintAscii(const char* title, const std::vector<std::uint8_t>& img,
                int w, int h) {
  static const char* kRamp = " .:-=+*#%@";
  std::printf("%s\n", title);
  for (int y = h - 1; y >= 0; y -= 2) {  // GL rows are bottom-up
    for (int x = 0; x < w; ++x) {
      const int v = img[static_cast<std::size_t>(y) * w + x];
      std::putchar(kRamp[v * 9 / 255]);
    }
    std::putchar('\n');
  }
  std::putchar('\n');
}

}  // namespace

int RunExample() {
  using namespace mgpu;
  compute::Device device;

  const int w = 64, h = 32;
  std::vector<std::uint8_t> img(static_cast<std::size_t>(w) * h, 0);
  // Synthetic scene: a bright disk plus a gradient background.
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      const float dx = static_cast<float>(x - w / 2) / (w / 4.0f);
      const float dy = static_cast<float>(y - h / 2) / (h / 4.0f);
      const bool inside = dx * dx + dy * dy < 1.0f;
      const int grad = x * 48 / w;
      img[static_cast<std::size_t>(y) * w + x] =
          static_cast<std::uint8_t>(inside ? 230 : grad);
    }
  }
  PrintAscii("input", img, w, h);

  const std::vector<float> blur = {1 / 16.f, 2 / 16.f, 1 / 16.f,
                                   2 / 16.f, 4 / 16.f, 2 / 16.f,
                                   1 / 16.f, 2 / 16.f, 1 / 16.f};
  std::vector<std::uint8_t> blurred(img.size());
  compute::ops::Conv3x3U8(device, w, h, img, blur, blurred);
  PrintAscii("gaussian blur (GPU, u8 path)", blurred, w, h);

  const std::vector<float> edges = {0, -1, 0, -1, 4, -1, 0, -1, 0};
  std::vector<std::uint8_t> edged(img.size());
  compute::ops::Conv3x3U8(device, w, h, img, edges, edged);
  PrintAscii("laplacian edges (GPU, u8 path)", edged, w, h);

  // Validate the blur against the CPU reference.
  std::vector<std::uint8_t> cpu(img.size());
  cpuref::Conv3x3U8(w, h, img, blur, cpu);
  int diff = 0;
  for (std::size_t i = 0; i < img.size(); ++i) {
    diff += std::abs(static_cast<int>(blurred[i]) - static_cast<int>(cpu[i])) > 1;
  }
  std::printf("validation vs CPU blur: %d pixels differ by more than 1/255\n",
              diff);
  return diff == 0 ? 0 : 1;
}

// Kernel dispatch failures (a shader trap, the MGPU_DRAW_BUDGET watchdog,
// or a pipeline resource fault) surface as exceptions carrying the GL error
// and the robustness blame; report them and exit nonzero instead of
// crashing (see README "Robustness model").
int main() {
  try {
    return RunExample();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
