// Mandelbrot: a no-input compute kernel producing *integer* results (the
// escape-iteration count) through the §IV-C integer output path — the kind
// of non-image-processing GPGPU workload the paper argues byte framebuffers
// used to preclude. The kernel derives each pixel's complex coordinate from
// gl_FragCoord alone.
#include <cstdio>
#include <exception>
#include <vector>

#include "compute/kernel.h"

int RunExample() {
  using namespace mgpu;
  compute::Device device;

  const int w = 72, h = 36;
  const int max_iter = 96;
  compute::PackedBuffer out(device, compute::ElemType::kI32, w, h);

  compute::Kernel k(device, {
      .name = "mandelbrot",
      .inputs = {},
      .output = compute::ElemType::kI32,
      .extra_decls = "#define GP_MAX_ITER 96\n"
                     "uniform vec2 u_center;\n"
                     "uniform vec2 u_scale;",
      .body = R"(
float gp_kernel(vec2 gp_pos) {
  vec2 c = u_center + (gp_pos / gp_out_size - 0.5) * u_scale;
  vec2 z = vec2(0.0);
  for (int i = 0; i < GP_MAX_ITER; ++i) {
    z = vec2(z.x * z.x - z.y * z.y, 2.0 * z.x * z.y) + c;
    if (dot(z, z) > 4.0) { return float(i); }
  }
  return float(GP_MAX_ITER);
}
)"});
  k.SetUniform2f("u_center", -0.6f, 0.0f);
  k.SetUniform2f("u_scale", 3.0f, 2.4f);
  k.Run(out, {});

  std::vector<std::int32_t> iters(static_cast<std::size_t>(w) * h);
  out.Download(std::span<std::int32_t>(iters));

  static const char* kRamp = " .,:;i1tfLG08@";
  long total = 0;
  for (int y = h - 1; y >= 0; --y) {
    for (int x = 0; x < w; ++x) {
      const int it = iters[static_cast<std::size_t>(y) * w + x];
      total += it;
      const int shade = it >= max_iter ? 13 : it * 13 / max_iter;
      std::putchar(kRamp[shade]);
    }
    std::putchar('\n');
  }
  std::printf("\n%dx%d fragments, %d max iterations, iteration mass %ld\n",
              w, h, max_iter, total);
  std::printf("(escape counts returned as exact 24-bit integers via the "
              "paper's int output transformation)\n");
  return 0;
}

// Kernel dispatch failures (a shader trap, the MGPU_DRAW_BUDGET watchdog,
// or a pipeline resource fault) surface as exceptions carrying the GL error
// and the robustness blame; report them and exit nonzero instead of
// crashing (see README "Robustness model").
int main() {
  try {
    return RunExample();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
