// Multi-pass reduction: sums a float array with a 4:1 kernel tree. Each
// level renders into a texture the next level samples (render-to-texture
// ping-pong), and only the final 1-element texture is read back — the
// "careful kernel ordering" answer to challenge 7 (no glGetTexImage in ES
// 2.0). Also demonstrates the multi-output min/max split (challenge 8).
#include <cstdio>
#include <exception>
#include <vector>

#include "common/rng.h"
#include "compute/ops.h"
#include "cpuref/cpuref.h"

int RunExample() {
  using namespace mgpu;
  compute::Device device;

  const std::size_t n = 100'000;
  Rng rng(3);
  // Positive integer-valued data: with mixed signs, the intermediate
  // partial sums dwarf the net result and the float path's ~15-bit relative
  // error (which applies to *intermediates*) would swamp it — the same
  // caveat any fp32 cancellation-heavy reduction carries, amplified here.
  std::vector<float> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<float>(rng.NextInt(0, 1000));
  }

  const float gpu_sum = compute::ops::ReduceSumF32(device, v);
  const float cpu_sum = cpuref::ReduceSumF32(v);
  const vc4::GpuWork work = device.ConsumeWork();

  std::printf("reduced %zu floats on the GPU\n", n);
  std::printf("  gpu sum: %.1f\n  cpu sum: %.1f\n", gpu_sum, cpu_sum);
  std::printf("  passes (draw calls): %d, total fragments: %llu\n",
              work.draw_calls,
              static_cast<unsigned long long>(work.fragments));
  std::printf("  bytes read back: %llu (only the final texel row — kernel "
              "ordering avoids intermediate readbacks)\n",
              static_cast<unsigned long long>(work.bytes_readback));

  const auto [mn, mx] = compute::ops::MinMaxF32(device, v);
  const auto [cmn, cmx] = cpuref::MinMaxF32(v);
  std::printf("\nmin/max via split kernels (challenge 8): gpu [%g, %g], cpu "
              "[%g, %g]\n",
              mn, mx, cmn, cmx);

  // min/max pass through one pack/unpack round trip: ~15-bit accuracy.
  const float mm_tol = 1000.0f * 1e-3f;
  const bool ok = std::abs(mn - cmn) <= mm_tol &&
                  std::abs(mx - cmx) <= mm_tol &&
                  std::abs(gpu_sum - cpu_sum) <=
                      std::abs(cpu_sum) * 1e-3f + 1e-3f;
  std::printf("validation: %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}

// Kernel dispatch failures (a shader trap, the MGPU_DRAW_BUDGET watchdog,
// or a pipeline resource fault) surface as exceptions carrying the GL error
// and the robustness blame; report them and exit nonzero instead of
// crashing (see README "Robustness model").
int main() {
  try {
    return RunExample();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
