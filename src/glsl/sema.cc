#include "glsl/sema.h"

#include <cstring>
#include <map>
#include <set>
#include <unordered_map>
#include <utility>

#include "common/strings.h"
#include "glsl/builtins.h"

namespace mgpu::glsl {

int Vec4Slots(const Type& t) {
  const int per_element = IsMatrix(t.base) ? ColumnCount(t.base) : 1;
  return per_element * (t.IsArray() ? t.array_size : 1);
}

namespace {

// Sentinel for expressions whose type could not be determined. Distinct
// from plain `void` (array_size -2 is otherwise impossible) so that calls
// to void functions are NOT silently treated as already-diagnosed errors —
// e.g. `float x = f();` with `void f()` must be rejected.
const Type kErrorType{BaseType::kVoid, -2};

class Sema {
 public:
  Sema(CompiledShader& cs, DiagSink& diags) : cs_(cs), diags_(diags) {}

  void Run() {
    SetSpecDefaultPrecisions();
    for (const PrecisionDecl& pd : cs_.tu->default_precisions) {
      ApplyDefaultPrecision(pd);
    }
    PushScope();  // global scope
    DeclareBuiltinVars();
    RegisterFunctions();
    for (auto& g : cs_.tu->globals) DeclareGlobal(g.get());
    for (auto& fn : cs_.tu->functions) {
      if (fn->body) CheckFunction(*fn);
    }
    FindMain();
    CheckRecursion();
    CheckResourceLimits();
  }

 private:
  // --- diagnostics ---
  void Error(SrcLoc loc, std::string msg) { diags_.Error(loc, std::move(msg)); }

  // --- precision bookkeeping ---
  void SetSpecDefaultPrecisions() {
    // GLSL ES 1.00 §4.5.3.
    if (cs_.stage == Stage::kVertex) {
      default_prec_[BaseType::kFloat] = Precision::kHigh;
      default_prec_[BaseType::kInt] = Precision::kHigh;
    } else {
      // The fragment language has NO default float precision; using floats
      // without declaring one is a compile error (enforced below). This is
      // the rule that forces every GPGPU fragment kernel in the paper to
      // start with "precision highp float;".
      default_prec_[BaseType::kInt] = Precision::kMedium;
    }
    default_prec_[BaseType::kSampler2D] = Precision::kLow;
    default_prec_[BaseType::kSamplerCube] = Precision::kLow;
  }

  void ApplyDefaultPrecision(const PrecisionDecl& pd) {
    Precision p = pd.precision;
    if (pd.base == BaseType::kFloat && p == Precision::kHigh &&
        cs_.stage == Stage::kFragment && !cs_.limits.fragment_highp_float) {
      diags_.Warning(pd.loc,
                     "highp float is not supported by the fragment language "
                     "of this profile; downgrading to mediump (paper §IV-E "
                     "footnote 1)");
      p = Precision::kMedium;
    }
    default_prec_[pd.base] = p;
  }

  void RequirePrecision(const VarDecl& vd) {
    const BaseType scalar = ScalarOf(vd.type.base);
    if (scalar != BaseType::kFloat && scalar != BaseType::kInt &&
        !IsSampler(vd.type.base)) {
      return;  // bools carry no precision
    }
    const BaseType key = IsSampler(vd.type.base) ? vd.type.base : scalar;
    if (vd.precision != Precision::kNone) return;
    if (default_prec_.count(key) == 0) {
      Error(vd.loc,
            StrFormat("no default precision defined for type '%s'; declare "
                      "e.g. 'precision mediump float;' (GLSL ES 1.00 "
                      "requires this in fragment shaders)",
                      vd.type.ToString().c_str()));
    }
  }

  // --- scopes & symbols ---
  void PushScope() { scopes_.emplace_back(); }
  void PopScope() { scopes_.pop_back(); }

  VarDecl* Lookup(const std::string& name) {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      const auto f = it->find(name);
      if (f != it->end()) return f->second;
    }
    return nullptr;
  }

  void DeclareInCurrentScope(VarDecl* vd) {
    auto& scope = scopes_.back();
    if (scope.count(vd->name) != 0) {
      Error(vd->loc, StrFormat("redeclaration of '%s'", vd->name.c_str()));
      return;
    }
    if (scopes_.size() == 1 && functions_.count(vd->name) != 0) {
      Error(vd->loc, StrFormat("'%s' is already declared as a function",
                               vd->name.c_str()));
      return;
    }
    scope[vd->name] = vd;
  }

  // --- builtin gl_* variables ---
  VarDecl* AddBuiltinVar(std::string name, Type type, Qualifier qual,
                         std::int32_t const_value = 0, bool has_const = false) {
    auto vd = std::make_unique<VarDecl>();
    vd->name = std::move(name);
    vd->type = type;
    vd->qual = qual;
    vd->precision = Precision::kHigh;
    vd->is_builtin = true;
    vd->slot = static_cast<int>(cs_.globals.size());
    if (has_const) {
      vd->init = std::make_unique<IntLitExpr>(SrcLoc{}, const_value);
      vd->init->type = MakeType(BaseType::kInt);
    }
    VarDecl* raw = vd.get();
    cs_.globals.push_back(raw);
    cs_.builtin_vars.push_back(std::move(vd));
    scopes_.front()[raw->name] = raw;
    return raw;
  }

  void DeclareBuiltinVars() {
    const Limits& lim = cs_.limits;
    if (cs_.stage == Stage::kVertex) {
      AddBuiltinVar("gl_Position", MakeType(BaseType::kVec4),
                    Qualifier::kNone);
      AddBuiltinVar("gl_PointSize", MakeType(BaseType::kFloat),
                    Qualifier::kNone);
    } else {
      AddBuiltinVar("gl_FragCoord", MakeType(BaseType::kVec4),
                    Qualifier::kConst);
      AddBuiltinVar("gl_FrontFacing", MakeType(BaseType::kBool),
                    Qualifier::kConst);
      AddBuiltinVar("gl_PointCoord", MakeType(BaseType::kVec2),
                    Qualifier::kConst);
      AddBuiltinVar("gl_FragColor", MakeType(BaseType::kVec4),
                    Qualifier::kNone);
      Type frag_data = MakeType(BaseType::kVec4);
      frag_data.array_size = lim.max_draw_buffers;
      AddBuiltinVar("gl_FragData", frag_data, Qualifier::kNone);
    }
    const Type int_t = MakeType(BaseType::kInt);
    AddBuiltinVar("gl_MaxVertexAttribs", int_t, Qualifier::kConst,
                  lim.max_vertex_attribs, true);
    AddBuiltinVar("gl_MaxVertexUniformVectors", int_t, Qualifier::kConst,
                  lim.max_vertex_uniform_vectors, true);
    AddBuiltinVar("gl_MaxVaryingVectors", int_t, Qualifier::kConst,
                  lim.max_varying_vectors, true);
    AddBuiltinVar("gl_MaxVertexTextureImageUnits", int_t, Qualifier::kConst,
                  lim.max_vertex_texture_image_units, true);
    AddBuiltinVar("gl_MaxCombinedTextureImageUnits", int_t, Qualifier::kConst,
                  lim.max_texture_image_units +
                      lim.max_vertex_texture_image_units,
                  true);
    AddBuiltinVar("gl_MaxTextureImageUnits", int_t, Qualifier::kConst,
                  lim.max_texture_image_units, true);
    AddBuiltinVar("gl_MaxFragmentUniformVectors", int_t, Qualifier::kConst,
                  lim.max_fragment_uniform_vectors, true);
    AddBuiltinVar("gl_MaxDrawBuffers", int_t, Qualifier::kConst,
                  lim.max_draw_buffers, true);
  }

  // --- functions ---
  void RegisterFunctions() {
    for (auto& fn : cs_.tu->functions) {
      if (IsBuiltinName(fn->name)) {
        Error(fn->loc, StrFormat("redefinition of built-in function '%s'",
                                 fn->name.c_str()));
        continue;
      }
      if (fn->name.rfind("gl_", 0) == 0) {
        Error(fn->loc, "identifiers starting with 'gl_' are reserved");
        continue;
      }
      if (fn->return_type.IsArray()) {
        Error(fn->loc, "functions may not return arrays in GLSL ES 1.00");
      }
      auto& overloads = functions_[fn->name];
      bool merged = false;
      for (FunctionDecl*& other : overloads) {
        if (SameSignature(*other, *fn)) {
          if (other->body && fn->body) {
            Error(fn->loc, StrFormat("redefinition of function '%s'",
                                     fn->name.c_str()));
          }
          // Keep one canonical decl per signature, preferring the
          // definition, so call-graph edges (recursion check) and call
          // resolution always target the body.
          if (fn->body && !other->body) other = fn.get();
          merged = true;
          break;
        }
      }
      if (!merged) overloads.push_back(fn.get());
    }
  }

  static bool SameSignature(const FunctionDecl& a, const FunctionDecl& b) {
    if (a.params.size() != b.params.size()) return false;
    for (std::size_t i = 0; i < a.params.size(); ++i) {
      if (!(a.params[i]->type == b.params[i]->type)) return false;
    }
    return true;
  }

  void FindMain() {
    const auto it = functions_.find("main");
    if (it == functions_.end()) {
      Error({0, 0}, "missing entry point: 'void main()' not defined");
      return;
    }
    for (FunctionDecl* fn : it->second) {
      if (fn->params.empty() && fn->body) {
        if (fn->return_type.base != BaseType::kVoid) {
          Error(fn->loc, "main() must return void");
        }
        cs_.main = fn;
        return;
      }
    }
    Error({0, 0}, "missing entry point: 'void main()' not defined");
  }

  void CheckRecursion() {
    // GLSL ES 1.00 §6.1: recursion is not allowed, even statically.
    std::set<const FunctionDecl*> visiting;
    std::set<const FunctionDecl*> done;
    for (auto& fn : cs_.tu->functions) {
      DetectCycle(fn.get(), visiting, done);
    }
  }

  void DetectCycle(const FunctionDecl* fn,
                   std::set<const FunctionDecl*>& visiting,
                   std::set<const FunctionDecl*>& done) {
    if (done.count(fn) != 0) return;
    if (visiting.count(fn) != 0) {
      Error(fn->loc, StrFormat("static recursion involving '%s' is not "
                               "allowed in GLSL ES 1.00",
                               fn->name.c_str()));
      done.insert(fn);
      return;
    }
    visiting.insert(fn);
    const auto it = callgraph_.find(fn);
    if (it != callgraph_.end()) {
      for (const FunctionDecl* callee : it->second) {
        DetectCycle(callee, visiting, done);
      }
    }
    visiting.erase(fn);
    done.insert(fn);
  }

  void CheckResourceLimits() {
    int attribs = 0, varyings = 0, uniforms = 0;
    for (const VarDecl* g : cs_.globals) {
      if (g->is_builtin) continue;
      switch (g->qual) {
        case Qualifier::kAttribute: attribs += Vec4Slots(g->type); break;
        case Qualifier::kVarying: varyings += Vec4Slots(g->type); break;
        case Qualifier::kUniform: uniforms += Vec4Slots(g->type); break;
        default: break;
      }
    }
    const Limits& lim = cs_.limits;
    if (attribs > lim.max_vertex_attribs) {
      Error({0, 0}, StrFormat("too many attributes: %d > "
                              "GL_MAX_VERTEX_ATTRIBS (%d)",
                              attribs, lim.max_vertex_attribs));
    }
    if (varyings > lim.max_varying_vectors) {
      Error({0, 0}, StrFormat("too many varyings: %d > "
                              "GL_MAX_VARYING_VECTORS (%d)",
                              varyings, lim.max_varying_vectors));
    }
    const int max_uniforms = cs_.stage == Stage::kVertex
                                 ? lim.max_vertex_uniform_vectors
                                 : lim.max_fragment_uniform_vectors;
    if (uniforms > max_uniforms) {
      Error({0, 0}, StrFormat("too many uniforms: %d > %d vec4 equivalents",
                              uniforms, max_uniforms));
    }
  }

  // --- declarations ---
  void DeclareGlobal(VarDecl* vd) {
    if (vd->name.rfind("gl_", 0) == 0) {
      Error(vd->loc, "identifiers starting with 'gl_' are reserved");
      return;
    }
    CheckQualifierRules(*vd, /*is_global=*/true);
    RequirePrecision(*vd);
    if (vd->init) {
      if (vd->qual == Qualifier::kAttribute ||
          vd->qual == Qualifier::kUniform || vd->qual == Qualifier::kVarying) {
        Error(vd->loc, "attribute/uniform/varying variables may not have "
                       "initializers");
      }
      if (vd->type.IsArray()) {
        Error(vd->loc, "arrays may not be initialized in GLSL ES 1.00");
      }
      const Type t = CheckExpr(*vd->init);
      if (!(t == kErrorType) && !(t == vd->type)) {
        Error(vd->loc,
              StrFormat("cannot initialize '%s' (%s) with expression of type "
                        "%s",
                        vd->name.c_str(), vd->type.ToString().c_str(),
                        t.ToString().c_str()));
      }
    } else if (vd->qual == Qualifier::kConst) {
      Error(vd->loc, "const variables require an initializer");
    }
    vd->slot = static_cast<int>(cs_.globals.size());
    cs_.globals.push_back(vd);
    DeclareInCurrentScope(vd);
  }

  void CheckQualifierRules(const VarDecl& vd, bool is_global) {
    if (IsSampler(vd.type.base)) {
      const bool ok = (is_global && vd.qual == Qualifier::kUniform) ||
                      (vd.is_param && vd.qual != Qualifier::kUniform);
      if (!ok) {
        Error(vd.loc, "samplers may only be declared as uniforms or function "
                      "parameters");
      }
      return;
    }
    switch (vd.qual) {
      case Qualifier::kAttribute:
        if (cs_.stage != Stage::kVertex) {
          Error(vd.loc, "attributes are only allowed in vertex shaders");
        }
        if (!IsFloatFamily(vd.type.base)) {
          Error(vd.loc, "attributes must have float, vector or matrix type");
        }
        if (vd.type.IsArray()) {
          Error(vd.loc, "attributes may not be arrays");
        }
        break;
      case Qualifier::kVarying:
        if (!IsFloatFamily(vd.type.base)) {
          Error(vd.loc, "varyings must have float, vector or matrix type");
        }
        break;
      default:
        break;
    }
  }

  void CheckFunction(FunctionDecl& fn) {
    current_fn_ = &fn;
    next_frame_slot_ = 0;
    PushScope();
    for (auto& p : fn.params) {
      if (p->type.base != BaseType::kVoid) {
        RequirePrecision(*p);
        p->slot = next_frame_slot_;
        next_frame_slot_ += 1;
        if (!p->name.empty()) DeclareInCurrentScope(p.get());
      }
    }
    CheckBlockInCurrentScope(*fn.body);
    PopScope();
    fn.frame_size = next_frame_slot_;
    current_fn_ = nullptr;
  }

  // --- statements ---
  void CheckStmt(Stmt& s) {
    switch (s.kind) {
      case StmtKind::kBlock: {
        PushScope();
        CheckBlockInCurrentScope(static_cast<BlockStmt&>(s));
        PopScope();
        break;
      }
      case StmtKind::kExpr: {
        auto& es = static_cast<ExprStmt&>(s);
        if (es.expr) CheckExpr(*es.expr);
        break;
      }
      case StmtKind::kDecl: {
        auto& ds = static_cast<DeclStmt&>(s);
        for (auto& vd : ds.decls) CheckLocalDecl(*vd);
        break;
      }
      case StmtKind::kIf: {
        auto& is = static_cast<IfStmt&>(s);
        RequireBoolCond(*is.cond, "if");
        CheckStmt(*is.then_stmt);
        if (is.else_stmt) CheckStmt(*is.else_stmt);
        break;
      }
      case StmtKind::kFor: {
        auto& fs = static_cast<ForStmt&>(s);
        PushScope();
        if (fs.init) CheckStmt(*fs.init);
        if (fs.cond) RequireBoolCond(*fs.cond, "for");
        if (fs.step) CheckExpr(*fs.step);
        ++loop_depth_;
        CheckStmt(*fs.body);
        --loop_depth_;
        PopScope();
        break;
      }
      case StmtKind::kWhile: {
        auto& ws = static_cast<WhileStmt&>(s);
        RequireBoolCond(*ws.cond, "while");
        ++loop_depth_;
        CheckStmt(*ws.body);
        --loop_depth_;
        break;
      }
      case StmtKind::kDoWhile: {
        auto& ds = static_cast<DoWhileStmt&>(s);
        ++loop_depth_;
        CheckStmt(*ds.body);
        --loop_depth_;
        RequireBoolCond(*ds.cond, "do-while");
        break;
      }
      case StmtKind::kReturn: {
        auto& rs = static_cast<ReturnStmt&>(s);
        const Type expected =
            current_fn_ ? current_fn_->return_type : MakeType(BaseType::kVoid);
        if (rs.value) {
          const Type t = CheckExpr(*rs.value);
          if (expected.base == BaseType::kVoid) {
            Error(rs.loc, "void function may not return a value");
          } else if (!(t == kErrorType) && !(t == expected)) {
            Error(rs.loc, StrFormat("return type mismatch: expected %s, got "
                                    "%s",
                                    expected.ToString().c_str(),
                                    t.ToString().c_str()));
          }
        } else if (expected.base != BaseType::kVoid) {
          Error(rs.loc, "non-void function must return a value");
        }
        break;
      }
      case StmtKind::kBreak:
        if (loop_depth_ == 0) Error(s.loc, "'break' outside of a loop");
        break;
      case StmtKind::kContinue:
        if (loop_depth_ == 0) Error(s.loc, "'continue' outside of a loop");
        break;
      case StmtKind::kDiscard:
        if (cs_.stage != Stage::kFragment) {
          Error(s.loc, "'discard' is only allowed in fragment shaders");
        }
        break;
    }
  }

  void CheckBlockInCurrentScope(BlockStmt& b) {
    for (auto& st : b.stmts) CheckStmt(*st);
  }

  void CheckLocalDecl(VarDecl& vd) {
    if (vd.name.rfind("gl_", 0) == 0) {
      Error(vd.loc, "identifiers starting with 'gl_' are reserved");
    }
    CheckQualifierRules(vd, /*is_global=*/false);
    RequirePrecision(vd);
    if (vd.init) {
      if (vd.type.IsArray()) {
        Error(vd.loc, "arrays may not be initialized in GLSL ES 1.00");
      }
      const Type t = CheckExpr(*vd.init);
      if (!(t == kErrorType) && !(t == vd.type)) {
        Error(vd.loc,
              StrFormat("cannot initialize '%s' (%s) with expression of type "
                        "%s (GLSL ES has no implicit conversions)",
                        vd.name.c_str(), vd.type.ToString().c_str(),
                        t.ToString().c_str()));
      }
    } else if (vd.qual == Qualifier::kConst) {
      Error(vd.loc, "const variables require an initializer");
    }
    vd.slot = next_frame_slot_++;
    DeclareInCurrentScope(&vd);
  }

  void RequireBoolCond(Expr& e, const char* what) {
    const Type t = CheckExpr(e);
    if (!(t == kErrorType) && !(t == MakeType(BaseType::kBool))) {
      Error(e.loc, StrFormat("%s condition must be a scalar bool, got %s",
                             what, t.ToString().c_str()));
    }
  }

  // --- expressions ---
  Type CheckExpr(Expr& e) {
    switch (e.kind) {
      case ExprKind::kIntLit:
        e.type = MakeType(BaseType::kInt);
        return e.type;
      case ExprKind::kFloatLit:
        e.type = MakeType(BaseType::kFloat);
        return e.type;
      case ExprKind::kBoolLit:
        e.type = MakeType(BaseType::kBool);
        return e.type;
      case ExprKind::kVarRef: {
        auto& v = static_cast<VarRefExpr&>(e);
        VarDecl* decl = Lookup(v.name);
        if (decl == nullptr) {
          Error(v.loc, StrFormat("use of undeclared identifier '%s'",
                                 v.name.c_str()));
          e.type = kErrorType;
          return e.type;
        }
        v.decl = decl;
        v.slot = decl->slot;
        v.scope = (decl->is_param || IsLocal(decl)) ? VarScope::kLocal
                                                    : VarScope::kGlobal;
        e.type = decl->type;
        return e.type;
      }
      case ExprKind::kCall:
        return CheckCall(static_cast<CallExpr&>(e));
      case ExprKind::kCtor:
        return CheckCtor(static_cast<CtorExpr&>(e));
      case ExprKind::kBinary:
        return CheckBinary(static_cast<BinaryExpr&>(e));
      case ExprKind::kUnary:
        return CheckUnary(static_cast<UnaryExpr&>(e));
      case ExprKind::kAssign:
        return CheckAssign(static_cast<AssignExpr&>(e));
      case ExprKind::kTernary: {
        auto& t = static_cast<TernaryExpr&>(e);
        RequireBoolCond(*t.cond, "'?:'");
        const Type a = CheckExpr(*t.then_expr);
        const Type b = CheckExpr(*t.else_expr);
        if (a == kErrorType || b == kErrorType) {
          e.type = kErrorType;
        } else if (!(a == b)) {
          Error(e.loc, StrFormat("'?:' requires both results to have the "
                                 "same type (%s vs %s)",
                                 a.ToString().c_str(), b.ToString().c_str()));
          e.type = kErrorType;
        } else {
          e.type = a;
        }
        return e.type;
      }
      case ExprKind::kIndex:
        return CheckIndex(static_cast<IndexExpr&>(e));
      case ExprKind::kSwizzle:
        return CheckSwizzle(static_cast<SwizzleExpr&>(e));
      case ExprKind::kComma: {
        auto& c = static_cast<CommaExpr&>(e);
        CheckExpr(*c.lhs);
        e.type = CheckExpr(*c.rhs);
        return e.type;
      }
    }
    e.type = kErrorType;
    return e.type;
  }

  bool IsLocal(const VarDecl* decl) const {
    // A decl found in any scope other than the global one is local. Globals
    // (user + builtin) are registered in scopes_.front().
    const auto it = scopes_.front().find(decl->name);
    return !(it != scopes_.front().end() && it->second == decl);
  }

  Type CheckCall(CallExpr& call) {
    std::vector<Type> arg_types;
    arg_types.reserve(call.args.size());
    bool arg_error = false;
    for (auto& a : call.args) {
      const Type t = CheckExpr(*a);
      if (t == kErrorType) arg_error = true;
      arg_types.push_back(t);
    }
    if (arg_error) {
      call.type = kErrorType;
      return call.type;
    }
    const auto it = functions_.find(call.callee);
    if (it != functions_.end()) {
      for (FunctionDecl* fn : it->second) {
        if (fn->params.size() != arg_types.size()) continue;
        bool match = true;
        for (std::size_t i = 0; i < arg_types.size(); ++i) {
          if (!(fn->params[i]->type == arg_types[i])) {
            match = false;
            break;
          }
        }
        if (!match) continue;
        call.fn = fn;
        // out/inout arguments must be l-values.
        for (std::size_t i = 0; i < call.args.size(); ++i) {
          if (fn->params[i]->dir != ParamDir::kIn) {
            CheckLValue(*call.args[i], "pass as out/inout argument");
          }
        }
        if (current_fn_ != nullptr) callgraph_[current_fn_].insert(fn);
        call.type = fn->return_type;
        return call.type;
      }
      Error(call.loc, StrFormat("no overload of '%s' matches the argument "
                                "types",
                                call.callee.c_str()));
      call.type = kErrorType;
      return call.type;
    }
    const BuiltinResolution r =
        ResolveBuiltin(call.callee, arg_types, cs_.stage);
    if (!r.ok) {
      Error(call.loc, r.error);
      call.type = kErrorType;
      return call.type;
    }
    call.builtin = static_cast<int>(r.builtin);
    call.type = r.result_type;
    return call.type;
  }

  Type CheckCtor(CtorExpr& ctor) {
    const BaseType target = ctor.ctor_type.base;
    std::vector<Type> arg_types;
    for (auto& a : ctor.args) {
      const Type t = CheckExpr(*a);
      if (t == kErrorType) {
        ctor.type = kErrorType;
        return ctor.type;
      }
      if (t.IsArray() || t.base == BaseType::kVoid || IsSampler(t.base)) {
        Error(a->loc, "invalid constructor argument type");
        ctor.type = kErrorType;
        return ctor.type;
      }
      arg_types.push_back(t);
    }
    if (target == BaseType::kVoid || IsSampler(target)) {
      Error(ctor.loc, "cannot construct this type");
      ctor.type = kErrorType;
      return ctor.type;
    }
    ctor.type = ctor.ctor_type;
    if (IsScalar(target)) {
      if (arg_types.size() != 1) {
        Error(ctor.loc, "scalar constructors take exactly one argument");
        ctor.type = kErrorType;
      }
      return ctor.type;
    }
    if (IsVector(target)) {
      const int needed = ComponentCount(target);
      if (arg_types.size() == 1 && IsScalar(arg_types[0].base)) {
        return ctor.type;  // broadcast
      }
      if (arg_types.size() == 1 && IsMatrix(arg_types[0].base)) {
        Error(ctor.loc, "cannot construct a vector from a matrix");
        ctor.type = kErrorType;
        return ctor.type;
      }
      int have = 0;
      for (std::size_t i = 0; i < arg_types.size(); ++i) {
        if (have >= needed) {
          Error(ctor.args[i]->loc, "unused constructor argument");
          ctor.type = kErrorType;
          return ctor.type;
        }
        have += ComponentCount(arg_types[i].base);
      }
      if (have < needed) {
        Error(ctor.loc,
              StrFormat("not enough components to construct %s (%d of %d)",
                        BaseTypeName(target), have, needed));
        ctor.type = kErrorType;
      }
      return ctor.type;
    }
    // Matrix constructors.
    const int needed = ComponentCount(target);
    if (arg_types.size() == 1 && IsScalar(arg_types[0].base)) {
      return ctor.type;  // diagonal
    }
    if (arg_types.size() == 1 && IsMatrix(arg_types[0].base)) {
      return ctor.type;  // submatrix / identity-extended
    }
    int have = 0;
    for (std::size_t i = 0; i < arg_types.size(); ++i) {
      if (IsMatrix(arg_types[i].base)) {
        Error(ctor.args[i]->loc,
              "matrices cannot be mixed with other arguments in a matrix "
              "constructor");
        ctor.type = kErrorType;
        return ctor.type;
      }
      have += ComponentCount(arg_types[i].base);
    }
    if (have != needed) {
      Error(ctor.loc,
            StrFormat("matrix constructor requires exactly %d components, "
                      "got %d",
                      needed, have));
      ctor.type = kErrorType;
    }
    return ctor.type;
  }

  Type CheckBinary(BinaryExpr& b) {
    const Type l = CheckExpr(*b.lhs);
    const Type r = CheckExpr(*b.rhs);
    if (l == kErrorType || r == kErrorType) {
      b.type = kErrorType;
      return b.type;
    }
    switch (b.op) {
      case BinOp::kAdd:
      case BinOp::kSub:
      case BinOp::kMul:
      case BinOp::kDiv:
        b.type = ArithmeticResult(b.op, l, r, b.loc);
        return b.type;
      case BinOp::kLt:
      case BinOp::kGt:
      case BinOp::kLe:
      case BinOp::kGe:
        if (!(l == r) || l.IsArray() ||
            (l.base != BaseType::kFloat && l.base != BaseType::kInt)) {
          Error(b.loc, StrFormat("relational operators require two scalar "
                                 "ints or floats (%s vs %s)",
                                 l.ToString().c_str(), r.ToString().c_str()));
          b.type = kErrorType;
        } else {
          b.type = MakeType(BaseType::kBool);
        }
        return b.type;
      case BinOp::kEq:
      case BinOp::kNe:
        if (!(l == r) || l.IsArray() || IsSampler(l.base) ||
            l.base == BaseType::kVoid) {
          Error(b.loc, StrFormat("cannot compare %s with %s",
                                 l.ToString().c_str(), r.ToString().c_str()));
          b.type = kErrorType;
        } else {
          b.type = MakeType(BaseType::kBool);
        }
        return b.type;
      case BinOp::kLogicalAnd:
      case BinOp::kLogicalOr:
      case BinOp::kLogicalXor:
        if (!(l == MakeType(BaseType::kBool)) ||
            !(r == MakeType(BaseType::kBool))) {
          Error(b.loc, "logical operators require scalar bool operands");
          b.type = kErrorType;
        } else {
          b.type = MakeType(BaseType::kBool);
        }
        return b.type;
    }
    b.type = kErrorType;
    return b.type;
  }

  Type ArithmeticResult(BinOp op, const Type& l, const Type& r, SrcLoc loc) {
    if (l.IsArray() || r.IsArray() || !IsNumeric(l.base) ||
        !IsNumeric(r.base)) {
      Error(loc, StrFormat("invalid operands to arithmetic operator (%s and "
                           "%s)",
                           l.ToString().c_str(), r.ToString().c_str()));
      return kErrorType;
    }
    if (ScalarOf(l.base) != ScalarOf(r.base)) {
      Error(loc, StrFormat("no implicit conversion between %s and %s in GLSL "
                           "ES 1.00; use a constructor",
                           l.ToString().c_str(), r.ToString().c_str()));
      return kErrorType;
    }
    const bool l_scalar = IsScalar(l.base);
    const bool r_scalar = IsScalar(r.base);
    const bool l_vec = IsVector(l.base);
    const bool r_vec = IsVector(r.base);
    const bool l_mat = IsMatrix(l.base);
    const bool r_mat = IsMatrix(r.base);
    if (l_scalar && r_scalar) return l;
    if (l_scalar) return r;  // scalar op vec/mat -> component-wise
    if (r_scalar) return l;
    if (l_vec && r_vec) {
      if (l == r) return l;
      Error(loc, "vector operands must have the same size");
      return kErrorType;
    }
    if (op == BinOp::kMul) {
      // Linear-algebra multiply.
      if (l_mat && r_mat) {
        if (l == r) return l;  // square matrices only in GLSL ES
        Error(loc, "matrix sizes do not match for multiplication");
        return kErrorType;
      }
      if (l_mat && r_vec) {
        if (ColumnCount(l.base) == ComponentCount(r.base)) return r;
        Error(loc, "matrix * vector size mismatch");
        return kErrorType;
      }
      if (l_vec && r_mat) {
        if (ComponentCount(l.base) == RowCount(r.base)) return l;
        Error(loc, "vector * matrix size mismatch");
        return kErrorType;
      }
    } else if (l_mat && r_mat) {
      if (l == r) return l;  // component-wise +,-,/
      Error(loc, "matrix operands must have the same size");
      return kErrorType;
    }
    Error(loc, StrFormat("invalid operands (%s and %s)",
                         l.ToString().c_str(), r.ToString().c_str()));
    return kErrorType;
  }

  Type CheckUnary(UnaryExpr& u) {
    const Type t = CheckExpr(*u.operand);
    if (t == kErrorType) {
      u.type = kErrorType;
      return u.type;
    }
    switch (u.op) {
      case UnOp::kNeg:
      case UnOp::kPlus:
        if (!IsNumeric(t.base) || t.IsArray()) {
          Error(u.loc, "unary +/- requires a numeric operand");
          u.type = kErrorType;
        } else {
          u.type = t;
        }
        return u.type;
      case UnOp::kNot:
        if (!(t == MakeType(BaseType::kBool))) {
          Error(u.loc, "'!' requires a scalar bool operand");
          u.type = kErrorType;
        } else {
          u.type = t;
        }
        return u.type;
      case UnOp::kPreInc:
      case UnOp::kPreDec:
      case UnOp::kPostInc:
      case UnOp::kPostDec:
        if (!IsNumeric(t.base) || t.IsArray() || IsMatrix(t.base)) {
          Error(u.loc, "++/-- requires a scalar or vector numeric l-value");
          u.type = kErrorType;
          return u.type;
        }
        CheckLValue(*u.operand, "increment/decrement");
        u.type = t;
        return u.type;
    }
    u.type = kErrorType;
    return u.type;
  }

  Type CheckAssign(AssignExpr& a) {
    const Type lt = CheckExpr(*a.lhs);
    const Type rt = CheckExpr(*a.rhs);
    if (lt == kErrorType || rt == kErrorType) {
      a.type = kErrorType;
      return a.type;
    }
    CheckLValue(*a.lhs, "assign to");
    if (lt.IsArray()) {
      Error(a.loc, "arrays cannot be assigned in GLSL ES 1.00");
      a.type = kErrorType;
      return a.type;
    }
    if (a.op == AssignOp::kAssign) {
      if (!(lt == rt)) {
        Error(a.loc, StrFormat("cannot assign %s to %s (GLSL ES has no "
                               "implicit conversions)",
                               rt.ToString().c_str(), lt.ToString().c_str()));
        a.type = kErrorType;
        return a.type;
      }
      a.type = lt;
      return a.type;
    }
    const BinOp op = a.op == AssignOp::kAdd   ? BinOp::kAdd
                     : a.op == AssignOp::kSub ? BinOp::kSub
                     : a.op == AssignOp::kMul ? BinOp::kMul
                                              : BinOp::kDiv;
    const Type result = ArithmeticResult(op, lt, rt, a.loc);
    if (result == kErrorType) {
      a.type = kErrorType;
      return a.type;
    }
    if (!(result == lt)) {
      Error(a.loc, "compound assignment result type does not match the "
                   "l-value type");
      a.type = kErrorType;
      return a.type;
    }
    a.type = lt;
    return a.type;
  }

  Type CheckIndex(IndexExpr& ix) {
    const Type bt = CheckExpr(*ix.base);
    const Type it = CheckExpr(*ix.index);
    if (bt == kErrorType || it == kErrorType) {
      ix.type = kErrorType;
      return ix.type;
    }
    if (!(it == MakeType(BaseType::kInt))) {
      Error(ix.index->loc, "index must be an int");
      ix.type = kErrorType;
      return ix.type;
    }
    int limit = 0;
    Type result = kErrorType;
    if (bt.IsArray()) {
      limit = bt.array_size;
      result = bt.ElementType();
    } else if (IsMatrix(bt.base)) {
      limit = ColumnCount(bt.base);
      result = MakeType(ColumnTypeOf(bt.base));
    } else if (IsVector(bt.base)) {
      limit = ComponentCount(bt.base);
      result = MakeType(ScalarOf(bt.base));
    } else {
      Error(ix.loc, StrFormat("type %s cannot be indexed",
                              bt.ToString().c_str()));
      ix.type = kErrorType;
      return ix.type;
    }
    if (ix.index->kind == ExprKind::kIntLit) {
      const auto v = static_cast<const IntLitExpr&>(*ix.index).value;
      if (v < 0 || v >= limit) {
        Error(ix.index->loc,
              StrFormat("index %d out of range [0, %d)", v, limit));
      }
    }
    ix.type = result;
    return ix.type;
  }

  Type CheckSwizzle(SwizzleExpr& sw) {
    const Type bt = CheckExpr(*sw.base);
    if (bt == kErrorType) {
      sw.type = kErrorType;
      return sw.type;
    }
    if (!IsVector(bt.base) || bt.IsArray()) {
      Error(sw.loc, StrFormat("cannot apply '.%s' to type %s (structs are "
                              "not supported; only vector swizzles exist)",
                              sw.field.c_str(), bt.ToString().c_str()));
      sw.type = kErrorType;
      return sw.type;
    }
    static constexpr const char* kSets[3] = {"xyzw", "rgba", "stpq"};
    const int len = static_cast<int>(sw.field.size());
    if (len < 1 || len > 4) {
      Error(sw.loc, "swizzles select between 1 and 4 components");
      sw.type = kErrorType;
      return sw.type;
    }
    int set = -1;
    for (int s = 0; s < 3; ++s) {
      if (std::string(kSets[s]).find(sw.field[0]) != std::string::npos) {
        set = s;
        break;
      }
    }
    const int base_size = ComponentCount(bt.base);
    for (int i = 0; i < len; ++i) {
      const char c = sw.field[static_cast<std::size_t>(i)];
      const char* setchars = set >= 0 ? kSets[set] : "";
      const char* p =
          set >= 0 ? std::strchr(setchars, c) : nullptr;
      if (p == nullptr) {
        Error(sw.loc, StrFormat("invalid swizzle '.%s' (components must come "
                                "from a single set of xyzw/rgba/stpq)",
                                sw.field.c_str()));
        sw.type = kErrorType;
        return sw.type;
      }
      const int comp = static_cast<int>(p - setchars);
      if (comp >= base_size) {
        Error(sw.loc, StrFormat("swizzle component '%c' exceeds %s", c,
                                bt.ToString().c_str()));
        sw.type = kErrorType;
        return sw.type;
      }
      sw.comps[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(comp);
    }
    sw.count = len;
    sw.type = MakeType(VectorOf(ScalarOf(bt.base), len));
    return sw.type;
  }

  void CheckLValue(Expr& e, const char* action) {
    switch (e.kind) {
      case ExprKind::kVarRef: {
        const auto& v = static_cast<const VarRefExpr&>(e);
        if (v.decl == nullptr) return;  // already an error
        switch (v.decl->qual) {
          case Qualifier::kConst:
            Error(e.loc, StrFormat("cannot %s read-only variable '%s'",
                                   action, v.name.c_str()));
            return;
          case Qualifier::kAttribute:
            Error(e.loc, StrFormat("cannot %s attribute '%s'", action,
                                   v.name.c_str()));
            return;
          case Qualifier::kUniform:
            Error(e.loc, StrFormat("cannot %s uniform '%s'", action,
                                   v.name.c_str()));
            return;
          case Qualifier::kVarying:
            if (cs_.stage == Stage::kFragment) {
              Error(e.loc, StrFormat("varyings are read-only in fragment "
                                     "shaders; cannot %s '%s'",
                                     action, v.name.c_str()));
            }
            return;
          default:
            if (v.decl->is_param && v.decl->qual == Qualifier::kConst) {
              Error(e.loc, "cannot write to a const parameter");
            }
            return;
        }
      }
      case ExprKind::kSwizzle: {
        auto& sw = static_cast<SwizzleExpr&>(e);
        for (int i = 0; i < sw.count; ++i) {
          for (int j = i + 1; j < sw.count; ++j) {
            if (sw.comps[static_cast<std::size_t>(i)] ==
                sw.comps[static_cast<std::size_t>(j)]) {
              Error(e.loc, "swizzle used as l-value may not repeat "
                           "components");
              return;
            }
          }
        }
        CheckLValue(*sw.base, action);
        return;
      }
      case ExprKind::kIndex:
        CheckLValue(*static_cast<IndexExpr&>(e).base, action);
        return;
      default:
        Error(e.loc, StrFormat("expression is not assignable (cannot %s it)",
                               action));
        return;
    }
  }

  CompiledShader& cs_;
  DiagSink& diags_;
  std::vector<std::unordered_map<std::string, VarDecl*>> scopes_;
  std::unordered_map<std::string, std::vector<FunctionDecl*>> functions_;
  FunctionDecl* current_fn_ = nullptr;
  int loop_depth_ = 0;
  int next_frame_slot_ = 0;
  std::map<BaseType, Precision> default_prec_;
  std::map<const FunctionDecl*, std::set<const FunctionDecl*>> callgraph_;
};

}  // namespace

std::unique_ptr<CompiledShader> Analyze(std::unique_ptr<TranslationUnit> tu,
                                        Stage stage, const Limits& limits,
                                        DiagSink& diags) {
  auto cs = std::make_unique<CompiledShader>();
  cs->stage = stage;
  cs->limits = limits;
  cs->tu = std::move(tu);
  Sema(*cs, diags).Run();
  return cs;
}

}  // namespace mgpu::glsl
