// Runtime values for the GLSL interpreter. A Value is a fixed-size bag of
// scalar cells typed by a glsl::Type; floats live in IEEE binary32 exactly as
// they would in GPU registers, ints/bools/samplers in 32-bit integers.
#ifndef MGPU_GLSL_VALUE_H_
#define MGPU_GLSL_VALUE_H_

#include <array>
#include <cstdint>
#include <vector>

#include "glsl/type.h"

namespace mgpu::glsl {

union Cell {
  float f;
  std::int32_t i;
};

class Value {
 public:
  Value() : type_{BaseType::kVoid, kNotArray}, count_(0) {}
  explicit Value(Type t) : type_(t), count_(t.CellCount()) {
    if (count_ > kInline) heap_.resize(static_cast<std::size_t>(count_));
    for (int k = 0; k < count_; ++k) data()[k].i = 0;
  }

  [[nodiscard]] static Value MakeFloat(float f) {
    Value v(MakeType(BaseType::kFloat));
    v.data()[0].f = f;
    return v;
  }
  [[nodiscard]] static Value MakeInt(std::int32_t i) {
    Value v(MakeType(BaseType::kInt));
    v.data()[0].i = i;
    return v;
  }
  [[nodiscard]] static Value MakeBool(bool b) {
    Value v(MakeType(BaseType::kBool));
    v.data()[0].i = b ? 1 : 0;
    return v;
  }
  [[nodiscard]] static Value MakeVec4(float x, float y, float z, float w) {
    Value v(MakeType(BaseType::kVec4));
    v.data()[0].f = x;
    v.data()[1].f = y;
    v.data()[2].f = z;
    v.data()[3].f = w;
    return v;
  }
  [[nodiscard]] static Value MakeVec2(float x, float y) {
    Value v(MakeType(BaseType::kVec2));
    v.data()[0].f = x;
    v.data()[1].f = y;
    return v;
  }

  [[nodiscard]] const Type& type() const { return type_; }
  [[nodiscard]] int count() const { return count_; }

  [[nodiscard]] Cell* data() {
    return count_ > kInline ? heap_.data() : inline_.data();
  }
  [[nodiscard]] const Cell* data() const {
    return count_ > kInline ? heap_.data() : inline_.data();
  }

  [[nodiscard]] float F(int i) const { return data()[i].f; }
  [[nodiscard]] std::int32_t I(int i) const { return data()[i].i; }
  [[nodiscard]] bool B(int i) const { return data()[i].i != 0; }
  void SetF(int i, float f) { data()[i].f = f; }
  void SetI(int i, std::int32_t v) { data()[i].i = v; }
  void SetB(int i, bool b) { data()[i].i = b ? 1 : 0; }

  // Scalar category of the stored components.
  [[nodiscard]] BaseType scalar() const { return ScalarOf(type_.base); }

  // Reads component i converted to float regardless of category (bool->0/1).
  [[nodiscard]] float AsFloat(int i) const {
    return scalar() == BaseType::kFloat ? F(i) : static_cast<float>(I(i));
  }
  // Reads component i converted to int.
  [[nodiscard]] std::int32_t AsInt(int i) const {
    return scalar() == BaseType::kFloat ? static_cast<std::int32_t>(F(i))
                                        : I(i);
  }
  // Writes component i from a float, converting to this value's category
  // (bool gets the != 0 semantics of GLSL constructors).
  void SetFromFloat(int i, float f) {
    switch (scalar()) {
      case BaseType::kFloat:
        SetF(i, f);
        break;
      case BaseType::kBool:
        SetB(i, f != 0.0f);
        break;
      default:
        SetI(i, static_cast<std::int32_t>(f));
        break;
    }
  }
  // Copies component `src_i` of `src` into component i, converting category.
  void SetConverted(int i, const Value& src, int src_i) {
    if (src.scalar() == BaseType::kFloat) {
      SetFromFloat(i, src.F(src_i));
    } else {
      switch (scalar()) {
        case BaseType::kFloat:
          SetF(i, static_cast<float>(src.I(src_i)));
          break;
        case BaseType::kBool:
          SetB(i, src.I(src_i) != 0);
          break;
        default:
          SetI(i, src.I(src_i));
          break;
      }
    }
  }

  // Inline-cell capacity (largest non-array type: mat4). Values at or under
  // this never spill to the heap, so `data()` of such a Value always points
  // at kInline contiguous cells — the SIMD batch kernels rely on this to
  // over-read/over-write past count() but never past the inline storage
  // (cells beyond count() are unobservable).
  static constexpr int kInline = 16;

 private:
  Type type_;
  int count_;
  std::array<Cell, kInline> inline_{};
  std::vector<Cell> heap_;
};

}  // namespace mgpu::glsl

#endif  // MGPU_GLSL_VALUE_H_
