#include "glsl/parser.h"

#include <utility>

#include "common/strings.h"

namespace mgpu::glsl {
namespace {

// Internal unwinding exception; never escapes Parse().
struct ParseAbort {};

class Parser {
 public:
  Parser(const std::vector<Token>& tokens, DiagSink& diags)
      : toks_(tokens), diags_(diags) {}

  std::unique_ptr<TranslationUnit> Run() {
    auto tu = std::make_unique<TranslationUnit>();
    try {
      while (!AtEnd()) ParseGlobal(*tu);
    } catch (const ParseAbort&) {
      // Diagnostics already recorded.
    }
    return tu;
  }

 private:
  // --- token plumbing ---
  const Token& Peek(int off = 0) const {
    const std::size_t i = pos_ + static_cast<std::size_t>(off);
    return i < toks_.size() ? toks_[i] : toks_.back();
  }
  const Token& Prev() const { return toks_[pos_ > 0 ? pos_ - 1 : 0]; }
  bool AtEnd() const { return Peek().kind == Tok::kEof; }
  const Token& Advance() {
    const Token& t = Peek();
    if (!AtEnd()) ++pos_;
    return t;
  }
  bool Check(Tok k) const { return Peek().kind == k; }
  bool Match(Tok k) {
    if (!Check(k)) return false;
    Advance();
    return true;
  }
  const Token& Expect(Tok k, const char* context) {
    if (!Check(k)) {
      Fail(StrFormat("expected %s %s, got %s", TokName(k), context,
                     TokName(Peek().kind)));
    }
    return Advance();
  }
  [[noreturn]] void Fail(std::string msg) {
    diags_.Error(Peek().loc, std::move(msg));
    throw ParseAbort{};
  }

  // --- qualifiers / types ---
  static Precision PrecisionFromTok(Tok t) {
    switch (t) {
      case Tok::kKwLowp: return Precision::kLow;
      case Tok::kKwMediump: return Precision::kMedium;
      case Tok::kKwHighp: return Precision::kHigh;
      default: return Precision::kNone;
    }
  }
  bool CheckPrecisionTok() const {
    return Check(Tok::kKwLowp) || Check(Tok::kKwMediump) ||
           Check(Tok::kKwHighp);
  }
  Precision ParseOptPrecision() {
    if (CheckPrecisionTok()) return PrecisionFromTok(Advance().kind);
    return Precision::kNone;
  }

  // True when the upcoming tokens begin a declaration (inside a function).
  bool StartsDeclaration() const {
    if (Check(Tok::kKwConst) || CheckPrecisionTok()) return true;
    if (Check(Tok::kKwStruct)) return true;
    if (IsTypeToken(Peek().kind)) {
      // A type token followed by '(' is a constructor *expression*.
      return Peek(1).kind != Tok::kLParen;
    }
    return false;
  }

  Type ParseTypeSpecifier() {
    if (Check(Tok::kKwStruct)) {
      Fail("struct types are not supported by this implementation "
           "(documented subset)");
    }
    if (!IsTypeToken(Peek().kind)) {
      Fail(StrFormat("expected a type, got %s", TokName(Peek().kind)));
    }
    const Tok t = Advance().kind;
    return MakeType(TypeTokenToBase(t));
  }

  int ParseArraySuffix() {
    // '[' constant-int ']' — ES 1.00 requires a constant integral expression;
    // we accept integer literals (the subset the framework generates) plus
    // nothing else, diagnosing the rest.
    Expect(Tok::kLBracket, "in array declarator");
    if (!Check(Tok::kIntLiteral)) {
      Fail("array size must be an integer literal in this implementation");
    }
    const int n = Advance().int_value;
    if (n <= 0) Fail("array size must be positive");
    Expect(Tok::kRBracket, "after array size");
    return n;
  }

  // --- globals ---
  void ParseGlobal(TranslationUnit& tu) {
    if (Match(Tok::kKwPrecision)) {
      PrecisionDecl pd;
      pd.loc = Prev().loc;
      if (!CheckPrecisionTok()) Fail("expected precision qualifier");
      pd.precision = PrecisionFromTok(Advance().kind);
      const Type t = ParseTypeSpecifier();
      pd.base = t.base;
      if (pd.base != BaseType::kFloat && pd.base != BaseType::kInt &&
          !IsSampler(pd.base)) {
        Fail("default precision can only be set for float, int and sampler "
             "types");
      }
      Expect(Tok::kSemicolon, "after precision statement");
      tu.default_precisions.push_back(pd);
      return;
    }

    bool invariant = false;
    if (Match(Tok::kKwInvariant)) {
      invariant = true;
      // "invariant varying ..." or re-declaration "invariant gl_Position;"
      if (Check(Tok::kIdentifier)) {
        Advance();
        Expect(Tok::kSemicolon, "after invariant re-declaration");
        return;
      }
    }

    Qualifier qual = Qualifier::kNone;
    if (Match(Tok::kKwConst)) qual = Qualifier::kConst;
    else if (Match(Tok::kKwAttribute)) qual = Qualifier::kAttribute;
    else if (Match(Tok::kKwUniform)) qual = Qualifier::kUniform;
    else if (Match(Tok::kKwVarying)) qual = Qualifier::kVarying;

    const Precision prec = ParseOptPrecision();
    const SrcLoc type_loc = Peek().loc;
    Type type = ParseTypeSpecifier();

    // void f() {...}
    if (Check(Tok::kIdentifier) && Peek(1).kind == Tok::kLParen) {
      if (qual != Qualifier::kNone) {
        diags_.Error(type_loc, "storage qualifiers are not allowed on "
                               "function declarations");
      }
      ParseFunction(tu, type, prec);
      return;
    }

    if (type.base == BaseType::kVoid) {
      Fail("variables may not have void type");
    }

    // Variable declarator list.
    while (true) {
      auto vd = std::make_unique<VarDecl>();
      vd->loc = Peek().loc;
      vd->name = Expect(Tok::kIdentifier, "in declaration").text;
      vd->type = type;
      vd->qual = qual;
      vd->precision = prec;
      vd->invariant = invariant;
      if (Check(Tok::kLBracket)) vd->type.array_size = ParseArraySuffix();
      if (Match(Tok::kEq)) vd->init = ParseAssignment();
      tu.globals.push_back(std::move(vd));
      if (Match(Tok::kComma)) continue;
      Expect(Tok::kSemicolon, "after declaration");
      break;
    }
  }

  void ParseFunction(TranslationUnit& tu, Type return_type, Precision prec) {
    auto fn = std::make_unique<FunctionDecl>();
    fn->loc = Peek().loc;
    fn->name = Advance().text;
    fn->return_type = return_type;
    fn->return_precision = prec;
    Expect(Tok::kLParen, "in function declaration");
    if (!Check(Tok::kRParen)) {
      // 'void' as the sole parameter means an empty list.
      if (Check(Tok::kKwVoid) && Peek(1).kind == Tok::kRParen) {
        Advance();
      } else {
        while (true) {
          fn->params.push_back(ParseParam());
          if (!Match(Tok::kComma)) break;
        }
      }
    }
    Expect(Tok::kRParen, "after parameter list");
    if (Match(Tok::kSemicolon)) {
      tu.functions.push_back(std::move(fn));  // prototype
      return;
    }
    fn->body = ParseBlock();
    tu.functions.push_back(std::move(fn));
  }

  std::unique_ptr<VarDecl> ParseParam() {
    auto p = std::make_unique<VarDecl>();
    p->is_param = true;
    p->loc = Peek().loc;
    if (Match(Tok::kKwConst)) p->qual = Qualifier::kConst;
    if (Match(Tok::kKwIn)) p->dir = ParamDir::kIn;
    else if (Match(Tok::kKwOut)) p->dir = ParamDir::kOut;
    else if (Match(Tok::kKwInOut)) p->dir = ParamDir::kInOut;
    p->precision = ParseOptPrecision();
    p->type = ParseTypeSpecifier();
    if (p->type.base == BaseType::kVoid) Fail("parameters may not be void");
    if (Check(Tok::kIdentifier)) p->name = Advance().text;
    if (Check(Tok::kLBracket)) p->type.array_size = ParseArraySuffix();
    return p;
  }

  // --- statements ---
  std::unique_ptr<BlockStmt> ParseBlock() {
    const SrcLoc loc = Peek().loc;
    Expect(Tok::kLBrace, "to open block");
    auto block = std::make_unique<BlockStmt>(loc);
    while (!Check(Tok::kRBrace)) {
      if (AtEnd()) Fail("unterminated block");
      block->stmts.push_back(ParseStatement());
    }
    Advance();  // consume '}'
    return block;
  }

  StmtPtr ParseStatement() {
    const SrcLoc loc = Peek().loc;
    switch (Peek().kind) {
      case Tok::kLBrace:
        return ParseBlock();
      case Tok::kKwIf: {
        Advance();
        Expect(Tok::kLParen, "after 'if'");
        ExprPtr cond = ParseExpression();
        Expect(Tok::kRParen, "after if condition");
        StmtPtr then_stmt = ParseStatement();
        StmtPtr else_stmt;
        if (Match(Tok::kKwElse)) else_stmt = ParseStatement();
        return std::make_unique<IfStmt>(loc, std::move(cond),
                                        std::move(then_stmt),
                                        std::move(else_stmt));
      }
      case Tok::kKwFor: {
        Advance();
        auto fs = std::make_unique<ForStmt>(loc);
        Expect(Tok::kLParen, "after 'for'");
        if (!Match(Tok::kSemicolon)) {
          fs->init = StartsDeclaration() ? ParseDeclStmt() : ParseExprStmt();
        }
        if (!Check(Tok::kSemicolon)) fs->cond = ParseExpression();
        Expect(Tok::kSemicolon, "after for condition");
        if (!Check(Tok::kRParen)) fs->step = ParseExpression();
        Expect(Tok::kRParen, "after for header");
        fs->body = ParseStatement();
        return fs;
      }
      case Tok::kKwWhile: {
        Advance();
        Expect(Tok::kLParen, "after 'while'");
        ExprPtr cond = ParseExpression();
        Expect(Tok::kRParen, "after while condition");
        StmtPtr body = ParseStatement();
        return std::make_unique<WhileStmt>(loc, std::move(cond),
                                           std::move(body));
      }
      case Tok::kKwDo: {
        Advance();
        StmtPtr body = ParseStatement();
        Expect(Tok::kKwWhile, "after do-body");
        Expect(Tok::kLParen, "after 'while'");
        ExprPtr cond = ParseExpression();
        Expect(Tok::kRParen, "after do-while condition");
        Expect(Tok::kSemicolon, "after do-while");
        return std::make_unique<DoWhileStmt>(loc, std::move(body),
                                             std::move(cond));
      }
      case Tok::kKwReturn: {
        Advance();
        ExprPtr value;
        if (!Check(Tok::kSemicolon)) value = ParseExpression();
        Expect(Tok::kSemicolon, "after return");
        return std::make_unique<ReturnStmt>(loc, std::move(value));
      }
      case Tok::kKwBreak:
        Advance();
        Expect(Tok::kSemicolon, "after 'break'");
        return std::make_unique<BreakStmt>(loc);
      case Tok::kKwContinue:
        Advance();
        Expect(Tok::kSemicolon, "after 'continue'");
        return std::make_unique<ContinueStmt>(loc);
      case Tok::kKwDiscard:
        Advance();
        Expect(Tok::kSemicolon, "after 'discard'");
        return std::make_unique<DiscardStmt>(loc);
      case Tok::kSemicolon:
        Advance();
        return std::make_unique<ExprStmt>(loc, nullptr);
      default:
        if (StartsDeclaration()) return ParseDeclStmt();
        return ParseExprStmt();
    }
  }

  StmtPtr ParseDeclStmt() {
    const SrcLoc loc = Peek().loc;
    auto ds = std::make_unique<DeclStmt>(loc);
    Qualifier qual = Qualifier::kNone;
    if (Match(Tok::kKwConst)) qual = Qualifier::kConst;
    const Precision prec = ParseOptPrecision();
    const Type type = ParseTypeSpecifier();
    if (type.base == BaseType::kVoid) Fail("variables may not have void type");
    while (true) {
      auto vd = std::make_unique<VarDecl>();
      vd->loc = Peek().loc;
      vd->name = Expect(Tok::kIdentifier, "in declaration").text;
      vd->type = type;
      vd->qual = qual;
      vd->precision = prec;
      if (Check(Tok::kLBracket)) vd->type.array_size = ParseArraySuffix();
      if (Match(Tok::kEq)) vd->init = ParseAssignment();
      ds->decls.push_back(std::move(vd));
      if (Match(Tok::kComma)) continue;
      Expect(Tok::kSemicolon, "after declaration");
      break;
    }
    return ds;
  }

  StmtPtr ParseExprStmt() {
    const SrcLoc loc = Peek().loc;
    ExprPtr e = ParseExpression();
    Expect(Tok::kSemicolon, "after expression");
    return std::make_unique<ExprStmt>(loc, std::move(e));
  }

  // --- expressions (precedence climbing) ---
  ExprPtr ParseExpression() {
    ExprPtr e = ParseAssignment();
    while (Check(Tok::kComma)) {
      const SrcLoc loc = Advance().loc;
      ExprPtr rhs = ParseAssignment();
      e = std::make_unique<CommaExpr>(loc, std::move(e), std::move(rhs));
    }
    return e;
  }

  ExprPtr ParseAssignment() {
    ExprPtr lhs = ParseTernary();
    AssignOp op;
    switch (Peek().kind) {
      case Tok::kEq: op = AssignOp::kAssign; break;
      case Tok::kPlusEq: op = AssignOp::kAdd; break;
      case Tok::kMinusEq: op = AssignOp::kSub; break;
      case Tok::kStarEq: op = AssignOp::kMul; break;
      case Tok::kSlashEq: op = AssignOp::kDiv; break;
      default: return lhs;
    }
    const SrcLoc loc = Advance().loc;
    ExprPtr rhs = ParseAssignment();  // right associative
    return std::make_unique<AssignExpr>(loc, op, std::move(lhs),
                                        std::move(rhs));
  }

  ExprPtr ParseTernary() {
    ExprPtr cond = ParseLogicalOr();
    if (!Check(Tok::kQuestion)) return cond;
    const SrcLoc loc = Advance().loc;
    ExprPtr t = ParseExpression();
    Expect(Tok::kColon, "in conditional expression");
    ExprPtr f = ParseAssignment();
    return std::make_unique<TernaryExpr>(loc, std::move(cond), std::move(t),
                                         std::move(f));
  }

  ExprPtr ParseLogicalOr() {
    ExprPtr e = ParseLogicalXor();
    while (Check(Tok::kPipePipe)) {
      const SrcLoc loc = Advance().loc;
      e = std::make_unique<BinaryExpr>(loc, BinOp::kLogicalOr, std::move(e),
                                       ParseLogicalXor());
    }
    return e;
  }

  ExprPtr ParseLogicalXor() {
    ExprPtr e = ParseLogicalAnd();
    while (Check(Tok::kCaretCaret)) {
      const SrcLoc loc = Advance().loc;
      e = std::make_unique<BinaryExpr>(loc, BinOp::kLogicalXor, std::move(e),
                                       ParseLogicalAnd());
    }
    return e;
  }

  ExprPtr ParseLogicalAnd() {
    ExprPtr e = ParseEquality();
    while (Check(Tok::kAmpAmp)) {
      const SrcLoc loc = Advance().loc;
      e = std::make_unique<BinaryExpr>(loc, BinOp::kLogicalAnd, std::move(e),
                                       ParseEquality());
    }
    return e;
  }

  ExprPtr ParseEquality() {
    ExprPtr e = ParseRelational();
    while (Check(Tok::kEqEq) || Check(Tok::kBangEq)) {
      const BinOp op = Peek().kind == Tok::kEqEq ? BinOp::kEq : BinOp::kNe;
      const SrcLoc loc = Advance().loc;
      e = std::make_unique<BinaryExpr>(loc, op, std::move(e),
                                       ParseRelational());
    }
    return e;
  }

  ExprPtr ParseRelational() {
    ExprPtr e = ParseAdditive();
    while (true) {
      BinOp op;
      switch (Peek().kind) {
        case Tok::kLess: op = BinOp::kLt; break;
        case Tok::kGreater: op = BinOp::kGt; break;
        case Tok::kLessEq: op = BinOp::kLe; break;
        case Tok::kGreaterEq: op = BinOp::kGe; break;
        default: return e;
      }
      const SrcLoc loc = Advance().loc;
      e = std::make_unique<BinaryExpr>(loc, op, std::move(e),
                                       ParseAdditive());
    }
  }

  ExprPtr ParseAdditive() {
    ExprPtr e = ParseMultiplicative();
    while (Check(Tok::kPlus) || Check(Tok::kMinus)) {
      const BinOp op = Peek().kind == Tok::kPlus ? BinOp::kAdd : BinOp::kSub;
      const SrcLoc loc = Advance().loc;
      e = std::make_unique<BinaryExpr>(loc, op, std::move(e),
                                       ParseMultiplicative());
    }
    return e;
  }

  ExprPtr ParseMultiplicative() {
    ExprPtr e = ParseUnary();
    while (Check(Tok::kStar) || Check(Tok::kSlash)) {
      const BinOp op = Peek().kind == Tok::kStar ? BinOp::kMul : BinOp::kDiv;
      const SrcLoc loc = Advance().loc;
      e = std::make_unique<BinaryExpr>(loc, op, std::move(e), ParseUnary());
    }
    return e;
  }

  ExprPtr ParseUnary() {
    const SrcLoc loc = Peek().loc;
    switch (Peek().kind) {
      case Tok::kMinus:
        Advance();
        return std::make_unique<UnaryExpr>(loc, UnOp::kNeg, ParseUnary());
      case Tok::kPlus:
        Advance();
        return std::make_unique<UnaryExpr>(loc, UnOp::kPlus, ParseUnary());
      case Tok::kBang:
        Advance();
        return std::make_unique<UnaryExpr>(loc, UnOp::kNot, ParseUnary());
      case Tok::kPlusPlus:
        Advance();
        return std::make_unique<UnaryExpr>(loc, UnOp::kPreInc, ParseUnary());
      case Tok::kMinusMinus:
        Advance();
        return std::make_unique<UnaryExpr>(loc, UnOp::kPreDec, ParseUnary());
      default:
        return ParsePostfix();
    }
  }

  ExprPtr ParsePostfix() {
    ExprPtr e = ParsePrimary();
    while (true) {
      const SrcLoc loc = Peek().loc;
      if (Match(Tok::kLBracket)) {
        ExprPtr idx = ParseExpression();
        Expect(Tok::kRBracket, "after index");
        e = std::make_unique<IndexExpr>(loc, std::move(e), std::move(idx));
      } else if (Match(Tok::kDot)) {
        const Token& field = Expect(Tok::kIdentifier, "after '.'");
        e = std::make_unique<SwizzleExpr>(loc, std::move(e), field.text);
      } else if (Match(Tok::kPlusPlus)) {
        e = std::make_unique<UnaryExpr>(loc, UnOp::kPostInc, std::move(e));
      } else if (Match(Tok::kMinusMinus)) {
        e = std::make_unique<UnaryExpr>(loc, UnOp::kPostDec, std::move(e));
      } else {
        return e;
      }
    }
  }

  ExprPtr ParsePrimary() {
    const SrcLoc loc = Peek().loc;
    if (Check(Tok::kIntLiteral)) {
      return std::make_unique<IntLitExpr>(loc, Advance().int_value);
    }
    if (Check(Tok::kFloatLiteral)) {
      return std::make_unique<FloatLitExpr>(loc, Advance().float_value);
    }
    if (Match(Tok::kKwTrue)) return std::make_unique<BoolLitExpr>(loc, true);
    if (Match(Tok::kKwFalse)) return std::make_unique<BoolLitExpr>(loc, false);
    if (Match(Tok::kLParen)) {
      ExprPtr e = ParseExpression();
      Expect(Tok::kRParen, "to close parenthesized expression");
      return e;
    }
    if (IsTypeToken(Peek().kind)) {
      const Type t = MakeType(TypeTokenToBase(Advance().kind));
      auto ctor = std::make_unique<CtorExpr>(loc, t);
      Expect(Tok::kLParen, "after constructor type");
      if (!Check(Tok::kRParen)) {
        while (true) {
          ctor->args.push_back(ParseAssignment());
          if (!Match(Tok::kComma)) break;
        }
      }
      Expect(Tok::kRParen, "after constructor arguments");
      return ctor;
    }
    if (Check(Tok::kIdentifier)) {
      const Token& id = Advance();
      if (Match(Tok::kLParen)) {
        auto call = std::make_unique<CallExpr>(loc, id.text);
        if (!Check(Tok::kRParen)) {
          while (true) {
            call->args.push_back(ParseAssignment());
            if (!Match(Tok::kComma)) break;
          }
        }
        Expect(Tok::kRParen, "after call arguments");
        return call;
      }
      return std::make_unique<VarRefExpr>(loc, id.text);
    }
    Fail(StrFormat("unexpected %s in expression", TokName(Peek().kind)));
  }

  const std::vector<Token>& toks_;
  DiagSink& diags_;
  std::size_t pos_ = 0;
};

}  // namespace

std::unique_ptr<TranslationUnit> Parse(const std::vector<Token>& tokens,
                                       DiagSink& diags) {
  return Parser(tokens, diags).Run();
}

}  // namespace mgpu::glsl
