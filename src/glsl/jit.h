// Compiled shader engine: a per-link transpiler that lowers a VmProgram to
// a C++ translation unit, compiles it with the host toolchain into a shared
// object, and runs the whole uniform-control-flow batch through the
// resulting native entry point.
//
// Equivalence architecture (why this is bit-identical with zero new oracle
// code): the generated function only ever inlines operations whose batched
// semantics are a closed-form cell formula — pure moves, int arithmetic,
// comparisons, and (only under a round-identity AluModel, where Add/Sub/Mul
// are plain IEEE fp32 plus a counter) component-wise float +,-,* and
// all-float constructors. Everything else — SFU-routed ops (division,
// builtins), texture fetches, dynamic indexing, l-value refs, linear-algebra
// shapes, reduced-precision profiles — is *punted*: the generated code calls
// back into VmExec::ExecBatchOp for exactly that instruction, which replays
// the same evalcore batch kernel the interpreter would run. Inlining is
// purely opportunistic; anything punted is identical by construction, so the
// differential fuzz/trap/fault harnesses verify only the inlined subset.
// ALU op accounting accumulates in a local counter and is flushed through
// AluModel::CountAlu (order-insensitive by contract, alu.h) before every
// trap callback and exit, so counts — including counts at the moment of a
// trap — match the interpreter exactly.
//
// Availability is detected once at startup (a working C++ compiler probed
// from $CXX, c++, g++, clang++) and reported through the MGPU_JIT knob,
// mirroring MGPU_SIMD: ContextConfig/DeviceOptions knob > MGPU_JIT env
// (0 disables) > detection. When unavailable — or for divergent-control-flow
// programs, which CompileProgram declines — ExecEngine::kCompiled falls back
// to the batched interpreter, which is trivially identical.
//
// Shared objects are cached under $TMPDIR/mgpu-jit-<uid>/<fnv1a64 of the
// generated source>.so, so relinking the same shader (across processes,
// runs, and ALU profiles — the source is profile-independent) skips the
// toolchain entirely.
#ifndef MGPU_GLSL_JIT_H_
#define MGPU_GLSL_JIT_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "glsl/ir.h"

namespace mgpu::glsl::jit {

// Call environment handed to the generated entry point. The layout is
// re-declared textually inside every generated translation unit (as
// MgpuJitEnv), so this struct is the ABI: plain C types only, order matters.
struct JitEnv {
  void* host;        // the VmExec, passed back through every callback
  void* const* tbl;  // operand table: cell base pointer per table slot
  int n;             // live lane count of this batch
  long vs;           // per-lane cell stride of a storage plane (Value cells)
  int ri;            // AluModel::round_identity() — gates float fast paths
  // Callbacks into the VM (host = the VmExec above). exec_op replays one
  // punted instruction through ExecBatchOp; the trap callbacks throw
  // ShaderRuntimeError (lane 0 — uniform control flow traps every lane on
  // the same step) and never return; count_alu flushes batched ALU counts.
  void (*exec_op)(void* host, int pc);
  void (*guard)(void* host);                       // kLoopGuard
  void (*depth_trap)(void* host);                  // kCall depth overflow
  void (*trap)(void* host, int msg_index);         // kTrap
  void (*count_alu)(void* host, unsigned long long ops);
};

// Generated entry point. Returns 1 when the batch ran to completion (all
// lanes kept), 0 when it hit kDiscard (all lanes killed — uniform control
// flow reaches it together); traps propagate as C++ exceptions thrown by
// the callbacks, unwinding through the generated frame.
using EntryFn = int (*)(JitEnv*);

// A loaded compiled program: the dlopen handle, its entry point, and the
// operand words (in table-slot order) the host resolves to cell pointers
// when building JitEnv::tbl. Immutable after load; shared across the
// per-worker VmExec clones of a draw.
class Module {
 public:
  Module(void* handle, EntryFn entry, std::vector<std::uint32_t> table_ops);
  ~Module();
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  [[nodiscard]] EntryFn entry() const { return entry_; }
  [[nodiscard]] const std::vector<std::uint32_t>& table_ops() const {
    return table_ops_;
  }

 private:
  void* handle_;
  EntryFn entry_;
  std::vector<std::uint32_t> table_ops_;
};

// True when a working host C++ compiler was found (probed once, cached).
// Always false on non-POSIX builds.
[[nodiscard]] bool Available();

// Effective availability for a context knob value, mirroring simd::Resolve:
// 0 = force off, 1 = force on (still clamped to detection), -1 = auto (the
// MGPU_JIT env override if set — "0" disables — else detection).
[[nodiscard]] bool Resolve(int knob);

// Transpiles, compiles (or reuses the cached .so) and loads `prog`.
// Returns nullptr when compilation is unavailable, the program has
// divergent control flow (the masked interpreter handles it), or any
// toolchain step fails — callers fall back to the batched interpreter.
[[nodiscard]] std::shared_ptr<const Module> CompileProgram(
    const VmProgram& prog);

}  // namespace mgpu::glsl::jit

#endif  // MGPU_GLSL_JIT_H_
