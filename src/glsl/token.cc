#include "glsl/token.h"

#include "glsl/type.h"

namespace mgpu::glsl {

bool IsTypeToken(Tok t) {
  switch (t) {
    case Tok::kKwVoid:
    case Tok::kKwBool:
    case Tok::kKwInt:
    case Tok::kKwFloat:
    case Tok::kKwVec2:
    case Tok::kKwVec3:
    case Tok::kKwVec4:
    case Tok::kKwBVec2:
    case Tok::kKwBVec3:
    case Tok::kKwBVec4:
    case Tok::kKwIVec2:
    case Tok::kKwIVec3:
    case Tok::kKwIVec4:
    case Tok::kKwMat2:
    case Tok::kKwMat3:
    case Tok::kKwMat4:
    case Tok::kKwSampler2D:
    case Tok::kKwSamplerCube:
      return true;
    default:
      return false;
  }
}

BaseType TypeTokenToBase(Tok t) {
  switch (t) {
    case Tok::kKwVoid:
      return BaseType::kVoid;
    case Tok::kKwBool:
      return BaseType::kBool;
    case Tok::kKwInt:
      return BaseType::kInt;
    case Tok::kKwFloat:
      return BaseType::kFloat;
    case Tok::kKwVec2:
      return BaseType::kVec2;
    case Tok::kKwVec3:
      return BaseType::kVec3;
    case Tok::kKwVec4:
      return BaseType::kVec4;
    case Tok::kKwBVec2:
      return BaseType::kBVec2;
    case Tok::kKwBVec3:
      return BaseType::kBVec3;
    case Tok::kKwBVec4:
      return BaseType::kBVec4;
    case Tok::kKwIVec2:
      return BaseType::kIVec2;
    case Tok::kKwIVec3:
      return BaseType::kIVec3;
    case Tok::kKwIVec4:
      return BaseType::kIVec4;
    case Tok::kKwMat2:
      return BaseType::kMat2;
    case Tok::kKwMat3:
      return BaseType::kMat3;
    case Tok::kKwMat4:
      return BaseType::kMat4;
    case Tok::kKwSampler2D:
      return BaseType::kSampler2D;
    case Tok::kKwSamplerCube:
      return BaseType::kSamplerCube;
    default:
      return BaseType::kVoid;
  }
}

const char* TokName(Tok t) {
  switch (t) {
    case Tok::kEof:
      return "<eof>";
    case Tok::kIdentifier:
      return "identifier";
    case Tok::kIntLiteral:
      return "integer literal";
    case Tok::kFloatLiteral:
      return "float literal";
    case Tok::kLParen:
      return "'('";
    case Tok::kRParen:
      return "')'";
    case Tok::kLBracket:
      return "'['";
    case Tok::kRBracket:
      return "']'";
    case Tok::kLBrace:
      return "'{'";
    case Tok::kRBrace:
      return "'}'";
    case Tok::kDot:
      return "'.'";
    case Tok::kComma:
      return "','";
    case Tok::kSemicolon:
      return "';'";
    case Tok::kColon:
      return "':'";
    case Tok::kQuestion:
      return "'?'";
    case Tok::kPlus:
      return "'+'";
    case Tok::kMinus:
      return "'-'";
    case Tok::kStar:
      return "'*'";
    case Tok::kSlash:
      return "'/'";
    case Tok::kBang:
      return "'!'";
    case Tok::kLess:
      return "'<'";
    case Tok::kGreater:
      return "'>'";
    case Tok::kLessEq:
      return "'<='";
    case Tok::kGreaterEq:
      return "'>='";
    case Tok::kEqEq:
      return "'=='";
    case Tok::kBangEq:
      return "'!='";
    case Tok::kAmpAmp:
      return "'&&'";
    case Tok::kPipePipe:
      return "'||'";
    case Tok::kCaretCaret:
      return "'^^'";
    case Tok::kEq:
      return "'='";
    case Tok::kPlusEq:
      return "'+='";
    case Tok::kMinusEq:
      return "'-='";
    case Tok::kStarEq:
      return "'*='";
    case Tok::kSlashEq:
      return "'/='";
    case Tok::kPlusPlus:
      return "'++'";
    case Tok::kMinusMinus:
      return "'--'";
    default:
      return "keyword";
  }
}

}  // namespace mgpu::glsl
