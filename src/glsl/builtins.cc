#include "glsl/builtins.h"

#include <bit>
#include <cmath>
#include <set>

#if MGPU_SIMD_X86
#include <immintrin.h>
#endif

#include "common/strings.h"

namespace mgpu::glsl {
namespace {

bool IsGen(const Type& t) {
  if (t.IsArray()) return false;
  return t.base == BaseType::kFloat || t.base == BaseType::kVec2 ||
         t.base == BaseType::kVec3 || t.base == BaseType::kVec4;
}
bool IsFloatVec(const Type& t) {
  return !t.IsArray() && IsVector(t.base) &&
         ScalarOf(t.base) == BaseType::kFloat;
}
bool IsIntVec(const Type& t) {
  return !t.IsArray() && IsVector(t.base) && ScalarOf(t.base) == BaseType::kInt;
}
bool IsBoolVec(const Type& t) {
  return !t.IsArray() && IsVector(t.base) &&
         ScalarOf(t.base) == BaseType::kBool;
}
bool IsMat(const Type& t) { return !t.IsArray() && IsMatrix(t.base); }
bool IsFloatScalar(const Type& t) {
  return !t.IsArray() && t.base == BaseType::kFloat;
}

const std::set<std::string>& BuiltinNames() {
  static const std::set<std::string> kNames = {
      "radians", "degrees", "sin", "cos", "tan", "asin", "acos", "atan",
      "pow", "exp", "log", "exp2", "log2", "sqrt", "inversesqrt",
      "abs", "sign", "floor", "ceil", "fract", "mod", "min", "max", "clamp",
      "mix", "step", "smoothstep",
      "length", "distance", "dot", "cross", "normalize", "faceforward",
      "reflect", "refract", "matrixCompMult",
      "lessThan", "lessThanEqual", "greaterThan", "greaterThanEqual", "equal",
      "notEqual", "any", "all", "not",
      "texture2D", "texture2DProj", "texture2DLod", "texture2DProjLod",
      "textureCube", "textureCubeLod",
  };
  return kNames;
}

BuiltinResolution Ok(Builtin b, Type result) {
  BuiltinResolution r;
  r.ok = true;
  r.builtin = b;
  r.result_type = result;
  return r;
}

BuiltinResolution Mismatch(const std::string& name,
                           const std::vector<Type>& args) {
  BuiltinResolution r;
  r.ok = false;
  std::string sig = name + "(";
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i != 0) sig += ", ";
    sig += args[i].ToString();
  }
  sig += ")";
  r.error = StrFormat("no matching overload for %s", sig.c_str());
  return r;
}

}  // namespace

bool IsBuiltinName(const std::string& name) {
  return BuiltinNames().count(name) != 0;
}

BuiltinResolution ResolveBuiltin(const std::string& name,
                                 const std::vector<Type>& args, Stage stage) {
  const auto n = args.size();
  auto mismatch = [&] { return Mismatch(name, args); };

  // Component-wise genType -> genType (single argument).
  struct Gen1 {
    const char* name;
    Builtin b;
  };
  static constexpr Gen1 kGen1[] = {
      {"radians", Builtin::kRadians}, {"degrees", Builtin::kDegrees},
      {"sin", Builtin::kSin},         {"cos", Builtin::kCos},
      {"tan", Builtin::kTan},         {"asin", Builtin::kAsin},
      {"acos", Builtin::kAcos},       {"exp", Builtin::kExp},
      {"log", Builtin::kLog},         {"exp2", Builtin::kExp2},
      {"log2", Builtin::kLog2},       {"sqrt", Builtin::kSqrt},
      {"inversesqrt", Builtin::kInverseSqrt},
      {"abs", Builtin::kAbs},         {"sign", Builtin::kSign},
      {"floor", Builtin::kFloor},     {"ceil", Builtin::kCeil},
      {"fract", Builtin::kFract},
  };
  for (const auto& g : kGen1) {
    if (name == g.name) {
      if (n == 1 && IsGen(args[0])) return Ok(g.b, args[0]);
      return mismatch();
    }
  }

  if (name == "atan") {
    if (n == 1 && IsGen(args[0])) return Ok(Builtin::kAtan, args[0]);
    if (n == 2 && IsGen(args[0]) && args[1] == args[0]) {
      return Ok(Builtin::kAtan2, args[0]);
    }
    return mismatch();
  }
  if (name == "pow") {
    if (n == 2 && IsGen(args[0]) && args[1] == args[0]) {
      return Ok(Builtin::kPow, args[0]);
    }
    return mismatch();
  }
  if (name == "mod") {
    if (n == 2 && IsGen(args[0]) &&
        (args[1] == args[0] || IsFloatScalar(args[1]))) {
      return Ok(Builtin::kMod, args[0]);
    }
    return mismatch();
  }
  if (name == "min" || name == "max") {
    const Builtin b = name == "min" ? Builtin::kMin : Builtin::kMax;
    if (n == 2 && IsGen(args[0]) &&
        (args[1] == args[0] || IsFloatScalar(args[1]))) {
      return Ok(b, args[0]);
    }
    return mismatch();
  }
  if (name == "clamp") {
    if (n == 3 && IsGen(args[0]) &&
        ((args[1] == args[0] && args[2] == args[0]) ||
         (IsFloatScalar(args[1]) && IsFloatScalar(args[2])))) {
      return Ok(Builtin::kClamp, args[0]);
    }
    return mismatch();
  }
  if (name == "mix") {
    if (n == 3 && IsGen(args[0]) && args[1] == args[0] &&
        (args[2] == args[0] || IsFloatScalar(args[2]))) {
      return Ok(Builtin::kMix, args[0]);
    }
    return mismatch();
  }
  if (name == "step") {
    if (n == 2 && IsGen(args[1]) &&
        (args[0] == args[1] || IsFloatScalar(args[0]))) {
      return Ok(Builtin::kStep, args[1]);
    }
    return mismatch();
  }
  if (name == "smoothstep") {
    if (n == 3 && IsGen(args[2]) &&
        ((args[0] == args[2] && args[1] == args[2]) ||
         (IsFloatScalar(args[0]) && IsFloatScalar(args[1])))) {
      return Ok(Builtin::kSmoothstep, args[2]);
    }
    return mismatch();
  }

  if (name == "length") {
    if (n == 1 && IsGen(args[0])) {
      return Ok(Builtin::kLength, MakeType(BaseType::kFloat));
    }
    return mismatch();
  }
  if (name == "distance") {
    if (n == 2 && IsGen(args[0]) && args[1] == args[0]) {
      return Ok(Builtin::kDistance, MakeType(BaseType::kFloat));
    }
    return mismatch();
  }
  if (name == "dot") {
    if (n == 2 && IsGen(args[0]) && args[1] == args[0]) {
      return Ok(Builtin::kDot, MakeType(BaseType::kFloat));
    }
    return mismatch();
  }
  if (name == "cross") {
    if (n == 2 && args[0] == MakeType(BaseType::kVec3) && args[1] == args[0]) {
      return Ok(Builtin::kCross, MakeType(BaseType::kVec3));
    }
    return mismatch();
  }
  if (name == "normalize") {
    if (n == 1 && IsGen(args[0])) return Ok(Builtin::kNormalize, args[0]);
    return mismatch();
  }
  if (name == "faceforward") {
    if (n == 3 && IsGen(args[0]) && args[1] == args[0] && args[2] == args[0]) {
      return Ok(Builtin::kFaceforward, args[0]);
    }
    return mismatch();
  }
  if (name == "reflect") {
    if (n == 2 && IsGen(args[0]) && args[1] == args[0]) {
      return Ok(Builtin::kReflect, args[0]);
    }
    return mismatch();
  }
  if (name == "refract") {
    if (n == 3 && IsGen(args[0]) && args[1] == args[0] &&
        IsFloatScalar(args[2])) {
      return Ok(Builtin::kRefract, args[0]);
    }
    return mismatch();
  }
  if (name == "matrixCompMult") {
    if (n == 2 && IsMat(args[0]) && args[1] == args[0]) {
      return Ok(Builtin::kMatrixCompMult, args[0]);
    }
    return mismatch();
  }

  // Vector relational functions.
  if (name == "lessThan" || name == "lessThanEqual" || name == "greaterThan" ||
      name == "greaterThanEqual") {
    const Builtin b = name == "lessThan" ? Builtin::kLessThan
                      : name == "lessThanEqual" ? Builtin::kLessThanEqual
                      : name == "greaterThan" ? Builtin::kGreaterThan
                                              : Builtin::kGreaterThanEqual;
    if (n == 2 && (IsFloatVec(args[0]) || IsIntVec(args[0])) &&
        args[1] == args[0]) {
      return Ok(b, MakeType(VectorOf(BaseType::kBool,
                                     ComponentCount(args[0].base))));
    }
    return mismatch();
  }
  if (name == "equal" || name == "notEqual") {
    const Builtin b = name == "equal" ? Builtin::kEqual : Builtin::kNotEqual;
    if (n == 2 &&
        (IsFloatVec(args[0]) || IsIntVec(args[0]) || IsBoolVec(args[0])) &&
        args[1] == args[0]) {
      return Ok(b, MakeType(VectorOf(BaseType::kBool,
                                     ComponentCount(args[0].base))));
    }
    return mismatch();
  }
  if (name == "any" || name == "all") {
    const Builtin b = name == "any" ? Builtin::kAny : Builtin::kAll;
    if (n == 1 && IsBoolVec(args[0])) {
      return Ok(b, MakeType(BaseType::kBool));
    }
    return mismatch();
  }
  if (name == "not") {
    if (n == 1 && IsBoolVec(args[0])) return Ok(Builtin::kNot, args[0]);
    return mismatch();
  }

  // Texture lookups.
  const Type vec4 = MakeType(BaseType::kVec4);
  if (name == "texture2D") {
    if (n >= 1 && args[0].base == BaseType::kSampler2D && !args[0].IsArray()) {
      if (n == 2 && args[1] == MakeType(BaseType::kVec2)) {
        return Ok(Builtin::kTexture2D, vec4);
      }
      if (n == 3 && args[1] == MakeType(BaseType::kVec2) &&
          IsFloatScalar(args[2])) {
        if (stage != Stage::kFragment) {
          BuiltinResolution r;
          r.error = "texture2D with bias is only available in fragment "
                    "shaders";
          return r;
        }
        return Ok(Builtin::kTexture2DBias, vec4);
      }
    }
    return mismatch();
  }
  if (name == "texture2DProj") {
    if (n >= 2 && args[0].base == BaseType::kSampler2D) {
      const bool v3 = args[1] == MakeType(BaseType::kVec3);
      const bool v4 = args[1] == vec4;
      if ((v3 || v4) && n == 2) {
        return Ok(v3 ? Builtin::kTexture2DProj3 : Builtin::kTexture2DProj4,
                  vec4);
      }
      if ((v3 || v4) && n == 3 && IsFloatScalar(args[2])) {
        if (stage != Stage::kFragment) {
          BuiltinResolution r;
          r.error = "texture2DProj with bias is only available in fragment "
                    "shaders";
          return r;
        }
        return Ok(v3 ? Builtin::kTexture2DProj3Bias
                     : Builtin::kTexture2DProj4Bias,
                  vec4);
      }
    }
    return mismatch();
  }
  if (name == "texture2DLod" || name == "texture2DProjLod") {
    if (stage != Stage::kVertex) {
      BuiltinResolution r;
      r.error = StrFormat("%s is only available in vertex shaders",
                          name.c_str());
      return r;
    }
    if (name == "texture2DLod" && n == 3 &&
        args[0].base == BaseType::kSampler2D &&
        args[1] == MakeType(BaseType::kVec2) && IsFloatScalar(args[2])) {
      return Ok(Builtin::kTexture2DLod, vec4);
    }
    if (name == "texture2DProjLod" && n == 3 &&
        args[0].base == BaseType::kSampler2D && IsFloatScalar(args[2])) {
      if (args[1] == MakeType(BaseType::kVec3)) {
        return Ok(Builtin::kTexture2DProjLod3, vec4);
      }
      if (args[1] == vec4) return Ok(Builtin::kTexture2DProjLod4, vec4);
    }
    return mismatch();
  }
  if (name == "textureCube" || name == "textureCubeLod") {
    BuiltinResolution r;
    r.error = StrFormat("%s: cube maps are not supported by this "
                        "implementation (documented subset)",
                        name.c_str());
    return r;
  }

  BuiltinResolution r;
  r.error = StrFormat("unknown function '%s'", name.c_str());
  return r;
}

namespace {

// Scalar min/max with pinned-down bit behaviour, modeled on glibc's
// x86-64 fminf/fmaxf (ucomiss + MINSS/MAXSS + quiet-bit probe):
//   * both operands ordered  -> MINSS/MAXSS semantics: strict compare,
//     SECOND operand on equality — which is what yields
//     fmin(+0,-0) == -0 and fmin(-0,+0) == +0;
//   * exactly one *quiet* NaN -> the other operand;
//   * a signaling NaN or two NaNs -> the ADDSS result, i.e. the first NaN
//     operand with the quiet bit set (computed bitwise here: spelling it
//     `x + y` would let the compiler commute the operands and change which
//     payload survives between compilations).
// The builtins route min/max/clamp through these helpers instead of libm so
// the SIMD vector emulation (FminEmu/FmaxEmu below) matches the scalar
// kernels bit for bit on any libc — the semantics are defined HERE, not by
// whatever fminf the host links. On glibc/x86-64 they are bit-identical to
// the libm calls they replace.
inline bool NanBits(std::uint32_t u) {
  return (u & 0x7fffffffu) > 0x7f800000u;
}
inline float QuietFirstNan(std::uint32_t ux, std::uint32_t uy) {
  return std::bit_cast<float>((NanBits(ux) ? ux : uy) | 0x00400000u);
}
inline float FminScalar(float x, float y) {
  const std::uint32_t ux = std::bit_cast<std::uint32_t>(x);
  const std::uint32_t uy = std::bit_cast<std::uint32_t>(y);
  if (!NanBits(ux) && !NanBits(uy)) return x < y ? x : y;
  if (!NanBits(uy) && (ux & 0x00400000u) != 0) return y;
  if (!NanBits(ux) && (uy & 0x00400000u) != 0) return x;
  return QuietFirstNan(ux, uy);
}
inline float FmaxScalar(float x, float y) {
  const std::uint32_t ux = std::bit_cast<std::uint32_t>(x);
  const std::uint32_t uy = std::bit_cast<std::uint32_t>(y);
  if (!NanBits(ux) && !NanBits(uy)) return x > y ? x : y;
  if (!NanBits(uy) && (ux & 0x00400000u) != 0) return y;
  if (!NanBits(ux) && (uy & 0x00400000u) != 0) return x;
  return QuietFirstNan(ux, uy);
}

// Applies `fn` component-wise over the float components of `a`, writing the
// results into `dst` (pre-typed with the result type, which for these
// builtins always matches `a`'s shape).
template <typename F>
void MapUnaryInto(Value& dst, const Value& a, F&& fn) {
  for (int i = 0; i < a.count(); ++i) dst.SetF(i, fn(a.F(i)));
}

// Applies `fn` component-wise over `a` and `b`, broadcasting `b` when it is a
// scalar and `a` is a vector.
template <typename F>
void MapBinaryInto(Value& dst, const Value& a, const Value& b, F&& fn) {
  const bool broadcast = b.count() == 1 && a.count() > 1;
  for (int i = 0; i < a.count(); ++i) {
    dst.SetF(i, fn(a.F(i), b.F(broadcast ? 0 : i)));
  }
}

// --- lane-batched map helpers ---------------------------------------------
// Shape flags (component counts, broadcast) are hoisted out of the lane
// loop; the per-lane component loop applies the same `fn` in the same order
// a lane-sequential scalar evaluation would.

template <typename F>
void MapUnaryBatch(const BatchDst& dst, const BatchSrc& a, std::uint32_t mask,
                   F&& fn) {
  const int n = a.base->count();
  ForEachLane(mask, [&](int l) {
    const Value& av = a.at(l);
    Value& d = dst.at(l);
    for (int i = 0; i < n; ++i) d.SetF(i, fn(av.F(i)));
  });
}

template <typename F>
void MapBinaryBatch(const BatchDst& dst, const BatchSrc& a, const BatchSrc& b,
                    std::uint32_t mask, F&& fn) {
  const int n = a.base->count();
  const int bs = b.base->count() == 1 && n > 1 ? 0 : 1;
  ForEachLane(mask, [&](int l) {
    const Value& av = a.at(l);
    const Value& bv = b.at(l);
    Value& d = dst.at(l);
    for (int i = 0; i < n; ++i) d.SetF(i, fn(av.F(i), bv.F(i * bs)));
  });
}

template <typename F>
void MapTernaryBatch(const BatchDst& dst, const BatchSrc& a,
                     const BatchSrc& b, const BatchSrc& c, std::uint32_t mask,
                     F&& fn) {
  const int n = a.base->count();
  const int bs = b.base->count() == 1 && n > 1 ? 0 : 1;
  const int cs = c.base->count() == 1 && n > 1 ? 0 : 1;
  ForEachLane(mask, [&](int l) {
    const Value& av = a.at(l);
    const Value& bv = b.at(l);
    const Value& cv = c.at(l);
    Value& d = dst.at(l);
    for (int i = 0; i < n; ++i) {
      d.SetF(i, fn(av.F(i), bv.F(i * bs), cv.F(i * cs)));
    }
  });
}

void CopyCellsInto(Value& dst, const Value& src) {
  for (int i = 0; i < src.count(); ++i) dst.data()[i] = src.data()[i];
}

float DotProduct(const Value& a, const Value& b, AluModel& alu) {
  float acc = alu.Mul(a.F(0), b.F(0));
  for (int i = 1; i < a.count(); ++i) {
    acc = alu.Add(acc, alu.Mul(a.F(i), b.F(i)));
  }
  return acc;
}

void TextureFetchInto(Value& dst, const TextureFn& texture, AluModel& alu,
                      int unit, float s, float t, float lod) {
  alu.CountTmu(1);
  std::array<float, 4> rgba{0.0f, 0.0f, 0.0f, 1.0f};
  if (texture) rgba = texture(unit, s, t, lod);
  for (int i = 0; i < 4; ++i) dst.SetF(i, rgba[static_cast<std::size_t>(i)]);
}

}  // namespace

bool IsSoaBuiltin(Builtin b) { return b < Builtin::kTexture2D; }

void EvalBuiltinBatch(Builtin b, Type result_type,
                      std::span<const BatchSrc> argp, AluModel& alu,
                      const TextureFn& texture, const BatchDst& dst,
                      std::uint32_t mask) {
  (void)result_type;  // dst carries it; kept for signature symmetry
  // Convenience view: args(i) is the i-th argument's lane plane.
  const auto args = [&](std::size_t i) -> const BatchSrc& { return argp[i]; };
  constexpr float kPi = 3.14159265358979323846f;
  switch (b) {
    case Builtin::kRadians:
      return MapUnaryBatch(dst, args(0), mask,
                           [&](float x) { return alu.Mul(x, kPi / 180.0f); });
    case Builtin::kDegrees:
      return MapUnaryBatch(dst, args(0), mask,
                           [&](float x) { return alu.Mul(x, 180.0f / kPi); });
    case Builtin::kSin:
      return MapUnaryBatch(dst, args(0), mask,
                           [&](float x) { return alu.Sin(x); });
    case Builtin::kCos:
      return MapUnaryBatch(dst, args(0), mask,
                           [&](float x) { return alu.Cos(x); });
    case Builtin::kTan:
      return MapUnaryBatch(dst, args(0), mask,
                           [&](float x) { return alu.Tan(x); });
    case Builtin::kAsin:
      return MapUnaryBatch(dst, args(0), mask,
                           [&](float x) { return alu.Asin(x); });
    case Builtin::kAcos:
      return MapUnaryBatch(dst, args(0), mask,
                           [&](float x) { return alu.Acos(x); });
    case Builtin::kAtan:
      return MapUnaryBatch(dst, args(0), mask,
                           [&](float x) { return alu.Atan(x); });
    case Builtin::kAtan2:
      return MapBinaryBatch(dst, args(0), args(1), mask,
                            [&](float y, float x) { return alu.Atan2(y, x); });
    case Builtin::kPow:
      return MapBinaryBatch(dst, args(0), args(1), mask,
                            [&](float x, float y) { return alu.Pow(x, y); });
    case Builtin::kExp:
      return MapUnaryBatch(dst, args(0), mask,
                           [&](float x) { return alu.Exp(x); });
    case Builtin::kLog:
      return MapUnaryBatch(dst, args(0), mask,
                           [&](float x) { return alu.Log(x); });
    case Builtin::kExp2:
      return MapUnaryBatch(dst, args(0), mask,
                           [&](float x) { return alu.Exp2(x); });
    case Builtin::kLog2:
      return MapUnaryBatch(dst, args(0), mask,
                           [&](float x) { return alu.Log2(x); });
    case Builtin::kSqrt:
      return MapUnaryBatch(dst, args(0), mask,
                           [&](float x) { return alu.Sqrt(x); });
    case Builtin::kInverseSqrt:
      return MapUnaryBatch(dst, args(0), mask,
                           [&](float x) { return alu.RecipSqrt(x); });

    case Builtin::kAbs:
      return MapUnaryBatch(dst, args(0), mask, [&](float x) {
        alu.Count(1);
        return std::fabs(x);
      });
    case Builtin::kSign:
      return MapUnaryBatch(dst, args(0), mask, [&](float x) {
        alu.Count(1);
        return x > 0.0f ? 1.0f : (x < 0.0f ? -1.0f : 0.0f);
      });
    case Builtin::kFloor:
      return MapUnaryBatch(dst, args(0), mask, [&](float x) {
        alu.Count(1);
        return std::floor(x);
      });
    case Builtin::kCeil:
      return MapUnaryBatch(dst, args(0), mask, [&](float x) {
        alu.Count(1);
        return std::ceil(x);
      });
    case Builtin::kFract:
      // x - floor(x), one ALU op for the floor and one for the subtract.
      return MapUnaryBatch(dst, args(0), mask, [&](float x) {
        alu.Count(1);
        return alu.Sub(x, std::floor(x));
      });
    case Builtin::kMod:
      // mod(x, y) = x - y * floor(x / y), per spec.
      return MapBinaryBatch(dst, args(0), args(1), mask, [&](float x, float y) {
        const float q = alu.Div(x, y);
        alu.Count(1);
        return alu.Sub(x, alu.Mul(y, std::floor(q)));
      });
    case Builtin::kMin:
      return MapBinaryBatch(dst, args(0), args(1), mask, [&](float x, float y) {
        alu.Count(1);
        return FminScalar(x, y);
      });
    case Builtin::kMax:
      return MapBinaryBatch(dst, args(0), args(1), mask, [&](float x, float y) {
        alu.Count(1);
        return FmaxScalar(x, y);
      });
    case Builtin::kClamp:
      return MapTernaryBatch(dst, args(0), args(1), args(2), mask,
                             [&](float x, float lo, float hi) {
                               alu.Count(2);
                               return FminScalar(FmaxScalar(x, lo), hi);
                             });
    case Builtin::kMix:
      return MapTernaryBatch(dst, args(0), args(1), args(2), mask,
                             [&](float x, float y, float a) {
                               return alu.Add(alu.Mul(x, alu.Sub(1.0f, a)),
                                              alu.Mul(y, a));
                             });
    case Builtin::kStep:
      // step(edge, x): note argument order (edge first).
      return MapBinaryBatch(dst, args(1), args(0), mask,
                            [&](float x, float edge) {
                              alu.Count(1);
                              return x < edge ? 0.0f : 1.0f;
                            });
    case Builtin::kSmoothstep: {
      // t = clamp((x-e0)/(e1-e0), 0, 1); t*t*(3-2t).
      const BatchSrc& e0 = args(0);
      const BatchSrc& e1 = args(1);
      const BatchSrc& x = args(2);
      const int n = x.base->count();
      const int es = e0.base->count() == 1 && n > 1 ? 0 : 1;
      ForEachLane(mask, [&](int l) {
        const Value& e0v = e0.at(l);
        const Value& e1v = e1.at(l);
        const Value& xv = x.at(l);
        Value& out = dst.at(l);
        for (int i = 0; i < n; ++i) {
          const float a = e0v.F(i * es);
          const float bb = e1v.F(i * es);
          float t = alu.Div(alu.Sub(xv.F(i), a), alu.Sub(bb, a));
          alu.Count(2);
          t = FminScalar(FmaxScalar(t, 0.0f), 1.0f);
          out.SetF(i,
                   alu.Mul(alu.Mul(t, t), alu.Sub(3.0f, alu.Mul(2.0f, t))));
        }
      });
      return;
    }

    case Builtin::kLength:
      ForEachLane(mask, [&](int l) {
        const float d = DotProduct(args(0).at(l), args(0).at(l), alu);
        dst.at(l).SetF(0, alu.Sqrt(d));
      });
      return;
    case Builtin::kDistance: {
      // The difference scratch is hoisted and reused per lane (its cells
      // are fully overwritten each lane).
      Value diff(args(0).base->type());
      ForEachLane(mask, [&](int l) {
        MapBinaryInto(diff, args(0).at(l), args(1).at(l),
                      [&](float x, float y) { return alu.Sub(x, y); });
        dst.at(l).SetF(0, alu.Sqrt(DotProduct(diff, diff, alu)));
      });
      return;
    }
    case Builtin::kDot:
      ForEachLane(mask, [&](int l) {
        dst.at(l).SetF(0, DotProduct(args(0).at(l), args(1).at(l), alu));
      });
      return;
    case Builtin::kCross:
      ForEachLane(mask, [&](int l) {
        const Value& a = args(0).at(l);
        const Value& c = args(1).at(l);
        Value& out = dst.at(l);
        out.SetF(0,
                 alu.Sub(alu.Mul(a.F(1), c.F(2)), alu.Mul(a.F(2), c.F(1))));
        out.SetF(1,
                 alu.Sub(alu.Mul(a.F(2), c.F(0)), alu.Mul(a.F(0), c.F(2))));
        out.SetF(2,
                 alu.Sub(alu.Mul(a.F(0), c.F(1)), alu.Mul(a.F(1), c.F(0))));
      });
      return;
    case Builtin::kNormalize:
      ForEachLane(mask, [&](int l) {
        const Value& a = args(0).at(l);
        const float inv = alu.RecipSqrt(DotProduct(a, a, alu));
        MapUnaryInto(dst.at(l), a, [&](float x) { return alu.Mul(x, inv); });
      });
      return;
    case Builtin::kFaceforward:
      ForEachLane(mask, [&](int l) {
        const float d = DotProduct(args(2).at(l), args(1).at(l), alu);
        alu.Count(1);
        if (d < 0.0f) {
          CopyCellsInto(dst.at(l), args(0).at(l));
        } else {
          MapUnaryInto(dst.at(l), args(0).at(l),
                       [&](float x) { return alu.Sub(0.0f, x); });
        }
      });
      return;
    case Builtin::kReflect:
      ForEachLane(mask, [&](int l) {
        const float d = DotProduct(args(1).at(l), args(0).at(l), alu);
        const float two_d = alu.Mul(2.0f, d);
        MapBinaryInto(dst.at(l), args(0).at(l), args(1).at(l),
                      [&](float i, float nn) {
                        return alu.Sub(i, alu.Mul(two_d, nn));
                      });
      });
      return;
    case Builtin::kRefract:
      ForEachLane(mask, [&](int l) {
        const float eta = args(2).at(l).F(0);
        const float d = DotProduct(args(1).at(l), args(0).at(l), alu);
        const float k = alu.Sub(
            1.0f,
            alu.Mul(alu.Mul(eta, eta), alu.Sub(1.0f, alu.Mul(d, d))));
        alu.Count(1);
        Value& out = dst.at(l);
        if (k < 0.0f) {
          // Zero vector; written explicitly because the VM's destination
          // register may hold a stale value.
          for (int i = 0; i < args(0).at(l).count(); ++i) out.SetF(i, 0.0f);
          return;
        }
        const float coeff = alu.Add(alu.Mul(eta, d), alu.Sqrt(k));
        MapBinaryInto(out, args(0).at(l), args(1).at(l),
                      [&](float i, float nn) {
                        return alu.Sub(alu.Mul(eta, i), alu.Mul(coeff, nn));
                      });
      });
      return;
    case Builtin::kMatrixCompMult:
      return MapBinaryBatch(dst, args(0), args(1), mask,
                            [&](float x, float y) { return alu.Mul(x, y); });

    case Builtin::kLessThan:
    case Builtin::kLessThanEqual:
    case Builtin::kGreaterThan:
    case Builtin::kGreaterThanEqual:
    case Builtin::kEqual:
    case Builtin::kNotEqual: {
      const int n = args(0).base->count();
      const bool is_float = args(0).base->scalar() == BaseType::kFloat;
      ForEachLane(mask, [&](int l) {
        const Value& a = args(0).at(l);
        const Value& c = args(1).at(l);
        Value& out = dst.at(l);
        for (int i = 0; i < n; ++i) {
          alu.Count(1);
          bool r = false;
          if (is_float) {
            const float x = a.F(i);
            const float y = c.F(i);
            switch (b) {
              case Builtin::kLessThan: r = x < y; break;
              case Builtin::kLessThanEqual: r = x <= y; break;
              case Builtin::kGreaterThan: r = x > y; break;
              case Builtin::kGreaterThanEqual: r = x >= y; break;
              case Builtin::kEqual: r = x == y; break;
              default: r = x != y; break;
            }
          } else {
            const std::int32_t x = a.I(i);
            const std::int32_t y = c.I(i);
            switch (b) {
              case Builtin::kLessThan: r = x < y; break;
              case Builtin::kLessThanEqual: r = x <= y; break;
              case Builtin::kGreaterThan: r = x > y; break;
              case Builtin::kGreaterThanEqual: r = x >= y; break;
              case Builtin::kEqual: r = x == y; break;
              default: r = x != y; break;
            }
          }
          out.SetB(i, r);
        }
      });
      return;
    }
    case Builtin::kAny: {
      const int n = args(0).base->count();
      ForEachLane(mask, [&](int l) {
        const Value& a = args(0).at(l);
        bool r = false;
        for (int i = 0; i < n; ++i) r = r || a.B(i);
        alu.Count(n);
        dst.at(l).SetB(0, r);
      });
      return;
    }
    case Builtin::kAll: {
      const int n = args(0).base->count();
      ForEachLane(mask, [&](int l) {
        const Value& a = args(0).at(l);
        bool r = true;
        for (int i = 0; i < n; ++i) r = r && a.B(i);
        alu.Count(n);
        dst.at(l).SetB(0, r);
      });
      return;
    }
    case Builtin::kNot: {
      const int n = args(0).base->count();
      ForEachLane(mask, [&](int l) {
        const Value& a = args(0).at(l);
        Value& out = dst.at(l);
        for (int i = 0; i < n; ++i) out.SetB(i, !a.B(i));
        alu.Count(n);
      });
      return;
    }

    // Texture builtins are reachable only through the single-lane scalar
    // wrapper (EvalBuiltinInto): the batched VM replays them per lane to
    // keep TMU cache-access order fragment-sequential (IsSoaBuiltin).
    case Builtin::kTexture2D:
      ForEachLane(mask, [&](int l) {
        TextureFetchInto(dst.at(l), texture, alu, args(0).at(l).I(0),
                         args(1).at(l).F(0), args(1).at(l).F(1), 0.0f);
      });
      return;
    case Builtin::kTexture2DBias:
    case Builtin::kTexture2DLod:
      ForEachLane(mask, [&](int l) {
        TextureFetchInto(dst.at(l), texture, alu, args(0).at(l).I(0),
                         args(1).at(l).F(0), args(1).at(l).F(1),
                         args(2).at(l).F(0));
      });
      return;
    case Builtin::kTexture2DProj3:
    case Builtin::kTexture2DProj3Bias:
    case Builtin::kTexture2DProjLod3:
      ForEachLane(mask, [&](int l) {
        const Value& uv = args(1).at(l);
        const float q = uv.F(2);
        const float lod = argp.size() > 2 ? args(2).at(l).F(0) : 0.0f;
        TextureFetchInto(dst.at(l), texture, alu, args(0).at(l).I(0),
                         alu.Div(uv.F(0), q), alu.Div(uv.F(1), q), lod);
      });
      return;
    case Builtin::kTexture2DProj4:
    case Builtin::kTexture2DProj4Bias:
    case Builtin::kTexture2DProjLod4:
      ForEachLane(mask, [&](int l) {
        const Value& uv = args(1).at(l);
        const float q = uv.F(3);
        const float lod = argp.size() > 2 ? args(2).at(l).F(0) : 0.0f;
        TextureFetchInto(dst.at(l), texture, alu, args(0).at(l).I(0),
                         alu.Div(uv.F(0), q), alu.Div(uv.F(1), q), lod);
      });
      return;
  }
}

void EvalBuiltinInto(Builtin b, Type result_type,
                     std::span<const Value* const> argp, AluModel& alu,
                     const TextureFn& texture, Value& dst) {
  // Single-lane view over the batch kernel: one implementation of builtin
  // semantics serves the tree-walking oracle, the scalar VM, and the
  // batched VM alike.
  std::array<BatchSrc, kMaxBuiltinArgs> av;
  for (std::size_t i = 0; i < argp.size(); ++i) av[i] = BatchSrc{argp[i], 0};
  EvalBuiltinBatch(b, result_type,
                   std::span<const BatchSrc>(av.data(), argp.size()), alu,
                   texture, BatchDst{&dst, 0}, 0x1u);
}

Value EvalBuiltin(Builtin b, Type result_type,
                  std::span<const Value* const> args, AluModel& alu,
                  const TextureFn& texture) {
  Value out(result_type);
  EvalBuiltinInto(b, result_type, args, alu, texture, out);
  return out;
}

bool IsSimdBuiltin(Builtin b) {
  switch (b) {
    case Builtin::kAbs:
    case Builtin::kFloor:
    case Builtin::kCeil:
    case Builtin::kFract:
    case Builtin::kMin:
    case Builtin::kMax:
    case Builtin::kClamp:
    case Builtin::kMix:
    case Builtin::kStep:
    case Builtin::kMatrixCompMult:
    case Builtin::kDot:
    case Builtin::kNormalize:
      return true;
    default:
      return false;
  }
}

// ---------------------------------------------------------------------------
// SIMD builtin kernels (x86-64; contract in builtins.h / simd.h)
// ---------------------------------------------------------------------------

#if MGPU_SIMD_X86

namespace {

// Full-width 128-bit load/store over Value cells; callers keep the touched
// range inside the inline storage (see the evalcore.cc twins).
inline __m128 LoadF4(const Cell* c) {
  return _mm_loadu_ps(reinterpret_cast<const float*>(c));
}
inline void StoreF4(Cell* c, __m128 v) {
  _mm_storeu_ps(reinterpret_cast<float*>(c), v);
}

// Bitwise select: m ? a : b per element (m is a full-width compare mask).
inline __m128 Select(__m128 m, __m128 a, __m128 b) {
  return _mm_or_ps(_mm_and_ps(m, a), _mm_andnot_ps(m, b));
}

// Exact vector emulations of FminScalar/FmaxScalar above (which pin down
// glibc's x86-64 fminf/fmaxf bit behaviour). Per element:
//   ordered            -> MINPS/MAXPS (strict compare, second operand on
//                         equality — MINPS is defined exactly as the
//                         scalar helper's `x < y ? x : y`);
//   one quiet NaN      -> the other operand;
//   sNaN or two NaNs   -> the first NaN operand, quieted (the ADDPS rule,
//                         computed bitwise like the scalar helper).
template <bool kMin>
inline __m128 MinMaxEmu(__m128 x, __m128 y) {
  const __m128 ordered = kMin ? _mm_min_ps(x, y) : _mm_max_ps(x, y);
  const __m128 x_nan = _mm_cmpunord_ps(x, x);
  const __m128 y_nan = _mm_cmpunord_ps(y, y);
  const __m128i qbit = _mm_set1_epi32(0x00400000);
  // Quiet-NaN flags (only meaningful where *_nan holds).
  const __m128 x_quiet = _mm_and_ps(
      x_nan, _mm_castsi128_ps(_mm_cmpeq_epi32(
                 _mm_and_si128(_mm_castps_si128(x), qbit), qbit)));
  const __m128 y_quiet = _mm_and_ps(
      y_nan, _mm_castsi128_ps(_mm_cmpeq_epi32(
                 _mm_and_si128(_mm_castps_si128(y), qbit), qbit)));
  // First-NaN-quieted, the result wherever a signaling NaN or two NaNs
  // appear.
  const __m128 quieted = _mm_or_ps(Select(x_nan, x, y), _mm_castsi128_ps(qbit));
  const __m128 add_path =
      _mm_or_ps(_mm_and_ps(x_nan, y_nan),
                _mm_or_ps(_mm_andnot_ps(x_quiet, x_nan),
                          _mm_andnot_ps(y_quiet, y_nan)));
  __m128 r = ordered;
  r = Select(_mm_andnot_ps(y_nan, x_nan), y, r);  // x the only NaN -> y
  r = Select(_mm_andnot_ps(x_nan, y_nan), x, r);  // y the only NaN -> x
  return Select(add_path, quieted, r);
}
inline __m128 FminEmu(__m128 x, __m128 y) { return MinMaxEmu<true>(x, y); }
inline __m128 FmaxEmu(__m128 x, __m128 y) { return MinMaxEmu<false>(x, y); }

// Map helpers mirroring MapUnaryBatch/MapBinaryBatch/MapTernaryBatch with
// the component loop taken 4 floats at a time. `bs`/`cs` are the scalar-
// broadcast strides (0 = splat that operand's first component).
template <typename Op>
void SimdMapUnary(const BatchDst& dst, const BatchSrc& a, int n,
                  std::uint32_t mask, Op op) {
  ForEachLane(mask, [&](int l) {
    const Cell* ac = a.at(l).data();
    Cell* oc = dst.at(l).data();
    for (int i = 0; i < n; i += 4) StoreF4(oc + i, op(LoadF4(ac + i)));
  });
}

template <typename Op>
void SimdMapBinary(const BatchDst& dst, const BatchSrc& a, const BatchSrc& b,
                   int n, int bs, std::uint32_t mask, Op op) {
  if (bs == 0) {
    ForEachLane(mask, [&](int l) {
      const Cell* ac = a.at(l).data();
      const __m128 vb = _mm_set1_ps(b.at(l).F(0));
      Cell* oc = dst.at(l).data();
      for (int i = 0; i < n; i += 4) StoreF4(oc + i, op(LoadF4(ac + i), vb));
    });
    return;
  }
  ForEachLane(mask, [&](int l) {
    const Cell* ac = a.at(l).data();
    const Cell* bc = b.at(l).data();
    Cell* oc = dst.at(l).data();
    for (int i = 0; i < n; i += 4) {
      StoreF4(oc + i, op(LoadF4(ac + i), LoadF4(bc + i)));
    }
  });
}

template <typename Op>
void SimdMapTernary(const BatchDst& dst, const BatchSrc& a, const BatchSrc& b,
                    const BatchSrc& c, int n, int bs, int cs,
                    std::uint32_t mask, Op op) {
  ForEachLane(mask, [&](int l) {
    const Cell* ac = a.at(l).data();
    const Cell* bc = b.at(l).data();
    const Cell* cc = c.at(l).data();
    const __m128 vb0 = bs ? _mm_setzero_ps() : _mm_set1_ps(b.at(l).F(0));
    const __m128 vc0 = cs ? _mm_setzero_ps() : _mm_set1_ps(c.at(l).F(0));
    Cell* oc = dst.at(l).data();
    for (int i = 0; i < n; i += 4) {
      const __m128 vb = bs ? LoadF4(bc + i) : vb0;
      const __m128 vc = cs ? LoadF4(cc + i) : vc0;
      StoreF4(oc + i, op(LoadF4(ac + i), vb, vc));
    }
  });
}

// Gathers component i of four lanes' values into one vector (element k of
// the result holds lane v[k]'s component — each SIMD element replays its
// own lane, which is what keeps sequential accumulation chains exact).
inline __m128 GatherComp(const Value* const v[4], int i) {
  return _mm_set_ps(v[3]->F(i), v[2]->F(i), v[1]->F(i), v[0]->F(i));
}

// dot(a, b) across lanes, 4 live lanes per step: element k replays lane
// lanes[g+k]'s exact mul/add chain in order, so results match the scalar
// DotProduct bit for bit under the round-identity precondition. Leftover
// lanes run the same chain in plain scalar code (this TU is compiled for
// baseline x86-64 — no FMA — so no contraction can alter either path).
void SimdDotLanes(const BatchDst& dst, const BatchSrc& a, const BatchSrc& b,
                  int n, std::uint32_t mask) {
  int lanes[32];
  int c = 0;
  for (std::uint32_t m = mask; m != 0; m &= m - 1) {
    lanes[c++] = std::countr_zero(m);
  }
  int g = 0;
  for (; g + 4 <= c; g += 4) {
    const Value* av[4];
    const Value* bv[4];
    for (int k = 0; k < 4; ++k) {
      av[k] = &a.at(lanes[g + k]);
      bv[k] = &b.at(lanes[g + k]);
    }
    __m128 acc = _mm_mul_ps(GatherComp(av, 0), GatherComp(bv, 0));
    for (int i = 1; i < n; ++i) {
      acc = _mm_add_ps(acc, _mm_mul_ps(GatherComp(av, i), GatherComp(bv, i)));
    }
    alignas(16) float r[4];
    _mm_store_ps(r, acc);
    for (int k = 0; k < 4; ++k) dst.at(lanes[g + k]).SetF(0, r[k]);
  }
  for (; g < c; ++g) {
    const Value& avv = a.at(lanes[g]);
    const Value& bvv = b.at(lanes[g]);
    float acc = avv.F(0) * bvv.F(0);
    for (int i = 1; i < n; ++i) {
      const float p = avv.F(i) * bvv.F(i);
      acc = acc + p;
    }
    dst.at(lanes[g]).SetF(0, acc);
  }
}

#if defined(__GNUC__) || defined(__clang__)
#define MGPU_SIMD_AVX2_TIER 1
// floor/ceil/fract need the SSE4.1+ round instructions, so they vectorize
// only on the cpuid-gated AVX2 tier; these functions carry the target
// attribute instead of per-TU flags. No lambdas inside (a lambda body would
// not inherit the target and the always_inline intrinsics would fail to
// inline into it), and no raw float arithmetic (the FMA contraction the
// attribute enables could otherwise alter results vs the baseline TU).
__attribute__((target("avx2"))) void FloorLanesAvx2(const BatchDst& dst,
                                                    const BatchSrc& a, int n,
                                                    std::uint32_t mask,
                                                    bool ceil) {
  for (std::uint32_t m = mask; m != 0; m &= m - 1) {
    const int l = std::countr_zero(m);
    const Cell* ac = a.at(l).data();
    Cell* oc = dst.at(l).data();
    for (int i = 0; i < n; i += 4) {
      const __m128 x = LoadF4(ac + i);
      // ROUNDPS quiets signaling NaNs, but the scalar kernel's std::floor
      // (inlined by GCC as SSE2 integer manipulation) returns every NaN
      // unchanged — blend NaN elements through untouched.
      const __m128 r = ceil ? _mm_ceil_ps(x) : _mm_floor_ps(x);
      const __m128 nan = _mm_cmpunord_ps(x, x);
      StoreF4(oc + i, _mm_or_ps(_mm_and_ps(nan, x), _mm_andnot_ps(nan, r)));
    }
  }
}

__attribute__((target("avx2"))) void FractLanesAvx2(const BatchDst& dst,
                                                    const BatchSrc& a, int n,
                                                    std::uint32_t mask) {
  for (std::uint32_t m = mask; m != 0; m &= m - 1) {
    const int l = std::countr_zero(m);
    const Cell* ac = a.at(l).data();
    Cell* oc = dst.at(l).data();
    for (int i = 0; i < n; i += 4) {
      const __m128 x = LoadF4(ac + i);
      // NaN passthrough on the floor (see FloorLanesAvx2): the subtract
      // then computes x - x for NaN elements, exactly like the scalar
      // kernel's alu.Sub(x, std::floor(x)) — same operands on both sides,
      // so the propagated payload is identical no matter which operand the
      // hardware picks.
      const __m128 f = _mm_floor_ps(x);
      const __m128 nan = _mm_cmpunord_ps(x, x);
      const __m128 fl =
          _mm_or_ps(_mm_and_ps(nan, x), _mm_andnot_ps(nan, f));
      StoreF4(oc + i, _mm_sub_ps(x, fl));
    }
  }
}
#else
#define MGPU_SIMD_AVX2_TIER 0
#endif

}  // namespace

void EvalBuiltinBatchSimd(Builtin b, Type result_type,
                          std::span<const BatchSrc> argp, AluModel& alu,
                          const TextureFn& texture, const BatchDst& dst,
                          std::uint32_t mask, simd::Level level) {
  const auto fallback = [&] {
    EvalBuiltinBatch(b, result_type, argp, alu, texture, dst, mask);
  };
  if (level == simd::Level::kScalar || !IsSimdBuiltin(b)) {
    fallback();
    return;
  }
  // Shape guard, hoisted per instruction: the mapped operand must be a
  // float vector/matrix whose components (and every broadcast source) stay
  // inside the inline cells. The lowering tag already guarantees this; the
  // re-check keeps the entry total if the tag predicate ever drifts.
  const BatchSrc& a0 = b == Builtin::kStep ? argp[1] : argp[0];
  const int n = a0.base->count();
  if (a0.base->scalar() != BaseType::kFloat || n < 2 || n > Value::kInline) {
    fallback();
    return;
  }
  const std::uint64_t lanes = std::popcount(mask);
  switch (b) {
    case Builtin::kAbs: {
      alu.CountAlu(static_cast<std::uint64_t>(n) * lanes);
      const __m128 mask_abs =
          _mm_castsi128_ps(_mm_set1_epi32(0x7fffffff));
      SimdMapUnary(dst, argp[0], n, mask,
                   [&](__m128 x) { return _mm_and_ps(x, mask_abs); });
      return;
    }
    case Builtin::kFloor:
    case Builtin::kCeil:
#if MGPU_SIMD_AVX2_TIER
      if (level == simd::Level::kAvx2) {
        alu.CountAlu(static_cast<std::uint64_t>(n) * lanes);
        FloorLanesAvx2(dst, argp[0], n, mask, b == Builtin::kCeil);
        return;
      }
#endif
      fallback();
      return;
    case Builtin::kFract:
#if MGPU_SIMD_AVX2_TIER
      if (level == simd::Level::kAvx2) {
        alu.CountAlu(2 * static_cast<std::uint64_t>(n) * lanes);
        FractLanesAvx2(dst, argp[0], n, mask);
        return;
      }
#endif
      fallback();
      return;
    case Builtin::kMin:
      alu.CountAlu(static_cast<std::uint64_t>(n) * lanes);
      SimdMapBinary(dst, argp[0], argp[1], n,
                    argp[1].base->count() == 1 ? 0 : 1, mask, FminEmu);
      return;
    case Builtin::kMax:
      alu.CountAlu(static_cast<std::uint64_t>(n) * lanes);
      SimdMapBinary(dst, argp[0], argp[1], n,
                    argp[1].base->count() == 1 ? 0 : 1, mask, FmaxEmu);
      return;
    case Builtin::kClamp:
      alu.CountAlu(2 * static_cast<std::uint64_t>(n) * lanes);
      SimdMapTernary(dst, argp[0], argp[1], argp[2], n,
                     argp[1].base->count() == 1 ? 0 : 1,
                     argp[2].base->count() == 1 ? 0 : 1, mask,
                     [](__m128 x, __m128 lo, __m128 hi) {
                       return FminEmu(FmaxEmu(x, lo), hi);
                     });
      return;
    case Builtin::kMix:
      // Same op sequence as the scalar kernel: x*(1-a) + y*a, four plain
      // IEEE ops per component in the same order.
      alu.CountAlu(4 * static_cast<std::uint64_t>(n) * lanes);
      SimdMapTernary(dst, argp[0], argp[1], argp[2], n,
                     argp[1].base->count() == 1 ? 0 : 1,
                     argp[2].base->count() == 1 ? 0 : 1, mask,
                     [](__m128 x, __m128 y, __m128 a) {
                       const __m128 one = _mm_set1_ps(1.0f);
                       return _mm_add_ps(_mm_mul_ps(x, _mm_sub_ps(one, a)),
                                         _mm_mul_ps(y, a));
                     });
      return;
    case Builtin::kStep:
      // step(edge, x) = x < edge ? 0 : 1. CMPNLT is true exactly when
      // !(x < edge), including unordered — the scalar ternary's behaviour
      // for NaN — so masking an all-ones 1.0f yields the identical result.
      alu.CountAlu(static_cast<std::uint64_t>(n) * lanes);
      SimdMapBinary(dst, argp[1], argp[0], n,
                    argp[0].base->count() == 1 ? 0 : 1, mask,
                    [](__m128 x, __m128 edge) {
                      return _mm_and_ps(_mm_cmpnlt_ps(x, edge),
                                        _mm_set1_ps(1.0f));
                    });
      return;
    case Builtin::kMatrixCompMult:
      alu.CountAlu(static_cast<std::uint64_t>(n) * lanes);
      SimdMapBinary(dst, argp[0], argp[1], n, 1, mask,
                    [](__m128 x, __m128 y) { return _mm_mul_ps(x, y); });
      return;
    case Builtin::kDot:
      alu.CountAlu((2 * static_cast<std::uint64_t>(n) - 1) * lanes);
      SimdDotLanes(dst, argp[0], argp[1], n, mask);
      return;
    case Builtin::kNormalize:
      // Per lane: the sequential dot chain runs in scalar (exact replay of
      // DotProduct — baseline TU, no contraction), the 1/sqrt stays on the
      // virtual SFU path (precision model + sfu count), and only the final
      // scale-by-inverse map vectorizes.
      alu.CountAlu((3 * static_cast<std::uint64_t>(n) - 1) * lanes);
      ForEachLane(mask, [&](int l) {
        const Value& av = argp[0].at(l);
        float acc = av.F(0) * av.F(0);
        for (int i = 1; i < n; ++i) {
          const float p = av.F(i) * av.F(i);
          acc = acc + p;
        }
        const __m128 inv = _mm_set1_ps(alu.RecipSqrt(acc));
        const Cell* ac = av.data();
        Cell* oc = dst.at(l).data();
        for (int i = 0; i < n; i += 4) {
          StoreF4(oc + i, _mm_mul_ps(LoadF4(ac + i), inv));
        }
      });
      return;
    default:
      fallback();
      return;
  }
}

#else  // !MGPU_SIMD_X86 — portable builds: the entry forwards verbatim.

void EvalBuiltinBatchSimd(Builtin b, Type result_type,
                          std::span<const BatchSrc> argp, AluModel& alu,
                          const TextureFn& texture, const BatchDst& dst,
                          std::uint32_t mask, simd::Level /*level*/) {
  EvalBuiltinBatch(b, result_type, argp, alu, texture, dst, mask);
}

#endif  // MGPU_SIMD_X86

}  // namespace mgpu::glsl
