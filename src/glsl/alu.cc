#include "glsl/alu.h"

#include <cmath>

namespace mgpu::glsl {

float AluModel::Recip(float x) {
  CountSfu(1);
  return Round(1.0f / x);
}

float AluModel::RecipSqrt(float x) {
  CountSfu(1);
  return Round(1.0f / std::sqrt(x));
}

float AluModel::Exp2(float x) {
  CountSfuTrans(1);
  return Round(std::exp2(x));
}

float AluModel::Log2(float x) {
  CountSfuTrans(1);
  return Round(std::log2(x));
}

float AluModel::Sqrt(float x) {
  // Lowered as x * rsqrt(x) (with sqrt(0) = 0 fixup), as on the QPU.
  if (x == 0.0f) {
    CountSfu(1);
    return 0.0f;
  }
  return Mul(x, RecipSqrt(x));
}

float AluModel::Pow(float x, float y) {
  // Lowered as exp2(y * log2(x)).
  return Exp2(Mul(y, Log2(x)));
}

float AluModel::Exp(float x) {
  constexpr float kLog2E = 1.4426950408889634f;
  return Exp2(Mul(x, kLog2E));
}

float AluModel::Log(float x) {
  constexpr float kLn2 = 0.6931471805599453f;
  return Mul(Log2(x), kLn2);
}

float AluModel::Sin(float x) { CountSfuTrans(1); return Round(std::sin(x)); }
float AluModel::Cos(float x) { CountSfuTrans(1); return Round(std::cos(x)); }
float AluModel::Tan(float x) { CountSfuTrans(1); return Round(std::tan(x)); }
float AluModel::Asin(float x) { CountSfuTrans(1); return Round(std::asin(x)); }
float AluModel::Acos(float x) { CountSfuTrans(1); return Round(std::acos(x)); }
float AluModel::Atan(float x) { CountSfuTrans(1); return Round(std::atan(x)); }
float AluModel::Atan2(float y, float x) {
  CountSfuTrans(1);
  return Round(std::atan2(y, x));
}

}  // namespace mgpu::glsl
