// Token definitions for the GLSL ES 1.00 scanner.
#ifndef MGPU_GLSL_TOKEN_H_
#define MGPU_GLSL_TOKEN_H_

#include <cstdint>
#include <string>

#include "glsl/diag.h"
#include "glsl/type.h"

namespace mgpu::glsl {

enum class Tok : unsigned char {
  kEof,
  kIdentifier,
  kIntLiteral,
  kFloatLiteral,
  // Keywords.
  kKwAttribute,
  kKwConst,
  kKwUniform,
  kKwVarying,
  kKwBreak,
  kKwContinue,
  kKwDo,
  kKwFor,
  kKwWhile,
  kKwIf,
  kKwElse,
  kKwIn,
  kKwOut,
  kKwInOut,
  kKwTrue,
  kKwFalse,
  kKwLowp,
  kKwMediump,
  kKwHighp,
  kKwPrecision,
  kKwInvariant,
  kKwDiscard,
  kKwReturn,
  kKwStruct,
  kKwVoid,
  kKwBool,
  kKwInt,
  kKwFloat,
  kKwVec2,
  kKwVec3,
  kKwVec4,
  kKwBVec2,
  kKwBVec3,
  kKwBVec4,
  kKwIVec2,
  kKwIVec3,
  kKwIVec4,
  kKwMat2,
  kKwMat3,
  kKwMat4,
  kKwSampler2D,
  kKwSamplerCube,
  // Punctuation / operators.
  kLParen,
  kRParen,
  kLBracket,
  kRBracket,
  kLBrace,
  kRBrace,
  kDot,
  kComma,
  kSemicolon,
  kColon,
  kQuestion,
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kBang,
  kLess,
  kGreater,
  kLessEq,
  kGreaterEq,
  kEqEq,
  kBangEq,
  kAmpAmp,
  kPipePipe,
  kCaretCaret,
  kEq,
  kPlusEq,
  kMinusEq,
  kStarEq,
  kSlashEq,
  kPlusPlus,
  kMinusMinus,
};

struct Token {
  Tok kind = Tok::kEof;
  SrcLoc loc;
  std::string text;      // identifier spelling
  std::int32_t int_value = 0;
  float float_value = 0.0f;
};

// True for tokens that name a type (void/bool/.../samplerCube).
[[nodiscard]] bool IsTypeToken(Tok t);
// Maps a type token to its BaseType; kVoid for non-type tokens.
[[nodiscard]] BaseType TypeTokenToBase(Tok t);
[[nodiscard]] const char* TokName(Tok t);

}  // namespace mgpu::glsl

#endif  // MGPU_GLSL_TOKEN_H_
