// Minimal GLSL ES 1.00 preprocessor: comment stripping, #version, object-like
// #define/#undef, #ifdef/#ifndef/#else/#endif, #error, and pass-through for
// #pragma/#extension (with a warning for unknown extensions). Function-like
// macros are diagnosed as unsupported. Line structure is preserved so that
// downstream diagnostics point at the original source lines.
#ifndef MGPU_GLSL_PREPROCESSOR_H_
#define MGPU_GLSL_PREPROCESSOR_H_

#include <string>

#include "glsl/diag.h"

namespace mgpu::glsl {

struct PreprocessResult {
  std::string text;     // preprocessed source, same number of lines as input
  int version = 100;    // from #version, default 100
};

[[nodiscard]] PreprocessResult Preprocess(const std::string& source,
                                          DiagSink& diags);

}  // namespace mgpu::glsl

#endif  // MGPU_GLSL_PREPROCESSOR_H_
