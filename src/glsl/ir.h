// Linear, register-based bytecode IR for analyzed GLSL ES 1.00 shaders.
//
// The lowering pass (lower.cc) translates a CompiledShader's annotated AST
// into a flat VmInst stream once per program link; the VM (vm.h) then
// executes that stream once per fragment/vertex with a tight dispatch loop —
// no recursion, no per-invocation allocation, no scoped frames.
//
// Design notes:
//  - Values live in a flat register file typed at lowering time. Every
//    VarDecl (local or parameter) owns a dedicated register; expression
//    temporaries get fresh registers. Since GLSL ES 1.00 statically rejects
//    recursion (sema), each function's frame is allocated exactly once and
//    calls are a jump plus argument copies — no dynamic frames.
//  - Structured control flow (if/for/while/ternary/&&/||) is lowered to
//    conditional branches; `discard` and the loop-iteration guard are
//    dedicated ops.
//  - All float arithmetic routes through the same AluModel entry points as
//    the tree-walking interpreter (evalcore.h), so vc4 op accounting and
//    precision profiles are engine-independent by construction.
#ifndef MGPU_GLSL_IR_H_
#define MGPU_GLSL_IR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "glsl/shader.h"
#include "glsl/type.h"
#include "glsl/value.h"

namespace mgpu::glsl {

// Operands address one of three value spaces through a 2-bit tag:
// registers (temporaries, locals, parameters), shader globals (uniforms,
// attributes, varyings, gl_*), and the constant pool.
inline constexpr std::uint32_t kOperandIndexMask = 0x3fffffffu;
inline constexpr std::uint32_t kSpaceReg = 0u << 30;
inline constexpr std::uint32_t kSpaceGlobal = 1u << 30;
inline constexpr std::uint32_t kSpaceConst = 2u << 30;
inline constexpr std::uint32_t kOperandNone = 0xffffffffu;

enum class VmOp : std::uint8_t {
  // Data movement.
  kCopy,        // *dst = a (cell copy; both sides share a type)
  kZero,        // *dst = zero of its type
  kShuffle,     // *dst = static component gather of a (comps in aux, n cells)
  kExtract,     // *dst = a[clamp(b)] (elem_cells in n, limit in aux)
  // Arithmetic (shared semantics with the interpreter via evalcore).
  kArith,       // *dst = BinOp(u8)(a, b)
  kNeg,         // *dst = -a
  kNot,         // *dst = !a (scalar bool)
  kXor,         // *dst = a.bool != b.bool (GLSL ^^; both sides evaluated)
  kBoolNorm,    // *dst = bool(a != 0) — short-circuit &&/|| results
  kCtor,        // *dst = Type(args); args in arg_ops[aux .. aux+n)
  kBuiltin,     // *dst = Builtin(u8)(args); args in arg_ops[aux .. aux+n)
  // Control flow.
  kJump,        // pc = aux
  kJumpIfFalse, // if (!a.bool) pc = aux
  kJumpIfTrue,  // if (a.bool) pc = aux
  kLoopGuard,   // count an iteration against the runaway-loop budget
  kCall,        // push pc; pc = functions[aux].entry
  kRet,         // pop pc (empty stack: main returned -> halt)
  kDiscard,     // fragment killed: Run() returns false
  kHalt,        // normal end of chunk
  kTrap,        // throw ShaderRuntimeError(messages[aux])
  // L-value references (dynamic indexing / swizzled stores).
  kRefVar,      // refs[dst] = whole variable a (type in `type`)
  kRefIndex,    // refs[dst] = refs[a][clamp(b)] (elem_cells n, limit aux)
  kRefSwizzle,  // refs[dst] = swizzle of refs[a] (comps aux, count n)
  kReadRef,     // *dst = read refs[a]
  kWriteRef,    // write refs[dst] = a
  kIncDec,      // *dst = ++/--refs[a] (u8 bit0: increment, bit1: postfix)
  kIncDecVar,   // *dst = ++/--(*a) — whole-variable fast path, same counts
};

struct VmInst {
  VmOp op = VmOp::kHalt;
  std::uint8_t u8 = 0;    // BinOp / Builtin id / inc-dec flags
  std::uint16_t n = 0;    // arg count / component count / element cells
  std::uint32_t dst = kOperandNone;  // destination operand or ref slot
  std::uint32_t a = kOperandNone;
  std::uint32_t b = kOperandNone;
  std::uint32_t aux = 0;  // jump target / arg-table start / limit / comps
  Type type;              // result/element type where the op needs one
  // Set at lowering time (TagSoaEligibility in lower.cc); a tri-state the
  // batched executors dispatch kArith/kNeg/kCtor/kBuiltin on alone — no
  // runtime type inspection:
  //   0 — per-lane replay (linear-algebra multiplies, matrix constructors,
  //       texture builtins);
  //   1 — the scalar SoA batch kernel covers this op;
  //   2 — additionally SIMD-eligible: a vector kernel in evalcore/builtins
  //       covers the shape (stride-1 float fast path). The executor still
  //       picks simd-vs-scalar-SoA at dispatch time from the effective
  //       simd::Level (scalar when the AluModel is not round-identity, when
  //       MGPU_SIMD=0, or on non-x86 builds).
  std::uint8_t soa = 0;
};

[[nodiscard]] inline VmInst MakeInst(VmOp op) {
  VmInst i;
  i.op = op;
  return i;
}

struct VmFunction {
  std::uint32_t entry = 0;             // pc of the first instruction
  std::uint32_t ret_reg = kOperandNone;  // register holding the return value
};

// A global of the shader, mirrored into the VM so a VmExec is
// self-contained (slot-ordered, identical slots to the interpreter).
struct VmGlobal {
  std::string name;
  Type type;
};

// Maximum width of a fragment/kernel lane batch: RunBatch executes up to
// this many invocations in lockstep through one instruction stream (paper
// §II: a QPU shades 16-pixel groups through one program). Must fit a
// std::uint32_t lane mask. The raster pipeline picks its effective batch
// fill width at runtime (ContextConfig::fragment_batch_width, swept 8/16/32
// in bench_fig1_pipeline); this constant only bounds it and sizes the lane
// storage planes.
inline constexpr int kVmLanes = 32;

struct VmProgram {
  Stage stage = Stage::kFragment;
  std::vector<VmInst> code;
  // Chunk executed once at VmExec construction: all global initializers
  // (const + plain), mirroring ShaderExec::InitGlobals.
  std::uint32_t const_init_entry = 0;
  // Chunk executed per Run(): plain-global re-initialization, then a call
  // into main, mirroring ShaderExec::Run.
  std::uint32_t run_entry = 0;
  std::vector<VmFunction> functions;
  std::vector<Type> reg_types;       // register file layout
  std::vector<Value> consts;         // literal pool
  std::vector<std::uint32_t> arg_ops;  // flattened ctor/builtin operand lists
  std::vector<std::string> messages;   // trap texts
  std::uint32_t ref_slot_count = 0;
  std::vector<VmGlobal> globals;

  // --- lane-batching metadata (filled by the uniform-control-flow pass at
  // lowering time; see AnalyzeLaneBatching in lower.cc) ---
  // Globals that need one storage plane per lane when the program runs
  // batched: per-fragment inputs (varyings, gl_FragCoord, gl_FrontFacing,
  // gl_PointCoord) plus every global the run chunk or user code writes
  // (outputs, re-initialized plain globals, address-taken globals). All
  // other globals (uniforms, const tables) stay shared across lanes, so
  // per-draw uniform sync cost is independent of the lane width.
  // lane_global_index maps a global slot to its dense per-lane plane index,
  // or -1 when the global is shared.
  std::vector<std::int32_t> lane_global_index;
  std::uint32_t lane_global_count = 0;
  // Per-pc flag for kJumpIfFalse/kJumpIfTrue: true when the condition can
  // differ between lanes (derives from a lane-varying input), i.e. the
  // branch may diverge. Diagnostic metadata for introspection and the
  // MGPU_LANE_DEBUG log — the executors key off uniform_control_flow
  // below, and the masked executor re-evaluates every branch condition per
  // lane regardless of this bit.
  std::vector<std::uint8_t> divergent_branch;
  // True when no branch in the program is divergent: the whole program runs
  // in lockstep with a single shared pc (the fast batch path). Divergent
  // programs run under the per-lane-pc masked executor instead.
  bool uniform_control_flow = true;

  // True when any instruction can raise a runtime trap: a loop guard (the
  // runaway-loop budget, also the injection point for the kVmInstruction
  // fault site) or a lowered kTrap (call to a declared-but-undefined
  // function). kCall's depth check is excluded deliberately — recursion is
  // rejected at parse and static call depth is bounded at lowering, so the
  // runtime check is unreachable for any program that links. Drawing code
  // uses this to skip per-pixel undo journaling for programs that cannot
  // abort mid-draw (see Context::DrawGeneric).
  [[nodiscard]] bool CanTrap() const {
    for (const VmInst& in : code) {
      if (in.op == VmOp::kLoopGuard || in.op == VmOp::kTrap) return true;
    }
    return false;
  }

  [[nodiscard]] int GlobalSlot(const std::string& name) const {
    for (std::size_t i = 0; i < globals.size(); ++i) {
      if (globals[i].name == name) return static_cast<int>(i);
    }
    return -1;
  }
};

// Lowers an analyzed shader to bytecode. Total for any sema-valid shader;
// constructs that only fail at runtime in the interpreter (e.g. calling an
// undefined prototype) lower to kTrap so behaviour matches when executed.
[[nodiscard]] std::shared_ptr<const VmProgram> LowerToBytecode(
    const CompiledShader& cs);

}  // namespace mgpu::glsl

#endif  // MGPU_GLSL_IR_H_
