#include "glsl/compile.h"

#include "glsl/diag.h"
#include "glsl/lexer.h"
#include "glsl/parser.h"
#include "glsl/preprocessor.h"
#include "glsl/sema.h"

namespace mgpu::glsl {

CompileResult CompileGlsl(const std::string& source, Stage stage,
                          const Limits& limits) {
  CompileResult result;
  DiagSink diags;

  const PreprocessResult pp = Preprocess(source, diags);
  if (diags.has_errors()) {
    result.info_log = diags.InfoLog();
    return result;
  }
  const std::vector<Token> tokens = Lex(pp.text, diags);
  if (diags.has_errors()) {
    result.info_log = diags.InfoLog();
    return result;
  }
  std::unique_ptr<TranslationUnit> tu = Parse(tokens, diags);
  if (diags.has_errors()) {
    result.info_log = diags.InfoLog();
    return result;
  }
  std::unique_ptr<CompiledShader> shader =
      Analyze(std::move(tu), stage, limits, diags);
  shader->version = pp.version;
  result.info_log = diags.InfoLog();
  if (diags.has_errors()) return result;
  result.ok = true;
  result.shader = std::move(shader);
  return result;
}

}  // namespace mgpu::glsl
