// Tree-walking evaluator for analyzed GLSL ES 1.00 shaders. One ShaderExec
// holds the mutable state of a shader stage (uniforms, attributes/varyings,
// gl_* registers); Run() executes main() once per vertex or fragment. All
// float arithmetic is routed through an AluModel (precision + op counting)
// via the evaluation core shared with the bytecode VM (evalcore.h).
//
// This engine is the semantic reference oracle; the production fragment path
// runs the bytecode VM (vm.h), which is proven byte-identical — outputs and
// op counts — against this interpreter by the differential conformance
// harness (tests/glsl_vm_test.cc).
#ifndef MGPU_GLSL_INTERP_H_
#define MGPU_GLSL_INTERP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "glsl/alu.h"
#include "glsl/builtins.h"
#include "glsl/engine.h"
#include "glsl/evalcore.h"
#include "glsl/shader.h"
#include "glsl/value.h"

namespace mgpu::glsl {

class ShaderExec final : public ShaderEngine {
 public:
  // Historic name, kept for callers that predate the engine split.
  using RuntimeError = ShaderRuntimeError;

  ShaderExec(const CompiledShader& cs, AluModel& alu);

  void SetTextureFn(TextureFn fn) override { texture_ = std::move(fn); }

  [[nodiscard]] int GlobalSlot(const std::string& name) const override;
  [[nodiscard]] Value& GlobalAt(int slot) override {
    return globals_[static_cast<std::size_t>(slot)];
  }
  [[nodiscard]] const Value& GlobalAt(int slot) const {
    return globals_[static_cast<std::size_t>(slot)];
  }

  // Executes main(). Returns false if the invocation was discarded.
  bool Run() override;

  // Loop-iteration budget (default kDefaultLoopBudget), same semantics as
  // VmExec::SetLoopBudget so differential tests can trip traps cheaply on
  // both engines.
  void SetLoopBudget(std::uint64_t steps) { loop_budget_ = steps; }
  [[nodiscard]] std::uint64_t loop_budget() const { return loop_budget_; }

  [[nodiscard]] const CompiledShader& shader() const { return cs_; }
  [[nodiscard]] AluModel& alu() { return alu_; }

 private:
  enum class Flow { kNormal, kBreak, kContinue, kReturn, kDiscard };

  struct Frame {
    std::vector<Value> slots;
    Value ret;
    bool returned = false;
  };

  void InitGlobals();
  Value EvalInit(const Expr& e);

  Value Eval(const Expr& e, Frame& f);
  Flow Exec(const Stmt& s, Frame& f);
  Flow ExecBlock(const BlockStmt& b, Frame& f);

  LRef EvalLValue(const Expr& e, Frame& f);

  Value EvalArith(BinOp op, const Value& l, const Value& r, Type result);
  Value EvalCtor(const CtorExpr& c, Frame& f);
  Value CallFunction(const FunctionDecl& fn, const CallExpr& call, Frame& f);

  void CheckLoopGuard();

  const CompiledShader& cs_;
  AluModel& alu_;
  TextureFn texture_;
  std::vector<Value> globals_;
  std::vector<int> reinit_slots_;  // plain globals with initializers
  std::uint64_t loop_steps_ = 0;
  std::uint64_t loop_budget_ = kDefaultLoopBudget;
  int call_depth_ = 0;
};

}  // namespace mgpu::glsl

#endif  // MGPU_GLSL_INTERP_H_
