// Tree-walking evaluator for analyzed GLSL ES 1.00 shaders. One ShaderExec
// holds the mutable state of a shader stage (uniforms, attributes/varyings,
// gl_* registers); Run() executes main() once per vertex or fragment. All
// float arithmetic is routed through an AluModel (precision + op counting).
#ifndef MGPU_GLSL_INTERP_H_
#define MGPU_GLSL_INTERP_H_

#include <array>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "glsl/alu.h"
#include "glsl/builtins.h"
#include "glsl/shader.h"
#include "glsl/value.h"

namespace mgpu::glsl {

class ShaderExec {
 public:
  // Thrown on conditions a real GPU would turn into hangs or undefined
  // behaviour (runaway loops, call-depth overflow); the gles2 context
  // converts it into a draw error.
  struct RuntimeError : std::runtime_error {
    using std::runtime_error::runtime_error;
  };

  ShaderExec(const CompiledShader& cs, AluModel& alu);

  void SetTextureFn(TextureFn fn) { texture_ = std::move(fn); }

  // Slot of a global (uniform, attribute, varying, gl_*); -1 when absent.
  [[nodiscard]] int GlobalSlot(const std::string& name) const;
  [[nodiscard]] Value& GlobalAt(int slot) { return globals_[static_cast<std::size_t>(slot)]; }
  [[nodiscard]] const Value& GlobalAt(int slot) const {
    return globals_[static_cast<std::size_t>(slot)];
  }

  // Executes main(). Returns false if the invocation was discarded.
  bool Run();

  [[nodiscard]] const CompiledShader& shader() const { return cs_; }
  [[nodiscard]] AluModel& alu() { return alu_; }

 private:
  enum class Flow { kNormal, kBreak, kContinue, kReturn, kDiscard };

  struct Frame {
    std::vector<Value> slots;
    Value ret;
    bool returned = false;
  };

  // L-value reference: maps result components onto cells of a storage Value.
  struct LRef {
    Value* storage = nullptr;
    Type type;
    std::array<std::uint16_t, 16> idx{};
    int n = 0;
  };

  void InitGlobals();
  Value EvalInit(const Expr& e);

  Value Eval(const Expr& e, Frame& f);
  Flow Exec(const Stmt& s, Frame& f);
  Flow ExecBlock(const BlockStmt& b, Frame& f);

  LRef EvalLValue(const Expr& e, Frame& f);
  [[nodiscard]] Value ReadRef(const LRef& r) const;
  void WriteRef(const LRef& r, const Value& v);

  Value EvalArith(BinOp op, const Value& l, const Value& r, Type result);
  Value EvalCtor(const CtorExpr& c, Frame& f);
  Value CallFunction(const FunctionDecl& fn, const CallExpr& call, Frame& f);

  void CheckLoopGuard();

  const CompiledShader& cs_;
  AluModel& alu_;
  TextureFn texture_;
  std::vector<Value> globals_;
  std::vector<int> reinit_slots_;  // plain globals with initializers
  std::uint64_t loop_steps_ = 0;
  int call_depth_ = 0;
};

}  // namespace mgpu::glsl

#endif  // MGPU_GLSL_INTERP_H_
