// AST -> bytecode lowering. Translates the annotated tree the semantic
// analyzer produced into the flat VmInst stream of ir.h. The lowering
// preserves the tree-walking interpreter's evaluation order *exactly* —
// including argument evaluation order, l-value timing, and short-circuit
// behaviour — so the VM's results and AluModel op counts are identical.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <unordered_map>

#include "common/strings.h"
#include "glsl/builtins.h"
#include "glsl/evalcore.h"
#include "glsl/ir.h"

namespace mgpu::glsl {
namespace {

// True when evaluating `e` can mutate shader state (assignments, ++/--, or
// a call into user code, which may write globals or out-parameters). Used to
// decide when an already-lowered operand must be materialized into a
// temporary before a sibling expression executes — mirroring the
// interpreter, which always evaluates sub-expressions into copies.
bool HasSideEffects(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kIntLit:
    case ExprKind::kFloatLit:
    case ExprKind::kBoolLit:
    case ExprKind::kVarRef:
      return false;
    case ExprKind::kAssign:
      return true;
    case ExprKind::kUnary: {
      const auto& u = static_cast<const UnaryExpr&>(e);
      if (u.op == UnOp::kPreInc || u.op == UnOp::kPreDec ||
          u.op == UnOp::kPostInc || u.op == UnOp::kPostDec) {
        return true;
      }
      return HasSideEffects(*u.operand);
    }
    case ExprKind::kCall: {
      const auto& c = static_cast<const CallExpr&>(e);
      if (c.fn != nullptr) return true;  // user call: may write globals
      for (const auto& a : c.args) {
        if (HasSideEffects(*a)) return true;
      }
      return false;
    }
    case ExprKind::kCtor: {
      const auto& c = static_cast<const CtorExpr&>(e);
      for (const auto& a : c.args) {
        if (HasSideEffects(*a)) return true;
      }
      return false;
    }
    case ExprKind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(e);
      return HasSideEffects(*b.lhs) || HasSideEffects(*b.rhs);
    }
    case ExprKind::kTernary: {
      const auto& t = static_cast<const TernaryExpr&>(e);
      return HasSideEffects(*t.cond) || HasSideEffects(*t.then_expr) ||
             HasSideEffects(*t.else_expr);
    }
    case ExprKind::kIndex: {
      const auto& ix = static_cast<const IndexExpr&>(e);
      return HasSideEffects(*ix.base) || HasSideEffects(*ix.index);
    }
    case ExprKind::kSwizzle:
      return HasSideEffects(*static_cast<const SwizzleExpr&>(e).base);
    case ExprKind::kComma: {
      const auto& c = static_cast<const CommaExpr&>(e);
      return HasSideEffects(*c.lhs) || HasSideEffects(*c.rhs);
    }
  }
  return true;  // unknown node: be conservative
}

std::uint32_t PackComps(const std::uint8_t* comps, int count) {
  std::uint32_t packed = 0;
  for (int i = 0; i < count; ++i) {
    packed |= static_cast<std::uint32_t>(comps[i]) << (8 * i);
  }
  return packed;
}

// later[i] is true when some argument after i has side effects, i.e. the
// operand of argument i must be snapshotted before those arguments run.
std::vector<bool> LaterEffects(const std::vector<ExprPtr>& args) {
  std::vector<bool> later(args.size());
  bool any = false;
  for (std::size_t i = args.size(); i-- > 0;) {
    later[i] = any;
    if (HasSideEffects(*args[i])) any = true;
  }
  return later;
}

class Lowerer {
 public:
  explicit Lowerer(const CompiledShader& cs)
      : cs_(cs), prog_(std::make_shared<VmProgram>()) {}

  std::shared_ptr<const VmProgram> Lower() {
    prog_->stage = cs_.stage;
    for (const VarDecl* g : cs_.globals) {
      prog_->globals.push_back({g->name, g->type});
    }
    PrepassFunctions();

    // Inlining must not change the call-depth boundary the interpreter
    // enforces (64 concurrently active user calls; the 65th throws). Call
    // depth is fully static in GLSL ES (no recursion), so: if every path
    // stays within the budget, the interpreter never throws and inlining
    // is invisible; otherwise (deeper, or malformed recursive input)
    // disable inlining entirely so the runtime kCall path reproduces the
    // oracle's behaviour exactly.
    int depth = cs_.main != nullptr && cs_.main->body != nullptr
                    ? FnCallDepth(cs_.main)
                    : 0;
    for (const VarDecl* g : cs_.globals) {
      if (g->init != nullptr) depth = std::max(depth, ExprCallDepth(*g->init));
    }
    inline_enabled_ = depth <= kMaxStaticCallDepth;

    // Chunk 1: construction-time initialization of every global with an
    // initializer (slot order), mirroring ShaderExec::InitGlobals.
    prog_->const_init_entry = Pc();
    for (const VarDecl* g : cs_.globals) {
      if (g->init != nullptr) {
        const std::uint32_t v = LowerExpr(*g->init);
        EmitCopy(GlobalOperand(g->slot), v);
      }
    }
    Emit(MakeInst(VmOp::kHalt));

    // Chunk 2: the per-Run prologue — re-initialize plain globals, then run
    // main — mirroring ShaderExec::Run.
    prog_->run_entry = Pc();
    for (const VarDecl* g : cs_.globals) {
      if (g->init != nullptr && !g->is_builtin &&
          g->qual == Qualifier::kNone) {
        const std::uint32_t v = LowerExpr(*g->init);
        EmitCopy(GlobalOperand(g->slot), v);
      }
    }
    const FunctionDecl* main_def =
        cs_.main != nullptr && cs_.main->body != nullptr ? cs_.main : nullptr;
    if (main_def == nullptr) {
      EmitTrap("shader has no executable main()");
    } else {
      VmInst call = MakeInst(VmOp::kCall);
      call.aux = fn_index_.at(main_def);
      Emit(call);
    }
    Emit(MakeInst(VmOp::kHalt));

    // Function bodies (iterate the TU so the emission order is stable).
    for (const auto& fn : cs_.tu->functions) {
      const auto it = fn_index_.find(fn.get());
      if (it != fn_index_.end()) LowerFunction(*fn, it->second);
    }
    return prog_;
  }

 private:
  struct LoopCtx {
    std::vector<std::uint32_t> break_fixups;
    std::vector<std::uint32_t> continue_fixups;
  };

  [[nodiscard]] std::uint32_t Pc() const {
    return static_cast<std::uint32_t>(prog_->code.size());
  }

  std::uint32_t Emit(const VmInst& inst) {
    prog_->code.push_back(inst);
    return Pc() - 1;
  }

  void Patch(std::uint32_t at, std::uint32_t target) {
    prog_->code[at].aux = target;
  }

  [[nodiscard]] std::uint32_t NewReg(const Type& t) {
    prog_->reg_types.push_back(t);
    return kSpaceReg |
           static_cast<std::uint32_t>(prog_->reg_types.size() - 1);
  }

  [[nodiscard]] static std::uint32_t GlobalOperand(int slot) {
    return kSpaceGlobal | static_cast<std::uint32_t>(slot);
  }

  [[nodiscard]] std::uint32_t NewConst(Value v) {
    prog_->consts.push_back(std::move(v));
    return kSpaceConst |
           static_cast<std::uint32_t>(prog_->consts.size() - 1);
  }

  [[nodiscard]] std::uint32_t NewRefSlot() { return prog_->ref_slot_count++; }

  [[nodiscard]] std::uint32_t NewMessage(std::string text) {
    prog_->messages.push_back(std::move(text));
    return static_cast<std::uint32_t>(prog_->messages.size() - 1);
  }

  void EmitTrap(std::string text) {
    VmInst t = MakeInst(VmOp::kTrap);
    t.aux = NewMessage(std::move(text));
    Emit(t);
  }

  void EmitCopy(std::uint32_t dst, std::uint32_t src) {
    if (dst == src) return;
    VmInst c = MakeInst(VmOp::kCopy);
    c.dst = dst;
    c.a = src;
    Emit(c);
  }

  // Copies `op` into a fresh temporary of type `t` so later side effects
  // cannot change its value. Constants are immutable already.
  [[nodiscard]] std::uint32_t Materialize(std::uint32_t op, const Type& t) {
    if ((op & ~kOperandIndexMask) == kSpaceConst) return op;
    const std::uint32_t tmp = NewReg(t);
    EmitCopy(tmp, op);
    return tmp;
  }

  // --- functions ---------------------------------------------------------

  void PrepassFunctions() {
    for (const auto& fn : cs_.tu->functions) {
      if (fn->body == nullptr) continue;
      VmFunction f;
      if (fn->return_type.base != BaseType::kVoid) {
        f.ret_reg = NewReg(fn->return_type);
      }
      const std::uint32_t idx =
          static_cast<std::uint32_t>(prog_->functions.size());
      prog_->functions.push_back(f);
      fn_index_[fn.get()] = idx;
      auto& params = param_regs_[fn.get()];
      for (const auto& p : fn->params) {
        if (p->type.base == BaseType::kVoid) continue;
        const std::uint32_t r = NewReg(p->type);
        params.push_back(r);
        var_regs_[p.get()] = r;
      }
    }
  }

  // Resolves a call target to its *definition*, the way the interpreter
  // does at runtime; returns nullptr when only a prototype exists.
  [[nodiscard]] const FunctionDecl* ResolveDef(const FunctionDecl& fn) const {
    if (fn.body != nullptr) return &fn;
    for (const auto& other : cs_.tu->functions) {
      if (other->name == fn.name && other->body != nullptr &&
          other->params.size() == fn.params.size()) {
        bool same = true;
        for (std::size_t i = 0; i < fn.params.size(); ++i) {
          if (!(other->params[i]->type == fn.params[i]->type)) {
            same = false;
            break;
          }
        }
        if (same) return other.get();
      }
    }
    return nullptr;
  }

  void LowerFunction(const FunctionDecl& fn, std::uint32_t idx) {
    current_fn_ = &fn;
    prog_->functions[idx].entry = Pc();
    // Fell-off-the-end semantics: a non-void function that never executes
    // `return` yields a zero value, so the return register starts zeroed.
    if (prog_->functions[idx].ret_reg != kOperandNone) {
      VmInst z = MakeInst(VmOp::kZero);
      z.dst = prog_->functions[idx].ret_reg;
      Emit(z);
    }
    LowerStmt(*fn.body);
    Emit(MakeInst(VmOp::kRet));
    current_fn_ = nullptr;
  }

  // --- statements --------------------------------------------------------

  void LowerStmt(const Stmt& s) {
    switch (s.kind) {
      case StmtKind::kBlock: {
        for (const StmtPtr& c : static_cast<const BlockStmt&>(s).stmts) {
          LowerStmt(*c);
        }
        return;
      }
      case StmtKind::kExpr: {
        const auto& es = static_cast<const ExprStmt&>(s);
        if (es.expr) (void)LowerExpr(*es.expr);
        return;
      }
      case StmtKind::kDecl: {
        const auto& ds = static_cast<const DeclStmt&>(s);
        for (const auto& vd : ds.decls) {
          const std::uint32_t reg = NewReg(vd->type);
          var_regs_[vd.get()] = reg;
          if (vd->init) {
            const std::uint32_t v = LowerExpr(*vd->init);
            EmitCopy(reg, v);
          } else {
            VmInst z = MakeInst(VmOp::kZero);
            z.dst = reg;
            Emit(z);
          }
        }
        return;
      }
      case StmtKind::kIf: {
        const auto& is = static_cast<const IfStmt&>(s);
        const std::uint32_t cond = LowerExpr(*is.cond);
        VmInst jf = MakeInst(VmOp::kJumpIfFalse);
        jf.a = cond;
        const std::uint32_t to_else = Emit(jf);
        LowerStmt(*is.then_stmt);
        if (is.else_stmt) {
          const std::uint32_t to_end = Emit(MakeInst(VmOp::kJump));
          Patch(to_else, Pc());
          LowerStmt(*is.else_stmt);
          Patch(to_end, Pc());
        } else {
          Patch(to_else, Pc());
        }
        return;
      }
      case StmtKind::kFor: {
        const auto& fs = static_cast<const ForStmt&>(s);
        if (fs.init) LowerStmt(*fs.init);
        loops_.emplace_back();
        const std::uint32_t head = Pc();
        Emit(MakeInst(VmOp::kLoopGuard));
        std::uint32_t exit_jump = kOperandNone;
        if (fs.cond) {
          const std::uint32_t cond = LowerExpr(*fs.cond);
          VmInst jf = MakeInst(VmOp::kJumpIfFalse);
          jf.a = cond;
          exit_jump = Emit(jf);
        }
        LowerStmt(*fs.body);
        const std::uint32_t step_pc = Pc();  // `continue` lands here
        if (fs.step) (void)LowerExpr(*fs.step);
        VmInst jb = MakeInst(VmOp::kJump);
        jb.aux = head;
        Emit(jb);
        const std::uint32_t end = Pc();
        if (exit_jump != kOperandNone) Patch(exit_jump, end);
        for (const std::uint32_t fx : loops_.back().break_fixups) {
          Patch(fx, end);
        }
        for (const std::uint32_t fx : loops_.back().continue_fixups) {
          Patch(fx, step_pc);
        }
        loops_.pop_back();
        return;
      }
      case StmtKind::kWhile: {
        const auto& ws = static_cast<const WhileStmt&>(s);
        loops_.emplace_back();
        const std::uint32_t head = Pc();
        Emit(MakeInst(VmOp::kLoopGuard));
        const std::uint32_t cond = LowerExpr(*ws.cond);
        VmInst jf = MakeInst(VmOp::kJumpIfFalse);
        jf.a = cond;
        const std::uint32_t exit_jump = Emit(jf);
        LowerStmt(*ws.body);
        VmInst jb = MakeInst(VmOp::kJump);
        jb.aux = head;
        Emit(jb);
        const std::uint32_t end = Pc();
        Patch(exit_jump, end);
        for (const std::uint32_t fx : loops_.back().break_fixups) {
          Patch(fx, end);
        }
        for (const std::uint32_t fx : loops_.back().continue_fixups) {
          Patch(fx, head);
        }
        loops_.pop_back();
        return;
      }
      case StmtKind::kDoWhile: {
        const auto& ds = static_cast<const DoWhileStmt&>(s);
        loops_.emplace_back();
        const std::uint32_t head = Pc();
        Emit(MakeInst(VmOp::kLoopGuard));
        LowerStmt(*ds.body);
        const std::uint32_t cond_pc = Pc();  // `continue` lands here
        const std::uint32_t cond = LowerExpr(*ds.cond);
        VmInst jt = MakeInst(VmOp::kJumpIfTrue);
        jt.a = cond;
        jt.aux = head;
        Emit(jt);
        const std::uint32_t end = Pc();
        for (const std::uint32_t fx : loops_.back().break_fixups) {
          Patch(fx, end);
        }
        for (const std::uint32_t fx : loops_.back().continue_fixups) {
          Patch(fx, cond_pc);
        }
        loops_.pop_back();
        return;
      }
      case StmtKind::kReturn: {
        const auto& rs = static_cast<const ReturnStmt&>(s);
        if (!inline_stack_.empty()) {
          // Inlined body: `return` copies into the function's return
          // register and jumps to the end of this inline instance. (Read
          // ret_reg by value and re-fetch back() after LowerExpr — nested
          // inlining inside the return expression may grow the stack.)
          const std::uint32_t ret_reg = inline_stack_.back().ret_reg;
          if (rs.value) {
            const std::uint32_t v = LowerExpr(*rs.value);
            if (ret_reg != kOperandNone) EmitCopy(ret_reg, v);
          }
          inline_stack_.back().end_fixups.push_back(
              Emit(MakeInst(VmOp::kJump)));
          return;
        }
        if (rs.value) {
          const std::uint32_t v = LowerExpr(*rs.value);
          const std::uint32_t ret_reg =
              prog_->functions[fn_index_.at(current_fn_)].ret_reg;
          if (ret_reg != kOperandNone) EmitCopy(ret_reg, v);
        }
        Emit(MakeInst(VmOp::kRet));
        return;
      }
      case StmtKind::kBreak: {
        const std::uint32_t fx = Emit(MakeInst(VmOp::kJump));
        if (!loops_.empty()) loops_.back().break_fixups.push_back(fx);
        return;
      }
      case StmtKind::kContinue: {
        const std::uint32_t fx = Emit(MakeInst(VmOp::kJump));
        if (!loops_.empty()) loops_.back().continue_fixups.push_back(fx);
        return;
      }
      case StmtKind::kDiscard: {
        // Inside main, `discard` kills the fragment. Inside a helper
        // function the interpreter's call layer swallows the discard flow —
        // it behaves as an early return — and the VM matches that.
        if (current_fn_ == cs_.main) {
          Emit(MakeInst(VmOp::kDiscard));
        } else if (!inline_stack_.empty()) {
          inline_stack_.back().end_fixups.push_back(
              Emit(MakeInst(VmOp::kJump)));
        } else {
          Emit(MakeInst(VmOp::kRet));
        }
        return;
      }
    }
  }

  // --- expressions -------------------------------------------------------

  // Lowers `e` and returns the operand holding its value. The operand may
  // alias a variable; callers that consume it after lowering a sibling with
  // side effects must Materialize() it first.
  std::uint32_t LowerExpr(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kIntLit:
        return NewConst(
            Value::MakeInt(static_cast<const IntLitExpr&>(e).value));
      case ExprKind::kFloatLit:
        return NewConst(
            Value::MakeFloat(static_cast<const FloatLitExpr&>(e).value));
      case ExprKind::kBoolLit:
        return NewConst(
            Value::MakeBool(static_cast<const BoolLitExpr&>(e).value));
      case ExprKind::kVarRef: {
        const auto& v = static_cast<const VarRefExpr&>(e);
        if (v.scope == VarScope::kGlobal) return GlobalOperand(v.slot);
        return var_regs_.at(v.decl);
      }
      case ExprKind::kCall: {
        const auto& call = static_cast<const CallExpr&>(e);
        if (call.fn != nullptr) return LowerUserCall(call);
        return LowerArgListOp(VmOp::kBuiltin,
                              static_cast<std::uint8_t>(call.builtin),
                              call.args, call.type);
      }
      case ExprKind::kCtor: {
        const auto& c = static_cast<const CtorExpr&>(e);
        return LowerArgListOp(VmOp::kCtor, 0, c.args, c.ctor_type);
      }
      case ExprKind::kBinary:
        return LowerBinary(static_cast<const BinaryExpr&>(e));
      case ExprKind::kUnary:
        return LowerUnary(static_cast<const UnaryExpr&>(e));
      case ExprKind::kAssign:
        return LowerAssign(static_cast<const AssignExpr&>(e));
      case ExprKind::kTernary: {
        const auto& t = static_cast<const TernaryExpr&>(e);
        const std::uint32_t dst = NewReg(t.type);
        const std::uint32_t cond = LowerExpr(*t.cond);
        VmInst jf = MakeInst(VmOp::kJumpIfFalse);
        jf.a = cond;
        const std::uint32_t to_else = Emit(jf);
        EmitCopy(dst, LowerExpr(*t.then_expr));
        const std::uint32_t to_end = Emit(MakeInst(VmOp::kJump));
        Patch(to_else, Pc());
        EmitCopy(dst, LowerExpr(*t.else_expr));
        Patch(to_end, Pc());
        return dst;
      }
      case ExprKind::kIndex: {
        const auto& ix = static_cast<const IndexExpr&>(e);
        std::uint32_t base = LowerExpr(*ix.base);
        if (HasSideEffects(*ix.index)) {
          base = Materialize(base, ix.base->type);
        }
        const std::uint32_t index = LowerExpr(*ix.index);
        const IndexStep step = IndexStepOf(ix.base->type);
        VmInst x = MakeInst(VmOp::kExtract);
        x.dst = NewReg(ix.type);
        x.a = base;
        x.b = index;
        x.n = static_cast<std::uint16_t>(step.elem_cells);
        x.aux = static_cast<std::uint32_t>(step.limit);
        Emit(x);
        return x.dst;
      }
      case ExprKind::kSwizzle: {
        const auto& sw = static_cast<const SwizzleExpr&>(e);
        const std::uint32_t base = LowerExpr(*sw.base);
        VmInst sh = MakeInst(VmOp::kShuffle);
        sh.dst = NewReg(sw.type);
        sh.a = base;
        sh.n = static_cast<std::uint16_t>(sw.count);
        sh.aux = PackComps(sw.comps.data(), sw.count);
        Emit(sh);
        return sh.dst;
      }
      case ExprKind::kComma: {
        const auto& c = static_cast<const CommaExpr&>(e);
        (void)LowerExpr(*c.lhs);
        return LowerExpr(*c.rhs);
      }
    }
    EmitTrap("internal error: unlowerable expression");
    return NewConst(Value::MakeInt(0));
  }

  std::uint32_t LowerBinary(const BinaryExpr& b) {
    switch (b.op) {
      case BinOp::kLogicalAnd: {
        const std::uint32_t dst = NewReg(MakeType(BaseType::kBool));
        VmInst norm = MakeInst(VmOp::kBoolNorm);
        norm.dst = dst;
        norm.a = LowerExpr(*b.lhs);
        Emit(norm);
        VmInst jf = MakeInst(VmOp::kJumpIfFalse);
        jf.a = dst;
        const std::uint32_t skip = Emit(jf);
        VmInst norm2 = MakeInst(VmOp::kBoolNorm);
        norm2.dst = dst;
        norm2.a = LowerExpr(*b.rhs);
        Emit(norm2);
        Patch(skip, Pc());
        return dst;
      }
      case BinOp::kLogicalOr: {
        const std::uint32_t dst = NewReg(MakeType(BaseType::kBool));
        VmInst norm = MakeInst(VmOp::kBoolNorm);
        norm.dst = dst;
        norm.a = LowerExpr(*b.lhs);
        Emit(norm);
        VmInst jt = MakeInst(VmOp::kJumpIfTrue);
        jt.a = dst;
        const std::uint32_t skip = Emit(jt);
        VmInst norm2 = MakeInst(VmOp::kBoolNorm);
        norm2.dst = dst;
        norm2.a = LowerExpr(*b.rhs);
        Emit(norm2);
        Patch(skip, Pc());
        return dst;
      }
      case BinOp::kLogicalXor: {
        std::uint32_t l = LowerExpr(*b.lhs);
        if (HasSideEffects(*b.rhs)) l = Materialize(l, b.lhs->type);
        const std::uint32_t r = LowerExpr(*b.rhs);
        VmInst x = MakeInst(VmOp::kXor);
        x.dst = NewReg(MakeType(BaseType::kBool));
        x.a = l;
        x.b = r;
        Emit(x);
        return x.dst;
      }
      default: {
        std::uint32_t l = LowerExpr(*b.lhs);
        if (HasSideEffects(*b.rhs)) l = Materialize(l, b.lhs->type);
        const std::uint32_t r = LowerExpr(*b.rhs);
        VmInst a = MakeInst(VmOp::kArith);
        a.u8 = static_cast<std::uint8_t>(b.op);
        a.dst = NewReg(b.type);
        a.a = l;
        a.b = r;
        Emit(a);
        return a.dst;
      }
    }
  }

  std::uint32_t LowerUnary(const UnaryExpr& u) {
    switch (u.op) {
      case UnOp::kPlus:
        return LowerExpr(*u.operand);
      case UnOp::kNeg: {
        VmInst n = MakeInst(VmOp::kNeg);
        n.a = LowerExpr(*u.operand);
        n.dst = NewReg(u.type);
        Emit(n);
        return n.dst;
      }
      case UnOp::kNot: {
        VmInst n = MakeInst(VmOp::kNot);
        n.a = LowerExpr(*u.operand);
        n.dst = NewReg(MakeType(BaseType::kBool));
        Emit(n);
        return n.dst;
      }
      case UnOp::kPreInc:
      case UnOp::kPreDec:
      case UnOp::kPostInc:
      case UnOp::kPostDec: {
        const bool inc = u.op == UnOp::kPreInc || u.op == UnOp::kPostInc;
        const bool post = u.op == UnOp::kPostInc || u.op == UnOp::kPostDec;
        VmInst i;
        i.u8 = static_cast<std::uint8_t>((inc ? 1 : 0) | (post ? 2 : 0));
        if (u.operand->kind == ExprKind::kVarRef) {
          // Whole-variable ++/-- (the classic loop counter): skip the
          // l-value reference machinery entirely.
          const auto& v = static_cast<const VarRefExpr&>(*u.operand);
          i.op = VmOp::kIncDecVar;
          i.a = v.scope == VarScope::kGlobal ? GlobalOperand(v.slot)
                                             : var_regs_.at(v.decl);
        } else {
          i.op = VmOp::kIncDec;
          i.a = LowerLValue(*u.operand);
        }
        i.dst = NewReg(u.operand->type);
        Emit(i);
        return i.dst;
      }
    }
    EmitTrap("internal error: unlowerable unary");
    return NewConst(Value::MakeInt(0));
  }

  std::uint32_t LowerAssign(const AssignExpr& a) {
    // Interpreter order: RHS first, then the l-value (whose index
    // expressions run after the RHS). The interpreter holds the RHS in a
    // copy, so if evaluating the l-value can mutate state the RHS operand
    // must be snapshotted first.
    std::uint32_t rhs = LowerExpr(*a.rhs);
    if (HasSideEffects(*a.lhs)) rhs = Materialize(rhs, a.rhs->type);
    if (a.lhs->kind == ExprKind::kVarRef) {
      const auto& v = static_cast<const VarRefExpr&>(*a.lhs);
      const std::uint32_t var = v.scope == VarScope::kGlobal
                                    ? GlobalOperand(v.slot)
                                    : var_regs_.at(v.decl);
      if (a.op == AssignOp::kAssign) {
        EmitCopy(var, rhs);
        return rhs;
      }
      // Component-wise compound ops can run in place (each cell is read
      // before it is written); linear-algebra multiplies read cells across
      // the whole operand, so they still need a temporary.
      const BinOp op = CompoundOp(a.op);
      const bool matrix_mul =
          op == BinOp::kMul && (IsMatrix(a.lhs->type.base) ||
                                IsMatrix(a.rhs->type.base));
      VmInst ar = MakeInst(VmOp::kArith);
      ar.u8 = static_cast<std::uint8_t>(op);
      ar.a = var;
      ar.b = rhs;
      if (matrix_mul) {
        const std::uint32_t dst = NewReg(a.type);
        ar.dst = dst;
        Emit(ar);
        EmitCopy(var, dst);
        return dst;
      }
      ar.dst = var;
      Emit(ar);
      return var;
    }
    const std::uint32_t ref = LowerLValue(*a.lhs);
    if (a.op == AssignOp::kAssign) {
      VmInst w = MakeInst(VmOp::kWriteRef);
      w.dst = ref;
      w.a = rhs;
      Emit(w);
      return rhs;
    }
    VmInst rd = MakeInst(VmOp::kReadRef);
    rd.dst = NewReg(a.lhs->type);
    rd.a = ref;
    Emit(rd);
    const std::uint32_t dst = NewReg(a.type);
    VmInst ar = MakeInst(VmOp::kArith);
    ar.u8 = static_cast<std::uint8_t>(CompoundOp(a.op));
    ar.dst = dst;
    ar.a = rd.dst;
    ar.b = rhs;
    Emit(ar);
    VmInst w = MakeInst(VmOp::kWriteRef);
    w.dst = ref;
    w.a = dst;
    Emit(w);
    return dst;
  }

  [[nodiscard]] static BinOp CompoundOp(AssignOp op) {
    switch (op) {
      case AssignOp::kAdd: return BinOp::kAdd;
      case AssignOp::kSub: return BinOp::kSub;
      case AssignOp::kMul: return BinOp::kMul;
      default: return BinOp::kDiv;
    }
  }

  // Ctor and builtin calls share the flattened-argument encoding.
  std::uint32_t LowerArgListOp(VmOp op, std::uint8_t u8,
                               const std::vector<ExprPtr>& args,
                               const Type& result_type) {
    // Arguments evaluate left to right; if a later argument has side
    // effects, earlier ones must be snapshotted (the interpreter always
    // copies).
    // Encoding bounds: builtins take at most kMaxBuiltinArgs (executor
    // pointer buffer), ctors at most 16 (mat4 from scalars).
    const std::size_t max_args =
        op == VmOp::kBuiltin ? static_cast<std::size_t>(kMaxBuiltinArgs) : 16;
    if (args.size() > max_args) {
      EmitTrap("internal error: argument list exceeds encoding bound");
      return NewReg(result_type);
    }
    const std::vector<bool> later_effects = LaterEffects(args);
    std::vector<std::uint32_t> ops;
    ops.reserve(args.size());
    for (std::size_t i = 0; i < args.size(); ++i) {
      std::uint32_t v = LowerExpr(*args[i]);
      if (later_effects[i]) v = Materialize(v, args[i]->type);
      ops.push_back(v);
    }
    VmInst inst = MakeInst(op);
    inst.u8 = u8;
    inst.type = result_type;
    inst.dst = NewReg(result_type);
    inst.n = static_cast<std::uint16_t>(ops.size());
    inst.aux = static_cast<std::uint32_t>(prog_->arg_ops.size());
    for (const std::uint32_t o : ops) prog_->arg_ops.push_back(o);
    Emit(inst);
    return inst.dst;
  }

  std::uint32_t LowerUserCall(const CallExpr& call) {
    const FunctionDecl* def = ResolveDef(*call.fn);
    if (def == nullptr) {
      // Matches the interpreter: the error fires only if the call executes.
      EmitTrap(StrFormat("call to undefined function '%s'",
                         call.fn->name.c_str()));
      return call.type.base != BaseType::kVoid ? NewReg(call.type)
                                               : kOperandNone;
    }
    const std::uint32_t fn_idx = fn_index_.at(def);
    const auto& params = param_regs_.at(def);

    // Phase 1 — evaluate arguments / build out-parameter references in
    // argument order, exactly like the interpreter's copy-in loop. Values
    // are captured in temporaries; the callee frame is written only after
    // every argument has evaluated (an argument expression may itself call
    // into this function's frame transitively).
    struct ArgPlan {
      std::uint32_t value = kOperandNone;  // temp for kIn / kInOut
      std::uint32_t ref = kOperandNone;    // ref slot for kOut / kInOut
      ParamDir dir = ParamDir::kIn;
    };
    std::vector<ArgPlan> plan(call.args.size());
    // An argument operand only needs snapshotting if a LATER argument can
    // mutate state before the callee frame is filled (the frame copies all
    // happen after the last argument evaluates, before the call).
    const std::vector<bool> later_effects = LaterEffects(call.args);
    for (std::size_t i = 0; i < call.args.size(); ++i) {
      const VarDecl& p = *def->params[i];
      plan[i].dir = p.dir;
      if (p.dir == ParamDir::kIn) {
        plan[i].value = LowerExpr(*call.args[i]);
        if (later_effects[i]) {
          plan[i].value = Materialize(plan[i].value, call.args[i]->type);
        }
      } else {
        plan[i].ref = LowerLValue(*call.args[i]);
        if (p.dir == ParamDir::kInOut) {
          VmInst rd = MakeInst(VmOp::kReadRef);
          rd.dst = NewReg(p.type);
          rd.a = plan[i].ref;
          Emit(rd);
          plan[i].value = rd.dst;
        }
      }
    }
    // Phase 2 — fill the callee frame and call.
    for (std::size_t i = 0; i < call.args.size(); ++i) {
      const std::uint32_t param = params[i];
      switch (plan[i].dir) {
        case ParamDir::kIn:
        case ParamDir::kInOut:
          EmitCopy(param, plan[i].value);
          break;
        case ParamDir::kOut: {
          VmInst z = MakeInst(VmOp::kZero);
          z.dst = param;
          Emit(z);
          break;
        }
      }
    }
    // Either inline the body here or emit a call. Inlining removes the
    // call/return dispatch and is exactly equivalent: the same parameter
    // and local registers are reused (lifetimes cannot overlap — GLSL ES
    // forbids recursion, and the guards below fall back to kCall for
    // malformed recursive input or runaway code growth), `return` becomes a
    // jump to the end of the instance, and none of the removed ops touch
    // the AluModel, so results AND op counts are bit-identical to the
    // called form (and to the tree-walking oracle).
    constexpr std::size_t kInlineCodeBudget = 1 << 16;
    bool in_stack = false;
    for (const InlineCtx& ic : inline_stack_) in_stack |= ic.fn == def;
    if (inline_enabled_ && !in_stack && def != cs_.main &&
        prog_->code.size() < kInlineCodeBudget) {
      const std::uint32_t ret_reg = prog_->functions[fn_idx].ret_reg;
      if (ret_reg != kOperandNone) {
        // Fell-off-the-end semantics, as at the top of LowerFunction.
        VmInst z = MakeInst(VmOp::kZero);
        z.dst = ret_reg;
        Emit(z);
      }
      const FunctionDecl* const saved_fn = current_fn_;
      current_fn_ = def;
      inline_stack_.push_back({def, ret_reg, {}});
      // The callee's breaks/continues must not bind to the caller's loops.
      std::vector<LoopCtx> saved_loops;
      saved_loops.swap(loops_);
      LowerStmt(*def->body);
      const InlineCtx done = std::move(inline_stack_.back());
      inline_stack_.pop_back();
      for (const std::uint32_t fx : done.end_fixups) Patch(fx, Pc());
      loops_.swap(saved_loops);
      current_fn_ = saved_fn;
    } else {
      VmInst c = MakeInst(VmOp::kCall);
      c.aux = fn_idx;
      Emit(c);
    }
    // Phase 3 — copy-out in argument order.
    for (std::size_t i = 0; i < call.args.size(); ++i) {
      if (plan[i].dir == ParamDir::kIn) continue;
      VmInst w = MakeInst(VmOp::kWriteRef);
      w.dst = plan[i].ref;
      w.a = params[i];
      Emit(w);
    }
    // The return register is clobbered by the next call to the same
    // function, so snapshot it immediately.
    const std::uint32_t ret = prog_->functions[fn_idx].ret_reg;
    if (ret == kOperandNone) return kOperandNone;
    const std::uint32_t dst = NewReg(def->return_type);
    EmitCopy(dst, ret);
    return dst;
  }

  // --- static call-depth scan (gates inlining; see Lower()) ---------------

  // Mirrors vm.cc's kMaxCallDepth / the interpreter's frame budget.
  static constexpr int kMaxStaticCallDepth = 64;

  int FnCallDepth(const FunctionDecl* def) {
    const auto memo = fn_depth_.find(def);
    if (memo != fn_depth_.end()) return memo->second;
    for (const FunctionDecl* f : depth_stack_) {
      if (f == def) return kMaxStaticCallDepth + 1;  // recursion (malformed)
    }
    if (def->body == nullptr) return 0;
    depth_stack_.push_back(def);
    const int d = StmtCallDepth(*def->body);
    depth_stack_.pop_back();
    fn_depth_[def] = d;
    return d;
  }

  int StmtCallDepth(const Stmt& s) {
    switch (s.kind) {
      case StmtKind::kBlock: {
        int d = 0;
        for (const StmtPtr& c : static_cast<const BlockStmt&>(s).stmts) {
          d = std::max(d, StmtCallDepth(*c));
        }
        return d;
      }
      case StmtKind::kExpr: {
        const auto& es = static_cast<const ExprStmt&>(s);
        return es.expr ? ExprCallDepth(*es.expr) : 0;
      }
      case StmtKind::kDecl: {
        int d = 0;
        for (const auto& vd : static_cast<const DeclStmt&>(s).decls) {
          if (vd->init) d = std::max(d, ExprCallDepth(*vd->init));
        }
        return d;
      }
      case StmtKind::kIf: {
        const auto& is = static_cast<const IfStmt&>(s);
        int d = std::max(ExprCallDepth(*is.cond),
                         StmtCallDepth(*is.then_stmt));
        if (is.else_stmt) d = std::max(d, StmtCallDepth(*is.else_stmt));
        return d;
      }
      case StmtKind::kFor: {
        const auto& fs = static_cast<const ForStmt&>(s);
        int d = StmtCallDepth(*fs.body);
        if (fs.init) d = std::max(d, StmtCallDepth(*fs.init));
        if (fs.cond) d = std::max(d, ExprCallDepth(*fs.cond));
        if (fs.step) d = std::max(d, ExprCallDepth(*fs.step));
        return d;
      }
      case StmtKind::kWhile: {
        const auto& ws = static_cast<const WhileStmt&>(s);
        return std::max(ExprCallDepth(*ws.cond), StmtCallDepth(*ws.body));
      }
      case StmtKind::kDoWhile: {
        const auto& ds = static_cast<const DoWhileStmt&>(s);
        return std::max(ExprCallDepth(*ds.cond), StmtCallDepth(*ds.body));
      }
      case StmtKind::kReturn: {
        const auto& rs = static_cast<const ReturnStmt&>(s);
        return rs.value ? ExprCallDepth(*rs.value) : 0;
      }
      case StmtKind::kBreak:
      case StmtKind::kContinue:
      case StmtKind::kDiscard:
        return 0;
    }
    return 0;
  }

  int ExprCallDepth(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kIntLit:
      case ExprKind::kFloatLit:
      case ExprKind::kBoolLit:
      case ExprKind::kVarRef:
        return 0;
      case ExprKind::kCall: {
        const auto& c = static_cast<const CallExpr&>(e);
        int d = 0;
        for (const auto& a : c.args) d = std::max(d, ExprCallDepth(*a));
        if (c.fn != nullptr) {
          const FunctionDecl* def = ResolveDef(*c.fn);
          // An undefined callee traps without a frame; count it as one
          // frame anyway — overestimating can only disable inlining.
          const int callee = def != nullptr ? FnCallDepth(def) : 0;
          d = std::max(d, 1 + callee);
        }
        return d;
      }
      case ExprKind::kCtor: {
        int d = 0;
        for (const auto& a : static_cast<const CtorExpr&>(e).args) {
          d = std::max(d, ExprCallDepth(*a));
        }
        return d;
      }
      case ExprKind::kBinary: {
        const auto& b = static_cast<const BinaryExpr&>(e);
        return std::max(ExprCallDepth(*b.lhs), ExprCallDepth(*b.rhs));
      }
      case ExprKind::kUnary:
        return ExprCallDepth(*static_cast<const UnaryExpr&>(e).operand);
      case ExprKind::kAssign: {
        const auto& a = static_cast<const AssignExpr&>(e);
        return std::max(ExprCallDepth(*a.lhs), ExprCallDepth(*a.rhs));
      }
      case ExprKind::kTernary: {
        const auto& t = static_cast<const TernaryExpr&>(e);
        return std::max({ExprCallDepth(*t.cond), ExprCallDepth(*t.then_expr),
                         ExprCallDepth(*t.else_expr)});
      }
      case ExprKind::kIndex: {
        const auto& ix = static_cast<const IndexExpr&>(e);
        return std::max(ExprCallDepth(*ix.base), ExprCallDepth(*ix.index));
      }
      case ExprKind::kSwizzle:
        return ExprCallDepth(*static_cast<const SwizzleExpr&>(e).base);
      case ExprKind::kComma: {
        const auto& c = static_cast<const CommaExpr&>(e);
        return std::max(ExprCallDepth(*c.lhs), ExprCallDepth(*c.rhs));
      }
    }
    return 0;
  }

  // --- l-values ----------------------------------------------------------

  std::uint32_t LowerLValue(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kVarRef: {
        const auto& v = static_cast<const VarRefExpr&>(e);
        VmInst r = MakeInst(VmOp::kRefVar);
        r.dst = NewRefSlot();
        r.a = v.scope == VarScope::kGlobal ? GlobalOperand(v.slot)
                                           : var_regs_.at(v.decl);
        r.type = v.type;
        Emit(r);
        return r.dst;
      }
      case ExprKind::kIndex: {
        const auto& ix = static_cast<const IndexExpr&>(e);
        const std::uint32_t base = LowerLValue(*ix.base);
        const std::uint32_t index = LowerExpr(*ix.index);
        const IndexStep step = IndexStepOf(ix.base->type);
        VmInst r = MakeInst(VmOp::kRefIndex);
        r.dst = NewRefSlot();
        r.a = base;
        r.b = index;
        r.n = static_cast<std::uint16_t>(step.elem_cells);
        r.aux = static_cast<std::uint32_t>(step.limit);
        r.type = step.elem_type;
        Emit(r);
        return r.dst;
      }
      case ExprKind::kSwizzle: {
        const auto& sw = static_cast<const SwizzleExpr&>(e);
        const std::uint32_t base = LowerLValue(*sw.base);
        VmInst r = MakeInst(VmOp::kRefSwizzle);
        r.dst = NewRefSlot();
        r.a = base;
        r.n = static_cast<std::uint16_t>(sw.count);
        r.aux = PackComps(sw.comps.data(), sw.count);
        r.type = sw.type;
        Emit(r);
        return r.dst;
      }
      default:
        EmitTrap("internal error: expression is not an l-value");
        return NewRefSlot();
    }
  }

  const CompiledShader& cs_;
  std::shared_ptr<VmProgram> prog_;
  std::unordered_map<const FunctionDecl*, std::uint32_t> fn_index_;
  std::unordered_map<const FunctionDecl*, std::vector<std::uint32_t>>
      param_regs_;
  std::unordered_map<const VarDecl*, std::uint32_t> var_regs_;
  std::vector<LoopCtx> loops_;
  const FunctionDecl* current_fn_ = nullptr;
  // Stack of user functions currently being lowered inline at a call site
  // (innermost last). Non-empty changes how `return`/`discard` lower.
  struct InlineCtx {
    const FunctionDecl* fn = nullptr;
    std::uint32_t ret_reg = kOperandNone;
    std::vector<std::uint32_t> end_fixups;  // jumps to the instance end
  };
  std::vector<InlineCtx> inline_stack_;
  bool inline_enabled_ = false;
  std::unordered_map<const FunctionDecl*, int> fn_depth_;
  std::vector<const FunctionDecl*> depth_stack_;
};

// ---------------------------------------------------------------------------
// SoA-eligibility tagging for the batched executor.
//
// Marks every instruction a whole-instruction lane-batched kernel covers
// (evalcore's EvalArithBatch/EvalCtorBatch, builtins' EvalBuiltinBatch), so
// the VM's batch dispatch is a single flag test instead of re-deriving
// operand shapes per instruction per batch. Operand types are static — the
// register file and globals are typed at lowering time — which is what
// makes this a lowering-time decision at all.
//
// The tag is a tri-state (see VmInst::soa): instructions whose shape the
// vector kernels additionally cover — component-wise float +,-,* with a
// vector/matrix result, float negation, all-float vector gathers/splats,
// and the float-dense IsSimdBuiltin set on vector operands — are marked 2
// so the executor can pick the SIMD kernel without re-deriving shapes.
// Division, comparisons, int arithmetic, SFU-routed and texture builtins
// never get tag 2 (and the SIMD entries would fall back even if they did).
void TagSoaEligibility(VmProgram& prog) {
  const auto type_of = [&](std::uint32_t op) -> const Type& {
    const std::uint32_t idx = op & kOperandIndexMask;
    switch (op & ~kOperandIndexMask) {
      case kSpaceReg: return prog.reg_types[idx];
      case kSpaceGlobal: return prog.globals[idx].type;
      default: return prog.consts[idx].type();
    }
  };
  for (VmInst& in : prog.code) {
    switch (in.op) {
      case VmOp::kArith: {
        const BinOp op = static_cast<BinOp>(in.u8);
        if (op > BinOp::kNe) break;  // logical ops never lower to kArith
        const BaseType lb = type_of(in.a).base;
        const BaseType rb = type_of(in.b).base;
        // Everything component-wise (incl. comparisons and matrix +-/ and
        // matrix*scalar) runs SoA; only the linear-algebra multiplies
        // replay per lane.
        const bool linalg_mul =
            op == BinOp::kMul &&
            ((IsMatrix(lb) && (IsMatrix(rb) || IsVector(rb))) ||
             (IsVector(lb) && IsMatrix(rb)));
        in.soa = linalg_mul ? 0 : 1;
        if (in.soa == 1 && op <= BinOp::kMul &&
            ScalarOf(lb) == BaseType::kFloat &&
            type_of(in.dst).CellCount() >= 2) {
          in.soa = 2;  // component-wise float +,-,* on a vector/matrix
        }
        break;
      }
      case VmOp::kNeg: {
        const Type& at = type_of(in.a);
        // Float negation is a pure sign-bit flip under round-identity
        // models, so every float shape is SIMD-eligible. The executor runs
        // kNeg through the batch kernel for any tag value; 2 only adds the
        // vector path.
        in.soa =
            !at.IsArray() && ScalarOf(at.base) == BaseType::kFloat ? 2 : 1;
        break;
      }
      case VmOp::kCtor: {
        const Type& dt = type_of(in.dst);
        const BaseType target = dt.base;
        in.soa = !dt.IsArray() && (IsScalar(target) || IsVector(target))
                     ? 1
                     : 0;
        if (in.soa == 1 && IsVector(target) &&
            ScalarOf(target) == BaseType::kFloat) {
          // SIMD-eligible when every argument is a float scalar/vector
          // (the all-float gather/splat fast path of EvalCtorBatchSimd).
          bool all_float_vec = true;
          for (std::uint32_t i = 0; all_float_vec && i < in.n; ++i) {
            const Type& at = type_of(prog.arg_ops[in.aux + i]);
            all_float_vec = !at.IsArray() &&
                            ScalarOf(at.base) == BaseType::kFloat &&
                            (IsScalar(at.base) || IsVector(at.base));
          }
          if (all_float_vec) in.soa = 2;
        }
        break;
      }
      case VmOp::kBuiltin: {
        const Builtin b = static_cast<Builtin>(in.u8);
        in.soa = IsSoaBuiltin(b) ? 1 : 0;
        if (in.soa == 1 && IsSimdBuiltin(b)) {
          // The mapped operand (arg 1 for step's (edge, x) order, arg 0
          // otherwise) must be a float vector/matrix for the vector path.
          const std::uint32_t a0 =
              prog.arg_ops[in.aux + (b == Builtin::kStep ? 1u : 0u)];
          const Type& at = type_of(a0);
          if (!at.IsArray() && ScalarOf(at.base) == BaseType::kFloat &&
              at.CellCount() >= 2) {
            in.soa = 2;
          }
        }
        break;
      }
      default:
        break;
    }
  }
}

// ---------------------------------------------------------------------------
// Uniform-control-flow ("lane") analysis for the batched executor.
//
// Classifies every value as lane-invariant (identical in all lanes of a
// fragment batch: uniforms, constants, and anything computed only from
// them) or lane-varying (derives from a per-fragment input), then marks
// each conditional branch whose condition may vary between lanes as
// divergent. A program with no divergent branch executes fully batched
// under a single shared pc; otherwise the per-lane-pc masked executor runs
// it (vm.cc). The analysis is flow-insensitive (a value is varying if ANY
// write to it is varying), which is sound here because a program classified
// uniform executes every instruction for every lane in lockstep — there is
// no masked write that could make an "invariant" value differ by lane, and
// divergent programs never consult the per-branch bits at runtime.
//
// The same pass decides which globals need per-lane storage planes when
// batched: per-fragment inputs plus every global written outside the
// construction-time const-init chunk (outputs, per-run re-initialized plain
// globals, globals written through refs). Uniforms and const tables stay
// shared, keeping per-draw uniform sync independent of the lane width.
void AnalyzeLaneBatching(VmProgram& prog, const CompiledShader& cs) {
  const std::size_t n_regs = prog.reg_types.size();
  const std::size_t n_globals = prog.globals.size();
  const std::size_t n_refs = prog.ref_slot_count;

  const auto is_reg = [](std::uint32_t op) {
    return op != kOperandNone && (op & ~kOperandIndexMask) == kSpaceReg;
  };
  const auto is_global = [](std::uint32_t op) {
    return op != kOperandNone && (op & ~kOperandIndexMask) == kSpaceGlobal;
  };
  const auto index_of = [](std::uint32_t op) {
    return static_cast<std::size_t>(op & kOperandIndexMask);
  };

  // Pass 1: globals written outside the const-init chunk
  // [const_init_entry, run_entry) — direct destinations plus every global
  // whose address a kRefVar takes (refs are how dynamic-index and swizzled
  // stores write). Function bodies are shared between chunks and scanned
  // unconditionally; over-marking a const-init-only write merely gives that
  // global a (correctly initialized) per-lane plane.
  std::vector<std::uint8_t> written(n_globals, 0);
  for (std::size_t pc = 0; pc < prog.code.size(); ++pc) {
    if (pc >= prog.const_init_entry && pc < prog.run_entry) continue;
    const VmInst& in = prog.code[pc];
    switch (in.op) {
      case VmOp::kCopy: case VmOp::kZero: case VmOp::kShuffle:
      case VmOp::kExtract: case VmOp::kArith: case VmOp::kNeg:
      case VmOp::kNot: case VmOp::kXor: case VmOp::kBoolNorm:
      case VmOp::kCtor: case VmOp::kBuiltin: case VmOp::kReadRef:
      case VmOp::kIncDec:
        if (is_global(in.dst)) written[index_of(in.dst)] = 1;
        break;
      case VmOp::kIncDecVar:
        if (is_global(in.dst)) written[index_of(in.dst)] = 1;
        if (is_global(in.a)) written[index_of(in.a)] = 1;
        break;
      case VmOp::kRefVar:
        if (is_global(in.a)) written[index_of(in.a)] = 1;
        break;
      default:
        break;
    }
  }

  // Per-fragment inputs: lane-varying by definition (and per-lane storage,
  // written per fragment by the draw loop rather than by shader code).
  std::vector<std::uint8_t> input(n_globals, 0);
  for (std::size_t i = 0; i < n_globals && i < cs.globals.size(); ++i) {
    const VarDecl* g = cs.globals[i];
    if (g->qual == Qualifier::kVarying || g->qual == Qualifier::kAttribute) {
      input[i] = 1;
    } else if (g->is_builtin &&
               (g->name == "gl_FragCoord" || g->name == "gl_FrontFacing" ||
                g->name == "gl_PointCoord")) {
      input[i] = 1;
    }
  }

  // Taint seeds: inputs, plus per-lane-stored globals whose start-of-run
  // value is whatever the previous invocation left there (no per-run
  // re-initialization — e.g. gl_FragColor, or a plain global without an
  // initializer): histories differ by lane, so reads before the first
  // write must be treated as varying.
  std::vector<std::uint8_t> reg_taint(n_regs, 0);
  std::vector<std::uint8_t> glob_taint(n_globals, 0);
  std::vector<std::uint8_t> ref_taint(n_refs, 0);
  std::vector<std::vector<std::uint32_t>> ref_vars(n_refs);
  for (std::size_t i = 0; i < n_globals; ++i) {
    const bool reinit = i < cs.globals.size() &&
                        cs.globals[i]->init != nullptr &&
                        !cs.globals[i]->is_builtin &&
                        cs.globals[i]->qual == Qualifier::kNone;
    if (input[i] != 0 || (written[i] != 0 && !reinit)) glob_taint[i] = 1;
  }

  const auto src = [&](std::uint32_t op) -> bool {
    if (op == kOperandNone) return false;
    if (is_reg(op)) return reg_taint[index_of(op)] != 0;
    if (is_global(op)) return glob_taint[index_of(op)] != 0;
    return false;  // constants
  };
  bool changed = true;
  const auto sink = [&](std::uint32_t op, bool t) {
    if (!t || (!is_reg(op) && !is_global(op))) return;
    std::uint8_t& cell =
        is_reg(op) ? reg_taint[index_of(op)] : glob_taint[index_of(op)];
    if (cell == 0) {
      cell = 1;
      changed = true;
    }
  };
  const auto ref_sink = [&](std::uint32_t slot, bool t) {
    if (t && ref_taint[slot] == 0) {
      ref_taint[slot] = 1;
      changed = true;
    }
  };
  const auto ref_merge_vars = [&](std::uint32_t dst, std::uint32_t var_op) {
    auto& vars = ref_vars[dst];
    for (const std::uint32_t v : vars) {
      if (v == var_op) return;
    }
    vars.push_back(var_op);
    changed = true;
  };

  // Pass 2: taint fixpoint. Monotone over a finite lattice, so the loop
  // terminates; in practice two or three sweeps suffice.
  while (changed) {
    changed = false;
    for (const VmInst& in : prog.code) {
      switch (in.op) {
        case VmOp::kCopy: case VmOp::kShuffle: case VmOp::kNeg:
        case VmOp::kNot: case VmOp::kBoolNorm:
          sink(in.dst, src(in.a));
          break;
        case VmOp::kZero:
          break;  // a zero is lane-invariant
        case VmOp::kExtract: case VmOp::kArith: case VmOp::kXor:
          sink(in.dst, src(in.a) || src(in.b));
          break;
        case VmOp::kCtor: case VmOp::kBuiltin: {
          // Texture fetches included: contents are immutable during a draw,
          // so the result varies only when the coordinates do.
          bool t = false;
          for (int i = 0; i < in.n && !t; ++i) {
            t = src(prog.arg_ops[in.aux + static_cast<std::uint32_t>(i)]);
          }
          sink(in.dst, t);
          break;
        }
        case VmOp::kRefVar:
          ref_merge_vars(in.dst, in.a);
          ref_sink(in.dst, src(in.a));
          break;
        case VmOp::kRefIndex:
          for (const std::uint32_t v : ref_vars[in.a]) {
            ref_merge_vars(in.dst, v);
          }
          // A lane-varying index selects different elements per lane, so
          // both reads and writes through the ref become varying.
          ref_sink(in.dst, ref_taint[in.a] != 0 || src(in.b));
          break;
        case VmOp::kRefSwizzle:
          for (const std::uint32_t v : ref_vars[in.a]) {
            ref_merge_vars(in.dst, v);
          }
          ref_sink(in.dst, ref_taint[in.a] != 0);
          break;
        case VmOp::kReadRef:
          sink(in.dst, ref_taint[in.a] != 0);
          break;
        case VmOp::kWriteRef: {
          const bool t = src(in.a) || ref_taint[in.dst] != 0;
          for (const std::uint32_t v : ref_vars[in.dst]) sink(v, t);
          break;
        }
        case VmOp::kIncDec: {
          const bool t = ref_taint[in.a] != 0;
          for (const std::uint32_t v : ref_vars[in.a]) sink(v, t);
          sink(in.dst, t);
          break;
        }
        case VmOp::kIncDecVar:
          sink(in.dst, src(in.a));
          break;
        default:
          break;  // control flow carries no data
      }
    }
  }

  // Pass 3: branch classification and the per-lane global index map.
  prog.divergent_branch.assign(prog.code.size(), 0);
  prog.uniform_control_flow = true;
  for (std::size_t pc = 0; pc < prog.code.size(); ++pc) {
    const VmInst& in = prog.code[pc];
    if (in.op != VmOp::kJumpIfFalse && in.op != VmOp::kJumpIfTrue) continue;
    if (src(in.a)) {
      prog.divergent_branch[pc] = 1;
      prog.uniform_control_flow = false;
    }
  }
  // Opt-in classification log (MGPU_LANE_DEBUG=1): one line per lowered
  // program, for inspecting why a shader runs lockstep vs masked and how
  // much of it has whole-instruction SoA kernels.
  if (std::getenv("MGPU_LANE_DEBUG") != nullptr) {
    int nd = 0;
    for (const std::uint8_t b : prog.divergent_branch) nd += b;
    int soa = 0;
    int soa_eligible = 0;
    int simd = 0;
    for (const VmInst& in : prog.code) {
      if (in.op != VmOp::kArith && in.op != VmOp::kNeg &&
          in.op != VmOp::kCtor && in.op != VmOp::kBuiltin) {
        continue;
      }
      ++soa_eligible;
      if (in.soa != 0) ++soa;
      if (in.soa == 2) ++simd;
    }
    std::fprintf(stderr,
                 "lane-analysis: stage=%s uniform=%d divergent_branches=%d "
                 "code=%zu soa_kernels=%d/%d simd_tagged=%d "
                 "simd_default=%s\n",
                 prog.stage == Stage::kVertex ? "vertex" : "fragment",
                 prog.uniform_control_flow ? 1 : 0, nd, prog.code.size(),
                 soa, soa_eligible, simd,
                 simd::LevelName(simd::Resolve(-1)));
  }
  prog.lane_global_index.assign(n_globals, -1);
  prog.lane_global_count = 0;
  for (std::size_t i = 0; i < n_globals; ++i) {
    if (input[i] != 0 || written[i] != 0) {
      prog.lane_global_index[i] =
          static_cast<std::int32_t>(prog.lane_global_count++);
    }
  }
}

}  // namespace

std::shared_ptr<const VmProgram> LowerToBytecode(const CompiledShader& cs) {
  std::shared_ptr<const VmProgram> prog = Lowerer(cs).Lower();
  // Safe cast: Lower() is the sole owner at this point; the const view is
  // what escapes. Tagging runs first so the lane-analysis debug log can
  // report SoA kernel coverage.
  TagSoaEligibility(const_cast<VmProgram&>(*prog));
  AnalyzeLaneBatching(const_cast<VmProgram&>(*prog), cs);
  return prog;
}

}  // namespace mgpu::glsl
