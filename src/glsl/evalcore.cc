#include "glsl/evalcore.h"

#include <bit>
#include <cmath>

#if MGPU_SIMD_X86
#include <immintrin.h>
#endif

namespace mgpu::glsl {

LRef RefWhole(Value& storage, const Type& t) {
  LRef r;
  r.storage = &storage;
  r.type = t;
  r.n = t.CellCount() > 16 ? 16 : t.CellCount();
  // Arrays larger than 16 cells are referenced whole only via index steps;
  // identity maps cover the head.
  for (int i = 0; i < r.n; ++i) {
    r.idx[static_cast<std::size_t>(i)] = static_cast<std::uint16_t>(i);
  }
  if (t.CellCount() > 16) r.n = -t.CellCount();  // whole-array marker
  return r;
}

IndexStep IndexStepOf(const Type& bt) {
  IndexStep s;
  if (bt.IsArray()) {
    s.limit = bt.array_size;
    s.elem_type = bt.ElementType();
    s.elem_cells = ComponentCount(bt.base);
  } else if (IsMatrix(bt.base)) {
    s.limit = ColumnCount(bt.base);
    s.elem_type = MakeType(ColumnTypeOf(bt.base));
    s.elem_cells = RowCount(bt.base);
  } else {
    s.limit = ComponentCount(bt.base);
    s.elem_type = MakeType(ScalarOf(bt.base));
    s.elem_cells = 1;
  }
  return s;
}

LRef RefIndex(const LRef& base, const IndexStep& step, int i) {
  if (i < 0) i = 0;
  if (i >= step.limit) i = step.limit - 1;  // runtime clamp (UB in the spec)
  LRef r;
  r.storage = base.storage;
  r.type = step.elem_type;
  r.n = step.elem_cells;
  for (int k = 0; k < step.elem_cells; ++k) {
    const int flat = i * step.elem_cells + k;
    r.idx[static_cast<std::size_t>(k)] =
        base.n < 0 ? static_cast<std::uint16_t>(flat)
                   : base.idx[static_cast<std::size_t>(flat)];
  }
  return r;
}

LRef RefSwizzle(const LRef& base, const Type& result_type,
                const std::uint8_t* comps, int count) {
  LRef r;
  r.storage = base.storage;
  r.type = result_type;
  r.n = count;
  for (int k = 0; k < count; ++k) {
    r.idx[static_cast<std::size_t>(k)] = base.idx[comps[k]];
  }
  return r;
}

Value ReadRef(const LRef& r) {
  Value v(r.type);
  if (r.n < 0) {
    // Whole large array.
    for (int i = 0; i < -r.n; ++i) v.data()[i] = r.storage->data()[i];
    return v;
  }
  for (int i = 0; i < r.n; ++i) {
    v.data()[i] = r.storage->data()[r.idx[static_cast<std::size_t>(i)]];
  }
  return v;
}

void ReadRefInto(const LRef& r, Value& out) {
  if (r.n < 0) {
    for (int i = 0; i < -r.n; ++i) out.data()[i] = r.storage->data()[i];
    return;
  }
  Cell* dst = out.data();
  const Cell* src = r.storage->data();
  for (int i = 0; i < r.n; ++i) {
    dst[i] = src[r.idx[static_cast<std::size_t>(i)]];
  }
}

void WriteRef(const LRef& r, const Value& v) {
  if (r.n < 0) {
    for (int i = 0; i < -r.n; ++i) r.storage->data()[i] = v.data()[i];
    return;
  }
  for (int i = 0; i < r.n; ++i) {
    r.storage->data()[r.idx[static_cast<std::size_t>(i)]] = v.data()[i];
  }
}

bool EqualAll(const Value& l, const Value& r) {
  if (l.count() != r.count()) return false;
  const bool is_float = l.scalar() == BaseType::kFloat;
  for (int i = 0; i < l.count(); ++i) {
    if (is_float) {
      if (l.F(i) != r.F(i)) return false;
    } else {
      if (l.I(i) != r.I(i)) return false;
    }
  }
  return true;
}

void EvalArithInto(AluModel& alu, BinOp op, const Value& l, const Value& r,
                   Value& out) {
  const BaseType lb = l.type().base;
  const BaseType rb = r.type().base;
  const bool is_float = ScalarOf(lb) == BaseType::kFloat;

  // Fast path: scalar float +-*/ — the bulk of lowered GPGPU kernel code.
  // Identical to the component-wise loop below at n == 1 (same AluModel
  // routing, same counts).
  if (is_float && out.count() == 1 && op <= BinOp::kDiv) {
    const float a = l.F(0);
    const float b = r.F(0);
    switch (op) {
      case BinOp::kAdd: out.SetF(0, alu.Add(a, b)); return;
      case BinOp::kSub: out.SetF(0, alu.Sub(a, b)); return;
      case BinOp::kMul: out.SetF(0, alu.Mul(a, b)); return;
      default: out.SetF(0, alu.Div(a, b)); return;
    }
  }

  // Linear-algebra multiplication cases first.
  if (op == BinOp::kMul && IsMatrix(lb) && IsMatrix(rb)) {
    const int n = RowCount(lb);
    for (int c = 0; c < n; ++c) {
      for (int row = 0; row < n; ++row) {
        float acc = alu.Mul(l.F(row), r.F(c * n));
        for (int k = 1; k < n; ++k) {
          acc = alu.Add(acc, alu.Mul(l.F(k * n + row), r.F(c * n + k)));
        }
        out.SetF(c * n + row, acc);
      }
    }
    return;
  }
  if (op == BinOp::kMul && IsMatrix(lb) && IsVector(rb)) {
    const int n = RowCount(lb);
    for (int row = 0; row < n; ++row) {
      float acc = alu.Mul(l.F(row), r.F(0));
      for (int k = 1; k < n; ++k) {
        acc = alu.Add(acc, alu.Mul(l.F(k * n + row), r.F(k)));
      }
      out.SetF(row, acc);
    }
    return;
  }
  if (op == BinOp::kMul && IsVector(lb) && IsMatrix(rb)) {
    const int n = RowCount(rb);
    for (int c = 0; c < n; ++c) {
      float acc = alu.Mul(l.F(0), r.F(c * n));
      for (int k = 1; k < n; ++k) {
        acc = alu.Add(acc, alu.Mul(l.F(k), r.F(c * n + k)));
      }
      out.SetF(c, acc);
    }
    return;
  }

  // Component-wise with scalar broadcast.
  const int n = out.count();
  const bool lbc = l.count() == 1 && n > 1;
  const bool rbc = r.count() == 1 && n > 1;
  for (int i = 0; i < n; ++i) {
    const int li = lbc ? 0 : i;
    const int ri = rbc ? 0 : i;
    if (is_float) {
      const float a = l.F(li);
      const float b = r.F(ri);
      float v = 0.0f;
      switch (op) {
        case BinOp::kAdd: v = alu.Add(a, b); break;
        case BinOp::kSub: v = alu.Sub(a, b); break;
        case BinOp::kMul: v = alu.Mul(a, b); break;
        case BinOp::kDiv: v = alu.Div(a, b); break;
        case BinOp::kLt: alu.Count(1); out.SetB(i, a < b); continue;
        case BinOp::kGt: alu.Count(1); out.SetB(i, a > b); continue;
        case BinOp::kLe: alu.Count(1); out.SetB(i, a <= b); continue;
        case BinOp::kGe: alu.Count(1); out.SetB(i, a >= b); continue;
        case BinOp::kEq: alu.Count(1); out.SetB(i, EqualAll(l, r)); continue;
        case BinOp::kNe: alu.Count(1); out.SetB(i, !EqualAll(l, r)); continue;
        default: break;
      }
      out.SetF(i, v);
    } else {
      const std::int32_t a = l.I(li);
      const std::int32_t b = r.I(ri);
      alu.Count(1);
      switch (op) {
        case BinOp::kAdd: out.SetI(i, a + b); break;
        case BinOp::kSub: out.SetI(i, a - b); break;
        case BinOp::kMul: out.SetI(i, a * b); break;
        case BinOp::kDiv: out.SetI(i, b == 0 ? 0 : a / b); break;
        case BinOp::kLt: out.SetB(i, a < b); break;
        case BinOp::kGt: out.SetB(i, a > b); break;
        case BinOp::kLe: out.SetB(i, a <= b); break;
        case BinOp::kGe: out.SetB(i, a >= b); break;
        case BinOp::kEq: out.SetB(i, EqualAll(l, r)); break;
        case BinOp::kNe: out.SetB(i, !EqualAll(l, r)); break;
        default: break;
      }
    }
  }
}

void EvalCtorInto(AluModel& alu, std::span<const Value* const> args,
                  Value& out) {
  const BaseType target = out.type().base;
  alu.Count(out.count());  // conversion/mov cost

  if (IsScalar(target)) {
    out.SetConverted(0, *args[0], 0);
    return;
  }
  if (IsVector(target)) {
    const int n = out.count();
    if (args.size() == 1 && args[0]->count() == 1) {
      for (int i = 0; i < n; ++i) out.SetConverted(i, *args[0], 0);
      return;
    }
    // Fast path: all-float gather (vecN(f, f, ...), the common shader
    // ctor) — SetConverted degenerates to a plain float copy there.
    bool all_float = ScalarOf(target) == BaseType::kFloat;
    for (std::size_t a = 0; all_float && a < args.size(); ++a) {
      all_float = args[a]->scalar() == BaseType::kFloat;
    }
    int w = 0;
    if (all_float) {
      for (const Value* a : args) {
        for (int i = 0; i < a->count() && w < n; ++i, ++w) {
          out.SetF(w, a->F(i));
        }
      }
      return;
    }
    for (const Value* a : args) {
      for (int i = 0; i < a->count() && w < n; ++i, ++w) {
        out.SetConverted(w, *a, i);
      }
    }
    return;
  }
  // Matrices.
  const int n = RowCount(target);
  if (args.size() == 1 && args[0]->count() == 1) {
    for (int col = 0; col < n; ++col) {
      for (int row = 0; row < n; ++row) {
        out.SetF(col * n + row, col == row ? args[0]->AsFloat(0) : 0.0f);
      }
    }
    return;
  }
  if (args.size() == 1 && IsMatrix(args[0]->type().base)) {
    const int m = RowCount(args[0]->type().base);
    for (int col = 0; col < n; ++col) {
      for (int row = 0; row < n; ++row) {
        float v = col == row ? 1.0f : 0.0f;
        if (col < m && row < m) v = args[0]->F(col * m + row);
        out.SetF(col * n + row, v);
      }
    }
    return;
  }
  int w = 0;
  for (const Value* a : args) {
    for (int i = 0; i < a->count() && w < out.count(); ++i, ++w) {
      out.SetConverted(w, *a, i);
    }
  }
}

void EvalNegInto(AluModel& alu, const Value& v, Value& out) {
  const bool is_float = v.scalar() == BaseType::kFloat;
  for (int i = 0; i < v.count(); ++i) {
    alu.Count(1);
    if (is_float) {
      out.SetF(i, alu.Round(-v.F(i)));
    } else {
      out.SetI(i, -v.I(i));
    }
  }
}

void EvalNotInto(AluModel& alu, const Value& v, Value& out) {
  alu.Count(1);
  out.SetB(0, !v.B(0));
}

void EvalIncDecInto(AluModel& alu, const LRef& ref, bool increment, bool post,
                    Value& out) {
  const Value old = ReadRef(ref);
  Value updated(old.type());
  const float delta = increment ? 1.0f : -1.0f;
  const bool is_float = old.scalar() == BaseType::kFloat;
  for (int i = 0; i < old.count(); ++i) {
    if (is_float) {
      updated.SetF(i, alu.Add(old.F(i), delta));
    } else {
      alu.Count(1);
      updated.SetI(i, old.I(i) + static_cast<std::int32_t>(delta));
    }
  }
  WriteRef(ref, updated);
  out = post ? old : updated;
}

void EvalIncDecVar(AluModel& alu, Value& var, bool increment, bool post,
                   Value& out) {
  const float delta = increment ? 1.0f : -1.0f;
  const bool is_float = var.scalar() == BaseType::kFloat;
  const int n = var.count();
  for (int i = 0; i < n; ++i) {
    if (is_float) {
      const float old = var.F(i);
      const float updated = alu.Add(old, delta);
      var.SetF(i, updated);
      out.SetF(i, post ? old : updated);
    } else {
      alu.Count(1);
      const std::int32_t old = var.I(i);
      const std::int32_t updated = old + static_cast<std::int32_t>(delta);
      var.SetI(i, updated);
      out.SetI(i, post ? old : updated);
    }
  }
}

void EvalExtractInto(const Value& base, const IndexStep& step, int i,
                     Value& out) {
  if (i < 0) i = 0;
  if (i >= step.limit) i = step.limit - 1;
  for (int k = 0; k < step.elem_cells; ++k) {
    out.data()[k] = base.data()[i * step.elem_cells + k];
  }
}

// ---------------------------------------------------------------------------
// Lane-batched (SoA) kernels
// ---------------------------------------------------------------------------

void EvalArithBatch(AluModel& alu, BinOp op, const BatchSrc& l,
                    const BatchSrc& r, const BatchDst& out,
                    std::uint32_t mask) {
  const BaseType lb = l.base->type().base;
  const BaseType rb = r.base->type().base;
  const bool is_float = ScalarOf(lb) == BaseType::kFloat;

  // Linear-algebra multiplies: the accumulation pattern is the one place
  // EvalArithInto is not a flat component loop, so replay it per lane — the
  // dispatch to get here still ran once for the whole batch. The VM's SoA
  // tag (TagSoaEligibility) routes these shapes to its own per-lane path,
  // so this branch is normally unreachable from the batched executors; it
  // is kept so the kernel stays total — if the tag predicate ever drifts,
  // results remain correct (just unamortized) instead of silently wrong.
  if (op == BinOp::kMul &&
      ((IsMatrix(lb) && (IsMatrix(rb) || IsVector(rb))) ||
       (IsVector(lb) && IsMatrix(rb)))) {
    ForEachLane(mask, [&](int lane) {
      EvalArithInto(alu, op, l.at(lane), r.at(lane), out.at(lane));
    });
    return;
  }

  // Comparisons: result is always a scalar bool (relational ops are
  // scalar-only in GLSL ES; ==/!= on vectors and matrices reduce through
  // EqualAll). One alu op per lane, same as the scalar loop at n == 1.
  if (op >= BinOp::kLt && op <= BinOp::kNe) {
    switch (op) {
      case BinOp::kEq:
        ForEachLane(mask, [&](int lane) {
          alu.Count(1);
          out.at(lane).SetB(0, EqualAll(l.at(lane), r.at(lane)));
        });
        return;
      case BinOp::kNe:
        ForEachLane(mask, [&](int lane) {
          alu.Count(1);
          out.at(lane).SetB(0, !EqualAll(l.at(lane), r.at(lane)));
        });
        return;
      default:
        break;
    }
    if (is_float) {
      ForEachLane(mask, [&](int lane) {
        alu.Count(1);
        const float a = l.at(lane).F(0);
        const float b = r.at(lane).F(0);
        bool v = false;
        switch (op) {
          case BinOp::kLt: v = a < b; break;
          case BinOp::kGt: v = a > b; break;
          case BinOp::kLe: v = a <= b; break;
          default: v = a >= b; break;
        }
        out.at(lane).SetB(0, v);
      });
    } else {
      ForEachLane(mask, [&](int lane) {
        alu.Count(1);
        const std::int32_t a = l.at(lane).I(0);
        const std::int32_t b = r.at(lane).I(0);
        bool v = false;
        switch (op) {
          case BinOp::kLt: v = a < b; break;
          case BinOp::kGt: v = a > b; break;
          case BinOp::kLe: v = a <= b; break;
          default: v = a >= b; break;
        }
        out.at(lane).SetB(0, v);
      });
    }
    return;
  }

  // Component-wise arithmetic with scalar broadcast (covers scalars,
  // vectors, and matrix +-/ and matrix*scalar). Shape flags hoisted: `ls`/
  // `rs` are per-component index strides, 0 when the operand is a scalar
  // broadcast against a wider result.
  const int n = out.base->count();
  const int ls = l.base->count() == 1 && n > 1 ? 0 : 1;
  const int rs = r.base->count() == 1 && n > 1 ? 0 : 1;

  if (is_float) {
    // One tight lane loop per op: the switch runs once per instruction,
    // not once per lane per component.
    switch (op) {
      case BinOp::kAdd:
        ForEachLane(mask, [&](int lane) {
          const Value& a = l.at(lane);
          const Value& b = r.at(lane);
          Value& o = out.at(lane);
          for (int i = 0; i < n; ++i) {
            o.SetF(i, alu.Add(a.F(i * ls), b.F(i * rs)));
          }
        });
        return;
      case BinOp::kSub:
        ForEachLane(mask, [&](int lane) {
          const Value& a = l.at(lane);
          const Value& b = r.at(lane);
          Value& o = out.at(lane);
          for (int i = 0; i < n; ++i) {
            o.SetF(i, alu.Sub(a.F(i * ls), b.F(i * rs)));
          }
        });
        return;
      case BinOp::kMul:
        ForEachLane(mask, [&](int lane) {
          const Value& a = l.at(lane);
          const Value& b = r.at(lane);
          Value& o = out.at(lane);
          for (int i = 0; i < n; ++i) {
            o.SetF(i, alu.Mul(a.F(i * ls), b.F(i * rs)));
          }
        });
        return;
      default:
        ForEachLane(mask, [&](int lane) {
          const Value& a = l.at(lane);
          const Value& b = r.at(lane);
          Value& o = out.at(lane);
          for (int i = 0; i < n; ++i) {
            o.SetF(i, alu.Div(a.F(i * ls), b.F(i * rs)));
          }
        });
        return;
    }
  }

  // Integer component-wise arithmetic (one counted alu op per component,
  // division-by-zero guarded to 0, both matching EvalArithInto).
  ForEachLane(mask, [&](int lane) {
    const Value& a = l.at(lane);
    const Value& b = r.at(lane);
    Value& o = out.at(lane);
    for (int i = 0; i < n; ++i) {
      const std::int32_t x = a.I(i * ls);
      const std::int32_t y = b.I(i * rs);
      alu.Count(1);
      switch (op) {
        case BinOp::kAdd: o.SetI(i, x + y); break;
        case BinOp::kSub: o.SetI(i, x - y); break;
        case BinOp::kMul: o.SetI(i, x * y); break;
        case BinOp::kDiv: o.SetI(i, y == 0 ? 0 : x / y); break;
        default: break;
      }
    }
  });
}

void EvalNegBatch(AluModel& alu, const BatchSrc& v, const BatchDst& out,
                  std::uint32_t mask) {
  const int n = v.base->count();
  if (v.base->scalar() == BaseType::kFloat) {
    ForEachLane(mask, [&](int lane) {
      const Value& a = v.at(lane);
      Value& o = out.at(lane);
      for (int i = 0; i < n; ++i) {
        alu.Count(1);
        o.SetF(i, alu.Round(-a.F(i)));
      }
    });
    return;
  }
  ForEachLane(mask, [&](int lane) {
    const Value& a = v.at(lane);
    Value& o = out.at(lane);
    for (int i = 0; i < n; ++i) {
      alu.Count(1);
      o.SetI(i, -a.I(i));
    }
  });
}

void EvalNotBatch(AluModel& alu, const BatchSrc& v, const BatchDst& out,
                  std::uint32_t mask) {
  ForEachLane(mask, [&](int lane) {
    alu.Count(1);
    out.at(lane).SetB(0, !v.at(lane).B(0));
  });
}

void EvalCtorBatch(AluModel& alu, std::span<const BatchSrc> args,
                   const BatchDst& out, std::uint32_t mask) {
  const BaseType target = out.base->type().base;
  const int n = out.base->count();
  const auto clear = [n](Value& o) {
    Cell* c = o.data();
    for (int i = 0; i < n; ++i) c[i].i = 0;
  };

  if (IsScalar(target)) {
    ForEachLane(mask, [&](int lane) {
      alu.Count(1);
      Value& o = out.at(lane);
      clear(o);
      o.SetConverted(0, args[0].at(lane), 0);
    });
    return;
  }
  if (!IsVector(target)) {
    // Matrix/array targets must never be routed here: TagSoaEligibility
    // only marks scalar/vector constructors SoA (the VM replays matrix
    // ctors per lane through EvalCtorInto). Falling through silently would
    // leave stale register bytes in every lane, so fail loudly instead —
    // always on, unlike an assert, which Release/NDEBUG would strip.
    throw ShaderRuntimeError(
        "internal error: non-scalar/vector constructor reached the SoA "
        "ctor kernel (SoA tagging drifted from kernel coverage)");
  }
  {
    if (args.size() == 1 && args[0].base->count() == 1) {
      // Splat.
      ForEachLane(mask, [&](int lane) {
        alu.Count(n);
        Value& o = out.at(lane);
        const Value& a = args[0].at(lane);
        for (int i = 0; i < n; ++i) o.SetConverted(i, a, 0);
      });
      return;
    }
    bool all_float = ScalarOf(target) == BaseType::kFloat;
    for (std::size_t a = 0; all_float && a < args.size(); ++a) {
      all_float = args[a].base->scalar() == BaseType::kFloat;
    }
    if (all_float) {
      // The common vecN(f, v, ...) gather: a flat per-lane copy loop.
      ForEachLane(mask, [&](int lane) {
        alu.Count(n);
        Value& o = out.at(lane);
        int w = 0;
        for (const BatchSrc& src : args) {
          const Value& a = src.at(lane);
          for (int i = 0; i < a.count() && w < n; ++i, ++w) {
            o.SetF(w, a.F(i));
          }
        }
        while (w < n) o.data()[w++].i = 0;  // malformed ctor tail stays zero
      });
      return;
    }
    ForEachLane(mask, [&](int lane) {
      alu.Count(n);
      Value& o = out.at(lane);
      clear(o);
      int w = 0;
      for (const BatchSrc& src : args) {
        const Value& a = src.at(lane);
        for (int i = 0; i < a.count() && w < n; ++i, ++w) {
          o.SetConverted(w, a, i);
        }
      }
    });
  }
}

// ---------------------------------------------------------------------------
// SIMD kernels (x86-64; see the contract in evalcore.h / simd.h)
// ---------------------------------------------------------------------------

#if MGPU_SIMD_X86

namespace {

// Full-width 128-bit load/store over Value cells. Cells are 4-byte unions
// with the float member active on every path that reaches these kernels;
// the intrinsics read/write raw bytes, so punning through the cast is fine.
// Callers guarantee the touched range stays inside the value's inline
// storage (count <= Value::kInline == 16 cells; over-read/over-write of
// cells at index >= count is unobservable by the Value contract).
inline __m128 LoadF4(const Cell* c) {
  return _mm_loadu_ps(reinterpret_cast<const float*>(c));
}
inline void StoreF4(Cell* c, __m128 v) {
  _mm_storeu_ps(reinterpret_cast<float*>(c), v);
}

// Component-wise binary op over every live lane, 4 components per step.
// `ls`/`rs` are the scalar-broadcast strides of EvalArithBatch (0 = the
// operand is a scalar splat against a wider result).
template <typename Op>
inline void ArithSimdLanes(const BatchSrc& l, const BatchSrc& r,
                           const BatchDst& out, int n, int ls, int rs,
                           std::uint32_t mask, Op op) {
  if (ls == 0) {
    ForEachLane(mask, [&](int lane) {
      const __m128 va = _mm_set1_ps(l.at(lane).F(0));
      const Cell* bc = r.at(lane).data();
      Cell* oc = out.at(lane).data();
      for (int i = 0; i < n; i += 4) StoreF4(oc + i, op(va, LoadF4(bc + i)));
    });
  } else if (rs == 0) {
    ForEachLane(mask, [&](int lane) {
      const Cell* ac = l.at(lane).data();
      const __m128 vb = _mm_set1_ps(r.at(lane).F(0));
      Cell* oc = out.at(lane).data();
      for (int i = 0; i < n; i += 4) StoreF4(oc + i, op(LoadF4(ac + i), vb));
    });
  } else {
    ForEachLane(mask, [&](int lane) {
      const Cell* ac = l.at(lane).data();
      const Cell* bc = r.at(lane).data();
      Cell* oc = out.at(lane).data();
      for (int i = 0; i < n; i += 4) {
        StoreF4(oc + i, op(LoadF4(ac + i), LoadF4(bc + i)));
      }
    });
  }
}

}  // namespace

void EvalArithBatchSimd(AluModel& alu, BinOp op, const BatchSrc& l,
                        const BatchSrc& r, const BatchDst& out,
                        std::uint32_t mask, simd::Level level) {
  const BaseType lb = l.base->type().base;
  const BaseType rb = r.base->type().base;
  const int n = out.base->count();
  const bool linalg =
      op == BinOp::kMul && ((IsMatrix(lb) && (IsMatrix(rb) || IsVector(rb))) ||
                            (IsVector(lb) && IsMatrix(rb)));
  if (level == simd::Level::kScalar || op > BinOp::kMul || linalg ||
      ScalarOf(lb) != BaseType::kFloat || n < 2 || n > Value::kInline) {
    EvalArithBatch(alu, op, l, r, out, mask);
    return;
  }
  const int ls = l.base->count() == 1 && n > 1 ? 0 : 1;
  const int rs = r.base->count() == 1 && n > 1 ? 0 : 1;
  alu.CountAlu(static_cast<std::uint64_t>(n) *
               static_cast<unsigned>(std::popcount(mask)));
  switch (op) {
    case BinOp::kAdd:
      ArithSimdLanes(l, r, out, n, ls, rs, mask,
                     [](__m128 a, __m128 b) { return _mm_add_ps(a, b); });
      return;
    case BinOp::kSub:
      ArithSimdLanes(l, r, out, n, ls, rs, mask,
                     [](__m128 a, __m128 b) { return _mm_sub_ps(a, b); });
      return;
    default:
      ArithSimdLanes(l, r, out, n, ls, rs, mask,
                     [](__m128 a, __m128 b) { return _mm_mul_ps(a, b); });
      return;
  }
}

void EvalNegBatchSimd(AluModel& alu, const BatchSrc& v, const BatchDst& out,
                      std::uint32_t mask, simd::Level level) {
  const int n = v.base->count();
  if (level == simd::Level::kScalar ||
      v.base->scalar() != BaseType::kFloat || n > Value::kInline) {
    EvalNegBatch(alu, v, out, mask);
    return;
  }
  // -x on the identity-round path is a pure sign-bit flip (exact for every
  // input including NaN and +/-0), so negation vectorizes as an XOR.
  alu.CountAlu(static_cast<std::uint64_t>(n) *
               static_cast<unsigned>(std::popcount(mask)));
  const __m128 sign = _mm_set1_ps(-0.0f);
  ForEachLane(mask, [&](int lane) {
    const Cell* ac = v.at(lane).data();
    Cell* oc = out.at(lane).data();
    for (int i = 0; i < n; i += 4) {
      StoreF4(oc + i, _mm_xor_ps(LoadF4(ac + i), sign));
    }
  });
}

void EvalCtorBatchSimd(AluModel& alu, std::span<const BatchSrc> args,
                       const BatchDst& out, std::uint32_t mask,
                       simd::Level level) {
  const BaseType target = out.base->type().base;
  const int n = out.base->count();
  bool covered = level != simd::Level::kScalar && IsVector(target) &&
                 ScalarOf(target) == BaseType::kFloat && n <= 4;
  for (std::size_t a = 0; covered && a < args.size(); ++a) {
    // Only float scalar/vector args: keeps every 4-wide copy inside the
    // destination's inline cells (write range < w + 4 <= n + 3 <= 7).
    covered = args[a].base->scalar() == BaseType::kFloat &&
              args[a].base->count() <= 4;
  }
  if (!covered) {
    EvalCtorBatch(alu, args, out, mask);
    return;
  }
  alu.CountAlu(static_cast<std::uint64_t>(n) *
               static_cast<unsigned>(std::popcount(mask)));
  if (args.size() == 1 && args[0].base->count() == 1) {
    // Splat: float -> float SetConverted is a plain copy, so broadcast.
    ForEachLane(mask, [&](int lane) {
      StoreF4(out.at(lane).data(), _mm_set1_ps(args[0].at(lane).F(0)));
    });
    return;
  }
  // All-float gather: one unaligned 4-wide copy per argument. Components
  // past an argument's count are overwritten by the next argument's copy or
  // are beyond n (unobservable), exactly reproducing the scalar gather.
  ForEachLane(mask, [&](int lane) {
    Value& o = out.at(lane);
    Cell* oc = o.data();
    int w = 0;
    for (const BatchSrc& src : args) {
      if (w >= n) break;
      const Value& a = src.at(lane);
      StoreF4(oc + w, LoadF4(a.data()));
      w += a.count();
    }
    if (w > n) w = n;
    while (w < n) oc[w++].i = 0;  // malformed ctor tail stays zero
  });
}

#else  // !MGPU_SIMD_X86 — portable builds: the entries forward verbatim.

void EvalArithBatchSimd(AluModel& alu, BinOp op, const BatchSrc& l,
                        const BatchSrc& r, const BatchDst& out,
                        std::uint32_t mask, simd::Level /*level*/) {
  EvalArithBatch(alu, op, l, r, out, mask);
}

void EvalNegBatchSimd(AluModel& alu, const BatchSrc& v, const BatchDst& out,
                      std::uint32_t mask, simd::Level /*level*/) {
  EvalNegBatch(alu, v, out, mask);
}

void EvalCtorBatchSimd(AluModel& alu, std::span<const BatchSrc> args,
                       const BatchDst& out, std::uint32_t mask,
                       simd::Level /*level*/) {
  EvalCtorBatch(alu, args, out, mask);
}

#endif  // MGPU_SIMD_X86

}  // namespace mgpu::glsl
