// Runtime-dispatched SIMD tiers for the batched (SoA) evalcore kernels.
//
// The batched VM's data layout (strided BatchSrc/BatchDst lane planes,
// contiguous Value cells within a lane) is SIMD-shaped by construction; this
// header names the instruction tiers the vector kernels in evalcore.cc /
// builtins.cc can target and resolves which tier a given execution may use.
//
// Tiers:
//   kScalar — portable fallback: the plain scalar SoA kernels run. Always
//             available; the only tier on non-x86-64 builds.
//   kSse2   — x86-64 baseline (SSE2 is architectural): 128-bit ops over the
//             contiguous component cells of each live lane.
//   kAvx2   — detected via cpuid at startup: additionally unlocks the
//             SSE4.1/AVX round instructions (floor/ceil/fract vectorize).
//
// Bit-identity contract: SIMD kernels may only run when the executing
// AluModel has round_identity() — then Add/Sub/Mul are plain IEEE fp32 ops
// plus a counter, so reordering lanes/components cannot change results, and
// op counting batches into AluModel::CountAlu(n). The VM enforces this by
// sampling the effective level per RunBatch (vm.cc); SFU-routed ops
// (Recip/RecipSqrt/Exp2/Log2, division) and texture builtins never take a
// SIMD path regardless of tier.
//
// Resolution order for the effective tier: per-context knob
// (ContextConfig::simd / DeviceOptions::simd) > MGPU_SIMD env (0/1/2) >
// detected hardware level; every source is clamped to the detected level.
#ifndef MGPU_GLSL_SIMD_H_
#define MGPU_GLSL_SIMD_H_

#if defined(__x86_64__) || defined(_M_X64)
#define MGPU_SIMD_X86 1
#else
#define MGPU_SIMD_X86 0
#endif

namespace mgpu::glsl::simd {

enum class Level : int {
  kScalar = 0,
  kSse2 = 1,
  kAvx2 = 2,
};

// Highest tier the running CPU supports (cpuid-derived, cached after the
// first call). kScalar on non-x86-64 architectures.
[[nodiscard]] Level DetectedLevel();

// Effective tier for a context knob value: -1 = auto (MGPU_SIMD env if set,
// else the detected level); 0/1/2 = explicit tier request. The result is
// always clamped to DetectedLevel() — requesting AVX2 on an SSE2-only CPU
// yields kSse2, and MGPU_SIMD=0 forces kScalar everywhere.
[[nodiscard]] Level Resolve(int knob);

// Human-readable tier name ("scalar" / "sse2" / "avx2") for logs and the
// fuzzer's failing-seed repro line.
[[nodiscard]] const char* LevelName(Level level);

}  // namespace mgpu::glsl::simd

#endif  // MGPU_GLSL_SIMD_H_
