#include "glsl/lexer.h"

#include <cctype>
#include <cstdlib>
#include <map>

#include "common/strings.h"

namespace mgpu::glsl {
namespace {

const std::map<std::string, Tok>& KeywordTable() {
  static const std::map<std::string, Tok> kTable = {
      {"attribute", Tok::kKwAttribute},
      {"const", Tok::kKwConst},
      {"uniform", Tok::kKwUniform},
      {"varying", Tok::kKwVarying},
      {"break", Tok::kKwBreak},
      {"continue", Tok::kKwContinue},
      {"do", Tok::kKwDo},
      {"for", Tok::kKwFor},
      {"while", Tok::kKwWhile},
      {"if", Tok::kKwIf},
      {"else", Tok::kKwElse},
      {"in", Tok::kKwIn},
      {"out", Tok::kKwOut},
      {"inout", Tok::kKwInOut},
      {"true", Tok::kKwTrue},
      {"false", Tok::kKwFalse},
      {"lowp", Tok::kKwLowp},
      {"mediump", Tok::kKwMediump},
      {"highp", Tok::kKwHighp},
      {"precision", Tok::kKwPrecision},
      {"invariant", Tok::kKwInvariant},
      {"discard", Tok::kKwDiscard},
      {"return", Tok::kKwReturn},
      {"struct", Tok::kKwStruct},
      {"void", Tok::kKwVoid},
      {"bool", Tok::kKwBool},
      {"int", Tok::kKwInt},
      {"float", Tok::kKwFloat},
      {"vec2", Tok::kKwVec2},
      {"vec3", Tok::kKwVec3},
      {"vec4", Tok::kKwVec4},
      {"bvec2", Tok::kKwBVec2},
      {"bvec3", Tok::kKwBVec3},
      {"bvec4", Tok::kKwBVec4},
      {"ivec2", Tok::kKwIVec2},
      {"ivec3", Tok::kKwIVec3},
      {"ivec4", Tok::kKwIVec4},
      {"mat2", Tok::kKwMat2},
      {"mat3", Tok::kKwMat3},
      {"mat4", Tok::kKwMat4},
      {"sampler2D", Tok::kKwSampler2D},
      {"samplerCube", Tok::kKwSamplerCube},
  };
  return kTable;
}

// Keywords reserved by GLSL ES 1.00 (spec 3.7) that a conforming compiler
// must reject when used as identifiers.
bool IsReservedWord(const std::string& w) {
  static const std::map<std::string, int> kReserved = {
      {"asm", 0},     {"class", 0},    {"union", 0},    {"enum", 0},
      {"typedef", 0}, {"template", 0}, {"this", 0},     {"packed", 0},
      {"goto", 0},    {"switch", 0},   {"default", 0},  {"inline", 0},
      {"noinline", 0},{"volatile", 0}, {"public", 0},   {"static", 0},
      {"extern", 0},  {"external", 0}, {"interface", 0},{"flat", 0},
      {"long", 0},    {"short", 0},    {"double", 0},   {"half", 0},
      {"fixed", 0},   {"unsigned", 0}, {"superp", 0},   {"input", 0},
      {"output", 0},  {"hvec2", 0},    {"hvec3", 0},    {"hvec4", 0},
      {"dvec2", 0},   {"dvec3", 0},    {"dvec4", 0},    {"fvec2", 0},
      {"fvec3", 0},   {"fvec4", 0},    {"sampler1D", 0},{"sampler3D", 0},
      {"sampler1DShadow", 0}, {"sampler2DShadow", 0},   {"sampler2DRect", 0},
      {"sampler3DRect", 0},   {"sampler2DRectShadow", 0}, {"sizeof", 0},
      {"cast", 0},    {"namespace", 0},{"using", 0},
  };
  return kReserved.count(w) != 0;
}

class Scanner {
 public:
  Scanner(const std::string& src, DiagSink& diags)
      : src_(src), diags_(diags) {}

  std::vector<Token> Run() {
    std::vector<Token> tokens;
    while (true) {
      SkipWhitespace();
      Token t = Next();
      const bool eof = t.kind == Tok::kEof;
      tokens.push_back(std::move(t));
      if (eof) break;
    }
    return tokens;
  }

 private:
  char Peek(int off = 0) const {
    const std::size_t i = pos_ + static_cast<std::size_t>(off);
    return i < src_.size() ? src_[i] : '\0';
  }
  char Advance() {
    const char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }
  bool Match(char c) {
    if (Peek() != c) return false;
    Advance();
    return true;
  }
  void SkipWhitespace() {
    while (pos_ < src_.size() &&
           std::isspace(static_cast<unsigned char>(Peek())) != 0) {
      Advance();
    }
  }
  SrcLoc Here() const { return {line_, col_}; }

  Token Make(Tok kind, SrcLoc loc) {
    Token t;
    t.kind = kind;
    t.loc = loc;
    return t;
  }

  Token Next() {
    const SrcLoc loc = Here();
    if (pos_ >= src_.size()) return Make(Tok::kEof, loc);
    const char c = Advance();
    if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_') {
      return Identifier(c, loc);
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0 ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(Peek())) != 0)) {
      return Number(c, loc);
    }
    switch (c) {
      case '(': return Make(Tok::kLParen, loc);
      case ')': return Make(Tok::kRParen, loc);
      case '[': return Make(Tok::kLBracket, loc);
      case ']': return Make(Tok::kRBracket, loc);
      case '{': return Make(Tok::kLBrace, loc);
      case '}': return Make(Tok::kRBrace, loc);
      case '.': return Make(Tok::kDot, loc);
      case ',': return Make(Tok::kComma, loc);
      case ';': return Make(Tok::kSemicolon, loc);
      case ':': return Make(Tok::kColon, loc);
      case '?': return Make(Tok::kQuestion, loc);
      case '+':
        if (Match('+')) return Make(Tok::kPlusPlus, loc);
        if (Match('=')) return Make(Tok::kPlusEq, loc);
        return Make(Tok::kPlus, loc);
      case '-':
        if (Match('-')) return Make(Tok::kMinusMinus, loc);
        if (Match('=')) return Make(Tok::kMinusEq, loc);
        return Make(Tok::kMinus, loc);
      case '*':
        if (Match('=')) return Make(Tok::kStarEq, loc);
        return Make(Tok::kStar, loc);
      case '/':
        if (Match('=')) return Make(Tok::kSlashEq, loc);
        return Make(Tok::kSlash, loc);
      case '!':
        if (Match('=')) return Make(Tok::kBangEq, loc);
        return Make(Tok::kBang, loc);
      case '<':
        if (Match('=')) return Make(Tok::kLessEq, loc);
        if (Peek() == '<') break;  // reserved
        return Make(Tok::kLess, loc);
      case '>':
        if (Match('=')) return Make(Tok::kGreaterEq, loc);
        if (Peek() == '>') break;  // reserved
        return Make(Tok::kGreater, loc);
      case '=':
        if (Match('=')) return Make(Tok::kEqEq, loc);
        return Make(Tok::kEq, loc);
      case '&':
        if (Match('&')) return Make(Tok::kAmpAmp, loc);
        break;  // reserved
      case '|':
        if (Match('|')) return Make(Tok::kPipePipe, loc);
        break;  // reserved
      case '^':
        if (Match('^')) return Make(Tok::kCaretCaret, loc);
        break;  // reserved
      default:
        break;
    }
    if (c == '%' || c == '&' || c == '|' || c == '^' || c == '~' ||
        (c == '<' && Peek() == '<') || (c == '>' && Peek() == '>')) {
      diags_.Error(loc, StrFormat("operator '%c' is reserved in GLSL ES 1.00",
                                  c));
    } else {
      diags_.Error(loc, StrFormat("unexpected character '%c'", c));
    }
    return Next();
  }

  Token Identifier(char first, SrcLoc loc) {
    std::string word(1, first);
    while (IsIdentCont(Peek())) word.push_back(Advance());
    const auto& kw = KeywordTable();
    const auto it = kw.find(word);
    if (it != kw.end()) return Make(it->second, loc);
    if (IsReservedWord(word)) {
      diags_.Error(loc, StrFormat("'%s' is a reserved keyword in GLSL ES "
                                  "1.00",
                                  word.c_str()));
    }
    if (word.size() > 2 && word[0] == '_' && word[1] == '_') {
      diags_.Error(loc, "identifiers beginning with '__' are reserved");
    }
    Token t = Make(Tok::kIdentifier, loc);
    t.text = std::move(word);
    return t;
  }

  static bool IsIdentCont(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
  }

  Token Number(char first, SrcLoc loc) {
    std::string text(1, first);
    bool is_float = first == '.';
    bool is_hex = false;
    if (first == '0' && (Peek() == 'x' || Peek() == 'X')) {
      is_hex = true;
      text.push_back(Advance());
      while (std::isxdigit(static_cast<unsigned char>(Peek())) != 0) {
        text.push_back(Advance());
      }
    } else {
      while (std::isdigit(static_cast<unsigned char>(Peek())) != 0) {
        text.push_back(Advance());
      }
      if (!is_float && Peek() == '.') {
        is_float = true;
        text.push_back(Advance());
      }
      if (is_float) {
        while (std::isdigit(static_cast<unsigned char>(Peek())) != 0) {
          text.push_back(Advance());
        }
      }
      if (Peek() == 'e' || Peek() == 'E') {
        const char exp_next = Peek(1);
        const char exp_next2 = Peek(2);
        if (std::isdigit(static_cast<unsigned char>(exp_next)) != 0 ||
            ((exp_next == '+' || exp_next == '-') &&
             std::isdigit(static_cast<unsigned char>(exp_next2)) != 0)) {
          is_float = true;
          text.push_back(Advance());
          if (Peek() == '+' || Peek() == '-') text.push_back(Advance());
          while (std::isdigit(static_cast<unsigned char>(Peek())) != 0) {
            text.push_back(Advance());
          }
        }
      }
    }
    if (Peek() == 'f' || Peek() == 'F') {
      diags_.Error(Here(),
                   "float literal suffixes ('f') are not part of GLSL ES "
                   "1.00");
      Advance();
    }
    if (is_float) {
      Token t = Make(Tok::kFloatLiteral, loc);
      t.float_value = std::strtof(text.c_str(), nullptr);
      t.text = std::move(text);
      return t;
    }
    Token t = Make(Tok::kIntLiteral, loc);
    t.int_value = static_cast<std::int32_t>(
        std::strtol(text.c_str(), nullptr, is_hex ? 16 : (first == '0' && text.size() > 1 ? 8 : 10)));
    t.text = std::move(text);
    return t;
  }

  const std::string& src_;
  DiagSink& diags_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
};

}  // namespace

std::vector<Token> Lex(const std::string& source, DiagSink& diags) {
  return Scanner(source, diags).Run();
}

}  // namespace mgpu::glsl
