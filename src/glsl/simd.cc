#include "glsl/simd.h"

#include <cstdlib>

namespace mgpu::glsl::simd {

namespace {

Level DetectOnce() {
#if MGPU_SIMD_X86
#if defined(__GNUC__) || defined(__clang__)
  // SSE2 is architectural on x86-64; AVX2 needs a cpuid probe. The builtin
  // also checks OS XSAVE support, so a positive answer means the ymm state
  // is actually usable.
  if (__builtin_cpu_supports("avx2")) return Level::kAvx2;
#endif
  return Level::kSse2;
#else
  return Level::kScalar;
#endif
}

Level ClampToDetected(Level want) {
  const Level cap = DetectedLevel();
  return static_cast<int>(want) > static_cast<int>(cap) ? cap : want;
}

// MGPU_SIMD env override, parsed once: "0" scalar, "1" SSE2, "2" AVX2.
// Any other value (or unset) leaves auto resolution at the detected level.
Level EnvLevelOnce() {
  const char* e = std::getenv("MGPU_SIMD");
  if (e != nullptr && e[0] != '\0' && e[1] == '\0') {
    if (e[0] == '0') return Level::kScalar;
    if (e[0] == '1') return ClampToDetected(Level::kSse2);
    if (e[0] == '2') return ClampToDetected(Level::kAvx2);
  }
  return DetectedLevel();
}

}  // namespace

Level DetectedLevel() {
  static const Level level = DetectOnce();
  return level;
}

Level Resolve(int knob) {
  static const Level env_level = EnvLevelOnce();
  if (knob < 0) return env_level;
  if (knob == 0) return Level::kScalar;
  return ClampToDetected(knob == 1 ? Level::kSse2 : Level::kAvx2);
}

const char* LevelName(Level level) {
  switch (level) {
    case Level::kSse2:
      return "sse2";
    case Level::kAvx2:
      return "avx2";
    default:
      return "scalar";
  }
}

}  // namespace mgpu::glsl::simd
