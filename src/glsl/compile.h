// One-call front-end driver: preprocess -> lex -> parse -> analyze.
#ifndef MGPU_GLSL_COMPILE_H_
#define MGPU_GLSL_COMPILE_H_

#include <memory>
#include <string>

#include "glsl/shader.h"

namespace mgpu::glsl {

struct CompileResult {
  bool ok = false;
  std::string info_log;  // driver-style "ERROR: 0:<line>: ..." text
  std::unique_ptr<CompiledShader> shader;  // valid only when ok
};

[[nodiscard]] CompileResult CompileGlsl(const std::string& source, Stage stage,
                                        const Limits& limits = Limits{});

}  // namespace mgpu::glsl

#endif  // MGPU_GLSL_COMPILE_H_
