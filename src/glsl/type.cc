#include "glsl/type.h"

#include "common/strings.h"

namespace mgpu::glsl {

BaseType VectorOf(BaseType scalar, int n) {
  if (n == 1) return scalar;
  switch (scalar) {
    case BaseType::kBool:
      return n == 2 ? BaseType::kBVec2
                    : (n == 3 ? BaseType::kBVec3 : BaseType::kBVec4);
    case BaseType::kInt:
      return n == 2 ? BaseType::kIVec2
                    : (n == 3 ? BaseType::kIVec3 : BaseType::kIVec4);
    case BaseType::kFloat:
      return n == 2 ? BaseType::kVec2
                    : (n == 3 ? BaseType::kVec3 : BaseType::kVec4);
    default:
      return BaseType::kVoid;
  }
}

BaseType ColumnTypeOf(BaseType mat) {
  switch (mat) {
    case BaseType::kMat2:
      return BaseType::kVec2;
    case BaseType::kMat3:
      return BaseType::kVec3;
    case BaseType::kMat4:
      return BaseType::kVec4;
    default:
      return BaseType::kVoid;
  }
}

const char* BaseTypeName(BaseType t) {
  switch (t) {
    case BaseType::kVoid:
      return "void";
    case BaseType::kBool:
      return "bool";
    case BaseType::kInt:
      return "int";
    case BaseType::kFloat:
      return "float";
    case BaseType::kBVec2:
      return "bvec2";
    case BaseType::kBVec3:
      return "bvec3";
    case BaseType::kBVec4:
      return "bvec4";
    case BaseType::kIVec2:
      return "ivec2";
    case BaseType::kIVec3:
      return "ivec3";
    case BaseType::kIVec4:
      return "ivec4";
    case BaseType::kVec2:
      return "vec2";
    case BaseType::kVec3:
      return "vec3";
    case BaseType::kVec4:
      return "vec4";
    case BaseType::kMat2:
      return "mat2";
    case BaseType::kMat3:
      return "mat3";
    case BaseType::kMat4:
      return "mat4";
    case BaseType::kSampler2D:
      return "sampler2D";
    case BaseType::kSamplerCube:
      return "samplerCube";
  }
  return "?";
}

std::string Type::ToString() const {
  if (IsArray()) return StrFormat("%s[%d]", BaseTypeName(base), array_size);
  return BaseTypeName(base);
}

}  // namespace mgpu::glsl
