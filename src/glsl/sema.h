// Semantic analysis for GLSL ES 1.00: symbol resolution (variables to global
// or frame slots), full type checking with the ES rules (notably: *no*
// implicit int->float conversions), l-value and storage-qualifier
// enforcement, recursion ban, resource-limit checks, and the mandatory
// default-precision rule for fragment shaders.
#ifndef MGPU_GLSL_SEMA_H_
#define MGPU_GLSL_SEMA_H_

#include <memory>

#include "glsl/ast.h"
#include "glsl/diag.h"
#include "glsl/shader.h"

namespace mgpu::glsl {

// Consumes the parsed translation unit and produces a CompiledShader with all
// annotations filled in. On error, diagnostics are recorded in `diags` and
// the returned shader must not be executed.
[[nodiscard]] std::unique_ptr<CompiledShader> Analyze(
    std::unique_ptr<TranslationUnit> tu, Stage stage, const Limits& limits,
    DiagSink& diags);

}  // namespace mgpu::glsl

#endif  // MGPU_GLSL_SEMA_H_
