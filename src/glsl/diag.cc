#include "glsl/diag.h"

#include "common/strings.h"

namespace mgpu::glsl {

std::string DiagSink::InfoLog() const {
  std::string log;
  for (const Diagnostic& d : diags_) {
    log += StrFormat("%s: 0:%d: %s\n",
                     d.severity == Severity::kError ? "ERROR" : "WARNING",
                     d.loc.line, d.message.c_str());
  }
  return log;
}

}  // namespace mgpu::glsl
