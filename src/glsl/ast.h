// Abstract syntax tree for GLSL ES 1.00. Nodes carry annotation fields
// (types, resolved slots, builtin ids) that the semantic analyzer fills in;
// the interpreter reads only annotated trees.
#ifndef MGPU_GLSL_AST_H_
#define MGPU_GLSL_AST_H_

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "glsl/diag.h"
#include "glsl/type.h"

namespace mgpu::glsl {

struct VarDecl;
struct FunctionDecl;

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

enum class ExprKind : unsigned char {
  kIntLit,
  kFloatLit,
  kBoolLit,
  kVarRef,
  kCall,      // user function or builtin
  kCtor,      // type constructor: vec4(...), float(...), mat3(...)
  kBinary,
  kUnary,
  kAssign,
  kTernary,
  kIndex,
  kSwizzle,   // field access on vectors (.xyz / .rgb / .stp)
  kComma,
};

struct Expr {
  ExprKind kind;
  SrcLoc loc;
  Type type;  // filled by sema

  virtual ~Expr() = default;

 protected:
  Expr(ExprKind k, SrcLoc l) : kind(k), loc(l) {}
};

using ExprPtr = std::unique_ptr<Expr>;

struct IntLitExpr final : Expr {
  IntLitExpr(SrcLoc l, std::int32_t v) : Expr(ExprKind::kIntLit, l), value(v) {}
  std::int32_t value;
};

struct FloatLitExpr final : Expr {
  FloatLitExpr(SrcLoc l, float v) : Expr(ExprKind::kFloatLit, l), value(v) {}
  float value;
};

struct BoolLitExpr final : Expr {
  BoolLitExpr(SrcLoc l, bool v) : Expr(ExprKind::kBoolLit, l), value(v) {}
  bool value;
};

enum class VarScope : unsigned char { kUnresolved, kGlobal, kLocal };

struct VarRefExpr final : Expr {
  VarRefExpr(SrcLoc l, std::string n)
      : Expr(ExprKind::kVarRef, l), name(std::move(n)) {}
  std::string name;
  // Annotations.
  VarScope scope = VarScope::kUnresolved;
  int slot = -1;
  const VarDecl* decl = nullptr;
};

struct CallExpr final : Expr {
  CallExpr(SrcLoc l, std::string callee_name)
      : Expr(ExprKind::kCall, l), callee(std::move(callee_name)) {}
  std::string callee;
  std::vector<ExprPtr> args;
  // Annotations: exactly one of these is set after sema.
  const FunctionDecl* fn = nullptr;
  int builtin = -1;  // index into the builtin table
};

struct CtorExpr final : Expr {
  CtorExpr(SrcLoc l, Type t) : Expr(ExprKind::kCtor, l), ctor_type(t) {}
  Type ctor_type;
  std::vector<ExprPtr> args;
};

enum class BinOp : unsigned char {
  kAdd, kSub, kMul, kDiv,
  kLt, kGt, kLe, kGe, kEq, kNe,
  kLogicalAnd, kLogicalOr, kLogicalXor,
};

struct BinaryExpr final : Expr {
  BinaryExpr(SrcLoc l, BinOp o, ExprPtr a, ExprPtr b)
      : Expr(ExprKind::kBinary, l), op(o), lhs(std::move(a)),
        rhs(std::move(b)) {}
  BinOp op;
  ExprPtr lhs, rhs;
};

enum class UnOp : unsigned char {
  kNeg, kPlus, kNot, kPreInc, kPreDec, kPostInc, kPostDec,
};

struct UnaryExpr final : Expr {
  UnaryExpr(SrcLoc l, UnOp o, ExprPtr e)
      : Expr(ExprKind::kUnary, l), op(o), operand(std::move(e)) {}
  UnOp op;
  ExprPtr operand;
};

enum class AssignOp : unsigned char { kAssign, kAdd, kSub, kMul, kDiv };

struct AssignExpr final : Expr {
  AssignExpr(SrcLoc l, AssignOp o, ExprPtr a, ExprPtr b)
      : Expr(ExprKind::kAssign, l), op(o), lhs(std::move(a)),
        rhs(std::move(b)) {}
  AssignOp op;
  ExprPtr lhs, rhs;
};

struct TernaryExpr final : Expr {
  TernaryExpr(SrcLoc l, ExprPtr c, ExprPtr t, ExprPtr f)
      : Expr(ExprKind::kTernary, l), cond(std::move(c)),
        then_expr(std::move(t)), else_expr(std::move(f)) {}
  ExprPtr cond, then_expr, else_expr;
};

struct IndexExpr final : Expr {
  IndexExpr(SrcLoc l, ExprPtr b, ExprPtr i)
      : Expr(ExprKind::kIndex, l), base(std::move(b)), index(std::move(i)) {}
  ExprPtr base, index;
};

struct SwizzleExpr final : Expr {
  SwizzleExpr(SrcLoc l, ExprPtr b, std::string f)
      : Expr(ExprKind::kSwizzle, l), base(std::move(b)), field(std::move(f)) {}
  ExprPtr base;
  std::string field;
  // Annotations.
  std::array<std::uint8_t, 4> comps{};
  int count = 0;
};

struct CommaExpr final : Expr {
  CommaExpr(SrcLoc l, ExprPtr a, ExprPtr b)
      : Expr(ExprKind::kComma, l), lhs(std::move(a)), rhs(std::move(b)) {}
  ExprPtr lhs, rhs;
};

// ---------------------------------------------------------------------------
// Declarations
// ---------------------------------------------------------------------------

enum class Qualifier : unsigned char {
  kNone, kConst, kAttribute, kUniform, kVarying,
};

enum class ParamDir : unsigned char { kIn, kOut, kInOut };

struct VarDecl {
  SrcLoc loc;
  std::string name;
  Type type;
  Qualifier qual = Qualifier::kNone;
  Precision precision = Precision::kNone;
  bool invariant = false;
  ExprPtr init;  // may be null
  // Parameter-only fields.
  bool is_param = false;
  ParamDir dir = ParamDir::kIn;
  // Annotations.
  int slot = -1;
  bool is_builtin = false;  // gl_* variable synthesized by sema
};

struct BlockStmt;

struct FunctionDecl {
  SrcLoc loc;
  std::string name;
  Type return_type;
  Precision return_precision = Precision::kNone;
  std::vector<std::unique_ptr<VarDecl>> params;
  std::unique_ptr<BlockStmt> body;  // null for prototypes
  // Annotations.
  int frame_size = 0;  // local slots (params first)
};

struct PrecisionDecl {
  SrcLoc loc;
  Precision precision = Precision::kNone;
  BaseType base = BaseType::kVoid;  // float, int or sampler types
};

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

enum class StmtKind : unsigned char {
  kExpr, kDecl, kIf, kFor, kWhile, kDoWhile,
  kReturn, kBreak, kContinue, kDiscard, kBlock,
};

struct Stmt {
  StmtKind kind;
  SrcLoc loc;
  virtual ~Stmt() = default;

 protected:
  Stmt(StmtKind k, SrcLoc l) : kind(k), loc(l) {}
};

using StmtPtr = std::unique_ptr<Stmt>;

struct ExprStmt final : Stmt {
  ExprStmt(SrcLoc l, ExprPtr e)
      : Stmt(StmtKind::kExpr, l), expr(std::move(e)) {}
  ExprPtr expr;  // null for the empty statement ';'
};

struct DeclStmt final : Stmt {
  explicit DeclStmt(SrcLoc l) : Stmt(StmtKind::kDecl, l) {}
  std::vector<std::unique_ptr<VarDecl>> decls;
};

struct IfStmt final : Stmt {
  IfStmt(SrcLoc l, ExprPtr c, StmtPtr t, StmtPtr e)
      : Stmt(StmtKind::kIf, l), cond(std::move(c)), then_stmt(std::move(t)),
        else_stmt(std::move(e)) {}
  ExprPtr cond;
  StmtPtr then_stmt;
  StmtPtr else_stmt;  // may be null
};

struct ForStmt final : Stmt {
  explicit ForStmt(SrcLoc l) : Stmt(StmtKind::kFor, l) {}
  StmtPtr init;   // DeclStmt or ExprStmt; may be null
  ExprPtr cond;   // may be null (treated as true)
  ExprPtr step;   // may be null
  StmtPtr body;
};

struct WhileStmt final : Stmt {
  WhileStmt(SrcLoc l, ExprPtr c, StmtPtr b)
      : Stmt(StmtKind::kWhile, l), cond(std::move(c)), body(std::move(b)) {}
  ExprPtr cond;
  StmtPtr body;
};

struct DoWhileStmt final : Stmt {
  DoWhileStmt(SrcLoc l, StmtPtr b, ExprPtr c)
      : Stmt(StmtKind::kDoWhile, l), body(std::move(b)), cond(std::move(c)) {}
  StmtPtr body;
  ExprPtr cond;
};

struct ReturnStmt final : Stmt {
  ReturnStmt(SrcLoc l, ExprPtr v)
      : Stmt(StmtKind::kReturn, l), value(std::move(v)) {}
  ExprPtr value;  // may be null
};

struct BreakStmt final : Stmt {
  explicit BreakStmt(SrcLoc l) : Stmt(StmtKind::kBreak, l) {}
};

struct ContinueStmt final : Stmt {
  explicit ContinueStmt(SrcLoc l) : Stmt(StmtKind::kContinue, l) {}
};

struct DiscardStmt final : Stmt {
  explicit DiscardStmt(SrcLoc l) : Stmt(StmtKind::kDiscard, l) {}
};

struct BlockStmt final : Stmt {
  explicit BlockStmt(SrcLoc l) : Stmt(StmtKind::kBlock, l) {}
  std::vector<StmtPtr> stmts;
};

// ---------------------------------------------------------------------------
// Translation unit
// ---------------------------------------------------------------------------

struct TranslationUnit {
  std::vector<std::unique_ptr<VarDecl>> globals;
  std::vector<std::unique_ptr<FunctionDecl>> functions;
  std::vector<PrecisionDecl> default_precisions;
};

}  // namespace mgpu::glsl

#endif  // MGPU_GLSL_AST_H_
