// Compiled shader representation shared by the semantic analyzer, the
// interpreter and the gles2 program linker.
#ifndef MGPU_GLSL_SHADER_H_
#define MGPU_GLSL_SHADER_H_

#include <memory>
#include <string>
#include <vector>

#include "glsl/ast.h"
#include "glsl/type.h"

namespace mgpu::glsl {

// Implementation-defined limits, advertised through glGet* and enforced at
// compile time. Defaults model a VideoCore IV class driver.
struct Limits {
  int max_vertex_attribs = 8;
  int max_varying_vectors = 8;
  int max_vertex_uniform_vectors = 128;
  int max_fragment_uniform_vectors = 64;
  int max_draw_buffers = 1;  // ES 2.0: a single fragment output (challenge 8)
  int max_texture_image_units = 8;
  int max_vertex_texture_image_units = 8;
  // When false (Mali-400 class hardware, paper §IV-E footnote 1), `highp
  // float` is unsupported in the fragment language and downgraded.
  bool fragment_highp_float = true;
};

// Number of vec4-equivalent registers a type occupies (used for the
// attribute/varying/uniform limit checks).
[[nodiscard]] int Vec4Slots(const Type& t);

struct CompiledShader {
  Stage stage = Stage::kFragment;
  int version = 100;
  Limits limits;
  std::unique_ptr<TranslationUnit> tu;
  // gl_* variables synthesized during analysis; they occupy global slots
  // exactly like user globals.
  std::vector<std::unique_ptr<VarDecl>> builtin_vars;
  // Slot-ordered view over all globals (builtins first, then user globals).
  std::vector<VarDecl*> globals;
  const FunctionDecl* main = nullptr;

  [[nodiscard]] const VarDecl* FindGlobal(const std::string& name) const {
    for (const VarDecl* g : globals) {
      if (g->name == name) return g;
    }
    return nullptr;
  }
};

}  // namespace mgpu::glsl

#endif  // MGPU_GLSL_SHADER_H_
