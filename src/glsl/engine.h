// Common interface of the two shader execution engines: the tree-walking
// ShaderExec (reference oracle) and the bytecode VmExec (default fast path).
// The gles2 draw pipeline and the compute dispatcher program against this
// interface so the engine is switchable per context.
#ifndef MGPU_GLSL_ENGINE_H_
#define MGPU_GLSL_ENGINE_H_

#include <string>

#include "glsl/builtins.h"
#include "glsl/evalcore.h"
#include "glsl/value.h"

namespace mgpu::glsl {

class ShaderEngine {
 public:
  virtual ~ShaderEngine() = default;

  // Executes main(). Returns false if the invocation was discarded. Throws
  // ShaderRuntimeError on conditions a real GPU would hang on.
  virtual bool Run() = 0;

  // Slot of a global (uniform, attribute, varying, gl_*); -1 when absent.
  [[nodiscard]] virtual int GlobalSlot(const std::string& name) const = 0;
  [[nodiscard]] virtual Value& GlobalAt(int slot) = 0;

  // Texture fetch callback, installed by the gles2 draw pipeline.
  virtual void SetTextureFn(TextureFn fn) = 0;
};

}  // namespace mgpu::glsl

#endif  // MGPU_GLSL_ENGINE_H_
