// The GLSL ES 1.00 type system (spec section 4.1): scalars, vectors,
// matrices, samplers and constant-size arrays thereof. Structs are not
// supported by this implementation (documented subset; the GPGPU framework
// never emits them).
#ifndef MGPU_GLSL_TYPE_H_
#define MGPU_GLSL_TYPE_H_

#include <string>

namespace mgpu::glsl {

enum class Stage { kVertex, kFragment };

enum class BaseType : unsigned char {
  kVoid,
  kBool,
  kInt,
  kFloat,
  kBVec2,
  kBVec3,
  kBVec4,
  kIVec2,
  kIVec3,
  kIVec4,
  kVec2,
  kVec3,
  kVec4,
  kMat2,
  kMat3,
  kMat4,
  kSampler2D,
  kSamplerCube,
};

enum class Precision : unsigned char { kNone, kLow, kMedium, kHigh };

// Scalar component count of a base type (mat3 -> 9). Samplers count as 1.
[[nodiscard]] int ComponentCount(BaseType t);
// The scalar category: Float for vec*/mat*, Int for ivec*, Bool for bvec*.
[[nodiscard]] BaseType ScalarOf(BaseType t);
[[nodiscard]] bool IsScalar(BaseType t);
[[nodiscard]] bool IsVector(BaseType t);
[[nodiscard]] bool IsMatrix(BaseType t);
[[nodiscard]] bool IsSampler(BaseType t);
[[nodiscard]] bool IsNumeric(BaseType t);  // int/float scalar or vector/matrix
[[nodiscard]] bool IsFloatFamily(BaseType t);
// Rows of a vector (vec3 -> 3) or of a matrix column (mat3 -> 3); 1 for
// scalars.
[[nodiscard]] int RowCount(BaseType t);
// Columns of a matrix (mat3 -> 3); 1 otherwise.
[[nodiscard]] int ColumnCount(BaseType t);
// Builds the vector (or scalar, when n == 1) type with the given scalar kind.
[[nodiscard]] BaseType VectorOf(BaseType scalar, int n);
// The type of a matrix column: mat3 -> vec3.
[[nodiscard]] BaseType ColumnTypeOf(BaseType mat);
[[nodiscard]] const char* BaseTypeName(BaseType t);

constexpr int kNotArray = -1;

struct Type {
  BaseType base = BaseType::kVoid;
  int array_size = kNotArray;  // kNotArray for non-array types

  [[nodiscard]] bool IsArray() const { return array_size != kNotArray; }
  // Total scalar cells occupied by a value of this type.
  [[nodiscard]] int CellCount() const {
    return ComponentCount(base) * (IsArray() ? array_size : 1);
  }
  [[nodiscard]] Type ElementType() const { return Type{base, kNotArray}; }
  [[nodiscard]] std::string ToString() const;

  friend bool operator==(const Type&, const Type&) = default;
};

[[nodiscard]] inline Type MakeType(BaseType b) { return Type{b, kNotArray}; }

}  // namespace mgpu::glsl

#endif  // MGPU_GLSL_TYPE_H_
