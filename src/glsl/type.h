// The GLSL ES 1.00 type system (spec section 4.1): scalars, vectors,
// matrices, samplers and constant-size arrays thereof. Structs are not
// supported by this implementation (documented subset; the GPGPU framework
// never emits them).
#ifndef MGPU_GLSL_TYPE_H_
#define MGPU_GLSL_TYPE_H_

#include <string>

namespace mgpu::glsl {

enum class Stage { kVertex, kFragment };

enum class BaseType : unsigned char {
  kVoid,
  kBool,
  kInt,
  kFloat,
  kBVec2,
  kBVec3,
  kBVec4,
  kIVec2,
  kIVec3,
  kIVec4,
  kVec2,
  kVec3,
  kVec4,
  kMat2,
  kMat3,
  kMat4,
  kSampler2D,
  kSamplerCube,
};

enum class Precision : unsigned char { kNone, kLow, kMedium, kHigh };

// The classification predicates below sit on the shader-engine hot path
// (consulted once or more per VM instruction), so they are inline constexpr
// table lookups / range checks over the contiguous BaseType enum.
namespace type_detail {
inline constexpr int kComponentCounts[] = {
    0,  // kVoid
    1, 1, 1,     // kBool, kInt, kFloat
    2, 3, 4,     // kBVec2..kBVec4
    2, 3, 4,     // kIVec2..kIVec4
    2, 3, 4,     // kVec2..kVec4
    4, 9, 16,    // kMat2..kMat4
    1, 1,        // kSampler2D, kSamplerCube
};
inline constexpr BaseType kScalarOf[] = {
    BaseType::kVoid,
    BaseType::kBool, BaseType::kInt, BaseType::kFloat,
    BaseType::kBool, BaseType::kBool, BaseType::kBool,
    BaseType::kInt, BaseType::kInt, BaseType::kInt,
    BaseType::kFloat, BaseType::kFloat, BaseType::kFloat,
    BaseType::kFloat, BaseType::kFloat, BaseType::kFloat,
    BaseType::kSampler2D, BaseType::kSamplerCube,
};
}  // namespace type_detail

// Scalar component count of a base type (mat3 -> 9). Samplers count as 1.
[[nodiscard]] constexpr int ComponentCount(BaseType t) {
  return type_detail::kComponentCounts[static_cast<int>(t)];
}
// The scalar category: Float for vec*/mat*, Int for ivec*, Bool for bvec*.
[[nodiscard]] constexpr BaseType ScalarOf(BaseType t) {
  return type_detail::kScalarOf[static_cast<int>(t)];
}
[[nodiscard]] constexpr bool IsScalar(BaseType t) {
  return t == BaseType::kBool || t == BaseType::kInt || t == BaseType::kFloat;
}
[[nodiscard]] constexpr bool IsVector(BaseType t) {
  return t >= BaseType::kBVec2 && t <= BaseType::kVec4;
}
[[nodiscard]] constexpr bool IsMatrix(BaseType t) {
  return t >= BaseType::kMat2 && t <= BaseType::kMat4;
}
[[nodiscard]] constexpr bool IsSampler(BaseType t) {
  return t == BaseType::kSampler2D || t == BaseType::kSamplerCube;
}
// int/float scalar or vector/matrix
[[nodiscard]] constexpr bool IsNumeric(BaseType t) {
  if (t == BaseType::kVoid || IsSampler(t)) return false;
  return ScalarOf(t) != BaseType::kBool;
}
[[nodiscard]] constexpr bool IsFloatFamily(BaseType t) {
  return !IsSampler(t) && t != BaseType::kVoid &&
         ScalarOf(t) == BaseType::kFloat;
}
// Rows of a vector (vec3 -> 3) or of a matrix column (mat3 -> 3); 1 for
// scalars.
[[nodiscard]] constexpr int RowCount(BaseType t) {
  if (IsMatrix(t)) {
    return t == BaseType::kMat2 ? 2 : (t == BaseType::kMat3 ? 3 : 4);
  }
  if (IsVector(t)) return ComponentCount(t);
  return 1;
}
// Columns of a matrix (mat3 -> 3); 1 otherwise.
[[nodiscard]] constexpr int ColumnCount(BaseType t) {
  if (!IsMatrix(t)) return 1;
  return t == BaseType::kMat2 ? 2 : (t == BaseType::kMat3 ? 3 : 4);
}
// Builds the vector (or scalar, when n == 1) type with the given scalar kind.
[[nodiscard]] BaseType VectorOf(BaseType scalar, int n);
// The type of a matrix column: mat3 -> vec3.
[[nodiscard]] BaseType ColumnTypeOf(BaseType mat);
[[nodiscard]] const char* BaseTypeName(BaseType t);

constexpr int kNotArray = -1;

struct Type {
  BaseType base = BaseType::kVoid;
  int array_size = kNotArray;  // kNotArray for non-array types

  [[nodiscard]] bool IsArray() const { return array_size != kNotArray; }
  // Total scalar cells occupied by a value of this type.
  [[nodiscard]] int CellCount() const {
    return ComponentCount(base) * (IsArray() ? array_size : 1);
  }
  [[nodiscard]] Type ElementType() const { return Type{base, kNotArray}; }
  [[nodiscard]] std::string ToString() const;

  friend bool operator==(const Type&, const Type&) = default;
};

[[nodiscard]] inline Type MakeType(BaseType b) { return Type{b, kNotArray}; }

}  // namespace mgpu::glsl

#endif  // MGPU_GLSL_TYPE_H_
