#include "glsl/vm.h"

#include <array>
#include <bit>
#include <cstring>
#include <utility>

#include "common/fault.h"

namespace mgpu::glsl {
namespace {

// Same budget (and messages) as the tree-walking interpreter. The loop
// budget itself is a member (loop_budget_, default kDefaultLoopBudget) so
// tests can trip the trap path without 100M iterations.
constexpr int kMaxCallDepth = 64;

constexpr char kLoopBudgetMsg[] =
    "shader exceeded the loop iteration budget (a real GPU would hang or be "
    "reset here)";
constexpr char kCallDepthMsg[] = "shader call depth exceeded";
// Message of the kVmInstruction fault site (fires at a guarded step).
constexpr char kInjectedTrapMsg[] = "injected fault: shader trap";

// Lane iteration policies for the batched executors. LaneRange is the
// lockstep case (all lanes [0, n) active); LaneMask iterates the set bits
// of a divergence mask. Mask() feeds the whole-instruction SoA kernels
// (evalcore/builtins), which take the lane set as a bitmask.
struct LaneRange {
  int n;
  template <typename F>
  void ForEach(F&& f) const {
    for (int l = 0; l < n; ++l) f(l);
  }
  [[nodiscard]] std::uint32_t Mask() const {
    return n >= 32 ? ~0u : (1u << static_cast<unsigned>(n)) - 1u;
  }
};
struct LaneMask {
  std::uint32_t bits;
  // Forwards to evalcore's ForEachLane so there is exactly one definition
  // of the (count-parity-load-bearing) lane iteration order.
  template <typename F>
  void ForEach(F&& f) const {
    ForEachLane(bits, std::forward<F>(f));
  }
  [[nodiscard]] std::uint32_t Mask() const { return bits; }
};

// Resolved batch operand (evalcore's strided view): a base pointer plus a
// lane stride — 1 for per-lane planes (registers, lane-varying globals), 0
// for storage shared by every lane (constants, uniforms and other
// lane-invariant globals). Keeping resolution out of the lane loop is the
// point of batching: the scalar engine re-decodes operands once per
// fragment per instruction.
using LaneSrc = BatchSrc;
using LaneDst = BatchDst;

// The one place operands resolve to lane views — value ops and branch
// conditions in both executors go through the same space dispatch, so the
// encodings cannot drift apart. Built per executor entry from the engine's
// storage base pointers (none of the vectors resize during execution).
struct LaneViews {
  Value* lane_regs;
  Value* lane_globals;
  Value* globals;
  const Value* consts;
  const std::int32_t* lane_global_index;

  [[nodiscard]] LaneSrc Read(std::uint32_t operand) const {
    const std::uint32_t idx = operand & kOperandIndexMask;
    switch (operand & ~kOperandIndexMask) {
      case kSpaceReg:
        return {&lane_regs[static_cast<std::size_t>(idx) * kVmLanes], 1};
      case kSpaceGlobal: {
        const std::int32_t lg = lane_global_index[idx];
        return lg >= 0
                   ? LaneSrc{&lane_globals[static_cast<std::size_t>(lg) *
                                           kVmLanes],
                             1}
                   : LaneSrc{&globals[idx], 0};
      }
      default:
        return {&consts[idx], 0};
    }
  }
  // Destination view. A lane-invariant global destination (possible only
  // when every lane would store the same value) resolves to stride 0 —
  // last lane wins, identical to the scalar engine storing it once per
  // fragment.
  [[nodiscard]] LaneDst Dst(std::uint32_t operand) const {
    const std::uint32_t idx = operand & kOperandIndexMask;
    if ((operand & ~kOperandIndexMask) == kSpaceReg) {
      return {&lane_regs[static_cast<std::size_t>(idx) * kVmLanes], 1};
    }
    const std::int32_t lg = lane_global_index[idx];
    return lg >= 0 ? LaneDst{&lane_globals[static_cast<std::size_t>(lg) *
                                           kVmLanes],
                             1}
                   : LaneDst{&globals[idx], 0};
  }
};

}  // namespace

VmExec::VmExec(std::shared_ptr<const VmProgram> program, AluModel& alu)
    : prog_(std::move(program)), alu_(alu) {
  globals_.reserve(prog_->globals.size());
  for (const VmGlobal& g : prog_->globals) globals_.emplace_back(g.type);
  regs_.reserve(prog_->reg_types.size());
  for (const Type& t : prog_->reg_types) regs_.emplace_back(t);
  refs_.resize(prog_->ref_slot_count);

  // One-time global initialization (consts and initial values of plain
  // globals). The oracle counts this work at its own construction, so the
  // counter snapshot keeps link-time totals unchanged when both engines are
  // instantiated side by side.
  const OpCounts saved = alu_.counts();
  loop_steps_ = 0;
  (void)Execute(prog_->const_init_entry);
  alu_.SetCounts(saved);
}

VmExec::VmExec(const VmExec& base, AluModel& alu)
    : prog_(base.prog_), alu_(alu), globals_(base.globals_),
      regs_(base.regs_), loop_budget_(base.loop_budget_),
      simd_level_(base.simd_level_) {
  // Refs are rebuilt before use by every invocation; fresh ones avoid
  // aliasing the base engine's storage.
  refs_.resize(prog_->ref_slot_count);
}

void VmExec::SyncGlobalsFrom(const VmExec& base) {
  if (prog_.get() != base.prog_.get() ||
      globals_.size() != base.globals_.size()) {
    // Layout mismatch: fall back to a full re-clone of the global store
    // (never hit through the shade-state cache, which is invalidated on
    // relink; kept so direct callers cannot corrupt the register file).
    prog_ = base.prog_;
    globals_ = base.globals_;
    regs_ = base.regs_;
    refs_.resize(prog_->ref_slot_count);
    // The per-lane planes were sized and typed for the old program.
    batch_ready_ = false;
    lane_regs_.clear();
    lane_globals_.clear();
    lane_refs_.clear();
    // A compiled module is specific to the old program, and the operand
    // table pointed into the old planes/global store.
    jit_.reset();
    jit_tbl_ready_ = false;
    return;
  }
  // Element-wise copy-assign: Value reuses its existing cell storage when
  // the layout matches, so this is a flat copy with no allocation — the
  // cheap per-draw path the shade-state cache relies on.
  for (std::size_t i = 0; i < globals_.size(); ++i) {
    globals_[i] = base.globals_[i];
  }
}

bool VmExec::Run() {
  loop_steps_ = 0;
  return Execute(prog_->run_entry);
}

bool VmExec::Execute(std::uint32_t pc) {
  const VmInst* const code = prog_->code.data();
  const std::uint32_t* const arg_ops = prog_->arg_ops.data();
  // Local copies of the storage base pointers: none of these vectors are
  // resized during execution, and keeping them in locals lets the compiler
  // hold them in registers across the opaque Eval* calls (the member-based
  // At()/Read() would be reloaded after every call).
  Value* const regs = regs_.data();
  Value* const globals = globals_.data();
  const Value* const consts = prog_->consts.data();
  const auto At = [regs, globals](std::uint32_t operand) -> Value& {
    const std::uint32_t idx = operand & kOperandIndexMask;
    return (operand & ~kOperandIndexMask) == kSpaceReg ? regs[idx]
                                                       : globals[idx];
  };
  const auto Read = [regs, globals,
                     consts](std::uint32_t operand) -> const Value& {
    const std::uint32_t idx = operand & kOperandIndexMask;
    switch (operand & ~kOperandIndexMask) {
      case kSpaceReg: return regs[idx];
      case kSpaceGlobal: return globals[idx];
      default: return consts[idx];
    }
  };
  // One extra slot: the run chunk's call into main occupies the stack but
  // does not count against the interpreter's user-call depth limit.
  std::array<std::uint32_t, kMaxCallDepth + 1> ret_stack;
  int sp = 0;

  while (true) {
    const VmInst& in = code[pc];
    switch (in.op) {
      case VmOp::kCopy: {
        Value& d = At(in.dst);
        const Value& s = Read(in.a);
        const int n = d.count();
        if (n <= 4) {
          for (int k = 0; k < n; ++k) d.data()[k] = s.data()[k];
        } else {
          std::memmove(d.data(), s.data(),
                       static_cast<std::size_t>(n) * sizeof(Cell));
        }
        break;
      }
      case VmOp::kZero: {
        Value& d = At(in.dst);
        const int n = d.count();
        if (n <= 4) {
          for (int k = 0; k < n; ++k) d.data()[k].i = 0;
        } else {
          std::memset(d.data(), 0,
                      static_cast<std::size_t>(n) * sizeof(Cell));
        }
        break;
      }
      case VmOp::kShuffle: {
        Value& d = At(in.dst);
        const Value& s = Read(in.a);
        for (int k = 0; k < in.n; ++k) {
          d.data()[k] = s.data()[(in.aux >> (8 * k)) & 0xffu];
        }
        break;
      }
      case VmOp::kExtract: {
        IndexStep step;
        step.limit = static_cast<int>(in.aux);
        step.elem_cells = in.n;
        EvalExtractInto(Read(in.a), step, Read(in.b).I(0), At(in.dst));
        break;
      }
      case VmOp::kArith:
        EvalArithInto(alu_, static_cast<BinOp>(in.u8), Read(in.a), Read(in.b),
                      At(in.dst));
        break;
      case VmOp::kNeg:
        EvalNegInto(alu_, Read(in.a), At(in.dst));
        break;
      case VmOp::kNot:
        EvalNotInto(alu_, Read(in.a), At(in.dst));
        break;
      case VmOp::kXor:
        At(in.dst).SetB(0, Read(in.a).B(0) != Read(in.b).B(0));
        break;
      case VmOp::kBoolNorm:
        At(in.dst).SetB(0, Read(in.a).B(0));
        break;
      case VmOp::kCtor: {
        std::array<const Value*, 16> ptrs;
        for (int i = 0; i < in.n; ++i) ptrs[i] = &Read(arg_ops[in.aux + i]);
        Value& d = At(in.dst);
        // Fresh-value semantics: the interpreter constructs into a zeroed
        // Value; clear so partially-covering (malformed) ctors still match.
        std::memset(d.data(), 0,
                    static_cast<std::size_t>(d.count()) * sizeof(Cell));
        EvalCtorInto(alu_,
                     std::span<const Value* const>(ptrs.data(), in.n), d);
        break;
      }
      case VmOp::kBuiltin: {
        std::array<const Value*, kMaxBuiltinArgs> ptrs;
        for (int i = 0; i < in.n; ++i) ptrs[i] = &Read(arg_ops[in.aux + i]);
        EvalBuiltinInto(static_cast<Builtin>(in.u8), in.type,
                        std::span<const Value* const>(ptrs.data(), in.n),
                        alu_, texture_, At(in.dst));
        break;
      }
      case VmOp::kJump:
        pc = in.aux;
        continue;
      case VmOp::kJumpIfFalse:
        if (!Read(in.a).B(0)) {
          pc = in.aux;
          continue;
        }
        break;
      case VmOp::kJumpIfTrue:
        if (Read(in.a).B(0)) {
          pc = in.aux;
          continue;
        }
        break;
      case VmOp::kLoopGuard:
        if (fault::ShouldFail(fault::Site::kVmInstruction)) {
          throw ShaderRuntimeError(kInjectedTrapMsg);
        }
        if (++loop_steps_ > loop_budget_) {
          throw ShaderRuntimeError(kLoopBudgetMsg);
        }
        break;
      case VmOp::kCall:
        if (sp > kMaxCallDepth) {
          throw ShaderRuntimeError(kCallDepthMsg);
        }
        ret_stack[static_cast<std::size_t>(sp++)] = pc + 1;
        pc = prog_->functions[in.aux].entry;
        continue;
      case VmOp::kRet:
        if (sp == 0) return true;  // main returned
        pc = ret_stack[static_cast<std::size_t>(--sp)];
        continue;
      case VmOp::kDiscard:
        return false;
      case VmOp::kHalt:
        return true;
      case VmOp::kTrap:
        throw ShaderRuntimeError(prog_->messages[in.aux]);
      case VmOp::kRefVar:
        refs_[in.dst] = RefWhole(At(in.a), in.type);
        break;
      case VmOp::kRefIndex: {
        IndexStep step;
        step.limit = static_cast<int>(in.aux);
        step.elem_cells = in.n;
        step.elem_type = in.type;
        refs_[in.dst] = RefIndex(refs_[in.a], step, Read(in.b).I(0));
        break;
      }
      case VmOp::kRefSwizzle: {
        std::array<std::uint8_t, 4> comps{};
        for (int k = 0; k < in.n; ++k) {
          comps[static_cast<std::size_t>(k)] =
              static_cast<std::uint8_t>((in.aux >> (8 * k)) & 0xffu);
        }
        refs_[in.dst] = RefSwizzle(refs_[in.a], in.type, comps.data(), in.n);
        break;
      }
      case VmOp::kReadRef:
        ReadRefInto(refs_[in.a], At(in.dst));
        break;
      case VmOp::kWriteRef:
        WriteRef(refs_[in.dst], Read(in.a));
        break;
      case VmOp::kIncDec:
        EvalIncDecInto(alu_, refs_[in.a], (in.u8 & 1) != 0, (in.u8 & 2) != 0,
                       At(in.dst));
        break;
      case VmOp::kIncDecVar:
        EvalIncDecVar(alu_, At(in.a), (in.u8 & 1) != 0, (in.u8 & 2) != 0,
                      At(in.dst));
        break;
    }
    ++pc;
  }
}

// ---------------------------------------------------------------------------
// Lane-batched (SoA) execution
// ---------------------------------------------------------------------------

void VmExec::EnsureBatchState() {
  if (batch_ready_) return;
  const std::size_t n_regs = prog_->reg_types.size();
  lane_regs_.clear();
  lane_regs_.reserve(n_regs * kVmLanes);
  for (const Type& t : prog_->reg_types) {
    for (int l = 0; l < kVmLanes; ++l) lane_regs_.emplace_back(t);
  }
  // Per-lane globals start as copies of the shared store, which at this
  // point holds the const-init results and current uniforms. Globals the
  // run chunk re-initializes are overwritten per batch anyway; const tables
  // that user code may write keep their correct initial value per lane.
  lane_globals_.clear();
  lane_globals_.reserve(
      static_cast<std::size_t>(prog_->lane_global_count) * kVmLanes);
  for (std::size_t g = 0; g < prog_->globals.size(); ++g) {
    if (prog_->lane_global_index[g] < 0) continue;
    for (int l = 0; l < kVmLanes; ++l) lane_globals_.push_back(globals_[g]);
  }
  lane_refs_.assign(
      static_cast<std::size_t>(prog_->ref_slot_count) * kVmLanes, LRef{});
  lane_ret_stack_.assign(
      static_cast<std::size_t>(kVmLanes) * (kMaxCallDepth + 1), 0);
  batch_ready_ = true;
  // The lane planes were (re)allocated: any cached jit operand table points
  // at the old storage.
  jit_tbl_ready_ = false;
}

Value& VmExec::LaneGlobalAt(int slot, int lane) {
  EnsureBatchState();
  const std::int32_t lg =
      prog_->lane_global_index[static_cast<std::size_t>(slot)];
  return lg >= 0 ? lane_globals_[static_cast<std::size_t>(lg) * kVmLanes +
                                 static_cast<std::size_t>(lane)]
                 : globals_[static_cast<std::size_t>(slot)];
}

std::uint32_t VmExec::RunBatch(int n) {
  if (n <= 0) return 0;
  EnsureBatchState();
  // Effective SIMD tier for this batch: the vector kernels are only
  // bit-identical when Add/Sub/Mul are plain IEEE ops plus a counter, i.e.
  // under round-identity models (see simd.h); everything else runs the
  // scalar SoA kernels regardless of the configured tier.
  batch_simd_ = alu_.round_identity() ? simd_level_ : simd::Level::kScalar;
  // Compiled engine: uniform-control-flow batches enter the native module;
  // divergent programs (for which CompileProgram returns no module anyway)
  // always run the masked interpreter.
  if (jit_ != nullptr && prog_->uniform_control_flow) return RunBatchJit(n);
  return prog_->uniform_control_flow ? ExecuteBatchUniform(n)
                                     : ExecuteBatchDivergent(n);
}

// ---------------------------------------------------------------------------
// Compiled-module execution (ExecEngine::kCompiled; see glsl/jit.h)
// ---------------------------------------------------------------------------

// The generated code addresses per-lane planes as base + lane * VS cells.
static_assert(sizeof(Value) % sizeof(Cell) == 0,
              "Value stride must be a whole number of cells");

std::uint32_t VmExec::RunBatchJit(int n) {
  if (!jit_tbl_ready_) {
    // Resolve the module's operand words to cell base pointers — the same
    // space dispatch as LaneViews, snapshotted once per plane (re)build:
    // none of the backing vectors resize during batched execution, and
    // Value cell storage is stable (inline for per-lane operands by the
    // codegen's Addressable contract; heap vectors keep their buffer on
    // same-layout copy-assign for shared ones).
    const auto& table_ops = jit_->table_ops();
    jit_tbl_.clear();
    jit_tbl_.reserve(table_ops.size());
    for (const std::uint32_t operand : table_ops) {
      const std::uint32_t idx = operand & kOperandIndexMask;
      switch (operand & ~kOperandIndexMask) {
        case kSpaceReg:
          jit_tbl_.push_back(
              lane_regs_[static_cast<std::size_t>(idx) * kVmLanes].data());
          break;
        case kSpaceGlobal: {
          const std::int32_t lg = prog_->lane_global_index[idx];
          jit_tbl_.push_back(
              lg >= 0
                  ? lane_globals_[static_cast<std::size_t>(lg) * kVmLanes]
                        .data()
                  : globals_[idx].data());
          break;
        }
        default:
          jit_tbl_.push_back(
              const_cast<Cell*>(prog_->consts[idx].data()));
          break;
      }
    }
    jit_tbl_ready_ = true;
  }

  loop_steps_ = 0;
  jit_batch_n_ = n;
  jit::JitEnv env;
  env.host = this;
  env.tbl = jit_tbl_.data();
  env.n = n;
  env.vs = static_cast<long>(sizeof(Value) / sizeof(Cell));
  env.ri = alu_.round_identity() ? 1 : 0;
  env.exec_op = &VmExec::JitExecOp;
  env.guard = &VmExec::JitGuard;
  env.depth_trap = &VmExec::JitDepthTrap;
  env.trap = &VmExec::JitTrap;
  env.count_alu = &VmExec::JitCountAlu;
  const int rc = jit_->entry()(&env);
  const std::uint32_t full =
      n >= 32 ? ~0u : ((1u << static_cast<unsigned>(n)) - 1u);
  if (rc == 1) return full;
  if (rc == 0) return 0;
  throw ShaderRuntimeError(
      "internal error: compiled shader returned an unexpected status");
}

// Replays one punted instruction through the batch interpreter — identical
// by construction, since it is the code path the pure interpreter runs.
void VmExec::JitExecOp(void* host, int pc) {
  auto* self = static_cast<VmExec*>(host);
  self->ExecBatchOp(self->prog_->code[static_cast<std::size_t>(pc)],
                    LaneRange{self->jit_batch_n_});
}

// kLoopGuard, verbatim from ExecuteBatchUniform: uniform control flow traps
// every lane on the same step, so the attributed lane is always 0.
void VmExec::JitGuard(void* host) {
  auto* self = static_cast<VmExec*>(host);
  if (fault::ShouldFail(fault::Site::kVmInstruction)) {
    throw ShaderRuntimeError(kInjectedTrapMsg, /*trap_lane=*/0);
  }
  if (++self->loop_steps_ > self->loop_budget_) {
    throw ShaderRuntimeError(kLoopBudgetMsg, /*trap_lane=*/0);
  }
}

void VmExec::JitDepthTrap(void* host) {
  (void)host;
  throw ShaderRuntimeError(kCallDepthMsg, /*trap_lane=*/0);
}

void VmExec::JitTrap(void* host, int msg_index) {
  auto* self = static_cast<VmExec*>(host);
  throw ShaderRuntimeError(
      self->prog_->messages[static_cast<std::size_t>(msg_index)],
      /*trap_lane=*/0);
}

void VmExec::JitCountAlu(void* host, unsigned long long ops) {
  static_cast<VmExec*>(host)->alu_.CountAlu(ops);
}

template <typename Lanes>
void VmExec::ExecBatchOp(const VmInst& in, const Lanes& lanes) {
  // Operand resolution, hoisted out of the lane loop.
  const LaneViews views{lane_regs_.data(), lane_globals_.data(),
                        globals_.data(), prog_->consts.data(),
                        prog_->lane_global_index.data()};
  const auto dst = [&views](std::uint32_t operand) { return views.Dst(operand); };
  const auto read = [&views](std::uint32_t operand) {
    return views.Read(operand);
  };
  const auto ref_at = [this](std::uint32_t slot, int lane) -> LRef& {
    return lane_refs_[static_cast<std::size_t>(slot) * kVmLanes +
                      static_cast<std::size_t>(lane)];
  };

  switch (in.op) {
    case VmOp::kCopy: {
      const LaneDst d = dst(in.dst);
      const LaneSrc s = read(in.a);
      const int cells = d.base->count();
      lanes.ForEach([&](int l) {
        Cell* dc = d.at(l).data();
        const Cell* sc = s.at(l).data();
        if (cells <= 4) {
          for (int k = 0; k < cells; ++k) dc[k] = sc[k];
        } else {
          std::memmove(dc, sc, static_cast<std::size_t>(cells) * sizeof(Cell));
        }
      });
      break;
    }
    case VmOp::kZero: {
      const LaneDst d = dst(in.dst);
      const int cells = d.base->count();
      lanes.ForEach([&](int l) {
        Cell* dc = d.at(l).data();
        if (cells <= 4) {
          for (int k = 0; k < cells; ++k) dc[k].i = 0;
        } else {
          std::memset(dc, 0, static_cast<std::size_t>(cells) * sizeof(Cell));
        }
      });
      break;
    }
    case VmOp::kShuffle: {
      const LaneDst d = dst(in.dst);
      const LaneSrc s = read(in.a);
      lanes.ForEach([&](int l) {
        Cell* dc = d.at(l).data();
        const Cell* sc = s.at(l).data();
        for (int k = 0; k < in.n; ++k) {
          dc[k] = sc[(in.aux >> (8 * k)) & 0xffu];
        }
      });
      break;
    }
    case VmOp::kExtract: {
      IndexStep step;
      step.limit = static_cast<int>(in.aux);
      step.elem_cells = in.n;
      const LaneDst d = dst(in.dst);
      const LaneSrc a = read(in.a);
      const LaneSrc b = read(in.b);
      lanes.ForEach([&](int l) {
        EvalExtractInto(a.at(l), step, b.at(l).I(0), d.at(l));
      });
      break;
    }
    case VmOp::kArith: {
      const LaneDst d = dst(in.dst);
      const LaneSrc a = read(in.a);
      const LaneSrc b = read(in.b);
      const BinOp op = static_cast<BinOp>(in.u8);
      // SoA-tagged (lowering-time table lookup): one whole-instruction
      // kernel call — shape/op dispatch once, then tight lane loops
      // through the same AluModel entry points (and therefore the same
      // counts and rounding) as a per-lane EvalArithInto sequence. The
      // untagged remainder (linear-algebra multiplies) replays per lane.
      // Tag value 2 marks the float vector fast path additionally
      // SIMD-eligible; the live lane mask drives the kernel's loads and
      // stores either way, so the masked-divergent executor vectorizes
      // exactly its live lanes.
      if (in.soa != 0) {
        if (in.soa == 2 && batch_simd_ != simd::Level::kScalar) {
          EvalArithBatchSimd(alu_, op, a, b, d, lanes.Mask(), batch_simd_);
        } else {
          EvalArithBatch(alu_, op, a, b, d, lanes.Mask());
        }
        break;
      }
      lanes.ForEach([&](int l) {
        EvalArithInto(alu_, op, a.at(l), b.at(l), d.at(l));
      });
      break;
    }
    case VmOp::kNeg: {
      if (in.soa == 2 && batch_simd_ != simd::Level::kScalar) {
        EvalNegBatchSimd(alu_, read(in.a), dst(in.dst), lanes.Mask(),
                         batch_simd_);
      } else {
        EvalNegBatch(alu_, read(in.a), dst(in.dst), lanes.Mask());
      }
      break;
    }
    case VmOp::kNot: {
      EvalNotBatch(alu_, read(in.a), dst(in.dst), lanes.Mask());
      break;
    }
    case VmOp::kXor: {
      const LaneDst d = dst(in.dst);
      const LaneSrc a = read(in.a);
      const LaneSrc b = read(in.b);
      lanes.ForEach([&](int l) {
        d.at(l).SetB(0, a.at(l).B(0) != b.at(l).B(0));
      });
      break;
    }
    case VmOp::kBoolNorm: {
      const LaneDst d = dst(in.dst);
      const LaneSrc a = read(in.a);
      lanes.ForEach([&](int l) { d.at(l).SetB(0, a.at(l).B(0)); });
      break;
    }
    case VmOp::kCtor: {
      const LaneDst d = dst(in.dst);
      std::array<LaneSrc, 16> av;
      for (int i = 0; i < in.n; ++i) {
        av[static_cast<std::size_t>(i)] =
            read(prog_->arg_ops[in.aux + static_cast<std::uint32_t>(i)]);
      }
      // SoA-tagged (scalar/vector targets): whole-instruction kernel with
      // the shape analysis and the fresh-value clear hoisted per batch.
      // Tag 2 = all-float vector gather, additionally SIMD-eligible.
      if (in.soa != 0) {
        if (in.soa == 2 && batch_simd_ != simd::Level::kScalar) {
          EvalCtorBatchSimd(alu_, std::span<const LaneSrc>(av.data(), in.n),
                            d, lanes.Mask(), batch_simd_);
        } else {
          EvalCtorBatch(alu_, std::span<const LaneSrc>(av.data(), in.n), d,
                        lanes.Mask());
        }
        break;
      }
      const int cells = d.base->count();
      lanes.ForEach([&](int l) {
        std::array<const Value*, 16> ptrs;
        for (int i = 0; i < in.n; ++i) {
          ptrs[static_cast<std::size_t>(i)] =
              &av[static_cast<std::size_t>(i)].at(l);
        }
        Value& out = d.at(l);
        std::memset(out.data(), 0,
                    static_cast<std::size_t>(cells) * sizeof(Cell));
        EvalCtorInto(alu_,
                     std::span<const Value* const>(ptrs.data(), in.n), out);
      });
      break;
    }
    case VmOp::kBuiltin: {
      const LaneDst d = dst(in.dst);
      std::array<LaneSrc, kMaxBuiltinArgs> av;
      for (int i = 0; i < in.n; ++i) {
        av[static_cast<std::size_t>(i)] =
            read(prog_->arg_ops[in.aux + static_cast<std::uint32_t>(i)]);
      }
      // SoA-tagged (every non-texture builtin): one batch kernel call.
      // Texture builtins stay per lane so batch_lane_ tracks the lane each
      // TMU access belongs to — the gles2 context replays accesses in lane
      // order, reproducing the scalar engine's fragment-sequential cache
      // order (and tmu_miss counts) exactly.
      // Tag 2 = float-dense kernel with a vector path (abs/min/max/clamp/
      // mix/step/dot/normalize/...), additionally SIMD-eligible.
      if (in.soa != 0) {
        if (in.soa == 2 && batch_simd_ != simd::Level::kScalar) {
          EvalBuiltinBatchSimd(static_cast<Builtin>(in.u8), in.type,
                               std::span<const LaneSrc>(av.data(), in.n),
                               alu_, texture_, d, lanes.Mask(), batch_simd_);
        } else {
          EvalBuiltinBatch(static_cast<Builtin>(in.u8), in.type,
                           std::span<const LaneSrc>(av.data(), in.n), alu_,
                           texture_, d, lanes.Mask());
        }
        break;
      }
      lanes.ForEach([&](int l) {
        batch_lane_ = l;  // lane-aware texture callbacks read this
        std::array<const Value*, kMaxBuiltinArgs> ptrs;
        for (int i = 0; i < in.n; ++i) {
          ptrs[static_cast<std::size_t>(i)] =
              &av[static_cast<std::size_t>(i)].at(l);
        }
        EvalBuiltinInto(static_cast<Builtin>(in.u8), in.type,
                        std::span<const Value* const>(ptrs.data(), in.n),
                        alu_, texture_, d.at(l));
      });
      break;
    }
    case VmOp::kRefVar: {
      const LaneDst v = dst(in.a);
      lanes.ForEach([&](int l) {
        ref_at(in.dst, l) = RefWhole(v.at(l), in.type);
      });
      break;
    }
    case VmOp::kRefIndex: {
      IndexStep step;
      step.limit = static_cast<int>(in.aux);
      step.elem_cells = in.n;
      step.elem_type = in.type;
      const LaneSrc b = read(in.b);
      lanes.ForEach([&](int l) {
        ref_at(in.dst, l) = RefIndex(ref_at(in.a, l), step, b.at(l).I(0));
      });
      break;
    }
    case VmOp::kRefSwizzle: {
      std::array<std::uint8_t, 4> comps{};
      for (int k = 0; k < in.n; ++k) {
        comps[static_cast<std::size_t>(k)] =
            static_cast<std::uint8_t>((in.aux >> (8 * k)) & 0xffu);
      }
      lanes.ForEach([&](int l) {
        ref_at(in.dst, l) =
            RefSwizzle(ref_at(in.a, l), in.type, comps.data(), in.n);
      });
      break;
    }
    case VmOp::kReadRef: {
      const LaneDst d = dst(in.dst);
      lanes.ForEach([&](int l) { ReadRefInto(ref_at(in.a, l), d.at(l)); });
      break;
    }
    case VmOp::kWriteRef: {
      const LaneSrc a = read(in.a);
      lanes.ForEach([&](int l) { WriteRef(ref_at(in.dst, l), a.at(l)); });
      break;
    }
    case VmOp::kIncDec: {
      const LaneDst d = dst(in.dst);
      lanes.ForEach([&](int l) {
        EvalIncDecInto(alu_, ref_at(in.a, l), (in.u8 & 1) != 0,
                       (in.u8 & 2) != 0, d.at(l));
      });
      break;
    }
    case VmOp::kIncDecVar: {
      const LaneDst v = dst(in.a);
      const LaneDst d = dst(in.dst);
      lanes.ForEach([&](int l) {
        EvalIncDecVar(alu_, v.at(l), (in.u8 & 1) != 0, (in.u8 & 2) != 0,
                      d.at(l));
      });
      break;
    }
    default:
      break;  // control-flow ops are handled by the executor loops
  }
}

std::uint32_t VmExec::ExecuteBatchUniform(int n) {
  const VmInst* const code = prog_->code.data();
  const LaneViews views{lane_regs_.data(), lane_globals_.data(),
                        globals_.data(), prog_->consts.data(),
                        prog_->lane_global_index.data()};
  const std::uint32_t full =
      n >= 32 ? ~0u : ((1u << static_cast<unsigned>(n)) - 1u);
  std::array<std::uint32_t, kMaxCallDepth + 1> ret_stack;
  int sp = 0;
  // One budget counter stands in for every lane's: with uniform control
  // flow all lanes take identical trip counts, so the per-fragment budget
  // trips at exactly the same guard as in a scalar run.
  loop_steps_ = 0;
  std::uint32_t pc = prog_->run_entry;
  const LaneRange lanes{n};

  while (true) {
    const VmInst& in = code[pc];
    switch (in.op) {
      case VmOp::kJump:
        pc = in.aux;
        continue;
      case VmOp::kJumpIfFalse:
      case VmOp::kJumpIfTrue: {
        // Uniform-control-flow programs: the analysis guarantees every
        // active lane holds the same condition value, so lane 0 decides
        // for the batch.
        if (views.Read(in.a).at(0).B(0) == (in.op == VmOp::kJumpIfTrue)) {
          pc = in.aux;
          continue;
        }
        break;
      }
      case VmOp::kLoopGuard:
        // Traps under uniform control flow hit every lane on the same step,
        // so the minimum trapping lane is always lane 0.
        if (fault::ShouldFail(fault::Site::kVmInstruction)) {
          throw ShaderRuntimeError(kInjectedTrapMsg, /*trap_lane=*/0);
        }
        if (++loop_steps_ > loop_budget_) {
          throw ShaderRuntimeError(kLoopBudgetMsg, /*trap_lane=*/0);
        }
        break;
      case VmOp::kCall:
        if (sp > kMaxCallDepth) {
          throw ShaderRuntimeError(kCallDepthMsg, /*trap_lane=*/0);
        }
        ret_stack[static_cast<std::size_t>(sp++)] = pc + 1;
        pc = prog_->functions[in.aux].entry;
        continue;
      case VmOp::kRet:
        if (sp == 0) return full;  // main returned for every lane
        pc = ret_stack[static_cast<std::size_t>(--sp)];
        continue;
      case VmOp::kDiscard:
        return 0;  // all lanes reached it together
      case VmOp::kHalt:
        return full;
      case VmOp::kTrap:
        throw ShaderRuntimeError(prog_->messages[in.aux], /*trap_lane=*/0);
      default:
        ExecBatchOp(in, lanes);
        break;
    }
    ++pc;
  }
}

std::uint32_t VmExec::ExecuteBatchDivergent(int n) {
  const VmInst* const code = prog_->code.data();
  const std::uint32_t full =
      n >= 32 ? ~0u : ((1u << static_cast<unsigned>(n)) - 1u);
  constexpr std::size_t kStackStride = kMaxCallDepth + 1;
  for (int l = 0; l < n; ++l) {
    lane_pc_[static_cast<std::size_t>(l)] = prog_->run_entry;
    lane_sp_[static_cast<std::size_t>(l)] = 0;
    lane_steps_[static_cast<std::size_t>(l)] = 0;
  }
  std::uint32_t running = full;
  std::uint32_t kept = full;

  // Pending-trap state. A trapping lane does not unwind the batch on the
  // spot: min-pc scheduling executes lanes out of lane order, so the lane
  // that traps *first in scheduling order* need not be the lane a scalar
  // fragment sequence would have trapped on first. Instead the trapping
  // lanes are parked (removed from `running`), the surviving lanes run to
  // completion, and the batch then throws the minimum trapping lane's trap —
  // exactly the fragment the scalar engines would have aborted the draw on.
  int trap_lane = -1;
  std::string trap_msg;
  const auto record_trap = [&](std::uint32_t lanes_bits,
                               const std::string& msg) {
    const int l = std::countr_zero(lanes_bits);
    if (trap_lane < 0 || l < trap_lane) {
      trap_lane = l;
      trap_msg = msg;
    }
  };

  // Hybrid scheduling. Converged phase (the common case, entered at start):
  // every running lane sits at the same pc, so instructions execute in
  // lockstep with a single shared pc and none of the per-lane bookkeeping —
  // branch conditions are still read per lane, and only a branch (or ret)
  // whose outcome actually differs between lanes ends the phase by spilling
  // per-lane pcs. Diverged phase: minimum-pc scheduling — each step
  // executes the one instruction at the smallest pc any running lane waits
  // on, with exactly the lanes parked there. Structured lowering places a
  // branch's taken-earlier block before its taken-later block and loop
  // bodies before their exits, so split lanes re-join at the join point's
  // pc, where the mask covers every running lane again and the converged
  // phase resumes. Both sides of a divergent branch thus execute, each
  // under its own lane mask, and every lane performs exactly its scalar
  // instruction sequence — per-lane op counts and TMU access order stay
  // exact.
  const LaneViews views{lane_regs_.data(), lane_globals_.data(),
                        globals_.data(), prog_->consts.data(),
                        prog_->lane_global_index.data()};
  const auto cond_src = [&views](std::uint32_t operand) {
    return views.Read(operand);
  };

  bool converged = true;
  std::uint32_t pc = prog_->run_entry;
  while (running != 0) {
    if (!converged) {
      // Diverged: find the minimum pc and its lane group; if the group is
      // every running lane, the batch has reconverged.
      pc = ~0u;
      for (std::uint32_t m = running; m != 0; m &= m - 1) {
        const int l = std::countr_zero(m);
        pc = std::min(pc, lane_pc_[static_cast<std::size_t>(l)]);
      }
      std::uint32_t mask = 0;
      for (std::uint32_t m = running; m != 0; m &= m - 1) {
        const int l = std::countr_zero(m);
        if (lane_pc_[static_cast<std::size_t>(l)] == pc) {
          mask |= 1u << static_cast<unsigned>(l);
        }
      }
      if (mask == running) {
        converged = true;
      } else {
        const VmInst& in = code[pc];
        switch (in.op) {
          case VmOp::kJump:
            LaneMask{mask}.ForEach([&](int l) {
              lane_pc_[static_cast<std::size_t>(l)] = in.aux;
            });
            continue;
          case VmOp::kJumpIfFalse:
          case VmOp::kJumpIfTrue: {
            const LaneSrc cond = cond_src(in.a);
            const bool jump_on = in.op == VmOp::kJumpIfTrue;
            LaneMask{mask}.ForEach([&](int l) {
              lane_pc_[static_cast<std::size_t>(l)] =
                  cond.at(l).B(0) == jump_on ? in.aux : pc + 1;
            });
            continue;
          }
          case VmOp::kLoopGuard: {
            if (fault::ShouldFail(fault::Site::kVmInstruction)) {
              record_trap(mask, kInjectedTrapMsg);
              running &= ~mask;
              kept &= ~mask;
              continue;
            }
            std::uint32_t over = 0;
            LaneMask{mask}.ForEach([&](int l) {
              if (++lane_steps_[static_cast<std::size_t>(l)] > loop_budget_) {
                over |= 1u << static_cast<unsigned>(l);
              }
            });
            if (over != 0) {
              record_trap(over, kLoopBudgetMsg);
              running &= ~over;
              kept &= ~over;
            }
            break;
          }
          case VmOp::kCall: {
            std::uint32_t deep = 0;
            LaneMask{mask}.ForEach([&](int l) {
              const std::size_t li = static_cast<std::size_t>(l);
              if (lane_sp_[li] > kMaxCallDepth) {
                deep |= 1u << static_cast<unsigned>(l);
                return;
              }
              lane_ret_stack_[li * kStackStride +
                              static_cast<std::size_t>(lane_sp_[li]++)] =
                  pc + 1;
              lane_pc_[li] = prog_->functions[in.aux].entry;
            });
            if (deep != 0) {
              record_trap(deep, kCallDepthMsg);
              running &= ~deep;
              kept &= ~deep;
            }
            continue;
          }
          case VmOp::kRet:
            LaneMask{mask}.ForEach([&](int l) {
              const std::size_t li = static_cast<std::size_t>(l);
              if (lane_sp_[li] == 0) {
                // main returned: the lane is done (and not discarded).
                running &= ~(1u << static_cast<unsigned>(l));
              } else {
                lane_pc_[li] =
                    lane_ret_stack_[li * kStackStride +
                                    static_cast<std::size_t>(--lane_sp_[li])];
              }
            });
            continue;
          case VmOp::kDiscard:
            kept &= ~mask;
            running &= ~mask;
            continue;
          case VmOp::kHalt:
            running &= ~mask;
            continue;
          case VmOp::kTrap:
            record_trap(mask, prog_->messages[in.aux]);
            running &= ~mask;
            kept &= ~mask;
            continue;
          default:
            ExecBatchOp(in, LaneMask{mask});
            break;
        }
        LaneMask{mask}.ForEach(
            [&](int l) { lane_pc_[static_cast<std::size_t>(l)] = pc + 1; });
        continue;
      }
    }

    // Converged: lockstep over `running` with a single shared pc. Per-lane
    // call stacks stay live (lanes reconverged from different call paths
    // may hold different return chains), but no per-step scanning happens.
    const VmInst& in = code[pc];
    switch (in.op) {
      case VmOp::kJump:
        pc = in.aux;
        continue;
      case VmOp::kJumpIfFalse:
      case VmOp::kJumpIfTrue: {
        const LaneSrc cond = cond_src(in.a);
        const bool jump_on = in.op == VmOp::kJumpIfTrue;
        std::uint32_t taken = 0;
        LaneMask{running}.ForEach([&](int l) {
          if (cond.at(l).B(0) == jump_on) {
            taken |= 1u << static_cast<unsigned>(l);
          }
        });
        if (taken == 0) {
          ++pc;
        } else if (taken == running) {
          pc = in.aux;
        } else {
          // The batch splits here: spill per-lane pcs and go grouped.
          LaneMask{running}.ForEach([&](int l) {
            lane_pc_[static_cast<std::size_t>(l)] =
                ((taken >> static_cast<unsigned>(l)) & 1u) != 0 ? in.aux
                                                                : pc + 1;
          });
          converged = false;
        }
        continue;
      }
      case VmOp::kLoopGuard: {
        if (fault::ShouldFail(fault::Site::kVmInstruction)) {
          record_trap(running, kInjectedTrapMsg);
          kept &= ~running;
          running = 0;
          continue;
        }
        // Lanes may carry different step counts into a converged guard
        // (reconverged from unequal trip counts), so the budget is checked
        // per lane; survivors stay converged at the next pc.
        std::uint32_t over = 0;
        LaneMask{running}.ForEach([&](int l) {
          if (++lane_steps_[static_cast<std::size_t>(l)] > loop_budget_) {
            over |= 1u << static_cast<unsigned>(l);
          }
        });
        if (over != 0) {
          record_trap(over, kLoopBudgetMsg);
          kept &= ~over;
          running &= ~over;
        }
        break;
      }
      case VmOp::kCall: {
        std::uint32_t deep = 0;
        LaneMask{running}.ForEach([&](int l) {
          const std::size_t li = static_cast<std::size_t>(l);
          if (lane_sp_[li] > kMaxCallDepth) {
            deep |= 1u << static_cast<unsigned>(l);
            return;
          }
          lane_ret_stack_[li * kStackStride +
                          static_cast<std::size_t>(lane_sp_[li]++)] = pc + 1;
        });
        if (deep != 0) {
          record_trap(deep, kCallDepthMsg);
          kept &= ~deep;
          running &= ~deep;
          if (running == 0) continue;
        }
        pc = prog_->functions[in.aux].entry;
        continue;
      }
      case VmOp::kRet: {
        // Pop per lane; lanes whose stacks agree keep lockstep, otherwise
        // (reconvergence joined different call chains) spill and group.
        std::uint32_t done = 0;
        std::uint32_t next = ~0u;
        bool same = true;
        LaneMask{running}.ForEach([&](int l) {
          const std::size_t li = static_cast<std::size_t>(l);
          if (lane_sp_[li] == 0) {
            done |= 1u << static_cast<unsigned>(l);
            return;
          }
          const std::uint32_t ret =
              lane_ret_stack_[li * kStackStride +
                              static_cast<std::size_t>(--lane_sp_[li])];
          lane_pc_[li] = ret;
          if (next == ~0u) {
            next = ret;
          } else if (ret != next) {
            same = false;
          }
        });
        running &= ~done;  // main returned for those lanes (not discarded)
        if (running == 0) continue;  // outer loop exits
        if (same) {
          pc = next;
        } else {
          converged = false;
        }
        continue;
      }
      case VmOp::kDiscard:
        kept &= ~running;
        running = 0;
        continue;
      case VmOp::kHalt:
        running = 0;
        continue;
      case VmOp::kTrap:
        record_trap(running, prog_->messages[in.aux]);
        kept &= ~running;
        running = 0;
        continue;
      default:
        // A full lane set iterates as a plain counted loop — cheaper than
        // walking mask bits, and the common case until a discard punches
        // holes into `running`.
        if (running == full) {
          ExecBatchOp(in, LaneRange{n});
        } else {
          ExecBatchOp(in, LaneMask{running});
        }
        break;
    }
    ++pc;
  }
  if (trap_lane >= 0) throw ShaderRuntimeError(trap_msg, trap_lane);
  return kept;
}

}  // namespace mgpu::glsl
