#include "glsl/vm.h"

#include <array>
#include <cstring>

namespace mgpu::glsl {
namespace {

// Same budgets (and messages) as the tree-walking interpreter.
constexpr std::uint64_t kMaxLoopSteps = 100'000'000;
constexpr int kMaxCallDepth = 64;

}  // namespace

VmExec::VmExec(std::shared_ptr<const VmProgram> program, AluModel& alu)
    : prog_(std::move(program)), alu_(alu) {
  globals_.reserve(prog_->globals.size());
  for (const VmGlobal& g : prog_->globals) globals_.emplace_back(g.type);
  regs_.reserve(prog_->reg_types.size());
  for (const Type& t : prog_->reg_types) regs_.emplace_back(t);
  refs_.resize(prog_->ref_slot_count);

  // One-time global initialization (consts and initial values of plain
  // globals). The oracle counts this work at its own construction, so the
  // counter snapshot keeps link-time totals unchanged when both engines are
  // instantiated side by side.
  const OpCounts saved = alu_.counts();
  loop_steps_ = 0;
  (void)Execute(prog_->const_init_entry);
  alu_.SetCounts(saved);
}

VmExec::VmExec(const VmExec& base, AluModel& alu)
    : prog_(base.prog_), alu_(alu), globals_(base.globals_),
      regs_(base.regs_) {
  // Refs are rebuilt before use by every invocation; fresh ones avoid
  // aliasing the base engine's storage.
  refs_.resize(prog_->ref_slot_count);
}

void VmExec::SyncGlobalsFrom(const VmExec& base) {
  if (prog_.get() != base.prog_.get() ||
      globals_.size() != base.globals_.size()) {
    // Layout mismatch: fall back to a full re-clone of the global store
    // (never hit through the shade-state cache, which is invalidated on
    // relink; kept so direct callers cannot corrupt the register file).
    prog_ = base.prog_;
    globals_ = base.globals_;
    regs_ = base.regs_;
    refs_.resize(prog_->ref_slot_count);
    return;
  }
  // Element-wise copy-assign: Value reuses its existing cell storage when
  // the layout matches, so this is a flat copy with no allocation — the
  // cheap per-draw path the shade-state cache relies on.
  for (std::size_t i = 0; i < globals_.size(); ++i) {
    globals_[i] = base.globals_[i];
  }
}

bool VmExec::Run() {
  loop_steps_ = 0;
  return Execute(prog_->run_entry);
}

bool VmExec::Execute(std::uint32_t pc) {
  const VmInst* const code = prog_->code.data();
  const std::uint32_t* const arg_ops = prog_->arg_ops.data();
  // Local copies of the storage base pointers: none of these vectors are
  // resized during execution, and keeping them in locals lets the compiler
  // hold them in registers across the opaque Eval* calls (the member-based
  // At()/Read() would be reloaded after every call).
  Value* const regs = regs_.data();
  Value* const globals = globals_.data();
  const Value* const consts = prog_->consts.data();
  const auto At = [regs, globals](std::uint32_t operand) -> Value& {
    const std::uint32_t idx = operand & kOperandIndexMask;
    return (operand & ~kOperandIndexMask) == kSpaceReg ? regs[idx]
                                                       : globals[idx];
  };
  const auto Read = [regs, globals,
                     consts](std::uint32_t operand) -> const Value& {
    const std::uint32_t idx = operand & kOperandIndexMask;
    switch (operand & ~kOperandIndexMask) {
      case kSpaceReg: return regs[idx];
      case kSpaceGlobal: return globals[idx];
      default: return consts[idx];
    }
  };
  // One extra slot: the run chunk's call into main occupies the stack but
  // does not count against the interpreter's user-call depth limit.
  std::array<std::uint32_t, kMaxCallDepth + 1> ret_stack;
  int sp = 0;

  while (true) {
    const VmInst& in = code[pc];
    switch (in.op) {
      case VmOp::kCopy: {
        Value& d = At(in.dst);
        const Value& s = Read(in.a);
        const int n = d.count();
        if (n <= 4) {
          for (int k = 0; k < n; ++k) d.data()[k] = s.data()[k];
        } else {
          std::memmove(d.data(), s.data(),
                       static_cast<std::size_t>(n) * sizeof(Cell));
        }
        break;
      }
      case VmOp::kZero: {
        Value& d = At(in.dst);
        const int n = d.count();
        if (n <= 4) {
          for (int k = 0; k < n; ++k) d.data()[k].i = 0;
        } else {
          std::memset(d.data(), 0,
                      static_cast<std::size_t>(n) * sizeof(Cell));
        }
        break;
      }
      case VmOp::kShuffle: {
        Value& d = At(in.dst);
        const Value& s = Read(in.a);
        for (int k = 0; k < in.n; ++k) {
          d.data()[k] = s.data()[(in.aux >> (8 * k)) & 0xffu];
        }
        break;
      }
      case VmOp::kExtract: {
        IndexStep step;
        step.limit = static_cast<int>(in.aux);
        step.elem_cells = in.n;
        EvalExtractInto(Read(in.a), step, Read(in.b).I(0), At(in.dst));
        break;
      }
      case VmOp::kArith:
        EvalArithInto(alu_, static_cast<BinOp>(in.u8), Read(in.a), Read(in.b),
                      At(in.dst));
        break;
      case VmOp::kNeg:
        EvalNegInto(alu_, Read(in.a), At(in.dst));
        break;
      case VmOp::kNot:
        EvalNotInto(alu_, Read(in.a), At(in.dst));
        break;
      case VmOp::kXor:
        At(in.dst).SetB(0, Read(in.a).B(0) != Read(in.b).B(0));
        break;
      case VmOp::kBoolNorm:
        At(in.dst).SetB(0, Read(in.a).B(0));
        break;
      case VmOp::kCtor: {
        std::array<const Value*, 16> ptrs;
        for (int i = 0; i < in.n; ++i) ptrs[i] = &Read(arg_ops[in.aux + i]);
        Value& d = At(in.dst);
        // Fresh-value semantics: the interpreter constructs into a zeroed
        // Value; clear so partially-covering (malformed) ctors still match.
        std::memset(d.data(), 0,
                    static_cast<std::size_t>(d.count()) * sizeof(Cell));
        EvalCtorInto(alu_,
                     std::span<const Value* const>(ptrs.data(), in.n), d);
        break;
      }
      case VmOp::kBuiltin: {
        std::array<const Value*, kMaxBuiltinArgs> ptrs;
        for (int i = 0; i < in.n; ++i) ptrs[i] = &Read(arg_ops[in.aux + i]);
        EvalBuiltinInto(static_cast<Builtin>(in.u8), in.type,
                        std::span<const Value* const>(ptrs.data(), in.n),
                        alu_, texture_, At(in.dst));
        break;
      }
      case VmOp::kJump:
        pc = in.aux;
        continue;
      case VmOp::kJumpIfFalse:
        if (!Read(in.a).B(0)) {
          pc = in.aux;
          continue;
        }
        break;
      case VmOp::kJumpIfTrue:
        if (Read(in.a).B(0)) {
          pc = in.aux;
          continue;
        }
        break;
      case VmOp::kLoopGuard:
        if (++loop_steps_ > kMaxLoopSteps) {
          throw ShaderRuntimeError(
              "shader exceeded the loop iteration budget (a real GPU would "
              "hang or be reset here)");
        }
        break;
      case VmOp::kCall:
        if (sp > kMaxCallDepth) {
          throw ShaderRuntimeError("shader call depth exceeded");
        }
        ret_stack[static_cast<std::size_t>(sp++)] = pc + 1;
        pc = prog_->functions[in.aux].entry;
        continue;
      case VmOp::kRet:
        if (sp == 0) return true;  // main returned
        pc = ret_stack[static_cast<std::size_t>(--sp)];
        continue;
      case VmOp::kDiscard:
        return false;
      case VmOp::kHalt:
        return true;
      case VmOp::kTrap:
        throw ShaderRuntimeError(prog_->messages[in.aux]);
      case VmOp::kRefVar:
        refs_[in.dst] = RefWhole(At(in.a), in.type);
        break;
      case VmOp::kRefIndex: {
        IndexStep step;
        step.limit = static_cast<int>(in.aux);
        step.elem_cells = in.n;
        step.elem_type = in.type;
        refs_[in.dst] = RefIndex(refs_[in.a], step, Read(in.b).I(0));
        break;
      }
      case VmOp::kRefSwizzle: {
        std::array<std::uint8_t, 4> comps{};
        for (int k = 0; k < in.n; ++k) {
          comps[static_cast<std::size_t>(k)] =
              static_cast<std::uint8_t>((in.aux >> (8 * k)) & 0xffu);
        }
        refs_[in.dst] = RefSwizzle(refs_[in.a], in.type, comps.data(), in.n);
        break;
      }
      case VmOp::kReadRef:
        ReadRefInto(refs_[in.a], At(in.dst));
        break;
      case VmOp::kWriteRef:
        WriteRef(refs_[in.dst], Read(in.a));
        break;
      case VmOp::kIncDec:
        EvalIncDecInto(alu_, refs_[in.a], (in.u8 & 1) != 0, (in.u8 & 2) != 0,
                       At(in.dst));
        break;
      case VmOp::kIncDecVar:
        EvalIncDecVar(alu_, At(in.a), (in.u8 & 1) != 0, (in.u8 & 2) != 0,
                      At(in.dst));
        break;
    }
    ++pc;
  }
}

}  // namespace mgpu::glsl
