// VmProgram -> C++ transpiler and shared-object loader (see jit.h for the
// equivalence architecture). The generated translation unit mirrors
// ExecuteBatchUniform instruction for instruction: control flow becomes
// labels and gotos, inline-able value ops become unrolled per-lane cell
// loops that reproduce the evalcore batch kernels literally (same loads,
// same stores, same order, same ALU counts), and everything else calls back
// into VmExec::ExecBatchOp through JitEnv::exec_op.
#include "glsl/jit.h"

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "glsl/ast.h"
#include "glsl/type.h"
#include "glsl/value.h"

// Sanitized builds decline the JIT wholesale: the modules are compiled by
// the plain host toolchain, and dlopen'ing uninstrumented code into a
// TSan/ASan process is unsound (TSan misses its synchronization, ASan its
// poisoning). Available() returning false makes every caller fall back to
// the batched interpreter, which the sanitizer jobs cover in full.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define MGPU_JIT_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define MGPU_JIT_SANITIZED 1
#else
#define MGPU_JIT_SANITIZED 0
#endif
#else
#define MGPU_JIT_SANITIZED 0
#endif

#if (defined(__unix__) || defined(__APPLE__)) && !MGPU_JIT_SANITIZED
#define MGPU_JIT_POSIX 1
#include <dlfcn.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#else
#define MGPU_JIT_POSIX 0
#endif

namespace mgpu::glsl::jit {
namespace {

// The whole transpiler is POSIX-only (it shells out to the host compiler
// and dlopens the result); keeping it behind the same guard as the cache
// machinery avoids defined-but-unused warnings on the fallback path.
#if MGPU_JIT_POSIX

// Must track vm.cc's kMaxCallDepth: the generated return stack holds
// kMaxCallDepth + 1 entries and the depth check fires at the same sp.
constexpr int kMaxCallDepth = 64;

struct OpInfo {
  Type type;
  bool per_lane = false;
};

// Static operand typing and stride class, the codegen-time mirror of
// vm.cc's LaneViews space dispatch: registers are per-lane planes,
// globals are per-lane iff lane_global_index maps them, constants are
// shared. A per-lane operand is addressed as base + lane * VS cells, which
// requires the Value's cells to sit in its inline storage — hence the
// Value::kInline ceiling enforced by Addressable().
[[nodiscard]] OpInfo InfoOf(const VmProgram& p, std::uint32_t operand) {
  const std::uint32_t idx = operand & kOperandIndexMask;
  switch (operand & ~kOperandIndexMask) {
    case kSpaceReg:
      return {p.reg_types[idx], true};
    case kSpaceGlobal:
      return {p.globals[idx].type, p.lane_global_index[idx] >= 0};
    default:
      return {p.consts[idx].type(), false};
  }
}

class Codegen {
 public:
  explicit Codegen(const VmProgram& p) : p_(p) {}

  [[nodiscard]] std::string Run();
  [[nodiscard]] std::vector<std::uint32_t> TakeTableOps() {
    return std::move(table_ops_);
  }

 private:
  [[nodiscard]] int Slot(std::uint32_t operand) {
    const auto it = slots_.find(operand);
    if (it != slots_.end()) return it->second;
    const int k = static_cast<int>(table_ops_.size());
    table_ops_.push_back(operand);
    slots_.emplace(operand, k);
    return k;
  }

  // Cell pointer expression for an operand, e.g. "(float*)T[3]+(long)l*VS"
  // (per-lane plane) or "(const int*)T[7]" (shared storage).
  [[nodiscard]] std::string Ptr(std::uint32_t operand, const char* cast) {
    std::string s = "(";
    s += cast;
    s += "*)T[";
    s += std::to_string(Slot(operand));
    s += "]";
    if (InfoOf(p_, operand).per_lane) s += "+(long)l*VS";
    return s;
  }

  // Per-lane operands must fit the Value inline storage so the constant
  // stride VS addresses every lane's cells; shared operands are reached
  // through their (stable) data() pointer whatever their size.
  [[nodiscard]] bool Addressable(std::uint32_t operand) const {
    const OpInfo i = InfoOf(p_, operand);
    return !i.per_lane || i.type.CellCount() <= Value::kInline;
  }

  void LaneLoopOpen(std::string& b) { b += "  for(int l=0;l<N;++l){\n"; }

  // Emits one Value::SetConverted(w, src, i) with the categories resolved
  // statically. `df`/`di` name the destination float/int pointers already
  // declared in the enclosing lane loop; `sf`/`si` likewise for the source.
  void EmitConverted(std::string& b, BaseType dst_cat, BaseType src_cat,
                     const std::string& df, const std::string& di,
                     const std::string& sf, const std::string& si, int w,
                     int i) {
    const std::string ws = std::to_string(w);
    const std::string is = std::to_string(i);
    if (src_cat == BaseType::kFloat) {
      if (dst_cat == BaseType::kFloat) {
        b += "    " + df + "[" + ws + "]=" + sf + "[" + is + "];\n";
      } else if (dst_cat == BaseType::kBool) {
        b += "    " + di + "[" + ws + "]=(" + sf + "[" + is +
             "]!=0.0f)?1:0;\n";
      } else {
        b += "    " + di + "[" + ws + "]=(int)" + sf + "[" + is + "];\n";
      }
    } else {
      if (dst_cat == BaseType::kFloat) {
        b += "    " + df + "[" + ws + "]=(float)" + si + "[" + is + "];\n";
      } else if (dst_cat == BaseType::kBool) {
        b += "    " + di + "[" + ws + "]=(" + si + "[" + is + "]!=0)?1:0;\n";
      } else {
        b += "    " + di + "[" + ws + "]=" + si + "[" + is + "];\n";
      }
    }
  }

  bool EmitMove(const VmInst& in, std::string& b);
  bool EmitArith(std::uint32_t pc, const VmInst& in, std::string& b);
  bool EmitNeg(std::uint32_t pc, const VmInst& in, std::string& b);
  bool EmitCtor(const VmInst& in, std::string& b);
  // Dispatch: true when the op was inlined, false to punt to exec_op.
  bool EmitValueOp(std::uint32_t pc, const VmInst& in, std::string& b);

  const VmProgram& p_;
  std::map<std::uint32_t, int> slots_;
  std::vector<std::uint32_t> table_ops_;
};

// kCopy / kZero / kShuffle / kXor / kBoolNorm / kNot: pure cell moves (plus
// kNot's one counted op per lane). Copies go through int cells — bitwise
// exact for every category, exactly what the kernels' Cell copies do.
bool Codegen::EmitMove(const VmInst& in, std::string& b) {
  switch (in.op) {
    case VmOp::kCopy: {
      if (!Addressable(in.dst) || !Addressable(in.a)) return false;
      const int cc = InfoOf(p_, in.dst).type.CellCount();
      LaneLoopOpen(b);
      b += "    int* d=" + Ptr(in.dst, "int") + ";const int* s=" +
           Ptr(in.a, "const int") + ";\n";
      for (int k = 0; k < cc; ++k) {
        b += "    d[" + std::to_string(k) + "]=s[" + std::to_string(k) +
             "];\n";
      }
      b += "  }\n";
      return true;
    }
    case VmOp::kZero: {
      if (!Addressable(in.dst)) return false;
      const int cc = InfoOf(p_, in.dst).type.CellCount();
      LaneLoopOpen(b);
      b += "    int* d=" + Ptr(in.dst, "int") + ";\n";
      for (int k = 0; k < cc; ++k) {
        b += "    d[" + std::to_string(k) + "]=0;\n";
      }
      b += "  }\n";
      return true;
    }
    case VmOp::kShuffle: {
      if (!Addressable(in.dst) || !Addressable(in.a)) return false;
      LaneLoopOpen(b);
      b += "    int* d=" + Ptr(in.dst, "int") + ";const int* s=" +
           Ptr(in.a, "const int") + ";\n";
      for (int k = 0; k < in.n; ++k) {
        b += "    d[" + std::to_string(k) + "]=s[" +
             std::to_string((in.aux >> (8 * k)) & 0xffu) + "];\n";
      }
      b += "  }\n";
      return true;
    }
    case VmOp::kXor: {
      if (!Addressable(in.dst) || !Addressable(in.a) || !Addressable(in.b)) {
        return false;
      }
      LaneLoopOpen(b);
      b += "    int* d=" + Ptr(in.dst, "int") + ";const int* a=" +
           Ptr(in.a, "const int") + ";const int* c=" +
           Ptr(in.b, "const int") + ";\n";
      b += "    d[0]=((a[0]!=0)!=(c[0]!=0))?1:0;\n  }\n";
      return true;
    }
    case VmOp::kBoolNorm: {
      if (!Addressable(in.dst) || !Addressable(in.a)) return false;
      LaneLoopOpen(b);
      b += "    int* d=" + Ptr(in.dst, "int") + ";const int* a=" +
           Ptr(in.a, "const int") + ";\n";
      b += "    d[0]=(a[0]!=0)?1:0;\n  }\n";
      return true;
    }
    case VmOp::kNot: {
      if (!Addressable(in.dst) || !Addressable(in.a)) return false;
      LaneLoopOpen(b);
      b += "    int* d=" + Ptr(in.dst, "int") + ";const int* a=" +
           Ptr(in.a, "const int") + ";\n";
      b += "    d[0]=(a[0]!=0)?0:1;\n  }\n";
      b += "  ops+=(unsigned long long)N;\n";  // EvalNotBatch: Count(1)/lane
      return true;
    }
    default:
      return false;
  }
}

// kArith: comparisons and component-wise arithmetic, mirroring
// EvalArithBatch case for case. Float +,-,* inline only under RI (where the
// AluModel fast path is plain IEEE plus a counter); float division is
// SFU-routed and always punts; linear-algebra multiplies always punt (the
// VM replays them per lane).
bool Codegen::EmitArith(std::uint32_t pc, const VmInst& in, std::string& b) {
  if (!Addressable(in.dst) || !Addressable(in.a) || !Addressable(in.b)) {
    return false;
  }
  const auto op = static_cast<BinOp>(in.u8);
  const Type lt = InfoOf(p_, in.a).type;
  const Type rt = InfoOf(p_, in.b).type;
  const BaseType lb = lt.base;
  const BaseType rb = rt.base;
  if (op == BinOp::kMul && ((IsMatrix(lb) && (IsMatrix(rb) || IsVector(rb))) ||
                            (IsVector(lb) && IsMatrix(rb)))) {
    return false;  // accumulation shapes: per-lane replay, not a flat loop
  }
  if (in.soa == 0) return false;  // untagged -> the VM replays per lane
  const bool is_float = ScalarOf(lb) == BaseType::kFloat;

  if (op >= BinOp::kLt && op <= BinOp::kNe) {
    // Scalar-bool result, one counted op per lane, no rounding involved —
    // inline-able under every ALU profile.
    LaneLoopOpen(b);
    b += "    int* d=" + Ptr(in.dst, "int") + ";\n";
    if (op == BinOp::kEq || op == BinOp::kNe) {
      const int lc = lt.CellCount();
      if (lc != rt.CellCount()) {
        b += std::string("    d[0]=") + (op == BinOp::kNe ? "1" : "0") +
             ";\n";
      } else {
        const char* ct = is_float ? "const float" : "const int";
        b += std::string("    ") + ct + "* a=" + Ptr(in.a, ct) + ";" + ct +
             "* c=" + Ptr(in.b, ct) + ";\n";
        std::string eq;
        for (int i = 0; i < lc; ++i) {
          if (i > 0) eq += "&&";
          eq += "a[" + std::to_string(i) + "]==c[" + std::to_string(i) + "]";
        }
        b += "    d[0]=(" + eq + ")?" +
             (op == BinOp::kEq ? std::string("1:0") : std::string("0:1")) +
             ";\n";
      }
    } else {
      const char* ct = is_float ? "const float" : "const int";
      const char* sym = op == BinOp::kLt   ? "<"
                        : op == BinOp::kGt ? ">"
                        : op == BinOp::kLe ? "<="
                                           : ">=";
      b += std::string("    ") + ct + "* a=" + Ptr(in.a, ct) + ";" + ct +
           "* c=" + Ptr(in.b, ct) + ";\n";
      b += std::string("    d[0]=(a[0]") + sym + "c[0])?1:0;\n";
    }
    b += "  }\n  ops+=(unsigned long long)N;\n";
    return true;
  }

  if (op > BinOp::kDiv) return false;  // logical ops never lower to kArith
  const int n = InfoOf(p_, in.dst).type.CellCount();
  const int ls = lt.CellCount() == 1 && n > 1 ? 0 : 1;
  const int rs = rt.CellCount() == 1 && n > 1 ? 0 : 1;

  if (is_float) {
    if (op == BinOp::kDiv) return false;  // a * Recip(b): SFU precision path
    const char* sym = op == BinOp::kAdd ? "+" : op == BinOp::kSub ? "-" : "*";
    b += "  if(RI){\n";
    LaneLoopOpen(b);
    b += "    float* d=" + Ptr(in.dst, "float") + ";const float* a=" +
         Ptr(in.a, "const float") + ";const float* c=" +
         Ptr(in.b, "const float") + ";\n";
    for (int i = 0; i < n; ++i) {
      b += "    d[" + std::to_string(i) + "]=a[" + std::to_string(i * ls) +
           "]" + sym + "c[" + std::to_string(i * rs) + "];\n";
    }
    b += "  }\n  ops+=(unsigned long long)N*" + std::to_string(n) +
         "u;\n  }else{e->exec_op(h," + std::to_string(pc) + ");}\n";
    return true;
  }

  // Integer component-wise arithmetic: exact under every profile; division
  // by zero yields 0 like the kernel.
  LaneLoopOpen(b);
  b += "    int* d=" + Ptr(in.dst, "int") + ";const int* a=" +
       Ptr(in.a, "const int") + ";const int* c=" + Ptr(in.b, "const int") +
       ";\n";
  for (int i = 0; i < n; ++i) {
    const std::string di = std::to_string(i);
    const std::string ai = std::to_string(i * ls);
    const std::string ci = std::to_string(i * rs);
    switch (op) {
      case BinOp::kAdd:
        b += "    d[" + di + "]=a[" + ai + "]+c[" + ci + "];\n";
        break;
      case BinOp::kSub:
        b += "    d[" + di + "]=a[" + ai + "]-c[" + ci + "];\n";
        break;
      case BinOp::kMul:
        b += "    d[" + di + "]=a[" + ai + "]*c[" + ci + "];\n";
        break;
      default:
        b += "    d[" + di + "]=(c[" + ci + "]==0)?0:a[" + ai + "]/c[" + ci +
             "];\n";
        break;
    }
  }
  b += "  }\n  ops+=(unsigned long long)N*" + std::to_string(n) + "u;\n";
  return true;
}

// kNeg (the VM routes it to EvalNegBatch unconditionally — no soa gate):
// float negation inlines under RI (Round is the identity), int always.
bool Codegen::EmitNeg(std::uint32_t pc, const VmInst& in, std::string& b) {
  if (!Addressable(in.dst) || !Addressable(in.a)) return false;
  const Type st = InfoOf(p_, in.a).type;
  const int n = st.CellCount();
  const bool is_float = ScalarOf(st.base) == BaseType::kFloat;
  std::string body;
  const char* ct = is_float ? "float" : "int";
  const std::string cct = std::string("const ") + ct;
  body += "    " + std::string(ct) + "* d=" + Ptr(in.dst, ct) + ";" + cct +
          "* a=" + Ptr(in.a, cct.c_str()) + ";\n";
  for (int i = 0; i < n; ++i) {
    body += "    d[" + std::to_string(i) + "]=-a[" + std::to_string(i) +
            "];\n";
  }
  if (is_float) {
    b += "  if(RI){\n";
    LaneLoopOpen(b);
    b += body;
    b += "  }\n  ops+=(unsigned long long)N*" + std::to_string(n) +
         "u;\n  }else{e->exec_op(h," + std::to_string(pc) + ");}\n";
  } else {
    LaneLoopOpen(b);
    b += body;
    b += "  }\n  ops+=(unsigned long long)N*" + std::to_string(n) + "u;\n";
  }
  return true;
}

// kCtor (soa-tagged scalar/vector targets), mirroring EvalCtorBatch's
// dispatch order: scalar -> splat -> all-float gather -> mixed. Every path
// is pure moves/conversions plus Count(n) per lane, so all inline under
// every profile; matrix/array targets punt (ExecBatchOp replays or
// fails loudly exactly as the interpreter would).
bool Codegen::EmitCtor(const VmInst& in, std::string& b) {
  if (in.soa == 0) return false;
  if (!Addressable(in.dst)) return false;
  const Type dt = InfoOf(p_, in.dst).type;
  if (dt.IsArray() || (!IsScalar(dt.base) && !IsVector(dt.base))) {
    return false;
  }
  std::vector<std::uint32_t> args;
  std::vector<Type> arg_types;
  for (int i = 0; i < in.n; ++i) {
    const std::uint32_t operand = p_.arg_ops[in.aux + static_cast<
        std::uint32_t>(i)];
    if (!Addressable(operand)) return false;
    args.push_back(operand);
    arg_types.push_back(InfoOf(p_, operand).type);
  }
  if (args.empty()) return false;
  const int n = dt.CellCount();
  const BaseType dc = ScalarOf(dt.base);

  // Per-arg source pointer declarations (float and int views; the unused
  // one is dead code the compiler drops).
  const auto decl_args = [&](std::string& body) {
    for (std::size_t k = 0; k < args.size(); ++k) {
      const std::string ks = std::to_string(k);
      body += "    const float* a" + ks + "f=" +
              Ptr(args[k], "const float") + ";const int* a" + ks + "i=" +
              Ptr(args[k], "const int") + ";\n";
    }
  };
  const auto df = std::string("d_f");
  const auto di = std::string("d_i");
  const auto decl_dst = [&](std::string& body) {
    body += "    float* d_f=" + Ptr(in.dst, "float") + ";int* d_i=" +
            Ptr(in.dst, "int") + ";\n";
  };

  if (IsScalar(dt.base)) {
    // Count(1) per lane; the single conversion overwrites the whole cell.
    LaneLoopOpen(b);
    decl_dst(b);
    decl_args(b);
    EmitConverted(b, dc, ScalarOf(arg_types[0].base), df, di, "a0f", "a0i",
                  0, 0);
    b += "  }\n  ops+=(unsigned long long)N;\n";
    return true;
  }

  if (args.size() == 1 && arg_types[0].CellCount() == 1) {
    // Splat: replicate the converted scalar into every component.
    LaneLoopOpen(b);
    decl_dst(b);
    decl_args(b);
    for (int i = 0; i < n; ++i) {
      EmitConverted(b, dc, ScalarOf(arg_types[0].base), df, di, "a0f", "a0i",
                    i, 0);
    }
    b += "  }\n  ops+=(unsigned long long)N*" + std::to_string(n) + "u;\n";
    return true;
  }

  bool all_float = dc == BaseType::kFloat;
  for (const Type& t : arg_types) {
    all_float = all_float && ScalarOf(t.base) == BaseType::kFloat;
  }
  LaneLoopOpen(b);
  decl_dst(b);
  decl_args(b);
  if (all_float) {
    // Flat gather; a malformed (under-covering) ctor zero-fills the tail.
    int w = 0;
    for (std::size_t k = 0; k < args.size() && w < n; ++k) {
      const int ac = arg_types[k].CellCount();
      for (int i = 0; i < ac && w < n; ++i, ++w) {
        b += "    d_f[" + std::to_string(w) + "]=a" + std::to_string(k) +
             "f[" + std::to_string(i) + "];\n";
      }
    }
    for (; w < n; ++w) {
      b += "    d_i[" + std::to_string(w) + "]=0;\n";
    }
  } else {
    // Mixed categories: fresh-value clear first, then converting gather.
    for (int i = 0; i < n; ++i) {
      b += "    d_i[" + std::to_string(i) + "]=0;\n";
    }
    int w = 0;
    for (std::size_t k = 0; k < args.size() && w < n; ++k) {
      const int ac = arg_types[k].CellCount();
      const std::string sf = "a" + std::to_string(k) + "f";
      const std::string si = "a" + std::to_string(k) + "i";
      for (int i = 0; i < ac && w < n; ++i, ++w) {
        EmitConverted(b, dc, ScalarOf(arg_types[k].base), df, di, sf, si, w,
                      i);
      }
    }
  }
  b += "  }\n  ops+=(unsigned long long)N*" + std::to_string(n) + "u;\n";
  return true;
}

bool Codegen::EmitValueOp(std::uint32_t pc, const VmInst& in,
                          std::string& b) {
  switch (in.op) {
    case VmOp::kCopy:
    case VmOp::kZero:
    case VmOp::kShuffle:
    case VmOp::kXor:
    case VmOp::kBoolNorm:
    case VmOp::kNot:
      return EmitMove(in, b);
    case VmOp::kArith:
      return EmitArith(pc, in, b);
    case VmOp::kNeg:
      return EmitNeg(pc, in, b);
    case VmOp::kCtor:
      return EmitCtor(in, b);
    default:
      // kExtract (runtime clamp), kBuiltin (SFU/TMU, lane-ordered texture
      // accounting), refs, inc/dec: replay through the batch interpreter.
      return false;
  }
}

std::string Codegen::Run() {
  std::string s;
  s += "// Generated by mgpu (glsl/jit.cc); the cache key is the FNV-1a\n";
  s += "// hash of this text. Layout mirrors glsl::jit::JitEnv.\n";
  s += "typedef struct MgpuJitEnv {\n";
  s += "  void* host; void* const* tbl; int n; long vs; int ri;\n";
  s += "  void (*exec_op)(void*, int);\n";
  s += "  void (*guard)(void*);\n";
  s += "  void (*depth_trap)(void*);\n";
  s += "  void (*trap)(void*, int);\n";
  s += "  void (*count_alu)(void*, unsigned long long);\n";
  s += "} MgpuJitEnv;\n";
  s += "extern \"C\" int mgpu_jit_entry(MgpuJitEnv* e) {\n";
  s += "  void* const* T = e->tbl;\n";
  s += "  const int N = e->n;\n";
  s += "  const long VS = e->vs;\n";
  s += "  const int RI = e->ri;\n";
  s += "  void* h = e->host;\n";
  s += "  unsigned long long ops = 0;\n";
  // Function-local return stack: worker clones of one draw run this entry
  // concurrently. Stores call-site ids, dispatched through RD below.
  s += "  unsigned rs[" + std::to_string(kMaxCallDepth + 1) + "];\n";
  s += "  int sp = 0;\n";
  s += "  (void)VS;(void)RI;(void)ops;\n";
  s += "  goto I" + std::to_string(p_.run_entry) + ";\n";

  // Deferred-count flush: before every callback that can throw and every
  // exit, so ALU totals at a trap match the interpreter's exactly
  // (CountAlu sums are order-insensitive, alu.h).
  const std::string flush = "if(ops){e->count_alu(h,ops);ops=0;}";
  int call_sites = 0;

  for (std::uint32_t pc = 0; pc < p_.code.size(); ++pc) {
    const VmInst& in = p_.code[pc];
    s += "I" + std::to_string(pc) + ":;\n";
    switch (in.op) {
      case VmOp::kJump:
        s += "  goto I" + std::to_string(in.aux) + ";\n";
        break;
      case VmOp::kJumpIfFalse:
      case VmOp::kJumpIfTrue: {
        // Uniform control flow: lane 0 decides for the batch (lane 0 of a
        // per-lane plane is its base pointer, so no stride term).
        const char* cmp = in.op == VmOp::kJumpIfTrue ? "!=" : "==";
        s += "  if(((const int*)T[" + std::to_string(Slot(in.a)) + "])[0]" +
             cmp + "0) goto I" + std::to_string(in.aux) + ";\n";
        break;
      }
      case VmOp::kLoopGuard:
        s += "  " + flush + "e->guard(h);\n";
        break;
      case VmOp::kCall: {
        const int site = call_sites++;
        s += "  if(sp>" + std::to_string(kMaxCallDepth) + "){" + flush +
             "e->depth_trap(h);return 2;}\n";
        s += "  rs[sp++]=" + std::to_string(site) + "u;\n";
        s += "  goto I" +
             std::to_string(p_.functions[in.aux].entry) + ";\n";
        s += "C" + std::to_string(site) + ":;\n";
        break;
      }
      case VmOp::kRet:
        s += "  if(sp==0){" + flush + "return 1;}\n";
        s += "  goto RD;\n";
        break;
      case VmOp::kDiscard:
        s += "  " + flush + "return 0;\n";
        break;
      case VmOp::kHalt:
        s += "  " + flush + "return 1;\n";
        break;
      case VmOp::kTrap:
        s += "  " + flush + "e->trap(h," + std::to_string(in.aux) +
             ");return 2;\n";
        break;
      default: {
        std::string body;
        if (EmitValueOp(pc, in, body)) {
          s += body;
        } else {
          s += "  e->exec_op(h," + std::to_string(pc) + ");\n";
        }
        break;
      }
    }
  }

  // Shared return dispatcher: every kRet with a non-empty stack lands here
  // and resumes after its recorded call site.
  s += "RD:\n  switch(rs[--sp]){\n";
  for (int site = 0; site < call_sites; ++site) {
    s += "    case " + std::to_string(site) + "u: goto C" +
         std::to_string(site) + ";\n";
  }
  s += "    default: return 2;\n  }\n";
  s += "}\n";
  return s;
}

[[nodiscard]] std::uint64_t Fnv1a64(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

// Probes for a working host C++ compiler once. $CXX first (it may carry
// arguments, e.g. "ccache g++"), then the conventional names.
[[nodiscard]] const std::string& CompilerCmd() {
  static const std::string cmd = [] {
    const char* env = std::getenv("CXX");
    std::vector<std::string> candidates;
    if (env != nullptr && *env != '\0') candidates.emplace_back(env);
    candidates.emplace_back("c++");
    candidates.emplace_back("g++");
    candidates.emplace_back("clang++");
    for (const std::string& c : candidates) {
      if (std::system((c + " --version >/dev/null 2>&1").c_str()) == 0) {
        return c;
      }
    }
    return std::string();
  }();
  return cmd;
}

// Per-uid cache directory under $TMPDIR (mode 0700, ownership verified so a
// pre-created directory by another user is rejected rather than trusted).
[[nodiscard]] std::string CacheDir() {
  const char* tmp = std::getenv("TMPDIR");
  std::string dir = (tmp != nullptr && *tmp != '\0') ? tmp : "/tmp";
  dir += "/mgpu-jit-" + std::to_string(static_cast<unsigned long>(::getuid()));
  if (::mkdir(dir.c_str(), 0700) != 0 && errno != EEXIST) return {};
  struct stat st{};
  if (::stat(dir.c_str(), &st) != 0 || !S_ISDIR(st.st_mode) ||
      st.st_uid != ::getuid() || (st.st_mode & 077) != 0) {
    return {};
  }
  return dir;
}

[[nodiscard]] bool WriteFileAtomic(const std::string& path,
                                   const std::string& text) {
  const std::string tmp = path + "." + std::to_string(::getpid());
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok =
      std::fwrite(text.data(), 1, text.size(), f) == text.size() &&
      std::fclose(f) == 0;
  if (!ok || std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

#endif  // MGPU_JIT_POSIX

}  // namespace

Module::Module(void* handle, EntryFn entry,
               std::vector<std::uint32_t> table_ops)
    : handle_(handle), entry_(entry), table_ops_(std::move(table_ops)) {}

Module::~Module() {
#if MGPU_JIT_POSIX
  if (handle_ != nullptr) ::dlclose(handle_);
#endif
}

bool Available() {
#if MGPU_JIT_POSIX
  return !CompilerCmd().empty();
#else
  return false;
#endif
}

bool Resolve(int knob) {
  if (knob == 0) return false;
  if (knob > 0) return Available();
  const char* env = std::getenv("MGPU_JIT");
  if (env != nullptr && env[0] == '0' && env[1] == '\0') return false;
  return Available();
}

std::shared_ptr<const Module> CompileProgram(const VmProgram& prog) {
#if !MGPU_JIT_POSIX
  (void)prog;
  return nullptr;
#else
  // Divergent programs run under the masked per-lane-pc interpreter; the
  // generated lockstep control flow cannot represent them.
  if (!prog.uniform_control_flow) return nullptr;
  if (!Available()) return nullptr;

  Codegen cg(prog);
  const std::string src = cg.Run();
  std::vector<std::uint32_t> table = cg.TakeTableOps();

  const std::string dir = CacheDir();
  if (dir.empty()) return nullptr;
  char hex[17];
  std::snprintf(hex, sizeof hex, "%016llx",
                static_cast<unsigned long long>(Fnv1a64(src)));
  const std::string so_path = dir + "/" + hex + ".so";

  if (::access(so_path.c_str(), R_OK) != 0) {
    const std::string cc_path = dir + "/" + hex + ".cc";
    if (!WriteFileAtomic(cc_path, src)) return nullptr;
    // Compile to a pid-suffixed temp and rename: concurrent processes
    // compiling the same program race benignly to an identical file.
    // -fno-strict-aliasing: the generated code views Value cells as both
    // int and float, exactly like the Cell union the kernels use.
    const std::string tmp_so = so_path + "." + std::to_string(::getpid());
    const std::string cmd = CompilerCmd() +
                            " -O2 -fPIC -shared -fno-strict-aliasing -w -o '" +
                            tmp_so + "' '" + cc_path + "' >/dev/null 2>&1";
    if (std::system(cmd.c_str()) != 0 ||
        std::rename(tmp_so.c_str(), so_path.c_str()) != 0) {
      std::remove(tmp_so.c_str());
      return nullptr;
    }
  }

  void* handle = ::dlopen(so_path.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (handle == nullptr) return nullptr;
  const auto entry = reinterpret_cast<EntryFn>(
      ::dlsym(handle, "mgpu_jit_entry"));
  if (entry == nullptr) {
    ::dlclose(handle);
    return nullptr;
  }
  return std::make_shared<Module>(handle, entry, std::move(table));
#endif
}

}  // namespace mgpu::glsl::jit
