// Evaluation core shared by the two shader execution engines: the
// tree-walking ShaderExec (reference oracle) and the bytecode VmExec (the
// default fast path). Every operation that touches the AluModel — arithmetic,
// constructors, unary ops, increment/decrement — lives here exactly once, so
// the engines are byte-identical in results AND in ALU/SFU/TMU op counts by
// construction.
#ifndef MGPU_GLSL_EVALCORE_H_
#define MGPU_GLSL_EVALCORE_H_

#include <array>
#include <cstdint>
#include <span>
#include <stdexcept>

#include "glsl/alu.h"
#include "glsl/ast.h"
#include "glsl/value.h"

namespace mgpu::glsl {

// Thrown on conditions a real GPU would turn into hangs or undefined
// behaviour (runaway loops, call-depth overflow); the gles2 context converts
// it into a draw error.
struct ShaderRuntimeError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

// L-value reference: maps result components onto cells of a storage Value.
// A negative n (-cell_count) marks a whole array too large for the index
// map; reads/writes then cover the head cells directly.
struct LRef {
  Value* storage = nullptr;
  Type type;
  std::array<std::uint16_t, 16> idx{};
  int n = 0;
};

// Whole-variable reference.
[[nodiscard]] LRef RefWhole(Value& storage, const Type& t);

// Static metadata of an indexing step over a value of type `bt`:
// element count limit, cells per element, and the element type.
struct IndexStep {
  int limit = 0;
  int elem_cells = 0;
  Type elem_type;
};
[[nodiscard]] IndexStep IndexStepOf(const Type& bt);

// Indexes `base` by i with the spec's runtime clamp, using precomputed step
// metadata (the bytecode VM bakes the step into the instruction).
[[nodiscard]] LRef RefIndex(const LRef& base, const IndexStep& step, int i);

// Component-selection on `base` (comps/count from the analyzed swizzle).
[[nodiscard]] LRef RefSwizzle(const LRef& base, const Type& result_type,
                              const std::uint8_t* comps, int count);

[[nodiscard]] Value ReadRef(const LRef& r);
void WriteRef(const LRef& r, const Value& v);
// ReadRef without the zero-initialized temporary: gathers straight into
// `out` (pre-typed by the caller; the bytecode VM's registers already are).
void ReadRefInto(const LRef& r, Value& out);

// Deep equality across all components (GLSL == on vectors yields a single
// bool that is true only when all components match).
[[nodiscard]] bool EqualAll(const Value& l, const Value& r);

// Binary arithmetic / comparison. `out` must be pre-typed with the result
// type; every cell is overwritten.
void EvalArithInto(AluModel& alu, BinOp op, const Value& l, const Value& r,
                   Value& out);

// Type constructor semantics (scalar/vector/matrix conversions, diagonal
// matrices, matrix resizing). `out` is pre-typed with the constructed type.
void EvalCtorInto(AluModel& alu, std::span<const Value* const> args,
                  Value& out);

// Component-wise negation (float rounds through the ALU model).
void EvalNegInto(AluModel& alu, const Value& v, Value& out);

// Scalar logical not.
void EvalNotInto(AluModel& alu, const Value& v, Value& out);

// ++/-- on an l-value; `out` receives the expression's value (old for
// postfix, updated for prefix).
void EvalIncDecInto(AluModel& alu, const LRef& ref, bool increment, bool post,
                    Value& out);

// Whole-variable ++/-- (the VM's fast path for plain loop counters):
// identical arithmetic and counts as EvalIncDecInto, minus the LRef and
// Value round trips.
void EvalIncDecVar(AluModel& alu, Value& var, bool increment, bool post,
                   Value& out);

// R-value dynamic indexing with the runtime clamp: out = base[i].
void EvalExtractInto(const Value& base, const IndexStep& step, int i,
                     Value& out);

}  // namespace mgpu::glsl

#endif  // MGPU_GLSL_EVALCORE_H_
