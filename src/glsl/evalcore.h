// Evaluation core shared by the two shader execution engines: the
// tree-walking ShaderExec (reference oracle) and the bytecode VmExec (the
// default fast path). Every operation that touches the AluModel — arithmetic,
// constructors, unary ops, increment/decrement — lives here exactly once, so
// the engines are byte-identical in results AND in ALU/SFU/TMU op counts by
// construction.
#ifndef MGPU_GLSL_EVALCORE_H_
#define MGPU_GLSL_EVALCORE_H_

#include <array>
#include <bit>
#include <cstdint>
#include <span>
#include <stdexcept>

#include "glsl/alu.h"
#include "glsl/ast.h"
#include "glsl/simd.h"
#include "glsl/value.h"

namespace mgpu::glsl {

// Default loop-iteration budget of every engine (ShaderExec, VmExec and its
// batched executors): the point at which a runaway shader is declared hung.
// Engines expose SetLoopBudget so tests can trip the trap path cheaply.
inline constexpr std::uint64_t kDefaultLoopBudget = 100'000'000;

// Thrown on conditions a real GPU would turn into hangs or undefined
// behaviour (runaway loops, call-depth overflow); the gles2 context converts
// it into a deterministic draw abort (see the README "Robustness model").
struct ShaderRuntimeError : std::runtime_error {
  explicit ShaderRuntimeError(const std::string& what, int trap_lane = -1)
      : std::runtime_error(what), lane(trap_lane) {}
  explicit ShaderRuntimeError(const char* what, int trap_lane = -1)
      : std::runtime_error(what), lane(trap_lane) {}
  // Batch lane the trap is attributed to: for the batched executors this is
  // the smallest lane index that traps — i.e. the first fragment of the
  // batch a scalar engine would have trapped on — and -1 for the scalar
  // engines (the caller knows which invocation it was running).
  int lane = -1;
};

// L-value reference: maps result components onto cells of a storage Value.
// A negative n (-cell_count) marks a whole array too large for the index
// map; reads/writes then cover the head cells directly.
struct LRef {
  Value* storage = nullptr;
  Type type;
  std::array<std::uint16_t, 16> idx{};
  int n = 0;
};

// Whole-variable reference.
[[nodiscard]] LRef RefWhole(Value& storage, const Type& t);

// Static metadata of an indexing step over a value of type `bt`:
// element count limit, cells per element, and the element type.
struct IndexStep {
  int limit = 0;
  int elem_cells = 0;
  Type elem_type;
};
[[nodiscard]] IndexStep IndexStepOf(const Type& bt);

// Indexes `base` by i with the spec's runtime clamp, using precomputed step
// metadata (the bytecode VM bakes the step into the instruction).
[[nodiscard]] LRef RefIndex(const LRef& base, const IndexStep& step, int i);

// Component-selection on `base` (comps/count from the analyzed swizzle).
[[nodiscard]] LRef RefSwizzle(const LRef& base, const Type& result_type,
                              const std::uint8_t* comps, int count);

[[nodiscard]] Value ReadRef(const LRef& r);
void WriteRef(const LRef& r, const Value& v);
// ReadRef without the zero-initialized temporary: gathers straight into
// `out` (pre-typed by the caller; the bytecode VM's registers already are).
void ReadRefInto(const LRef& r, Value& out);

// Deep equality across all components (GLSL == on vectors yields a single
// bool that is true only when all components match).
[[nodiscard]] bool EqualAll(const Value& l, const Value& r);

// Binary arithmetic / comparison. `out` must be pre-typed with the result
// type; every cell is overwritten.
void EvalArithInto(AluModel& alu, BinOp op, const Value& l, const Value& r,
                   Value& out);

// Type constructor semantics (scalar/vector/matrix conversions, diagonal
// matrices, matrix resizing). `out` is pre-typed with the constructed type.
void EvalCtorInto(AluModel& alu, std::span<const Value* const> args,
                  Value& out);

// Component-wise negation (float rounds through the ALU model).
void EvalNegInto(AluModel& alu, const Value& v, Value& out);

// Scalar logical not.
void EvalNotInto(AluModel& alu, const Value& v, Value& out);

// ++/-- on an l-value; `out` receives the expression's value (old for
// postfix, updated for prefix).
void EvalIncDecInto(AluModel& alu, const LRef& ref, bool increment, bool post,
                    Value& out);

// Whole-variable ++/-- (the VM's fast path for plain loop counters):
// identical arithmetic and counts as EvalIncDecInto, minus the LRef and
// Value round trips.
void EvalIncDecVar(AluModel& alu, Value& var, bool increment, bool post,
                   Value& out);

// R-value dynamic indexing with the runtime clamp: out = base[i].
void EvalExtractInto(const Value& base, const IndexStep& step, int i,
                     Value& out);

// ---------------------------------------------------------------------------
// Lane-batched (SoA) kernels
// ---------------------------------------------------------------------------
//
// The batched VM executes a whole fragment batch through one instruction
// stream; these kernels run one operation for every lane of the batch with
// operand/shape/op dispatch hoisted OUT of the lane loop — the per-lane
// generic path re-derives all of that per fragment. Each kernel performs,
// per lane and in ascending lane order, exactly the AluModel operations the
// scalar Eval*Into above would, so results and ALU/SFU op counts are
// byte-identical to per-lane execution by construction (locked down by the
// seeded differential fuzz harness, tests/glsl_vm_fuzz_test.cc).

// Strided per-lane operand view: `base` points at lane 0's Value; `stride`
// is 1 for per-lane storage planes (registers, lane-varying globals) and 0
// for storage shared by every lane (constants, uniforms). Lane types are
// identical across a plane, so shape decisions made on `base` hold for all.
struct BatchSrc {
  const Value* base = nullptr;
  int stride = 0;
  [[nodiscard]] const Value& at(int lane) const { return base[stride * lane]; }
};
struct BatchDst {
  Value* base = nullptr;
  int stride = 0;
  [[nodiscard]] Value& at(int lane) const { return base[stride * lane]; }
};

// Calls f(lane) for each set bit of `mask`, ascending — the lane iteration
// order every batch kernel (and the VM's per-lane replay) uses, so count
// accumulation order matches a fragment-sequential scalar run.
template <typename F>
void ForEachLane(std::uint32_t mask, F&& f) {
  for (std::uint32_t m = mask; m != 0; m &= m - 1) {
    f(std::countr_zero(m));
  }
}

// Binary arithmetic / comparison over a lane batch. Dispatches once on
// (op, operand shapes), then runs tight per-op lane loops mirroring
// EvalArithInto case for case. Total: the linear-algebra multiplies
// (mat*mat, mat*vec, vec*mat) replay EvalArithInto per lane inside the
// loop; everything else (component-wise arithmetic with scalar broadcast,
// comparisons, vector/matrix ==/!=) runs SoA.
void EvalArithBatch(AluModel& alu, BinOp op, const BatchSrc& l,
                    const BatchSrc& r, const BatchDst& out,
                    std::uint32_t mask);

// Component-wise negation / scalar logical not over a lane batch.
void EvalNegBatch(AluModel& alu, const BatchSrc& v, const BatchDst& out,
                  std::uint32_t mask);
void EvalNotBatch(AluModel& alu, const BatchSrc& v, const BatchDst& out,
                  std::uint32_t mask);

// Scalar/vector constructor over a lane batch (shape analysis hoisted; the
// all-float gather — the common shader ctor — becomes a flat copy loop).
// Matrix targets are NOT handled: the lowering tag (VmInst::soa) only
// routes scalar/vector ctors here, and the VM replays matrix ctors per
// lane through EvalCtorInto. Every lane's destination is fully cleared
// first, matching the VM's fresh-value kCtor semantics.
void EvalCtorBatch(AluModel& alu, std::span<const BatchSrc> args,
                   const BatchDst& out, std::uint32_t mask);

// ---------------------------------------------------------------------------
// SIMD entries (see simd.h for the tier model and bit-identity contract)
// ---------------------------------------------------------------------------
//
// Each *Simd entry vectorizes the stride-1 float fast path of its scalar
// SoA counterpart and falls back to it internally for every shape, op, or
// tier it does not cover — the entries are total, so a drifted lowering tag
// degrades to the scalar kernel instead of misbehaving. PRECONDITION for
// the vector paths: alu.round_identity() must hold (the VM samples the
// effective level per RunBatch and passes kScalar otherwise). The live lane
// mask gates every load and store: only cells of live lanes are touched
// (lane selection IS the mask — per-lane component vectors make masked
// execution exact by construction). Within a live lane the kernels may
// read/write cells beyond the value's component count but never beyond its
// inline storage; those cells are unobservable by contract (value.h).
//
// Bulk op accounting goes through AluModel::CountAlu with the identical
// total the scalar kernel would accumulate one Count(1) at a time.

// Covers component-wise float +,-,* (n >= 2). Division (SFU-routed),
// comparisons, int arithmetic, and linear-algebra shapes fall back.
void EvalArithBatchSimd(AluModel& alu, BinOp op, const BatchSrc& l,
                        const BatchSrc& r, const BatchDst& out,
                        std::uint32_t mask, simd::Level level);

// Covers float negation at any width (a pure sign-bit XOR; exact because
// Round is the identity under the precondition). Int negation falls back.
void EvalNegBatchSimd(AluModel& alu, const BatchSrc& v, const BatchDst& out,
                      std::uint32_t mask, simd::Level level);

// Covers the all-float splat and gather paths of float vector constructors
// whose args are all float scalars/vectors. Everything else falls back.
void EvalCtorBatchSimd(AluModel& alu, std::span<const BatchSrc> args,
                       const BatchDst& out, std::uint32_t mask,
                       simd::Level level);

}  // namespace mgpu::glsl

#endif  // MGPU_GLSL_EVALCORE_H_
