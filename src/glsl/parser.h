// Recursive-descent parser for GLSL ES 1.00.
#ifndef MGPU_GLSL_PARSER_H_
#define MGPU_GLSL_PARSER_H_

#include <memory>
#include <vector>

#include "glsl/ast.h"
#include "glsl/diag.h"
#include "glsl/token.h"

namespace mgpu::glsl {

// Parses a token stream into a translation unit. Parsing stops at the first
// syntax error (reported to `diags`); the returned (partial) tree must not be
// used when diags.has_errors().
[[nodiscard]] std::unique_ptr<TranslationUnit> Parse(
    const std::vector<Token>& tokens, DiagSink& diags);

}  // namespace mgpu::glsl

#endif  // MGPU_GLSL_PARSER_H_
