#include "glsl/interp.h"

#include <array>
#include <cmath>

#include "common/fault.h"
#include "common/strings.h"
#include "glsl/evalcore.h"

namespace mgpu::glsl {
namespace {

constexpr int kMaxCallDepth = 64;

}  // namespace

ShaderExec::ShaderExec(const CompiledShader& cs, AluModel& alu)
    : cs_(cs), alu_(alu) {
  InitGlobals();
}

int ShaderExec::GlobalSlot(const std::string& name) const {
  const VarDecl* d = cs_.FindGlobal(name);
  return d != nullptr ? d->slot : -1;
}

void ShaderExec::InitGlobals() {
  globals_.clear();
  globals_.reserve(cs_.globals.size());
  for (const VarDecl* g : cs_.globals) {
    globals_.emplace_back(g->type);
  }
  for (const VarDecl* g : cs_.globals) {
    if (g->init != nullptr) {
      globals_[static_cast<std::size_t>(g->slot)] = EvalInit(*g->init);
      if (!g->is_builtin && g->qual == Qualifier::kNone) {
        reinit_slots_.push_back(g->slot);
      }
    }
  }
}

Value ShaderExec::EvalInit(const Expr& e) {
  Frame dummy;
  return Eval(e, dummy);
}

bool ShaderExec::Run() {
  if (cs_.main == nullptr || cs_.main->body == nullptr) {
    throw RuntimeError("shader has no executable main()");
  }
  loop_steps_ = 0;
  call_depth_ = 0;
  for (const int slot : reinit_slots_) {
    globals_[static_cast<std::size_t>(slot)] =
        EvalInit(*cs_.globals[static_cast<std::size_t>(slot)]->init);
  }
  Frame frame;
  frame.slots.resize(static_cast<std::size_t>(cs_.main->frame_size));
  const Flow flow = ExecBlock(*cs_.main->body, frame);
  return flow != Flow::kDiscard;
}

void ShaderExec::CheckLoopGuard() {
  if (fault::ShouldFail(fault::Site::kVmInstruction)) {
    throw RuntimeError("injected fault: shader trap");
  }
  if (++loop_steps_ > loop_budget_) {
    throw RuntimeError("shader exceeded the loop iteration budget (a real "
                       "GPU would hang or be reset here)");
  }
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

ShaderExec::Flow ShaderExec::ExecBlock(const BlockStmt& b, Frame& f) {
  for (const StmtPtr& s : b.stmts) {
    const Flow flow = Exec(*s, f);
    if (flow != Flow::kNormal) return flow;
  }
  return Flow::kNormal;
}

ShaderExec::Flow ShaderExec::Exec(const Stmt& s, Frame& f) {
  switch (s.kind) {
    case StmtKind::kBlock:
      return ExecBlock(static_cast<const BlockStmt&>(s), f);
    case StmtKind::kExpr: {
      const auto& es = static_cast<const ExprStmt&>(s);
      if (es.expr) Eval(*es.expr, f);
      return Flow::kNormal;
    }
    case StmtKind::kDecl: {
      const auto& ds = static_cast<const DeclStmt&>(s);
      for (const auto& vd : ds.decls) {
        Value v = vd->init ? Eval(*vd->init, f) : Value(vd->type);
        f.slots[static_cast<std::size_t>(vd->slot)] = std::move(v);
      }
      return Flow::kNormal;
    }
    case StmtKind::kIf: {
      const auto& is = static_cast<const IfStmt&>(s);
      if (Eval(*is.cond, f).B(0)) return Exec(*is.then_stmt, f);
      if (is.else_stmt) return Exec(*is.else_stmt, f);
      return Flow::kNormal;
    }
    case StmtKind::kFor: {
      const auto& fs = static_cast<const ForStmt&>(s);
      if (fs.init) Exec(*fs.init, f);
      while (true) {
        CheckLoopGuard();
        if (fs.cond && !Eval(*fs.cond, f).B(0)) break;
        const Flow flow = Exec(*fs.body, f);
        if (flow == Flow::kBreak) break;
        if (flow == Flow::kReturn || flow == Flow::kDiscard) return flow;
        if (fs.step) Eval(*fs.step, f);
      }
      return Flow::kNormal;
    }
    case StmtKind::kWhile: {
      const auto& ws = static_cast<const WhileStmt&>(s);
      while (true) {
        CheckLoopGuard();
        if (!Eval(*ws.cond, f).B(0)) break;
        const Flow flow = Exec(*ws.body, f);
        if (flow == Flow::kBreak) break;
        if (flow == Flow::kReturn || flow == Flow::kDiscard) return flow;
      }
      return Flow::kNormal;
    }
    case StmtKind::kDoWhile: {
      const auto& ds = static_cast<const DoWhileStmt&>(s);
      while (true) {
        CheckLoopGuard();
        const Flow flow = Exec(*ds.body, f);
        if (flow == Flow::kBreak) break;
        if (flow == Flow::kReturn || flow == Flow::kDiscard) return flow;
        if (!Eval(*ds.cond, f).B(0)) break;
      }
      return Flow::kNormal;
    }
    case StmtKind::kReturn: {
      const auto& rs = static_cast<const ReturnStmt&>(s);
      if (rs.value) {
        f.ret = Eval(*rs.value, f);
      }
      f.returned = true;
      return Flow::kReturn;
    }
    case StmtKind::kBreak:
      return Flow::kBreak;
    case StmtKind::kContinue:
      return Flow::kContinue;
    case StmtKind::kDiscard:
      return Flow::kDiscard;
  }
  return Flow::kNormal;
}

// ---------------------------------------------------------------------------
// L-values
// ---------------------------------------------------------------------------

LRef ShaderExec::EvalLValue(const Expr& e, Frame& f) {
  switch (e.kind) {
    case ExprKind::kVarRef: {
      const auto& v = static_cast<const VarRefExpr&>(e);
      Value& storage = v.scope == VarScope::kGlobal
                           ? globals_[static_cast<std::size_t>(v.slot)]
                           : f.slots[static_cast<std::size_t>(v.slot)];
      return RefWhole(storage, v.type);
    }
    case ExprKind::kIndex: {
      const auto& ix = static_cast<const IndexExpr&>(e);
      const LRef base = EvalLValue(*ix.base, f);
      const int i = Eval(*ix.index, f).I(0);
      return RefIndex(base, IndexStepOf(ix.base->type), i);
    }
    case ExprKind::kSwizzle: {
      const auto& sw = static_cast<const SwizzleExpr&>(e);
      const LRef base = EvalLValue(*sw.base, f);
      return RefSwizzle(base, sw.type, sw.comps.data(), sw.count);
    }
    default:
      throw RuntimeError("internal error: expression is not an l-value");
  }
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

Value ShaderExec::Eval(const Expr& e, Frame& f) {
  switch (e.kind) {
    case ExprKind::kIntLit:
      return Value::MakeInt(static_cast<const IntLitExpr&>(e).value);
    case ExprKind::kFloatLit:
      return Value::MakeFloat(static_cast<const FloatLitExpr&>(e).value);
    case ExprKind::kBoolLit:
      return Value::MakeBool(static_cast<const BoolLitExpr&>(e).value);
    case ExprKind::kVarRef: {
      const auto& v = static_cast<const VarRefExpr&>(e);
      return v.scope == VarScope::kGlobal
                 ? globals_[static_cast<std::size_t>(v.slot)]
                 : f.slots[static_cast<std::size_t>(v.slot)];
    }
    case ExprKind::kCall: {
      const auto& call = static_cast<const CallExpr&>(e);
      if (call.fn != nullptr) return CallFunction(*call.fn, call, f);
      std::vector<Value> args;
      args.reserve(call.args.size());
      for (const auto& a : call.args) args.push_back(Eval(*a, f));
      if (args.size() > static_cast<std::size_t>(kMaxBuiltinArgs)) {
        throw RuntimeError("internal error: builtin argument count");
      }
      std::array<const Value*, kMaxBuiltinArgs> ptrs{};
      for (std::size_t i = 0; i < args.size(); ++i) ptrs[i] = &args[i];
      return EvalBuiltin(static_cast<Builtin>(call.builtin), call.type,
                         std::span<const Value* const>(ptrs.data(),
                                                       args.size()),
                         alu_, texture_);
    }
    case ExprKind::kCtor:
      return EvalCtor(static_cast<const CtorExpr&>(e), f);
    case ExprKind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(e);
      switch (b.op) {
        case BinOp::kLogicalAnd: {
          if (!Eval(*b.lhs, f).B(0)) return Value::MakeBool(false);
          return Value::MakeBool(Eval(*b.rhs, f).B(0));
        }
        case BinOp::kLogicalOr: {
          if (Eval(*b.lhs, f).B(0)) return Value::MakeBool(true);
          return Value::MakeBool(Eval(*b.rhs, f).B(0));
        }
        case BinOp::kLogicalXor: {
          const bool l = Eval(*b.lhs, f).B(0);
          const bool r = Eval(*b.rhs, f).B(0);
          return Value::MakeBool(l != r);
        }
        default: {
          const Value l = Eval(*b.lhs, f);
          const Value r = Eval(*b.rhs, f);
          return EvalArith(b.op, l, r, b.type);
        }
      }
    }
    case ExprKind::kUnary: {
      const auto& u = static_cast<const UnaryExpr&>(e);
      switch (u.op) {
        case UnOp::kPlus:
          return Eval(*u.operand, f);
        case UnOp::kNeg: {
          const Value v = Eval(*u.operand, f);
          Value out(v.type());
          EvalNegInto(alu_, v, out);
          return out;
        }
        case UnOp::kNot: {
          const Value v = Eval(*u.operand, f);
          Value out(MakeType(BaseType::kBool));
          EvalNotInto(alu_, v, out);
          return out;
        }
        case UnOp::kPreInc:
        case UnOp::kPreDec:
        case UnOp::kPostInc:
        case UnOp::kPostDec: {
          const LRef ref = EvalLValue(*u.operand, f);
          const bool inc =
              u.op == UnOp::kPreInc || u.op == UnOp::kPostInc;
          const bool post =
              u.op == UnOp::kPostInc || u.op == UnOp::kPostDec;
          Value out;
          EvalIncDecInto(alu_, ref, inc, post, out);
          return out;
        }
      }
      return Value();
    }
    case ExprKind::kAssign: {
      const auto& a = static_cast<const AssignExpr&>(e);
      const Value rhs = Eval(*a.rhs, f);
      const LRef ref = EvalLValue(*a.lhs, f);
      if (a.op == AssignOp::kAssign) {
        WriteRef(ref, rhs);
        return rhs;
      }
      const BinOp op = a.op == AssignOp::kAdd   ? BinOp::kAdd
                       : a.op == AssignOp::kSub ? BinOp::kSub
                       : a.op == AssignOp::kMul ? BinOp::kMul
                                                : BinOp::kDiv;
      const Value result = EvalArith(op, ReadRef(ref), rhs, a.type);
      WriteRef(ref, result);
      return result;
    }
    case ExprKind::kTernary: {
      const auto& t = static_cast<const TernaryExpr&>(e);
      return Eval(*t.cond, f).B(0) ? Eval(*t.then_expr, f)
                                   : Eval(*t.else_expr, f);
    }
    case ExprKind::kIndex: {
      const auto& ix = static_cast<const IndexExpr&>(e);
      const Value base = Eval(*ix.base, f);
      const int i = Eval(*ix.index, f).I(0);
      Value out(ix.type);
      EvalExtractInto(base, IndexStepOf(ix.base->type), i, out);
      return out;
    }
    case ExprKind::kSwizzle: {
      const auto& sw = static_cast<const SwizzleExpr&>(e);
      const Value base = Eval(*sw.base, f);
      Value out(sw.type);
      for (int k = 0; k < sw.count; ++k) {
        out.data()[k] = base.data()[sw.comps[static_cast<std::size_t>(k)]];
      }
      return out;
    }
    case ExprKind::kComma: {
      const auto& c = static_cast<const CommaExpr&>(e);
      Eval(*c.lhs, f);
      return Eval(*c.rhs, f);
    }
  }
  return Value();
}

Value ShaderExec::EvalArith(BinOp op, const Value& l, const Value& r,
                            Type result) {
  Value out(result);
  EvalArithInto(alu_, op, l, r, out);
  return out;
}

Value ShaderExec::EvalCtor(const CtorExpr& c, Frame& f) {
  std::vector<Value> args;
  args.reserve(c.args.size());
  for (const auto& a : c.args) args.push_back(Eval(*a, f));
  std::vector<const Value*> ptrs;
  ptrs.reserve(args.size());
  for (const Value& a : args) ptrs.push_back(&a);
  Value out(c.ctor_type);
  EvalCtorInto(alu_, ptrs, out);
  return out;
}

Value ShaderExec::CallFunction(const FunctionDecl& fn, const CallExpr& call,
                               Frame& caller) {
  if (++call_depth_ > kMaxCallDepth) {
    --call_depth_;
    throw RuntimeError("shader call depth exceeded");
  }
  // Find the *definition* (a prototype may have been registered).
  const FunctionDecl* def = &fn;
  if (def->body == nullptr) {
    for (const auto& other : cs_.tu->functions) {
      if (other->name == fn.name && other->body != nullptr &&
          other->params.size() == fn.params.size()) {
        bool same = true;
        for (std::size_t i = 0; i < fn.params.size(); ++i) {
          if (!(other->params[i]->type == fn.params[i]->type)) {
            same = false;
            break;
          }
        }
        if (same) {
          def = other.get();
          break;
        }
      }
    }
    if (def->body == nullptr) {
      --call_depth_;
      throw RuntimeError(StrFormat("call to undefined function '%s'",
                                   fn.name.c_str()));
    }
  }

  Frame frame;
  frame.slots.resize(static_cast<std::size_t>(def->frame_size));

  // Copy-in.
  std::vector<LRef> out_refs(call.args.size());
  for (std::size_t i = 0; i < call.args.size(); ++i) {
    const VarDecl& p = *def->params[i];
    if (p.dir == ParamDir::kIn) {
      frame.slots[static_cast<std::size_t>(p.slot)] = Eval(*call.args[i], caller);
    } else {
      out_refs[i] = EvalLValue(*call.args[i], caller);
      if (p.dir == ParamDir::kInOut) {
        frame.slots[static_cast<std::size_t>(p.slot)] = ReadRef(out_refs[i]);
      } else {
        frame.slots[static_cast<std::size_t>(p.slot)] = Value(p.type);
      }
    }
  }

  ExecBlock(*def->body, frame);

  // Copy-out.
  for (std::size_t i = 0; i < call.args.size(); ++i) {
    const VarDecl& p = *def->params[i];
    if (p.dir != ParamDir::kIn) {
      WriteRef(out_refs[i], frame.slots[static_cast<std::size_t>(p.slot)]);
    }
  }
  --call_depth_;
  if (!frame.returned && def->return_type.base != BaseType::kVoid) {
    return Value(def->return_type);  // fell off the end: zero value
  }
  return std::move(frame.ret);
}

}  // namespace mgpu::glsl
