#include "glsl/interp.h"

#include <cmath>

#include "common/strings.h"

namespace mgpu::glsl {
namespace {

constexpr std::uint64_t kMaxLoopSteps = 100'000'000;
constexpr int kMaxCallDepth = 64;

}  // namespace

ShaderExec::ShaderExec(const CompiledShader& cs, AluModel& alu)
    : cs_(cs), alu_(alu) {
  InitGlobals();
}

int ShaderExec::GlobalSlot(const std::string& name) const {
  const VarDecl* d = cs_.FindGlobal(name);
  return d != nullptr ? d->slot : -1;
}

void ShaderExec::InitGlobals() {
  globals_.clear();
  globals_.reserve(cs_.globals.size());
  for (const VarDecl* g : cs_.globals) {
    globals_.emplace_back(g->type);
  }
  for (const VarDecl* g : cs_.globals) {
    if (g->init != nullptr) {
      globals_[static_cast<std::size_t>(g->slot)] = EvalInit(*g->init);
      if (!g->is_builtin && g->qual == Qualifier::kNone) {
        reinit_slots_.push_back(g->slot);
      }
    }
  }
}

Value ShaderExec::EvalInit(const Expr& e) {
  Frame dummy;
  return Eval(e, dummy);
}

bool ShaderExec::Run() {
  if (cs_.main == nullptr || cs_.main->body == nullptr) {
    throw RuntimeError("shader has no executable main()");
  }
  loop_steps_ = 0;
  call_depth_ = 0;
  for (const int slot : reinit_slots_) {
    globals_[static_cast<std::size_t>(slot)] =
        EvalInit(*cs_.globals[static_cast<std::size_t>(slot)]->init);
  }
  Frame frame;
  frame.slots.resize(static_cast<std::size_t>(cs_.main->frame_size));
  const Flow flow = ExecBlock(*cs_.main->body, frame);
  return flow != Flow::kDiscard;
}

void ShaderExec::CheckLoopGuard() {
  if (++loop_steps_ > kMaxLoopSteps) {
    throw RuntimeError("shader exceeded the loop iteration budget (a real "
                       "GPU would hang or be reset here)");
  }
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

ShaderExec::Flow ShaderExec::ExecBlock(const BlockStmt& b, Frame& f) {
  for (const StmtPtr& s : b.stmts) {
    const Flow flow = Exec(*s, f);
    if (flow != Flow::kNormal) return flow;
  }
  return Flow::kNormal;
}

ShaderExec::Flow ShaderExec::Exec(const Stmt& s, Frame& f) {
  switch (s.kind) {
    case StmtKind::kBlock:
      return ExecBlock(static_cast<const BlockStmt&>(s), f);
    case StmtKind::kExpr: {
      const auto& es = static_cast<const ExprStmt&>(s);
      if (es.expr) Eval(*es.expr, f);
      return Flow::kNormal;
    }
    case StmtKind::kDecl: {
      const auto& ds = static_cast<const DeclStmt&>(s);
      for (const auto& vd : ds.decls) {
        Value v = vd->init ? Eval(*vd->init, f) : Value(vd->type);
        f.slots[static_cast<std::size_t>(vd->slot)] = std::move(v);
      }
      return Flow::kNormal;
    }
    case StmtKind::kIf: {
      const auto& is = static_cast<const IfStmt&>(s);
      if (Eval(*is.cond, f).B(0)) return Exec(*is.then_stmt, f);
      if (is.else_stmt) return Exec(*is.else_stmt, f);
      return Flow::kNormal;
    }
    case StmtKind::kFor: {
      const auto& fs = static_cast<const ForStmt&>(s);
      if (fs.init) Exec(*fs.init, f);
      while (true) {
        CheckLoopGuard();
        if (fs.cond && !Eval(*fs.cond, f).B(0)) break;
        const Flow flow = Exec(*fs.body, f);
        if (flow == Flow::kBreak) break;
        if (flow == Flow::kReturn || flow == Flow::kDiscard) return flow;
        if (fs.step) Eval(*fs.step, f);
      }
      return Flow::kNormal;
    }
    case StmtKind::kWhile: {
      const auto& ws = static_cast<const WhileStmt&>(s);
      while (true) {
        CheckLoopGuard();
        if (!Eval(*ws.cond, f).B(0)) break;
        const Flow flow = Exec(*ws.body, f);
        if (flow == Flow::kBreak) break;
        if (flow == Flow::kReturn || flow == Flow::kDiscard) return flow;
      }
      return Flow::kNormal;
    }
    case StmtKind::kDoWhile: {
      const auto& ds = static_cast<const DoWhileStmt&>(s);
      while (true) {
        CheckLoopGuard();
        const Flow flow = Exec(*ds.body, f);
        if (flow == Flow::kBreak) break;
        if (flow == Flow::kReturn || flow == Flow::kDiscard) return flow;
        if (!Eval(*ds.cond, f).B(0)) break;
      }
      return Flow::kNormal;
    }
    case StmtKind::kReturn: {
      const auto& rs = static_cast<const ReturnStmt&>(s);
      if (rs.value) {
        f.ret = Eval(*rs.value, f);
      }
      f.returned = true;
      return Flow::kReturn;
    }
    case StmtKind::kBreak:
      return Flow::kBreak;
    case StmtKind::kContinue:
      return Flow::kContinue;
    case StmtKind::kDiscard:
      return Flow::kDiscard;
  }
  return Flow::kNormal;
}

// ---------------------------------------------------------------------------
// L-values
// ---------------------------------------------------------------------------

ShaderExec::LRef ShaderExec::EvalLValue(const Expr& e, Frame& f) {
  switch (e.kind) {
    case ExprKind::kVarRef: {
      const auto& v = static_cast<const VarRefExpr&>(e);
      LRef r;
      r.storage = v.scope == VarScope::kGlobal
                      ? &globals_[static_cast<std::size_t>(v.slot)]
                      : &f.slots[static_cast<std::size_t>(v.slot)];
      r.type = v.type;
      r.n = v.type.CellCount() > 16 ? 16 : v.type.CellCount();
      // Arrays larger than 16 cells are referenced whole only via index
      // expressions below; identity maps cover the head.
      for (int i = 0; i < r.n; ++i) {
        r.idx[static_cast<std::size_t>(i)] = static_cast<std::uint16_t>(i);
      }
      if (v.type.CellCount() > 16) r.n = -v.type.CellCount();  // whole-array marker
      return r;
    }
    case ExprKind::kIndex: {
      const auto& ix = static_cast<const IndexExpr&>(e);
      LRef base = EvalLValue(*ix.base, f);
      const Type bt = ix.base->type;
      int i = Eval(*ix.index, f).I(0);
      int limit, elem_cells;
      Type elem_type;
      if (bt.IsArray()) {
        limit = bt.array_size;
        elem_type = bt.ElementType();
        elem_cells = ComponentCount(bt.base);
      } else if (IsMatrix(bt.base)) {
        limit = ColumnCount(bt.base);
        elem_type = MakeType(ColumnTypeOf(bt.base));
        elem_cells = RowCount(bt.base);
      } else {
        limit = ComponentCount(bt.base);
        elem_type = MakeType(ScalarOf(bt.base));
        elem_cells = 1;
      }
      if (i < 0) i = 0;
      if (i >= limit) i = limit - 1;  // runtime clamp (UB in the spec)
      LRef r;
      r.storage = base.storage;
      r.type = elem_type;
      r.n = elem_cells;
      for (int k = 0; k < elem_cells; ++k) {
        const int flat = i * elem_cells + k;
        r.idx[static_cast<std::size_t>(k)] =
            base.n < 0 ? static_cast<std::uint16_t>(flat)
                       : base.idx[static_cast<std::size_t>(flat)];
      }
      return r;
    }
    case ExprKind::kSwizzle: {
      const auto& sw = static_cast<const SwizzleExpr&>(e);
      LRef base = EvalLValue(*sw.base, f);
      LRef r;
      r.storage = base.storage;
      r.type = sw.type;
      r.n = sw.count;
      for (int k = 0; k < sw.count; ++k) {
        r.idx[static_cast<std::size_t>(k)] =
            base.idx[sw.comps[static_cast<std::size_t>(k)]];
      }
      return r;
    }
    default:
      throw RuntimeError("internal error: expression is not an l-value");
  }
}

Value ShaderExec::ReadRef(const LRef& r) const {
  Value v(r.type);
  if (r.n < 0) {
    // Whole large array.
    for (int i = 0; i < -r.n; ++i) v.data()[i] = r.storage->data()[i];
    return v;
  }
  for (int i = 0; i < r.n; ++i) {
    v.data()[i] = r.storage->data()[r.idx[static_cast<std::size_t>(i)]];
  }
  return v;
}

void ShaderExec::WriteRef(const LRef& r, const Value& v) {
  if (r.n < 0) {
    for (int i = 0; i < -r.n; ++i) r.storage->data()[i] = v.data()[i];
    return;
  }
  for (int i = 0; i < r.n; ++i) {
    r.storage->data()[r.idx[static_cast<std::size_t>(i)]] = v.data()[i];
  }
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

Value ShaderExec::Eval(const Expr& e, Frame& f) {
  switch (e.kind) {
    case ExprKind::kIntLit:
      return Value::MakeInt(static_cast<const IntLitExpr&>(e).value);
    case ExprKind::kFloatLit:
      return Value::MakeFloat(static_cast<const FloatLitExpr&>(e).value);
    case ExprKind::kBoolLit:
      return Value::MakeBool(static_cast<const BoolLitExpr&>(e).value);
    case ExprKind::kVarRef: {
      const auto& v = static_cast<const VarRefExpr&>(e);
      return v.scope == VarScope::kGlobal
                 ? globals_[static_cast<std::size_t>(v.slot)]
                 : f.slots[static_cast<std::size_t>(v.slot)];
    }
    case ExprKind::kCall: {
      const auto& call = static_cast<const CallExpr&>(e);
      if (call.fn != nullptr) return CallFunction(*call.fn, call, f);
      std::vector<Value> args;
      args.reserve(call.args.size());
      for (const auto& a : call.args) args.push_back(Eval(*a, f));
      return EvalBuiltin(static_cast<Builtin>(call.builtin), call.type, args,
                         alu_, texture_);
    }
    case ExprKind::kCtor:
      return EvalCtor(static_cast<const CtorExpr&>(e), f);
    case ExprKind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(e);
      switch (b.op) {
        case BinOp::kLogicalAnd: {
          if (!Eval(*b.lhs, f).B(0)) return Value::MakeBool(false);
          return Value::MakeBool(Eval(*b.rhs, f).B(0));
        }
        case BinOp::kLogicalOr: {
          if (Eval(*b.lhs, f).B(0)) return Value::MakeBool(true);
          return Value::MakeBool(Eval(*b.rhs, f).B(0));
        }
        case BinOp::kLogicalXor: {
          const bool l = Eval(*b.lhs, f).B(0);
          const bool r = Eval(*b.rhs, f).B(0);
          return Value::MakeBool(l != r);
        }
        default: {
          const Value l = Eval(*b.lhs, f);
          const Value r = Eval(*b.rhs, f);
          return EvalArith(b.op, l, r, b.type);
        }
      }
    }
    case ExprKind::kUnary: {
      const auto& u = static_cast<const UnaryExpr&>(e);
      switch (u.op) {
        case UnOp::kPlus:
          return Eval(*u.operand, f);
        case UnOp::kNeg: {
          const Value v = Eval(*u.operand, f);
          Value out(v.type());
          const bool is_float = v.scalar() == BaseType::kFloat;
          for (int i = 0; i < v.count(); ++i) {
            alu_.Count(1);
            if (is_float) {
              out.SetF(i, alu_.Round(-v.F(i)));
            } else {
              out.SetI(i, -v.I(i));
            }
          }
          return out;
        }
        case UnOp::kNot: {
          const Value v = Eval(*u.operand, f);
          alu_.Count(1);
          return Value::MakeBool(!v.B(0));
        }
        case UnOp::kPreInc:
        case UnOp::kPreDec:
        case UnOp::kPostInc:
        case UnOp::kPostDec: {
          const LRef ref = EvalLValue(*u.operand, f);
          const Value old = ReadRef(ref);
          Value updated(old.type());
          const float delta =
              (u.op == UnOp::kPreInc || u.op == UnOp::kPostInc) ? 1.0f : -1.0f;
          const bool is_float = old.scalar() == BaseType::kFloat;
          for (int i = 0; i < old.count(); ++i) {
            if (is_float) {
              updated.SetF(i, alu_.Add(old.F(i), delta));
            } else {
              alu_.Count(1);
              updated.SetI(i, old.I(i) + static_cast<std::int32_t>(delta));
            }
          }
          WriteRef(ref, updated);
          const bool post =
              u.op == UnOp::kPostInc || u.op == UnOp::kPostDec;
          return post ? old : updated;
        }
      }
      return Value();
    }
    case ExprKind::kAssign: {
      const auto& a = static_cast<const AssignExpr&>(e);
      const Value rhs = Eval(*a.rhs, f);
      const LRef ref = EvalLValue(*a.lhs, f);
      if (a.op == AssignOp::kAssign) {
        WriteRef(ref, rhs);
        return rhs;
      }
      const BinOp op = a.op == AssignOp::kAdd   ? BinOp::kAdd
                       : a.op == AssignOp::kSub ? BinOp::kSub
                       : a.op == AssignOp::kMul ? BinOp::kMul
                                                : BinOp::kDiv;
      const Value result = EvalArith(op, ReadRef(ref), rhs, a.type);
      WriteRef(ref, result);
      return result;
    }
    case ExprKind::kTernary: {
      const auto& t = static_cast<const TernaryExpr&>(e);
      return Eval(*t.cond, f).B(0) ? Eval(*t.then_expr, f)
                                   : Eval(*t.else_expr, f);
    }
    case ExprKind::kIndex: {
      const auto& ix = static_cast<const IndexExpr&>(e);
      const Value base = Eval(*ix.base, f);
      int i = Eval(*ix.index, f).I(0);
      const Type bt = ix.base->type;
      int limit, elem_cells;
      if (bt.IsArray()) {
        limit = bt.array_size;
        elem_cells = ComponentCount(bt.base);
      } else if (IsMatrix(bt.base)) {
        limit = ColumnCount(bt.base);
        elem_cells = RowCount(bt.base);
      } else {
        limit = ComponentCount(bt.base);
        elem_cells = 1;
      }
      if (i < 0) i = 0;
      if (i >= limit) i = limit - 1;
      Value out(ix.type);
      for (int k = 0; k < elem_cells; ++k) {
        out.data()[k] = base.data()[i * elem_cells + k];
      }
      return out;
    }
    case ExprKind::kSwizzle: {
      const auto& sw = static_cast<const SwizzleExpr&>(e);
      const Value base = Eval(*sw.base, f);
      Value out(sw.type);
      for (int k = 0; k < sw.count; ++k) {
        out.data()[k] = base.data()[sw.comps[static_cast<std::size_t>(k)]];
      }
      return out;
    }
    case ExprKind::kComma: {
      const auto& c = static_cast<const CommaExpr&>(e);
      Eval(*c.lhs, f);
      return Eval(*c.rhs, f);
    }
  }
  return Value();
}

bool EqualAll(const Value& l, const Value& r);

Value ShaderExec::EvalArith(BinOp op, const Value& l, const Value& r,
                            Type result) {
  Value out(result);
  const BaseType lb = l.type().base;
  const BaseType rb = r.type().base;
  const bool is_float = ScalarOf(lb) == BaseType::kFloat;

  // Linear-algebra multiplication cases first.
  if (op == BinOp::kMul && IsMatrix(lb) && IsMatrix(rb)) {
    const int n = RowCount(lb);
    for (int c = 0; c < n; ++c) {
      for (int row = 0; row < n; ++row) {
        float acc = alu_.Mul(l.F(row), r.F(c * n));
        for (int k = 1; k < n; ++k) {
          acc = alu_.Add(acc, alu_.Mul(l.F(k * n + row), r.F(c * n + k)));
        }
        out.SetF(c * n + row, acc);
      }
    }
    return out;
  }
  if (op == BinOp::kMul && IsMatrix(lb) && IsVector(rb)) {
    const int n = RowCount(lb);
    for (int row = 0; row < n; ++row) {
      float acc = alu_.Mul(l.F(row), r.F(0));
      for (int k = 1; k < n; ++k) {
        acc = alu_.Add(acc, alu_.Mul(l.F(k * n + row), r.F(k)));
      }
      out.SetF(row, acc);
    }
    return out;
  }
  if (op == BinOp::kMul && IsVector(lb) && IsMatrix(rb)) {
    const int n = RowCount(rb);
    for (int c = 0; c < n; ++c) {
      float acc = alu_.Mul(l.F(0), r.F(c * n));
      for (int k = 1; k < n; ++k) {
        acc = alu_.Add(acc, alu_.Mul(l.F(k), r.F(c * n + k)));
      }
      out.SetF(c, acc);
    }
    return out;
  }

  // Component-wise with scalar broadcast.
  const int n = out.count();
  const bool lbc = l.count() == 1 && n > 1;
  const bool rbc = r.count() == 1 && n > 1;
  for (int i = 0; i < n; ++i) {
    const int li = lbc ? 0 : i;
    const int ri = rbc ? 0 : i;
    if (is_float) {
      const float a = l.F(li);
      const float b = r.F(ri);
      float v = 0.0f;
      switch (op) {
        case BinOp::kAdd: v = alu_.Add(a, b); break;
        case BinOp::kSub: v = alu_.Sub(a, b); break;
        case BinOp::kMul: v = alu_.Mul(a, b); break;
        case BinOp::kDiv: v = alu_.Div(a, b); break;
        case BinOp::kLt: alu_.Count(1); out.SetB(i, a < b); continue;
        case BinOp::kGt: alu_.Count(1); out.SetB(i, a > b); continue;
        case BinOp::kLe: alu_.Count(1); out.SetB(i, a <= b); continue;
        case BinOp::kGe: alu_.Count(1); out.SetB(i, a >= b); continue;
        case BinOp::kEq: alu_.Count(1); out.SetB(i, EqualAll(l, r)); continue;
        case BinOp::kNe: alu_.Count(1); out.SetB(i, !EqualAll(l, r)); continue;
        default: break;
      }
      out.SetF(i, v);
    } else {
      const std::int32_t a = l.scalar() == BaseType::kBool ? l.I(li) : l.I(li);
      const std::int32_t b = r.I(ri);
      alu_.Count(1);
      switch (op) {
        case BinOp::kAdd: out.SetI(i, a + b); break;
        case BinOp::kSub: out.SetI(i, a - b); break;
        case BinOp::kMul: out.SetI(i, a * b); break;
        case BinOp::kDiv: out.SetI(i, b == 0 ? 0 : a / b); break;
        case BinOp::kLt: out.SetB(i, a < b); break;
        case BinOp::kGt: out.SetB(i, a > b); break;
        case BinOp::kLe: out.SetB(i, a <= b); break;
        case BinOp::kGe: out.SetB(i, a >= b); break;
        case BinOp::kEq: out.SetB(i, EqualAll(l, r)); break;
        case BinOp::kNe: out.SetB(i, !EqualAll(l, r)); break;
        default: break;
      }
    }
  }
  return out;
}

Value ShaderExec::EvalCtor(const CtorExpr& c, Frame& f) {
  std::vector<Value> args;
  args.reserve(c.args.size());
  for (const auto& a : c.args) args.push_back(Eval(*a, f));
  const BaseType target = c.ctor_type.base;
  Value out(c.ctor_type);
  alu_.Count(out.count());  // conversion/mov cost

  if (IsScalar(target)) {
    out.SetConverted(0, args[0], 0);
    return out;
  }
  if (IsVector(target)) {
    const int n = out.count();
    if (args.size() == 1 && args[0].count() == 1) {
      for (int i = 0; i < n; ++i) out.SetConverted(i, args[0], 0);
      return out;
    }
    int w = 0;
    for (const Value& a : args) {
      for (int i = 0; i < a.count() && w < n; ++i, ++w) {
        out.SetConverted(w, a, i);
      }
    }
    return out;
  }
  // Matrices.
  const int n = RowCount(target);
  if (args.size() == 1 && args[0].count() == 1) {
    for (int col = 0; col < n; ++col) {
      for (int row = 0; row < n; ++row) {
        out.SetF(col * n + row, col == row ? args[0].AsFloat(0) : 0.0f);
      }
    }
    return out;
  }
  if (args.size() == 1 && IsMatrix(args[0].type().base)) {
    const int m = RowCount(args[0].type().base);
    for (int col = 0; col < n; ++col) {
      for (int row = 0; row < n; ++row) {
        float v = col == row ? 1.0f : 0.0f;
        if (col < m && row < m) v = args[0].F(col * m + row);
        out.SetF(col * n + row, v);
      }
    }
    return out;
  }
  int w = 0;
  for (const Value& a : args) {
    for (int i = 0; i < a.count() && w < out.count(); ++i, ++w) {
      out.SetConverted(w, a, i);
    }
  }
  return out;
}

Value ShaderExec::CallFunction(const FunctionDecl& fn, const CallExpr& call,
                               Frame& caller) {
  if (++call_depth_ > kMaxCallDepth) {
    --call_depth_;
    throw RuntimeError("shader call depth exceeded");
  }
  // Find the *definition* (a prototype may have been registered).
  const FunctionDecl* def = &fn;
  if (def->body == nullptr) {
    for (const auto& other : cs_.tu->functions) {
      if (other->name == fn.name && other->body != nullptr &&
          other->params.size() == fn.params.size()) {
        bool same = true;
        for (std::size_t i = 0; i < fn.params.size(); ++i) {
          if (!(other->params[i]->type == fn.params[i]->type)) {
            same = false;
            break;
          }
        }
        if (same) {
          def = other.get();
          break;
        }
      }
    }
    if (def->body == nullptr) {
      --call_depth_;
      throw RuntimeError(StrFormat("call to undefined function '%s'",
                                   fn.name.c_str()));
    }
  }

  Frame frame;
  frame.slots.resize(static_cast<std::size_t>(def->frame_size));

  // Copy-in.
  std::vector<LRef> out_refs(call.args.size());
  for (std::size_t i = 0; i < call.args.size(); ++i) {
    const VarDecl& p = *def->params[i];
    if (p.dir == ParamDir::kIn) {
      frame.slots[static_cast<std::size_t>(p.slot)] = Eval(*call.args[i], caller);
    } else {
      out_refs[i] = EvalLValue(*call.args[i], caller);
      if (p.dir == ParamDir::kInOut) {
        frame.slots[static_cast<std::size_t>(p.slot)] = ReadRef(out_refs[i]);
      } else {
        frame.slots[static_cast<std::size_t>(p.slot)] = Value(p.type);
      }
    }
  }

  ExecBlock(*def->body, frame);

  // Copy-out.
  for (std::size_t i = 0; i < call.args.size(); ++i) {
    const VarDecl& p = *def->params[i];
    if (p.dir != ParamDir::kIn) {
      WriteRef(out_refs[i], frame.slots[static_cast<std::size_t>(p.slot)]);
    }
  }
  --call_depth_;
  if (!frame.returned && def->return_type.base != BaseType::kVoid) {
    return Value(def->return_type);  // fell off the end: zero value
  }
  return std::move(frame.ret);
}

// Deep equality across all components (GLSL == on vectors yields a single
// bool that is true only when all components match).
bool EqualAll(const Value& l, const Value& r) {
  if (l.count() != r.count()) return false;
  const bool is_float = l.scalar() == BaseType::kFloat;
  for (int i = 0; i < l.count(); ++i) {
    if (is_float) {
      if (l.F(i) != r.F(i)) return false;
    } else {
      if (l.I(i) != r.I(i)) return false;
    }
  }
  return true;
}

}  // namespace mgpu::glsl
