// The ALU model abstracts the GPU's arithmetic behaviour. Every float
// operation the interpreter performs is routed through an AluModel, which
// serves two purposes central to this reproduction:
//   1. precision modeling — the VideoCore IV model (vc4::Vc4Alu) implements
//      SFU functions (exp2/log2/recip/rsqrt) with the reduced accuracy of the
//      real special function unit, which is what produces the paper's
//      "accurate within the 15 most significant bits of the mantissa" result;
//   2. operation counting — ALU/SFU/TMU counts feed the timing model that
//      regenerates the paper's speedup table without hardware.
#ifndef MGPU_GLSL_ALU_H_
#define MGPU_GLSL_ALU_H_

#include <cstdint>
#include <memory>

namespace mgpu::glsl {

struct OpCounts {
  std::uint64_t alu = 0;  // simple float/int ALU operations
  std::uint64_t sfu = 0;  // reciprocal-class SFU ops (recip, rsqrt)
  std::uint64_t sfu_trans = 0;  // transcendental SFU ops (exp2, log2, trig)
  std::uint64_t tmu = 0;  // texture fetches (total)
  std::uint64_t tmu_miss = 0;  // fetches that missed the texture cache

  OpCounts& operator+=(const OpCounts& o) {
    alu += o.alu;
    sfu += o.sfu;
    sfu_trans += o.sfu_trans;
    tmu += o.tmu;
    tmu_miss += o.tmu_miss;
    return *this;
  }
};

class AluModel {
 public:
  virtual ~AluModel() = default;

  // --- basic float ALU (counted as `alu`) ---
  // The identity-round flag lets these inline helpers skip the virtual
  // Round() on the hot path when the model's register precision is full
  // fp32 (ExactAlu always; Vc4Alu for IEEE-exact profiles) — bit-identical
  // by definition of the flag.
  float Add(float a, float b) {
    Count(1);
    const float r = a + b;
    return round_identity_ ? r : Round(r);
  }
  float Sub(float a, float b) {
    Count(1);
    const float r = a - b;
    return round_identity_ ? r : Round(r);
  }
  float Mul(float a, float b) {
    Count(1);
    const float r = a * b;
    return round_identity_ ? r : Round(r);
  }
  // Division: GPUs implement a/b as a * recip(b); the cost and precision of
  // the reciprocal belong to the SFU.
  float Div(float a, float b) {
    Count(1);
    const float r = a * Recip(b);
    return round_identity_ ? r : Round(r);
  }

  // --- special functions (counted as `sfu`, precision model hooks) ---
  virtual float Recip(float x);
  virtual float RecipSqrt(float x);
  virtual float Exp2(float x);
  virtual float Log2(float x);
  // Derived functions, implemented on top of the primitives the way mobile
  // shader compilers lower them.
  float Sqrt(float x);
  float Pow(float x, float y);
  float Exp(float x);
  float Log(float x);
  // Trigonometry is lowered to polynomial ALU sequences by mobile compilers;
  // modeled as exact with an SFU-equivalent cost.
  float Sin(float x);
  float Cos(float x);
  float Tan(float x);
  float Asin(float x);
  float Acos(float x);
  float Atan(float x);
  float Atan2(float y, float x);

  // --- counting hooks ---
  void Count(int alu_ops) { counts_.alu += static_cast<std::uint64_t>(alu_ops); }
  // Bulk ALU accounting for batch kernels: one call charges a whole
  // instruction's worth of ops (components x live lanes). Counts are plain
  // order-insensitive sums, so CountAlu(n) is exactly equivalent to n
  // individual Count(1) calls — this is what lets the SIMD kernels skip the
  // per-op Add/Sub/Mul entry points while keeping totals bit-identical to
  // the per-lane scalar sum (asserted by glsl_simd_test).
  void CountAlu(std::uint64_t n) { counts_.alu += n; }
  void CountSfu(int n) { counts_.sfu += static_cast<std::uint64_t>(n); }
  void CountSfuTrans(int n) {
    counts_.sfu_trans += static_cast<std::uint64_t>(n);
  }
  void CountTmu(int n) { counts_.tmu += static_cast<std::uint64_t>(n); }
  void CountTmuMiss(int n) {
    counts_.tmu_miss += static_cast<std::uint64_t>(n);
  }

  [[nodiscard]] const OpCounts& counts() const { return counts_; }
  void ResetCounts() { counts_ = OpCounts{}; }
  // Folds a worker shard's counters into this model (the tiled renderer
  // gives each shading worker a Fork()ed model and sums them at join; the
  // sum over disjoint tiles is order-independent, so totals are identical
  // to a serial run).
  void AddCounts(const OpCounts& c) { counts_ += c; }
  // Restores a snapshot taken via counts(). Used by the bytecode VM to keep
  // its one-time constant-initializer evaluation out of the counters (the
  // tree-walking oracle already charged those ops at construction).
  void SetCounts(const OpCounts& c) { counts_ = c; }

  // Rounds an ALU result to the modeled register precision. The exact model
  // returns x unchanged; reduced-precision profiles (e.g. a mediump-only
  // fragment pipe, paper §IV-E footnote 1) override this.
  virtual float Round(float x) { return x; }

  // Creates an independent model with the same precision behaviour and zeroed
  // counters, for use as a per-worker counter shard by the multithreaded
  // fragment pipeline. Returns nullptr when the subclass does not support
  // forking (the draw then falls back to single-threaded shading).
  //
  // Shard reuse contract: the gles2 shade-state cache keeps a Fork()ed
  // shard alive across draws and re-arms it per draw with ResetCounts()
  // instead of re-forking. A subclass that supports Fork() must therefore
  // keep all non-counter state immutable after construction (precision
  // behaviour a pure function of inputs), so that a reset shard is
  // indistinguishable from a fresh fork.
  [[nodiscard]] virtual std::unique_ptr<AluModel> Fork() const {
    return nullptr;
  }

  [[nodiscard]] bool round_identity() const { return round_identity_; }

 protected:
  // Subclasses whose Round() is the identity function declare it here to
  // enable the inline fast path above. Defaults to false (conservative for
  // unknown subclasses that override Round()).
  void SetRoundIdentity(bool identity) { round_identity_ = identity; }

 private:
  OpCounts counts_;
  bool round_identity_ = false;
};

// IEEE-exact ALU: reference behaviour, used for the CPU-side verification the
// paper performs ("the same transformations on the CPU are precise", §V).
class ExactAlu final : public AluModel {
 public:
  ExactAlu() { SetRoundIdentity(true); }
  [[nodiscard]] std::unique_ptr<AluModel> Fork() const override {
    return std::make_unique<ExactAlu>();
  }
};

}  // namespace mgpu::glsl

#endif  // MGPU_GLSL_ALU_H_
