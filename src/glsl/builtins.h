// The GLSL ES 1.00 built-in function library (spec chapter 8): resolution of
// overloads during semantic analysis and evaluation during interpretation.
#ifndef MGPU_GLSL_BUILTINS_H_
#define MGPU_GLSL_BUILTINS_H_

#include <array>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "glsl/alu.h"
#include "glsl/evalcore.h"
#include "glsl/type.h"
#include "glsl/value.h"

namespace mgpu::glsl {

enum class Builtin : int {
  kRadians, kDegrees, kSin, kCos, kTan, kAsin, kAcos, kAtan, kAtan2,
  kPow, kExp, kLog, kExp2, kLog2, kSqrt, kInverseSqrt,
  kAbs, kSign, kFloor, kCeil, kFract, kMod, kMin, kMax, kClamp, kMix,
  kStep, kSmoothstep,
  kLength, kDistance, kDot, kCross, kNormalize, kFaceforward, kReflect,
  kRefract,
  kMatrixCompMult,
  kLessThan, kLessThanEqual, kGreaterThan, kGreaterThanEqual, kEqual,
  kNotEqual, kAny, kAll, kNot,
  kTexture2D, kTexture2DBias, kTexture2DProj3, kTexture2DProj4,
  kTexture2DProj3Bias, kTexture2DProj4Bias, kTexture2DLod,
  kTexture2DProjLod3, kTexture2DProjLod4,
};

// Largest argument count across the builtin table (texture2D with bias /
// clamp / smoothstep take 3; callers size fixed pointer buffers with this).
inline constexpr int kMaxBuiltinArgs = 4;

// True if `name` is a built-in function name (used to reject user
// redefinitions, as GLSL ES 1.00 reserves them).
[[nodiscard]] bool IsBuiltinName(const std::string& name);

struct BuiltinResolution {
  bool ok = false;
  Builtin builtin{};
  Type result_type;
  std::string error;  // set when ok == false and the name matched but the
                      // argument types did not
};

// Resolves `name(arg_types...)` against the builtin library for `stage`
// (texture bias is fragment-only, texture*Lod is vertex-only).
[[nodiscard]] BuiltinResolution ResolveBuiltin(
    const std::string& name, const std::vector<Type>& arg_types, Stage stage);

// Texture fetch callback: (unit, s, t, lod) -> RGBA in [0,1]. Installed by
// the gles2 draw pipeline.
using TextureFn =
    std::function<std::array<float, 4>(int unit, float s, float t, float lod)>;

// Evaluates a resolved builtin. `args` are pointers to already-evaluated
// argument values (pointers so the bytecode VM can pass its registers
// without copying). The Into form writes the result into `dst`, which must
// be pre-typed with `result_type` (every case overwrites all result cells);
// the value-returning form wraps it for tree-walking callers.
void EvalBuiltinInto(Builtin b, Type result_type,
                     std::span<const Value* const> args, AluModel& alu,
                     const TextureFn& texture, Value& dst);
[[nodiscard]] Value EvalBuiltin(Builtin b, Type result_type,
                                std::span<const Value* const> args,
                                AluModel& alu, const TextureFn& texture);

// Lane-batched (SoA) evaluation: builtin and shape dispatch run once per
// instruction, then tight per-lane loops evaluate every lane of the batch.
// This is the ONLY implementation of builtin semantics — EvalBuiltinInto is
// a single-lane wrapper over it — so the tree-walking oracle, the scalar
// VM, and the batched VM share one code path and cannot drift in results or
// AluModel counts. Lanes evaluate in ascending mask order.
void EvalBuiltinBatch(Builtin b, Type result_type,
                      std::span<const BatchSrc> args, AluModel& alu,
                      const TextureFn& texture, const BatchDst& dst,
                      std::uint32_t mask);

// True when the batched VM may evaluate `b` through EvalBuiltinBatch for a
// whole batch at once. Texture builtins are excluded: the gles2 TMU-cache
// model counts misses in fragment-sequential order, so the batched VM
// replays them per lane instead (vm.cc), keeping cache-access order — and
// therefore tmu_miss counts — identical to the scalar engines.
[[nodiscard]] bool IsSoaBuiltin(Builtin b);

// SIMD entry for the float-dense builtin kernels (abs / floor / ceil /
// fract / min / max / clamp / mix / step / matrixCompMult / dot /
// normalize on float vector shapes); every other builtin, shape, or tier
// falls back to EvalBuiltinBatch internally, so the entry is total. Same
// contract as the evalcore *Simd entries (evalcore.h): requires
// alu.round_identity(), charges ops in bulk via AluModel::CountAlu with
// totals identical to the scalar kernel, honors the live lane mask for
// every load/store, and is bit-identical by construction — min/max/clamp
// emulate the exact libm fmin/fmax NaN/signed-zero semantics, dot/normalize
// replay each lane's sequential accumulation chain unchanged, and
// floor/ceil/fract only vectorize on the AVX2 tier (the round instructions
// they need are post-SSE2). SFU-routed and texture builtins never take a
// SIMD path (IsSoaBuiltin + the lowering tag keep them per-lane).
void EvalBuiltinBatchSimd(Builtin b, Type result_type,
                          std::span<const BatchSrc> args, AluModel& alu,
                          const TextureFn& texture, const BatchDst& dst,
                          std::uint32_t mask, simd::Level level);

// True when EvalBuiltinBatchSimd has a vector path for `b` (a strict
// subset of IsSoaBuiltin; the lowering tag combines this with the operand
// shape to mark instructions SIMD-eligible).
[[nodiscard]] bool IsSimdBuiltin(Builtin b);

}  // namespace mgpu::glsl

#endif  // MGPU_GLSL_BUILTINS_H_
