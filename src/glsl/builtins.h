// The GLSL ES 1.00 built-in function library (spec chapter 8): resolution of
// overloads during semantic analysis and evaluation during interpretation.
#ifndef MGPU_GLSL_BUILTINS_H_
#define MGPU_GLSL_BUILTINS_H_

#include <array>
#include <functional>
#include <string>
#include <vector>

#include "glsl/alu.h"
#include "glsl/type.h"
#include "glsl/value.h"

namespace mgpu::glsl {

enum class Builtin : int {
  kRadians, kDegrees, kSin, kCos, kTan, kAsin, kAcos, kAtan, kAtan2,
  kPow, kExp, kLog, kExp2, kLog2, kSqrt, kInverseSqrt,
  kAbs, kSign, kFloor, kCeil, kFract, kMod, kMin, kMax, kClamp, kMix,
  kStep, kSmoothstep,
  kLength, kDistance, kDot, kCross, kNormalize, kFaceforward, kReflect,
  kRefract,
  kMatrixCompMult,
  kLessThan, kLessThanEqual, kGreaterThan, kGreaterThanEqual, kEqual,
  kNotEqual, kAny, kAll, kNot,
  kTexture2D, kTexture2DBias, kTexture2DProj3, kTexture2DProj4,
  kTexture2DProj3Bias, kTexture2DProj4Bias, kTexture2DLod,
  kTexture2DProjLod3, kTexture2DProjLod4,
};

// True if `name` is a built-in function name (used to reject user
// redefinitions, as GLSL ES 1.00 reserves them).
[[nodiscard]] bool IsBuiltinName(const std::string& name);

struct BuiltinResolution {
  bool ok = false;
  Builtin builtin{};
  Type result_type;
  std::string error;  // set when ok == false and the name matched but the
                      // argument types did not
};

// Resolves `name(arg_types...)` against the builtin library for `stage`
// (texture bias is fragment-only, texture*Lod is vertex-only).
[[nodiscard]] BuiltinResolution ResolveBuiltin(
    const std::string& name, const std::vector<Type>& arg_types, Stage stage);

// Texture fetch callback: (unit, s, t, lod) -> RGBA in [0,1]. Installed by
// the gles2 draw pipeline.
using TextureFn =
    std::function<std::array<float, 4>(int unit, float s, float t, float lod)>;

// Evaluates a resolved builtin. `args` are already-evaluated argument values.
[[nodiscard]] Value EvalBuiltin(Builtin b, Type result_type,
                                std::vector<Value>& args, AluModel& alu,
                                const TextureFn& texture);

}  // namespace mgpu::glsl

#endif  // MGPU_GLSL_BUILTINS_H_
