// Bytecode VM executor: the default execution engine for shader
// invocations. A VmExec instantiates the register file / globals / ref
// slots of a lowered VmProgram once, then Run() executes the flat
// instruction stream with a tight dispatch loop — no recursion, no
// per-invocation allocation. All float math routes through the AluModel via
// the evaluation core shared with the tree-walking oracle (evalcore.h), so
// results and op counts are identical to ShaderExec by construction.
#ifndef MGPU_GLSL_VM_H_
#define MGPU_GLSL_VM_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "glsl/alu.h"
#include "glsl/builtins.h"
#include "glsl/engine.h"
#include "glsl/evalcore.h"
#include "glsl/ir.h"

namespace mgpu::glsl {

class VmExec final : public ShaderEngine {
 public:
  // Evaluates the program's constant-initializer chunk once; the ops it
  // spends are excluded from `alu`'s counters (the oracle charged the same
  // work at its own construction, so per-Run counts stay comparable).
  VmExec(std::shared_ptr<const VmProgram> program, AluModel& alu);

  // Worker clone for the tiled fragment pipeline: shares the immutable
  // program, copies the primed globals (constant initializers + uniforms
  // already mirrored into `base`) and routes math through `alu` — typically
  // a per-worker Fork() of the context's model, so op counts shard cleanly.
  // The constant-initializer chunk is NOT re-run (its results arrive via the
  // copied globals), so no ops are charged here.
  VmExec(const VmExec& base, AluModel& alu);

  // Cheap per-draw refresh for a cached worker clone: re-copies `base`'s
  // globals (fresh uniforms plus whatever shader code mutated since the
  // clone was made) without reallocating — each Value's storage is reused,
  // so a draw loop that recycles clones performs no allocation here. After
  // the call the clone's observable state is exactly that of a clone
  // constructed from `base` now. `base` must share this clone's program.
  void SyncGlobalsFrom(const VmExec& base);

  bool Run() override;

  [[nodiscard]] int GlobalSlot(const std::string& name) const override {
    return prog_->GlobalSlot(name);
  }
  [[nodiscard]] Value& GlobalAt(int slot) override {
    return globals_[static_cast<std::size_t>(slot)];
  }
  [[nodiscard]] const Value& GlobalAt(int slot) const {
    return globals_[static_cast<std::size_t>(slot)];
  }
  void SetTextureFn(TextureFn fn) override { texture_ = std::move(fn); }

  [[nodiscard]] const VmProgram& program() const { return *prog_; }
  [[nodiscard]] AluModel& alu() { return alu_; }

 private:
  bool Execute(std::uint32_t pc);

  [[nodiscard]] Value& At(std::uint32_t operand) {
    const std::uint32_t idx = operand & kOperandIndexMask;
    return (operand & ~kOperandIndexMask) == kSpaceReg ? regs_[idx]
                                                       : globals_[idx];
  }
  [[nodiscard]] const Value& Read(std::uint32_t operand) const {
    const std::uint32_t idx = operand & kOperandIndexMask;
    switch (operand & ~kOperandIndexMask) {
      case kSpaceReg: return regs_[idx];
      case kSpaceGlobal: return globals_[idx];
      default: return prog_->consts[idx];
    }
  }

  std::shared_ptr<const VmProgram> prog_;
  AluModel& alu_;
  TextureFn texture_;
  std::vector<Value> globals_;
  std::vector<Value> regs_;
  std::vector<LRef> refs_;
  std::uint64_t loop_steps_ = 0;
};

}  // namespace mgpu::glsl

#endif  // MGPU_GLSL_VM_H_
