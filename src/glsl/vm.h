// Bytecode VM executor: the default execution engine for shader
// invocations. A VmExec instantiates the register file / globals / ref
// slots of a lowered VmProgram once, then Run() executes the flat
// instruction stream with a tight dispatch loop — no recursion, no
// per-invocation allocation. All float math routes through the AluModel via
// the evaluation core shared with the tree-walking oracle (evalcore.h), so
// results and op counts are identical to ShaderExec by construction.
#ifndef MGPU_GLSL_VM_H_
#define MGPU_GLSL_VM_H_

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "glsl/alu.h"
#include "glsl/builtins.h"
#include "glsl/engine.h"
#include "glsl/evalcore.h"
#include "glsl/ir.h"
#include "glsl/jit.h"

namespace mgpu::glsl {

class VmExec final : public ShaderEngine {
 public:
  // Evaluates the program's constant-initializer chunk once; the ops it
  // spends are excluded from `alu`'s counters (the oracle charged the same
  // work at its own construction, so per-Run counts stay comparable).
  VmExec(std::shared_ptr<const VmProgram> program, AluModel& alu);

  // Worker clone for the tiled fragment pipeline: shares the immutable
  // program, copies the primed globals (constant initializers + uniforms
  // already mirrored into `base`) and routes math through `alu` — typically
  // a per-worker Fork() of the context's model, so op counts shard cleanly.
  // The constant-initializer chunk is NOT re-run (its results arrive via the
  // copied globals), so no ops are charged here.
  VmExec(const VmExec& base, AluModel& alu);

  // Cheap per-draw refresh for a cached worker clone: re-copies `base`'s
  // globals (fresh uniforms plus whatever shader code mutated since the
  // clone was made) without reallocating — each Value's storage is reused,
  // so a draw loop that recycles clones performs no allocation here. After
  // the call the clone's observable state is exactly that of a clone
  // constructed from `base` now. `base` must share this clone's program.
  void SyncGlobalsFrom(const VmExec& base);

  bool Run() override;

  // --- lane-batched (SoA) execution ---
  // Executes the run chunk once for lanes [0, n), n <= kVmLanes, looping
  // lanes *inside* each instruction instead of instructions inside each
  // invocation: instruction fetch, dispatch and operand resolution are paid
  // once per instruction per batch, not once per fragment. Uniform-control-
  // flow programs (see VmProgram::uniform_control_flow) run in lockstep
  // under one shared pc; divergent programs run under the per-lane-pc
  // masked executor, which executes both sides of a divergent branch with
  // the lanes that took each side (reconverging at the minimum pc). Every
  // lane performs exactly the evalcore operations a scalar Run() would, so
  // results and AluModel op counts are byte-identical to n scalar runs by
  // construction — with one caveat: a global that carries state *between*
  // invocations without being re-initialized per run (a read GLSL leaves
  // undefined, e.g. an initializer-less accumulator or an unwritten
  // gl_FragColor) carries per-lane-slot history here versus per-engine
  // history in a scalar sequence, so such shaders read different garbage.
  // Returns the bitmask of lanes NOT killed by `discard`. Throws
  // ShaderRuntimeError iff a scalar run of any lane would, attributing the
  // trap (ShaderRuntimeError::lane, and its message) to the smallest
  // trapping lane — the fragment a scalar engine sequence would have
  // aborted the draw on first. In the divergent executor trapping lanes
  // park while surviving lanes run to completion before the throw.
  //
  // Per-fragment inputs/outputs live in per-lane global planes accessed via
  // LaneGlobalAt; uniforms and other lane-invariant globals stay in the
  // scalar store shared by all lanes (so per-draw uniform sync cost is
  // independent of the lane width).
  std::uint32_t RunBatch(int n);

  // Per-lane view of global `slot`: the lane's plane entry when the global
  // is lane-varying, the shared scalar storage otherwise (lane-invariant
  // globals are never written per lane). Allocates the planes on first use.
  [[nodiscard]] Value& LaneGlobalAt(int slot, int lane);

  // Address of the lane index the batched executor is currently running.
  // Lane-aware texture callbacks capture it so deferred TMU-cache
  // accounting can attribute fetches to lanes; the gles2 context replays
  // them in lane order after the batch, reproducing the scalar engine's
  // fragment-sequential cache access order exactly.
  [[nodiscard]] const int* CurrentLanePtr() const { return &batch_lane_; }

  [[nodiscard]] int GlobalSlot(const std::string& name) const override {
    return prog_->GlobalSlot(name);
  }
  [[nodiscard]] Value& GlobalAt(int slot) override {
    return globals_[static_cast<std::size_t>(slot)];
  }
  [[nodiscard]] const Value& GlobalAt(int slot) const {
    return globals_[static_cast<std::size_t>(slot)];
  }
  void SetTextureFn(TextureFn fn) override { texture_ = std::move(fn); }

  [[nodiscard]] const VmProgram& program() const { return *prog_; }
  [[nodiscard]] AluModel& alu() { return alu_; }

  // Loop-iteration budget (the "a real GPU would hang or be reset" ceiling,
  // shared semantics with the tree-walk oracle's ShaderExec::SetLoopBudget).
  // Default kDefaultLoopBudget; tests lower it so runaway shaders trap
  // quickly. Worker clones inherit the base engine's budget.
  void SetLoopBudget(std::uint64_t steps) { loop_budget_ = steps; }
  [[nodiscard]] std::uint64_t loop_budget() const { return loop_budget_; }

  // SIMD tier this executor's batch kernels may use (a resolved
  // ContextConfig/DeviceOptions knob; defaults to auto resolution — the
  // MGPU_SIMD env override or the detected hardware level). The effective
  // tier is re-sampled at every RunBatch: it drops to scalar whenever the
  // AluModel is not round-identity, so reduced-precision vc4 profiles keep
  // their per-op Round() path untouched no matter what the knob says.
  void SetSimdLevel(simd::Level level) { simd_level_ = level; }
  [[nodiscard]] simd::Level simd_level() const { return simd_level_; }

  // Attaches (or detaches, with nullptr) a compiled module for this
  // executor's program: uniform-control-flow RunBatch calls then enter the
  // module's native code instead of the interpreter loop, with punted
  // instructions calling back into ExecBatchOp (see jit.h for why results,
  // op counts and traps are bit-identical). The module must have been built
  // from this executor's VmProgram. Worker clones do NOT inherit the
  // module — the shade cache stamps each slot explicitly, keeping borrowed
  // engines (the link-time fvm serial slots reuse) untouched for the
  // interpreter engines.
  void SetJit(std::shared_ptr<const jit::Module> module) {
    jit_ = std::move(module);
    jit_tbl_ready_ = false;
  }
  [[nodiscard]] bool has_jit() const { return jit_ != nullptr; }

 private:
  bool Execute(std::uint32_t pc);

  void EnsureBatchState();
  std::uint32_t ExecuteBatchUniform(int n);
  std::uint32_t ExecuteBatchDivergent(int n);
  // Runs the batch through the attached compiled module (jit_ non-null,
  // uniform control flow). The Jit* statics are the callbacks the generated
  // code reaches back through; host is the VmExec.
  std::uint32_t RunBatchJit(int n);
  static void JitExecOp(void* host, int pc);
  static void JitGuard(void* host);
  static void JitDepthTrap(void* host);
  static void JitTrap(void* host, int msg_index);
  static void JitCountAlu(void* host, unsigned long long ops);
  // Executes one non-control-flow instruction for the lanes `Lanes::ForEach`
  // yields (a contiguous range for the lockstep executor, a bitmask for the
  // divergent one), with operand resolution hoisted out of the lane loop.
  template <typename Lanes>
  void ExecBatchOp(const VmInst& in, const Lanes& lanes);

  [[nodiscard]] Value& At(std::uint32_t operand) {
    const std::uint32_t idx = operand & kOperandIndexMask;
    return (operand & ~kOperandIndexMask) == kSpaceReg ? regs_[idx]
                                                       : globals_[idx];
  }
  [[nodiscard]] const Value& Read(std::uint32_t operand) const {
    const std::uint32_t idx = operand & kOperandIndexMask;
    switch (operand & ~kOperandIndexMask) {
      case kSpaceReg: return regs_[idx];
      case kSpaceGlobal: return globals_[idx];
      default: return prog_->consts[idx];
    }
  }

  std::shared_ptr<const VmProgram> prog_;
  AluModel& alu_;
  TextureFn texture_;
  std::vector<Value> globals_;
  std::vector<Value> regs_;
  std::vector<LRef> refs_;
  std::uint64_t loop_steps_ = 0;
  std::uint64_t loop_budget_ = kDefaultLoopBudget;

  // --- per-lane batch state, allocated lazily on the first RunBatch ---
  // SoA planes: register r's lanes are contiguous at [r * kVmLanes, ...),
  // likewise dense lane-varying global g and ref slot s.
  bool batch_ready_ = false;
  simd::Level simd_level_ = simd::Resolve(-1);
  // Effective tier for the batch in flight (simd_level_ gated on
  // alu_.round_identity(); sampled by RunBatch, read by ExecBatchOp).
  simd::Level batch_simd_ = simd::Level::kScalar;
  std::vector<Value> lane_regs_;
  std::vector<Value> lane_globals_;
  std::vector<LRef> lane_refs_;
  int batch_lane_ = 0;
  // Divergent-executor control state (members so batches allocate nothing):
  // per-lane pc / call stack / loop budget.
  std::array<std::uint32_t, kVmLanes> lane_pc_{};
  std::array<int, kVmLanes> lane_sp_{};
  std::array<std::uint64_t, kVmLanes> lane_steps_{};
  std::vector<std::uint32_t> lane_ret_stack_;

  // --- compiled-engine state (see SetJit) ---
  // jit_tbl_ caches the operand table resolved against the current lane
  // planes; invalidated whenever the planes or the module change.
  std::shared_ptr<const jit::Module> jit_;
  std::vector<void*> jit_tbl_;
  bool jit_tbl_ready_ = false;
  int jit_batch_n_ = 0;
};

}  // namespace mgpu::glsl

#endif  // MGPU_GLSL_VM_H_
