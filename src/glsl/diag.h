// Diagnostics for the GLSL ES 1.00 front end. The gles2 layer turns these
// into glGetShaderInfoLog text, mirroring how a mobile driver reports errors.
#ifndef MGPU_GLSL_DIAG_H_
#define MGPU_GLSL_DIAG_H_

#include <string>
#include <vector>

namespace mgpu::glsl {

struct SrcLoc {
  int line = 0;
  int column = 0;
};

enum class Severity { kError, kWarning };

struct Diagnostic {
  Severity severity = Severity::kError;
  SrcLoc loc;
  std::string message;
};

class DiagSink {
 public:
  void Error(SrcLoc loc, std::string message) {
    diags_.push_back({Severity::kError, loc, std::move(message)});
  }
  void Warning(SrcLoc loc, std::string message) {
    diags_.push_back({Severity::kWarning, loc, std::move(message)});
  }
  [[nodiscard]] bool has_errors() const {
    for (const auto& d : diags_) {
      if (d.severity == Severity::kError) return true;
    }
    return false;
  }
  [[nodiscard]] const std::vector<Diagnostic>& diagnostics() const {
    return diags_;
  }
  // Renders an info-log in the classic "ERROR: 0:<line>: <msg>" driver style.
  [[nodiscard]] std::string InfoLog() const;

 private:
  std::vector<Diagnostic> diags_;
};

}  // namespace mgpu::glsl

#endif  // MGPU_GLSL_DIAG_H_
