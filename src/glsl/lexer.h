// Scanner for preprocessed GLSL ES 1.00 source.
#ifndef MGPU_GLSL_LEXER_H_
#define MGPU_GLSL_LEXER_H_

#include <string>
#include <vector>

#include "glsl/diag.h"
#include "glsl/token.h"

namespace mgpu::glsl {

// Tokenizes `source`. Always ends the stream with a kEof token. Lexical
// errors (bad characters, reserved operators like '%' or '&', float suffixes
// that ES 1.00 forbids) are reported to `diags` and skipped.
[[nodiscard]] std::vector<Token> Lex(const std::string& source,
                                     DiagSink& diags);

}  // namespace mgpu::glsl

#endif  // MGPU_GLSL_LEXER_H_
