#include "glsl/preprocessor.h"

#include <cctype>
#include <map>
#include <sstream>
#include <vector>

#include "common/strings.h"

namespace mgpu::glsl {
namespace {

// Replaces comments with spaces, keeping newlines so line numbers survive.
std::string StripComments(const std::string& src, DiagSink& diags) {
  std::string out;
  out.reserve(src.size());
  std::size_t i = 0;
  int line = 1;
  while (i < src.size()) {
    const char c = src[i];
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '/') {
      while (i < src.size() && src[i] != '\n') ++i;
    } else if (c == '/' && i + 1 < src.size() && src[i + 1] == '*') {
      const int start_line = line;
      i += 2;
      bool closed = false;
      while (i < src.size()) {
        if (src[i] == '*' && i + 1 < src.size() && src[i + 1] == '/') {
          i += 2;
          closed = true;
          break;
        }
        if (src[i] == '\n') {
          out.push_back('\n');
          ++line;
        }
        ++i;
      }
      if (!closed) diags.Error({start_line, 0}, "unterminated block comment");
      out.push_back(' ');
    } else {
      if (c == '\n') ++line;
      out.push_back(c);
      ++i;
    }
  }
  return out;
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// Expands object-like macros with one level of rescanning (sufficient for
// the nesting depth GLSL shaders actually use).
std::string ExpandMacros(const std::string& line,
                         const std::map<std::string, std::string>& macros,
                         int depth = 0) {
  if (depth > 16) return line;
  std::string out;
  std::size_t i = 0;
  bool changed = false;
  while (i < line.size()) {
    const char c = line[i];
    if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_') {
      std::size_t j = i;
      while (j < line.size() && IsIdentChar(line[j])) ++j;
      const std::string word = line.substr(i, j - i);
      const auto it = macros.find(word);
      if (it != macros.end()) {
        out += it->second;
        changed = true;
      } else {
        out += word;
      }
      i = j;
    } else {
      out.push_back(c);
      ++i;
    }
  }
  return changed ? ExpandMacros(out, macros, depth + 1) : out;
}

struct CondState {
  bool taken;        // this branch is active
  bool any_taken;    // some branch of this #if chain was active
  bool in_else;
};

}  // namespace

PreprocessResult Preprocess(const std::string& source, DiagSink& diags) {
  PreprocessResult result;
  std::map<std::string, std::string> macros;
  macros["GL_ES"] = "1";
  macros["__VERSION__"] = "100";

  std::vector<CondState> conds;
  std::istringstream in(StripComments(source, diags));
  std::string line;
  std::string out;
  int lineno = 0;
  bool seen_non_directive = false;

  auto active = [&] {
    for (const auto& c : conds) {
      if (!c.taken) return false;
    }
    return true;
  };

  while (std::getline(in, line)) {
    ++lineno;
    std::size_t first = line.find_first_not_of(" \t\r");
    if (first != std::string::npos && line[first] == '#') {
      std::istringstream ls(line.substr(first + 1));
      std::string directive;
      ls >> directive;
      const SrcLoc loc{lineno, static_cast<int>(first) + 1};
      if (directive == "version") {
        int v = 0;
        ls >> v;
        if (seen_non_directive) {
          diags.Error(loc, "#version must appear before any other tokens");
        } else if (v != 100) {
          diags.Error(loc, StrFormat("unsupported #version %d; this compiler "
                                     "implements GLSL ES 1.00 (use 100)",
                                     v));
        }
        result.version = v == 0 ? 100 : v;
      } else if (directive == "define") {
        if (active()) {
          std::string name;
          ls >> name;
          if (name.empty()) {
            diags.Error(loc, "#define requires a macro name");
          } else if (name.find('(') != std::string::npos ||
                     ls.peek() == '(') {
            diags.Error(loc, "function-like macros are not supported");
          } else {
            std::string body;
            std::getline(ls, body);
            const std::size_t b = body.find_first_not_of(" \t");
            macros[name] = b == std::string::npos ? "" : body.substr(b);
          }
        }
      } else if (directive == "undef") {
        if (active()) {
          std::string name;
          ls >> name;
          macros.erase(name);
        }
      } else if (directive == "ifdef" || directive == "ifndef") {
        std::string name;
        ls >> name;
        const bool defined = macros.count(name) != 0;
        const bool taken =
            active() && (directive == "ifdef" ? defined : !defined);
        conds.push_back({taken, taken, false});
      } else if (directive == "else") {
        if (conds.empty()) {
          diags.Error(loc, "#else without matching #ifdef/#ifndef");
        } else if (conds.back().in_else) {
          diags.Error(loc, "duplicate #else");
        } else {
          CondState& c = conds.back();
          c.in_else = true;
          const bool parent_active = [&] {
            for (std::size_t k = 0; k + 1 < conds.size(); ++k) {
              if (!conds[k].taken) return false;
            }
            return true;
          }();
          c.taken = parent_active && !c.any_taken;
          c.any_taken = c.any_taken || c.taken;
        }
      } else if (directive == "endif") {
        if (conds.empty()) {
          diags.Error(loc, "#endif without matching #ifdef/#ifndef");
        } else {
          conds.pop_back();
        }
      } else if (directive == "error") {
        if (active()) {
          std::string rest;
          std::getline(ls, rest);
          diags.Error(loc, StrFormat("#error%s", rest.c_str()));
        }
      } else if (directive == "pragma" || directive == "extension" ||
                 directive == "line" || directive.empty()) {
        // Accepted and ignored; ES 2.0 implementations are free to ignore
        // unknown pragmas, and we expose no extensions.
      } else {
        if (active()) {
          diags.Error(loc,
                      StrFormat("unknown directive '#%s'", directive.c_str()));
        }
      }
      out.push_back('\n');
      continue;
    }
    if (first != std::string::npos) seen_non_directive = true;
    out += active() ? ExpandMacros(line, macros) : "";
    out.push_back('\n');
  }
  if (!conds.empty()) {
    diags.Error({lineno, 0}, "unterminated #ifdef/#ifndef block");
  }
  result.text = std::move(out);
  return result;
}

}  // namespace mgpu::glsl
