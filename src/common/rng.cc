#include "common/rng.h"

#include <cmath>

namespace mgpu {

std::uint64_t Rng::NextU64() {
  std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

float Rng::NextFloat01() {
  // 24 random bits -> exactly representable in fp32.
  return static_cast<float>(NextU64() >> 40) * 0x1.0p-24f;
}

float Rng::NextFloat(float lo, float hi) {
  return lo + (hi - lo) * NextFloat01();
}

std::int64_t Rng::NextInt(std::int64_t lo, std::int64_t hi) {
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(NextU64() % span);
}

float Rng::NextWorkloadFloat() {
  const int exponent = static_cast<int>(NextInt(-8, 8));
  const float magnitude = (1.0f + NextFloat01()) * std::ldexp(1.0f, exponent);
  return (NextU64() & 1) != 0 ? -magnitude : magnitude;
}

std::vector<float> Rng::FloatVector(std::size_t n, float lo, float hi) {
  std::vector<float> v(n);
  for (auto& x : v) x = NextFloat(lo, hi);
  return v;
}

std::vector<std::int32_t> Rng::IntVector(std::size_t n, std::int32_t lo,
                                         std::int32_t hi) {
  std::vector<std::int32_t> v(n);
  for (auto& x : v) x = static_cast<std::int32_t>(NextInt(lo, hi));
  return v;
}

std::vector<std::uint8_t> Rng::ByteVector(std::size_t n) {
  std::vector<std::uint8_t> v(n);
  for (auto& x : v) x = static_cast<std::uint8_t>(NextU64() & 0xff);
  return v;
}

}  // namespace mgpu
