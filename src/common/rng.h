// Deterministic PRNG used by tests, examples and benchmark workload
// generators, so that every experiment in EXPERIMENTS.md is reproducible
// bit-for-bit across runs.
#ifndef MGPU_COMMON_RNG_H_
#define MGPU_COMMON_RNG_H_

#include <cstdint>
#include <vector>

namespace mgpu {

// SplitMix64: tiny, high-quality, fully deterministic.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  [[nodiscard]] std::uint64_t NextU64();
  [[nodiscard]] std::uint32_t NextU32() {
    return static_cast<std::uint32_t>(NextU64() >> 32);
  }
  // Uniform in [0, 1).
  [[nodiscard]] float NextFloat01();
  // Uniform in [lo, hi).
  [[nodiscard]] float NextFloat(float lo, float hi);
  // Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t NextInt(std::int64_t lo, std::int64_t hi);
  // A "random-value" float as the paper's Section V uses: uniform magnitude
  // over several binades, both signs; avoids denormals/infinities.
  [[nodiscard]] float NextWorkloadFloat();

  [[nodiscard]] std::vector<float> FloatVector(std::size_t n, float lo,
                                               float hi);
  [[nodiscard]] std::vector<std::int32_t> IntVector(std::size_t n,
                                                    std::int32_t lo,
                                                    std::int32_t hi);
  [[nodiscard]] std::vector<std::uint8_t> ByteVector(std::size_t n);

 private:
  std::uint64_t state_;
};

}  // namespace mgpu

#endif  // MGPU_COMMON_RNG_H_
