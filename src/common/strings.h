// printf-style string formatting (GCC 12 lacks <format>), used for shader
// code generation and human-readable benchmark tables.
#ifndef MGPU_COMMON_STRINGS_H_
#define MGPU_COMMON_STRINGS_H_

#include <cstdarg>
#include <string>

namespace mgpu {

[[nodiscard]] std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

[[nodiscard]] std::string VStrFormat(const char* fmt, std::va_list args);

// True if `text` contains `needle` (used heavily by shader-codegen tests).
[[nodiscard]] bool Contains(const std::string& text, const std::string& needle);

}  // namespace mgpu

#endif  // MGPU_COMMON_STRINGS_H_
