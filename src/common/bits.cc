#include "common/bits.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

namespace mgpu {
namespace {

// Maps the float line onto integers such that consecutive floats map to
// consecutive integers (standard ULP trick; negative floats are mirrored).
std::int64_t FloatToOrderedInt(float f) {
  const auto bits = static_cast<std::int64_t>(FloatToBits(f));
  return (bits & 0x80000000ll) != 0 ? 0x80000000ll - bits : bits;
}

}  // namespace

std::int64_t UlpDistance(float a, float b) {
  return std::llabs(FloatToOrderedInt(a) - FloatToOrderedInt(b));
}

int MatchingMantissaBits(float expected, float actual) {
  if (FloatToBits(expected) == FloatToBits(actual)) return 23;
  const std::int64_t ulp = UlpDistance(expected, actual);
  // An error of `ulp` ULPs corrupts roughly log2(ulp) low mantissa bits.
  int corrupted = 0;
  while ((1ll << corrupted) < ulp) ++corrupted;
  return std::clamp(23 - corrupted, 0, 23);
}

float RoundToMantissaBits(float x, int bits) {
  if (bits >= 23 || !std::isfinite(x) || x == 0.0f) return x;
  const int drop = 23 - bits;
  const std::uint32_t b = FloatToBits(x);
  const std::uint32_t half = 1u << (drop - 1);
  // Round-to-nearest (ties away from zero on the mantissa field); exponent
  // carry is handled naturally by integer addition into the exponent field.
  const std::uint32_t rounded = (b + half) & ~((1u << drop) - 1u);
  return BitsToFloat(rounded);
}

}  // namespace mgpu
