// Seeded, deterministic fault injection for tests. A small registry of
// named injection points ("sites") compiled into the production code paths;
// each site is a single armed-flag check when idle, so the registry can stay
// in release builds without measurable cost. Tests arm a site to fire on its
// Nth hit, run a draw, and assert the abort/recovery semantics the
// robustness model promises (see README "Robustness model").
//
// Threading contract: Arm/Disarm/DisarmAll may only be called while no draw
// (and no pool job) is in flight. The worker pool's fork-join handshake
// (mutex-protected epoch) then gives every worker a happens-before edge on
// the armed state, so ShouldFail's hit counting is the only cross-thread
// traffic — and that is atomic.
#ifndef MGPU_COMMON_FAULT_H_
#define MGPU_COMMON_FAULT_H_

#include <cstdint>

namespace mgpu::fault {

enum class Site : int {
  // Worker shading-state construction in gles2::ShadeStateCache (engine
  // clones, ALU/TMU forks). Fires as std::bad_alloc.
  kShadeCacheAlloc = 0,
  // Tile binner storage growth (hash rehash / slot or bin append). Fires as
  // std::bad_alloc.
  kBinnerGrow,
  // Shader execution: trap at the Nth guarded step (VM loop guard /
  // interpreter loop guard). Fires as glsl::ShaderRuntimeError.
  kVmInstruction,
  // Threadpool task body: the Nth claimed task throws before running its
  // body, modeling a worker dying mid-draw.
  kPoolTask,
  // Async command-list submission (gles2 command stream): the Nth list
  // handed to the submit device is dropped wholesale, modeling a lost
  // control list. The owning context latches GL_OUT_OF_MEMORY /
  // GL_INNOCENT_CONTEXT_RESET at its next sync point.
  kCmdSubmit,
  kSiteCount,
};

inline constexpr int kSiteCount = static_cast<int>(Site::kSiteCount);

// Arms `site` to fail from its `nth` hit (0-based) onward. Hits past `nth`
// keep failing until Disarm, so a retry loop cannot spin past an armed
// fault. Resets the site's hit counter.
void Arm(Site site, std::uint64_t nth);

// Disarms one site / every site (and resets hit counters).
void Disarm(Site site);
void DisarmAll();

// True when any site is armed. Per-draw (not per-pixel) check: the GLES
// context journals framebuffer writes only when a draw can actually abort
// mid-write, and an armed fault site is one of the ways it can.
[[nodiscard]] bool AnyArmed();

// Counts a hit against `site`; returns true when the fault should fire.
// Always false (one relaxed load) when the site is not armed.
bool ShouldFail(Site site);

// Hits recorded against `site` since it was last armed (test introspection:
// lets a harness discover how many times a site is reached by a clean run,
// then sweep nth over that range).
[[nodiscard]] std::uint64_t Hits(Site site);

// Optional quiesce hook, invoked at the top of Arm/Disarm/DisarmAll/Hits.
// The gles2 command stream registers its drain here so that deferred work
// recorded before an arming change executes under the OLD armed state (and
// hit counts are final before Hits reads them) — without common/ depending
// on gles2. The hook runs on the caller's thread; the Arm/Disarm threading
// contract above extends to it (no other client thread may be recording).
void SetQuiesceHook(void (*hook)());

}  // namespace mgpu::fault

#endif  // MGPU_COMMON_FAULT_H_
