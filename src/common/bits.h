// Bit-level helpers shared by the packing code, the GLSL interpreter and the
// VideoCore ALU model. All float<->bit conversions in the project go through
// these functions so that tests can reason about exact IEEE-754 layouts.
#ifndef MGPU_COMMON_BITS_H_
#define MGPU_COMMON_BITS_H_

#include <bit>
#include <cstdint>

namespace mgpu {

[[nodiscard]] constexpr std::uint32_t FloatToBits(float f) {
  return std::bit_cast<std::uint32_t>(f);
}

[[nodiscard]] constexpr float BitsToFloat(std::uint32_t u) {
  return std::bit_cast<float>(u);
}

// IEEE-754 binary32 field accessors.
[[nodiscard]] constexpr std::uint32_t FloatSignBit(std::uint32_t bits) {
  return bits >> 31;
}
[[nodiscard]] constexpr std::uint32_t FloatBiasedExponent(std::uint32_t bits) {
  return (bits >> 23) & 0xffu;
}
[[nodiscard]] constexpr std::uint32_t FloatMantissa(std::uint32_t bits) {
  return bits & 0x7fffffu;
}
[[nodiscard]] constexpr std::uint32_t MakeFloatBits(std::uint32_t sign,
                                                    std::uint32_t biased_exp,
                                                    std::uint32_t mantissa) {
  return (sign << 31) | ((biased_exp & 0xffu) << 23) | (mantissa & 0x7fffffu);
}

// Number of most-significant mantissa bits on which two finite floats of the
// same sign/exponent agree; the paper's Section V reports GPU float outputs
// "accurate within the 15 most significant bits of the mantissa", which this
// function quantifies. Returns 23 for bit-identical values. If sign or
// exponent differ, returns the (possibly negative) log-scaled agreement via
// the absolute ULP distance, clamped to [0, 23].
[[nodiscard]] int MatchingMantissaBits(float expected, float actual);

// Absolute distance in ULPs between two finite floats (order-preserving
// integer mapping of the float line).
[[nodiscard]] std::int64_t UlpDistance(float a, float b);

// Round a float to `bits` mantissa bits (round-to-nearest-even), used by the
// reduced-precision ALU models (e.g. mediump emulation).
[[nodiscard]] float RoundToMantissaBits(float x, int bits);

}  // namespace mgpu

#endif  // MGPU_COMMON_BITS_H_
