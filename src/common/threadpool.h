// A small fork-join worker pool. Built for the tiled fragment pipeline
// (each worker shades disjoint framebuffer tiles, the way VideoCore IV QPUs
// do) but deliberately generic so other layers (e.g. compute readback /
// packing) can reuse it. Workers are created once and parked on a condition
// variable between jobs, so per-draw dispatch cost is a wake + a join, not
// thread creation.
#ifndef MGPU_COMMON_THREADPOOL_H_
#define MGPU_COMMON_THREADPOOL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mgpu::common {

// Number of workers to use when the caller asks for "one per hardware
// thread" (hardware_concurrency, clamped to at least 1).
[[nodiscard]] int DefaultThreadCount();

class ThreadPool {
 public:
  // Spawns `threads` workers (clamped to at least 1). Workers idle until
  // RunOnAll / ParallelFor is called.
  explicit ThreadPool(int threads);
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  ~ThreadPool();

  [[nodiscard]] int size() const { return static_cast<int>(workers_.size()); }

  // Runs body(worker_index) once on every worker concurrently and returns
  // when all have finished. `body` must not throw (catch inside). Callers
  // that want work distribution pull items from their own shared atomic
  // counter inside `body` (see gles2::Context::DrawGeneric).
  void RunOnAll(const std::function<void(int worker)>& body);

 private:
  void WorkerLoop(int index);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(int)>* body_ = nullptr;  // valid while a job runs
  std::uint64_t epoch_ = 0;  // bumped per job; workers run once per epoch
  int running_ = 0;
  bool stop_ = false;
};

}  // namespace mgpu::common

#endif  // MGPU_COMMON_THREADPOOL_H_
