// A small fork-join worker pool. Built for the tiled fragment pipeline
// (each worker shades disjoint framebuffer tiles, the way VideoCore IV QPUs
// do) but deliberately generic so other layers (e.g. compute readback /
// packing) can reuse it. Workers are created once and parked on a condition
// variable between jobs, so per-draw dispatch cost is a wake + a join, not
// thread creation — and a job with fewer tasks than workers wakes only as
// many workers as it has tasks (partial dispatch), so a draw covering two
// tiles does not pay for waking a 16-thread pool.
#ifndef MGPU_COMMON_THREADPOOL_H_
#define MGPU_COMMON_THREADPOOL_H_

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mgpu::common {

// Number of workers to use when the caller asks for "one per hardware
// thread" (hardware_concurrency, clamped to at least 1).
[[nodiscard]] int DefaultThreadCount();

class ThreadPool {
 public:
  // Spawns `threads` workers (clamped to at least 1). Workers idle until
  // RunOn / RunOnAll is called.
  explicit ThreadPool(int threads);
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  ~ThreadPool();

  [[nodiscard]] int size() const { return static_cast<int>(workers_.size()); }

  // Runs body(task) exactly once for each task in [0, n_tasks), concurrently
  // on the pool's workers, and returns when all tasks have finished. Only
  // min(n_tasks, size()) workers are woken; the rest stay parked. Tasks are
  // claimed from a shared counter, so two tasks may execute sequentially on
  // the same worker thread when a woken worker outruns a still-waking one —
  // callers get distinct task indices, not distinct OS threads. A `body`
  // that throws does not deadlock the join or poison the pool: the first
  // exception is captured and rethrown from RunOn after every claimed task
  // has finished (a throwing task counts as finished; tasks not yet claimed
  // when it threw still run). Callers that want finer-grained work
  // distribution pull items from their own shared atomic counter inside
  // `body` (see gles2::Context::DrawGeneric).
  void RunOn(int n_tasks, const std::function<void(int task)>& body);

  // Runs body(task) once per worker-sized task set: RunOn(size(), body).
  void RunOnAll(const std::function<void(int)>& body) { RunOn(size(), body); }

 private:
  void WorkerLoop();
  bool Claim(std::uint64_t epoch, int* task);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(int)>* body_ = nullptr;  // valid while a job runs
  std::uint64_t epoch_ = 0;  // bumped per job; workers join once per epoch
  int n_tasks_ = 0;          // task count of the current job
  int next_task_ = 0;        // next unclaimed task of the current job
  int pending_ = 0;          // tasks not yet completed in the current job
  std::exception_ptr first_error_;  // first task throw of the current job
  bool stop_ = false;
};

}  // namespace mgpu::common

#endif  // MGPU_COMMON_THREADPOOL_H_
