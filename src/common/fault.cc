#include "common/fault.h"

#include <atomic>

namespace mgpu::fault {
namespace {

struct SiteState {
  std::atomic<bool> armed{false};
  std::atomic<std::uint64_t> nth{0};
  std::atomic<std::uint64_t> hits{0};
};

SiteState g_sites[kSiteCount];

SiteState& At(Site site) { return g_sites[static_cast<int>(site)]; }

}  // namespace

void Arm(Site site, std::uint64_t nth) {
  SiteState& s = At(site);
  s.hits.store(0, std::memory_order_relaxed);
  s.nth.store(nth, std::memory_order_relaxed);
  s.armed.store(true, std::memory_order_relaxed);
}

void Disarm(Site site) {
  SiteState& s = At(site);
  s.armed.store(false, std::memory_order_relaxed);
  s.hits.store(0, std::memory_order_relaxed);
}

void DisarmAll() {
  for (int i = 0; i < kSiteCount; ++i) Disarm(static_cast<Site>(i));
}

bool AnyArmed() {
  for (int i = 0; i < kSiteCount; ++i) {
    if (g_sites[i].armed.load(std::memory_order_relaxed)) return true;
  }
  return false;
}

bool ShouldFail(Site site) {
  SiteState& s = At(site);
  if (!s.armed.load(std::memory_order_relaxed)) return false;
  const std::uint64_t hit = s.hits.fetch_add(1, std::memory_order_relaxed);
  return hit >= s.nth.load(std::memory_order_relaxed);
}

std::uint64_t Hits(Site site) {
  return At(site).hits.load(std::memory_order_relaxed);
}

}  // namespace mgpu::fault
