#include "common/fault.h"

#include <atomic>

namespace mgpu::fault {
namespace {

struct SiteState {
  std::atomic<bool> armed{false};
  std::atomic<std::uint64_t> nth{0};
  std::atomic<std::uint64_t> hits{0};
};

SiteState g_sites[kSiteCount];

SiteState& At(Site site) { return g_sites[static_cast<int>(site)]; }

std::atomic<void (*)()> g_quiesce{nullptr};

// Runs the registered drain before an arming change or a Hits read, so any
// deferred (async-submitted) work executes under the site state the caller
// already observes. Re-entrancy is impossible by contract: the hook itself
// never calls Arm/Disarm/Hits.
void Quiesce() {
  if (void (*hook)() = g_quiesce.load(std::memory_order_acquire)) hook();
}

void DisarmNoQuiesce(Site site) {
  SiteState& s = At(site);
  s.armed.store(false, std::memory_order_relaxed);
  s.hits.store(0, std::memory_order_relaxed);
}

}  // namespace

void Arm(Site site, std::uint64_t nth) {
  Quiesce();
  SiteState& s = At(site);
  s.hits.store(0, std::memory_order_relaxed);
  s.nth.store(nth, std::memory_order_relaxed);
  s.armed.store(true, std::memory_order_relaxed);
}

void Disarm(Site site) {
  // Quiesce BEFORE clearing: work recorded while the site was armed must
  // still see it armed when it finally executes, exactly as inline
  // execution would have.
  Quiesce();
  DisarmNoQuiesce(site);
}

void DisarmAll() {
  Quiesce();
  for (int i = 0; i < kSiteCount; ++i) DisarmNoQuiesce(static_cast<Site>(i));
}

bool AnyArmed() {
  for (int i = 0; i < kSiteCount; ++i) {
    if (g_sites[i].armed.load(std::memory_order_relaxed)) return true;
  }
  return false;
}

bool ShouldFail(Site site) {
  SiteState& s = At(site);
  if (!s.armed.load(std::memory_order_relaxed)) return false;
  const std::uint64_t hit = s.hits.fetch_add(1, std::memory_order_relaxed);
  return hit >= s.nth.load(std::memory_order_relaxed);
}

std::uint64_t Hits(Site site) {
  Quiesce();
  return At(site).hits.load(std::memory_order_relaxed);
}

void SetQuiesceHook(void (*hook)()) {
  g_quiesce.store(hook, std::memory_order_release);
}

}  // namespace mgpu::fault
