#include "common/threadpool.h"

#include <algorithm>

namespace mgpu::common {

int DefaultThreadCount() {
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(int threads) {
  const int n = std::max(1, threads);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::WorkerLoop(int index) {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(int)>* body = nullptr;
    {
      std::unique_lock<std::mutex> lk(mu_);
      start_cv_.wait(lk, [&] { return stop_ || epoch_ != seen; });
      if (stop_) return;
      seen = epoch_;
      body = body_;
    }
    (*body)(index);
    {
      const std::lock_guard<std::mutex> lk(mu_);
      if (--running_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::RunOnAll(const std::function<void(int)>& body) {
  {
    const std::lock_guard<std::mutex> lk(mu_);
    body_ = &body;
    running_ = size();
    ++epoch_;
  }
  start_cv_.notify_all();
  {
    std::unique_lock<std::mutex> lk(mu_);
    done_cv_.wait(lk, [&] { return running_ == 0; });
    body_ = nullptr;
  }
}

}  // namespace mgpu::common
