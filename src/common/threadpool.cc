#include "common/threadpool.h"

#include <algorithm>
#include <stdexcept>

#include "common/fault.h"

namespace mgpu::common {

int DefaultThreadCount() {
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(int threads) {
  const int n = std::max(1, threads);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

// Claims the next task of job `epoch`. Returns false when the job's tasks
// are exhausted or a newer job owns the counter (a worker woken late by a
// leftover notify must not steal the new job's tasks while still holding
// the old job's body pointer). The lock is per *task claim*, not per work
// item — callers distribute fine-grained work through their own atomic
// inside the body — so contention is bounded by the task count.
bool ThreadPool::Claim(std::uint64_t epoch, int* task) {
  const std::lock_guard<std::mutex> lk(mu_);
  if (epoch_ != epoch || next_task_ >= n_tasks_) return false;
  *task = next_task_++;
  return true;
}

void ThreadPool::WorkerLoop() {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(int)>* body = nullptr;
    {
      std::unique_lock<std::mutex> lk(mu_);
      start_cv_.wait(lk, [&] { return stop_ || epoch_ != seen; });
      if (stop_) return;
      seen = epoch_;
      body = body_;
    }
    // Job completion is tracked by completed-task count, not by which
    // workers participated, so over-waking (stale notifies, spurious
    // wakeups) and under-waking (a woken worker draining several tasks
    // before another wakes) are both harmless.
    int completed = 0;
    std::exception_ptr error;
    for (int task = 0; Claim(seen, &task);) {
      // A task that throws still counts as completed — the join must drain
      // pending_ to zero no matter how tasks end, or RunOn deadlocks. Only
      // the first throw of a job is kept (and rethrown by RunOn).
      try {
        if (fault::ShouldFail(fault::Site::kPoolTask)) {
          throw std::runtime_error("injected fault: pool task failed");
        }
        (*body)(task);
      } catch (...) {
        if (error == nullptr) error = std::current_exception();
      }
      ++completed;
    }
    if (completed > 0) {
      const std::lock_guard<std::mutex> lk(mu_);
      if (error != nullptr && first_error_ == nullptr) {
        first_error_ = error;
      }
      pending_ -= completed;
      if (pending_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::RunOn(int n_tasks, const std::function<void(int)>& body) {
  if (n_tasks <= 0) return;
  {
    const std::lock_guard<std::mutex> lk(mu_);
    body_ = &body;
    n_tasks_ = n_tasks;
    pending_ = n_tasks;
    next_task_ = 0;
    first_error_ = nullptr;
    ++epoch_;
  }
  // Partial dispatch: wake exactly as many workers as there are tasks.
  // Workers not yet back on the condition variable from the previous job
  // re-check the epoch before parking, so a notify that lands on no waiter
  // is never lost — at least min(n_tasks, size()) workers end up claiming.
  const int wake = std::min(n_tasks, size());
  if (wake >= size()) {
    start_cv_.notify_all();
  } else {
    for (int i = 0; i < wake; ++i) start_cv_.notify_one();
  }
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lk(mu_);
    done_cv_.wait(lk, [&] { return pending_ == 0; });
    body_ = nullptr;
    error = first_error_;
    first_error_ = nullptr;
  }
  // Rethrow only after the join: every claimed task has finished and the
  // pool is back in its idle state, so the caller sees the failure with the
  // pool fully reusable for the next job.
  if (error != nullptr) std::rethrow_exception(error);
}

}  // namespace mgpu::common
