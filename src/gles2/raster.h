// Primitive rasterization: near-plane clipping, viewport transform,
// top-left-rule edge-function triangle fill with perspective-correct varying
// interpolation, plus points and lines. Coordinates follow GL conventions
// (window origin at the bottom-left, pixel centers at half-integers).
#ifndef MGPU_GLES2_RASTER_H_
#define MGPU_GLES2_RASTER_H_

#include <array>
#include <functional>
#include <vector>

#include "gles2/enums.h"

namespace mgpu::gles2 {

struct RasterVertex {
  std::array<float, 4> clip{0.0f, 0.0f, 0.0f, 1.0f};
  std::vector<float> varyings;
  float point_size = 1.0f;
};

struct RasterState {
  int viewport_x = 0;
  int viewport_y = 0;
  int viewport_w = 0;
  int viewport_h = 0;
  int target_w = 0;   // render target bounds (fragments outside are dropped)
  int target_h = 0;
  bool cull_enabled = false;
  GLenum cull_face = GL_BACK;
  GLenum front_face = GL_CCW;
};

// Fragment callback: window x, y (integer pixel coords), window-space depth
// in [0,1], interpolated varyings (varying_cells floats), facingness and the
// point-sprite coordinate (points only; (0,0) otherwise).
using FragmentSink = std::function<void(
    int x, int y, float depth, const float* varyings, bool front_facing,
    float point_s, float point_t)>;

void RasterizeTriangle(const RasterVertex& v0, const RasterVertex& v1,
                       const RasterVertex& v2, int varying_cells,
                       const RasterState& state, const FragmentSink& sink);

void RasterizePoint(const RasterVertex& v, int varying_cells,
                    const RasterState& state, const FragmentSink& sink);

void RasterizeLine(const RasterVertex& v0, const RasterVertex& v1,
                   int varying_cells, const RasterState& state,
                   const FragmentSink& sink);

}  // namespace mgpu::gles2

#endif  // MGPU_GLES2_RASTER_H_
