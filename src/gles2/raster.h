// Primitive rasterization: near-plane clipping, viewport transform,
// top-left-rule edge-function triangle fill with perspective-correct varying
// interpolation, plus points and lines. Coordinates follow GL conventions
// (window origin at the bottom-left, pixel centers at half-integers).
#ifndef MGPU_GLES2_RASTER_H_
#define MGPU_GLES2_RASTER_H_

#include <array>
#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "gles2/enums.h"

namespace mgpu::gles2 {

struct RasterVertex {
  std::array<float, 4> clip{0.0f, 0.0f, 0.0f, 1.0f};
  std::vector<float> varyings;
  float point_size = 1.0f;
};

// Half-open pixel rectangle [x0, x1) x [y0, y1).
struct PixelRect {
  int x0 = 0;
  int y0 = 0;
  int x1 = 0;
  int y1 = 0;
  [[nodiscard]] bool Empty() const { return x0 >= x1 || y0 >= y1; }
};

struct RasterState {
  int viewport_x = 0;
  int viewport_y = 0;
  int viewport_w = 0;
  int viewport_h = 0;
  int target_w = 0;   // render target bounds (fragments outside are dropped)
  int target_h = 0;
  bool cull_enabled = false;
  GLenum cull_face = GL_BACK;
  GLenum front_face = GL_CCW;
  // Additional pixel-space clip rectangle, intersected with the target
  // bounds. The tiled pipeline points this at the tile being shaded, so the
  // per-tile rasterizations of one primitive partition its fragments
  // exactly (each pixel belongs to exactly one tile). Defaults to
  // unbounded, i.e. plain whole-target rasterization.
  int clip_x0 = 0;
  int clip_y0 = 0;
  int clip_x1 = std::numeric_limits<int>::max();
  int clip_y1 = std::numeric_limits<int>::max();
};

// Fragment callback: window x, y (integer pixel coords), window-space depth
// in [0,1], interpolated varyings (varying_cells floats), facingness and the
// point-sprite coordinate (points only; (0,0) otherwise).
using FragmentSink = std::function<void(
    int x, int y, float depth, const float* varyings, bool front_facing,
    float point_s, float point_t)>;

// Upper bound on flattened varying cells a draw interpolates (8 varying
// vec4s); shared by the scalar scratch buffers and the batch planes.
inline constexpr int kMaxVaryingCells = 64;

// Maximum lane width of a fragment batch — one batched shader dispatch
// covers up to this many covered fragments. Must equal glsl::kVmLanes (the
// raster layer stays glsl-free; gles2::Context static_asserts the match).
// The *effective* fill width of a batch is the runtime FragmentBatch::width
// (<= this), so the plane strides stay compile-time constants while the
// dispatch granularity is a per-context knob (ContextConfig::
// fragment_batch_width, swept 8/16/32 by bench_fig1_pipeline).
inline constexpr int kFragBatchWidth = 32;

// A fixed-width batch of covered fragments in SoA ("structure of planes")
// layout: per-fragment scalars in parallel arrays, interpolated varyings as
// cell-major planes so the batched VM reads each varying cell's lanes
// contiguously. The batch rasterizer appends fragments in emission order
// (which is what makes batched depth/blend results byte-identical to the
// scalar path: writes drain in append order) and calls the flush callback
// when the batch fills; the tile loop flushes the tail.
struct FragmentBatch {
  int count = 0;
  // Effective fill width: the rasterizer flushes when count reaches this.
  // Set by the owner (defaults to full); always in [1, kFragBatchWidth].
  int width = kFragBatchWidth;
  std::array<std::int32_t, kFragBatchWidth> x;
  std::array<std::int32_t, kFragBatchWidth> y;
  std::array<float, kFragBatchWidth> depth;
  std::array<std::uint8_t, kFragBatchWidth> front;
  std::array<float, kFragBatchWidth> point_s;
  std::array<float, kFragBatchWidth> point_t;
  // Varying cell k of lane l lives at [k * kFragBatchWidth + l].
  std::array<float, kMaxVaryingCells * kFragBatchWidth> varyings;
};

// Shades and drains a full batch (must leave batch.count == 0).
using BatchFlushFn = std::function<void()>;

void RasterizeTriangle(const RasterVertex& v0, const RasterVertex& v1,
                       const RasterVertex& v2, int varying_cells,
                       const RasterState& state, const FragmentSink& sink);

void RasterizePoint(const RasterVertex& v, int varying_cells,
                    const RasterState& state, const FragmentSink& sink);

void RasterizeLine(const RasterVertex& v0, const RasterVertex& v1,
                   int varying_cells, const RasterState& state,
                   const FragmentSink& sink);

// Batch-accumulating variants for the lane-batched shading path: identical
// coverage, interpolation and emission order to the per-fragment overloads
// (same templated pixel loops), but covered fragments are appended straight
// into `batch`'s SoA planes — no per-fragment std::function call — and
// `flush` fires whenever the batch fills. Callers flush the tail themselves
// (the tile loop does it per tile, before the TMU-cache model resets).
void RasterizeTriangle(const RasterVertex& v0, const RasterVertex& v1,
                       const RasterVertex& v2, int varying_cells,
                       const RasterState& state, FragmentBatch& batch,
                       const BatchFlushFn& flush);

void RasterizePoint(const RasterVertex& v, int varying_cells,
                    const RasterState& state, FragmentBatch& batch,
                    const BatchFlushFn& flush);

void RasterizeLine(const RasterVertex& v0, const RasterVertex& v1,
                   int varying_cells, const RasterState& state,
                   FragmentBatch& batch, const BatchFlushFn& flush);

// Conservative window-space pixel bounds of a primitive, clamped to the
// render target — what the tile binner uses to assign primitives to tile
// bins. Returns false when the primitive can produce no fragments (fully
// near-clipped, culled, degenerate, or off-target). A true return with a
// non-empty rect guarantees every fragment the primitive emits lies inside
// the rect; the rect may cover tiles the primitive does not actually touch
// (those rasterize to nothing).
[[nodiscard]] bool TriangleBounds(const RasterVertex& v0,
                                  const RasterVertex& v1,
                                  const RasterVertex& v2,
                                  const RasterState& state, PixelRect* out);
[[nodiscard]] bool PointBounds(const RasterVertex& v, const RasterState& state,
                               PixelRect* out);

// Reports each tile_size-aligned tile whose pixels the line touches, in
// walk order without repeats (the walk is shared with RasterizeLine, so the
// reported tiles are exactly the ones that will emit fragments). Lines are
// binned this way rather than by bounding box — a diagonal line's bbox
// covers quadratically many tiles it never touches.
void LineTouchedTiles(const RasterVertex& v0, const RasterVertex& v1,
                      const RasterState& state, int tile_size,
                      const std::function<void(int tx, int ty)>& tile_fn);

}  // namespace mgpu::gles2

#endif  // MGPU_GLES2_RASTER_H_
