// Primitive rasterization: near-plane clipping, viewport transform,
// top-left-rule edge-function triangle fill with perspective-correct varying
// interpolation, plus points and lines. Coordinates follow GL conventions
// (window origin at the bottom-left, pixel centers at half-integers).
#ifndef MGPU_GLES2_RASTER_H_
#define MGPU_GLES2_RASTER_H_

#include <array>
#include <functional>
#include <limits>
#include <vector>

#include "gles2/enums.h"

namespace mgpu::gles2 {

struct RasterVertex {
  std::array<float, 4> clip{0.0f, 0.0f, 0.0f, 1.0f};
  std::vector<float> varyings;
  float point_size = 1.0f;
};

// Half-open pixel rectangle [x0, x1) x [y0, y1).
struct PixelRect {
  int x0 = 0;
  int y0 = 0;
  int x1 = 0;
  int y1 = 0;
  [[nodiscard]] bool Empty() const { return x0 >= x1 || y0 >= y1; }
};

struct RasterState {
  int viewport_x = 0;
  int viewport_y = 0;
  int viewport_w = 0;
  int viewport_h = 0;
  int target_w = 0;   // render target bounds (fragments outside are dropped)
  int target_h = 0;
  bool cull_enabled = false;
  GLenum cull_face = GL_BACK;
  GLenum front_face = GL_CCW;
  // Additional pixel-space clip rectangle, intersected with the target
  // bounds. The tiled pipeline points this at the tile being shaded, so the
  // per-tile rasterizations of one primitive partition its fragments
  // exactly (each pixel belongs to exactly one tile). Defaults to
  // unbounded, i.e. plain whole-target rasterization.
  int clip_x0 = 0;
  int clip_y0 = 0;
  int clip_x1 = std::numeric_limits<int>::max();
  int clip_y1 = std::numeric_limits<int>::max();
};

// Fragment callback: window x, y (integer pixel coords), window-space depth
// in [0,1], interpolated varyings (varying_cells floats), facingness and the
// point-sprite coordinate (points only; (0,0) otherwise).
using FragmentSink = std::function<void(
    int x, int y, float depth, const float* varyings, bool front_facing,
    float point_s, float point_t)>;

void RasterizeTriangle(const RasterVertex& v0, const RasterVertex& v1,
                       const RasterVertex& v2, int varying_cells,
                       const RasterState& state, const FragmentSink& sink);

void RasterizePoint(const RasterVertex& v, int varying_cells,
                    const RasterState& state, const FragmentSink& sink);

void RasterizeLine(const RasterVertex& v0, const RasterVertex& v1,
                   int varying_cells, const RasterState& state,
                   const FragmentSink& sink);

// Conservative window-space pixel bounds of a primitive, clamped to the
// render target — what the tile binner uses to assign primitives to tile
// bins. Returns false when the primitive can produce no fragments (fully
// near-clipped, culled, degenerate, or off-target). A true return with a
// non-empty rect guarantees every fragment the primitive emits lies inside
// the rect; the rect may cover tiles the primitive does not actually touch
// (those rasterize to nothing).
[[nodiscard]] bool TriangleBounds(const RasterVertex& v0,
                                  const RasterVertex& v1,
                                  const RasterVertex& v2,
                                  const RasterState& state, PixelRect* out);
[[nodiscard]] bool PointBounds(const RasterVertex& v, const RasterState& state,
                               PixelRect* out);

// Reports each tile_size-aligned tile whose pixels the line touches, in
// walk order without repeats (the walk is shared with RasterizeLine, so the
// reported tiles are exactly the ones that will emit fragments). Lines are
// binned this way rather than by bounding box — a diagonal line's bbox
// covers quadratically many tiles it never touches.
void LineTouchedTiles(const RasterVertex& v0, const RasterVertex& v1,
                      const RasterState& state, int tile_size,
                      const std::function<void(int tx, int ty)>& tile_fn);

}  // namespace mgpu::gles2

#endif  // MGPU_GLES2_RASTER_H_
