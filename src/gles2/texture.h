// Texture objects: RGBA8 internal storage (the only storage class OpenGL ES
// 2.0 guarantees — the paper's limitation #5: no float textures), upload
// conversion from the ES 2.0 external formats, completeness rules (mipmap
// and NPOT restrictions) and normalized-coordinate sampling (limitation #4).
#ifndef MGPU_GLES2_TEXTURE_H_
#define MGPU_GLES2_TEXTURE_H_

#include <array>
#include <cstdint>
#include <vector>

#include "gles2/enums.h"

namespace mgpu::gles2 {

class Texture {
 public:
  // Uploads level-0 storage, converting from (format, type) to RGBA8.
  // Returns GL_NO_ERROR or the error the API must raise. `data` may be null
  // (undefined contents, zero-filled here for determinism).
  GLenum TexImage2D(GLint level, GLenum internal_format, GLsizei width,
                    GLsizei height, GLenum format, GLenum type,
                    const void* data, GLint unpack_alignment);
  GLenum TexSubImage2D(GLint level, GLint xoffset, GLint yoffset,
                       GLsizei width, GLsizei height, GLenum format,
                       GLenum type, const void* data, GLint unpack_alignment);
  GLenum SetParameter(GLenum pname, GLint value);

  [[nodiscard]] GLsizei width() const { return width_; }
  [[nodiscard]] GLsizei height() const { return height_; }
  [[nodiscard]] bool has_storage() const { return width_ > 0 && height_ > 0; }
  [[nodiscard]] GLenum format() const { return format_; }

  // ES 2.0 completeness: non-mipmap filters only (we expose no mipmapping),
  // and NPOT textures require CLAMP_TO_EDGE wrapping. Incomplete textures
  // sample as opaque black, matching real drivers.
  [[nodiscard]] bool IsComplete() const;

  // Samples with normalized coordinates; returns RGBA in [0,1] (each channel
  // is c/255 exactly, Eq. (1) of the paper). Honors wrap modes and
  // mag filter (nearest / bilinear). `lod` is accepted for API completeness
  // but ignored (single-level textures).
  [[nodiscard]] std::array<float, 4> Sample(float s, float t, float lod) const;

  // Linear index of the texel a nearest-filter sample at (s, t) addresses;
  // used by the context's texture-cache model. -1 when there is no storage.
  [[nodiscard]] long long NearestTexelIndex(float s, float t) const;

  // Direct texel access for tests and ReadPixels-through-FBO.
  [[nodiscard]] std::array<std::uint8_t, 4> TexelAt(int x, int y) const;
  void SetTexelAt(int x, int y, const std::array<std::uint8_t, 4>& rgba);
  [[nodiscard]] const std::vector<std::uint8_t>& storage() const {
    return rgba8_;
  }
  [[nodiscard]] std::vector<std::uint8_t>& mutable_storage() { return rgba8_; }

  [[nodiscard]] GLenum min_filter() const { return min_filter_; }
  [[nodiscard]] GLenum mag_filter() const { return mag_filter_; }
  [[nodiscard]] GLenum wrap_s() const { return wrap_s_; }
  [[nodiscard]] GLenum wrap_t() const { return wrap_t_; }

 private:
  [[nodiscard]] std::array<float, 4> FetchTexel(int x, int y) const;
  [[nodiscard]] static int WrapCoord(int c, int size, GLenum mode);

  GLsizei width_ = 0;
  GLsizei height_ = 0;
  GLenum format_ = GL_RGBA;
  GLenum min_filter_ = GL_NEAREST_MIPMAP_LINEAR;  // ES 2.0 default!
  GLenum mag_filter_ = GL_LINEAR;
  GLenum wrap_s_ = GL_REPEAT;
  GLenum wrap_t_ = GL_REPEAT;
  std::vector<std::uint8_t> rgba8_;
};

// Converts one external-format pixel row into RGBA8. Exposed for tests.
// Returns false for unsupported (format, type) combinations — notably
// GL_FLOAT, which ES 2.0 does not support (paper limitation #5).
[[nodiscard]] bool ConvertRowToRgba8(GLenum format, GLenum type,
                                     const std::uint8_t* src, GLsizei width,
                                     std::uint8_t* dst);

// Bytes per pixel of an external format/type combination; 0 if unsupported.
[[nodiscard]] int ExternalBytesPerPixel(GLenum format, GLenum type);

}  // namespace mgpu::gles2

#endif  // MGPU_GLES2_TEXTURE_H_
