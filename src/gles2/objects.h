// Shader, program, buffer, renderbuffer and framebuffer objects of the
// software GL ES 2.0 implementation.
#ifndef MGPU_GLES2_OBJECTS_H_
#define MGPU_GLES2_OBJECTS_H_

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "gles2/enums.h"
#include "glsl/alu.h"
#include "glsl/engine.h"
#include "glsl/interp.h"
#include "glsl/ir.h"
#include "glsl/shader.h"
#include "glsl/vm.h"

namespace mgpu::gles2 {

struct ShaderObject {
  GLenum type = GL_FRAGMENT_SHADER;
  std::string source;
  bool compile_attempted = false;
  bool compile_ok = false;
  std::string info_log;
  std::shared_ptr<const glsl::CompiledShader> compiled;
};

struct BufferObject {
  std::vector<std::uint8_t> data;
  GLenum usage = GL_STATIC_DRAW;
};

struct RenderbufferObject {
  GLenum internal_format = 0;
  GLsizei width = 0;
  GLsizei height = 0;
  // Color storage kept as RGBA8, depth as float; only one is used.
  std::vector<std::uint8_t> color;
  std::vector<float> depth;
};

struct FramebufferAttachment {
  enum class Kind { kNone, kTexture, kRenderbuffer } kind = Kind::kNone;
  GLuint object = 0;  // texture or renderbuffer id
};

struct FramebufferObject {
  FramebufferAttachment color;
  FramebufferAttachment depth;
};

// A varying matched between the two stages at link time.
struct VaryingLink {
  int vs_slot = -1;
  int fs_slot = -1;
  int cells = 0;
  int offset = 0;  // cell offset into the flattened varying buffer
};

struct AttribInfo {
  std::string name;
  glsl::Type type;
  int location = -1;
  int vs_slot = -1;
};

struct UniformInfo {
  std::string name;
  glsl::Type type;
  int vs_slot = -1;  // -1 when the stage does not declare it
  int fs_slot = -1;
  int base_location = -1;
};

struct ProgramObject {
  GLuint vertex_shader = 0;
  GLuint fragment_shader = 0;
  bool linked = false;
  bool link_ok = false;
  std::string info_log;
  std::map<std::string, GLint> bound_attribs;  // BindAttribLocation requests

  // Link products. Each stage carries both execution engines: the bytecode
  // VM (production path; lowered once here at link time) and the
  // tree-walking interpreter (reference oracle). The context's ExecEngine
  // selects which one draws use; uniforms are mirrored into both.
  std::shared_ptr<const glsl::CompiledShader> vs;
  std::shared_ptr<const glsl::CompiledShader> fs;
  std::unique_ptr<glsl::ShaderExec> vexec;
  std::unique_ptr<glsl::ShaderExec> fexec;
  std::shared_ptr<const glsl::VmProgram> vs_bytecode;
  std::shared_ptr<const glsl::VmProgram> fs_bytecode;
  std::unique_ptr<glsl::VmExec> vvm;
  std::unique_ptr<glsl::VmExec> fvm;
  // Compiled-engine (ExecEngine::kCompiled) products: each stage's native
  // module, built lazily at the first kCompiled draw after link (so the
  // other engines never pay the toolchain invocation); the fragment module
  // is shared by every worker slot, the vertex module attaches to the
  // program's own vvm. A null module — with the attempted latch set —
  // means compilation is unavailable or declined (divergent control flow),
  // which is the batched-interpreter fallback. Reset by relinking.
  std::shared_ptr<const glsl::jit::Module> fs_jit;
  bool fs_jit_attempted = false;
  std::shared_ptr<const glsl::jit::Module> vs_jit;
  bool vs_jit_attempted = false;
  std::vector<VaryingLink> varyings;
  // Whether the fragment stage can trap at runtime (VmProgram::CanTrap on
  // the lowered bytecode; the tree-walk interpreter traps on exactly the
  // same constructs, so one flag covers every engine). Cached at link so
  // the draw loop's journal-or-not decision is a field read. Defaults to
  // the conservative answer.
  bool fs_can_trap = true;
  int varying_cells = 0;
  std::vector<AttribInfo> attribs;
  std::vector<UniformInfo> uniforms;
  struct LocationEntry {
    int uniform_index = -1;
    int element = 0;
  };
  std::vector<LocationEntry> locations;
  std::map<std::string, GLint> uniform_locations;
  bool uses_frag_data = false;  // fragment writes gl_FragData[0]
  // Cached gl_* slots.
  int vs_position_slot = -1;
  int vs_point_size_slot = -1;
  int fs_frag_color_slot = -1;
  int fs_frag_data_slot = -1;
  int fs_frag_coord_slot = -1;
  int fs_front_facing_slot = -1;
  int fs_point_coord_slot = -1;

  [[nodiscard]] GLint LookupUniform(const std::string& name) const {
    const auto it = uniform_locations.find(name);
    return it != uniform_locations.end() ? it->second : -1;
  }
};

// Links `prog` from its attached, successfully compiled shaders. Fills all
// link products; on failure sets link_ok = false and the info log.
void LinkProgram(ProgramObject& prog,
                 const std::map<GLuint, std::unique_ptr<ShaderObject>>& shaders,
                 glsl::AluModel& alu, const glsl::Limits& limits);

}  // namespace mgpu::gles2

#endif  // MGPU_GLES2_OBJECTS_H_
