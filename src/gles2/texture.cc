#include "gles2/texture.h"

#include <cmath>
#include <cstring>

namespace mgpu::gles2 {
namespace {

bool IsPowerOfTwo(GLsizei v) { return v > 0 && (v & (v - 1)) == 0; }

// Expands an n-bit channel to 8 bits (standard replication).
std::uint8_t Expand(int value, int bits) {
  const int max = (1 << bits) - 1;
  return static_cast<std::uint8_t>((value * 255 + max / 2) / max);
}

}  // namespace

int ExternalBytesPerPixel(GLenum format, GLenum type) {
  switch (type) {
    case GL_UNSIGNED_BYTE:
      switch (format) {
        case GL_RGBA: return 4;
        case GL_RGB: return 3;
        case GL_LUMINANCE_ALPHA: return 2;
        case GL_LUMINANCE: return 1;
        case GL_ALPHA: return 1;
        default: return 0;
      }
    case GL_UNSIGNED_SHORT_5_6_5:
      return format == GL_RGB ? 2 : 0;
    case GL_UNSIGNED_SHORT_4_4_4_4:
    case GL_UNSIGNED_SHORT_5_5_5_1:
      return format == GL_RGBA ? 2 : 0;
    default:
      return 0;  // GL_FLOAT and friends: unsupported in ES 2.0
  }
}

bool ConvertRowToRgba8(GLenum format, GLenum type, const std::uint8_t* src,
                       GLsizei width, std::uint8_t* dst) {
  if (ExternalBytesPerPixel(format, type) == 0) return false;
  for (GLsizei x = 0; x < width; ++x) {
    std::uint8_t r = 0, g = 0, b = 0, a = 255;
    switch (type) {
      case GL_UNSIGNED_BYTE:
        switch (format) {
          case GL_RGBA:
            r = src[0]; g = src[1]; b = src[2]; a = src[3];
            src += 4;
            break;
          case GL_RGB:
            r = src[0]; g = src[1]; b = src[2];
            src += 3;
            break;
          case GL_LUMINANCE_ALPHA:
            r = g = b = src[0]; a = src[1];
            src += 2;
            break;
          case GL_LUMINANCE:
            r = g = b = src[0];
            src += 1;
            break;
          case GL_ALPHA:
            r = g = b = 0; a = src[0];
            src += 1;
            break;
          default:
            return false;
        }
        break;
      case GL_UNSIGNED_SHORT_5_6_5: {
        std::uint16_t p;
        std::memcpy(&p, src, 2);
        src += 2;
        r = Expand((p >> 11) & 0x1f, 5);
        g = Expand((p >> 5) & 0x3f, 6);
        b = Expand(p & 0x1f, 5);
        break;
      }
      case GL_UNSIGNED_SHORT_4_4_4_4: {
        std::uint16_t p;
        std::memcpy(&p, src, 2);
        src += 2;
        r = Expand((p >> 12) & 0xf, 4);
        g = Expand((p >> 8) & 0xf, 4);
        b = Expand((p >> 4) & 0xf, 4);
        a = Expand(p & 0xf, 4);
        break;
      }
      case GL_UNSIGNED_SHORT_5_5_5_1: {
        std::uint16_t p;
        std::memcpy(&p, src, 2);
        src += 2;
        r = Expand((p >> 11) & 0x1f, 5);
        g = Expand((p >> 6) & 0x1f, 5);
        b = Expand((p >> 1) & 0x1f, 5);
        a = (p & 1) != 0 ? 255 : 0;
        break;
      }
      default:
        return false;
    }
    dst[0] = r; dst[1] = g; dst[2] = b; dst[3] = a;
    dst += 4;
  }
  return true;
}

GLenum Texture::TexImage2D(GLint level, GLenum internal_format, GLsizei width,
                           GLsizei height, GLenum format, GLenum type,
                           const void* data, GLint unpack_alignment) {
  if (level != 0) {
    // Mipmap uploads accepted by the spec; this implementation supports a
    // single level and rejects others to keep behaviour explicit.
    return GL_INVALID_VALUE;
  }
  if (internal_format != format) return GL_INVALID_OPERATION;
  if (width < 0 || height < 0 || width > 4096 || height > 4096) {
    return GL_INVALID_VALUE;
  }
  const int bpp = ExternalBytesPerPixel(format, type);
  if (bpp == 0) return GL_INVALID_ENUM;  // includes GL_FLOAT: limitation #5
  width_ = width;
  height_ = height;
  format_ = format;
  rgba8_.assign(static_cast<std::size_t>(width) * height * 4, 0);
  if (data == nullptr) return GL_NO_ERROR;
  const auto* src = static_cast<const std::uint8_t*>(data);
  const int row_bytes = bpp * width;
  const int stride =
      (row_bytes + unpack_alignment - 1) / unpack_alignment * unpack_alignment;
  for (GLsizei y = 0; y < height; ++y) {
    if (!ConvertRowToRgba8(format, type, src + y * stride, width,
                           rgba8_.data() + static_cast<std::size_t>(y) * width * 4)) {
      return GL_INVALID_ENUM;
    }
  }
  return GL_NO_ERROR;
}

GLenum Texture::TexSubImage2D(GLint level, GLint xoffset, GLint yoffset,
                              GLsizei width, GLsizei height, GLenum format,
                              GLenum type, const void* data,
                              GLint unpack_alignment) {
  if (level != 0) return GL_INVALID_VALUE;
  if (!has_storage()) return GL_INVALID_OPERATION;
  if (format != format_) return GL_INVALID_OPERATION;
  if (xoffset < 0 || yoffset < 0 || xoffset + width > width_ ||
      yoffset + height > height_) {
    return GL_INVALID_VALUE;
  }
  const int bpp = ExternalBytesPerPixel(format, type);
  if (bpp == 0) return GL_INVALID_ENUM;
  if (data == nullptr) return GL_INVALID_VALUE;
  const auto* src = static_cast<const std::uint8_t*>(data);
  const int row_bytes = bpp * width;
  const int stride =
      (row_bytes + unpack_alignment - 1) / unpack_alignment * unpack_alignment;
  std::vector<std::uint8_t> row(static_cast<std::size_t>(width) * 4);
  for (GLsizei y = 0; y < height; ++y) {
    if (!ConvertRowToRgba8(format, type, src + y * stride, width,
                           row.data())) {
      return GL_INVALID_ENUM;
    }
    std::memcpy(rgba8_.data() +
                    (static_cast<std::size_t>(yoffset + y) * width_ + xoffset) * 4,
                row.data(), row.size());
  }
  return GL_NO_ERROR;
}

GLenum Texture::SetParameter(GLenum pname, GLint value) {
  const auto v = static_cast<GLenum>(value);
  switch (pname) {
    case GL_TEXTURE_MIN_FILTER:
      switch (v) {
        case GL_NEAREST: case GL_LINEAR:
        case GL_NEAREST_MIPMAP_NEAREST: case GL_LINEAR_MIPMAP_NEAREST:
        case GL_NEAREST_MIPMAP_LINEAR: case GL_LINEAR_MIPMAP_LINEAR:
          min_filter_ = v;
          return GL_NO_ERROR;
        default:
          return GL_INVALID_ENUM;
      }
    case GL_TEXTURE_MAG_FILTER:
      if (v == GL_NEAREST || v == GL_LINEAR) {
        mag_filter_ = v;
        return GL_NO_ERROR;
      }
      return GL_INVALID_ENUM;
    case GL_TEXTURE_WRAP_S:
    case GL_TEXTURE_WRAP_T:
      if (v == GL_REPEAT || v == GL_CLAMP_TO_EDGE || v == GL_MIRRORED_REPEAT) {
        (pname == GL_TEXTURE_WRAP_S ? wrap_s_ : wrap_t_) = v;
        return GL_NO_ERROR;
      }
      return GL_INVALID_ENUM;
    default:
      return GL_INVALID_ENUM;
  }
}

bool Texture::IsComplete() const {
  if (!has_storage()) return false;
  // No mipmaps are ever defined in this implementation, so mipmapping min
  // filters make the texture incomplete — including the ES 2.0 *default*
  // min filter, a classic real-driver trap for GPGPU code.
  const bool mipmapped = min_filter_ != GL_NEAREST && min_filter_ != GL_LINEAR;
  if (mipmapped) return false;
  const bool npot = !IsPowerOfTwo(width_) || !IsPowerOfTwo(height_);
  if (npot && (wrap_s_ != GL_CLAMP_TO_EDGE || wrap_t_ != GL_CLAMP_TO_EDGE)) {
    return false;
  }
  return true;
}

int Texture::WrapCoord(int c, int size, GLenum mode) {
  switch (mode) {
    case GL_REPEAT: {
      const int m = c % size;
      return m < 0 ? m + size : m;
    }
    case GL_MIRRORED_REPEAT: {
      const int period = 2 * size;
      int m = c % period;
      if (m < 0) m += period;
      return m < size ? m : period - 1 - m;
    }
    case GL_CLAMP_TO_EDGE:
    default:
      return c < 0 ? 0 : (c >= size ? size - 1 : c);
  }
}

std::array<std::uint8_t, 4> Texture::TexelAt(int x, int y) const {
  const std::size_t off = (static_cast<std::size_t>(y) * width_ + x) * 4;
  return {rgba8_[off], rgba8_[off + 1], rgba8_[off + 2], rgba8_[off + 3]};
}

void Texture::SetTexelAt(int x, int y,
                         const std::array<std::uint8_t, 4>& rgba) {
  const std::size_t off = (static_cast<std::size_t>(y) * width_ + x) * 4;
  rgba8_[off] = rgba[0];
  rgba8_[off + 1] = rgba[1];
  rgba8_[off + 2] = rgba[2];
  rgba8_[off + 3] = rgba[3];
}

std::array<float, 4> Texture::FetchTexel(int x, int y) const {
  const auto t = TexelAt(x, y);
  // Eq. (1): f = c / (2^8 - 1).
  return {t[0] / 255.0f, t[1] / 255.0f, t[2] / 255.0f, t[3] / 255.0f};
}

long long Texture::NearestTexelIndex(float s, float t) const {
  if (!has_storage()) return -1;
  int x = static_cast<int>(std::floor(s * static_cast<float>(width_)));
  int y = static_cast<int>(std::floor(t * static_cast<float>(height_)));
  x = WrapCoord(x, width_, wrap_s_);
  y = WrapCoord(y, height_, wrap_t_);
  return static_cast<long long>(y) * width_ + x;
}

std::array<float, 4> Texture::Sample(float s, float t, float /*lod*/) const {
  if (!IsComplete()) return {0.0f, 0.0f, 0.0f, 1.0f};
  if (mag_filter_ == GL_NEAREST) {
    int x = static_cast<int>(std::floor(s * static_cast<float>(width_)));
    int y = static_cast<int>(std::floor(t * static_cast<float>(height_)));
    x = WrapCoord(x, width_, wrap_s_);
    y = WrapCoord(y, height_, wrap_t_);
    return FetchTexel(x, y);
  }
  // Bilinear.
  const float u = s * static_cast<float>(width_) - 0.5f;
  const float v = t * static_cast<float>(height_) - 0.5f;
  const int x0 = static_cast<int>(std::floor(u));
  const int y0 = static_cast<int>(std::floor(v));
  const float fu = u - static_cast<float>(x0);
  const float fv = v - static_cast<float>(y0);
  const int xs[2] = {WrapCoord(x0, width_, wrap_s_),
                     WrapCoord(x0 + 1, width_, wrap_s_)};
  const int ys[2] = {WrapCoord(y0, height_, wrap_t_),
                     WrapCoord(y0 + 1, height_, wrap_t_)};
  const auto t00 = FetchTexel(xs[0], ys[0]);
  const auto t10 = FetchTexel(xs[1], ys[0]);
  const auto t01 = FetchTexel(xs[0], ys[1]);
  const auto t11 = FetchTexel(xs[1], ys[1]);
  std::array<float, 4> out{};
  for (int c = 0; c < 4; ++c) {
    const float a = t00[c] + (t10[c] - t00[c]) * fu;
    const float b = t01[c] + (t11[c] - t01[c]) * fu;
    out[c] = a + (b - a) * fv;
  }
  return out;
}

}  // namespace mgpu::gles2
