// Tile binning for the two-phase, VC4-style fragment pipeline. The real
// VideoCore IV is a tile-based renderer: a binning pass assigns primitives
// to 64x64 tile lists, then the QPUs shade tiles independently. This module
// reproduces that structure in the simulator: post-clip primitives are
// binned by their window-space bounds, and the draw loop (gles2::Context)
// shades the non-empty tiles — serially or on a worker pool. Because tiles
// partition the framebuffer and each bin preserves primitive submission
// order, the shaded result is byte-identical for any tile execution order
// and any worker count.
#ifndef MGPU_GLES2_TILER_H_
#define MGPU_GLES2_TILER_H_

#include <cstdint>
#include <vector>

#include "gles2/raster.h"

namespace mgpu::gles2 {

// Tile edge length in pixels, matching the VideoCore IV binning granularity
// (64x64 in non-multisample mode).
inline constexpr int kTileSize = 64;

// One assembled primitive: vertex indices into the draw's post-transform
// vertex array. Points use v0; lines v0/v1; triangles all three (already in
// the winding the raster functions expect, i.e. strip parity is resolved at
// assembly time).
struct TilePrim {
  enum class Kind : std::uint8_t { kTriangle, kPoint, kLine };
  Kind kind = Kind::kTriangle;
  std::uint32_t v0 = 0;
  std::uint32_t v1 = 0;
  std::uint32_t v2 = 0;
};

class TileBinner {
 public:
  struct Tile {
    PixelRect rect;                     // clamped to the target
    std::vector<std::uint32_t> prims;   // primitive indices, submission order
  };

  TileBinner(int target_w, int target_h);

  [[nodiscard]] int tiles_x() const { return tiles_x_; }
  [[nodiscard]] int tiles_y() const { return tiles_y_; }

  // Bins primitive `prim_index` into every tile its bounds rect touches.
  // `bounds` must already be clamped to the target (see *Bounds in
  // raster.h).
  void Bin(std::uint32_t prim_index, const PixelRect& bounds);

  // Bins primitive `prim_index` into the single tile (tx, ty). Used with
  // LineTouchedTiles, which walks the line and reports each touched tile
  // exactly once. Out-of-range tiles are ignored.
  void BinTile(std::uint32_t prim_index, int tx, int ty);

  [[nodiscard]] const std::vector<Tile>& tiles() const { return tiles_; }

  // Row-major indices of the tiles that received at least one primitive —
  // the shading work list.
  [[nodiscard]] std::vector<std::uint32_t> NonEmptyTiles() const;

 private:
  int tiles_x_ = 0;
  int tiles_y_ = 0;
  std::vector<Tile> tiles_;
};

}  // namespace mgpu::gles2

#endif  // MGPU_GLES2_TILER_H_
