// Tile binning for the two-phase, VC4-style fragment pipeline. The real
// VideoCore IV is a tile-based renderer: a binning pass assigns primitives
// to 64x64 tile lists, then the QPUs shade tiles independently. This module
// reproduces that structure in the simulator: post-clip primitives are
// binned by their window-space bounds, and the draw loop (gles2::Context)
// shades the non-empty tiles — serially or on a worker pool, with each
// tile's covered fragments gathered into fixed-width SoA lane batches and
// dispatched through VmExec::RunBatch under the default batched engine
// (the batch tail flushes at tile end, inside the tile's TMU-cache
// session). Because tiles partition the framebuffer and each bin preserves
// primitive submission order, the shaded result is byte-identical for any
// tile execution order and any worker count.
//
// The binner is *sparse*: storage scales with the tiles a draw actually
// touches, not with the width x height tile grid of the target. Bins live
// in a compact slot list addressed through a stamped open-addressed hash
// table, and BeginDraw recycles all of it — slots, their prims vectors, and
// the table — so a steady-state draw loop performs no per-draw allocation
// and a tiny draw on a huge target costs O(touched tiles), not O(grid).
#ifndef MGPU_GLES2_TILER_H_
#define MGPU_GLES2_TILER_H_

#include <cstdint>
#include <vector>

#include "gles2/raster.h"

namespace mgpu::gles2 {

// Tile edge length in pixels, matching the VideoCore IV binning granularity
// (64x64 in non-multisample mode).
inline constexpr int kTileSize = 64;

// One assembled primitive: vertex indices into the draw's post-transform
// vertex array. Points use v0; lines v0/v1; triangles all three (already in
// the winding the raster functions expect, i.e. strip parity is resolved at
// assembly time).
struct TilePrim {
  enum class Kind : std::uint8_t { kTriangle, kPoint, kLine };
  Kind kind = Kind::kTriangle;
  std::uint32_t v0 = 0;
  std::uint32_t v1 = 0;
  std::uint32_t v2 = 0;
};

class TileBinner {
 public:
  struct Tile {
    PixelRect rect;                     // clamped to the target
    std::vector<std::uint32_t> prims;   // primitive indices, submission order
  };

  TileBinner() = default;
  // Convenience for tests: a binner already prepared for one draw.
  TileBinner(int target_w, int target_h) { BeginDraw(target_w, target_h); }

  // Prepares for a new draw over a target_w x target_h target, dropping all
  // bins of the previous draw. Reuses every prior heap allocation (tile
  // slots, their prims vectors, the hash table), so repeated draws allocate
  // only when they touch more tiles than any draw before them.
  void BeginDraw(int target_w, int target_h);

  [[nodiscard]] int tiles_x() const { return tiles_x_; }
  [[nodiscard]] int tiles_y() const { return tiles_y_; }

  // Bins primitive `prim_index` into every tile its bounds rect touches.
  // `bounds` must already be clamped to the target (see *Bounds in
  // raster.h).
  void Bin(std::uint32_t prim_index, const PixelRect& bounds);

  // Bins primitive `prim_index` into the single tile (tx, ty). Used with
  // LineTouchedTiles, which walks the line and reports each touched tile
  // exactly once. Out-of-range tiles are ignored.
  void BinTile(std::uint32_t prim_index, int tx, int ty);

  // The bin of a row-major tile index returned by NonEmptyTiles. Must only
  // be called with indices of tiles binned this draw.
  [[nodiscard]] const Tile& tile(std::uint32_t index) const;

  // Row-major indices of the tiles that received at least one primitive —
  // the shading work list, ascending (the same order the old dense grid
  // walk produced, so results are reproducible across binner versions).
  void NonEmptyTiles(std::vector<std::uint32_t>* out) const;
  [[nodiscard]] std::vector<std::uint32_t> NonEmptyTiles() const {
    std::vector<std::uint32_t> out;
    NonEmptyTiles(&out);
    return out;
  }

  // Heap telemetry for the allocation-reuse tests: the number of tile slots
  // and hash-table entries currently reserved. Steady-state draw loops must
  // keep both constant (BeginDraw never shrinks, Bin only grows on a
  // high-water mark).
  [[nodiscard]] std::size_t slot_capacity() const { return slots_.size(); }
  [[nodiscard]] std::size_t table_capacity() const { return table_.size(); }

 private:
  // Open-addressed hash entry mapping a row-major tile index to a slot.
  // `stamp` ties the entry to one draw: BeginDraw bumps the stamp instead
  // of clearing the table, so stale entries are simply invisible.
  struct TableEntry {
    std::uint32_t tile_index = 0;
    std::uint32_t slot = 0;
    std::uint64_t stamp = 0;
  };

  [[nodiscard]] Tile& SlotFor(int tx, int ty);
  void Rehash(std::size_t min_entries);

  int target_w_ = 0;
  int target_h_ = 0;
  int tiles_x_ = 0;
  int tiles_y_ = 0;
  std::vector<Tile> slots_;   // first used_ entries belong to this draw
  std::size_t used_ = 0;
  std::vector<TableEntry> table_;  // size is a power of two (or empty)
  std::uint64_t stamp_ = 0;
};

}  // namespace mgpu::gles2

#endif  // MGPU_GLES2_TILER_H_
