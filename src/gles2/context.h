// The OpenGL ES 2.0 context: the API surface the paper's GPGPU framework
// programs against. Implements the subset of ES 2.0 the paper's techniques
// exercise, while faithfully enforcing the *restrictions* the paper works
// around: byte-only textures and framebuffers, normalized texture
// coordinates, triangles-only complex geometry, a single fragment output,
// and no texture readback path other than framebuffer ReadPixels.
#ifndef MGPU_GLES2_CONTEXT_H_
#define MGPU_GLES2_CONTEXT_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "gles2/enums.h"
#include "gles2/objects.h"
#include "gles2/texture.h"
#include "gles2/tiler.h"
#include "glsl/alu.h"
#include "glsl/shader.h"
#include "glsl/simd.h"

namespace mgpu::common {
class ThreadPool;
}

namespace mgpu::gles2 {

// Command-stream types (src/gles2/cmdstream.h): the per-context recording
// queue, its record/elide tallies, and a draw's client-array snapshot.
namespace cmd {
class CommandQueue;
struct Stats;
struct AttribCopy;
}  // namespace cmd

// How fragment colors are quantized into the byte framebuffer. The paper's
// Eq. (2) states floor(f * 255); most real drivers round to nearest. Both
// are provided so the robustness of the pack/unpack algebra can be verified
// under either (see bench_ablation_readback and the packing tests).
enum class FbQuantization { kRoundNearest, kFloorPaper };

// Which shader execution engine draws run on. Three engines, all
// byte-identical in framebuffer output and ALU/SFU/TMU op counts:
//   kBatchedVm  — the production path: fragments are gathered into
//                 kFragBatchWidth-lane SoA batches and the lowered bytecode
//                 executes once per instruction over all lanes
//                 (VmExec::RunBatch), amortizing dispatch and operand
//                 resolution across the batch the way a VC4 QPU runs 16
//                 pixels through one instruction stream.
//   kBytecodeVm — the scalar VM: the same bytecode dispatched once per
//                 fragment. Kept as the first-tier differential oracle for
//                 the batched engine.
//   kTreeWalk   — the tree-walking interpreter, the original reference
//                 oracle, executing the annotated AST directly.
//   kCompiled   — the batched VM with a per-link compiled module attached:
//                 each uniform-control-flow fragment program is transpiled
//                 to C++ and compiled with the host toolchain at its first
//                 kCompiled draw (cached by source hash across processes);
//                 batches then run native code that calls back into the
//                 interpreter for anything it does not inline (see
//                 src/glsl/jit.h for the bit-identity argument). Falls back
//                 to kBatchedVm behaviour when no host compiler is
//                 available, MGPU_JIT=0, or the program is divergent.
enum class ExecEngine { kBatchedVm, kBytecodeVm, kTreeWalk, kCompiled };

struct ContextConfig {
  int width = 64;
  int height = 64;
  bool has_depth = true;
  glsl::Limits limits;
  FbQuantization quantization = FbQuantization::kRoundNearest;
  ExecEngine exec_engine = ExecEngine::kBatchedVm;
  int max_texture_size = 4096;
  // Entry cap of the per-worker shading-state cache (see ShadeStateCache):
  // least-recently-drawn entries are evicted beyond this, so a workload
  // cycling hundreds of linked programs cannot grow the cache unboundedly.
  int shade_cache_capacity = 64;
  // Fragment-shading worker count for the tiled pipeline: <= 0 = one
  // worker per hardware thread (default), 1 = serial reference path
  // (shades on the calling thread with the program's own engine), N > 1 =
  // exactly N workers (capped at 256). Because 64x64 tiles partition the framebuffer and each worker
  // owns a private engine / ALU-counter shard / TMU-cache model, every
  // successful draw produces identical framebuffer bytes and ALU/SFU/TMU
  // op counts for every value. (A draw that raises a shader runtime error
  // is aborted *transactionally*: framebuffer, depth and counters are
  // restored to the pre-draw state byte for byte — identical for every
  // engine and worker count — and the GL error / last_draw_error / reset
  // status report the failure; a real GPU would hang or be reset.)
  // Parallel shading requires the bytecode VM engine and a forkable
  // AluModel; otherwise the draw falls back to the serial path.
  int shader_threads = 0;
  // SIMD tier for the batched VM's SoA kernels: -1 = auto (MGPU_SIMD env
  // override, else the detected hardware level), 0/1/2 = force
  // scalar/SSE2/AVX2 (clamped to what the host supports). Results are
  // bit-identical at every tier by construction (see src/glsl/simd.h);
  // this knob exists for A/B benchmarking and CI's SIMD-off leg.
  int simd = -1;
  // Compiled-engine (ExecEngine::kCompiled) availability: -1 = auto (the
  // MGPU_JIT env override if set — 0 disables — else host-compiler
  // detection), 0 = force off (kCompiled then behaves exactly like
  // kBatchedVm), 1 = on when a compiler is detected. Mirrors `simd`; this
  // knob exists for A/B benchmarking and CI's MGPU_JIT=0 fallback leg.
  int jit = -1;
  // Vertex-stage batching under the batched engines (kBatchedVm /
  // kCompiled): -1 = auto (the MGPU_VERTEX_BATCH env override if set — 0
  // disables — else on), 0 = force the scalar per-vertex reference loop,
  // 1 = force on. When on, vertex shading gathers enabled attributes into
  // the vertex VM's SoA lane planes and runs up to kVmLanes vertices per
  // RunBatch pass (inheriting the SoA kernels, the SIMD fast paths and the
  // compiled engine), scattering gl_Position / gl_PointSize / varyings
  // back in lane order — bit-identical to the scalar loop in framebuffer
  // bytes, op counts and trap diagnostics (see README). Mirrors `simd` /
  // `jit`: the knob exists for A/B benchmarking and CI's fallback-off leg.
  int vertex_batch = -1;
  // VC4-style command stream: -1 = auto (the MGPU_ASYNC env override if
  // set — 0 disables — else on), 0 = immediate mode (every call executes
  // inline, the oracle), 1 = force on. When on, state changes and draws are
  // recorded into a replayable CommandList (src/gles2/cmdstream.h) with
  // dirty-state diffing, submitted to a process-wide consumer thread that
  // executes lists from all contexts in fair FIFO arrival order — the way
  // real VC4 is driven by control lists rather than immediate-mode calls.
  // Flush() submits the open list, Finish() joins, and every value-
  // returning call (GetError, ReadPixels, GetGraphicsResetStatus, Gen*,
  // Get*, ...) is an implicit sync point, so recorded execution is
  // byte-identical to immediate mode in framebuffer bytes, op counts, GL
  // errors and trap/abort semantics (see README "Command stream"). Mirrors
  // `simd` / `jit` / `vertex_batch`: the knob exists for A/B benchmarking
  // and CI's MGPU_ASYNC=0 leg.
  int async_submit = -1;
  // Effective fragment-batch fill width (lanes per batched shader
  // dispatch), clamped to [1, kFragBatchWidth]. Swept 8/16/32 by
  // bench_fig1_pipeline; the default matches the pre-SIMD batch width.
  int fragment_batch_width = 16;
  // Per-draw total-work budget in modeled ALU ops (vertex + fragment,
  // AluModel::CountAlu accounting): a watchdog in the spirit of a kernel
  // GPU-hang timeout. 0 (default) disables it; a draw that exceeds the
  // budget is aborted transactionally (framebuffer, depth and counters as
  // if never issued) with GL_OUT_OF_MEMORY and a guilty reset status. The
  // MGPU_DRAW_BUDGET environment variable overrides this at construction.
  // The trip decision is deterministic across engines and worker counts
  // because the completed draw's op total is engine- and thread-invariant.
  std::uint64_t draw_budget = 0;
  std::string renderer_name = "mgpu software GLES2 (VideoCore IV model)";
};

// Classification of a draw abort, driving the GL error and reset status a
// failed draw reports (see Context::GetGraphicsResetStatus):
//   kTrap     — the shader itself trapped (loop budget, call depth,
//               explicit trap): guilty reset + GL_INVALID_OPERATION.
//   kBudget   — the draw tripped the ContextConfig::draw_budget watchdog:
//               guilty reset + GL_OUT_OF_MEMORY.
//   kResource — the implementation failed under the draw (allocation or
//               worker-pool failure): innocent reset + GL_OUT_OF_MEMORY.
enum class DrawErrorKind { kNone, kTrap, kBudget, kResource };

// Per-worker undo log making draws transactional: every framebuffer byte
// and depth float a worker overwrites is recorded before mutation, and an
// aborted draw replays the entries in reverse to restore the exact
// pre-draw image. Workers own disjoint tiles, so replay order across
// workers is irrelevant; within a worker, reverse order makes repeated
// writes to one pixel unwind correctly. Vectors keep their capacity across
// draws (cleared, not freed), so the trap-free hot path pays one bounds
// check and a push_back per written pixel.
struct UndoJournal {
  struct ColorEntry {
    std::uint32_t offset;                 // byte offset of the RGBA8 pixel
    std::array<std::uint8_t, 4> old_rgba;
  };
  struct DepthEntry {
    std::uint32_t index;  // float index into the depth plane
    float old_depth;
  };
  std::vector<ColorEntry> color;
  std::vector<DepthEntry> depth;
  void Clear() {
    color.clear();
    depth.clear();
  }
};

// Texture-cache model: 4 KB, 4-way set associative, 32-byte lines (8 RGBA8
// texels), round-robin replacement. Reset per *tile*, the way a VC4 QPU's
// TMU cache session is effectively private to the tile it shades; with
// per-tile resets the total miss count is a sum of independent per-tile
// counts, identical for any tile execution order and worker count. Misses
// feed the ALU counters and are priced by the timing model (sequential
// GPGPU streams mostly hit, strided matrix walks miss — the paper's
// sum/sgemm asymmetry).
struct TmuCacheModel {
  static constexpr int kSets = 32;
  static constexpr int kWays = 4;
  std::array<std::uint64_t, kSets * kWays> lines{};
  std::array<std::uint8_t, kSets> rr{};

  TmuCacheModel() { Reset(); }
  void Reset() {
    lines.fill(~0ull);
    rr.fill(0);
  }
  // Touches `line`, installing it on a miss. Returns true on a miss.
  bool Access(std::uint64_t line) {
    // Multiplicative hash so distinct textures' streams spread over sets.
    const std::uint64_t h = line * 0x9E3779B97F4A7C15ull;
    const std::size_t set = static_cast<std::size_t>(
        (h >> 32) % static_cast<std::uint64_t>(kSets));
    for (int way = 0; way < kWays; ++way) {
      if (lines[set * kWays + static_cast<std::size_t>(way)] == line) {
        return false;
      }
    }
    const std::uint8_t victim = rr[set];
    lines[set * kWays + victim] = line;
    rr[set] = static_cast<std::uint8_t>((victim + 1) % kWays);
    return true;
  }
};

// Caches the per-worker shading state of the tiled fragment pipeline so a
// draw's setup cost is amortized across draws instead of paid per draw.
// Building a worker slot is expensive — a VmExec clone (full global-store
// copy with allocation), an AluModel fork, a TMU-cache model, plus the
// per-draw plumbing that used to be rebuilt on every draw and now lives
// here: the FragmentSink / batch-flush closures, the cached gl_* slot
// pointers, the varying scatter tables, the lane-batch scratch and the
// deferred TMU access log, and the engine's installed texture callback.
// None of it depends on anything but the program, the engine flavor and
// the worker count, so steady-state draws allocate nothing at all.
//
// Entries are keyed by (program id, configured thread count); the serial
// path (1 effective worker) caches under thread count 1 with a slot that
// *borrows* the program's own engine, the context ALU model and the
// context-owned serial TMU cache instead of owning clones. Per draw only
// the uniforms/globals are re-synced into used parallel slots and the
// counter shards reset. Invalidation: relinking or deleting a program
// drops its entries (the cached clones pin the old bytecode); switching
// ExecEngine or shader_threads drops everything. Entries beyond the
// configured capacity are evicted least-recently-drawn first, so holding
// hundreds of linked programs cannot grow the cache unboundedly.
class ShadeStateCache {
 public:
  // One shading worker's private state and cached draw plumbing. Pointees
  // are stable for the life of the entry (the closures and the engine's
  // texture callback capture them by address), so WorkerStates are held by
  // unique_ptr — lazy slot growth must not move them.
  struct WorkerState {
    // Owned state — parallel worker slots only. The serial slot borrows
    // the program's engine, the context's ALU model and serial TMU cache.
    std::unique_ptr<glsl::VmExec> engine_owned;
    std::unique_ptr<glsl::AluModel> alu_owned;
    std::unique_ptr<TmuCacheModel> tmu_owned;
    // Views the draw loop uses (into the owned state or the borrowed one).
    glsl::ShaderEngine* engine = nullptr;
    glsl::VmExec* vm = nullptr;  // non-null when `engine` is a bytecode VM
    glsl::AluModel* alu = nullptr;
    TmuCacheModel* tmu = nullptr;

    // Cached draw plumbing. `sink` shades one fragment per call (scalar
    // engines); `flush` shades and drains `batch` (batched engine).
    FragmentSink sink;
    BatchFlushFn flush;
    FragmentBatch batch;
    // Deferred TMU accounting for the batched engine: texture-cache lines
    // touched by each lane, replayed in lane order after the batch so the
    // modeled miss count reproduces the scalar engine's fragment-
    // sequential access order exactly.
    std::array<std::vector<std::uint64_t>, kFragBatchWidth> tmu_log;
    std::string error;  // first shader runtime error this draw, if any
    // Classification of `error` for the robustness API.
    DrawErrorKind error_kind = DrawErrorKind::kNone;
    // Transactional-abort undo log for the framebuffer writes this worker
    // performed during the current draw.
    UndoJournal journal;
    // Journal the cached sink/flush closures actually write through:
    // &journal when the current draw can abort mid-write (trap-capable
    // fragment shader, armed watchdog, armed fault site), nullptr when it
    // provably cannot — refreshed per draw, so the trap-free hot path
    // pays nothing for transactional aborts.
    UndoJournal* active_journal = nullptr;
    // ALU ops this worker's counter shard held the last time it reported
    // to the draw's watchdog accumulator (delta reporting keeps the
    // budget check O(1) per fragment / per batch flush).
    std::uint64_t budget_reported = 0;

    // Uninstalls the texture callback from a *borrowed* engine: the serial
    // slot installs a callback capturing this WorkerState on the program's
    // long-lived engine, and LRU eviction or a cache clear must not leave
    // that engine holding a reference to freed state. (Owned engines die
    // with the slot; invalidation always runs before the program itself is
    // destroyed, so the borrowed engine is still alive here.)
    ~WorkerState();
  };
  struct Entry {
    std::vector<std::unique_ptr<WorkerState>> workers;
    std::uint64_t last_use = 0;
  };

  // Cached vertex-stage lane plumbing for the batched vertex path: per-lane
  // Value* tables into the program's own vertex VM lane planes — attribute
  // gather destinations, and gl_Position / gl_PointSize / varying scatter
  // sources. The vertex stage runs on the calling thread against the
  // program's long-lived vvm, so entries depend only on the linked program
  // and are keyed by program id alone; the same invalidation points as the
  // worker entries (relink, delete, engine/thread switch) keep the cached
  // pointers alive exactly as long as the planes they aim into.
  struct VertexState {
    struct AttribLanes {
      std::array<glsl::Value*, kFragBatchWidth> dst{};
      int location = -1;  // index into the context's attribute bindings
      int cells = 0;      // components the shader-side declaration holds
    };
    struct VaryingSrc {
      std::array<const glsl::Value*, kFragBatchWidth> src{};
      int cells = 0;
      int offset = 0;  // cell offset into RasterVertex::varyings
    };
    // Per-draw resolved attribute sources — the batched FetchAttribute's
    // hoisted base/stride/type state. Sized alongside `attribs` and fully
    // rewritten each draw, so steady-state draws allocate nothing here.
    struct AttribSource {
      const std::uint8_t* base = nullptr;  // null => constant fill
      int stride = 0;
      GLenum type = GL_FLOAT;
      bool normalized = false;
      int size = 0;
      const float* constant = nullptr;
      // Bytes readable from `base` (VBO sources: Buffer::data.size() minus
      // the attrib offset; client arrays: SIZE_MAX, unbounded by the GL
      // contract). The gather validates stride*last_vertex + tail against
      // this before touching memory.
      std::size_t bound = SIZE_MAX;
      int tail = 0;  // bytes of one fetched element: size * elem_size
    };
    std::vector<AttribLanes> attribs;
    std::vector<AttribSource> sources;
    std::vector<VaryingSrc> varyings;
    // Builtin scatter sources; all-null when the stage never declares the
    // builtin. A slot without a per-lane plane (never written) resolves
    // every lane to the shared store — the same value the scalar loop
    // would read.
    std::array<const glsl::Value*, kFragBatchWidth> position{};
    std::array<const glsl::Value*, kFragBatchWidth> point_size{};
    std::uint64_t last_use = 0;
  };

  // Returns the entry for (program, threads), or nullptr on a miss. Hit /
  // miss tallies feed the cache-behaviour tests.
  [[nodiscard]] Entry* Find(GLuint program, int threads);
  Entry& Insert(GLuint program, int threads);
  // Vertex-state lookup, same LRU cap. Deliberately outside the hit/miss
  // tallies: those count worker-entry behaviour for the cache tests.
  [[nodiscard]] VertexState* FindVertex(GLuint program);
  VertexState& InsertVertex(GLuint program);
  void InvalidateProgram(GLuint program);
  void Clear() {
    entries_.clear();
    vertex_entries_.clear();
  }

  // LRU capacity: inserting beyond it evicts the least-recently-used
  // entry. At least 1.
  void SetCapacity(std::size_t cap) { capacity_ = cap < 1 ? 1 : cap; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  [[nodiscard]] std::size_t entry_count() const { return entries_.size(); }
  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] std::uint64_t evictions() const { return evictions_; }

 private:
  std::map<std::pair<GLuint, int>, Entry> entries_;
  std::map<GLuint, VertexState> vertex_entries_;
  std::size_t capacity_ = 64;
  std::uint64_t use_tick_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

class Context {
 public:
  // `alu` is the arithmetic model shaders execute on (precision + op
  // counting); it must outlive the context. Pass nullptr for IEEE-exact.
  explicit Context(const ContextConfig& config = ContextConfig{},
                   glsl::AluModel* alu = nullptr);
  ~Context();

  // --- errors ---
  GLenum GetError();

  // --- capabilities / state ---
  void Enable(GLenum cap);
  void Disable(GLenum cap);
  void Viewport(GLint x, GLint y, GLsizei w, GLsizei h);
  void Scissor(GLint x, GLint y, GLsizei w, GLsizei h);
  void ClearColor(GLfloat r, GLfloat g, GLfloat b, GLfloat a);
  void Clear(GLbitfield mask);
  void BlendFunc(GLenum src, GLenum dst);
  void DepthFunc(GLenum func);
  void DepthMask(GLboolean flag);
  void ColorMask(GLboolean r, GLboolean g, GLboolean b, GLboolean a);
  void CullFace(GLenum mode);
  void FrontFace(GLenum dir);
  void PixelStorei(GLenum pname, GLint value);
  void GetIntegerv(GLenum pname, GLint* params);
  [[nodiscard]] const char* GetString(GLenum name);
  void GetShaderPrecisionFormat(GLenum shader_type, GLenum precision_type,
                                GLint* range, GLint* precision);
  // Flush submits the open command list to the device (async mode); Finish
  // additionally joins — on return every recorded command has executed.
  // Both are no-ops in immediate mode, where nothing is ever deferred.
  void Finish();
  void Flush();

  // --- shaders ---
  GLuint CreateShader(GLenum type);
  void ShaderSource(GLuint shader, const std::string& source);
  void CompileShader(GLuint shader);
  void GetShaderiv(GLuint shader, GLenum pname, GLint* params);
  [[nodiscard]] std::string GetShaderInfoLog(GLuint shader);
  void DeleteShader(GLuint shader);

  // --- programs ---
  GLuint CreateProgram();
  void AttachShader(GLuint program, GLuint shader);
  void BindAttribLocation(GLuint program, GLuint index,
                          const std::string& name);
  void LinkProgram(GLuint program);
  void GetProgramiv(GLuint program, GLenum pname, GLint* params);
  [[nodiscard]] std::string GetProgramInfoLog(GLuint program);
  void UseProgram(GLuint program);
  void DeleteProgram(GLuint program);
  GLint GetUniformLocation(GLuint program, const std::string& name);
  GLint GetAttribLocation(GLuint program, const std::string& name);

  // --- uniforms (apply to the current program) ---
  void Uniform1f(GLint loc, GLfloat x);
  void Uniform2f(GLint loc, GLfloat x, GLfloat y);
  void Uniform3f(GLint loc, GLfloat x, GLfloat y, GLfloat z);
  void Uniform4f(GLint loc, GLfloat x, GLfloat y, GLfloat z, GLfloat w);
  void Uniform1i(GLint loc, GLint x);
  void Uniform1fv(GLint loc, GLsizei count, const GLfloat* v);
  void Uniform2fv(GLint loc, GLsizei count, const GLfloat* v);
  void Uniform4fv(GLint loc, GLsizei count, const GLfloat* v);
  void UniformMatrix4fv(GLint loc, GLsizei count, GLboolean transpose,
                        const GLfloat* v);

  // --- vertex attributes ---
  void EnableVertexAttribArray(GLuint index);
  void DisableVertexAttribArray(GLuint index);
  void VertexAttribPointer(GLuint index, GLint size, GLenum type,
                           GLboolean normalized, GLsizei stride,
                           const void* pointer);
  void VertexAttrib4f(GLuint index, GLfloat x, GLfloat y, GLfloat z,
                      GLfloat w);

  // --- buffers ---
  void GenBuffers(GLsizei n, GLuint* ids);
  void BindBuffer(GLenum target, GLuint id);
  void BufferData(GLenum target, GLsizeiptr size, const void* data,
                  GLenum usage);
  void BufferSubData(GLenum target, GLintptr offset, GLsizeiptr size,
                     const void* data);
  void DeleteBuffers(GLsizei n, const GLuint* ids);

  // --- textures ---
  void GenTextures(GLsizei n, GLuint* ids);
  void ActiveTexture(GLenum unit);
  void BindTexture(GLenum target, GLuint id);
  void TexImage2D(GLenum target, GLint level, GLint internal_format,
                  GLsizei width, GLsizei height, GLint border, GLenum format,
                  GLenum type, const void* data);
  void TexSubImage2D(GLenum target, GLint level, GLint xoffset, GLint yoffset,
                     GLsizei width, GLsizei height, GLenum format, GLenum type,
                     const void* data);
  void TexParameteri(GLenum target, GLenum pname, GLint param);
  void DeleteTextures(GLsizei n, const GLuint* ids);

  // --- renderbuffers / framebuffers ---
  void GenRenderbuffers(GLsizei n, GLuint* ids);
  void BindRenderbuffer(GLenum target, GLuint id);
  void RenderbufferStorage(GLenum target, GLenum internal_format, GLsizei w,
                           GLsizei h);
  void DeleteRenderbuffers(GLsizei n, const GLuint* ids);
  void GenFramebuffers(GLsizei n, GLuint* ids);
  void BindFramebuffer(GLenum target, GLuint id);
  void FramebufferTexture2D(GLenum target, GLenum attachment,
                            GLenum textarget, GLuint texture, GLint level);
  void FramebufferRenderbuffer(GLenum target, GLenum attachment,
                               GLenum rb_target, GLuint rb);
  GLenum CheckFramebufferStatus(GLenum target);
  void DeleteFramebuffers(GLsizei n, const GLuint* ids);

  // --- drawing / readback ---
  void DrawArrays(GLenum mode, GLint first, GLsizei count);
  void DrawElements(GLenum mode, GLsizei count, GLenum type,
                    const void* indices);
  void ReadPixels(GLint x, GLint y, GLsizei w, GLsizei h, GLenum format,
                  GLenum type, void* pixels);

  // --- introspection for tests and the timing model ---
  // All of these observe state the deferred executor mutates, so in async
  // mode each is an implicit sync point (defined in context.cc).
  [[nodiscard]] glsl::AluModel& alu();
  [[nodiscard]] const ContextConfig& config() const { return config_; }
  // Execution-engine switch (applies to subsequent draws; programs carry
  // both engines, compiled at link time). Drops all cached shading state:
  // cached worker slots embed engine-specific clones.
  [[nodiscard]] ExecEngine exec_engine() const { return config_.exec_engine; }
  void SetExecEngine(ExecEngine engine);
  // Fragment-shading worker count (applies to subsequent draws; see
  // ContextConfig::shader_threads for the semantics). Drops all cached
  // shading state: entries are sized to the configured count.
  [[nodiscard]] int shader_threads() const { return config_.shader_threads; }
  void SetShaderThreads(int n);
  // Cache of per-worker shading state, exposed for the cache-behaviour and
  // invalidation tests.
  [[nodiscard]] const ShadeStateCache& shade_state_cache();
  // Last shader runtime failure during a draw ("" when none): loop budget
  // exceeded etc.; a real GPU would hang or reset. The failed draw itself
  // was aborted transactionally — the framebuffer, depth buffer and op
  // counters hold exactly the pre-draw state.
  [[nodiscard]] const std::string& last_draw_error();
  // GL_EXT_robustness-style reset status: GL_NO_ERROR when no draw has
  // been aborted since the last query, else which side was at fault
  // (GL_GUILTY_CONTEXT_RESET for shader traps and watchdog trips,
  // GL_INNOCENT_CONTEXT_RESET for implementation resource failures).
  // Observe-and-clear, like GetError. The context itself remains fully
  // usable — subsequent draws behave as if the aborted one was never
  // issued, which is what the fault-injection tests assert.
  GLenum GetGraphicsResetStatus();
  // The resolved per-draw watchdog budget (config / MGPU_DRAW_BUDGET; 0 =
  // off). Settable at any time; applies to subsequent draws.
  [[nodiscard]] std::uint64_t draw_budget() const { return draw_budget_; }
  void SetDrawBudget(std::uint64_t ops);
  // Whether batched-engine draws run the lane-batched vertex stage
  // (ContextConfig::vertex_batch resolved against MGPU_VERTEX_BATCH at
  // construction). Exposed for the A/B benches and the knob tests.
  [[nodiscard]] bool vertex_batch_enabled() const {
    return vertex_batch_enabled_;
  }
  // Whether this context records into the async command stream
  // (ContextConfig::async_submit resolved against MGPU_ASYNC at
  // construction). Exposed for the knob tests and the A/B benches.
  [[nodiscard]] bool async_submit_enabled() const {
    return record_ != nullptr;
  }
  // Record / elide / submit tallies of the command stream (all zero in
  // immediate mode); see cmd::Stats in cmdstream.h. Sync point: the
  // executed-list count is final when it returns.
  [[nodiscard]] cmd::Stats command_stream_stats();
  [[nodiscard]] Texture* GetTextureObject(GLuint id);

 private:
  struct TextureUnit {
    GLuint bound_2d = 0;
  };
  struct AttribState {
    bool enabled = false;
    GLint size = 4;
    GLenum type = GL_FLOAT;
    GLboolean normalized = GL_FALSE;
    GLsizei stride = 0;
    const void* pointer = nullptr;
    GLuint buffer = 0;
    std::array<float, 4> constant{0.0f, 0.0f, 0.0f, 1.0f};
  };
  struct RenderTarget {
    // Exactly one of these is non-null for a complete color attachment.
    std::vector<std::uint8_t>* color = nullptr;  // RGBA8
    std::vector<float>* depth = nullptr;
    int width = 0;
    int height = 0;
  };

  // The recording queue captures calls into closures that re-enter the
  // public API on the device thread (where recording is suppressed, so the
  // original bodies run unchanged — byte-identity by construction), and
  // replays draw-time client-array snapshots through ReplayRecordedDraw.
  friend class cmd::CommandQueue;
  // Implicit sync point: flushes the open command list, joins the device,
  // and latches any failed-submit error (GL_OUT_OF_MEMORY + innocent
  // reset) the client has not yet observed. No-op in immediate mode and on
  // the device thread.
  void Sync();
  // Executes a recorded draw whose client-side vertex arrays (and client
  // index array, for DrawElements) were snapshotted at record time: the
  // snapshot copies are swapped into the attribute bindings around a plain
  // DrawArrays/DrawElements call, which runs inline on the device thread.
  void ReplayRecordedDraw(
      GLenum mode, GLint first, GLsizei count, bool elements,
      GLenum index_type, std::shared_ptr<std::vector<std::uint8_t>> indices,
      std::shared_ptr<std::vector<cmd::AttribCopy>> copies);

  // True when this call should be recorded instead of executed: async mode
  // is on and the caller is a client thread (the device thread re-entering
  // the public API during replay must run the original bodies).
  [[nodiscard]] bool Recording() const;
  // Texture lookup without the sync prologue of the public
  // GetTextureObject: used by the draw-time texture callbacks, which run on
  // pool workers while the device thread owns the draw — syncing there
  // would self-deadlock.
  [[nodiscard]] Texture* LookupTexture(GLuint id);

  void SetError(GLenum e);
  [[nodiscard]] ShaderObject* GetShader(GLuint id);
  [[nodiscard]] ProgramObject* GetProgram(GLuint id);
  [[nodiscard]] BufferObject* GetBuffer(GLuint id);
  [[nodiscard]] RenderbufferObject* GetRenderbuffer(GLuint id);
  [[nodiscard]] FramebufferObject* GetFramebuffer(GLuint id);
  bool ResolveTarget(RenderTarget* out);  // false => incomplete framebuffer
  void SetUniformValue(const UniformInfo& u, int element, int comps,
                       const float* fdata, const GLint* idata, int count,
                       bool is_matrix);
  bool FetchAttribute(const AttribState& a, GLint vertex,
                      std::array<float, 4>* out) const;
  // Lane-batched vertex stage (batched engines with vertex_batch on):
  // gathers attributes for chunks of up to kVmLanes vertices straight into
  // the vertex VM's SoA lane planes, executes one RunBatch pass per chunk,
  // and scatters clip position / point size / varyings back into `verts`
  // in lane order. Returns false after fully reporting a draw abort
  // (attribute fetch failure, watchdog trip, shader trap) with the same
  // observable state as the scalar loop — the caller just returns.
  bool ShadeVerticesBatched(ProgramObject* prog, GLsizei count,
                            const std::function<GLuint(GLsizei)>& index_at,
                            std::vector<RasterVertex>& verts,
                            const glsl::OpCounts& draw_start_counts);
  // Scalar per-vertex reference loop (the oracle engines, or vertex_batch
  // off): one FetchAttribute + Run() round trip per vertex. Same
  // false-means-aborted contract as ShadeVerticesBatched.
  bool ShadeVerticesScalar(ProgramObject* prog, bool use_vm, GLsizei count,
                           const std::function<GLuint(GLsizei)>& index_at,
                           std::vector<RasterVertex>& verts,
                           const glsl::OpCounts& draw_start_counts);
  void DrawGeneric(GLenum mode, GLsizei count,
                   const std::function<GLuint(GLsizei)>& index_at);
  // Writes one shaded fragment (scissor, depth test, blend, masks). Every
  // framebuffer byte / depth float about to be overwritten is recorded in
  // `journal` first (non-null during draws) so an abort can undo it.
  void WritePixel(RenderTarget& rt, int x, int y, float depth,
                  const std::array<float, 4>& color, bool depth_valid,
                  UndoJournal* journal);
  // Reports the ALU ops `w` accrued since its last report to the shared
  // per-draw accumulator and throws a ShaderRuntimeError (kind kBudget) if
  // the draw's total exceeds draw_budget_. Deterministic trip-vs-not: the
  // total is monotone toward an engine- and thread-invariant final sum.
  void CheckDrawBudget(ShadeStateCache::WorkerState* w);
  // Texture-fetch callback routing misses through the given cache model and
  // counter shard; one per shading worker (thread-safe: texture contents
  // are immutable during a draw, each worker owns its cache and counters).
  [[nodiscard]] glsl::TextureFn MakeTextureFn(TmuCacheModel* cache,
                                              glsl::AluModel* alu);
  // Lane-aware variant for the batched engine: sampling happens
  // immediately (contents are immutable during a draw), but the touched
  // cache line is logged to the executing lane's entry of w->tmu_log; the
  // flush replays the logs in lane order so miss counts match the scalar
  // engine's fragment-sequential access order byte for byte.
  [[nodiscard]] glsl::TextureFn MakeBatchTextureFn(
      ShadeStateCache::WorkerState* w);
  // Builds a worker slot's cached draw plumbing — texture callback,
  // fragment sink (scalar engines) or batch flush (batched engine), with
  // the program's gl_* slot and varying destinations resolved once.
  void BuildWorkerPlumbing(ShadeStateCache::WorkerState& w,
                           ProgramObject* prog);

  ContextConfig config_;
  // The async recording queue (ContextConfig::async_submit resolved once at
  // construction): non-null = calls are recorded and executed by the
  // process-wide submit device; null = immediate mode. ~Context joins and
  // unregisters it before any other member dies.
  std::unique_ptr<cmd::CommandQueue> record_;
  // ContextConfig::simd resolved once at construction (env override applied,
  // clamped to the host's detected tier); stamped onto every linked
  // program's VM engines.
  glsl::simd::Level simd_level_ = glsl::simd::Level::kScalar;
  // ContextConfig::jit resolved once at construction (env override applied,
  // host compiler probed): whether kCompiled draws may attach compiled
  // modules. False = kCompiled silently runs the batched interpreter.
  bool jit_enabled_ = false;
  // ContextConfig::vertex_batch resolved once at construction (env
  // override applied): whether batched-engine draws run the lane-batched
  // vertex stage. False = every engine keeps the scalar vertex loop.
  bool vertex_batch_enabled_ = true;
  glsl::ExactAlu default_alu_;
  glsl::AluModel* alu_;
  GLenum error_ = GL_NO_ERROR;
  std::string last_draw_error_;
  // Robustness state: reset status of the last aborted draw (cleared by
  // GetGraphicsResetStatus) and the resolved watchdog budget.
  GLenum reset_status_ = GL_NO_ERROR;
  std::uint64_t draw_budget_ = 0;
  // Watchdog accumulator: ALU ops consumed by the draw in flight, summed
  // across worker shards via relaxed fetch_add (monotone, so the trip
  // decision is deterministic even though intermediate interleavings vary).
  std::atomic<std::uint64_t> draw_alu_used_{0};

  GLuint next_id_ = 1;
  std::map<GLuint, std::unique_ptr<ShaderObject>> shaders_;
  std::map<GLuint, std::unique_ptr<ProgramObject>> programs_;
  std::map<GLuint, std::unique_ptr<BufferObject>> buffers_;
  std::map<GLuint, std::unique_ptr<Texture>> textures_;
  std::map<GLuint, std::unique_ptr<RenderbufferObject>> renderbuffers_;
  std::map<GLuint, std::unique_ptr<FramebufferObject>> framebuffers_;

  // Worker pool for the tiled fragment pipeline, created lazily on the
  // first parallel draw and resized when shader_threads changes.
  std::unique_ptr<common::ThreadPool> pool_;
  // TMU cache used by the serial shading path. Context-owned (not
  // draw-local) so the texture callback installed on the long-lived
  // program engines never refers into a finished draw's stack frame.
  TmuCacheModel serial_tmu_cache_;
  // Cached per-worker shading state (serial and parallel draws); see
  // ShadeStateCache.
  ShadeStateCache shade_cache_;
  // Per-draw state the cached sink/flush closures reach through stable
  // addresses: the resolved render target and the first-failure latch.
  RenderTarget draw_rt_;
  std::atomic<bool> draw_failed_{false};
  // Draw-loop scratch, context-owned so steady-state draws recycle the
  // allocations: the sparse tile binner, the post-transform vertex array
  // (inner varying vectors keep their capacity too), the assembled
  // primitive list, and the non-empty-tile work list.
  TileBinner binner_;
  std::vector<RasterVertex> scratch_verts_;
  std::vector<TilePrim> scratch_prims_;
  std::vector<std::uint32_t> scratch_work_;

  GLuint current_program_ = 0;
  GLuint array_buffer_ = 0;
  GLuint element_array_buffer_ = 0;
  GLuint bound_framebuffer_ = 0;
  GLuint bound_renderbuffer_ = 0;
  int active_unit_ = 0;
  std::array<TextureUnit, 8> units_{};
  std::vector<AttribState> attribs_;

  // Default framebuffer storage (bottom-up rows, GL convention).
  std::vector<std::uint8_t> fb_color_;
  std::vector<float> fb_depth_;

  // Fixed-function state.
  int vp_x_ = 0, vp_y_ = 0, vp_w_ = 0, vp_h_ = 0;
  int sc_x_ = 0, sc_y_ = 0, sc_w_ = 0, sc_h_ = 0;
  bool scissor_enabled_ = false;
  bool depth_enabled_ = false;
  bool blend_enabled_ = false;
  bool cull_enabled_ = false;
  GLenum depth_func_ = GL_LESS;
  bool depth_write_ = true;
  GLenum blend_src_ = GL_ONE;
  GLenum blend_dst_ = GL_ZERO;
  GLenum cull_face_ = GL_BACK;
  GLenum front_face_ = GL_CCW;
  std::array<bool, 4> color_mask_{true, true, true, true};
  std::array<float, 4> clear_color_{0.0f, 0.0f, 0.0f, 0.0f};
  GLint unpack_alignment_ = 4;
  GLint pack_alignment_ = 4;
};

}  // namespace mgpu::gles2

#endif  // MGPU_GLES2_CONTEXT_H_
