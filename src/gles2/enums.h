// OpenGL ES 2.0 types and enumerants (the subset this implementation
// supports, plus a few that exist only so we can reject them the way the
// real API does — e.g. GL_FLOAT textures, the paper's limitation #5).
#ifndef MGPU_GLES2_ENUMS_H_
#define MGPU_GLES2_ENUMS_H_

#include <cstdint>

namespace mgpu::gles2 {

using GLenum = std::uint32_t;
using GLboolean = std::uint8_t;
using GLbitfield = std::uint32_t;
using GLint = std::int32_t;
using GLsizei = std::int32_t;
using GLuint = std::uint32_t;
using GLfloat = float;
using GLubyte = std::uint8_t;
using GLushort = std::uint16_t;
using GLintptr = std::intptr_t;
using GLsizeiptr = std::ptrdiff_t;

inline constexpr GLboolean GL_TRUE = 1;
inline constexpr GLboolean GL_FALSE = 0;

// Errors.
inline constexpr GLenum GL_NO_ERROR = 0;
inline constexpr GLenum GL_INVALID_ENUM = 0x0500;
inline constexpr GLenum GL_INVALID_VALUE = 0x0501;
inline constexpr GLenum GL_INVALID_OPERATION = 0x0502;
inline constexpr GLenum GL_OUT_OF_MEMORY = 0x0505;
inline constexpr GLenum GL_INVALID_FRAMEBUFFER_OPERATION = 0x0506;

// Robustness (GL_EXT_robustness-style reset status, see
// Context::GetGraphicsResetStatus): which side caused the abort of the last
// draw. GL_NO_ERROR means no reset has occurred since the last query.
inline constexpr GLenum GL_GUILTY_CONTEXT_RESET = 0x8253;
inline constexpr GLenum GL_INNOCENT_CONTEXT_RESET = 0x8254;
inline constexpr GLenum GL_UNKNOWN_CONTEXT_RESET = 0x8255;

// Primitives.
inline constexpr GLenum GL_POINTS = 0x0000;
inline constexpr GLenum GL_LINES = 0x0001;
inline constexpr GLenum GL_LINE_LOOP = 0x0002;
inline constexpr GLenum GL_LINE_STRIP = 0x0003;
inline constexpr GLenum GL_TRIANGLES = 0x0004;
inline constexpr GLenum GL_TRIANGLE_STRIP = 0x0005;
inline constexpr GLenum GL_TRIANGLE_FAN = 0x0006;

// Shaders / programs.
inline constexpr GLenum GL_FRAGMENT_SHADER = 0x8B30;
inline constexpr GLenum GL_VERTEX_SHADER = 0x8B31;
inline constexpr GLenum GL_COMPILE_STATUS = 0x8B81;
inline constexpr GLenum GL_LINK_STATUS = 0x8B82;
inline constexpr GLenum GL_VALIDATE_STATUS = 0x8B83;
inline constexpr GLenum GL_INFO_LOG_LENGTH = 0x8B84;
inline constexpr GLenum GL_ATTACHED_SHADERS = 0x8B85;
inline constexpr GLenum GL_ACTIVE_UNIFORMS = 0x8B86;
inline constexpr GLenum GL_ACTIVE_ATTRIBUTES = 0x8B89;
inline constexpr GLenum GL_SHADER_TYPE = 0x8B4F;
inline constexpr GLenum GL_DELETE_STATUS = 0x8B80;
inline constexpr GLenum GL_SHADER_SOURCE_LENGTH = 0x8B88;

// Precision format queries.
inline constexpr GLenum GL_LOW_FLOAT = 0x8DF0;
inline constexpr GLenum GL_MEDIUM_FLOAT = 0x8DF1;
inline constexpr GLenum GL_HIGH_FLOAT = 0x8DF2;
inline constexpr GLenum GL_LOW_INT = 0x8DF3;
inline constexpr GLenum GL_MEDIUM_INT = 0x8DF4;
inline constexpr GLenum GL_HIGH_INT = 0x8DF5;

// Textures.
inline constexpr GLenum GL_TEXTURE_2D = 0x0DE1;
inline constexpr GLenum GL_TEXTURE_CUBE_MAP = 0x8513;
inline constexpr GLenum GL_TEXTURE0 = 0x84C0;
inline constexpr GLenum GL_TEXTURE_MAG_FILTER = 0x2800;
inline constexpr GLenum GL_TEXTURE_MIN_FILTER = 0x2801;
inline constexpr GLenum GL_TEXTURE_WRAP_S = 0x2802;
inline constexpr GLenum GL_TEXTURE_WRAP_T = 0x2803;
inline constexpr GLenum GL_NEAREST = 0x2600;
inline constexpr GLenum GL_LINEAR = 0x2601;
inline constexpr GLenum GL_NEAREST_MIPMAP_NEAREST = 0x2700;
inline constexpr GLenum GL_LINEAR_MIPMAP_NEAREST = 0x2701;
inline constexpr GLenum GL_NEAREST_MIPMAP_LINEAR = 0x2702;
inline constexpr GLenum GL_LINEAR_MIPMAP_LINEAR = 0x2703;
inline constexpr GLenum GL_REPEAT = 0x2901;
inline constexpr GLenum GL_CLAMP_TO_EDGE = 0x812F;
inline constexpr GLenum GL_MIRRORED_REPEAT = 0x8370;

// Pixel formats / types.
inline constexpr GLenum GL_ALPHA = 0x1906;
inline constexpr GLenum GL_RGB = 0x1907;
inline constexpr GLenum GL_RGBA = 0x1908;
inline constexpr GLenum GL_LUMINANCE = 0x1909;
inline constexpr GLenum GL_LUMINANCE_ALPHA = 0x190A;
inline constexpr GLenum GL_UNSIGNED_BYTE = 0x1401;
inline constexpr GLenum GL_UNSIGNED_SHORT_4_4_4_4 = 0x8033;
inline constexpr GLenum GL_UNSIGNED_SHORT_5_5_5_1 = 0x8034;
inline constexpr GLenum GL_UNSIGNED_SHORT_5_6_5 = 0x8363;
inline constexpr GLenum GL_FLOAT = 0x1406;
inline constexpr GLenum GL_UNSIGNED_SHORT = 0x1403;
inline constexpr GLenum GL_UNSIGNED_INT = 0x1405;
inline constexpr GLenum GL_BYTE = 0x1400;
inline constexpr GLenum GL_SHORT = 0x1402;
inline constexpr GLenum GL_INT = 0x1404;

// Buffers.
inline constexpr GLenum GL_ARRAY_BUFFER = 0x8892;
inline constexpr GLenum GL_ELEMENT_ARRAY_BUFFER = 0x8893;
inline constexpr GLenum GL_STATIC_DRAW = 0x88E4;
inline constexpr GLenum GL_DYNAMIC_DRAW = 0x88E8;
inline constexpr GLenum GL_STREAM_DRAW = 0x88E0;

// Framebuffers / renderbuffers.
inline constexpr GLenum GL_FRAMEBUFFER = 0x8D40;
inline constexpr GLenum GL_RENDERBUFFER = 0x8D41;
inline constexpr GLenum GL_COLOR_ATTACHMENT0 = 0x8CE0;
inline constexpr GLenum GL_DEPTH_ATTACHMENT = 0x8D00;
inline constexpr GLenum GL_STENCIL_ATTACHMENT = 0x8D20;
inline constexpr GLenum GL_FRAMEBUFFER_COMPLETE = 0x8CD5;
inline constexpr GLenum GL_FRAMEBUFFER_INCOMPLETE_ATTACHMENT = 0x8CD6;
inline constexpr GLenum GL_FRAMEBUFFER_INCOMPLETE_MISSING_ATTACHMENT = 0x8CD7;
inline constexpr GLenum GL_FRAMEBUFFER_UNSUPPORTED = 0x8CDD;
inline constexpr GLenum GL_RGBA4 = 0x8056;
inline constexpr GLenum GL_RGB5_A1 = 0x8057;
inline constexpr GLenum GL_RGB565 = 0x8D62;
inline constexpr GLenum GL_DEPTH_COMPONENT16 = 0x81A5;

// Capabilities.
inline constexpr GLenum GL_BLEND = 0x0BE2;
inline constexpr GLenum GL_DEPTH_TEST = 0x0B71;
inline constexpr GLenum GL_SCISSOR_TEST = 0x0C11;
inline constexpr GLenum GL_CULL_FACE = 0x0B44;
inline constexpr GLenum GL_DITHER = 0x0BD0;

// Blending.
inline constexpr GLenum GL_ZERO = 0;
inline constexpr GLenum GL_ONE = 1;
inline constexpr GLenum GL_SRC_COLOR = 0x0300;
inline constexpr GLenum GL_ONE_MINUS_SRC_COLOR = 0x0301;
inline constexpr GLenum GL_SRC_ALPHA = 0x0302;
inline constexpr GLenum GL_ONE_MINUS_SRC_ALPHA = 0x0303;
inline constexpr GLenum GL_DST_ALPHA = 0x0304;
inline constexpr GLenum GL_ONE_MINUS_DST_ALPHA = 0x0305;
inline constexpr GLenum GL_DST_COLOR = 0x0306;
inline constexpr GLenum GL_ONE_MINUS_DST_COLOR = 0x0307;

// Depth functions.
inline constexpr GLenum GL_NEVER = 0x0200;
inline constexpr GLenum GL_LESS = 0x0201;
inline constexpr GLenum GL_EQUAL = 0x0202;
inline constexpr GLenum GL_LEQUAL = 0x0203;
inline constexpr GLenum GL_GREATER = 0x0204;
inline constexpr GLenum GL_NOTEQUAL = 0x0205;
inline constexpr GLenum GL_GEQUAL = 0x0206;
inline constexpr GLenum GL_ALWAYS = 0x0207;

// Face culling.
inline constexpr GLenum GL_FRONT = 0x0404;
inline constexpr GLenum GL_BACK = 0x0405;
inline constexpr GLenum GL_FRONT_AND_BACK = 0x0408;
inline constexpr GLenum GL_CW = 0x0900;
inline constexpr GLenum GL_CCW = 0x0901;

// Clear bits.
inline constexpr GLbitfield GL_COLOR_BUFFER_BIT = 0x00004000;
inline constexpr GLbitfield GL_DEPTH_BUFFER_BIT = 0x00000100;
inline constexpr GLbitfield GL_STENCIL_BUFFER_BIT = 0x00000400;

// GetIntegerv / GetString.
inline constexpr GLenum GL_MAX_TEXTURE_SIZE = 0x0D33;
inline constexpr GLenum GL_MAX_VERTEX_ATTRIBS = 0x8869;
inline constexpr GLenum GL_MAX_VARYING_VECTORS = 0x8DFC;
inline constexpr GLenum GL_MAX_VERTEX_UNIFORM_VECTORS = 0x8DFB;
inline constexpr GLenum GL_MAX_FRAGMENT_UNIFORM_VECTORS = 0x8DFD;
inline constexpr GLenum GL_MAX_TEXTURE_IMAGE_UNITS = 0x8872;
inline constexpr GLenum GL_MAX_VERTEX_TEXTURE_IMAGE_UNITS = 0x8B4C;
inline constexpr GLenum GL_MAX_COMBINED_TEXTURE_IMAGE_UNITS = 0x8B4D;
inline constexpr GLenum GL_VENDOR = 0x1F00;
inline constexpr GLenum GL_RENDERER = 0x1F01;
inline constexpr GLenum GL_VERSION = 0x1F02;
inline constexpr GLenum GL_SHADING_LANGUAGE_VERSION = 0x8B8C;
inline constexpr GLenum GL_EXTENSIONS = 0x1F03;
inline constexpr GLenum GL_VIEWPORT = 0x0BA2;
inline constexpr GLenum GL_UNPACK_ALIGNMENT = 0x0CF5;
inline constexpr GLenum GL_PACK_ALIGNMENT = 0x0D05;
inline constexpr GLenum GL_IMPLEMENTATION_COLOR_READ_TYPE = 0x8B9A;
inline constexpr GLenum GL_IMPLEMENTATION_COLOR_READ_FORMAT = 0x8B9B;

}  // namespace mgpu::gles2

#endif  // MGPU_GLES2_ENUMS_H_
